// Reproduces Fig. 3: comparison of R² for federated vs centralized LSTM on
// filtered data — the figure's bar values per client, printed and dumped to
// CSV for plotting.
#include <fstream>
#include <iostream>

#include "data/csv.hpp"
#include "core/report.hpp"
#include "core/scenario_runner.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  cfg.cache_dir = "bench_cache";  // share the pipeline pass across benches
  const std::string out_path = data::artifact_path("fig3_r2_bars.csv");
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Fig. 3: R2, federated vs centralized (filtered data) ===\n"
            << "config: " << describe(cfg) << "\n\n";

  ScenarioRunner runner(cfg);
  const ScenarioResult fed = runner.run_federated(DataScenario::kFiltered);
  const ScenarioResult central =
      runner.run_centralized(DataScenario::kFiltered);

  // Paper bar values from Table III.
  const double paper_fed[] = {0.8883, 0.8350, 0.7792};
  const double paper_central[] = {0.7646, 0.7463, 0.6356};

  TableWriter table({"Client (zone)", "Federated R2", "Centralized R2",
                     "paper Fed", "paper Central"});
  std::ofstream csv(out_path);
  csv << "client,zone,federated_r2,centralized_r2\n";
  for (std::size_t c = 0; c < fed.per_client.size(); ++c) {
    const ClientEvaluation& fe = fed.per_client[c];
    const ClientEvaluation& ce = central.per_client[c];
    table.add_row({"Client " + std::to_string(c + 1) + " (" + fe.zone + ")",
                   fmt(fe.regression.r2), fmt(ce.regression.r2),
                   fmt(paper_fed[c]), fmt(paper_central[c])});
    csv << (c + 1) << "," << fe.zone << "," << fe.regression.r2 << ","
        << ce.regression.r2 << "\n";
  }
  table.print(std::cout);
  std::cout << "\nbar values written to " << out_path << "\n";

  double fed_mean = 0.0, central_mean = 0.0;
  for (std::size_t c = 0; c < fed.per_client.size(); ++c) {
    fed_mean += fed.per_client[c].regression.r2 / 3.0;
    central_mean += central.per_client[c].regression.r2 / 3.0;
  }
  std::cout << "mean R2: federated " << fmt(fed_mean, 4) << " vs centralized "
            << fmt(central_mean, 4) << " -> federated advantage "
            << fmt((fed_mean - central_mean) / central_mean * 100.0, 1)
            << "% (paper reports +15.2% for Client 1)\n";
  return 0;
}
