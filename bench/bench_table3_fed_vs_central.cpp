// Reproduces Table III: client-specific performance comparison (federated
// vs centralized) on identical filtered data.
#include <iostream>

#include "core/report.hpp"
#include "core/scenario_runner.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  // The table/figure benches share one expensive pipeline pass (generation,
  // attack injection, autoencoder fitting) through an on-disk cache keyed
  // by the config fingerprint.  Pass --cache-dir "" to disable.
  cfg.cache_dir = "bench_cache";
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Table III: per-client comparison on filtered data ===\n"
            << "config: " << describe(cfg) << "\n\n";

  ScenarioRunner runner(cfg);
  std::cout << "[1/2] training federated clients...\n";
  const ScenarioResult fed = runner.run_federated(DataScenario::kFiltered);
  std::cout << "[2/2] training centralized baseline...\n\n";
  const ScenarioResult central =
      runner.run_centralized(DataScenario::kFiltered);

  TableWriter table({"Client (zone)", "Architecture", "MAE", "RMSE", "R2",
                     "paper MAE", "paper RMSE", "paper R2"});
  for (std::size_t c = 0; c < fed.per_client.size(); ++c) {
    const ClientEvaluation& fe = fed.per_client[c];
    const ClientEvaluation& ce = central.per_client[c];
    const PaperClientRow& pf = kPaperTable3.at(2 * c);
    const PaperClientRow& pc = kPaperTable3.at(2 * c + 1);
    const std::string label =
        "Client " + std::to_string(c + 1) + " (" + fe.zone + ")";
    table.add_row({label, "Federated", fmt(fe.regression.mae),
                   fmt(fe.regression.rmse), fmt(fe.regression.r2),
                   fmt(pf.mae), fmt(pf.rmse), fmt(pf.r2)});
    table.add_row({"", "Centralized", fmt(ce.regression.mae),
                   fmt(ce.regression.rmse), fmt(ce.regression.r2),
                   fmt(pc.mae), fmt(pc.rmse), fmt(pc.r2)});
  }
  table.print(std::cout);

  std::cout << "\n--- shape checks ---\n";
  std::size_t fed_wins = 0;
  for (std::size_t c = 0; c < fed.per_client.size(); ++c) {
    const bool win = fed.per_client[c].regression.r2 >
                     central.per_client[c].regression.r2;
    fed_wins += win;
    std::cout << "zone " << fed.per_client[c].zone << ": federated "
              << (win ? "WINS" : "loses") << " (R2 "
              << fmt(fed.per_client[c].regression.r2, 3) << " vs "
              << fmt(central.per_client[c].regression.r2, 3) << ")\n";
  }
  std::cout << "federated wins " << fed_wins << "/3 clients (paper: 3/3)\n";

  // The paper notes the centralized model is most inconsistent at zone 108.
  double worst_r2 = 1.0;
  std::string worst_zone;
  for (const ClientEvaluation& ev : central.per_client) {
    if (ev.regression.r2 < worst_r2) {
      worst_r2 = ev.regression.r2;
      worst_zone = ev.zone;
    }
  }
  std::cout << "centralized worst client: zone " << worst_zone
            << " (paper: zone 108)\n";
  return 0;
}
