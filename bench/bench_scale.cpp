// Fleet-scale bench for the hierarchical aggregation path:
//
//   1. sweep generated fleet sizes through the FleetDriver (edge tier +
//      per-round client sampling + lazy client materialization) and record
//      wall-clock per round, wire bytes per round, heap-allocation counters
//      and process RSS per fleet size;
//   2. check that per-round memory tracks the *sampled cohort*, not the
//      fleet: with a fixed cohort, quadrupling the population must not
//      materially change per-round allocation volume (the sub-linear memory
//      acceptance gate — shared broadcast buffers plus clients that exist
//      only while they train);
//   3. `--check-allocs` is the CI perf-smoke variant: a small fleet, serial
//      threads, exit 1 when steady rounds or a 4x larger population inflate
//      the per-round allocation byte volume beyond tolerance.
//
// Writes BENCH_scale.json.
//
//   bench_scale                  # full sweep (default 256/1024/4096)
//   bench_scale --clients N      # single fleet size
//   bench_scale --check-allocs   # CI gate, small fleets, no JSON
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/config.hpp"
#include "datagen/fleet.hpp"
#include "fl/fleet.hpp"
#include "fl/server.hpp"
#include "forecast/model.hpp"
#include "runtime/run_context.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/rng.hpp"

// ---- global allocation counter ---------------------------------------------
// Same instrumentation as bench_comms / bench_lstm_kernels: replacing the
// global allocation functions makes every heap allocation visible.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;

/// "VmRSS:   123456 kB" reader; 0 when /proc is unavailable.
std::uint64_t proc_status_kib(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) != 0) continue;
    const std::size_t pos = line.find_first_of("0123456789");
    if (pos == std::string::npos) return 0;
    return std::strtoull(line.c_str() + pos, nullptr, 10);
  }
  return 0;
}

struct ScalePoint {
  std::size_t clients = 0;
  std::size_t edges = 0;
  std::size_t sampled_per_round = 0;
  std::size_t rounds = 0;
  double wall_seconds_per_round = 0.0;
  double wire_bytes_per_round = 0.0;
  /// Steady-state per-round heap traffic, measured over the rounds after
  /// the first (the first round absorbs pool/buffer growth).
  double allocs_per_round = 0.0;
  double alloc_bytes_per_round = 0.0;
  std::uint64_t vm_rss_kib = 0;
  std::uint64_t vm_hwm_kib = 0;
  std::size_t timed_out = 0;
  bool quorum_ok = true;
};

/// Tiny-but-real fleet round: generated population, 2-tier aggregation,
/// every exchange through the wire.  `measure_rounds` rounds are timed after
/// one warmup round.
ScalePoint run_point(std::size_t clients, std::size_t edges,
                     std::size_t cohort, std::size_t threads,
                     std::size_t measure_rounds,
                     const core::ExperimentConfig& cfg) {
  datagen::FleetConfig fleet_cfg;
  fleet_cfg.clients = clients;
  fleet_cfg.hours = 96;  // short series: the bench measures orchestration
  fleet_cfg.seed = cfg.seed + 101;
  std::vector<datagen::ClientSpec> fleet = datagen::make_fleet(fleet_cfg);

  forecast::ForecasterConfig small;
  small.sequence_length = 12;
  small.lstm_units = 8;
  small.dense_units = 4;
  small.batch_size = 32;
  tensor::Rng model_rng(cfg.seed);
  fl::Server root(forecast::make_forecaster(small, model_rng).get_weights());

  fl::FleetDriverConfig drv;
  drv.edges = edges;
  drv.lookback = small.sequence_length;
  drv.client.epochs_per_round = 1;
  drv.client.batch_size = small.batch_size;
  const fl::ModelFactory factory = [small](tensor::Rng& rng) {
    return forecast::make_forecaster(small, rng);
  };
  if (cfg.sample_frac < 1.0) {
    drv.sampling.mode = fl::SamplingMode::kBernoulli;
    drv.sampling.fraction = cfg.sample_frac;
  } else if (cohort < clients) {
    drv.sampling.mode = fl::SamplingMode::kFixedSize;
    drv.sampling.count = cohort;
  }

  runtime::ThreadPool pool(threads);
  runtime::RunContext ctx;
  if (threads != 1) ctx.pool = &pool;

  fl::FleetDriver driver(root, std::move(fleet), factory, drv, &ctx);

  // Warmup round: first-use growth (thread pool lanes, wire buffers) is not
  // the steady state the sweep compares across fleet sizes.
  driver.run(1);

  const std::uint64_t a0 = g_alloc_count.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  const fl::FederatedRunResult res = driver.run(measure_rounds);
  const std::uint64_t a1 = g_alloc_count.load();
  const std::uint64_t b1 = g_alloc_bytes.load();

  ScalePoint p;
  p.clients = clients;
  p.edges = edges;
  p.rounds = measure_rounds;
  p.sampled_per_round = res.rounds.empty() ? 0 : res.rounds[0].sampled_clients;
  p.wall_seconds_per_round =
      res.total_seconds / static_cast<double>(measure_rounds);
  p.wire_bytes_per_round = static_cast<double>(res.network.bytes_sent) /
                           static_cast<double>(measure_rounds);
  p.allocs_per_round =
      static_cast<double>(a1 - a0) / static_cast<double>(measure_rounds);
  p.alloc_bytes_per_round =
      static_cast<double>(b1 - b0) / static_cast<double>(measure_rounds);
  p.vm_rss_kib = proc_status_kib("VmRSS:");
  p.vm_hwm_kib = proc_status_kib("VmHWM:");
  for (const fl::RoundMetrics& rm : res.rounds) {
    p.timed_out += rm.timed_out_clients;
    if (rm.updates_received == 0) p.quorum_ok = false;
  }
  return p;
}

void print_point(const ScalePoint& p) {
  std::printf("%7zu clients %4zu edges %6zu/round  %8.3f s/round  "
              "%10.0f B/round  %10.0f allocs/round  %8.1f MiB alloc/round  "
              "RSS %6.1f MiB\n",
              p.clients, p.edges, p.sampled_per_round,
              p.wall_seconds_per_round, p.wire_bytes_per_round,
              p.allocs_per_round, p.alloc_bytes_per_round / (1024.0 * 1024.0),
              static_cast<double>(p.vm_rss_kib) / 1024.0);
}

void write_json(const std::vector<ScalePoint>& sweep, std::size_t threads) {
  std::size_t max_cohort = 0;
  for (const ScalePoint& p : sweep) {
    max_cohort = std::max(max_cohort, p.sampled_per_round);
  }
  // Memory acceptance: between the two largest fleet sizes sharing a cohort
  // bound, alloc volume per round must grow far slower than the population.
  double alloc_growth = 1.0, client_growth = 1.0;
  if (sweep.size() >= 2) {
    const ScalePoint& a = sweep[sweep.size() - 2];
    const ScalePoint& b = sweep.back();
    if (a.alloc_bytes_per_round > 0.0 && a.clients > 0) {
      alloc_growth = b.alloc_bytes_per_round / a.alloc_bytes_per_round;
      client_growth =
          static_cast<double>(b.clients) / static_cast<double>(a.clients);
    }
  }
  const bool sublinear =
      sweep.size() < 2 || alloc_growth < 0.5 * client_growth ||
      client_growth <= 1.0;

  std::ofstream out("BENCH_scale.json");
  out << "{\n  \"config\": {\"threads\": " << threads << "},\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ScalePoint& p = sweep[i];
    out << "    {\"clients\": " << p.clients << ", \"edges\": " << p.edges
        << ", \"sampled_per_round\": " << p.sampled_per_round
        << ", \"rounds\": " << p.rounds
        << ", \"wall_seconds_per_round\": " << p.wall_seconds_per_round
        << ", \"wire_bytes_per_round\": " << p.wire_bytes_per_round
        << ", \"allocs_per_round\": " << p.allocs_per_round
        << ", \"alloc_bytes_per_round\": " << p.alloc_bytes_per_round
        << ", \"vm_rss_kib\": " << p.vm_rss_kib
        << ", \"vm_hwm_kib\": " << p.vm_hwm_kib
        << ", \"timed_out\": " << p.timed_out << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"summary\": {\"max_clients_per_round\": " << max_cohort
      << ", \"alloc_bytes_growth\": " << alloc_growth
      << ", \"population_growth\": " << client_growth
      << ", \"sublinear_memory\": " << (sublinear ? "true" : "false")
      << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;
  bool check_allocs = false;
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) {
      check_allocs = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }

  core::ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  try {
    core::apply_cli_overrides(cfg, static_cast<int>(filtered.size()),
                              filtered.data());
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  if (check_allocs) {
    // CI gate, serial for determinism: with the sampled cohort held at 32,
    // a 4x population must not inflate per-round heap traffic — the fleet
    // exists as specs, clients are materialized per round and released.
    std::printf("=== scale bench: --check-allocs (cohort 32) ===\n");
    const ScalePoint small = run_point(64, 2, 32, 1, 2, cfg);
    const ScalePoint large = run_point(256, 8, 32, 1, 2, cfg);
    print_point(small);
    print_point(large);
    bool ok = true;
    if (small.alloc_bytes_per_round <= 0.0) {
      std::printf("FAIL: allocation counter saw nothing\n");
      ok = false;
    } else {
      const double growth =
          large.alloc_bytes_per_round / small.alloc_bytes_per_round;
      // 4x fleet, same cohort: tolerate bookkeeping (specs, shard tables),
      // reject anything resembling per-population round cost.
      if (growth > 1.5) {
        std::printf("FAIL: per-round alloc bytes grew %.2fx for a 4x "
                    "population (limit 1.5x)\n", growth);
        ok = false;
      } else {
        std::printf("OK: per-round alloc bytes grew %.2fx for a 4x "
                    "population (limit 1.5x)\n", growth);
      }
    }
    if (small.timed_out + large.timed_out != 0 || !small.quorum_ok ||
        !large.quorum_ok) {
      std::printf("FAIL: fault-free fleet rounds lost updates\n");
      ok = false;
    }
    return ok ? 0 : 1;
  }

  // ---- full sweep ----------------------------------------------------------
  std::vector<std::size_t> sizes = {256, 1024, 4096};
  if (cfg.fleet_clients > 0) sizes = {cfg.fleet_clients};
  const std::size_t cohort_cap = 1024;  // acceptance: >= 1k clients/round

  std::printf("=== scale bench: hierarchical fleet sweep ===\n");
  std::printf("config: %s\n", core::describe(cfg).c_str());
  std::vector<ScalePoint> sweep;
  for (const std::size_t n : sizes) {
    const std::size_t cohort = std::min(n, cohort_cap);
    const std::size_t edges = std::min(cfg.fleet_edges, n);
    sweep.push_back(run_point(n, edges, cohort, cfg.threads, 2, cfg));
    print_point(sweep.back());
  }
  write_json(sweep, cfg.threads);
  std::printf("wrote BENCH_scale.json\n");
  return 0;
}
