// Reproduces Fig. 2: performance of the anomaly-resilient federated LSTM
// for Client 1 — the predicted-vs-actual test series under the three data
// scenarios, dumped as CSV for plotting, plus the recovery headline.
#include <iostream>

#include "data/csv.hpp"
#include "core/report.hpp"
#include "core/scenario_runner.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  cfg.cache_dir = "bench_cache";  // share the pipeline pass across benches
  std::string out_path = data::artifact_path("fig2_client1_series.csv");
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Fig. 2: anomaly-resilient federated LSTM, Client 1 ===\n"
            << "config: " << describe(cfg) << "\n\n";

  ScenarioRunner runner(cfg);
  const ScenarioResult clean = runner.run_federated(DataScenario::kClean);
  std::cout << "[1/3] clean scenario done\n";
  const ScenarioResult attacked =
      runner.run_federated(DataScenario::kAttacked);
  std::cout << "[2/3] attacked scenario done\n";
  const ScenarioResult filtered =
      runner.run_federated(DataScenario::kFiltered);
  std::cout << "[3/3] filtered scenario done\n\n";

  const ClientEvaluation& ev_clean = clean.per_client.at(0);
  const ClientEvaluation& ev_attacked = attacked.per_client.at(0);
  const ClientEvaluation& ev_filtered = filtered.per_client.at(0);

  // The three scenarios share the clean test horizon length; attacked
  // actuals differ (they include injected spikes), so dump each pair.
  data::write_columns_csv(
      {"actual_clean", "pred_clean", "actual_attacked", "pred_attacked",
       "actual_filtered", "pred_filtered"},
      {ev_clean.actual, ev_clean.predicted, ev_attacked.actual,
       ev_attacked.predicted, ev_filtered.actual, ev_filtered.predicted},
      out_path);
  std::cout << "prediction series written to " << out_path << " ("
            << ev_clean.actual.size() << " test hours)\n\n";

  TableWriter table({"Scenario", "MAE", "RMSE", "R2", "paper R2"});
  table.add_row({"Clean Data", fmt(ev_clean.regression.mae),
                 fmt(ev_clean.regression.rmse), fmt(ev_clean.regression.r2),
                 fmt(0.9075)});
  table.add_row({"Attacked Data", fmt(ev_attacked.regression.mae),
                 fmt(ev_attacked.regression.rmse),
                 fmt(ev_attacked.regression.r2), fmt(0.8707)});
  table.add_row({"Filtered Data", fmt(ev_filtered.regression.mae),
                 fmt(ev_filtered.regression.rmse),
                 fmt(ev_filtered.regression.r2), fmt(0.8883)});
  table.print(std::cout);

  const double rec = recovery_percent(ev_clean.regression.r2,
                                      ev_attacked.regression.r2,
                                      ev_filtered.regression.r2);
  std::cout << "\nrecovery of attack-induced R2 loss: measured " << fmt(rec, 1)
            << "%  (paper " << kPaperRecoveryPercent << "%)\n";
  std::cout << "ordering clean > filtered > attacked: "
            << ((ev_clean.regression.r2 > ev_filtered.regression.r2 &&
                 ev_filtered.regression.r2 > ev_attacked.regression.r2)
                    ? "REPRODUCED"
                    : "NOT reproduced")
            << "\n";
  return 0;
}
