// Adversarial grid: attack kind x aggregation rule x attacker fraction over
// a federated run, reporting per cell the final holdout R², its degradation
// against the same defense's attack-free baseline, the wire-side detector
// recall (what fraction of poisoned updates the validator's norm clip
// caught), and rounds-to-recover once the attack window closes.
//
// The headline the grid must show (PR acceptance): 30% colluding
// within-clip-norm attackers (kAlie) collapse plain FedAvg measurably while
// at least two robust rules hold the fit — per-update validation cannot see
// a colluding attack, only order-statistic aggregation can.
//
// Writes BENCH_adversarial.json.  `--check-allocs` is the CI perf-smoke
// variant: it runs one robust-rule cell and exits 1 when steady-state
// rounds keep growing the heap (the robust buffer must reuse its storage).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <new>
#include <sstream>
#include <vector>

#include "fl/adversary.hpp"
#include "fl/driver.hpp"
#include "metrics/regression.hpp"
#include "nn/dense.hpp"
#include "obs/round_telemetry.hpp"

// ---- global allocation counter ---------------------------------------------
// Same instrumentation as bench_scale / bench_comms: replacing the global
// allocation functions makes every heap allocation visible.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;

constexpr int kClients = 10;
constexpr std::size_t kAttackRounds = 6;   // attack window [0, 5]
constexpr std::size_t kRecoveryRounds = 4; // attack-free tail
constexpr std::size_t kSamplesPerClient = 96;
constexpr std::uint64_t kDataSeed = 29;
constexpr std::uint64_t kAttackSeed = 1337;
constexpr double kClipNorm = 2.5;   // admits honest movements untouched
constexpr double kAlieBudget = 2.0; // within the clip: passes unclipped

fl::ModelFactory linear_factory() {
  return [](tensor::Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

/// Homogeneous fleet fitting y = 2x: every client agrees on the optimum, so
/// any quality loss in the grid is attributable to the attack.  Data-
/// poisoning kinds relabel the training tensors here, before the Client
/// takes ownership — the poisoned update is then produced by the real
/// training path.
std::vector<std::unique_ptr<fl::Client>> make_clients(
    const fl::AdversarySuite* adversary) {
  std::vector<std::unique_ptr<fl::Client>> clients;
  tensor::Rng root(kDataSeed);
  for (int c = 0; c < kClients; ++c) {
    tensor::Tensor3 x(kSamplesPerClient, 1, 1), y(kSamplesPerClient, 1, 1);
    tensor::Rng data_rng = root.split();
    for (std::size_t i = 0; i < kSamplesPerClient; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = 2.0f * xi + data_rng.normal(0.0f, 0.05f);
    }
    if (adversary != nullptr) adversary->poison_labels(c, 0, x, y);
    fl::ClientConfig cfg;
    cfg.epochs_per_round = 10;
    cfg.learning_rate = 0.05f;
    cfg.batch_size = 16;
    clients.push_back(std::make_unique<fl::Client>(
        c, x, y, linear_factory(), cfg, root.split()));
  }
  return clients;
}

double holdout_r2(const std::vector<float>& weights) {
  tensor::Rng rng(733);
  std::vector<float> actual, predicted;
  for (int i = 0; i < 512; ++i) {
    const float x = rng.uniform(-1.0f, 1.0f);
    actual.push_back(2.0f * x);
    predicted.push_back(weights[0] * x + weights[1]);
  }
  return metrics::r2_score(actual, predicted);
}

struct Cell {
  fl::AttackKind attack = fl::AttackKind::kNone;
  fl::AggregationRule rule = fl::AggregationRule::kMean;
  double frac = 0.0;
  std::size_t attackers = 0;
  double r2_final = 0.0;        // after the recovery tail
  double r2_attacked = 0.0;     // at the end of the attack window
  double degradation = 0.0;     // baseline − r2_attacked, floored at 0
  double detector_recall = 0.0; // clipped poisons / shipped poisons
  long rounds_to_recover = -1;  // -1: never within the tail
  std::size_t clipped = 0;
  std::size_t rejected = 0;
};

fl::FedAvgConfig defense_config(fl::AggregationRule rule,
                                std::size_t attackers) {
  fl::FedAvgConfig cfg;
  cfg.rule = rule;
  // Defense tuned to its threat assumption, as a deployment would: trim /
  // Krum parameters sized to the attacker count they are meant to survive.
  cfg.trim_fraction = 0.35;
  cfg.krum_assumed_byzantine = attackers;
  return cfg;
}

Cell run_cell(fl::AttackKind attack, fl::AggregationRule rule, double frac,
              double baseline_r2) {
  std::vector<int> ids;
  for (int c = 0; c < kClients; ++c) ids.push_back(c);

  fl::AdversaryConfig acfg;
  acfg.kind = attack;
  acfg.seed = kAttackSeed;
  acfg.attackers = fl::AdversarySuite::pick_attackers(frac, kAttackSeed, ids);
  acfg.norm_budget = kAlieBudget;
  acfg.sign_scale = 10.0;
  acfg.round_begin = 0;
  acfg.round_end = static_cast<std::uint32_t>(kAttackRounds) - 1;
  // Backdoor trigger: the upper quarter of the input range.
  acfg.trigger_lo = 0.5f;
  acfg.trigger_hi = 2.0f;
  acfg.backdoor_value = 0.0f;
  const fl::AdversarySuite adversary(acfg);

  auto clients = make_clients(&adversary);

  fl::ValidatorConfig vc;
  vc.max_update_norm = kClipNorm;
  fl::Server server({0.0f, 0.0f},
                    defense_config(rule, acfg.attackers.size()), vc);
  fl::InMemoryNetwork net;
  obs::RoundTelemetrySink telemetry;
  fl::SyncDriver driver(server, clients, net, nullptr, nullptr,
                        fl::RoundPolicy{}, &telemetry, &adversary);

  Cell cell;
  cell.attack = attack;
  cell.rule = rule;
  cell.frac = frac;
  cell.attackers = acfg.attackers.size();

  for (std::size_t r = 0; r < kAttackRounds + kRecoveryRounds; ++r) {
    const fl::FederatedRunResult res = driver.run(1);
    cell.rejected += res.total_rejected_updates();
    const double r2 = holdout_r2(res.final_weights);
    if (r + 1 == kAttackRounds) cell.r2_attacked = r2;
    if (r >= kAttackRounds && cell.rounds_to_recover < 0 &&
        r2 >= baseline_r2 - 0.01) {
      cell.rounds_to_recover = static_cast<long>(r - kAttackRounds) + 1;
    }
    if (r + 1 == kAttackRounds + kRecoveryRounds) cell.r2_final = r2;
  }
  for (const obs::RoundTelemetry& rt : telemetry.rounds()) {
    cell.clipped += rt.clipped;
  }
  cell.degradation = baseline_r2 > cell.r2_attacked
                         ? baseline_r2 - cell.r2_attacked
                         : 0.0;
  // Model-poisoning kinds ship one poisoned update per attacker per window
  // round; the clip is the only wire-side detector, so its recall is
  // clips-over-poisons.  Data-poisoning updates come out of honest training
  // and are expected to be invisible here (recall 0): that asymmetry is the
  // point of the grid.
  const std::size_t shipped = cell.attackers * kAttackRounds;
  if (shipped > 0) {
    cell.detector_recall =
        std::min(1.0, static_cast<double>(cell.clipped) /
                          static_cast<double>(shipped));
  }
  return cell;
}

double run_baseline(fl::AggregationRule rule) {
  // Attack-free run under the same defense: what the grid's degradation
  // and recovery thresholds are measured against.
  auto clients = make_clients(nullptr);
  fl::ValidatorConfig vc;
  vc.max_update_norm = kClipNorm;
  fl::Server server({0.0f, 0.0f}, defense_config(rule, 0), vc);
  fl::InMemoryNetwork net;
  fl::SyncDriver driver(server, clients, net);
  const fl::FederatedRunResult res =
      driver.run(kAttackRounds + kRecoveryRounds);
  return holdout_r2(res.final_weights);
}

std::string fmt(double v, int precision = 4) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

int run_check_allocs() {
  // Steady-state gate for the robust-aggregation path: the RobustBuffer
  // must reuse its row storage, so two equal-length measurement windows of
  // an attacked robust run must allocate (almost) identically.
  std::printf("=== adversarial bench: --check-allocs ===\n");
  std::vector<int> ids;
  for (int c = 0; c < kClients; ++c) ids.push_back(c);
  fl::AdversaryConfig acfg;
  acfg.kind = fl::AttackKind::kAlie;
  acfg.attackers = fl::AdversarySuite::pick_attackers(0.3, kAttackSeed, ids);
  acfg.norm_budget = kAlieBudget;
  const fl::AdversarySuite adversary(acfg);
  auto clients = make_clients(&adversary);
  fl::ValidatorConfig vc;
  vc.max_update_norm = kClipNorm;
  fl::Server server({0.0f, 0.0f},
                    defense_config(fl::AggregationRule::kTrimmedMean,
                                   acfg.attackers.size()),
                    vc);
  fl::InMemoryNetwork net;
  fl::SyncDriver driver(server, clients, net, nullptr, nullptr,
                        fl::RoundPolicy{}, nullptr, &adversary);

  driver.run(2);  // warmup: buffer growth to steady-state capacity
  const std::uint64_t b0 = g_alloc_bytes.load();
  driver.run(3);
  const std::uint64_t b1 = g_alloc_bytes.load();
  driver.run(3);
  const std::uint64_t b2 = g_alloc_bytes.load();

  const double w1 = static_cast<double>(b1 - b0);
  const double w2 = static_cast<double>(b2 - b1);
  std::printf("window1: %.0f B over 3 rounds, window2: %.0f B\n", w1, w2);
  if (w1 <= 0.0) {
    std::printf("FAIL: allocation counter saw nothing\n");
    return 1;
  }
  const double growth = w2 / w1;
  if (growth > 1.10) {
    std::printf("FAIL: steady-state rounds grew the heap %.2fx "
                "(limit 1.10x) — robust buffering is not reusing storage\n",
                growth);
    return 1;
  }
  std::printf("OK: steady-state alloc ratio %.2fx (limit 1.10x)\n", growth);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) return run_check_allocs();
    std::cerr << "unknown option: " << argv[i]
              << " (expected --check-allocs)\n";
    return 2;
  }

  const std::vector<fl::AttackKind> attacks = {
      fl::AttackKind::kSignFlip, fl::AttackKind::kAlie,
      fl::AttackKind::kLabelFlip, fl::AttackKind::kBackdoor};
  const std::vector<fl::AggregationRule> rules = {
      fl::AggregationRule::kMean, fl::AggregationRule::kTrimmedMean,
      fl::AggregationRule::kCoordinateMedian,
      fl::AggregationRule::kNormBoundedMean, fl::AggregationRule::kMultiKrum};
  const std::vector<double> fracs = {0.1, 0.3};

  std::cout << "=== adversarial grid: attack x defense x attacker fraction ==="
            << "\nclients=" << kClients << " attack rounds=" << kAttackRounds
            << " recovery rounds=" << kRecoveryRounds
            << " clip norm=" << fmt(kClipNorm, 1)
            << " alie budget=" << fmt(kAlieBudget, 1) << "\n\n"
            << std::left << std::setw(12) << "attack" << std::setw(15)
            << "defense" << std::setw(6) << "frac" << std::setw(10)
            << "R2(atk)" << std::setw(10) << "degrade" << std::setw(8)
            << "recall" << std::setw(9) << "recover" << "\n";

  std::vector<double> baselines(rules.size(), 0.0);
  for (std::size_t d = 0; d < rules.size(); ++d) {
    baselines[d] = run_baseline(rules[d]);
  }

  std::vector<Cell> cells;
  for (const fl::AttackKind attack : attacks) {
    for (std::size_t d = 0; d < rules.size(); ++d) {
      for (const double frac : fracs) {
        const Cell cell = run_cell(attack, rules[d], frac, baselines[d]);
        cells.push_back(cell);
        std::cout << std::left << std::setw(12) << fl::to_string(attack)
                  << std::setw(15) << fl::to_string(rules[d]) << std::setw(6)
                  << fmt(frac, 1) << std::setw(10) << fmt(cell.r2_attacked)
                  << std::setw(10) << fmt(cell.degradation) << std::setw(8)
                  << fmt(cell.detector_recall, 2) << std::setw(9)
                  << cell.rounds_to_recover << "\n";
      }
    }
  }

  // --- acceptance: the colluding within-norm attack separates the rules ---
  double mean_degradation = 0.0;
  std::size_t robust_holding = 0;
  for (const Cell& c : cells) {
    if (c.attack != fl::AttackKind::kAlie || c.frac != 0.3) continue;
    if (c.rule == fl::AggregationRule::kMean) {
      mean_degradation = c.degradation;
    } else if (c.degradation <= 0.01) {
      ++robust_holding;
    }
  }
  const bool separated = mean_degradation > 0.05 && robust_holding >= 2;
  std::cout << "\n--- shape checks ---\n"
            << "alie@0.3 vs kMean degradation: " << fmt(mean_degradation)
            << " (must exceed 0.05)\n"
            << "robust rules holding degradation <= 0.01: " << robust_holding
            << " of 4 (need >= 2)\n"
            << "collusion defeats the mean but not robust aggregation: "
            << (separated ? "YES" : "NO") << "\n";

  std::ofstream json("BENCH_adversarial.json");
  json << "{\n  \"clients\": " << kClients
       << ",\n  \"attack_rounds\": " << kAttackRounds
       << ",\n  \"recovery_rounds\": " << kRecoveryRounds
       << ",\n  \"clip_norm\": " << fmt(kClipNorm, 2)
       << ",\n  \"alie_budget\": " << fmt(kAlieBudget, 2)
       << ",\n  \"baselines\": {";
  for (std::size_t d = 0; d < rules.size(); ++d) {
    json << "\"" << fl::to_string(rules[d]) << "\": " << fmt(baselines[d], 6)
         << (d + 1 < rules.size() ? ", " : "");
  }
  json << "},\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"attack\": \"" << fl::to_string(c.attack)
         << "\", \"rule\": \"" << fl::to_string(c.rule)
         << "\", \"attack_frac\": " << fmt(c.frac, 2)
         << ", \"attackers\": " << c.attackers
         << ", \"r2_attacked\": " << fmt(c.r2_attacked, 6)
         << ", \"r2_final\": " << fmt(c.r2_final, 6)
         << ", \"degradation\": " << fmt(c.degradation, 6)
         << ", \"detector_recall\": " << fmt(c.detector_recall, 4)
         << ", \"rounds_to_recover\": " << c.rounds_to_recover
         << ", \"clipped\": " << c.clipped << ", \"rejected\": " << c.rejected
         << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"summary\": {\"mean_degradation_alie_30\": "
       << fmt(mean_degradation, 6)
       << ", \"robust_rules_holding\": " << robust_holding
       << ", \"separated\": " << (separated ? "true" : "false") << "}\n}\n";
  std::cout << "wrote BENCH_adversarial.json\n";
  return separated ? 0 : 1;
}
