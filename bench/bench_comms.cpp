// Microbench + scenario parity check for the wire v2 comms path:
//
//   1. serialize/deserialize throughput per codec at the paper's forecaster
//      dimension and at a large synthetic dimension, plus *heap allocations
//      per message* — the steady-state serialize path must not allocate
//      (the property `--check-allocs` pins for the perf-smoke CI job, like
//      bench_lstm_kernels does for the training step);
//   2. wire bytes per message per codec against the dense-equivalent size;
//   3. the Table-III federated scenario run twice on identical pipeline
//      output (shared cache_dir) — dense vs top-k+int8 — reporting the
//      bytes/round reduction and the R² cost of compression.
//
// Writes BENCH_comms.json.
//
//   bench_comms                 # full run, prints + writes JSON
//   bench_comms --check-allocs  # microbench only; exit 1 if the steady
//                               # state serialize/decode paths allocate
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/scenario_runner.hpp"
#include "fl/codec.hpp"
#include "fl/serialize.hpp"
#include "forecast/model.hpp"
#include "metrics/timer.hpp"
#include "tensor/rng.hpp"

// ---- global allocation counter ---------------------------------------------
// Same instrumentation as bench_lstm_kernels: replacing the global
// allocation functions makes every heap allocation visible, and the bench
// samples the counter around each measured region.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;

constexpr std::size_t kLargeDim = 1u << 20;  // 1M params, 4 MiB dense

struct OpStats {
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;
};

/// Time `op` over `iters` iterations after `warmup` unmeasured ones (the
/// warmup absorbs first-use buffer growth — steady state is what's pinned).
template <typename Fn>
OpStats measure(std::size_t warmup, std::size_t iters, Fn&& op) {
  for (std::size_t i = 0; i < warmup; ++i) op();
  const std::uint64_t a0 = g_alloc_count.load();
  const metrics::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) op();
  const double secs = timer.seconds();
  const std::uint64_t a1 = g_alloc_count.load();
  OpStats s;
  s.ops_per_sec = secs > 0.0 ? static_cast<double>(iters) / secs : 0.0;
  s.allocs_per_op = static_cast<double>(a1 - a0) / static_cast<double>(iters);
  return s;
}

struct CodecBench {
  std::string name;
  fl::CodecConfig cfg;
  std::size_t wire_bytes = 0;
  std::size_t dense_bytes = 0;
  OpStats serialize;
  OpStats deserialize;
};

/// Serialize + decode one update message under `cfg` at dimension `dim`,
/// reusing every buffer — what one client-round of uplink traffic costs.
CodecBench bench_codec(const std::string& name, const fl::CodecConfig& cfg,
                       std::size_t dim, std::size_t warmup,
                       std::size_t iters) {
  tensor::Rng rng(7);
  fl::WeightUpdate update;
  update.client_id = 1;
  update.round = 3;
  update.sample_count = 1000;
  update.train_loss = 0.5f;
  update.weights.resize(dim);
  std::vector<float> reference(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    reference[i] = rng.normal(0.0f, 1.0f);
    update.weights[i] = reference[i] + rng.normal(0.0f, 0.01f);
  }

  fl::UpdateEncoder encoder(cfg);
  std::vector<std::uint8_t> wire;
  CodecBench b;
  b.name = name;
  b.cfg = cfg;
  b.serialize = measure(warmup, iters,
                        [&] { encoder.encode(update, reference, wire); });
  b.wire_bytes = wire.size();
  b.dense_bytes = fl::kWireHeaderBytesV1 + dim * sizeof(float);

  fl::WeightUpdate decoded;
  b.deserialize = measure(warmup, iters, [&] {
    fl::deserialize_update_into(wire, decoded);
  });
  return b;
}

/// The broadcast leg under kTopKQuant (the only codec that compresses it).
CodecBench bench_broadcast(std::size_t dim, std::size_t warmup,
                           std::size_t iters) {
  tensor::Rng rng(9);
  std::vector<float> weights(dim);
  for (float& w : weights) w = rng.normal(0.0f, 1.0f);

  fl::CodecConfig cfg;
  cfg.kind = fl::CodecKind::kTopKQuant;
  std::vector<std::uint8_t> wire;
  CodecBench b;
  b.name = "broadcast_q8";
  b.cfg = cfg;
  b.serialize = measure(warmup, iters, [&] {
    fl::encode_global(/*round=*/3, weights, cfg, wire);
  });
  b.wire_bytes = wire.size();
  b.dense_bytes = fl::kWireHeaderBytesV1 + dim * sizeof(float);

  fl::GlobalModel decoded;
  b.deserialize = measure(warmup, iters, [&] {
    fl::deserialize_global_into(wire, decoded);
  });
  return b;
}

double ratio(const CodecBench& b) {
  return b.wire_bytes > 0
             ? static_cast<double>(b.dense_bytes) / b.wire_bytes
             : 0.0;
}

void print_codec(const CodecBench& b) {
  std::printf("%-13s %9zu B  (%5.2fx)  ser %10.0f msg/s %6.1f allocs"
              "   de %10.0f msg/s %6.1f allocs\n",
              b.name.c_str(), b.wire_bytes, ratio(b), b.serialize.ops_per_sec,
              b.serialize.allocs_per_op, b.deserialize.ops_per_sec,
              b.deserialize.allocs_per_op);
}

std::vector<CodecBench> run_microbench(std::size_t dim, std::size_t warmup,
                                       std::size_t iters) {
  fl::CodecConfig dense, delta, topk, topk_q8, topk_q4;
  delta.kind = fl::CodecKind::kDelta;
  topk.kind = fl::CodecKind::kTopK;
  topk_q8.kind = fl::CodecKind::kTopKQuant;
  topk_q4.kind = fl::CodecKind::kTopKQuant;
  topk_q4.quant_bits = 4;

  std::vector<CodecBench> out;
  out.push_back(bench_codec("dense", dense, dim, warmup, iters));
  out.push_back(bench_codec("delta", delta, dim, warmup, iters));
  out.push_back(bench_codec("topk", topk, dim, warmup, iters));
  out.push_back(bench_codec("topk_q8", topk_q8, dim, warmup, iters));
  out.push_back(bench_codec("topk_q4", topk_q4, dim, warmup, iters));
  out.push_back(bench_broadcast(dim, warmup, iters));
  return out;
}

struct ScenarioArm {
  std::string name;
  double mean_r2 = 0.0;
  double bytes_per_round = 0.0;
  std::uint64_t bytes_total = 0;
  double compression_ratio = 1.0;
};

/// One federated Table-III run (filtered scenario) under `codec`; both arms
/// share cfg.cache_dir so they train on identical pipeline output.
ScenarioArm run_arm(const std::string& name, core::ExperimentConfig cfg,
                    const fl::CodecConfig& codec) {
  cfg.codec = codec;
  core::ScenarioRunner runner(cfg);
  const core::ScenarioResult res =
      runner.run_federated(core::DataScenario::kFiltered);

  ScenarioArm arm;
  arm.name = name;
  arm.bytes_total = res.network.bytes_sent;
  arm.bytes_per_round =
      cfg.federated_rounds > 0
          ? static_cast<double>(res.network.bytes_sent) / cfg.federated_rounds
          : 0.0;
  double r2_sum = 0.0;
  for (const core::ClientEvaluation& ev : res.per_client) {
    r2_sum += ev.regression.r2;
  }
  arm.mean_r2 = res.per_client.empty()
                    ? 0.0
                    : r2_sum / static_cast<double>(res.per_client.size());
  std::uint64_t wire = 0, logical = 0;
  for (const obs::RoundTelemetry& rt : runner.round_telemetry().rounds()) {
    wire += rt.bytes_down + rt.bytes_up;
    logical += rt.logical_bytes_down + rt.logical_bytes_up;
  }
  if (wire > 0 && logical > 0) {
    arm.compression_ratio =
        static_cast<double>(logical) / static_cast<double>(wire);
  }
  return arm;
}

void write_json(std::size_t forecaster_dim,
                const std::vector<CodecBench>& small,
                const std::vector<CodecBench>& large,
                const ScenarioArm* dense_arm, const ScenarioArm* topk_arm,
                std::size_t rounds) {
  std::ofstream out("BENCH_comms.json");
  const auto codec_block = [&](const std::vector<CodecBench>& benches) {
    for (std::size_t i = 0; i < benches.size(); ++i) {
      const CodecBench& b = benches[i];
      out << "      \"" << b.name << "\": {\"wire_bytes\": " << b.wire_bytes
          << ", \"dense_bytes\": " << b.dense_bytes
          << ", \"ratio\": " << ratio(b)
          << ", \"serialize_msgs_per_sec\": " << b.serialize.ops_per_sec
          << ", \"serialize_allocs_per_msg\": " << b.serialize.allocs_per_op
          << ", \"deserialize_msgs_per_sec\": " << b.deserialize.ops_per_sec
          << ", \"deserialize_allocs_per_msg\": "
          << b.deserialize.allocs_per_op << "}"
          << (i + 1 < benches.size() ? "," : "") << "\n";
    }
  };
  out << "{\n  \"config\": {\"forecaster_dim\": " << forecaster_dim
      << ", \"large_dim\": " << kLargeDim << "},\n";
  out << "  \"microbench\": {\n    \"forecaster_dim\": {\n";
  codec_block(small);
  out << "    },\n    \"large_dim\": {\n";
  codec_block(large);
  out << "    }\n  }";
  if (dense_arm != nullptr && topk_arm != nullptr) {
    const double reduction =
        topk_arm->bytes_per_round > 0.0
            ? dense_arm->bytes_per_round / topk_arm->bytes_per_round
            : 0.0;
    const double degradation = dense_arm->mean_r2 - topk_arm->mean_r2;
    const auto arm_block = [&](const ScenarioArm& a) {
      out << "{\"bytes_total\": " << a.bytes_total
          << ", \"bytes_per_round\": " << a.bytes_per_round
          << ", \"compression_ratio\": " << a.compression_ratio
          << ", \"mean_r2\": " << a.mean_r2 << "}";
    };
    out << ",\n  \"scenario\": {\n    \"rounds\": " << rounds
        << ",\n    \"dense\": ";
    arm_block(*dense_arm);
    out << ",\n    \"topk_q\": ";
    arm_block(*topk_arm);
    out << ",\n    \"bytes_reduction\": " << reduction
        << ",\n    \"r2_degradation\": " << degradation << "\n  }";
  }
  out << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;
  bool check_allocs = false;
  // Strip the bench's own bare flags before the shared override parser sees
  // the argv (it rejects unknown keys by design).
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) {
      check_allocs = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }

  core::ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  cfg.cache_dir = "bench_cache";  // both arms share one pipeline pass
  try {
    core::apply_cli_overrides(cfg, static_cast<int>(filtered.size()),
                              filtered.data());
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  // The real model dimension the federated path ships every round.
  tensor::Rng model_rng(1);
  const std::size_t forecaster_dim =
      forecast::make_forecaster(cfg.forecaster, model_rng)
          .get_weights()
          .size();

  const std::size_t warmup = check_allocs ? 3 : 10;
  const std::size_t iters = check_allocs ? 5 : 200;

  std::printf("=== comms bench: wire v2 codecs ===\n");
  std::printf("-- update messages, forecaster dim (%zu params) --\n",
              forecaster_dim);
  const std::vector<CodecBench> small =
      run_microbench(forecaster_dim, warmup, iters);
  for (const CodecBench& b : small) print_codec(b);
  std::printf("-- update messages, large dim (%zu params) --\n",
              static_cast<std::size_t>(kLargeDim));
  const std::vector<CodecBench> large =
      run_microbench(kLargeDim, warmup, check_allocs ? iters : 20);
  for (const CodecBench& b : large) print_codec(b);

  if (check_allocs) {
    // The deterministic regression gate: steady-state serialize and decode
    // must not touch the heap for any codec, at either dimension.
    bool ok = true;
    for (const std::vector<CodecBench>* set : {&small, &large}) {
      for (const CodecBench& b : *set) {
        if (b.serialize.allocs_per_op > 0.0 ||
            b.deserialize.allocs_per_op > 0.0) {
          std::printf("FAIL: %s allocates in steady state "
                      "(ser %.1f/msg, de %.1f/msg)\n",
                      b.name.c_str(), b.serialize.allocs_per_op,
                      b.deserialize.allocs_per_op);
          ok = false;
        }
      }
    }
    if (!ok) return 1;
    std::printf("OK: steady-state serialize/decode paths are "
                "allocation-free\n");
    return 0;
  }

  // ---- scenario parity: Table-III federated, dense vs topk+int8 ----------
  std::printf("\n=== Table III federated scenario: dense vs topk_q ===\n");
  std::printf("config: %s\n", core::describe(cfg).c_str());

  fl::CodecConfig dense_codec;  // lossless v1 default
  fl::CodecConfig topk_codec = cfg.codec;
  topk_codec.kind = fl::CodecKind::kTopKQuant;

  std::printf("[1/2] federated run, codec=dense...\n");
  const ScenarioArm dense_arm = run_arm("dense", cfg, dense_codec);
  std::printf("[2/2] federated run, codec=topk_q (frac=%.3f, bits=%d)...\n",
              topk_codec.topk_frac, topk_codec.quant_bits);
  const ScenarioArm topk_arm = run_arm("topk_q", cfg, topk_codec);

  const double reduction = topk_arm.bytes_per_round > 0.0
                               ? dense_arm.bytes_per_round /
                                     topk_arm.bytes_per_round
                               : 0.0;
  const double degradation = dense_arm.mean_r2 - topk_arm.mean_r2;
  for (const ScenarioArm* arm : {&dense_arm, &topk_arm}) {
    std::printf("%-7s %12.0f B/round  (telemetry ratio %5.2fx)  "
                "mean R2 %.4f\n",
                arm->name.c_str(), arm->bytes_per_round,
                arm->compression_ratio, arm->mean_r2);
  }
  std::printf("bytes/round reduction: %.2fx (target >= 4x): %s\n", reduction,
              reduction >= 4.0 ? "PASS" : "FAIL");
  std::printf("R2 degradation: %+.4f (target <= 0.01): %s\n", degradation,
              degradation <= 0.01 ? "PASS" : "FAIL");

  write_json(forecaster_dim, small, large, &dense_arm, &topk_arm,
             cfg.federated_rounds);
  std::printf("wrote BENCH_comms.json\n");
  return 0;
}
