// Ablation: attack vectors beyond DDoS (the paper's §III-G.3 future work:
// "subtle data manipulation or temporal pattern disruption warrant
// investigation").  Evaluates the spike-trained detector against
//   - DDoS volume spikes (the paper's threat model),
//   - false data injection (subtle sustained bias),
//   - ramp attacks (gradual temporal distortion),
// reporting detection quality and mitigation restoration error per vector.
#include <iostream>
#include <memory>

#include "anomaly/filter.hpp"
#include "attack/ddos_injector.hpp"
#include "attack/fdi_injector.hpp"
#include "attack/ramp_injector.hpp"
#include "core/report.hpp"
#include "core/scenario_runner.hpp"
#include "metrics/regression.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  // Ablations compare vectors against each other; a reduced study window
  // keeps the sweep fast without changing the ordering (--hours overrides).
  cfg.generator.hours = 2000;
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Ablation: attack vectors vs the spike-trained detector ===\n"
            << "config: " << describe(cfg) << "\n\n";

  tensor::Rng root(cfg.seed);
  const std::vector<data::TimeSeries> clean =
      datagen::generate_clients(cfg.generator);

  // Fit one filter per client on clean training data (as in the paper).
  std::vector<std::unique_ptr<anomaly::EvChargingAnomalyFilter>> filters;
  for (const data::TimeSeries& series : clean) {
    tensor::Rng filter_rng = root.split();
    auto filter = std::make_unique<anomaly::EvChargingAnomalyFilter>(
        cfg.filter, filter_rng);
    const data::TrainTestSplit split =
        data::temporal_split(series, cfg.train_fraction);
    filter->fit(split.train, filter_rng);
    filters.push_back(std::move(filter));
    std::cout << "fitted filter for " << series.name << "\n";
  }
  std::cout << "\n";

  const attack::DdosInjector ddos(cfg.ddos);
  const attack::FalseDataInjector fdi;
  const attack::RampInjector ramp;
  const std::vector<const attack::Injector*> injectors = {&ddos, &fdi, &ramp};

  TableWriter table({"Attack", "Precision", "Recall", "F1", "FPR%",
                     "attacked MAE", "restored MAE", "restored%"});
  for (const attack::Injector* injector : injectors) {
    metrics::ConfusionMatrix total;
    double attacked_mae = 0.0, restored_mae = 0.0;
    for (std::size_t c = 0; c < clean.size(); ++c) {
      data::TimeSeries attacked;
      tensor::Rng attack_rng = root.split();
      injector->inject(clean[c], attacked, attack_rng);

      const anomaly::FilterResult result = filters[c]->filter(attacked);
      total += metrics::confusion(attacked.labels, result.flags);
      attacked_mae +=
          metrics::mean_absolute_error(clean[c].values, attacked.values) /
          clean.size();
      restored_mae += metrics::mean_absolute_error(
                          clean[c].values, result.filtered.values) /
                      clean.size();
    }
    const metrics::DetectionMetrics m = metrics::from_confusion(total);
    const double restored_pct =
        attacked_mae > 0.0
            ? (attacked_mae - restored_mae) / attacked_mae * 100.0
            : 0.0;
    table.add_row({attack::to_string(injector->kind()), fmt(m.precision, 3),
                   fmt(m.recall, 3), fmt(m.f1, 3),
                   fmt(m.false_positive_rate * 100.0, 2), fmt(attacked_mae, 3),
                   fmt(restored_mae, 3), fmt(restored_pct, 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: ddos detected well (paper's threat model); "
               "fdi largely evades the spike-trained detector (recall ~ 0); "
               "ramp partially detected near its apex.\n";
  return 0;
}
