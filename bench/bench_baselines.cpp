// Baselines comparison: the paper's introduction motivates LSTM forecasting
// over "traditional statistical models [ARIMA] ... and traditional neural
// networks" (§I, refs [2] and [3]).  This bench quantifies that motivation
// on our data: per-client one-step-ahead accuracy of persistence,
// seasonal-naive, seasonal-AR (the ARIMA-family baseline), an MLP (ref [2]'s
// architecture class), and the paper's locally-trained LSTM.
//
// Runs at a reduced scale by default (--hours to change) — this compares
// model families against each other, not against the paper's absolutes.
#include <iostream>

#include "core/report.hpp"
#include "core/scenario_runner.hpp"
#include "forecast/baselines.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  cfg.generator.hours = 2000;
  cfg.forecaster.lstm_units = 32;
  cfg.federated_rounds = 3;
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Baselines: classical models vs LSTM (clean data) ===\n"
            << "config: " << describe(cfg) << "\n\n";

  const std::vector<data::TimeSeries> zones =
      datagen::generate_clients(cfg.generator);

  TableWriter table({"Zone", "Model", "MAE", "RMSE", "R2"});
  for (const data::TimeSeries& zone : zones) {
    const std::size_t split = static_cast<std::size_t>(
        static_cast<double>(zone.size()) * cfg.train_fraction);
    const std::vector<float> train(zone.values.begin(),
                                   zone.values.begin() + split);
    const std::vector<float> actual(zone.values.begin() + split,
                                    zone.values.end());

    for (auto& baseline : forecast::make_all_baselines(24)) {
      baseline->fit(train);
      const std::vector<float> pred = baseline->predict(zone.values, split);
      const metrics::RegressionMetrics m =
          metrics::evaluate_regression(actual, pred);
      table.add_row({zone.name, baseline->name(), fmt(m.mae, 3),
                     fmt(m.rmse, 3), fmt(m.r2, 4)});
    }
  }

  // The LSTM reference: federated local models on clean data.
  ScenarioRunner runner(cfg);
  const ScenarioResult fed = runner.run_federated(DataScenario::kClean);
  for (const ClientEvaluation& ev : fed.per_client) {
    table.add_row({"zone-" + ev.zone, "federated LSTM",
                   fmt(ev.regression.mae, 3), fmt(ev.regression.rmse, 3),
                   fmt(ev.regression.r2, 4)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (the paper's motivation): LSTM and "
               "seasonal-AR lead; persistence trails badly; the MLP sits "
               "between (no recurrence, same lookback).\n";
  return 0;
}
