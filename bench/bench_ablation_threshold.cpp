// Ablation: anomaly-detection threshold rule (the design choice behind
// Table II and §III-G.3's future-work discussion).
//
//  - percentile sweep (paper uses the 98th percentile of training MSE)
//  - MSD (mean + k*std) and MAD rules from the paper's cited prior work [4]
//  - gap-tolerance sweep for the interpolation mitigation (paper: gaps <= 2)
//
// Detection metrics need only one autoencoder fit per client; threshold
// rules are re-applied to the cached training scores.
#include <iostream>

#include "anomaly/filter.hpp"
#include "attack/ddos_injector.hpp"
#include "core/report.hpp"
#include "core/scenario_runner.hpp"
#include "metrics/regression.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  // Ablations compare rules against each other; a reduced study window
  // keeps the sweep fast without changing the ordering (--hours overrides).
  cfg.generator.hours = 2000;
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Ablation: detection threshold rule & mitigation gap ===\n"
            << "config: " << describe(cfg) << "\n\n";

  // One pipeline run fits the autoencoders; we re-threshold afterwards.
  tensor::Rng root(cfg.seed);
  const std::vector<data::TimeSeries> clean =
      datagen::generate_clients(cfg.generator);
  const attack::DdosInjector injector(cfg.ddos);

  struct PerClient {
    data::TimeSeries clean;
    data::TimeSeries attacked;
    std::unique_ptr<anomaly::EvChargingAnomalyFilter> filter;
  };
  std::vector<PerClient> clients;
  for (const data::TimeSeries& series : clean) {
    PerClient pc;
    pc.clean = series;
    tensor::Rng attack_rng = root.split();
    injector.inject(series, pc.attacked, attack_rng);
    tensor::Rng filter_rng = root.split();
    pc.filter = std::make_unique<anomaly::EvChargingAnomalyFilter>(
        cfg.filter, filter_rng);
    const data::TrainTestSplit split =
        data::temporal_split(series, cfg.train_fraction);
    pc.filter->fit(split.train, filter_rng);
    clients.push_back(std::move(pc));
    std::cout << "fitted filter for " << series.name << "\n";
  }
  std::cout << "\n";

  const std::vector<anomaly::ThresholdRule> rules = {
      {anomaly::ThresholdKind::kPercentile, 90.0},
      {anomaly::ThresholdKind::kPercentile, 95.0},
      {anomaly::ThresholdKind::kPercentile, 98.0},  // the paper's rule
      {anomaly::ThresholdKind::kPercentile, 99.0},
      {anomaly::ThresholdKind::kPercentile, 99.5},
      {anomaly::ThresholdKind::kMeanStd, 2.0},
      {anomaly::ThresholdKind::kMeanStd, 3.0},
      {anomaly::ThresholdKind::kMad, 3.0},
      {anomaly::ThresholdKind::kMad, 5.0},
  };

  TableWriter table({"Rule", "Precision", "Recall", "F1", "FPR%"});
  for (const anomaly::ThresholdRule& rule : rules) {
    metrics::ConfusionMatrix total;
    for (PerClient& pc : clients) {
      pc.filter->set_threshold_rule(rule);
      const auto flags = pc.filter->detect(pc.attacked);
      total += metrics::confusion(pc.attacked.labels, flags);
    }
    const metrics::DetectionMetrics m = metrics::from_confusion(total);
    const std::string name = anomaly::to_string(rule.kind) + "(" +
                             fmt(rule.param, 1) + ")" +
                             (rule.kind == anomaly::ThresholdKind::kPercentile &&
                                      rule.param == 98.0
                                  ? " [paper]"
                                  : "");
    table.add_row({name, fmt(m.precision, 3), fmt(m.recall, 3), fmt(m.f1, 3),
                   fmt(m.false_positive_rate * 100.0, 2)});
  }
  table.print(std::cout);

  // Gap-tolerance sweep: quality of mitigation measured directly as how
  // close the repaired series gets to the clean ground truth.
  std::cout << "\n--- mitigation gap-tolerance sweep (restoration error) ---\n";
  TableWriter gap_table({"Gap tolerance", "restoration MAE", "vs attacked MAE"});
  for (std::size_t gap : {0u, 1u, 2u, 4u, 8u}) {
    double restored = 0.0, attacked_err = 0.0;
    for (PerClient& pc : clients) {
      pc.filter->set_threshold_rule(cfg.filter.threshold);
      anomaly::FilterResult result = pc.filter->filter(pc.attacked);
      // Re-merge with this sweep's gap tolerance and re-interpolate from
      // the attacked series.
      const auto segments = anomaly::merge_segments(result.flags, gap);
      std::vector<float> repaired = pc.attacked.values;
      anomaly::interpolate_segments(repaired, segments);
      restored += metrics::mean_absolute_error(pc.clean.values, repaired);
      attacked_err +=
          metrics::mean_absolute_error(pc.clean.values, pc.attacked.values);
    }
    gap_table.add_row({std::to_string(gap) + (gap == 2 ? " [paper]" : ""),
                       fmt(restored / clients.size(), 3),
                       fmt(attacked_err / clients.size(), 3)});
  }
  gap_table.print(std::cout);
  std::cout << "\n(lower restoration MAE = better repair of attack damage)\n";

  // Imputation-method sweep (§III-G.3 future work: "advanced filtering and
  // reconstruction techniques beyond linear interpolation").
  std::cout << "\n--- imputation-method sweep (restoration error) ---\n";
  TableWriter imp_table({"Method", "restoration MAE"});
  for (const anomaly::ImputationMethod method :
       {anomaly::ImputationMethod::kLinear,
        anomaly::ImputationMethod::kSeasonalNaive,
        anomaly::ImputationMethod::kSpline,
        anomaly::ImputationMethod::kModelReconstruction}) {
    double restored = 0.0;
    for (PerClient& pc : clients) {
      pc.filter->set_threshold_rule(cfg.filter.threshold);
      pc.filter->set_imputation({method, 24});
      const anomaly::FilterResult result = pc.filter->filter(pc.attacked);
      restored += metrics::mean_absolute_error(pc.clean.values,
                                               result.filtered.values) /
                  clients.size();
    }
    imp_table.add_row(
        {anomaly::to_string(method) +
             (method == anomaly::ImputationMethod::kLinear ? " [paper]" : ""),
         fmt(restored, 3)});
  }
  imp_table.print(std::cout);
  return 0;
}
