// Streaming-detection soak bench (DESIGN.md §14–15): drives the streaming
// runtimes over 8 zones and >=10k samples of diurnal traffic with injected
// attack bursts and churn gaps, and measures the properties the streaming
// layer promises:
//
//   1. frozen-threshold equivalence — a stream replay with frozen
//      thresholds and repair off flags the bit-identical anomaly set the
//      batch detector (stream::batch_scores + compute_threshold) flags,
//      on BOTH runtimes (StreamPipeline and a 4-shard ShardedPipeline);
//   2. detection parity — the adaptive soak (seeded thresholds, online
//      repair, churn, back-pressure) keeps recall on the labelled attack
//      samples within 0.02 of the batch detector, and every point of the
//      shard sweep (drift probe armed) holds the same bound;
//   3. zero steady-state allocations — after warmup, a clean ingest batch
//      (ingest + flush, nothing flagged) never touches the heap, on both
//      runtimes (the sharded gate covers rings, staging and fan-in);
//   4. shard scaling — a 1/2/4/8-shard sweep under multi-producer load
//      records samples/s into BENCH_stream.json; the >=3x-at-8-shards
//      gate is enforced only on hosts with >= 8 hardware threads
//      (elsewhere the sweep is trend data: a 1-core runner cannot
//      materialize parallel speedup, deterministic gates still apply).
//
// The alloc counts, the equivalence bits and the recall-parity bounds are
// the deterministic gates the perf-smoke CI job pins; throughput and flush
// latency are trend-watched via BENCH_stream.json (shared runners make
// timings noisy).
//
//   bench_stream                 # full soak: trains briefly, prints
//                                # throughput/recall + shard sweep, writes
//                                # JSON, exit 1 on any gate failure
//   bench_stream --check-allocs  # short run; exit 1 if a steady-state
//                                # ingest batch allocates (either runtime)
//                                # or a frozen replay diverges from batch
//
// Honors --stream-queue-max / --stream-flush / --stream-shards /
// --stream-drift-z / --seed / --threads (the alloc gates always measure
// the serial path; --stream-shards only overrides the sharded alloc gate's
// shard count, the sweep always covers 1/2/4/8).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "anomaly/threshold.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "data/csv.hpp"
#include "data/scaler.hpp"
#include "data/window.hpp"
#include "forecast/engine.hpp"
#include "metrics/timer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "obs/telemetry.hpp"
#include "runtime/run_context.hpp"
#include "runtime/thread_pool.hpp"
#include "stream/pipeline.hpp"
#include "stream/sharded.hpp"
#include "tensor/rng.hpp"

// ---- global allocation counter ---------------------------------------------
// Same instrumentation as bench_serving: replacing the global allocation
// functions makes every heap allocation visible, sampled around the
// measured region only.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;
using tensor::Rng;

constexpr std::size_t kZones = 8;
constexpr float kPi = 3.14159265f;

/// Deterministic per-(zone, t) ripple in [-1, 1] (splitmix64 hash), so
/// zone series are reproducible without a shared stateful RNG.
float ripple(std::size_t zone, std::size_t t) {
  std::uint64_t x = (static_cast<std::uint64_t>(zone) << 32 | t) +
                    0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<float>(x >> 11) * 0x1.0p-52f - 1.0f;
}

/// Clean charging volume for `zone` at hour `t`: zone-offset diurnal wave
/// plus small noise, in physical units.
float clean_value(std::size_t zone, std::size_t t, std::size_t period) {
  const float phase = 0.7f * static_cast<float>(zone);
  const float base = 60.0f + 8.0f * static_cast<float>(zone);
  const float diurnal =
      25.0f * std::sin(static_cast<float>(t) * 2.0f * kPi /
                           static_cast<float>(period) +
                       phase);
  return base + diurnal + 2.0f * ripple(zone, t);
}

struct ZoneData {
  std::vector<float> series;       // physical units, attacks injected
  std::vector<std::uint8_t> label; // 1 = injected attack sample
  data::MinMaxScaler scaler;       // fitted on the clean calibration prefix
  std::vector<float> scaled;       // scaler.transform(series)
  std::vector<float> scores;       // stream::batch_scores over `scaled`
  std::vector<float> calib_scores; // scores whose target sample is < calib
  float threshold = 0.0f;          // batch threshold from calib_scores
};

void print_u64(const char* name, std::uint64_t v) {
  std::printf("  %-22s %llu\n", name, static_cast<unsigned long long>(v));
}

/// Count divergences between a streamed event list and the batch
/// detector's anomaly set: every event's score must be bit-identical to
/// the batch score at the same (zone, t), and set membership must match
/// in both directions.  `batch_flagged` receives the batch anomaly count.
std::size_t equivalence_mismatches(
    const std::vector<ZoneData>& zones, std::size_t lookback,
    const std::vector<stream::AnomalyEvent>& events,
    std::size_t& batch_flagged) {
  std::size_t mismatches = 0;
  batch_flagged = 0;
  std::set<std::pair<std::uint32_t, std::uint64_t>> streamed;
  for (const stream::AnomalyEvent& ev : events) {
    const ZoneData& zd = zones[ev.zone];
    const std::size_t idx = static_cast<std::size_t>(ev.t) - lookback;
    if (idx >= zd.scores.size() || ev.score != zd.scores[idx]) {
      ++mismatches;  // score not bit-identical to the batch score
    }
    streamed.emplace(ev.zone, ev.t);
  }
  for (std::size_t z = 0; z < zones.size(); ++z) {
    const ZoneData& zd = zones[z];
    for (std::size_t i = 0; i < zd.scores.size(); ++i) {
      const bool flagged = zd.scores[i] > zd.threshold;
      batch_flagged += flagged;
      const bool in_stream = streamed.count(
          {static_cast<std::uint32_t>(z), i + lookback}) != 0;
      if (flagged != in_stream) ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_allocs = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) {
      check_allocs = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  core::ExperimentConfig cfg;
  core::apply_cli_overrides(cfg, static_cast<int>(passthrough.size()),
                            passthrough.data());

  const forecast::ForecasterConfig& model_cfg = cfg.forecaster;
  const std::size_t lookback = model_cfg.sequence_length;
  const std::size_t hours = check_allocs ? 600 : 2000;  // per zone
  const std::size_t calib = check_allocs ? 300 : 500;   // clean prefix

  // --- model ---------------------------------------------------------------
  // Brief training on one zone's scaled calibration prefix makes the score
  // distribution realistic for the recall comparison; the alloc/equivalence
  // gates do not depend on weight values, so --check-allocs skips it.
  Rng rng(cfg.seed);
  nn::Sequential model = forecast::make_forecaster(model_cfg, rng);

  // --- per-zone data: diurnal series, attack bursts, batch reference -------
  // Attacks are volumetric bursts (value pinned far above the calibration
  // range) injected only after the calibration prefix, ~0.8% of samples per
  // zone — well inside the 98th-percentile rule's contamination budget, so
  // the adaptive threshold stays in the clean tail.
  std::vector<ZoneData> zones(kZones);
  for (std::size_t z = 0; z < kZones; ++z) {
    ZoneData& zd = zones[z];
    zd.series.resize(hours);
    zd.label.assign(hours, 0);
    for (std::size_t t = 0; t < hours; ++t) {
      zd.series[t] = clean_value(z, t, lookback);
    }
    if (!check_allocs) {
      for (std::size_t b = 0; b < 4; ++b) {
        const std::size_t start = calib + 120 + 330 * b + 29 * z;
        for (std::size_t k = 0; k < 4 && start + k < hours; ++k) {
          zd.series[start + k] = zd.series[start + k] * 2.0f + 50.0f;
          zd.label[start + k] = 1;
        }
      }
    }
    zd.scaler.fit(
        std::vector<float>(zd.series.begin(), zd.series.begin() + calib));
    zd.scaled = zd.scaler.transform(zd.series);
  }

  if (!check_allocs) {
    const std::vector<float> train(zones[0].scaled.begin(),
                                   zones[0].scaled.begin() + calib);
    data::SequenceDataset ds = data::make_forecast_sequences(train, lookback);
    nn::MseLoss loss;
    nn::Adam adam(1e-2f);
    nn::Trainer trainer(model, loss, adam, rng);
    nn::FitConfig fit;
    fit.epochs = 6;
    fit.batch_size = model_cfg.batch_size;
    trainer.fit(ds.x, ds.y, fit);
  }
  const std::vector<float> weights = model.get_weights();

  forecast::EngineConfig engine_cfg;
  engine_cfg.max_batch = 2 * kZones;
  obs::Registry registry;
  forecast::Engine engine(model_cfg, engine_cfg,
                          check_allocs ? nullptr : &registry);
  engine.publish(weights);

  // Batch reference: score every window, threshold on the calibration
  // scores under the experiment's rule (98th percentile by default).
  for (std::size_t z = 0; z < kZones; ++z) {
    ZoneData& zd = zones[z];
    zd.scores = stream::batch_scores(engine, zd.scaled);
    zd.calib_scores.assign(zd.scores.begin(),
                           zd.scores.begin() + (calib - lookback));
    zd.threshold = anomaly::compute_threshold(zd.calib_scores,
                                              cfg.filter.threshold);
  }

  // --- 1. frozen-threshold equivalence -------------------------------------
  // Repair off, thresholds frozen at the batch values, queue sized to hold
  // everything: the replay must flag exactly the batch anomaly set with
  // bit-identical scores.
  std::size_t equiv_events = 0;
  std::size_t equiv_mismatches = 0;
  std::size_t batch_flagged = 0;
  {
    stream::StreamConfig sc = core::make_stream_config(cfg, kZones);
    sc.repair_inputs = false;
    sc.adapt_thresholds = false;
    sc.queue_max = hours * kZones;
    sc.queue_shrink = 1024;
    stream::StreamPipeline pipe(engine, sc);
    for (std::size_t z = 0; z < kZones; ++z) {
      pipe.add_zone(zones[z].scaler);
      pipe.freeze_threshold(static_cast<std::uint32_t>(z),
                            zones[z].threshold);
    }
    for (std::size_t t = 0; t < hours; ++t) {
      for (std::size_t z = 0; z < kZones; ++z) {
        pipe.ingest(static_cast<std::uint32_t>(z), t, zones[z].series[t]);
      }
    }
    pipe.flush();
    std::vector<stream::AnomalyEvent> events;
    pipe.drain(events);
    equiv_events = events.size();
    equiv_mismatches =
        equivalence_mismatches(zones, lookback, events, batch_flagged);
  }
  const bool equivalent = equiv_mismatches == 0 &&
                          equiv_events == batch_flagged;
  std::printf("frozen equivalence: %s (%zu events, %zu batch-flagged, "
              "%zu mismatches)\n",
              equivalent ? "bit-identical" : "DIVERGED", equiv_events,
              batch_flagged, equiv_mismatches);

  // --- 1b. sharded frozen equivalence --------------------------------------
  // The same frozen replay through a multi-shard ShardedPipeline with an
  // off-cadence flush: the fan-in batches differently (one merged engine
  // call per round, single pad-to-2 at the merged batch), yet the
  // determinism contract (DESIGN.md §15) says the anomaly set must still
  // be bit-identical to the batch detector.
  std::size_t sharded_mismatches = 0;
  std::size_t sharded_events = 0;
  std::size_t sharded_batch_flagged = 0;
  {
    stream::ShardedConfig scfg = core::make_sharded_config(cfg, kZones);
    scfg.shards = 4;
    scfg.stream.repair_inputs = false;
    scfg.stream.adapt_thresholds = false;
    scfg.stream.queue_max = hours * kZones;
    scfg.stream.queue_shrink = 1024;
    scfg.ring_max = hours * kZones;
    scfg.ring_shrink = 1024;
    stream::ShardedPipeline pipe(engine, scfg);
    for (std::size_t z = 0; z < kZones; ++z) {
      pipe.add_zone(zones[z].scaler);
      pipe.freeze_threshold(static_cast<std::uint32_t>(z),
                            zones[z].threshold);
    }
    for (std::size_t t = 0; t < hours; ++t) {
      for (std::size_t z = 0; z < kZones; ++z) {
        pipe.ingest(static_cast<std::uint32_t>(z), t, zones[z].series[t]);
      }
      if (t % 97 == 96) pipe.flush();  // off-cadence: rounds vary in width
    }
    pipe.flush();
    std::vector<stream::AnomalyEvent> events;
    pipe.drain(events);
    sharded_events = events.size();
    sharded_mismatches = equivalence_mismatches(zones, lookback, events,
                                                sharded_batch_flagged);
  }
  const bool sharded_equivalent = sharded_mismatches == 0 &&
                                  sharded_events == sharded_batch_flagged;
  std::printf("sharded frozen equivalence (4 shards): %s (%zu events, "
              "%zu mismatches)\n",
              sharded_equivalent ? "bit-identical" : "DIVERGED",
              sharded_events, sharded_mismatches);

  // --- 3. steady-state allocations -----------------------------------------
  // Clean continuation traffic, thresholds pinned far above any clean
  // score so nothing flags (a repair is allowed to allocate; the clean
  // path is not).  Warmup fills every window, exercises several flushes
  // and one drain; the measured region is whole ingest batches.
  double allocs_per_batch = 0.0;
  double bytes_per_batch = 0.0;
  {
    stream::StreamConfig sc = core::make_stream_config(cfg, kZones);
    stream::StreamPipeline pipe(engine, sc);
    for (std::size_t z = 0; z < kZones; ++z) {
      pipe.add_zone(zones[z].scaler);
      pipe.freeze_threshold(static_cast<std::uint32_t>(z), 1e30f);
    }
    const std::size_t warm_ticks =
        lookback + 8 + (4 * sc.flush_batch + kZones - 1) / kZones;
    const std::size_t meas_ticks = (12 * sc.flush_batch + kZones - 1) / kZones;
    std::vector<stream::AnomalyEvent> sink;
    for (std::size_t t = 0; t < warm_ticks; ++t) {
      for (std::size_t z = 0; z < kZones; ++z) {
        pipe.ingest(static_cast<std::uint32_t>(z), t,
                    clean_value(z, t, lookback));
      }
    }
    pipe.flush();
    pipe.drain(sink);

    const std::uint64_t f0 = pipe.stats().flushes_total;
    const std::uint64_t a0 = g_alloc_count.load();
    const std::uint64_t b0 = g_alloc_bytes.load();
    for (std::size_t t = warm_ticks; t < warm_ticks + meas_ticks; ++t) {
      for (std::size_t z = 0; z < kZones; ++z) {
        pipe.ingest(static_cast<std::uint32_t>(z), t,
                    clean_value(z, t, lookback));
      }
    }
    const std::uint64_t a1 = g_alloc_count.load();
    const std::uint64_t b1 = g_alloc_bytes.load();
    const std::uint64_t flushes = pipe.stats().flushes_total - f0;
    allocs_per_batch =
        flushes > 0 ? static_cast<double>(a1 - a0) / flushes : 0.0;
    bytes_per_batch =
        flushes > 0 ? static_cast<double>(b1 - b0) / flushes : 0.0;
    std::printf("steady state: %.1f allocs / %.0f bytes per ingest batch "
                "(%llu batches measured)\n",
                allocs_per_batch, bytes_per_batch,
                static_cast<unsigned long long>(flushes));
  }

  // --- 3b. sharded steady-state allocations --------------------------------
  // Same clean-traffic contract for the sharded runtime on its serial
  // path: after warmup (windows full, rings/queues at their steady
  // footprint), one ingest batch — ring pushes, drains, fan-in staging,
  // one merged score call, scatter — must not touch the heap.
  double sharded_allocs_per_batch = 0.0;
  double sharded_bytes_per_batch = 0.0;
  {
    stream::ShardedConfig scfg = core::make_sharded_config(cfg, kZones);
    if (scfg.shards == 1) scfg.shards = 4;  // exercise real fan-in
    stream::ShardedPipeline pipe(engine, scfg);
    for (std::size_t z = 0; z < kZones; ++z) {
      pipe.add_zone(zones[z].scaler);
      pipe.freeze_threshold(static_cast<std::uint32_t>(z), 1e30f);
    }
    const std::size_t batch_ticks =
        (scfg.stream.flush_batch + kZones - 1) / kZones;
    std::size_t tick = 0;
    const auto run_batches = [&](std::size_t n) {
      for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t k = 0; k < batch_ticks; ++k, ++tick) {
          for (std::size_t z = 0; z < kZones; ++z) {
            pipe.ingest(static_cast<std::uint32_t>(z), tick,
                        clean_value(z, tick, lookback));
          }
        }
        pipe.flush();  // serial path — the gate's subject
      }
    };
    std::vector<stream::AnomalyEvent> sink;
    run_batches((lookback + 8 + batch_ticks - 1) / batch_ticks + 4);
    pipe.drain(sink);

    const std::size_t meas_batches = 12;
    const std::uint64_t a0 = g_alloc_count.load();
    const std::uint64_t b0 = g_alloc_bytes.load();
    run_batches(meas_batches);
    const std::uint64_t a1 = g_alloc_count.load();
    const std::uint64_t b1 = g_alloc_bytes.load();
    sharded_allocs_per_batch =
        static_cast<double>(a1 - a0) / meas_batches;
    sharded_bytes_per_batch = static_cast<double>(b1 - b0) / meas_batches;
    std::printf("sharded steady state (%zu shards): %.1f allocs / %.0f "
                "bytes per ingest batch (%zu batches measured)\n",
                scfg.shards, sharded_allocs_per_batch,
                sharded_bytes_per_batch, meas_batches);
  }

  if (check_allocs) {
    bool fail = false;
    if (allocs_per_batch > 0.0) {
      std::printf("FAIL: steady-state ingest allocates (%.1f/batch)\n",
                  allocs_per_batch);
      fail = true;
    }
    if (sharded_allocs_per_batch > 0.0) {
      std::printf("FAIL: sharded steady-state ingest allocates "
                  "(%.1f/batch)\n",
                  sharded_allocs_per_batch);
      fail = true;
    }
    if (!equivalent) {
      std::printf("FAIL: frozen-threshold stream diverged from the batch "
                  "detector (%zu mismatches)\n",
                  equiv_mismatches);
      fail = true;
    }
    if (!sharded_equivalent) {
      std::printf("FAIL: sharded frozen-threshold replay diverged from the "
                  "batch detector (%zu mismatches)\n",
                  sharded_mismatches);
      fail = true;
    }
    if (!fail) {
      std::printf("OK: both runtimes are allocation-free at steady state "
                  "and frozen replays match batch\n");
    }
    return fail ? 1 : 0;
  }

  // --- 2. adaptive soak: throughput, churn, back-pressure, recall ----------
  // Seeded (adapting) thresholds, online repair, three churn outages per
  // zone, a concurrent-shaped drain cadence.  Recall is compared on the
  // labelled samples both detectors could score (churn refills excluded).
  stream::StreamConfig soak_cfg = core::make_stream_config(cfg, kZones);
  stream::StreamPipeline pipe(engine, soak_cfg, &registry);
  for (std::size_t z = 0; z < kZones; ++z) {
    pipe.add_zone(zones[z].scaler);
    pipe.seed_threshold(static_cast<std::uint32_t>(z),
                        zones[z].calib_scores);
  }

  const auto in_outage = [&](std::size_t z, std::size_t t) {
    for (std::size_t k = 0; k < 3; ++k) {
      const std::size_t start = calib + 200 + 400 * k + 53 * z;
      if (t >= start && t < start + 6) return true;
    }
    return false;
  };

  std::vector<stream::AnomalyEvent> events;
  events.reserve(hours);
  std::uint64_t ingested = 0;
  const metrics::WallTimer soak_timer;
  for (std::size_t t = 0; t < hours; ++t) {
    for (std::size_t z = 0; z < kZones; ++z) {
      if (in_outage(z, t)) continue;  // churn: the zone misses these hours
      pipe.ingest(static_cast<std::uint32_t>(z), t, zones[z].series[t]);
      ++ingested;
    }
    if (t % 400 == 399) pipe.drain(events);
  }
  pipe.flush();
  const double soak_secs = soak_timer.seconds();
  pipe.drain(events);
  const stream::StreamStats st = pipe.stats();
  const double samples_per_sec =
      soak_secs > 0.0 ? static_cast<double>(ingested) / soak_secs : 0.0;

  // Which samples the stream could score: replay the window/gap state
  // machine over the ingested sequence (all inputs here are finite, and
  // repair keeps windows full, so readiness depends only on fill + gaps).
  std::vector<std::vector<std::uint8_t>> scored(
      kZones, std::vector<std::uint8_t>(hours, 0));
  for (std::size_t z = 0; z < kZones; ++z) {
    std::size_t filled = 0;
    std::uint64_t last_t = 0;
    bool has_last = false;
    for (std::size_t t = 0; t < hours; ++t) {
      if (in_outage(z, t)) continue;
      if (has_last && t != last_t + 1) filled = 0;
      if (filled >= lookback) {
        scored[z][t] = 1;
      } else {
        ++filled;
      }
      last_t = t;
      has_last = true;
    }
  }
  std::set<std::pair<std::uint32_t, std::uint64_t>> stream_flagged;
  for (const stream::AnomalyEvent& ev : events) {
    stream_flagged.emplace(ev.zone, ev.t);
  }
  std::uint64_t labelled = 0, hit_stream = 0, hit_batch = 0;
  for (std::size_t z = 0; z < kZones; ++z) {
    const ZoneData& zd = zones[z];
    for (std::size_t t = lookback; t < hours; ++t) {
      if (zd.label[t] == 0 || scored[z][t] == 0) continue;
      ++labelled;
      hit_stream += stream_flagged.count(
                        {static_cast<std::uint32_t>(z), t}) != 0;
      hit_batch += zd.scores[t - lookback] > zd.threshold;
    }
  }
  const double recall_stream =
      labelled > 0 ? static_cast<double>(hit_stream) / labelled : 0.0;
  const double recall_batch =
      labelled > 0 ? static_cast<double>(hit_batch) / labelled : 0.0;
  const double recall_delta = std::abs(recall_stream - recall_batch);

  obs::Histogram& flush_hist = registry.histogram("stream.flush_seconds");
  const double flush_p50_ms = flush_hist.quantile(0.50) * 1e3;
  const double flush_p99_ms = flush_hist.quantile(0.99) * 1e3;

  std::printf("=== stream soak (%zu zones x %zu hours, seq %zu, hidden %zu, "
              "flush %zu, queue %zu) ===\n",
              kZones, hours, lookback, model_cfg.lstm_units,
              soak_cfg.flush_batch, soak_cfg.queue_max);
  std::printf("throughput: %.0f samples/s sustained (%.3f s soak), flush "
              "p50 %.3f ms p99 %.3f ms\n",
              samples_per_sec, soak_secs, flush_p50_ms, flush_p99_ms);
  print_u64("samples_total", st.samples_total);
  print_u64("scored_total", st.scored_total);
  print_u64("not_ready_total", st.not_ready_total);
  print_u64("gaps_total", st.gaps_total);
  print_u64("events_total", st.events_total);
  print_u64("events_dropped", st.events_dropped);
  print_u64("repaired_total", st.repaired_total);
  std::printf("recall on %llu scored attack samples: stream %.4f, batch "
              "%.4f (delta %.4f)\n",
              static_cast<unsigned long long>(labelled), recall_stream,
              recall_batch, recall_delta);

  // --- 4. shard sweep: multi-producer throughput + recall parity -----------
  // Each shard count replays the same adaptive soak through a
  // ShardedPipeline: two producer threads (each owning a disjoint half of
  // the zones, so per-zone sample order stays deterministic) ingest
  // concurrently while a control thread drives flushes against a pool
  // sized to min(shards, hardware).  Rings are sized lossless so recall is
  // comparable, and the drift probe is armed so the parity gate also
  // covers the re-seed path.  The >=3x-at-8-shards gate only binds on
  // hosts with >= 8 hardware threads; elsewhere samples/s is trend data.
  struct SweepPoint {
    std::size_t shards = 0;
    double samples_per_sec = 0.0;
    double secs = 0.0;
    double recall = 0.0;
    double recall_delta = 0.0;
    std::uint64_t ingest_dropped = 0;
    std::uint64_t reseeds = 0;
    std::uint64_t events = 0;
  };
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::vector<SweepPoint> sweep;
  for (const std::size_t shard_count : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}, std::size_t{8}}) {
    stream::ShardedConfig scfg = core::make_sharded_config(cfg, kZones);
    scfg.shards = shard_count;
    scfg.ring_max = hours * kZones;  // lossless: parity needs every sample
    scfg.ring_shrink = 1024;
    if (scfg.stream.drift_z <= 0.0) scfg.stream.drift_z = 8.0;
    stream::ShardedPipeline spipe(engine, scfg);
    for (std::size_t z = 0; z < kZones; ++z) {
      spipe.add_zone(zones[z].scaler);
      spipe.seed_threshold(static_cast<std::uint32_t>(z),
                           zones[z].calib_scores);
    }
    runtime::ThreadPool pool(std::max<std::size_t>(
        1, std::min<std::size_t>(shard_count,
                                 hw_threads == 0 ? 1 : hw_threads)));
    runtime::RunContext ctx;
    ctx.pool = &pool;

    std::vector<stream::AnomalyEvent> sevents;
    sevents.reserve(hours);
    std::atomic<bool> producers_done{false};
    const metrics::WallTimer sweep_timer;
    std::thread control([&] {
      while (!producers_done.load(std::memory_order_acquire)) {
        spipe.flush(&ctx);
        spipe.drain(sevents);
        std::this_thread::yield();
      }
      spipe.flush(&ctx);  // final flush: rings are quiescent now
    });
    constexpr std::size_t kProducers = 2;
    std::atomic<std::uint64_t> pushed{0};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::uint64_t mine = 0;
        for (std::size_t t = 0; t < hours; ++t) {
          for (std::size_t z = p; z < kZones; z += kProducers) {
            if (in_outage(z, t)) continue;
            spipe.ingest(static_cast<std::uint32_t>(z), t,
                         zones[z].series[t]);
            ++mine;
          }
        }
        pushed.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (std::thread& th : producers) th.join();
    producers_done.store(true, std::memory_order_release);
    control.join();
    const double sweep_secs = sweep_timer.seconds();
    spipe.drain(sevents);
    const stream::StreamStats sst = spipe.stats();

    std::set<std::pair<std::uint32_t, std::uint64_t>> sflag;
    for (const stream::AnomalyEvent& ev : sevents) {
      sflag.emplace(ev.zone, ev.t);
    }
    std::uint64_t hit = 0;
    for (std::size_t z = 0; z < kZones; ++z) {
      for (std::size_t t = lookback; t < hours; ++t) {
        if (zones[z].label[t] == 0 || scored[z][t] == 0) continue;
        hit += sflag.count({static_cast<std::uint32_t>(z), t}) != 0;
      }
    }
    SweepPoint pt;
    pt.shards = shard_count;
    pt.secs = sweep_secs;
    pt.samples_per_sec =
        sweep_secs > 0.0
            ? static_cast<double>(pushed.load()) / sweep_secs
            : 0.0;
    pt.recall = labelled > 0 ? static_cast<double>(hit) / labelled : 0.0;
    pt.recall_delta = std::abs(pt.recall - recall_batch);
    pt.ingest_dropped = sst.ingest_dropped;
    pt.reseeds = sst.reseeds_total;
    pt.events = sst.events_total;
    sweep.push_back(pt);
  }
  const double speedup_8v1 =
      (!sweep.empty() && sweep.front().samples_per_sec > 0.0)
          ? sweep.back().samples_per_sec / sweep.front().samples_per_sec
          : 0.0;
  const bool shard_gate_enforced = hw_threads >= 8;
  std::printf("=== shard sweep (2 producers, drift armed, hw threads %u) "
              "===\n",
              hw_threads);
  for (const SweepPoint& pt : sweep) {
    std::printf("  shards %zu: %9.0f samples/s (%.3f s), recall %.4f "
                "(delta %.4f), reseeds %llu, dropped %llu, events %llu\n",
                pt.shards, pt.samples_per_sec, pt.secs, pt.recall,
                pt.recall_delta,
                static_cast<unsigned long long>(pt.reseeds),
                static_cast<unsigned long long>(pt.ingest_dropped),
                static_cast<unsigned long long>(pt.events));
  }
  std::printf("  speedup 8 vs 1 shard: %.2fx (%s)\n", speedup_8v1,
              shard_gate_enforced
                  ? "gated >= 3x"
                  : "trend only: host has < 8 hardware threads");

  {
    std::ofstream json("BENCH_stream.json");
    json << "{\n  \"config\": {\"zones\": " << kZones
         << ", \"hours_per_zone\": " << hours << ", \"seq\": " << lookback
         << ", \"hidden\": " << model_cfg.lstm_units
         << ", \"flush_batch\": " << soak_cfg.flush_batch
         << ", \"queue_max\": " << soak_cfg.queue_max
         << ", \"seed\": " << cfg.seed << "},\n"
         << "  \"samples_per_sec\": " << samples_per_sec << ",\n"
         << "  \"soak_seconds\": " << soak_secs << ",\n"
         << "  \"flush_p50_ms\": " << flush_p50_ms << ",\n"
         << "  \"flush_p99_ms\": " << flush_p99_ms << ",\n"
         << "  \"allocs_per_ingest_batch\": " << allocs_per_batch << ",\n"
         << "  \"bytes_per_ingest_batch\": " << bytes_per_batch << ",\n"
         << "  \"sharded_allocs_per_ingest_batch\": "
         << sharded_allocs_per_batch << ",\n"
         << "  \"sharded_bytes_per_ingest_batch\": "
         << sharded_bytes_per_batch << ",\n"
         << "  \"frozen_equivalent\": " << (equivalent ? "true" : "false")
         << ",\n"
         << "  \"equivalence_mismatches\": " << equiv_mismatches << ",\n"
         << "  \"sharded_frozen_equivalent\": "
         << (sharded_equivalent ? "true" : "false") << ",\n"
         << "  \"sharded_equivalence_mismatches\": " << sharded_mismatches
         << ",\n"
         << "  \"stats\": {\"samples_total\": " << st.samples_total
         << ", \"scored_total\": " << st.scored_total
         << ", \"not_ready_total\": " << st.not_ready_total
         << ", \"gaps_total\": " << st.gaps_total
         << ", \"events_total\": " << st.events_total
         << ", \"events_dropped\": " << st.events_dropped
         << ", \"repaired_total\": " << st.repaired_total
         << ", \"flushes_total\": " << st.flushes_total << "},\n"
         << "  \"labelled_scored_attacks\": " << labelled << ",\n"
         << "  \"recall_stream\": " << recall_stream << ",\n"
         << "  \"recall_batch\": " << recall_batch << ",\n"
         << "  \"recall_delta\": " << recall_delta << ",\n"
         << "  \"hardware_concurrency\": " << hw_threads << ",\n"
         << "  \"shard_speedup_8v1\": " << speedup_8v1 << ",\n"
         << "  \"shard_gate_enforced\": "
         << (shard_gate_enforced ? "true" : "false") << ",\n"
         << "  \"shard_sweep\": [";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& pt = sweep[i];
      json << (i == 0 ? "" : ",") << "\n    {\"shards\": " << pt.shards
           << ", \"samples_per_sec\": " << pt.samples_per_sec
           << ", \"seconds\": " << pt.secs
           << ", \"recall\": " << pt.recall
           << ", \"recall_delta\": " << pt.recall_delta
           << ", \"ingest_dropped\": " << pt.ingest_dropped
           << ", \"reseeds\": " << pt.reseeds
           << ", \"events\": " << pt.events << "}";
    }
    json << "\n  ]\n}\n";
  }
  std::printf("wrote BENCH_stream.json\n");

  const std::string metrics_path = data::artifact_path("stream_metrics.json");
  registry.write_json_file(metrics_path);
  std::printf("metrics: %s\n", metrics_path.c_str());

  bool fail = false;
  if (!equivalent) {
    std::printf("FAIL: frozen-threshold stream diverged from the batch "
                "detector\n");
    fail = true;
  }
  if (!sharded_equivalent) {
    std::printf("FAIL: sharded frozen-threshold replay diverged from the "
                "batch detector\n");
    fail = true;
  }
  if (recall_delta > 0.02) {
    std::printf("FAIL: streaming recall %.4f strays more than 0.02 from "
                "batch recall %.4f\n",
                recall_stream, recall_batch);
    fail = true;
  }
  if (sharded_allocs_per_batch > 0.0) {
    std::printf("FAIL: sharded steady-state ingest allocates (%.1f/batch)\n",
                sharded_allocs_per_batch);
    fail = true;
  }
  for (const SweepPoint& pt : sweep) {
    if (pt.recall_delta > 0.02) {
      std::printf("FAIL: %zu-shard recall %.4f strays more than 0.02 from "
                  "batch recall %.4f\n",
                  pt.shards, pt.recall, recall_batch);
      fail = true;
    }
    if (pt.ingest_dropped != 0) {
      std::printf("FAIL: %zu-shard sweep dropped %llu samples from "
                  "lossless-sized rings\n",
                  pt.shards,
                  static_cast<unsigned long long>(pt.ingest_dropped));
      fail = true;
    }
  }
  if (shard_gate_enforced && speedup_8v1 < 3.0) {
    std::printf("FAIL: 8-shard speedup %.2fx below the 3x gate on a "
                "%u-thread host\n",
                speedup_8v1, hw_threads);
    fail = true;
  }
  return fail ? 1 : 0;
}
