// Microbenchmarks of the substrate hot paths (google-benchmark): GEMM
// kernels at LSTM-relevant shapes, LSTM forward/backward, autoencoder
// scoring, wire serialization, and FedAvg aggregation.
#include <benchmark/benchmark.h>

#include "anomaly/autoencoder.hpp"
#include "fl/fedavg.hpp"
#include "fl/serialize.hpp"
#include "forecast/model.hpp"
#include "nn/loss.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

using namespace evfl;

namespace {

tensor::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  tensor::Rng rng(seed);
  tensor::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

void BM_MatmulLstmGateShape(benchmark::State& state) {
  // The LSTM hot call: [batch x hidden] x [hidden x 4*hidden].
  const std::size_t h = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix a = random_matrix(32, h, 1);
  const tensor::Matrix b = random_matrix(h, 4 * h, 2);
  tensor::Matrix c(32, 4 * h);
  for (auto _ : state) {
    c.set_zero();
    tensor::matmul_acc(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * h * 4 * h);
}
BENCHMARK(BM_MatmulLstmGateShape)->Arg(25)->Arg(50)->Arg(100);

void BM_MatmulTn(benchmark::State& state) {
  const std::size_t h = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix a = random_matrix(32, h, 3);
  const tensor::Matrix b = random_matrix(32, 4 * h, 4);
  tensor::Matrix c(h, 4 * h);
  for (auto _ : state) {
    c.set_zero();
    tensor::matmul_tn_acc(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulTn)->Arg(50);

void BM_ForecasterForward(benchmark::State& state) {
  tensor::Rng rng(5);
  forecast::ForecasterConfig cfg;  // paper architecture LSTM(50)
  nn::Sequential model = forecast::make_forecaster(cfg, rng);
  tensor::Tensor3 x(32, 24, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (auto _ : state) {
    tensor::Tensor3 y = model.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ForecasterForward);

void BM_ForecasterTrainStep(benchmark::State& state) {
  tensor::Rng rng(6);
  forecast::ForecasterConfig cfg;
  nn::Sequential model = forecast::make_forecaster(cfg, rng);
  nn::MseLoss loss;
  tensor::Tensor3 x(32, 24, 1), y(32, 1, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.uniform(0, 1);
  for (auto _ : state) {
    const tensor::Tensor3 pred = model.forward(x, true);
    model.zero_grads();
    const nn::LossResult lr = loss.value_and_grad(pred, y);
    model.backward(lr.grad);
    benchmark::DoNotOptimize(model.get_grads().data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ForecasterTrainStep);

void BM_SerializeWeights(benchmark::State& state) {
  fl::WeightUpdate u;
  u.client_id = 1;
  u.sample_count = 3456;
  tensor::Rng rng(7);
  u.weights.resize(10921);  // paper forecaster parameter count
  for (float& w : u.weights) w = rng.normal();
  for (auto _ : state) {
    const auto bytes = fl::serialize(u);
    const fl::WeightUpdate back = fl::deserialize_update(bytes);
    benchmark::DoNotOptimize(back.weights.data());
  }
  state.SetBytesProcessed(state.iterations() * u.weights.size() *
                          sizeof(float));
}
BENCHMARK(BM_SerializeWeights);

void BM_FedAvgAggregate(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(8);
  std::vector<fl::WeightUpdate> updates(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    updates[c].client_id = static_cast<int>(c);
    updates[c].sample_count = 1000 + c;
    updates[c].weights.resize(10921);
    for (float& w : updates[c].weights) w = rng.normal();
  }
  for (auto _ : state) {
    const auto avg = fl::fed_avg(updates);
    benchmark::DoNotOptimize(avg.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(3)->Arg(30);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> payload(1 << 16);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::crc32(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_Crc32);

void BM_AutoencoderScore(benchmark::State& state) {
  tensor::Rng rng(9);
  anomaly::AutoencoderConfig cfg;
  cfg.window = 24;
  cfg.encoder_units = 12;  // shrunken: scoring-path shape, not training cost
  cfg.latent_units = 6;
  cfg.max_epochs = 1;
  anomaly::LstmAutoencoder ae(cfg, rng);
  std::vector<float> series(500);
  for (float& v : series) v = rng.uniform(0, 1);
  ae.train(series, rng);
  for (auto _ : state) {
    const auto scores = ae.score(series);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_AutoencoderScore);

}  // namespace

BENCHMARK_MAIN();
