// Microbenchmarks of the substrate hot paths (google-benchmark): GEMM
// kernels at LSTM-relevant shapes, LSTM forward/backward, autoencoder
// scoring, wire serialization, and FedAvg aggregation.  After the
// google-benchmark suite, main() runs a parallel-vs-serial comparison of
// the runtime layer (context-aware matmul, parallel prepare_clients) and
// writes the speedups to BENCH_runtime.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "anomaly/autoencoder.hpp"
#include "core/pipeline.hpp"
#include "fl/fedavg.hpp"
#include "fl/serialize.hpp"
#include "forecast/model.hpp"
#include "metrics/timer.hpp"
#include "nn/loss.hpp"
#include "runtime/run_context.hpp"
#include "tensor/linalg.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

using namespace evfl;

namespace {

tensor::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  tensor::Rng rng(seed);
  tensor::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

void BM_MatmulLstmGateShape(benchmark::State& state) {
  // The LSTM hot call: [batch x hidden] x [hidden x 4*hidden].
  const std::size_t h = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix a = random_matrix(32, h, 1);
  const tensor::Matrix b = random_matrix(h, 4 * h, 2);
  tensor::Matrix c(32, 4 * h);
  for (auto _ : state) {
    c.set_zero();
    tensor::matmul_acc(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * h * 4 * h);
}
BENCHMARK(BM_MatmulLstmGateShape)->Arg(25)->Arg(50)->Arg(100);

void BM_MatmulTn(benchmark::State& state) {
  const std::size_t h = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix a = random_matrix(32, h, 3);
  const tensor::Matrix b = random_matrix(32, 4 * h, 4);
  tensor::Matrix c(h, 4 * h);
  for (auto _ : state) {
    c.set_zero();
    tensor::matmul_tn_acc(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulTn)->Arg(50);

void BM_ForecasterForward(benchmark::State& state) {
  tensor::Rng rng(5);
  forecast::ForecasterConfig cfg;  // paper architecture LSTM(50)
  nn::Sequential model = forecast::make_forecaster(cfg, rng);
  tensor::Tensor3 x(32, 24, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (auto _ : state) {
    tensor::Tensor3 y = model.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ForecasterForward);

void BM_ForecasterTrainStep(benchmark::State& state) {
  tensor::Rng rng(6);
  forecast::ForecasterConfig cfg;
  nn::Sequential model = forecast::make_forecaster(cfg, rng);
  nn::MseLoss loss;
  tensor::Tensor3 x(32, 24, 1), y(32, 1, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.uniform(0, 1);
  for (auto _ : state) {
    const tensor::Tensor3 pred = model.forward(x, true);
    model.zero_grads();
    const nn::LossResult lr = loss.value_and_grad(pred, y);
    model.backward(lr.grad);
    benchmark::DoNotOptimize(model.get_grads().data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ForecasterTrainStep);

void BM_SerializeWeights(benchmark::State& state) {
  fl::WeightUpdate u;
  u.client_id = 1;
  u.sample_count = 3456;
  tensor::Rng rng(7);
  u.weights.resize(10921);  // paper forecaster parameter count
  for (float& w : u.weights) w = rng.normal();
  for (auto _ : state) {
    const auto bytes = fl::serialize(u);
    const fl::WeightUpdate back = fl::deserialize_update(bytes);
    benchmark::DoNotOptimize(back.weights.data());
  }
  state.SetBytesProcessed(state.iterations() * u.weights.size() *
                          sizeof(float));
}
BENCHMARK(BM_SerializeWeights);

void BM_FedAvgAggregate(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(8);
  std::vector<fl::WeightUpdate> updates(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    updates[c].client_id = static_cast<int>(c);
    updates[c].sample_count = 1000 + c;
    updates[c].weights.resize(10921);
    for (float& w : updates[c].weights) w = rng.normal();
  }
  for (auto _ : state) {
    const auto avg = fl::fed_avg(updates);
    benchmark::DoNotOptimize(avg.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(3)->Arg(30);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> payload(1 << 16);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::crc32(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_Crc32);

void BM_AutoencoderScore(benchmark::State& state) {
  tensor::Rng rng(9);
  anomaly::AutoencoderConfig cfg;
  cfg.window = 24;
  cfg.encoder_units = 12;  // shrunken: scoring-path shape, not training cost
  cfg.latent_units = 6;
  cfg.max_epochs = 1;
  anomaly::LstmAutoencoder ae(cfg, rng);
  std::vector<float> series(500);
  for (float& v : series) v = rng.uniform(0, 1);
  ae.train(series, rng);
  for (auto _ : state) {
    const auto scores = ae.score(series);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_AutoencoderScore);

// ---- parallel-vs-serial comparison of the runtime layer --------------------

/// Median wall time of fn() in seconds over `trials` measured runs, after
/// `warmup` unmeasured runs.  The warmup runs absorb one-time costs (page
/// faults, cache/TLB fill, thread-pool spin-up); the median is robust to the
/// occasional scheduler hiccup that min/mean are not.
template <typename Fn>
double time_median_of(std::size_t trials, std::size_t warmup, Fn&& fn) {
  for (std::size_t r = 0; r < warmup; ++r) fn();
  std::vector<double> samples(trials);
  for (std::size_t r = 0; r < trials; ++r) {
    const metrics::WallTimer timer;
    fn();
    samples[r] = timer.seconds();
  }
  std::sort(samples.begin(), samples.end());
  return samples[trials / 2];
}

struct Comparison {
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

Comparison compare_matmul(const runtime::RunContext& ctx) {
  const std::size_t n = 256;
  const tensor::Matrix a = random_matrix(n, n, 21);
  const tensor::Matrix b = random_matrix(n, n, 22);
  tensor::Matrix c(n, n);
  Comparison cmp;
  cmp.serial_seconds = time_median_of(5, 2, [&] {
    c.set_zero();
    tensor::matmul_acc(a, b, c);
    benchmark::DoNotOptimize(c.data());
  });
  cmp.parallel_seconds = time_median_of(5, 2, [&] {
    c.set_zero();
    tensor::matmul_acc(a, b, c, ctx);
    benchmark::DoNotOptimize(c.data());
  });
  return cmp;
}

Comparison compare_prepare_clients(const runtime::RunContext& ctx) {
  core::ExperimentConfig cfg;
  cfg.generator.hours = 600;
  cfg.ddos.bursts = 8;
  cfg.filter.autoencoder.window = 12;
  cfg.filter.autoencoder.encoder_units = 10;
  cfg.filter.autoencoder.latent_units = 5;
  cfg.filter.autoencoder.max_epochs = 4;
  cfg.cache_dir.clear();  // measure the real fit, not a cache hit
  Comparison cmp;
  // prepare_clients is seconds-scale: median-of-3 with one warmup keeps the
  // comparison honest without blowing up the bench's runtime.
  cmp.serial_seconds = time_median_of(3, 1, [&] {
    benchmark::DoNotOptimize(core::prepare_clients(cfg));
  });
  cmp.parallel_seconds = time_median_of(3, 1, [&] {
    benchmark::DoNotOptimize(core::prepare_clients(cfg, &ctx));
  });
  return cmp;
}

void write_json(std::ostream& out, std::size_t threads,
                const Comparison& matmul, const Comparison& prep) {
  auto entry = [&](const char* name, const Comparison& c, const char* tail) {
    out << "  \"" << name << "\": {\"serial_seconds\": " << c.serial_seconds
        << ", \"parallel_seconds\": " << c.parallel_seconds
        << ", \"speedup\": " << c.speedup() << "}" << tail << "\n";
  };
  out << "{\n  \"threads\": " << threads << ",\n";
  entry("matmul_256", matmul, ",");
  entry("prepare_clients", prep, "");
  out << "}\n";
}

void run_runtime_comparison() {
  runtime::ThreadPool pool(0);  // hardware_concurrency
  runtime::RunContext ctx{&pool, nullptr};
  std::cout << "\n=== runtime layer: parallel vs serial (threads="
            << pool.concurrency() << ") ===\n";

  const Comparison matmul = compare_matmul(ctx);
  std::cout << "matmul 256x256x256:  serial " << matmul.serial_seconds
            << "s, parallel " << matmul.parallel_seconds << "s, speedup "
            << matmul.speedup() << "x\n";

  const Comparison prep = compare_prepare_clients(ctx);
  std::cout << "prepare_clients:     serial " << prep.serial_seconds
            << "s, parallel " << prep.parallel_seconds << "s, speedup "
            << prep.speedup() << "x\n";

  std::ofstream json("BENCH_runtime.json");
  write_json(json, pool.concurrency(), matmul, prep);
  std::cout << "wrote BENCH_runtime.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_runtime_comparison();
  return 0;
}
