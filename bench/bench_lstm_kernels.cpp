// Microbench of the LSTM training fast path at the paper's forecaster shape
// (batch 32, seq 24, hidden 64): step throughput plus *heap allocations per
// step* — the metric the workspace/fused-kernel work drives to zero and the
// perf-smoke CI job pins (allocation counts are deterministic; timings are
// not).  Writes BENCH_kernels.json.
//
//   bench_lstm_kernels                 # full run, prints + writes JSON
//   bench_lstm_kernels --check-allocs  # short run; exit 1 if the steady
//                                      # state still allocates
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>

#include "metrics/timer.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/rng.hpp"

// ---- global allocation counter ---------------------------------------------
// Replacing the global allocation functions makes every heap allocation in
// the process visible; the bench reads the counter before/after a measured
// region.  Counting is relaxed-atomic: cheap enough not to distort timings.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;
using tensor::Rng;
using tensor::Tensor3;

constexpr std::size_t kBatch = 32;
constexpr std::size_t kSeq = 24;
constexpr std::size_t kHidden = 64;

struct StepStats {
  double steps_per_sec = 0.0;
  double allocs_per_step = 0.0;
  double bytes_per_step = 0.0;
};

/// Time `step()` over `iters` iterations after `warmup` unmeasured ones;
/// allocation counters are sampled around the measured region only.
template <typename Fn>
StepStats measure(std::size_t warmup, std::size_t iters, Fn&& step) {
  for (std::size_t i = 0; i < warmup; ++i) step();
  const std::uint64_t a0 = g_alloc_count.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  const metrics::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) step();
  const double secs = timer.seconds();
  const std::uint64_t a1 = g_alloc_count.load();
  const std::uint64_t b1 = g_alloc_bytes.load();
  StepStats s;
  s.steps_per_sec = secs > 0.0 ? static_cast<double>(iters) / secs : 0.0;
  s.allocs_per_step = static_cast<double>(a1 - a0) / iters;
  s.bytes_per_step = static_cast<double>(b1 - b0) / iters;
  return s;
}

/// Forward+backward through a single Lstm layer (the kernel under test).
StepStats bench_lstm_fwd_bwd(std::size_t warmup, std::size_t iters) {
  Rng rng(1);
  nn::Lstm lstm(kHidden, /*return_sequences=*/true, rng, 1);
  Tensor3 x(kBatch, kSeq, 1), grad(kBatch, kSeq, kHidden);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] = rng.normal(0.0f, 0.01f);
  }
  return measure(warmup, iters, [&] {
    const Tensor3 out = lstm.forward(x, /*training=*/true);
    const Tensor3 dx = lstm.backward(grad);
    if (out.size() + dx.size() == 0) std::abort();  // keep the work alive
  });
}

/// A complete training step of the paper-shaped forecaster:
/// forward, loss, backward, Adam update.
StepStats bench_train_step(std::size_t warmup, std::size_t iters) {
  Rng rng(2);
  nn::Sequential model;
  model.emplace<nn::Lstm>(kHidden, /*return_sequences=*/false, rng, 1);
  model.emplace<nn::Dense>(8, nn::Activation::kRelu, rng, kHidden);
  model.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 8);
  nn::MseLoss loss;
  nn::Adam opt(1e-3f);
  nn::Trainer trainer(model, loss, opt, rng);

  Tensor3 x(kBatch, kSeq, 1), y(kBatch, 1, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.uniform(0, 1);

  return measure(warmup, iters, [&] {
    const float l = trainer.train_batch(x, y);
    if (!(l >= 0.0f)) std::abort();
  });
}

void print_stats(const char* name, const StepStats& s) {
  std::printf("%-14s %10.1f steps/s   %8.1f allocs/step   %10.0f B/step\n",
              name, s.steps_per_sec, s.allocs_per_step, s.bytes_per_step);
}

void write_json(const StepStats& kernel, const StepStats& train) {
  std::ofstream out("BENCH_kernels.json");
  auto entry = [&](const char* name, const StepStats& s, const char* tail) {
    out << "  \"" << name << "\": {\"steps_per_sec\": " << s.steps_per_sec
        << ", \"allocs_per_step\": " << s.allocs_per_step
        << ", \"bytes_per_step\": " << s.bytes_per_step << "}" << tail
        << "\n";
  };
  out << "{\n  \"config\": {\"batch\": " << kBatch << ", \"seq\": " << kSeq
      << ", \"hidden\": " << kHidden << "},\n";
  entry("lstm_fwd_bwd", kernel, ",");
  entry("train_step", train, "");
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check_allocs = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) check_allocs = true;
  }

  const std::size_t warmup = check_allocs ? 3 : 10;
  const std::size_t iters = check_allocs ? 5 : 200;

  const StepStats kernel = bench_lstm_fwd_bwd(warmup, iters);
  const StepStats train = bench_train_step(warmup, iters);
  std::printf("=== LSTM kernel bench (batch %zu, seq %zu, hidden %zu) ===\n",
              kBatch, kSeq, kHidden);
  print_stats("lstm_fwd_bwd", kernel);
  print_stats("train_step", train);

  if (check_allocs) {
    // The deterministic regression gate: the steady-state training step
    // must not touch the heap at all.
    if (kernel.allocs_per_step > 0.0 || train.allocs_per_step > 0.0) {
      std::printf("FAIL: steady-state heap allocations detected "
                  "(lstm_fwd_bwd %.1f/step, train_step %.1f/step)\n",
                  kernel.allocs_per_step, train.allocs_per_step);
      return 1;
    }
    std::printf("OK: steady state is allocation-free\n");
    return 0;
  }

  write_json(kernel, train);
  std::printf("wrote BENCH_kernels.json\n");
  return 0;
}
