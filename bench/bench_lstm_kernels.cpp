// Microbench of the LSTM training fast path at the paper's forecaster shape
// (batch 32, seq 24, hidden 64): step throughput plus *heap allocations per
// step* — the metric the workspace/fused-kernel work drives to zero and the
// perf-smoke CI job pins (allocation counts are deterministic; timings are
// not).  Writes BENCH_kernels.json.
//
//   bench_lstm_kernels                 # full run, prints + writes JSON
//   bench_lstm_kernels --check-allocs  # short run; exit 1 if the steady
//                                      # state still allocates
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <string>

#include "data/csv.hpp"
#include "metrics/timer.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/rng.hpp"

// ---- global allocation counter ---------------------------------------------
// Replacing the global allocation functions makes every heap allocation in
// the process visible; the bench reads the counter before/after a measured
// region.  Counting is relaxed-atomic: cheap enough not to distort timings.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;
using tensor::Rng;
using tensor::Tensor3;

constexpr std::size_t kBatch = 32;
constexpr std::size_t kSeq = 24;
constexpr std::size_t kHidden = 64;

struct StepStats {
  double steps_per_sec = 0.0;
  double allocs_per_step = 0.0;
  double bytes_per_step = 0.0;
};

/// Time `step()` over `iters` iterations after `warmup` unmeasured ones;
/// allocation counters are sampled around the measured region only.
template <typename Fn>
StepStats measure(std::size_t warmup, std::size_t iters, Fn&& step) {
  for (std::size_t i = 0; i < warmup; ++i) step();
  const std::uint64_t a0 = g_alloc_count.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  const metrics::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) step();
  const double secs = timer.seconds();
  const std::uint64_t a1 = g_alloc_count.load();
  const std::uint64_t b1 = g_alloc_bytes.load();
  StepStats s;
  s.steps_per_sec = secs > 0.0 ? static_cast<double>(iters) / secs : 0.0;
  s.allocs_per_step = static_cast<double>(a1 - a0) / iters;
  s.bytes_per_step = static_cast<double>(b1 - b0) / iters;
  return s;
}

/// Per-step latency distribution, sampled in a separate pass AFTER the
/// throughput measurement so the timed region above stays untouched (the
/// perf-smoke gate compares steps/s across builds).
template <typename Fn>
void sample_latency(obs::Histogram* hist, Fn&& step) {
  if (hist == nullptr) return;
  constexpr std::size_t kSamples = 50;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const metrics::WallTimer timer;
    step();
    hist->record(timer.seconds());
  }
}

/// Forward+backward through a single Lstm layer (the kernel under test).
StepStats bench_lstm_fwd_bwd(std::size_t warmup, std::size_t iters,
                             obs::Histogram* latency) {
  Rng rng(1);
  nn::Lstm lstm(kHidden, /*return_sequences=*/true, rng, 1);
  Tensor3 x(kBatch, kSeq, 1), grad(kBatch, kSeq, kHidden);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] = rng.normal(0.0f, 0.01f);
  }
  const auto step = [&] {
    const Tensor3 out = lstm.forward(x, /*training=*/true);
    const Tensor3 dx = lstm.backward(grad);
    if (out.size() + dx.size() == 0) std::abort();  // keep the work alive
  };
  const StepStats stats = measure(warmup, iters, step);
  sample_latency(latency, step);
  return stats;
}

/// A complete training step of the paper-shaped forecaster:
/// forward, loss, backward, Adam update.
StepStats bench_train_step(std::size_t warmup, std::size_t iters,
                           obs::Histogram* latency) {
  Rng rng(2);
  nn::Sequential model;
  model.emplace<nn::Lstm>(kHidden, /*return_sequences=*/false, rng, 1);
  model.emplace<nn::Dense>(8, nn::Activation::kRelu, rng, kHidden);
  model.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 8);
  nn::MseLoss loss;
  nn::Adam opt(1e-3f);
  nn::Trainer trainer(model, loss, opt, rng);

  Tensor3 x(kBatch, kSeq, 1), y(kBatch, 1, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.uniform(0, 1);

  const auto step = [&] {
    const float l = trainer.train_batch(x, y);
    if (!(l >= 0.0f)) std::abort();
  };
  const StepStats stats = measure(warmup, iters, step);
  sample_latency(latency, step);
  return stats;
}

void print_stats(const char* name, const StepStats& s) {
  std::printf("%-14s %10.1f steps/s   %8.1f allocs/step   %10.0f B/step\n",
              name, s.steps_per_sec, s.allocs_per_step, s.bytes_per_step);
}

void write_json(const StepStats& kernel, const StepStats& train) {
  std::ofstream out("BENCH_kernels.json");
  auto entry = [&](const char* name, const StepStats& s, const char* tail) {
    out << "  \"" << name << "\": {\"steps_per_sec\": " << s.steps_per_sec
        << ", \"allocs_per_step\": " << s.allocs_per_step
        << ", \"bytes_per_step\": " << s.bytes_per_step << "}" << tail
        << "\n";
  };
  out << "{\n  \"config\": {\"batch\": " << kBatch << ", \"seq\": " << kSeq
      << ", \"hidden\": " << kHidden << "},\n";
  entry("lstm_fwd_bwd", kernel, ",");
  entry("train_step", train, "");
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check_allocs = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) check_allocs = true;
  }

  const std::size_t warmup = check_allocs ? 3 : 10;
  const std::size_t iters = check_allocs ? 5 : 200;

  // Telemetry is skipped entirely under --check-allocs: the TraceWriter and
  // the latency-sampling pass both touch the heap, and that mode exists to
  // prove the training steady state does not.
  evfl::obs::Registry registry;
  std::unique_ptr<evfl::obs::TraceWriter> trace;
  evfl::obs::Histogram* kernel_hist = nullptr;
  evfl::obs::Histogram* train_hist = nullptr;
  std::string trace_path, metrics_path;
  if (!check_allocs) {
    trace_path = evfl::data::artifact_path("kernels_trace.jsonl");
    metrics_path = evfl::data::artifact_path("kernels_metrics.json");
    trace = std::make_unique<evfl::obs::TraceWriter>(trace_path);
    kernel_hist = &registry.histogram("lstm_fwd_bwd_step_seconds");
    train_hist = &registry.histogram("train_step_seconds");
  }

  const std::uint64_t t0 = trace ? trace->now_us() : 0;
  const StepStats kernel = bench_lstm_fwd_bwd(warmup, iters, kernel_hist);
  if (trace) {
    trace->complete("bench.lstm_fwd_bwd", "bench", t0, trace->now_us() - t0);
  }
  const std::uint64_t t1 = trace ? trace->now_us() : 0;
  const StepStats train = bench_train_step(warmup, iters, train_hist);
  if (trace) {
    trace->complete("bench.train_step", "bench", t1, trace->now_us() - t1);
    trace->counter("lstm_fwd_bwd.steps_per_sec", kernel.steps_per_sec);
    trace->counter("train_step.steps_per_sec", train.steps_per_sec);
    trace->flush();
  }
  std::printf("=== LSTM kernel bench (batch %zu, seq %zu, hidden %zu) ===\n",
              kBatch, kSeq, kHidden);
  print_stats("lstm_fwd_bwd", kernel);
  print_stats("train_step", train);

  if (check_allocs) {
    // The deterministic regression gate: the steady-state training step
    // must not touch the heap at all.
    if (kernel.allocs_per_step > 0.0 || train.allocs_per_step > 0.0) {
      std::printf("FAIL: steady-state heap allocations detected "
                  "(lstm_fwd_bwd %.1f/step, train_step %.1f/step)\n",
                  kernel.allocs_per_step, train.allocs_per_step);
      return 1;
    }
    std::printf("OK: steady state is allocation-free\n");
    return 0;
  }

  write_json(kernel, train);
  std::printf("wrote BENCH_kernels.json\n");

  {
    std::ofstream metrics(metrics_path);
    registry.write_json(metrics);
    metrics << "\n";
  }
  std::printf("latency p50/p95/p99 (ms): lstm_fwd_bwd %.3f/%.3f/%.3f, "
              "train_step %.3f/%.3f/%.3f\n",
              kernel_hist->quantile(0.50) * 1e3,
              kernel_hist->quantile(0.95) * 1e3,
              kernel_hist->quantile(0.99) * 1e3,
              train_hist->quantile(0.50) * 1e3,
              train_hist->quantile(0.95) * 1e3,
              train_hist->quantile(0.99) * 1e3);
  std::printf("trace: %s\nmetrics: %s\n", trace_path.c_str(),
              metrics_path.c_str());
  return 0;
}
