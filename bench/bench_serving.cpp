// Serving-path bench at the paper's forecaster shape: forecasts/sec for
// the per-series baseline (Sequential::predict, one series per call — the
// path serving used before forecast::Engine) versus batched engine scoring
// with fp32 and int8 snapshots, plus *heap allocations per scoring batch*
// — the deterministic metric the perf-smoke CI job pins (timings are
// trend-watched via the JSON artifact, not gated; shared runners make them
// noisy).  Writes BENCH_serving.json.
//
//   bench_serving                  # full run: trains briefly, prints
//                                  # throughput/R2/latency, writes JSON
//   bench_serving --check-allocs   # short run; exit 1 if a steady-state
//                                  # scoring batch still allocates
//
// Honors the serving CLI knobs: --serve-batch N, --serve-quant-bits 0|8
// (restricts the comparison table to that precision), --threads N (adds a
// pool-parallel engine measurement; note ThreadPool dispatch itself
// allocates, so the zero-alloc gate always measures the serial path).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "data/csv.hpp"
#include "data/window.hpp"
#include "forecast/engine.hpp"
#include "metrics/regression.hpp"
#include "metrics/timer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "obs/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/rng.hpp"

// ---- global allocation counter ---------------------------------------------
// Same instrumentation as bench_lstm_kernels: replacing the global
// allocation functions makes every heap allocation visible, sampled around
// the measured region only.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace evfl;
using tensor::Rng;
using tensor::Tensor3;

struct BatchStats {
  double forecasts_per_sec = 0.0;
  double batches_per_sec = 0.0;
  double allocs_per_batch = 0.0;
  double bytes_per_batch = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Time one scoring batch over `iters` iterations after `warmup` unmeasured
/// ones; allocation counters sample the measured region only.  Throughput
/// is the fastest of several timing windows — on a shared runner a single
/// wall-clock window absorbs co-tenant noise bursts, and the minimum is
/// the standard low-variance estimator of intrinsic compute cost (the
/// per-batch latency histogram still reflects the full distribution).  A
/// separate latency pass afterwards fills `hist` without perturbing the
/// timed loop.
template <typename Fn>
BatchStats measure(std::size_t warmup, std::size_t iters, std::size_t batch,
                   obs::Histogram* hist, Fn&& step) {
  for (std::size_t i = 0; i < warmup; ++i) step();
  const std::size_t windows = iters >= 5 ? 5 : 1;
  const std::size_t per_window = iters / windows;
  const std::uint64_t a0 = g_alloc_count.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  double best_secs = 0.0;
  for (std::size_t w = 0; w < windows; ++w) {
    const metrics::WallTimer timer;
    for (std::size_t i = 0; i < per_window; ++i) step();
    const double secs = timer.seconds();
    if (w == 0 || secs < best_secs) best_secs = secs;
  }
  const std::uint64_t a1 = g_alloc_count.load();
  const std::uint64_t b1 = g_alloc_bytes.load();
  const std::size_t measured = windows * per_window;
  BatchStats s;
  s.batches_per_sec =
      best_secs > 0.0 ? static_cast<double>(per_window) / best_secs : 0.0;
  s.forecasts_per_sec = s.batches_per_sec * static_cast<double>(batch);
  s.allocs_per_batch = static_cast<double>(a1 - a0) / measured;
  s.bytes_per_batch = static_cast<double>(b1 - b0) / measured;
  if (hist != nullptr) {
    constexpr std::size_t kSamples = 100;
    for (std::size_t i = 0; i < kSamples; ++i) {
      const metrics::WallTimer t;
      step();
      hist->record(t.seconds());
    }
    s.p50_ms = hist->quantile(0.50) * 1e3;
    s.p99_ms = hist->quantile(0.99) * 1e3;
  }
  return s;
}

void print_stats(const char* name, const BatchStats& s) {
  std::printf(
      "%-22s %12.0f forecasts/s  %8.1f allocs/batch  p50 %7.3f ms  "
      "p99 %7.3f ms\n",
      name, s.forecasts_per_sec, s.allocs_per_batch, s.p50_ms, s.p99_ms);
}

void json_entry(std::ofstream& out, const char* name, const BatchStats& s,
                const char* tail) {
  out << "  \"" << name << "\": {\"forecasts_per_sec\": "
      << s.forecasts_per_sec << ", \"batches_per_sec\": " << s.batches_per_sec
      << ", \"allocs_per_batch\": " << s.allocs_per_batch
      << ", \"bytes_per_batch\": " << s.bytes_per_batch
      << ", \"p50_ms\": " << s.p50_ms << ", \"p99_ms\": " << s.p99_ms << "}"
      << tail << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check_allocs = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-allocs") == 0) {
      check_allocs = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  core::ExperimentConfig cfg;
  core::apply_cli_overrides(cfg, static_cast<int>(passthrough.size()),
                            passthrough.data());

  const std::size_t batch = cfg.serve_batch;
  const forecast::ForecasterConfig& model_cfg = cfg.forecaster;

  // Build the paper-shaped forecaster.  The full run trains it briefly on
  // a periodic signal so the R2 comparison is against a model that has
  // actually learned something; the alloc gate skips training (allocation
  // behavior does not depend on weight values).
  Rng rng(cfg.seed);
  nn::Sequential model = forecast::make_forecaster(model_cfg, rng);

  data::SequenceDataset ds;
  {
    std::vector<float> wave;
    const std::size_t hours = check_allocs ? 200 : 1200;
    for (std::size_t i = 0; i < hours; ++i) {
      wave.push_back(0.5f +
                     0.4f * std::sin(static_cast<float>(i) * 2.0f * 3.14159f /
                                     static_cast<float>(
                                         model_cfg.sequence_length)) +
                     0.02f * rng.uniform(-1.0f, 1.0f));
    }
    ds = data::make_forecast_sequences(wave, model_cfg.sequence_length);
  }
  if (!check_allocs) {
    nn::MseLoss loss;
    nn::Adam adam(1e-2f);
    nn::Trainer trainer(model, loss, adam, rng);
    nn::FitConfig fit;
    fit.epochs = 8;
    fit.batch_size = model_cfg.batch_size;
    trainer.fit(ds.x, ds.y, fit);
  }
  const std::vector<float> weights = model.get_weights();

  // One fixed scoring batch, drawn from the dataset (wraps if needed).
  Tensor3 x(batch, model_cfg.sequence_length, model_cfg.input_features);
  for (std::size_t i = 0; i < batch; ++i) {
    ds.x.copy_sample_into(i % ds.x.batch(), x, i);
  }

  const std::size_t warmup = check_allocs ? 3 : 10;
  const std::size_t iters = check_allocs ? 10 : 100;

  obs::Registry registry;
  obs::Histogram* base_hist = nullptr;
  obs::Histogram* fp32_hist = nullptr;
  obs::Histogram* int8_hist = nullptr;
  if (!check_allocs) {
    base_hist = &registry.histogram("serving.baseline_batch_seconds");
    fp32_hist = &registry.histogram("serving.fp32_batch_seconds");
    int8_hist = &registry.histogram("serving.int8_batch_seconds");
  }

  // --- per-series baseline: the pre-engine serving path --------------------
  // One Sequential::predict per series, sequences pre-sliced so the loop
  // measures the model path, not tensor slicing.
  std::vector<Tensor3> singles;
  singles.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    singles.push_back(x.batch_slice(i, i + 1));
  }
  std::vector<float> sink(batch);
  const BatchStats baseline =
      measure(warmup, iters, batch, base_hist, [&] {
        for (std::size_t i = 0; i < batch; ++i) {
          const Tensor3 out = model.predict(singles[i]);
          sink[i] = out(0, 0, 0);
        }
      });

  // --- engine snapshots ----------------------------------------------------
  forecast::EngineConfig fp32_cfg;
  fp32_cfg.max_batch = batch;
  forecast::Engine fp32(model_cfg, fp32_cfg,
                        check_allocs ? nullptr : &registry);
  fp32.publish(weights);

  forecast::EngineConfig int8_cfg = fp32_cfg;
  int8_cfg.precision = forecast::ServePrecision::kInt8;
  forecast::Engine int8(model_cfg, int8_cfg);
  int8.publish(weights);

  std::vector<float> out(batch);
  const BatchStats fp32_stats = measure(warmup, iters, batch, fp32_hist,
                                        [&] { fp32.score(x, out.data()); });
  const BatchStats int8_stats = measure(warmup, iters, batch, int8_hist,
                                        [&] { int8.score(x, out.data()); });

  std::printf("=== serving bench (batch %zu, seq %zu, hidden %zu, "
              "threads %zu) ===\n",
              batch, model_cfg.sequence_length, model_cfg.lstm_units,
              cfg.threads);
  print_stats("baseline_per_series", baseline);
  print_stats("engine_fp32", fp32_stats);
  print_stats("engine_int8", int8_stats);

  const double speedup_fp32 =
      baseline.forecasts_per_sec > 0.0
          ? fp32_stats.forecasts_per_sec / baseline.forecasts_per_sec
          : 0.0;
  const double speedup_int8 =
      fp32_stats.forecasts_per_sec > 0.0
          ? int8_stats.forecasts_per_sec / fp32_stats.forecasts_per_sec
          : 0.0;
  std::printf("speedup: fp32 batch vs per-series %.2fx, int8 vs fp32 "
              "%.2fx\n",
              speedup_fp32, speedup_int8);

  if (check_allocs) {
    // The deterministic regression gate: a steady-state scoring batch must
    // not touch the heap, in either precision.
    if (fp32_stats.allocs_per_batch > 0.0 ||
        int8_stats.allocs_per_batch > 0.0) {
      std::printf("FAIL: steady-state scoring allocates (fp32 %.1f/batch, "
                  "int8 %.1f/batch)\n",
                  fp32_stats.allocs_per_batch, int8_stats.allocs_per_batch);
      return 1;
    }
    std::printf("OK: steady-state scoring is allocation-free\n");
    return 0;
  }

  // --- pool-parallel engine scoring (reported, never alloc-gated) ----------
  BatchStats fp32_mt;
  if (cfg.threads != 1) {
    runtime::ThreadPool pool(cfg.threads);
    runtime::RunContext ctx;
    ctx.pool = &pool;
    fp32_mt = measure(warmup, iters, batch, nullptr,
                      [&] { fp32.score(x, out.data(), &ctx); });
    print_stats("engine_fp32_pool", fp32_mt);
  }

  // --- accuracy: int8 snapshots must track fp32 ----------------------------
  forecast::EngineConfig eval_cfg;
  eval_cfg.max_batch = ds.x.batch();
  forecast::Engine fp32_eval(model_cfg, eval_cfg);
  fp32_eval.publish(weights);
  forecast::EngineConfig eval8_cfg = eval_cfg;
  eval8_cfg.precision = forecast::ServePrecision::kInt8;
  forecast::Engine int8_eval(model_cfg, eval8_cfg);
  int8_eval.publish(weights);

  std::vector<float> pred_fp32, pred_int8, actual(ds.x.batch());
  fp32_eval.score(ds.x, pred_fp32);
  int8_eval.score(ds.x, pred_int8);
  for (std::size_t i = 0; i < actual.size(); ++i) actual[i] = ds.y(i, 0, 0);
  const double r2_fp32 = metrics::r2_score(actual, pred_fp32);
  const double r2_int8 = metrics::r2_score(actual, pred_int8);
  std::printf("R2: fp32 %.4f, int8 %.4f (cost %.4f)\n", r2_fp32, r2_int8,
              r2_fp32 - r2_int8);

  {
    std::ofstream json("BENCH_serving.json");
    json << "{\n  \"config\": {\"batch\": " << batch
         << ", \"seq\": " << model_cfg.sequence_length
         << ", \"hidden\": " << model_cfg.lstm_units
         << ", \"dense\": " << model_cfg.dense_units
         << ", \"threads\": " << cfg.threads
         << ", \"serve_quant_bits\": " << cfg.serve_quant_bits << "},\n";
    json_entry(json, "baseline_per_series", baseline, ",");
    json_entry(json, "engine_fp32", fp32_stats, ",");
    json_entry(json, "engine_int8", int8_stats, ",");
    if (cfg.threads != 1) json_entry(json, "engine_fp32_pool", fp32_mt, ",");
    json << "  \"speedup_fp32_vs_baseline\": " << speedup_fp32 << ",\n"
         << "  \"speedup_int8_vs_fp32\": " << speedup_int8 << ",\n"
         << "  \"r2_fp32\": " << r2_fp32 << ",\n"
         << "  \"r2_int8\": " << r2_int8 << ",\n"
         << "  \"r2_cost\": " << r2_fp32 - r2_int8 << "\n}\n";
  }
  std::printf("wrote BENCH_serving.json\n");

  const std::string metrics_path = data::artifact_path("serving_metrics.json");
  {
    std::ofstream metrics(metrics_path);
    registry.write_json(metrics);
    metrics << "\n";
  }
  std::printf("metrics: %s\n", metrics_path.c_str());
  return 0;
}
