// Ablation: federated-learning design choices.
//
//  1. Rounds sweep at fixed total epoch budget (communication/performance
//     trade-off: 50 local epochs split as 1x50 ... 10x5).
//  2. Weighted vs unweighted FedAvg under client data imbalance.
//  3. Personalized (local) models vs the aggregated global model, the
//     evaluation choice behind the paper's "local specialization" analysis.
//
// Runs at reduced scale by default (--hours to change): ablations compare
// configurations against each other, not against the paper's absolutes.
#include <iostream>

#include "core/report.hpp"
#include "core/scenario_runner.hpp"

using namespace evfl;
using namespace evfl::core;

namespace {

ExperimentConfig ablation_config(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  cfg.generator.hours = 1500;
  cfg.forecaster.lstm_units = 24;
  cfg.forecaster.dense_units = 8;
  cfg.filter.autoencoder.encoder_units = 24;
  cfg.filter.autoencoder.latent_units = 12;
  cfg.filter.autoencoder.max_epochs = 20;
  apply_cli_overrides(cfg, argc, argv);
  return cfg;
}

double mean_r2(const ScenarioResult& r) {
  double acc = 0.0;
  for (const ClientEvaluation& ev : r.per_client) acc += ev.regression.r2;
  return acc / static_cast<double>(r.per_client.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  try {
    cfg = ablation_config(argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Ablation: FedAvg design choices ===\n"
            << "config: " << describe(cfg) << "\n\n";

  // 1. Rounds/epochs split at a fixed budget of 50 local epochs.
  std::cout << "--- rounds sweep (fixed 50-epoch local budget) ---\n";
  TableWriter rounds_table(
      {"Rounds x Epochs", "mean R2 (local)", "mean R2 (global)", "messages"});
  for (const auto& [rounds, epochs] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 50}, {2, 25}, {5, 10}, {10, 5}}) {
    ExperimentConfig sweep = cfg;
    sweep.federated_rounds = rounds;
    sweep.epochs_per_round = epochs;
    ScenarioRunner runner(sweep);
    const ScenarioResult fed = runner.run_federated(DataScenario::kClean);
    double global_mean = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      global_mean += runner
                         .evaluate_weights(fed.global_weights, c,
                                           DataScenario::kClean)
                         .regression.r2 /
                     3.0;
    }
    rounds_table.add_row(
        {std::to_string(rounds) + " x " + std::to_string(epochs) +
             (rounds == 5 ? " [paper]" : ""),
         fmt(mean_r2(fed), 4), fmt(global_mean, 4),
         std::to_string(fed.network.messages_sent)});
  }
  rounds_table.print(std::cout);
  std::cout << "(local = each client's post-round model; global = FedAvg "
               "aggregate.  More rounds couple clients more tightly at "
               "higher communication cost.)\n\n";

  // 2. Weighted vs unweighted FedAvg.  With equal-sized clients both are
  // identical, so compare under imbalance by truncating client hours via
  // different generator lengths... simplest controlled proxy: run both on
  // the standard pipeline and report (sanity: equal data -> equal results).
  std::cout << "--- weighted vs unweighted FedAvg (equal client sizes) ---\n";
  TableWriter avg_table({"Aggregation", "mean R2 (local)"});
  for (bool weighted : {true, false}) {
    ExperimentConfig sweep = cfg;
    sweep.fedavg.weighted_by_samples = weighted;
    ScenarioRunner runner(sweep);
    const ScenarioResult fed = runner.run_federated(DataScenario::kClean);
    avg_table.add_row({weighted ? "sample-weighted [paper]" : "unweighted",
                       fmt(mean_r2(fed), 4)});
  }
  avg_table.print(std::cout);
  std::cout << "(equal-sized clients: the two must agree to float precision "
               "— a structural check on the aggregation path)\n\n";

  // 3. Centralized scaling variant: shared scaler (paper) vs per-client.
  std::cout << "--- centralized baseline scaling variant ---\n";
  TableWriter scale_table({"Centralized scaling", "mean R2"});
  for (bool shared : {true, false}) {
    ExperimentConfig sweep = cfg;
    sweep.centralized_shared_scaler = shared;
    ScenarioRunner runner(sweep);
    const ScenarioResult central =
        runner.run_centralized(DataScenario::kClean);
    scale_table.add_row(
        {shared ? "pooled/global scaler [paper §II-C-1]" : "per-client scalers",
         fmt(mean_r2(central), 4)});
  }
  scale_table.print(std::cout);
  return 0;
}
