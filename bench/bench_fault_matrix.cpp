// Fault-tolerance matrix: sweep crash-fraction x corruption-rate x
// attacker-presence over a federated run and show that forecast quality
// (validation R² of the global model) degrades gracefully — the hardened
// round protocol rejects poisoned updates and times out crashed clients
// instead of hanging or diverging, and a trimmed-mean defense keeps one
// live within-clip-norm (ALIE) attacker from compounding with the faults.
//
// Writes BENCH_faults.json with one cell per (crash_fraction,
// corruption_rate, attack) triple, plus trace/metrics telemetry under
// build/artifacts/ (override with --trace-out / --metrics-json).
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "data/csv.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "fl/adversary.hpp"
#include "fl/driver.hpp"
#include "metrics/regression.hpp"
#include "nn/dense.hpp"
#include "obs/round_telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"

using namespace evfl;

namespace {

constexpr int kClients = 6;
constexpr std::size_t kRounds = 8;
constexpr std::size_t kSamplesPerClient = 96;
constexpr std::uint64_t kDataSeed = 29;
constexpr std::uint64_t kFaultSeed = 31;

fl::ModelFactory linear_factory() {
  return [](tensor::Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

/// Homogeneous fleet fitting y = 2x: every client agrees on the optimum,
/// so any quality loss in the sweep is attributable to the injected faults.
std::vector<std::unique_ptr<fl::Client>> make_clients() {
  std::vector<std::unique_ptr<fl::Client>> clients;
  tensor::Rng root(kDataSeed);
  for (int c = 0; c < kClients; ++c) {
    tensor::Tensor3 x(kSamplesPerClient, 1, 1), y(kSamplesPerClient, 1, 1);
    tensor::Rng data_rng = root.split();
    for (std::size_t i = 0; i < kSamplesPerClient; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = 2.0f * xi + data_rng.normal(0.0f, 0.05f);
    }
    fl::ClientConfig cfg;
    cfg.epochs_per_round = 10;
    cfg.learning_rate = 0.05f;
    cfg.batch_size = 16;
    clients.push_back(std::make_unique<fl::Client>(
        c, x, y, linear_factory(), cfg, root.split()));
  }
  return clients;
}

double holdout_r2(const std::vector<float>& weights) {
  tensor::Rng rng(733);
  std::vector<float> actual, predicted;
  for (int i = 0; i < 512; ++i) {
    const float x = rng.uniform(-1.0f, 1.0f);
    actual.push_back(2.0f * x);
    predicted.push_back(weights[0] * x + weights[1]);
  }
  return metrics::r2_score(actual, predicted);
}

struct Cell {
  double crash_fraction = 0.0;
  double corruption_rate = 0.0;
  bool attacked = false;
  double r2 = 0.0;
  std::size_t rejected = 0;
  std::size_t timed_out = 0;
  std::size_t accepted = 0;
};

Cell run_cell(double crash_fraction, double corruption_rate, bool attacked,
              const runtime::RunContext* ctx,
              obs::RoundTelemetrySink* telemetry) {
  auto clients = make_clients();

  faults::FaultPlan plan;
  // Crash the first floor(f * n) clients permanently.
  const int crashed = static_cast<int>(crash_fraction * kClients);
  for (int c = 0; c < crashed; ++c) plan.crash(c);
  // Every surviving client's update is independently corrupted with
  // probability corruption_rate each round.
  if (corruption_rate > 0.0) {
    for (int c = crashed; c < kClients; ++c) {
      plan.corrupt(c, faults::CorruptionMode::kNaN, 0, faults::kAllRounds,
                   corruption_rate);
    }
  }
  const faults::FaultInjector injector(plan, kFaultSeed);

  // Attacked cells add one live within-clip-norm ALIE attacker (the last
  // client, which the crash plan never takes) and defend with trimmed mean;
  // the validator alone cannot see a within-norm poison, so the cell shows
  // the robust rule carrying the matrix's graceful-degradation guarantee.
  fl::AdversaryConfig acfg;
  acfg.kind = attacked ? fl::AttackKind::kAlie : fl::AttackKind::kNone;
  acfg.attackers = {kClients - 1};
  acfg.norm_budget = 1.0;
  const fl::AdversarySuite adversary(acfg);

  fl::ValidatorConfig vc;
  vc.max_update_norm = 10.0;
  fl::FedAvgConfig fedavg;
  if (attacked) {
    fedavg.rule = fl::AggregationRule::kTrimmedMean;
    fedavg.trim_fraction = 0.34;
  }
  fl::Server server({0.0f, 0.0f}, fedavg, vc);
  fl::InMemoryNetwork net;
  fl::SyncDriver driver(server, clients, net, ctx, &injector,
                        fl::RoundPolicy{}, telemetry,
                        attacked ? &adversary : nullptr);
  const fl::FederatedRunResult result = driver.run(kRounds);

  Cell cell;
  cell.crash_fraction = crash_fraction;
  cell.corruption_rate = corruption_rate;
  cell.attacked = attacked;
  cell.r2 = holdout_r2(result.final_weights);
  cell.rejected = result.total_rejected_updates();
  cell.timed_out = result.total_timed_out_clients();
  for (const fl::RoundMetrics& r : result.rounds) {
    cell.accepted += r.updates_received;
  }
  return cell;
}

std::string fmt(double v, int precision = 4) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << std::unitbuf;

  std::string trace_out = data::artifact_path("faults_trace.jsonl");
  std::string metrics_json = data::artifact_path("faults_metrics.json");
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--trace-out") {
      trace_out = argv[i + 1];
    } else if (key == "--metrics-json") {
      metrics_json = argv[i + 1];
    } else {
      std::cerr << "unknown option: " << key
                << " (expected --trace-out FILE or --metrics-json FILE)\n";
      return 2;
    }
  }

  obs::TraceWriter trace(trace_out);
  obs::RoundTelemetrySink telemetry;
  runtime::RunContext ctx;
  ctx.trace = &trace;

  const std::vector<double> crash_fractions = {0.0, 1.0 / 6.0, 1.0 / 3.0};
  const std::vector<double> corruption_rates = {0.0, 0.25, 0.5};

  std::cout << "=== fault matrix: crash fraction x corruption rate x attack ==="
            << "\nclients=" << kClients << " rounds=" << kRounds
            << " (SyncDriver, validator: reject non-finite, clip norm 10;\n"
            << " attacked cells: 1 ALIE client, trimmed-mean defense)\n\n"
            << std::left << std::setw(12) << "crash_frac" << std::setw(14)
            << "corrupt_rate" << std::setw(10) << "attack" << std::setw(10)
            << "R2" << std::setw(10) << "accepted" << std::setw(10)
            << "rejected" << std::setw(10) << "timed_out" << "\n";

  std::vector<Cell> cells;
  double r2_clean = 0.0;
  for (const bool attacked : {false, true}) {
    for (const double cf : crash_fractions) {
      for (const double cr : corruption_rates) {
        const Cell cell = run_cell(cf, cr, attacked, &ctx, &telemetry);
        if (cf == 0.0 && cr == 0.0 && !attacked) r2_clean = cell.r2;
        cells.push_back(cell);
        std::cout << std::left << std::setw(12) << fmt(cf, 2) << std::setw(14)
                  << fmt(cr, 2) << std::setw(10)
                  << (attacked ? "alie" : "none") << std::setw(10)
                  << fmt(cell.r2) << std::setw(10) << cell.accepted
                  << std::setw(10) << cell.rejected << std::setw(10)
                  << cell.timed_out << "\n";
      }
    }
  }

  std::cout << "\n--- shape checks ---\n";
  // Trimmed mean holds only while a majority of the *accepted* updates are
  // honest; at corruption rate 0.5 the validator sometimes rejects every
  // honest survivor and the attacker owns the round — no aggregation rule
  // can help there.  So: tight degradation bound in the honest-majority
  // regime, bounded (clip-limited, never divergent) degradation beyond it.
  bool majority_holds = true, bounded_holds = true;
  for (const Cell& c : cells) {
    const bool honest_majority = !c.attacked || c.corruption_rate <= 0.25;
    if (honest_majority && c.r2 < r2_clean - 0.1) majority_holds = false;
    if (!(c.r2 >= 0.25)) bounded_holds = false;  // also catches NaN
  }
  const bool holds = majority_holds && bounded_holds;
  std::cout << "fault-free R2: " << fmt(r2_clean) << "\n"
            << "R2 within 0.1 of fault-free wherever an honest majority "
               "survives: "
            << (majority_holds ? "YES" : "NO") << "\n"
            << "R2 bounded (>= 0.25, finite) even with attacker + majority "
               "corruption: "
            << (bounded_holds ? "YES" : "NO") << "\n";

  std::ofstream json("BENCH_faults.json");
  json << "{\n  \"clients\": " << kClients << ",\n  \"rounds\": " << kRounds
       << ",\n  \"r2_fault_free\": " << fmt(r2_clean, 6)
       << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"crash_fraction\": " << fmt(c.crash_fraction, 4)
         << ", \"corruption_rate\": " << fmt(c.corruption_rate, 4)
         << ", \"attack\": \"" << (c.attacked ? "alie" : "none") << "\""
         << ", \"r2\": " << fmt(c.r2, 6) << ", \"accepted\": " << c.accepted
         << ", \"rejected\": " << c.rejected
         << ", \"timed_out\": " << c.timed_out << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_faults.json\n";

  telemetry.write_json_file(metrics_json, {});
  trace.flush();
  std::cout << "telemetry: " << telemetry.size() << " rounds, p50/p95 (s) "
            << fmt(telemetry.round_seconds_quantile(0.50), 5) << " / "
            << fmt(telemetry.round_seconds_quantile(0.95), 5) << "\n"
            << "trace:   " << trace_out << "\n"
            << "metrics: " << metrics_json << "\n";
  return holds ? 0 : 1;
}
