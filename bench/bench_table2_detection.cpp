// Reproduces Table II (client-specific anomaly detection precision / recall
// / F1) and the in-text §III-C aggregates: overall precision 0.913 and
// false positive rate 1.21%.
#include <iostream>

#include "core/report.hpp"
#include "core/scenario_runner.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  // The table/figure benches share one expensive pipeline pass (generation,
  // attack injection, autoencoder fitting) through an on-disk cache keyed
  // by the config fingerprint.  Pass --cache-dir "" to disable.
  cfg.cache_dir = "bench_cache";
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "=== Table II: client-specific anomaly detection results ===\n"
            << "config: " << describe(cfg) << "\n\n";

  ScenarioRunner runner(cfg);
  const DetectionReport report = runner.detection_report();

  TableWriter table({"Client (zone)", "Precision", "Recall", "F1",
                     "paper P", "paper R", "paper F1"});
  for (std::size_t c = 0; c < report.per_client.size(); ++c) {
    const auto& [zone, m] = report.per_client[c];
    const PaperDetectionRow& p = kPaperTable2.at(c);
    table.add_row({std::to_string(c + 1) + " (" + zone + ")",
                   fmt(m.precision, 3), fmt(m.recall, 3), fmt(m.f1, 3),
                   fmt(p.precision, 3), fmt(p.recall, 3), fmt(p.f1, 3)});
  }
  table.print(std::cout);

  std::cout << "\n--- aggregate detection (in-text §III-C) ---\n";
  std::cout << "overall precision:    measured " << fmt(report.aggregate.precision, 3)
            << "   (paper " << fmt(kPaperOverallPrecision, 3) << ")\n";
  std::cout << "false positive rate:  measured "
            << fmt(report.aggregate.false_positive_rate * 100.0, 2)
            << "%   (paper " << fmt(kPaperFalsePositiveRate * 100.0, 2)
            << "%)\n";
  std::cout << "overall recall:       measured " << fmt(report.aggregate.recall, 3)
            << "\n";
  std::cout << "overall F1:           measured " << fmt(report.aggregate.f1, 3)
            << "\n";

  std::cout << "\n--- confusion matrices ---\n";
  TableWriter cmt({"Client", "TP", "FP", "FN", "TN"});
  for (const auto& [zone, m] : report.per_client) {
    cmt.add_row({zone, std::to_string(m.cm.tp), std::to_string(m.cm.fp),
                 std::to_string(m.cm.fn), std::to_string(m.cm.tn)});
  }
  cmt.add_row({"all", std::to_string(report.aggregate.cm.tp),
               std::to_string(report.aggregate.cm.fp),
               std::to_string(report.aggregate.cm.fn),
               std::to_string(report.aggregate.cm.tn)});
  cmt.print(std::cout);

  // The paper's qualitative finding: zone 108's natural spikes resemble
  // attack signatures, so its recall is the worst of the three.
  const double recall_108 = report.per_client.at(2).second.recall;
  const double recall_102 = report.per_client.at(0).second.recall;
  const double recall_105 = report.per_client.at(1).second.recall;
  std::cout << "\nzone 108 hardest to detect (lowest recall): "
            << ((recall_108 < recall_102 && recall_108 < recall_105)
                    ? "REPRODUCED"
                    : "NOT reproduced")
            << "\n";
  return 0;
}
