// Reproduces Table I: complete performance comparison for Client 1 across
// the four experimental scenarios (§III-A), plus the in-text training-time
// consistency and recovery claims (§III-B/C/F).
//
// Usage: bench_table1_scenarios [--rounds N] [--epochs N] [--hours N] ...
// Defaults are the paper's hyperparameters; see core/config.hpp.
#include <iostream>

#include "core/report.hpp"
#include "core/scenario_runner.hpp"
#include "data/csv.hpp"

using namespace evfl;
using namespace evfl::core;

int main(int argc, char** argv) {
  std::cout << std::unitbuf;  // progress lines reach redirected logs promptly
  ExperimentConfig cfg;
  cfg.threads = 0;  // pool sized to the machine; override with --threads N
  // The table/figure benches share one expensive pipeline pass (generation,
  // attack injection, autoencoder fitting) through an on-disk cache keyed
  // by the config fingerprint.  Pass --cache-dir "" to disable.
  cfg.cache_dir = "bench_cache";
  try {
    apply_cli_overrides(cfg, argc, argv);
  } catch (const Error& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  }
  // Telemetry defaults to build/artifacts/ so CI can pick it up; pass
  // --trace-out / --metrics-json to redirect.
  if (cfg.trace_out.empty()) {
    cfg.trace_out = data::artifact_path("table1_trace.jsonl");
  }
  if (cfg.metrics_json.empty()) {
    cfg.metrics_json = data::artifact_path("table1_metrics.json");
  }

  std::cout << "=== Table I: complete performance comparison (Client 1, zone 102) ===\n"
            << "config: " << describe(cfg) << "\n\n";

  ScenarioRunner runner(cfg);
  std::cout << "[pipeline] generating zones, injecting DDoS, fitting anomaly "
               "filters...\n";
  const std::vector<ClientData>& clients = runner.clients();
  for (const ClientData& cd : clients) {
    std::cout << "  zone " << cd.zone << ": " << cd.injection.points_attacked
              << " attacked points in " << cd.injection.bursts
              << " bursts (mean x" << fmt(cd.injection.mean_multiplier, 2)
              << "), filter fit " << fmt(cd.filter_fit_seconds, 1) << "s\n";
  }
  std::cout << "\n";

  const ScenarioResult fed_clean = runner.run_federated(DataScenario::kClean);
  std::cout << "[1/4] federated on clean data done ("
            << fmt(fed_clean.train_seconds, 1) << "s parallel)\n";
  const ScenarioResult fed_attacked =
      runner.run_federated(DataScenario::kAttacked);
  std::cout << "[2/4] federated on attacked data done ("
            << fmt(fed_attacked.train_seconds, 1) << "s parallel)\n";
  const ScenarioResult fed_filtered =
      runner.run_federated(DataScenario::kFiltered);
  std::cout << "[3/4] federated on filtered data done ("
            << fmt(fed_filtered.train_seconds, 1) << "s parallel)\n";
  const ScenarioResult central_filtered =
      runner.run_centralized(DataScenario::kFiltered);
  std::cout << "[4/4] centralized on filtered data done ("
            << fmt(central_filtered.train_seconds, 1) << "s)\n\n";

  const std::vector<const ScenarioResult*> results = {
      &fed_clean, &fed_attacked, &fed_filtered, &central_filtered};

  TableWriter table({"Scenario", "Architecture", "MAE", "RMSE", "R2",
                     "Time(s)", "paper MAE", "paper RMSE", "paper R2",
                     "paper Time"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = *results[i];
    const ClientEvaluation& ev = r.per_client.at(0);  // Client 1 = zone 102
    const PaperScenarioRow& p = kPaperTable1.at(i);
    table.add_row({to_string(r.scenario), r.architecture,
                   fmt(ev.regression.mae), fmt(ev.regression.rmse),
                   fmt(ev.regression.r2), fmt(r.train_seconds, 2),
                   fmt(p.mae), fmt(p.rmse), fmt(p.r2), fmt(p.time_s, 2)});
  }
  table.print(std::cout);

  const double r2_clean = fed_clean.per_client[0].regression.r2;
  const double r2_attacked = fed_attacked.per_client[0].regression.r2;
  const double r2_filtered = fed_filtered.per_client[0].regression.r2;
  const double r2_central = central_filtered.per_client[0].regression.r2;

  std::cout << "\n--- headline claims (Client 1) ---\n";
  std::cout << "attack degradation (R2 drop):        measured "
            << fmt((r2_clean - r2_attacked) / r2_clean * 100.0, 1)
            << "%   (paper 4.0%)\n";
  std::cout << "recovery of attack-induced loss:     measured "
            << fmt(recovery_percent(r2_clean, r2_attacked, r2_filtered), 1)
            << "%   (paper " << kPaperRecoveryPercent << "%)\n";
  std::cout << "federated R2 gain over centralized:  measured "
            << fmt((r2_filtered - r2_central) / r2_central * 100.0, 1)
            << "%   (paper " << kPaperFederatedR2Gain << "%)\n";
  const double speedup = (central_filtered.train_seconds -
                          fed_filtered.train_seconds) /
                         central_filtered.train_seconds * 100.0;
  std::cout << "federated training time reduction:   measured "
            << fmt(speedup, 1) << "%   (paper " << kPaperTrainingSpeedup
            << "%)\n";
  std::cout << "federated time consistency (s):      clean "
            << fmt(fed_clean.train_seconds, 1) << " / attacked "
            << fmt(fed_attacked.train_seconds, 1) << " / filtered "
            << fmt(fed_filtered.train_seconds, 1)
            << "   (paper 80.8 / 80.3 / 85.9)\n";

  std::cout << "\n--- communication (federated, filtered run) ---\n"
            << "messages: " << fed_filtered.network.messages_sent
            << ", bytes: " << fed_filtered.network.bytes_sent
            << " (weights only; raw data never leaves a client)\n";

  const std::string metrics_path = runner.write_metrics_json();
  std::cout << "\n--- telemetry ---\n"
            << "rounds recorded: " << runner.round_telemetry().size()
            << ", round wall p50/p95/p99 (s): "
            << fmt(runner.round_telemetry().round_seconds_quantile(0.50), 4)
            << " / "
            << fmt(runner.round_telemetry().round_seconds_quantile(0.95), 4)
            << " / "
            << fmt(runner.round_telemetry().round_seconds_quantile(0.99), 4)
            << "\n"
            << "trace:   " << cfg.trace_out << "\n"
            << "metrics: " << metrics_path << "\n";
  return 0;
}
