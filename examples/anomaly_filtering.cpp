// Anomaly detection and mitigation walkthrough: inject a DDoS attack into a
// charging-volume series, detect it with the LSTM-autoencoder filter, and
// repair it with gap-tolerant linear interpolation — the paper's
// EVChargingAnomalyFilter pipeline in isolation.
//
//   ./anomaly_filtering            # writes build/artifacts/anomaly_demo.csv
#include <iostream>

#include "anomaly/filter.hpp"
#include "attack/ddos_injector.hpp"
#include "data/csv.hpp"
#include "datagen/shenzhen.hpp"
#include "metrics/classification.hpp"
#include "metrics/regression.hpp"

using namespace evfl;

int main() {
  // Clean series for the "hard" zone 108 (natural spikes resemble attacks).
  datagen::GeneratorConfig gen;
  gen.hours = 2000;
  tensor::Rng rng(11);
  const data::TimeSeries clean =
      datagen::generate_zone(datagen::zone_108(), gen, rng);

  // Simulate a coordinated DDoS campaign against the zone's telemetry.
  attack::DdosConfig attack_cfg;
  attack_cfg.bursts = 20;
  const attack::DdosInjector injector(attack_cfg);
  data::TimeSeries attacked;
  const attack::InjectionSummary inj = injector.inject(clean, attacked, rng);
  std::cout << "injected " << inj.points_attacked << " anomalous hours in "
            << inj.bursts << " bursts (mean intensity x" << inj.mean_multiplier
            << ", derived from the 10.6x network-level multiplier)\n";

  // Fit the filter on the clean training region only (paper: the
  // autoencoder is trained exclusively on normal data).
  anomaly::FilterConfig filter_cfg;
  filter_cfg.autoencoder.window = 24;
  filter_cfg.autoencoder.encoder_units = 24;  // shrunk for a fast demo
  filter_cfg.autoencoder.latent_units = 12;
  filter_cfg.autoencoder.max_epochs = 25;
  anomaly::EvChargingAnomalyFilter filter(filter_cfg, rng);

  const data::TrainTestSplit split = data::temporal_split(clean, 0.8);
  std::cout << "training autoencoder on " << split.train.size()
            << " clean hours...\n";
  const nn::FitHistory hist = filter.fit(split.train, rng);
  std::cout << "trained " << hist.epochs_run << " epochs"
            << (hist.stopped_early ? " (early-stopped)" : "")
            << ", detection threshold (" << filter.config().threshold.param
            << "th pct train MSE): " << filter.threshold() << "\n";

  // Detect + repair.
  const anomaly::FilterResult result = filter.filter(attacked);
  const metrics::DetectionMetrics dm =
      metrics::evaluate_detection(attacked.labels, result.flags);
  std::cout << "\ndetection: precision " << dm.precision << ", recall "
            << dm.recall << ", F1 " << dm.f1 << ", FPR "
            << dm.false_positive_rate * 100 << "%\n";
  std::cout << "repaired " << result.segments.size()
            << " merged segments (gap tolerance "
            << filter_cfg.gap_tolerance << ")\n";

  const double attacked_mae =
      metrics::mean_absolute_error(clean.values, attacked.values);
  const double restored_mae =
      metrics::mean_absolute_error(clean.values, result.filtered.values);
  std::cout << "damage (MAE vs clean): attacked " << attacked_mae
            << " -> filtered " << restored_mae << " ("
            << (attacked_mae - restored_mae) / attacked_mae * 100
            << "% of damage repaired)\n";

  // Dump everything for plotting.
  std::vector<float> flags_f(result.flags.begin(), result.flags.end());
  std::vector<float> truth_f(attacked.labels.begin(), attacked.labels.end());
  const std::string out_path = data::artifact_path("anomaly_demo.csv");
  data::write_columns_csv(
      {"clean", "attacked", "filtered", "score", "flagged", "truth"},
      {clean.values, attacked.values, result.filtered.values, result.scores,
       flags_f, truth_f},
      out_path);
  std::cout << "\nseries + scores written to " << out_path << "\n";
  return 0;
}
