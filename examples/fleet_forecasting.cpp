// Privacy-preserving fleet forecasting: three charging zones collaborate
// through FedAvg without sharing raw data — the paper's Fig. 1(b)
// architecture driven directly through the evfl::fl API.
//
//   ./fleet_forecasting
#include <iostream>

#include "data/scaler.hpp"
#include "data/window.hpp"
#include "datagen/shenzhen.hpp"
#include "fl/driver.hpp"
#include "forecast/model.hpp"
#include "metrics/regression.hpp"

using namespace evfl;

int main() {
  datagen::GeneratorConfig gen;
  gen.hours = 1500;
  const std::vector<data::TimeSeries> zones = datagen::generate_clients(gen);

  forecast::ForecasterConfig model_cfg;
  model_cfg.lstm_units = 24;  // shrunk for a fast demo; paper uses 50
  model_cfg.dense_units = 8;

  const fl::ModelFactory factory = [&model_cfg](tensor::Rng& r) {
    return forecast::make_forecaster(model_cfg, r);
  };

  fl::ClientConfig client_cfg;
  client_cfg.epochs_per_round = 10;  // EPOCHS_PER_ROUND

  // Each client prepares its data locally: scale, window, split.
  struct LocalEval {
    data::MinMaxScaler scaler;
    data::SequenceDataset test;
  };
  std::vector<LocalEval> evals;
  std::vector<std::unique_ptr<fl::Client>> clients;
  tensor::Rng root(3);
  for (std::size_t c = 0; c < zones.size(); ++c) {
    const data::TimeSeries& zone = zones[c];
    const std::size_t split = static_cast<std::size_t>(zone.size() * 0.8);
    LocalEval ev;
    ev.scaler.fit({zone.values.begin(), zone.values.begin() + split});
    const std::vector<float> scaled = ev.scaler.transform(zone.values);
    const data::SequenceDataset all =
        data::make_forecast_sequences(scaled, model_cfg.sequence_length);
    std::size_t n_train = 0;
    while (n_train < all.x.batch() && all.target_offset(n_train) < split) {
      ++n_train;
    }
    ev.test = {all.x.batch_slice(n_train, all.x.batch()),
               all.y.batch_slice(n_train, all.y.batch()),
               model_cfg.sequence_length};
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(c), all.x.batch_slice(0, n_train),
        all.y.batch_slice(0, n_train), factory, client_cfg, root.split()));
    evals.push_back(std::move(ev));
    std::cout << "client " << c << " (" << zone.name << "): " << n_train
              << " local training windows (data stays local)\n";
  }

  // Server + simulated network, then FEDERATED_ROUNDS of FedAvg.
  tensor::Rng server_rng = root.split();
  nn::Sequential seed_model = forecast::make_forecaster(model_cfg, server_rng);
  fl::Server server(seed_model.get_weights());
  fl::InMemoryNetwork net;
  fl::SyncDriver driver(server, clients, net);

  std::cout << "\nrunning 5 federated rounds x 10 local epochs...\n";
  const fl::FederatedRunResult run = driver.run(5);
  for (const fl::RoundMetrics& r : run.rounds) {
    std::cout << "  round " << r.round << ": mean local loss "
              << r.mean_train_loss << ", global weight movement "
              << r.weight_delta << "\n";
  }
  std::cout << "communication: " << run.network.messages_sent
            << " messages, " << run.network.bytes_sent
            << " bytes (model parameters only)\n\n";

  // Per-client evaluation of the personalized local models.
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const tensor::Tensor3 pred =
        nn::predict_batched(clients[c]->model(), evals[c].test.x);
    std::vector<float> actual, predicted;
    for (std::size_t i = 0; i < pred.batch(); ++i) {
      actual.push_back(evals[c].scaler.inverse_one(evals[c].test.y(i, 0, 0)));
      predicted.push_back(evals[c].scaler.inverse_one(pred(i, 0, 0)));
    }
    const metrics::RegressionMetrics m =
        metrics::evaluate_regression(actual, predicted);
    std::cout << "client " << c << " (" << zones[c].name << "): MAE " << m.mae
              << ", RMSE " << m.rmse << ", R2 " << m.r2 << "\n";
  }
  return 0;
}
