// Quickstart: train the paper's LSTM forecaster on one synthetic charging
// zone and predict the next day — the smallest end-to-end use of the
// public API.  Runs in a few seconds.
//
//   ./quickstart
#include <iostream>

#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "datagen/shenzhen.hpp"
#include "forecast/model.hpp"
#include "metrics/regression.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

using namespace evfl;

int main() {
  // 1. Generate two months of hourly charging volume for one zone.
  datagen::GeneratorConfig gen;
  gen.hours = 1440;
  tensor::Rng rng(7);
  const data::TimeSeries series =
      datagen::generate_zone(datagen::zone_102(), gen, rng);
  std::cout << "generated " << series.size() << " hours for " << series.name
            << "\n";

  // 2. Temporal 80/20 split and min-max scaling fit on the training region.
  const std::size_t split = static_cast<std::size_t>(series.size() * 0.8);
  data::MinMaxScaler scaler;
  scaler.fit({series.values.begin(), series.values.begin() + split});
  const std::vector<float> scaled = scaler.transform(series.values);

  // 3. Sliding 24-hour windows -> supervised sequences.
  const data::SequenceDataset all = data::make_forecast_sequences(scaled, 24);
  std::size_t n_train = 0;
  while (n_train < all.x.batch() && all.target_offset(n_train) < split) {
    ++n_train;
  }
  const data::SequenceDataset train{all.x.batch_slice(0, n_train),
                                    all.y.batch_slice(0, n_train), 24};
  const data::SequenceDataset test{
      all.x.batch_slice(n_train, all.x.batch()),
      all.y.batch_slice(n_train, all.y.batch()), 24};
  std::cout << "train windows: " << train.x.batch()
            << ", test windows: " << test.x.batch() << "\n";

  // 4. Build and train the paper's forecaster: LSTM(50)->Dense(10)->Dense(1).
  forecast::ForecasterConfig cfg;
  cfg.lstm_units = 24;  // shrunk for a fast demo; paper uses 50
  nn::Sequential model = forecast::make_forecaster(cfg, rng);
  std::cout << model.summary() << "\n";

  nn::MseLoss loss;
  nn::Adam adam(cfg.learning_rate);
  nn::Trainer trainer(model, loss, adam, rng);
  nn::FitConfig fit;
  fit.epochs = 15;
  fit.batch_size = 32;
  fit.on_epoch_end = [](std::size_t epoch, float train_loss, float) {
    if (epoch % 5 == 4) {
      std::cout << "  epoch " << (epoch + 1) << "  loss " << train_loss << "\n";
    }
  };
  trainer.fit(train.x, train.y, fit);

  // 5. Evaluate on the held-out tail in original units.
  const tensor::Tensor3 pred = nn::predict_batched(model, test.x);
  std::vector<float> actual, predicted;
  for (std::size_t i = 0; i < pred.batch(); ++i) {
    actual.push_back(scaler.inverse_one(test.y(i, 0, 0)));
    predicted.push_back(scaler.inverse_one(pred(i, 0, 0)));
  }
  const metrics::RegressionMetrics m =
      metrics::evaluate_regression(actual, predicted);
  std::cout << "\ntest MAE  " << m.mae << "\ntest RMSE " << m.rmse
            << "\ntest R2   " << m.r2 << "\n";

  std::cout << "\nnext-24h forecast (vehicles/hour):";
  for (std::size_t i = 0; i < 24 && i < predicted.size(); ++i) {
    if (i % 6 == 0) std::cout << "\n  ";
    std::cout << static_cast<int>(predicted[i] + 0.5f) << " ";
  }
  std::cout << "\n";
  return 0;
}
