// Attack war game: throw every implemented attack vector at a defended
// charging zone and watch the detector + mitigation respond, then run a
// federated round over a lossy network with concurrent (threaded) clients —
// the resilience story of §III-G in one executable.
//
//   ./attack_war_game
#include <iostream>

#include "anomaly/filter.hpp"
#include "attack/ddos_injector.hpp"
#include "data/window.hpp"
#include "attack/fdi_injector.hpp"
#include "attack/ramp_injector.hpp"
#include "datagen/shenzhen.hpp"
#include "fl/driver.hpp"
#include "forecast/model.hpp"
#include "metrics/classification.hpp"
#include "metrics/regression.hpp"
#include "sim/traffic_model.hpp"

using namespace evfl;

int main() {
  std::cout << "--- phase 0: derive the threat model from network traffic ---\n";
  sim::TrafficModel traffic;
  tensor::Rng rng(23);
  const sim::TrafficTrace trace = traffic.generate_trace(5000, 10, 40, rng);
  const sim::TrafficStats stats = sim::TrafficModel::analyze(trace);
  std::cout << "simulated trace: normal " << stats.mean_normal_pps
            << " p/s, attack " << stats.mean_attack_pps << " p/s -> intensity x"
            << stats.intensity_multiplier << " (paper: 33k vs 350.5k, x10.6)\n\n";

  std::cout << "--- phase 1: train the defence ---\n";
  datagen::GeneratorConfig gen;
  gen.hours = 1500;
  const data::TimeSeries clean =
      datagen::generate_zone(datagen::zone_102(), gen, rng);
  anomaly::FilterConfig filter_cfg;
  filter_cfg.autoencoder.encoder_units = 20;
  filter_cfg.autoencoder.latent_units = 10;
  filter_cfg.autoencoder.max_epochs = 20;
  anomaly::EvChargingAnomalyFilter filter(filter_cfg, rng);
  filter.fit(data::temporal_split(clean, 0.8).train, rng);
  std::cout << "autoencoder defence trained on clean telemetry\n\n";

  std::cout << "--- phase 2: the attacks ---\n";
  const attack::DdosInjector ddos;
  const attack::FalseDataInjector fdi;
  const attack::RampInjector ramp;
  for (const attack::Injector* injector :
       {static_cast<const attack::Injector*>(&ddos),
        static_cast<const attack::Injector*>(&fdi),
        static_cast<const attack::Injector*>(&ramp)}) {
    data::TimeSeries attacked;
    injector->inject(clean, attacked, rng);
    const anomaly::FilterResult result = filter.filter(attacked);
    const metrics::DetectionMetrics dm =
        metrics::evaluate_detection(attacked.labels, result.flags);
    const double dmg =
        metrics::mean_absolute_error(clean.values, attacked.values);
    const double left =
        metrics::mean_absolute_error(clean.values, result.filtered.values);
    std::cout << "  " << attack::to_string(injector->kind())
              << ": recall " << dm.recall << ", precision " << dm.precision
              << ", damage " << dmg << " -> " << left << " after repair\n";
  }
  std::cout << "(subtle FDI evades a spike-trained detector — the paper's "
               "future-work gap, reproduced)\n\n";

  std::cout << "--- phase 3: federated training over a hostile network ---\n";
  forecast::ForecasterConfig model_cfg;
  model_cfg.lstm_units = 12;
  model_cfg.dense_units = 6;
  const fl::ModelFactory factory = [&model_cfg](tensor::Rng& r) {
    return forecast::make_forecaster(model_cfg, r);
  };
  fl::ClientConfig client_cfg;
  client_cfg.epochs_per_round = 3;

  std::vector<std::unique_ptr<fl::Client>> clients;
  tensor::Rng root(29);
  for (int c = 0; c < 3; ++c) {
    data::TimeSeries zone = datagen::generate_zone(
        datagen::zone_by_id(c == 0 ? "102" : c == 1 ? "105" : "108"), gen,
        root);
    data::MinMaxScaler scaler;
    scaler.fit(zone.values);
    const data::SequenceDataset ds = data::make_forecast_sequences(
        scaler.transform(zone.values), model_cfg.sequence_length);
    clients.push_back(std::make_unique<fl::Client>(
        c, ds.x, ds.y, factory, client_cfg, root.split()));
  }

  tensor::Rng server_rng = root.split();
  nn::Sequential seed = forecast::make_forecaster(model_cfg, server_rng);
  fl::Server server(seed.get_weights());

  fl::NetworkConfig hostile;
  hostile.drop_probability = 0.15;  // the DDoS is hammering the links too
  hostile.latency_ms_per_kib = 0.5;
  fl::InMemoryNetwork net(hostile);

  fl::ThreadedDriver driver(server, clients, net);
  const fl::FederatedRunResult run = driver.run(4, 60'000.0);
  for (const fl::RoundMetrics& r : run.rounds) {
    std::cout << "  round " << r.round << ": " << r.updates_received
              << "/3 updates survived the network, loss "
              << r.mean_train_loss << "\n";
  }
  const fl::NetworkStats ns = run.network;
  std::cout << "network: " << ns.messages_sent << " sent, "
            << ns.messages_dropped << " dropped, simulated latency "
            << ns.virtual_latency_ms << " ms\n";
  std::cout << "\ntraining completed despite message loss: FedAvg simply "
               "aggregates whichever updates arrive.\n";
  return 0;
}
