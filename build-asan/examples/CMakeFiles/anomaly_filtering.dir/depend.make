# Empty dependencies file for anomaly_filtering.
# This may be replaced when dependencies are built.
