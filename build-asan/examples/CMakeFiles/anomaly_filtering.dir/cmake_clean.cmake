file(REMOVE_RECURSE
  "CMakeFiles/anomaly_filtering.dir/anomaly_filtering.cpp.o"
  "CMakeFiles/anomaly_filtering.dir/anomaly_filtering.cpp.o.d"
  "anomaly_filtering"
  "anomaly_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
