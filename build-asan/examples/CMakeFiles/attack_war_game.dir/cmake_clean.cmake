file(REMOVE_RECURSE
  "CMakeFiles/attack_war_game.dir/attack_war_game.cpp.o"
  "CMakeFiles/attack_war_game.dir/attack_war_game.cpp.o.d"
  "attack_war_game"
  "attack_war_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_war_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
