# Empty dependencies file for attack_war_game.
# This may be replaced when dependencies are built.
