file(REMOVE_RECURSE
  "CMakeFiles/fleet_forecasting.dir/fleet_forecasting.cpp.o"
  "CMakeFiles/fleet_forecasting.dir/fleet_forecasting.cpp.o.d"
  "fleet_forecasting"
  "fleet_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
