# Empty dependencies file for fleet_forecasting.
# This may be replaced when dependencies are built.
