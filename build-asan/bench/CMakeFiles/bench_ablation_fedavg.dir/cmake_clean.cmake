file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fedavg.dir/bench_ablation_fedavg.cpp.o"
  "CMakeFiles/bench_ablation_fedavg.dir/bench_ablation_fedavg.cpp.o.d"
  "bench_ablation_fedavg"
  "bench_ablation_fedavg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fedavg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
