# Empty dependencies file for bench_ablation_fedavg.
# This may be replaced when dependencies are built.
