# Empty dependencies file for bench_ablation_attack_vectors.
# This may be replaced when dependencies are built.
