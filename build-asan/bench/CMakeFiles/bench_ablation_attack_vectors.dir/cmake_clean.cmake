file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_attack_vectors.dir/bench_ablation_attack_vectors.cpp.o"
  "CMakeFiles/bench_ablation_attack_vectors.dir/bench_ablation_attack_vectors.cpp.o.d"
  "bench_ablation_attack_vectors"
  "bench_ablation_attack_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attack_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
