file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scenarios.dir/bench_table1_scenarios.cpp.o"
  "CMakeFiles/bench_table1_scenarios.dir/bench_table1_scenarios.cpp.o.d"
  "bench_table1_scenarios"
  "bench_table1_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
