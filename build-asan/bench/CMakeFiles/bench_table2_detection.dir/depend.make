# Empty dependencies file for bench_table2_detection.
# This may be replaced when dependencies are built.
