file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_r2_bars.dir/bench_fig3_r2_bars.cpp.o"
  "CMakeFiles/bench_fig3_r2_bars.dir/bench_fig3_r2_bars.cpp.o.d"
  "bench_fig3_r2_bars"
  "bench_fig3_r2_bars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_r2_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
