# Empty dependencies file for bench_fig3_r2_bars.
# This may be replaced when dependencies are built.
