# Empty dependencies file for bench_table3_fed_vs_central.
# This may be replaced when dependencies are built.
