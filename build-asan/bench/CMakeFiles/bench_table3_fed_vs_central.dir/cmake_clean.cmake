file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fed_vs_central.dir/bench_table3_fed_vs_central.cpp.o"
  "CMakeFiles/bench_table3_fed_vs_central.dir/bench_table3_fed_vs_central.cpp.o.d"
  "bench_table3_fed_vs_central"
  "bench_table3_fed_vs_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fed_vs_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
