
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/autoencoder.cpp" "src/CMakeFiles/evfl.dir/anomaly/autoencoder.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/anomaly/autoencoder.cpp.o.d"
  "/root/repo/src/anomaly/filter.cpp" "src/CMakeFiles/evfl.dir/anomaly/filter.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/anomaly/filter.cpp.o.d"
  "/root/repo/src/anomaly/imputation.cpp" "src/CMakeFiles/evfl.dir/anomaly/imputation.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/anomaly/imputation.cpp.o.d"
  "/root/repo/src/anomaly/segments.cpp" "src/CMakeFiles/evfl.dir/anomaly/segments.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/anomaly/segments.cpp.o.d"
  "/root/repo/src/anomaly/threshold.cpp" "src/CMakeFiles/evfl.dir/anomaly/threshold.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/anomaly/threshold.cpp.o.d"
  "/root/repo/src/attack/ddos_injector.cpp" "src/CMakeFiles/evfl.dir/attack/ddos_injector.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/attack/ddos_injector.cpp.o.d"
  "/root/repo/src/attack/fdi_injector.cpp" "src/CMakeFiles/evfl.dir/attack/fdi_injector.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/attack/fdi_injector.cpp.o.d"
  "/root/repo/src/attack/ramp_injector.cpp" "src/CMakeFiles/evfl.dir/attack/ramp_injector.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/attack/ramp_injector.cpp.o.d"
  "/root/repo/src/attack/scenario.cpp" "src/CMakeFiles/evfl.dir/attack/scenario.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/attack/scenario.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/evfl.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/common/error.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/evfl.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/core/config.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/evfl.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/evfl.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/core/report.cpp.o.d"
  "/root/repo/src/core/scenario_runner.cpp" "src/CMakeFiles/evfl.dir/core/scenario_runner.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/core/scenario_runner.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/evfl.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/scaler.cpp" "src/CMakeFiles/evfl.dir/data/scaler.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/data/scaler.cpp.o.d"
  "/root/repo/src/data/timeseries.cpp" "src/CMakeFiles/evfl.dir/data/timeseries.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/data/timeseries.cpp.o.d"
  "/root/repo/src/data/window.cpp" "src/CMakeFiles/evfl.dir/data/window.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/data/window.cpp.o.d"
  "/root/repo/src/datagen/shenzhen.cpp" "src/CMakeFiles/evfl.dir/datagen/shenzhen.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/datagen/shenzhen.cpp.o.d"
  "/root/repo/src/datagen/zone_profile.cpp" "src/CMakeFiles/evfl.dir/datagen/zone_profile.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/datagen/zone_profile.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/CMakeFiles/evfl.dir/fl/client.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/client.cpp.o.d"
  "/root/repo/src/fl/driver.cpp" "src/CMakeFiles/evfl.dir/fl/driver.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/driver.cpp.o.d"
  "/root/repo/src/fl/fedavg.cpp" "src/CMakeFiles/evfl.dir/fl/fedavg.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/fedavg.cpp.o.d"
  "/root/repo/src/fl/network.cpp" "src/CMakeFiles/evfl.dir/fl/network.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/network.cpp.o.d"
  "/root/repo/src/fl/serialize.cpp" "src/CMakeFiles/evfl.dir/fl/serialize.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/serialize.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/CMakeFiles/evfl.dir/fl/server.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/server.cpp.o.d"
  "/root/repo/src/fl/weights.cpp" "src/CMakeFiles/evfl.dir/fl/weights.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/fl/weights.cpp.o.d"
  "/root/repo/src/forecast/baselines.cpp" "src/CMakeFiles/evfl.dir/forecast/baselines.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/forecast/baselines.cpp.o.d"
  "/root/repo/src/forecast/centralized.cpp" "src/CMakeFiles/evfl.dir/forecast/centralized.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/forecast/centralized.cpp.o.d"
  "/root/repo/src/forecast/model.cpp" "src/CMakeFiles/evfl.dir/forecast/model.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/forecast/model.cpp.o.d"
  "/root/repo/src/metrics/classification.cpp" "src/CMakeFiles/evfl.dir/metrics/classification.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/metrics/classification.cpp.o.d"
  "/root/repo/src/metrics/regression.cpp" "src/CMakeFiles/evfl.dir/metrics/regression.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/metrics/regression.cpp.o.d"
  "/root/repo/src/metrics/timer.cpp" "src/CMakeFiles/evfl.dir/metrics/timer.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/metrics/timer.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/evfl.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/evfl.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/evfl.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/evfl.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/CMakeFiles/evfl.dir/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/lstm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/evfl.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/repeat_vector.cpp" "src/CMakeFiles/evfl.dir/nn/repeat_vector.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/repeat_vector.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/evfl.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/evfl.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/runtime/run_context.cpp" "src/CMakeFiles/evfl.dir/runtime/run_context.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/runtime/run_context.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/evfl.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/sim/traffic_model.cpp" "src/CMakeFiles/evfl.dir/sim/traffic_model.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/sim/traffic_model.cpp.o.d"
  "/root/repo/src/tensor/init.cpp" "src/CMakeFiles/evfl.dir/tensor/init.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/tensor/init.cpp.o.d"
  "/root/repo/src/tensor/linalg.cpp" "src/CMakeFiles/evfl.dir/tensor/linalg.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/tensor/linalg.cpp.o.d"
  "/root/repo/src/tensor/matrix.cpp" "src/CMakeFiles/evfl.dir/tensor/matrix.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/tensor/matrix.cpp.o.d"
  "/root/repo/src/tensor/rng.cpp" "src/CMakeFiles/evfl.dir/tensor/rng.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/tensor/rng.cpp.o.d"
  "/root/repo/src/tensor/tensor3.cpp" "src/CMakeFiles/evfl.dir/tensor/tensor3.cpp.o" "gcc" "src/CMakeFiles/evfl.dir/tensor/tensor3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
