file(REMOVE_RECURSE
  "libevfl.a"
)
