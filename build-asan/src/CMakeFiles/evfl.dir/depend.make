# Empty dependencies file for evfl.
# This may be replaced when dependencies are built.
