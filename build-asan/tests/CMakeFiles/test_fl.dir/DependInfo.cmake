
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_client_server.cpp" "tests/CMakeFiles/test_fl.dir/test_client_server.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/test_client_server.cpp.o.d"
  "/root/repo/tests/test_driver.cpp" "tests/CMakeFiles/test_fl.dir/test_driver.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/test_driver.cpp.o.d"
  "/root/repo/tests/test_fedavg.cpp" "tests/CMakeFiles/test_fl.dir/test_fedavg.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/test_fedavg.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/test_fl.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/test_fl.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/test_serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/evfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
