file(REMOVE_RECURSE
  "CMakeFiles/test_fl.dir/test_client_server.cpp.o"
  "CMakeFiles/test_fl.dir/test_client_server.cpp.o.d"
  "CMakeFiles/test_fl.dir/test_driver.cpp.o"
  "CMakeFiles/test_fl.dir/test_driver.cpp.o.d"
  "CMakeFiles/test_fl.dir/test_fedavg.cpp.o"
  "CMakeFiles/test_fl.dir/test_fedavg.cpp.o.d"
  "CMakeFiles/test_fl.dir/test_network.cpp.o"
  "CMakeFiles/test_fl.dir/test_network.cpp.o.d"
  "CMakeFiles/test_fl.dir/test_serialize.cpp.o"
  "CMakeFiles/test_fl.dir/test_serialize.cpp.o.d"
  "test_fl"
  "test_fl.pdb"
  "test_fl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
