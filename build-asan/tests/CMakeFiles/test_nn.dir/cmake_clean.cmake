file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/test_activation.cpp.o"
  "CMakeFiles/test_nn.dir/test_activation.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_dense.cpp.o"
  "CMakeFiles/test_nn.dir/test_dense.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_dropout.cpp.o"
  "CMakeFiles/test_nn.dir/test_dropout.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_gradcheck.cpp.o"
  "CMakeFiles/test_nn.dir/test_gradcheck.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_loss.cpp.o"
  "CMakeFiles/test_nn.dir/test_loss.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_lstm.cpp.o"
  "CMakeFiles/test_nn.dir/test_lstm.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_optimizer.cpp.o"
  "CMakeFiles/test_nn.dir/test_optimizer.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_repeat_vector.cpp.o"
  "CMakeFiles/test_nn.dir/test_repeat_vector.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_sequential.cpp.o"
  "CMakeFiles/test_nn.dir/test_sequential.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_trainer.cpp.o"
  "CMakeFiles/test_nn.dir/test_trainer.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
