
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_activation.cpp" "tests/CMakeFiles/test_nn.dir/test_activation.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_activation.cpp.o.d"
  "/root/repo/tests/test_dense.cpp" "tests/CMakeFiles/test_nn.dir/test_dense.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_dense.cpp.o.d"
  "/root/repo/tests/test_dropout.cpp" "tests/CMakeFiles/test_nn.dir/test_dropout.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_dropout.cpp.o.d"
  "/root/repo/tests/test_gradcheck.cpp" "tests/CMakeFiles/test_nn.dir/test_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_gradcheck.cpp.o.d"
  "/root/repo/tests/test_loss.cpp" "tests/CMakeFiles/test_nn.dir/test_loss.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_loss.cpp.o.d"
  "/root/repo/tests/test_lstm.cpp" "tests/CMakeFiles/test_nn.dir/test_lstm.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_lstm.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/test_nn.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_repeat_vector.cpp" "tests/CMakeFiles/test_nn.dir/test_repeat_vector.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_repeat_vector.cpp.o.d"
  "/root/repo/tests/test_sequential.cpp" "tests/CMakeFiles/test_nn.dir/test_sequential.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_sequential.cpp.o.d"
  "/root/repo/tests/test_trainer.cpp" "tests/CMakeFiles/test_nn.dir/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/evfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
