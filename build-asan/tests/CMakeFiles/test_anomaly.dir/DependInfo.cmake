
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autoencoder.cpp" "tests/CMakeFiles/test_anomaly.dir/test_autoencoder.cpp.o" "gcc" "tests/CMakeFiles/test_anomaly.dir/test_autoencoder.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/test_anomaly.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/test_anomaly.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_imputation.cpp" "tests/CMakeFiles/test_anomaly.dir/test_imputation.cpp.o" "gcc" "tests/CMakeFiles/test_anomaly.dir/test_imputation.cpp.o.d"
  "/root/repo/tests/test_threshold.cpp" "tests/CMakeFiles/test_anomaly.dir/test_threshold.cpp.o" "gcc" "tests/CMakeFiles/test_anomaly.dir/test_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/evfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
