file(REMOVE_RECURSE
  "CMakeFiles/test_anomaly.dir/test_autoencoder.cpp.o"
  "CMakeFiles/test_anomaly.dir/test_autoencoder.cpp.o.d"
  "CMakeFiles/test_anomaly.dir/test_filter.cpp.o"
  "CMakeFiles/test_anomaly.dir/test_filter.cpp.o.d"
  "CMakeFiles/test_anomaly.dir/test_imputation.cpp.o"
  "CMakeFiles/test_anomaly.dir/test_imputation.cpp.o.d"
  "CMakeFiles/test_anomaly.dir/test_threshold.cpp.o"
  "CMakeFiles/test_anomaly.dir/test_threshold.cpp.o.d"
  "test_anomaly"
  "test_anomaly.pdb"
  "test_anomaly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
