# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-asan/tests/test_nn[1]_include.cmake")
include("/root/repo/build-asan/tests/test_data[1]_include.cmake")
include("/root/repo/build-asan/tests/test_datagen[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_attack[1]_include.cmake")
include("/root/repo/build-asan/tests/test_anomaly[1]_include.cmake")
include("/root/repo/build-asan/tests/test_fl[1]_include.cmake")
include("/root/repo/build-asan/tests/test_forecast[1]_include.cmake")
include("/root/repo/build-asan/tests/test_metrics[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
