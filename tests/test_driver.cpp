#include "fl/driver.hpp"

#include <gtest/gtest.h>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "nn/dense.hpp"

namespace evfl::fl {
namespace {

using tensor::Rng;
using tensor::Tensor3;

ModelFactory linear_factory() {
  return [](Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

/// Heterogeneous linear clients: slopes 1, 2, 3 — FedAvg should land the
/// global slope near the (sample-weighted) middle.
std::vector<std::unique_ptr<Client>> make_clients(std::size_t n_per_client,
                                                  std::uint64_t seed) {
  std::vector<std::unique_ptr<Client>> clients;
  Rng root(seed);
  for (int c = 0; c < 3; ++c) {
    Tensor3 x(n_per_client, 1, 1), y(n_per_client, 1, 1);
    Rng data_rng = root.split();
    for (std::size_t i = 0; i < n_per_client; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = static_cast<float>(c + 1) * xi;
    }
    ClientConfig cfg;
    cfg.epochs_per_round = 10;
    cfg.learning_rate = 0.05f;
    cfg.batch_size = 16;
    clients.push_back(std::make_unique<Client>(c, x, y, linear_factory(), cfg,
                                               root.split()));
  }
  return clients;
}

TEST(SyncDriver, RunsRoundsAndConverges) {
  auto clients = make_clients(64, 1);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  SyncDriver driver(server, clients, net);
  const FederatedRunResult result = driver.run(4);

  ASSERT_EQ(result.rounds.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(result.rounds[r].round, r);
    EXPECT_EQ(result.rounds[r].updates_received, 3u);
    EXPECT_GT(result.rounds[r].max_client_seconds, 0.0);
  }
  // Global slope should approach the average of slopes {1,2,3} = 2.
  EXPECT_NEAR(result.final_weights[0], 2.0f, 0.4f);
  EXPECT_GT(result.simulated_parallel_seconds, 0.0);
  EXPECT_LE(result.simulated_parallel_seconds, result.total_seconds + 1e-6);
}

TEST(SyncDriver, EveryExchangeCrossesTheWire) {
  auto clients = make_clients(16, 2);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  SyncDriver driver(server, clients, net);
  driver.run(2);
  const NetworkStats st = net.stats();
  // 2 rounds x 3 clients x (broadcast + upload) = 12 messages.
  EXPECT_EQ(st.messages_sent, 12u);
  // Each message: 40-byte header + 2 floats.
  EXPECT_EQ(st.bytes_sent, 12u * (40u + 2u * sizeof(float)));
}

TEST(SyncDriver, WeightDeltaShrinksAcrossRounds) {
  auto clients = make_clients(64, 3);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  SyncDriver driver(server, clients, net);
  const FederatedRunResult result = driver.run(6);
  // Convergence: last-round movement smaller than first-round movement.
  EXPECT_LT(result.rounds.back().weight_delta,
            result.rounds.front().weight_delta);
}

TEST(SyncDriver, ToleratesDroppedMessages) {
  auto clients = make_clients(16, 4);
  Server server({0.0f, 0.0f});
  NetworkConfig net_cfg;
  net_cfg.drop_probability = 0.4;
  net_cfg.drop_seed = 5;
  InMemoryNetwork net(net_cfg);
  SyncDriver driver(server, clients, net);
  const FederatedRunResult result = driver.run(5);
  ASSERT_EQ(result.rounds.size(), 5u);
  // Some rounds lost updates, none crashed.
  std::size_t total_updates = 0;
  for (const auto& r : result.rounds) {
    EXPECT_LE(r.updates_received, 3u);
    total_updates += r.updates_received;
  }
  EXPECT_LT(total_updates, 15u);  // drops actually happened
  EXPECT_GT(net.stats().messages_dropped, 0u);
}

TEST(ThreadedDriver, MatchesProtocolAndConverges) {
  auto clients = make_clients(64, 6);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  ThreadedDriver driver(server, clients, net);
  const FederatedRunResult result = driver.run(4);
  ASSERT_EQ(result.rounds.size(), 4u);
  for (const auto& r : result.rounds) {
    EXPECT_EQ(r.updates_received, 3u);
  }
  EXPECT_NEAR(result.final_weights[0], 2.0f, 0.4f);
}

TEST(ThreadedDriver, SkipsStragglersPastDeadline) {
  auto clients = make_clients(512, 7);  // slower training
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  ThreadedDriver driver(server, clients, net);
  // Absurdly short collect deadline: rounds proceed with whatever arrived.
  const FederatedRunResult result = driver.run(2, 1.0);
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const auto& r : result.rounds) {
    EXPECT_LE(r.updates_received, 3u);
  }
}

TEST(Drivers, RequireClients) {
  std::vector<std::unique_ptr<Client>> none;
  Server server({0.0f});
  InMemoryNetwork net;
  EXPECT_THROW(SyncDriver(server, none, net), Error);
  EXPECT_THROW(ThreadedDriver(server, none, net), Error);
}

TEST(SyncDriver, RecordsRoundTelemetry) {
  auto clients = make_clients(32, 11);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  obs::RoundTelemetrySink sink;
  SyncDriver driver(server, clients, net, nullptr, nullptr, RoundPolicy{},
                    &sink);
  driver.run(3);

  ASSERT_EQ(sink.size(), 3u);
  const std::vector<obs::RoundTelemetry> rounds = sink.rounds();
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].round, r);
    EXPECT_EQ(rounds[r].updates_accepted, 3u);
    ASSERT_EQ(rounds[r].client_train_seconds.size(), 3u);
    for (double s : rounds[r].client_train_seconds) EXPECT_GT(s, 0.0);
    EXPECT_GT(rounds[r].wall_seconds, 0.0);
    EXPECT_GT(rounds[r].max_client_seconds, 0.0);
    EXPECT_GT(rounds[r].bytes_down, 0u);
    EXPECT_GT(rounds[r].bytes_up, 0u);
    EXPECT_TRUE(rounds[r].quorum_met);
    EXPECT_EQ(rounds[r].rejected_updates, 0u);
  }
  EXPECT_GT(sink.round_seconds_quantile(0.5), 0.0);
}

TEST(ThreadedDriver, RecordsRoundTelemetry) {
  auto clients = make_clients(32, 12);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  obs::RoundTelemetrySink sink;
  ThreadedDriver driver(server, clients, net, nullptr, nullptr, &sink);
  driver.run(2);

  ASSERT_EQ(sink.size(), 2u);
  const std::vector<obs::RoundTelemetry> rounds = sink.rounds();
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].round, r);
    EXPECT_EQ(rounds[r].updates_accepted, 3u);
    EXPECT_EQ(rounds[r].client_train_seconds.size(), 3u);
    EXPECT_GT(rounds[r].wall_seconds, 0.0);
    EXPECT_GT(rounds[r].bytes_down, 0u);
    EXPECT_GT(rounds[r].bytes_up, 0u);
  }
}

TEST(SyncDriver, TelemetryCountsValidatorRejections) {
  // Client 0's update is NaN-corrupted every round: the validator rejects
  // it, and the telemetry record must carry the rejection breakdown.
  auto clients = make_clients(16, 13);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  faults::FaultPlan plan;
  plan.corrupt(0, faults::CorruptionMode::kNaN, 0, faults::kAllRounds, 1.0);
  const faults::FaultInjector injector(plan, 17);
  obs::RoundTelemetrySink sink;
  SyncDriver driver(server, clients, net, nullptr, &injector, RoundPolicy{},
                    &sink);
  driver.run(2);

  ASSERT_EQ(sink.size(), 2u);
  for (const obs::RoundTelemetry& rt : sink.rounds()) {
    EXPECT_EQ(rt.updates_accepted, 2u);
    EXPECT_EQ(rt.rejected_nonfinite, 1u);
    EXPECT_EQ(rt.rejected_updates, 1u);
  }
}

TEST(SyncDriver, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto clients = make_clients(32, 9);
    Server server({0.0f, 0.0f});
    InMemoryNetwork net;
    SyncDriver driver(server, clients, net);
    return driver.run(3).final_weights;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace evfl::fl
