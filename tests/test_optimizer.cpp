#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::nn {
namespace {

/// A single scalar parameter with a quadratic loss L = (w - target)^2.
struct Quadratic {
  Matrix w{1, 1};
  Matrix g{1, 1};
  float target;

  explicit Quadratic(float start, float tgt) : target(tgt) {
    w(0, 0) = start;
  }

  std::vector<ParamRef> params() { return {{"w", &w, &g}}; }

  void compute_grad() { g(0, 0) = 2.0f * (w(0, 0) - target); }
  float loss() const {
    const float d = w(0, 0) - target;
    return d * d;
  }
};

TEST(Sgd, SingleStepMatchesFormula) {
  Quadratic q(5.0f, 0.0f);
  Sgd opt(0.1f);
  q.compute_grad();  // g = 10
  auto params = q.params();
  opt.step(params);
  EXPECT_NEAR(q.w(0, 0), 5.0f - 0.1f * 10.0f, 1e-6f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic q(5.0f, 2.0f);
  Sgd opt(0.1f);
  for (int i = 0; i < 200; ++i) {
    q.compute_grad();
    auto params = q.params();
    opt.step(params);
  }
  EXPECT_NEAR(q.w(0, 0), 2.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Quadratic plain(5.0f, 0.0f), mom(5.0f, 0.0f);
  Sgd opt_plain(0.01f, 0.0f);
  Sgd opt_mom(0.01f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    plain.compute_grad();
    auto pp = plain.params();
    opt_plain.step(pp);
    mom.compute_grad();
    auto pm = mom.params();
    opt_mom.step(pm);
  }
  EXPECT_LT(mom.loss(), plain.loss());
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q(5.0f, -1.0f);
  Adam opt(0.1f);
  for (int i = 0; i < 500; ++i) {
    q.compute_grad();
    auto params = q.params();
    opt.step(params);
  }
  EXPECT_NEAR(q.w(0, 0), -1.0f, 1e-2f);
}

TEST(Adam, FirstStepIsBoundedByLr) {
  // Bias correction makes the first Adam step ~lr regardless of grad scale.
  Quadratic q(100.0f, 0.0f);
  Adam opt(0.05f);
  q.compute_grad();  // huge gradient
  auto params = q.params();
  opt.step(params);
  EXPECT_NEAR(q.w(0, 0), 100.0f - 0.05f, 1e-3f);
}

TEST(Adam, StepCountAdvances) {
  Quadratic q(1.0f, 0.0f);
  Adam opt(0.01f);
  EXPECT_EQ(opt.step_count(), 0u);
  q.compute_grad();
  auto params = q.params();
  opt.step(params);
  opt.step(params);
  EXPECT_EQ(opt.step_count(), 2u);
  opt.reset_state();
  EXPECT_EQ(opt.step_count(), 0u);
}

TEST(Adam, InvalidLrRejected) {
  EXPECT_THROW(Adam(0.0f), Error);
  EXPECT_THROW(Sgd(-1.0f), Error);
}

TEST(Adam, StatePersistsAcrossWeightOverwrite) {
  // After set_weights-style replacement the optimizer keeps its moments —
  // document the Keras-matching behaviour the FL layer relies on.
  Quadratic q(5.0f, 0.0f);
  Adam opt(0.1f);
  q.compute_grad();
  auto params = q.params();
  opt.step(params);
  q.w(0, 0) = 5.0f;  // "FedAvg replaced the weights"
  q.compute_grad();
  opt.step(params);
  EXPECT_EQ(opt.step_count(), 2u);  // moments not reset
}

}  // namespace
}  // namespace evfl::nn
