#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "metrics/classification.hpp"
#include "metrics/regression.hpp"
#include "metrics/timer.hpp"

namespace evfl::metrics {
namespace {

TEST(Regression, PerfectPrediction) {
  const std::vector<float> a = {1, 2, 3, 4};
  const RegressionMetrics m = evaluate_regression(a, a);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.r2, 1.0);
  EXPECT_EQ(m.n, 4u);
}

TEST(Regression, KnownValues) {
  const std::vector<float> actual = {1, 2, 3};
  const std::vector<float> pred = {2, 2, 5};
  EXPECT_NEAR(mean_absolute_error(actual, pred), (1 + 0 + 2) / 3.0, 1e-9);
  EXPECT_NEAR(root_mean_squared_error(actual, pred),
              std::sqrt((1 + 0 + 4) / 3.0), 1e-9);
  // mean = 2, ss_tot = 2, ss_res = 5 -> r2 = 1 - 5/2 = -1.5
  EXPECT_NEAR(r2_score(actual, pred), -1.5, 1e-9);
}

TEST(Regression, MeanPredictorHasZeroR2) {
  const std::vector<float> actual = {1, 2, 3, 4};
  const std::vector<float> mean_pred(4, 2.5f);
  EXPECT_NEAR(r2_score(actual, mean_pred), 0.0, 1e-9);
}

TEST(Regression, ConstantActualConvention) {
  EXPECT_EQ(r2_score({2, 2, 2}, {1, 2, 3}), 0.0);
}

TEST(Regression, RmseAtLeastMae) {
  const std::vector<float> actual = {0, 1, 5, 2, 8};
  const std::vector<float> pred = {1, 1, 3, 4, 4};
  EXPECT_GE(root_mean_squared_error(actual, pred),
            mean_absolute_error(actual, pred));
}

TEST(Regression, Validation) {
  EXPECT_THROW(mean_absolute_error({1}, {1, 2}), Error);
  EXPECT_THROW(r2_score({}, {}), Error);
}

TEST(Confusion, CountsAllFourCells) {
  const std::vector<std::uint8_t> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<std::uint8_t> pred = {1, 0, 1, 0, 1, 0};
  const ConfusionMatrix cm = confusion(truth, pred);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 2u);
  EXPECT_EQ(cm.total(), 6u);
}

TEST(Confusion, Accumulation) {
  ConfusionMatrix a{1, 2, 3, 4};
  const ConfusionMatrix b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.tp, 11u);
  EXPECT_EQ(a.fn, 44u);
}

TEST(Detection, KnownMetrics) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fp = 2;
  cm.fn = 4;
  cm.tn = 86;
  const DetectionMetrics m = from_confusion(cm);
  EXPECT_NEAR(m.precision, 0.8, 1e-9);
  EXPECT_NEAR(m.recall, 8.0 / 12.0, 1e-9);
  EXPECT_NEAR(m.f1, 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-9);
  EXPECT_NEAR(m.false_positive_rate, 2.0 / 88.0, 1e-9);
  EXPECT_EQ(m.true_attacks_detected, m.recall);
}

TEST(Detection, DegenerateCasesAreZeroNotNan) {
  const DetectionMetrics none = from_confusion(ConfusionMatrix{});
  EXPECT_EQ(none.precision, 0.0);
  EXPECT_EQ(none.recall, 0.0);
  EXPECT_EQ(none.f1, 0.0);
  EXPECT_EQ(none.false_positive_rate, 0.0);
}

TEST(Detection, EndToEndFromLabels) {
  const std::vector<std::uint8_t> truth = {0, 0, 1, 1};
  const std::vector<std::uint8_t> pred = {0, 1, 1, 1};
  const DetectionMetrics m = evaluate_detection(truth, pred);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.recall, 1.0, 1e-9);
  EXPECT_THROW(evaluate_detection({0}, {0, 1}), Error);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  // Burn a bit of CPU deterministically.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + i * 1e-9;
  EXPECT_GT(t.seconds(), 0.0);
  const double before = t.seconds();
  t.restart();
  EXPECT_LE(t.seconds(), before + 1.0);
}

}  // namespace
}  // namespace evfl::metrics
