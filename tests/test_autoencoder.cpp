#include "anomaly/autoencoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::anomaly {
namespace {

AutoencoderConfig tiny_config() {
  AutoencoderConfig cfg;
  cfg.window = 8;
  cfg.encoder_units = 10;
  cfg.latent_units = 5;
  cfg.dropout = 0.1f;
  cfg.max_epochs = 30;
  cfg.patience = 5;
  return cfg;
}

std::vector<float> sine_series(std::size_t n, float noise_amp,
                               std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(0.5f + 0.4f * std::sin(i * 0.26f) +
                  noise_amp * rng.normal());
  }
  return out;
}

TEST(Autoencoder, ArchitectureMatchesPaper) {
  AutoencoderConfig cfg;  // paper defaults: 50 -> 25 -> 25 -> 50
  tensor::Rng rng(1);
  LstmAutoencoder ae(cfg, rng);
  // 8 layers: LSTM(50,seq) Dropout LSTM(25) Repeat LSTM(25,seq) Dropout
  // LSTM(50,seq) Dense(1).
  EXPECT_EQ(ae.model().layer_count(), 8u);
  EXPECT_EQ(ae.model().layer(0).name(), "Lstm(50, seq)");
  EXPECT_EQ(ae.model().layer(2).name(), "Lstm(25, last)");
  EXPECT_EQ(ae.model().layer(3).name(), "RepeatVector(24)");
  EXPECT_EQ(ae.model().layer(6).name(), "Lstm(50, seq)");
}

TEST(Autoencoder, ScoreBeforeTrainThrows) {
  tensor::Rng rng(2);
  LstmAutoencoder ae(tiny_config(), rng);
  EXPECT_FALSE(ae.trained());
  EXPECT_THROW(ae.score(sine_series(100, 0.0f, 1)), Error);
  EXPECT_THROW(ae.reconstruct(sine_series(100, 0.0f, 1)), Error);
}

TEST(Autoencoder, TrainingReducesLoss) {
  tensor::Rng rng(3);
  LstmAutoencoder ae(tiny_config(), rng);
  const nn::FitHistory hist = ae.train(sine_series(300, 0.02f, 2), rng);
  EXPECT_TRUE(ae.trained());
  ASSERT_GE(hist.train_loss.size(), 2u);
  EXPECT_LT(hist.train_loss.back(), hist.train_loss.front());
}

TEST(Autoencoder, AnomalousPointsScoreHigher) {
  tensor::Rng rng(4);
  AutoencoderConfig cfg = tiny_config();
  cfg.dropout = 0.0f;
  cfg.max_epochs = 50;
  LstmAutoencoder ae(cfg, rng);
  const std::vector<float> normal = sine_series(400, 0.01f, 3);
  ae.train(normal, rng);

  std::vector<float> spiked = normal;
  spiked[200] = 3.0f;  // far outside the [0.1, 0.9] wave band
  const std::vector<float> scores = ae.score(spiked);
  ASSERT_EQ(scores.size(), spiked.size());

  // The spiked point's score dominates a typical clean point's score.
  double clean_mean = 0.0;
  std::size_t clean_n = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i < 180 || i > 220) {
      clean_mean += scores[i];
      ++clean_n;
    }
  }
  clean_mean /= clean_n;
  EXPECT_GT(scores[200], 10.0 * clean_mean);
}

TEST(Autoencoder, ScorePreservesSeriesLength) {
  tensor::Rng rng(5);
  AutoencoderConfig cfg = tiny_config();
  cfg.max_epochs = 5;
  LstmAutoencoder ae(cfg, rng);
  const auto series = sine_series(150, 0.02f, 4);
  ae.train(series, rng);
  EXPECT_EQ(ae.score(series).size(), series.size());
  const auto shorter = sine_series(60, 0.02f, 5);
  EXPECT_EQ(ae.score(shorter).size(), shorter.size());
}

TEST(Autoencoder, EarlyStoppingBoundsEpochs) {
  tensor::Rng rng(6);
  AutoencoderConfig cfg = tiny_config();
  cfg.max_epochs = 200;
  cfg.patience = 3;
  LstmAutoencoder ae(cfg, rng);
  const nn::FitHistory hist = ae.train(sine_series(200, 0.01f, 6), rng);
  // With a tiny dataset and aggressive patience, must stop well short.
  EXPECT_LT(hist.epochs_run, 200u);
}

TEST(Autoencoder, WindowTooSmallRejected) {
  AutoencoderConfig cfg = tiny_config();
  cfg.window = 1;
  tensor::Rng rng(7);
  EXPECT_THROW(LstmAutoencoder(cfg, rng), Error);
}

}  // namespace
}  // namespace evfl::anomaly
