#include "forecast/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "data/window.hpp"
#include "metrics/regression.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "obs/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/rng.hpp"

namespace evfl::forecast {
namespace {

using tensor::Rng;
using tensor::Tensor3;

/// Small-but-real forecaster for fast tests; 4H = 64 exercises both the
/// 8-wide int8 SIMD groups and the fp32 blocked kernels.
ForecasterConfig small_config() {
  ForecasterConfig cfg;
  cfg.lstm_units = 16;
  cfg.dense_units = 6;
  cfg.sequence_length = 12;
  return cfg;
}

Tensor3 random_batch(std::size_t n, std::size_t t, std::size_t f,
                     std::uint64_t seed) {
  Tensor3 x(n, t, f);
  Rng rng(seed);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = rng.uniform(-1.0f, 1.0f);
  }
  return x;
}

TEST(Engine, BatchOfOneBitIdenticalToPredict) {
  const ForecasterConfig cfg = small_config();
  Rng rng(7);
  nn::Sequential model = make_forecaster(cfg, rng);

  Engine engine(cfg);
  engine.publish(model.get_weights());

  for (std::uint64_t s = 0; s < 4; ++s) {
    const Tensor3 x = random_batch(1, cfg.sequence_length,
                                   cfg.input_features, 100 + s);
    const Tensor3 want = model.predict(x);
    float got = 0.0f;
    engine.score(x, &got);
    EXPECT_EQ(got, want(0, 0, 0));  // bit-identical, not just close
  }
}

TEST(Engine, WideBatchRowsTrackPredictClosely) {
  const ForecasterConfig cfg = small_config();
  Rng rng(8);
  nn::Sequential model = make_forecaster(cfg, rng);

  Engine engine(cfg);
  engine.publish(model.get_weights());

  const std::size_t batch = 17;  // odd size: exercises kernel tails
  const Tensor3 x =
      random_batch(batch, cfg.sequence_length, cfg.input_features, 9);
  std::vector<float> got;
  engine.score(x, got);
  ASSERT_EQ(got.size(), batch);

  // Wide batches run the vectorized rational gates, so rows agree with
  // the reference predict path to ~1e-5, not bitwise (that contract is
  // batch-of-1 only — see BatchOfOneBitIdenticalToPredict).
  for (std::size_t i = 0; i < batch; ++i) {
    const Tensor3 xi = x.batch_slice(i, i + 1);
    const Tensor3 want = model.predict(xi);
    EXPECT_NEAR(got[i], want(0, 0, 0), 1e-4) << "row " << i;
  }
}

TEST(Engine, RowResultsIndependentOfBatchComposition) {
  const ForecasterConfig cfg = small_config();
  Rng rng(8);
  nn::Sequential model = make_forecaster(cfg, rng);

  Engine engine(cfg);
  engine.publish(model.get_weights());

  const std::size_t batch = 17;
  const Tensor3 x =
      random_batch(batch, cfg.sequence_length, cfg.input_features, 9);
  std::vector<float> whole;
  engine.score(x, whole);

  // Scoring the same rows in two wide sub-batches must give the same bits:
  // within a tier a row's result depends only on its own data.
  std::vector<float> front, back;
  engine.score(x.batch_slice(0, 9), front);
  engine.score(x.batch_slice(9, batch), back);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(whole[i], front[i]);
  for (std::size_t i = 9; i < batch; ++i) EXPECT_EQ(whole[i], back[i - 9]);
}

TEST(Engine, PoolParallelBitIdenticalToSerial) {
  const ForecasterConfig cfg = small_config();
  Rng rng(10);
  nn::Sequential model = make_forecaster(cfg, rng);

  Engine engine(cfg);
  engine.publish(model.get_weights());

  const Tensor3 x =
      random_batch(64, cfg.sequence_length, cfg.input_features, 11);
  std::vector<float> serial;
  engine.score(x, serial);

  runtime::ThreadPool pool(4);
  runtime::RunContext ctx;
  ctx.pool = &pool;
  std::vector<float> parallel;
  engine.score(x, parallel, &ctx);
  EXPECT_EQ(serial, parallel);
}

TEST(Engine, Int8ParallelMatchesSerial) {
  const ForecasterConfig cfg = small_config();
  Rng rng(23);
  nn::Sequential model = make_forecaster(cfg, rng);

  EngineConfig ecfg;
  ecfg.precision = ServePrecision::kInt8;
  Engine engine(cfg, ecfg);
  engine.publish(model.get_weights());

  const Tensor3 x =
      random_batch(48, cfg.sequence_length, cfg.input_features, 24);
  std::vector<float> serial;
  engine.score(x, serial);

  runtime::ThreadPool pool(4);
  runtime::RunContext ctx;
  ctx.pool = &pool;
  std::vector<float> parallel;
  engine.score(x, parallel, &ctx);
  EXPECT_EQ(serial, parallel);
}

TEST(Engine, Int8TracksFp32OnTrainedModel) {
  ForecasterConfig cfg = small_config();

  // Train on a clean periodic signal so both precisions face a learnable
  // task and R2 is meaningfully high.
  std::vector<float> wave;
  for (int i = 0; i < 480; ++i) {
    wave.push_back(0.5f + 0.4f * std::sin(i * 2.0f * 3.14159f /
                                          static_cast<float>(
                                              cfg.sequence_length)));
  }
  const data::SequenceDataset ds =
      data::make_forecast_sequences(wave, cfg.sequence_length);

  Rng rng(12);
  nn::Sequential model = make_forecaster(cfg, rng);
  nn::MseLoss loss;
  nn::Adam adam(1e-2f);
  nn::Trainer trainer(model, loss, adam, rng);
  nn::FitConfig fit;
  fit.epochs = 12;
  trainer.fit(ds.x, ds.y, fit);

  EngineConfig fp32_cfg;
  fp32_cfg.max_batch = ds.x.batch();
  Engine fp32(cfg, fp32_cfg);
  fp32.publish(model.get_weights());

  EngineConfig int8_cfg = fp32_cfg;
  int8_cfg.precision = ServePrecision::kInt8;
  Engine int8(cfg, int8_cfg);
  int8.publish(model.get_weights());

  std::vector<float> pred_fp32, pred_int8, actual(ds.x.batch());
  fp32.score(ds.x, pred_fp32);
  int8.score(ds.x, pred_int8);
  for (std::size_t i = 0; i < actual.size(); ++i) actual[i] = ds.y(i, 0, 0);

  const double r2_fp32 = metrics::r2_score(actual, pred_fp32);
  const double r2_int8 = metrics::r2_score(actual, pred_int8);
  EXPECT_GT(r2_fp32, 0.9);  // the task is learnable; guard the baseline
  // Acceptance bound: int8 snapshots cost at most 0.01 R2.
  EXPECT_LE(r2_fp32 - r2_int8, 0.01);
}

TEST(Engine, PublishSwapsWeightsAndBumpsVersion) {
  const ForecasterConfig cfg = small_config();
  Rng rng(13);
  nn::Sequential model = make_forecaster(cfg, rng);

  Engine engine(cfg);
  EXPECT_EQ(engine.version(), 0u);
  const std::vector<float> w1 = model.get_weights();
  engine.publish(w1);
  EXPECT_EQ(engine.version(), 1u);

  const Tensor3 x =
      random_batch(4, cfg.sequence_length, cfg.input_features, 14);
  std::vector<float> out1;
  engine.score(x, out1);

  std::vector<float> w2 = w1;
  for (float& w : w2) w *= 0.5f;
  engine.publish(w2);
  EXPECT_EQ(engine.version(), 2u);
  std::vector<float> out2;
  engine.score(x, out2);
  EXPECT_NE(out1, out2);  // new snapshot actually serves

  // Third publish reuses the first slot; scores must follow again.
  engine.publish(w1);
  EXPECT_EQ(engine.version(), 3u);
  std::vector<float> out3;
  engine.score(x, out3);
  EXPECT_EQ(out1, out3);  // same weights -> same bits
}

TEST(Engine, RecordsTelemetry) {
  const ForecasterConfig cfg = small_config();
  Rng rng(15);
  nn::Sequential model = make_forecaster(cfg, rng);

  obs::Registry registry;
  Engine engine(cfg, EngineConfig{}, &registry);
  engine.publish(model.get_weights());

  const Tensor3 x =
      random_batch(8, cfg.sequence_length, cfg.input_features, 16);
  std::vector<float> out;
  engine.score(x, out);
  engine.score(x, out);

  EXPECT_DOUBLE_EQ(registry.counter("engine.forecasts_total").value(), 16.0);
  EXPECT_DOUBLE_EQ(registry.counter("engine.batches_total").value(), 2.0);
  EXPECT_EQ(registry.histogram("engine.batch_seconds").count(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("engine.snapshot_version").value(), 1.0);
}

TEST(Engine, ValidatesArguments) {
  const ForecasterConfig cfg = small_config();
  Rng rng(17);
  nn::Sequential model = make_forecaster(cfg, rng);

  EngineConfig ecfg;
  ecfg.max_batch = 8;
  Engine engine(cfg, ecfg);

  const Tensor3 ok =
      random_batch(4, cfg.sequence_length, cfg.input_features, 18);
  std::vector<float> out;
  EXPECT_THROW(engine.score(ok, out), Error);  // score before publish

  engine.publish(model.get_weights());
  EXPECT_NO_THROW(engine.score(ok, out));

  EXPECT_THROW(engine.publish(std::vector<float>(3, 0.0f)), Error);
  const Tensor3 too_big =
      random_batch(9, cfg.sequence_length, cfg.input_features, 19);
  EXPECT_THROW(engine.score(too_big, out), Error);
  const Tensor3 bad_features = random_batch(2, cfg.sequence_length, 2, 20);
  EXPECT_THROW(engine.score(bad_features, out), Error);
  EXPECT_THROW(Engine(cfg, EngineConfig{0, ServePrecision::kFp32}), Error);
}

/// Swap-under-load: scorer threads hammer score() while the main thread
/// alternates between two published weight sets.  Every batch result must
/// equal one snapshot's output in full — a mix would mean a torn read of a
/// half-frozen snapshot.  Run under TSan this also proves the reader /
/// publisher protocol is race-free.
TEST(EngineSwap, ConcurrentScoringSeesOnlyCompleteSnapshots) {
  const ForecasterConfig cfg = small_config();
  Rng rng(21);
  nn::Sequential model = make_forecaster(cfg, rng);

  const std::vector<float> wa = model.get_weights();
  std::vector<float> wb = wa;
  for (float& w : wb) w = -w;

  Engine engine(cfg);
  const Tensor3 x =
      random_batch(8, cfg.sequence_length, cfg.input_features, 22);

  // Reference outputs for both weight sets.
  std::vector<float> ref_a, ref_b;
  engine.publish(wa);
  engine.score(x, ref_a);
  engine.publish(wb);
  engine.score(x, ref_b);
  ASSERT_NE(ref_a, ref_b);

  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};
  std::vector<std::thread> scorers;
  for (int tidx = 0; tidx < 3; ++tidx) {
    scorers.emplace_back([&]() {
      std::vector<float> out(x.batch());
      while (!stop.load(std::memory_order_acquire)) {
        engine.score(x, out.data());
        if (out != ref_a && out != ref_b) {
          mixed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    engine.publish(i % 2 == 0 ? wa : wb);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : scorers) t.join();

  EXPECT_EQ(mixed.load(), 0);
  EXPECT_EQ(engine.version(), 2u + 50u);
}

TEST(EngineSnapshot, ToStringNamesPrecisions) {
  EXPECT_EQ(to_string(ServePrecision::kFp32), "fp32");
  EXPECT_EQ(to_string(ServePrecision::kInt8), "int8");
}

}  // namespace
}  // namespace evfl::forecast
