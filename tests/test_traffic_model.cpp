#include "sim/traffic_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace evfl::sim {
namespace {

TEST(TrafficModel, NominalMultiplierMatchesPaper) {
  TrafficModel model;
  // 350,500 / 33,000 = 10.62... — the paper's "10.6 times" multiplier.
  EXPECT_NEAR(model.nominal_multiplier(), 10.62, 0.01);
}

TEST(TrafficModel, RejectsDegenerateConfig) {
  TrafficModelConfig bad;
  bad.normal_pps = 0.0;
  EXPECT_THROW(TrafficModel{bad}, Error);
  TrafficModelConfig inverted;
  inverted.attack_pps = inverted.normal_pps / 2;
  EXPECT_THROW(TrafficModel{inverted}, Error);
}

TEST(TrafficModel, TraceShapeAndLabels) {
  TrafficModel model;
  tensor::Rng rng(1);
  const TrafficTrace trace = model.generate_trace(1000, 5, 20, rng);
  EXPECT_EQ(trace.size(), 1000u);
  EXPECT_EQ(trace.attack.size(), 1000u);
  std::size_t attacked = 0;
  for (auto a : trace.attack) attacked += a;
  EXPECT_GE(attacked, 20u);        // at least one burst survived placement
  EXPECT_LE(attacked, 5u * 20u);   // at most bursts * length
}

TEST(TrafficModel, MeasuredMultiplierNearNominal) {
  TrafficModel model;
  tensor::Rng rng(2);
  const TrafficTrace trace = model.generate_trace(20000, 40, 50, rng);
  const TrafficStats st = TrafficModel::analyze(trace);
  EXPECT_NEAR(st.mean_normal_pps, 33'000.0, 1500.0);
  EXPECT_NEAR(st.mean_attack_pps, 350'500.0, 20'000.0);
  EXPECT_NEAR(st.intensity_multiplier, 10.62, 1.0);
}

TEST(TrafficModel, NoAttackTraceHasZeroMultiplier) {
  TrafficModel model;
  tensor::Rng rng(3);
  const TrafficTrace trace = model.generate_trace(100, 0, 10, rng);
  const TrafficStats st = TrafficModel::analyze(trace);
  EXPECT_EQ(st.attack_slots, 0u);
  EXPECT_EQ(st.intensity_multiplier, 0.0);
}

TEST(TrafficModel, RatesNonNegative) {
  TrafficModelConfig cfg;
  cfg.normal_jitter = 2.0;  // extreme jitter would go negative unclamped
  TrafficModel model(cfg);
  tensor::Rng rng(4);
  const TrafficTrace trace = model.generate_trace(5000, 0, 0, rng);
  for (float v : trace.pps) EXPECT_GE(v, 0.0f);
}

TEST(TrafficModel, AnalyzeRejectsMisaligned) {
  TrafficTrace broken;
  broken.pps = {1.0f, 2.0f};
  broken.attack = {0};
  EXPECT_THROW(TrafficModel::analyze(broken), Error);
}

}  // namespace
}  // namespace evfl::sim
