#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "fl/driver.hpp"
#include "nn/dense.hpp"
#include "obs/round_telemetry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"
#include "tensor/rng.hpp"

namespace evfl::obs {
namespace {

// ---- Counter / Gauge --------------------------------------------------------

TEST(Counter, AccumulatesAcrossThreads) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  std::thread a([&] { for (int i = 0; i < 1000; ++i) c.add(); });
  std::thread b([&] { for (int i = 0; i < 1000; ++i) c.add(2.0); });
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(c.value(), 3000.0);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

// ---- Histogram --------------------------------------------------------------

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, SingleSampleReportsItselfAtEveryQuantile) {
  Histogram h;
  h.record(0.125);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.125);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.125);
}

TEST(Histogram, AllEqualSamplesCollapseQuantiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 2.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, QuantilesOrderAndBracketTheData) {
  Histogram h;
  // 1 ms .. 1 s span, uniformly log-spaced-ish samples.
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // Log-spaced buckets give ~7% resolution; allow 10%.
  EXPECT_NEAR(p50, 0.5, 0.05);
  EXPECT_NEAR(p95, 0.95, 0.10);
}

TEST(Histogram, P50P99CorrectOnKnownUniformDistribution) {
  // 10,000 evenly spaced samples over (0, 1]: the true q-quantile is q
  // itself, so p50/p90/p99 are known in closed form.  Log-spaced buckets
  // have ~7% resolution; assert 10% relative error.
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i * 1e-4);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.quantile(0.50), 0.50, 0.05);
  EXPECT_NEAR(h.quantile(0.90), 0.90, 0.09);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.099);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);  // exact: clamped to observed max
  // q=0 interpolates inside the lowest occupied bucket; it must stay
  // within bucket resolution of the true minimum.
  EXPECT_GE(h.quantile(0.0), 1e-4);
  EXPECT_NEAR(h.quantile(0.0), 1e-4, 1e-5);
}

TEST(Histogram, P99SeparatesTailFromBody) {
  // A latency-shaped bimodal distribution: 98% fast (1 ms), 2% slow (1 s).
  // p50 must sit on the body and p99 on the tail — three decades apart, so
  // bucket resolution is not a factor in telling them apart.
  Histogram h;
  for (int i = 0; i < 980; ++i) h.record(1e-3);
  for (int i = 0; i < 20; ++i) h.record(1.0);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_NEAR(p50, 1e-3, 1e-4);
  EXPECT_NEAR(p99, 1.0, 0.1);
  EXPECT_GT(p99 / p50, 100.0);
}

TEST(Histogram, OutOfDomainValuesKeepExactMinMax) {
  Histogram h(1e-3, 1.0, 16);
  h.record(1e-9);   // below the lowest bucket
  h.record(100.0);  // above the highest
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_GE(h.quantile(0.5), h.min());
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(Histogram, WriteJsonHasSummaryFields) {
  Histogram h;
  h.record(0.1);
  h.record(0.2);
  std::ostringstream os;
  h.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// ---- Registry ---------------------------------------------------------------

TEST(Registry, ReturnsStableInstruments) {
  Registry reg;
  Counter& c = reg.counter("requests");
  c.add(3.0);
  EXPECT_DOUBLE_EQ(reg.counter("requests").value(), 3.0);
  EXPECT_EQ(&reg.counter("requests"), &c);

  reg.gauge("load").set(0.7);
  reg.histogram("latency").record(0.01);

  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"load\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
}

TEST(Registry, WriteJsonFileRoundTrips) {
  Registry reg;
  reg.counter("stream.samples_total").add(42.0);
  reg.gauge("stream.queue_depth").set(7.0);
  const std::string path = "test_registry_dump.json";
  reg.write_json_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"stream.samples_total\": 42"), std::string::npos);
  EXPECT_NE(all.find("\"stream.queue_depth\": 7"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Registry, WriteJsonFileThrowsOnBadPath) {
  Registry reg;
  EXPECT_THROW(reg.write_json_file("/nonexistent_dir_xyz/reg.json"), Error);
}

// ---- TraceWriter / TraceSpan ------------------------------------------------

/// Minimal structural JSON check: one object per line, balanced braces,
/// quotes paired.  (No JSON library in the repo; the real consumers are
/// chrome://tracing and jq.)
void expect_parseable_jsonl(const std::string& path, std::size_t min_lines) {
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    int depth = 0;
    std::size_t quotes = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char ch = line[i];
      if (ch == '"' && (i == 0 || line[i - 1] != '\\')) {
        ++quotes;
        in_string = !in_string;
      } else if (!in_string && ch == '{') {
        ++depth;
      } else if (!in_string && ch == '}') {
        --depth;
        EXPECT_GE(depth, 0) << line;
      }
    }
    EXPECT_EQ(depth, 0) << line;
    EXPECT_EQ(quotes % 2, 0u) << line;
  }
  EXPECT_GE(lines, min_lines);
}

#if EVFL_TRACING

TEST(TraceWriter, WritesOneParseableEventPerLine) {
  const std::string path = "test_trace_events.jsonl";
  {
    TraceWriter w(path);
    w.complete("alpha", "test", 10, 20, "\"round\": 1");
    w.instant("beta", "test");
    w.counter("gamma", 3.5);
    {
      TraceSpan span(&w, "scoped", "test");
      span.annotate("round", static_cast<std::uint64_t>(2));
      span.annotate("loss", 0.25);
    }
    EXPECT_EQ(w.events_written(), 4u);
    w.flush();
  }
  expect_parseable_jsonl(path, 4);

  // Spot-check the trace_event schema fields.
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(all.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(all.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(all.find("\"name\": \"scoped\""), std::string::npos);
  EXPECT_NE(all.find("\"round\": 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriter, EscapesSpecialCharacters) {
  const std::string path = "test_trace_escape.jsonl";
  {
    TraceWriter w(path);
    w.instant("quote\"back\\slash\n", "test");
    w.flush();
  }
  expect_parseable_jsonl(path, 1);
  std::remove(path.c_str());
}

TEST(TraceWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(TraceWriter("/nonexistent_dir_xyz/trace.jsonl"), Error);
}

TEST(TraceSpan, NullWriterIsInert) {
  TraceSpan span(nullptr, "nothing");
  span.annotate("k", 1.0);
  span.end();  // must not crash
  TraceSpan defaulted;
  defaulted.end();
}

/// Tiny two-client linear federation for the driver-flush regressions.
std::vector<std::unique_ptr<fl::Client>> flush_test_clients() {
  fl::ModelFactory factory = [](tensor::Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
  std::vector<std::unique_ptr<fl::Client>> clients;
  tensor::Rng root(11);
  for (int c = 0; c < 2; ++c) {
    tensor::Tensor3 x(8, 1, 1), y(8, 1, 1);
    tensor::Rng data_rng = root.split();
    for (std::size_t i = 0; i < 8; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = 2.0f * xi;
    }
    fl::ClientConfig cfg;
    cfg.epochs_per_round = 1;
    clients.push_back(
        std::make_unique<fl::Client>(c, x, y, factory, cfg, root.split()));
  }
  return clients;
}

/// Regression: the drivers emit spans through the RunContext's TraceWriter
/// but used to leave the last rounds' spans in the writer's buffer at
/// teardown — a caller inspecting the file right after run() (while the
/// writer is still alive, so no destructor flush has happened) saw a
/// truncated or empty trace.  run() must flush the writer before returning.
TEST(TraceWriter, SyncDriverFlushesSpansAtTeardown) {
  const std::string path = "test_trace_sync_teardown.jsonl";
  TraceWriter writer(path);
  runtime::RunContext ctx;
  ctx.trace = &writer;

  auto clients = flush_test_clients();
  fl::Server server({0.0f, 0.0f});
  fl::InMemoryNetwork net;
  fl::SyncDriver driver(server, clients, net, &ctx);
  driver.run(2);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"fl.round\""), std::string::npos);
  EXPECT_NE(all.find("\"fl.client_train\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriter, ThreadedDriverFlushesSpansAtTeardown) {
  // The threaded teardown ends mid-round for the workers (kShutdownRound
  // broadcast), the shape that used to lose their buffered spans.
  const std::string path = "test_trace_threaded_teardown.jsonl";
  TraceWriter writer(path);
  runtime::RunContext ctx;
  ctx.trace = &writer;

  auto clients = flush_test_clients();
  fl::Server server({0.0f, 0.0f});
  fl::InMemoryNetwork net;
  fl::ThreadedDriver driver(server, clients, net, nullptr, &ctx);
  driver.run(1);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"fl.round\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSpan, MoveTransfersOwnership) {
  const std::string path = "test_trace_move.jsonl";
  {
    TraceWriter w(path);
    TraceSpan a(&w, "moved", "test");
    TraceSpan b = std::move(a);
    a.end();  // moved-from: no event
    EXPECT_EQ(w.events_written(), 0u);
    b.end();  // the one real emission
    EXPECT_EQ(w.events_written(), 1u);
    b.end();  // idempotent
    EXPECT_EQ(w.events_written(), 1u);
  }
  std::remove(path.c_str());
}

#else  // !EVFL_TRACING

TEST(TraceWriter, CompiledOutStubIsFullyInert) {
  TraceWriter w("ignored-path.jsonl");  // must not create a file
  w.complete("a", "b", 0, 1);
  w.instant("a", "b");
  w.counter("a", 1.0);
  EXPECT_EQ(w.events_written(), 0u);
  TraceSpan span(&w, "noop");
  span.annotate("k", 1.0);
  span.end();
  EXPECT_FALSE(std::ifstream("ignored-path.jsonl").is_open());
}

#endif  // EVFL_TRACING

// ---- RoundTelemetrySink -----------------------------------------------------

RoundTelemetry sample_round(std::uint32_t r) {
  RoundTelemetry rt;
  rt.round = r;
  rt.wall_seconds = 0.1 * (r + 1);
  rt.max_client_seconds = 0.05;
  rt.client_train_seconds = {0.04, 0.05};
  rt.bytes_down = 100;
  rt.bytes_up = 200;
  rt.updates_accepted = 2;
  return rt;
}

TEST(RoundTelemetrySink, AccumulatesOrderedRecords) {
  RoundTelemetrySink sink;
  EXPECT_EQ(sink.size(), 0u);
  for (std::uint32_t r = 0; r < 3; ++r) sink.record(sample_round(r));
  EXPECT_EQ(sink.size(), 3u);
  const std::vector<RoundTelemetry> rounds = sink.rounds();
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[2].round, 2u);
  EXPECT_DOUBLE_EQ(rounds[2].wall_seconds, 0.3);
  const double p50 = sink.round_seconds_quantile(0.5);
  EXPECT_GE(p50, 0.1);
  EXPECT_LE(p50, 0.3);
}

TEST(RoundTelemetrySink, JsonDocumentCarriesQuantilesAndTotals) {
  RoundTelemetrySink sink;
  for (std::uint32_t r = 0; r < 4; ++r) sink.record(sample_round(r));
  std::ostringstream os;
  sink.write_json(os, {{"custom.counter", 7.0}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"round_wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"client_train_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"custom.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
}

TEST(RoundTelemetrySink, WriteJsonFileThrowsOnBadPath) {
  RoundTelemetrySink sink;
  EXPECT_THROW(sink.write_json_file("/nonexistent_dir_xyz/m.json"), Error);
}

}  // namespace
}  // namespace evfl::obs
