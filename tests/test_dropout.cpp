#include "nn/dropout.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor3;

Tensor3 ones(std::size_t n, std::size_t t, std::size_t f) {
  Tensor3 x(n, t, f);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = 1.0f;
  return x;
}

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(1);
  Dropout layer(0.5f, rng);
  const Tensor3 x = ones(4, 3, 2);
  const Tensor3 y = layer.forward(x, /*training=*/false);
  EXPECT_LT(tensor::max_abs_diff(x, y), 1e-7f);
}

TEST(Dropout, RateZeroIsIdentityEvenTraining) {
  Rng rng(2);
  Dropout layer(0.0f, rng);
  const Tensor3 x = ones(4, 3, 2);
  const Tensor3 y = layer.forward(x, true);
  EXPECT_LT(tensor::max_abs_diff(x, y), 1e-7f);
}

TEST(Dropout, TrainingZeroesApproximatelyRateFraction) {
  Rng rng(3);
  Dropout layer(0.2f, rng);
  const Tensor3 x = ones(100, 10, 10);  // 10k elements
  const Tensor3 y = layer.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) zeros += (y.data()[i] == 0.0f);
  const double frac = static_cast<double>(zeros) / y.size();
  EXPECT_NEAR(frac, 0.2, 0.02);
}

TEST(Dropout, SurvivorsScaledByInverseKeep) {
  Rng rng(4);
  Dropout layer(0.25f, rng);
  const Tensor3 x = ones(10, 10, 10);
  const Tensor3 y = layer.forward(x, true);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] != 0.0f) {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.75f, 1e-5f);
    }
  }
}

TEST(Dropout, ExpectationPreserved) {
  Rng rng(5);
  Dropout layer(0.3f, rng);
  const Tensor3 x = ones(100, 10, 10);
  const Tensor3 y = layer.forward(x, true);
  EXPECT_NEAR(y.sum() / static_cast<float>(y.size()), 1.0f, 0.05f);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(6);
  Dropout layer(0.5f, rng);
  const Tensor3 x = ones(8, 4, 4);
  const Tensor3 y = layer.forward(x, true);
  const Tensor3 dx = layer.backward(ones(8, 4, 4));
  // Gradient must be zero exactly where the activation was dropped and
  // scaled identically where kept.
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(dx.data()[i], y.data()[i]);
  }
}

TEST(Dropout, BackwardAfterEvalForwardIsIdentity) {
  Rng rng(7);
  Dropout layer(0.5f, rng);
  layer.forward(ones(2, 2, 2), false);
  const Tensor3 g = ones(2, 2, 2);
  const Tensor3 dx = layer.backward(g);
  EXPECT_LT(tensor::max_abs_diff(g, dx), 1e-7f);
}

TEST(Dropout, InvalidRateRejected) {
  Rng rng(8);
  EXPECT_THROW(Dropout(1.0f, rng), Error);
  EXPECT_THROW(Dropout(-0.1f, rng), Error);
}

TEST(Dropout, HasNoParams) {
  Rng rng(9);
  Dropout layer(0.2f, rng);
  EXPECT_TRUE(layer.params().empty());
}

}  // namespace
}  // namespace evfl::nn
