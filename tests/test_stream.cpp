#include "stream/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "forecast/model.hpp"
#include "stream/queue.hpp"
#include "tensor/rng.hpp"

namespace evfl::stream {
namespace {

using forecast::Engine;
using forecast::ForecasterConfig;

// ---- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, FifoWithinBound) {
  BoundedQueue<int> q(8, 4);
  for (int i = 0; i < 6; ++i) q.push(i);
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.dropped(), 0u);
  std::vector<int> out;
  EXPECT_EQ(q.drain(out), 6u);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, DropsOldestPastMaxWithCount) {
  BoundedQueue<int> q(4, 2);
  for (int i = 0; i < 10; ++i) q.push(i);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.dropped(), 6u);
  // The freshest entries survive back-pressure, in order.
  std::vector<int> out;
  q.drain(out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], 6 + i);
}

TEST(BoundedQueue, StorageGrowsUnderBurstAndShrinksOnDrain) {
  BoundedQueue<int> q(64, 4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 40; ++i) q.push(i);
  EXPECT_GE(q.capacity(), 40u);
  std::vector<int> out;
  q.drain(out);
  EXPECT_EQ(q.capacity(), 4u);  // burst memory returned
  // Steady state within the watermark never grows the storage again.
  for (int i = 0; i < 4; ++i) q.push(i);
  EXPECT_EQ(q.capacity(), 4u);
}

TEST(BoundedQueue, Validation) {
  EXPECT_THROW(BoundedQueue<int>(0, 1), Error);
  EXPECT_THROW(BoundedQueue<int>(4, 8), Error);
  EXPECT_THROW(BoundedQueue<int>(4, 0), Error);
}

// ---- StreamPipeline fixtures ------------------------------------------------

/// Small-but-real forecaster (same shape as the engine tests).
ForecasterConfig small_config() {
  ForecasterConfig cfg;
  cfg.lstm_units = 16;
  cfg.dense_units = 6;
  cfg.sequence_length = 12;
  return cfg;
}

/// Identity scaler: raw values are already in [0, 1].
data::MinMaxScaler identity_scaler() {
  data::MinMaxScaler s;
  s.fit({0.0f, 1.0f});
  return s;
}

/// Deterministic bounded series: diurnal-ish sine plus a small hash ripple.
std::vector<float> make_series(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull + seed;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    const float noise =
        static_cast<float>((x >> 40) & 0xFFFF) / 65535.0f;  // [0, 1)
    v[i] = 0.5f + 0.3f * std::sin(0.3f * static_cast<float>(i + seed)) +
           0.05f * (noise - 0.5f);
  }
  return v;
}

struct EngineFixture {
  ForecasterConfig model = small_config();
  Engine engine;

  explicit EngineFixture(std::uint64_t seed = 7)
      : engine(model) {
    tensor::Rng rng(seed);
    nn::Sequential net = forecast::make_forecaster(model, rng);
    engine.publish(net.get_weights());
  }
};

// ---- Streaming vs batch equivalence ----------------------------------------

TEST(StreamPipeline, FrozenThresholdBitIdenticalToBatch) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;
  const std::size_t zones = 3;
  const std::size_t n = 120;

  StreamConfig cfg;
  cfg.max_zones = zones;
  cfg.repair_inputs = false;  // batch scores the raw series; so must we
  cfg.flush_batch = 32;
  StreamPipeline pipe(fx.engine, cfg);

  std::vector<std::vector<float>> series;
  std::vector<std::vector<float>> expected;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 100 + z));
    expected.push_back(batch_scores(fx.engine, series[z]));
    pipe.add_zone(identity_scaler());
    // Freeze at the 90th percentile of the batch scores: the stream must
    // reproduce the batch detector's anomaly set exactly.
    pipe.freeze_threshold(static_cast<std::uint32_t>(z),
                          anomaly::percentile(expected[z], 90.0));
  }

  // Interleave zones the way a real feed would.
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t z = 0; z < zones; ++z) {
      pipe.ingest(static_cast<std::uint32_t>(z), t, series[z][t]);
    }
  }
  pipe.flush();

  std::vector<AnomalyEvent> events;
  pipe.drain(events);

  // Build the batch detector's anomaly set per zone.
  std::set<std::pair<std::uint32_t, std::uint64_t>> batch_set;
  for (std::size_t z = 0; z < zones; ++z) {
    const float thr = pipe.threshold(static_cast<std::uint32_t>(z));
    for (std::size_t i = 0; i < expected[z].size(); ++i) {
      if (expected[z][i] > thr) {
        batch_set.insert({static_cast<std::uint32_t>(z),
                          static_cast<std::uint64_t>(i + lookback)});
      }
    }
  }
  ASSERT_FALSE(batch_set.empty()) << "degenerate fixture: nothing flagged";

  std::set<std::pair<std::uint32_t, std::uint64_t>> stream_set;
  for (const AnomalyEvent& ev : events) {
    stream_set.insert({ev.zone, ev.t});
    // Same window, same wide engine tier: the streamed score must carry
    // the exact bits of the batch score, not merely be close.
    ASSERT_GE(ev.t, lookback);
    EXPECT_EQ(ev.score, expected[ev.zone][ev.t - lookback]);
    EXPECT_EQ(ev.repaired, ev.value);  // repair disabled
  }
  EXPECT_EQ(stream_set, batch_set);

  const StreamStats st = pipe.stats();
  EXPECT_EQ(st.samples_total, zones * n);
  EXPECT_EQ(st.not_ready_total, zones * lookback);
  EXPECT_EQ(st.scored_total, zones * (n - lookback));
  EXPECT_EQ(st.events_total, events.size());
  EXPECT_EQ(st.events_dropped, 0u);
}

TEST(StreamPipeline, SingleZoneStillMatchesBatch) {
  // One zone -> every round is a 1-row batch, the shape that must be padded
  // onto the wide tier to keep bit-equality with batch scoring.
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;
  const std::size_t n = 60;
  const std::vector<float> series = make_series(n, 5);
  const std::vector<float> expected = batch_scores(fx.engine, series);

  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.repair_inputs = false;
  cfg.flush_batch = 7;  // odd cadence: exercises mid-series flush cuts
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.freeze_threshold(0, anomaly::percentile(expected, 85.0));

  for (std::size_t t = 0; t < n; ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();

  std::vector<AnomalyEvent> events;
  pipe.drain(events);
  const float thr = pipe.threshold(0);
  std::size_t batch_flagged = 0;
  for (float s : expected) batch_flagged += (s > thr);
  ASSERT_EQ(events.size(), batch_flagged);
  for (const AnomalyEvent& ev : events) {
    EXPECT_EQ(ev.score, expected[ev.t - lookback]);
  }
}

// ---- Not-ready / churn semantics -------------------------------------------

TEST(StreamPipeline, NoScoreUntilLookbackSamples) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;

  StreamConfig cfg;
  cfg.max_zones = 1;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.freeze_threshold(0, 0.0f);  // everything scored would be flagged

  // First lookback samples: never scored, never flagged — a zero-padded
  // window would fire spurious anomalies right here.
  for (std::size_t t = 0; t < lookback; ++t) {
    pipe.ingest(0, t, 0.9f);
    pipe.flush();
    EXPECT_EQ(pipe.stats().scored_total, 0u) << "t=" << t;
    EXPECT_EQ(pipe.stats().events_total, 0u) << "t=" << t;
  }
  EXPECT_EQ(pipe.stats().not_ready_total, lookback);
  EXPECT_TRUE(pipe.ready(0));

  // Sample lookback is the first with a real window behind it.
  pipe.ingest(0, lookback, 0.9f);
  pipe.flush();
  EXPECT_EQ(pipe.stats().scored_total, 1u);
}

TEST(StreamPipeline, GapResetsWindowToNotReady) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;

  StreamConfig cfg;
  cfg.max_zones = 1;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.freeze_threshold(0, 1e6f);

  const std::vector<float> series = make_series(4 * lookback, 3);
  std::size_t t = 0;
  for (; t < lookback + 4; ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();
  const StreamStats before = pipe.stats();
  EXPECT_EQ(before.scored_total, 4u);
  EXPECT_EQ(before.gaps_total, 0u);

  // Churn: the zone vanishes and comes back 10 ticks later.  The window no
  // longer holds this sample's actual history, so scoring must stop until
  // lookback fresh in-order samples have refilled it.
  t += 10;
  const std::size_t resume = t;
  for (; t < resume + lookback + 2; ++t) pipe.ingest(0, t, series[t % series.size()]);
  pipe.flush();
  const StreamStats after = pipe.stats();
  EXPECT_EQ(after.gaps_total, 1u);
  EXPECT_EQ(after.not_ready_total, before.not_ready_total + lookback);
  EXPECT_EQ(after.scored_total, before.scored_total + 2);
}

// ---- Thresholds -------------------------------------------------------------

TEST(StreamPipeline, UnarmedZoneNeverFlags) {
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.adapt_thresholds = false;  // never arms on its own
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  EXPECT_TRUE(std::isnan(pipe.threshold(0)));

  const std::vector<float> series = make_series(50, 9);
  for (std::size_t t = 0; t < series.size(); ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();
  EXPECT_GT(pipe.stats().scored_total, 0u);
  EXPECT_EQ(pipe.stats().events_total, 0u);
}

TEST(StreamPipeline, SeededThresholdAdaptsOnline) {
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.threshold = {anomaly::ThresholdKind::kPercentile, 99.0};
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());

  // Seed from a clean calibration run, then keep streaming: the estimator
  // must keep folding scores in (count grows) and stay finite.
  const std::vector<float> series = make_series(200, 21);
  std::vector<float> calib(series.begin(), series.begin() + 80);
  pipe.seed_threshold(0, batch_scores(fx.engine, calib));
  const std::size_t seeded_count = pipe.estimator(0).count();
  ASSERT_GT(seeded_count, 0u);
  const float seeded = pipe.threshold(0);
  ASSERT_TRUE(std::isfinite(seeded));

  for (std::size_t t = 0; t < series.size(); ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();
  EXPECT_GT(pipe.estimator(0).count(), seeded_count);
  EXPECT_TRUE(std::isfinite(pipe.threshold(0)));
}

TEST(StreamPipeline, AdaptationWinsorizesFlaggedScores) {
  // An attack burst must not drag the adaptive threshold past later
  // attacks: flagged scores fold in clamped at twice the threshold that
  // flagged them, so even a plateau of attack-sized scores (hundreds of
  // times the seeded threshold) moves the estimate a bounded amount and
  // every plateau sample keeps getting flagged.
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.threshold = {anomaly::ThresholdKind::kPercentile, 98.0};
  cfg.repair_inputs = false;  // raw windows; isolate the adaptation path
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());

  const std::vector<float> series = make_series(400, 33);
  pipe.seed_threshold(
      0, batch_scores(fx.engine,
                      {series.begin(), series.begin() + 120}));
  const float seeded = pipe.threshold(0);
  ASSERT_TRUE(std::isfinite(seeded));

  // Clean prefix, a 10-sample attack plateau far outside [0, 1], clean
  // tail.  Scores at the plateau are ~(25 - forecast)^2, orders of
  // magnitude above any clean score.
  std::size_t t = 0;
  for (; t < 200; ++t) pipe.ingest(0, t, series[t]);
  const std::uint64_t attack_start = t;
  for (std::size_t k = 0; k < 10; ++k, ++t) pipe.ingest(0, t, 25.0f);
  const std::uint64_t attack_end = t;
  for (; t < series.size(); ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();

  std::vector<AnomalyEvent> events;
  pipe.drain(events);
  std::set<std::uint64_t> flagged;
  for (const AnomalyEvent& ev : events) flagged.insert(ev.t);
  for (std::uint64_t a = attack_start; a < attack_end; ++a) {
    EXPECT_TRUE(flagged.count(a) != 0) << "attack sample " << a
                                       << " not flagged";
  }
  // Bounded drag: the final threshold stays a small multiple of the
  // seeded value, far below the plateau scores (>= (25-1)^2).  Unclamped
  // P² adaptation lands in the hundreds here.
  const float final_thr = pipe.threshold(0);
  EXPECT_TRUE(std::isfinite(final_thr));
  EXPECT_LT(final_thr, 16.0f * seeded + 0.5f);
  EXPECT_LT(final_thr, 100.0f);
}

// ---- Online repair ----------------------------------------------------------

TEST(StreamPipeline, RepairHoldsNearestTrustworthyValue) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;

  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.repair_inputs = true;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  // Generous frozen threshold: only the injected spike gets flagged.
  const std::vector<float> series = make_series(3 * lookback, 31);
  pipe.freeze_threshold(0, anomaly::percentile(batch_scores(fx.engine, series),
                                               100.0) +
                               0.01f);

  std::size_t t = 0;
  for (; t < 2 * lookback; ++t) pipe.ingest(0, t, series[t]);
  const float last_clean = series[t - 1];
  pipe.ingest(0, t++, 12.0f);  // attack spike, way out of [0, 1]
  pipe.flush();

  std::vector<AnomalyEvent> events;
  ASSERT_EQ(pipe.drain(events), 1u);
  EXPECT_FLOAT_EQ(events[0].value, 12.0f);
  // kLinear at the live edge has no right anchor: it holds the newest
  // trustworthy neighbour, the paper's rule truncated to the past.
  EXPECT_FLOAT_EQ(events[0].repaired, last_clean);
  EXPECT_EQ(pipe.stats().repaired_total, 1u);

  // The repaired value — not the spike — extended the window, so the next
  // samples score against a sane history and stay unflagged.
  for (std::size_t k = 0; k < 4; ++k, ++t) pipe.ingest(0, t, series[t % series.size()]);
  pipe.flush();
  events.clear();
  EXPECT_EQ(pipe.drain(events), 0u);
}

TEST(StreamPipeline, NonFiniteInputNeverPoisonsScoring) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;

  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.repair_inputs = true;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.freeze_threshold(0, 1e6f);

  const std::vector<float> series = make_series(2 * lookback + 8, 17);
  std::size_t t = 0;
  for (; t < lookback + 2; ++t) pipe.ingest(0, t, series[t]);
  pipe.ingest(0, t++, std::numeric_limits<float>::quiet_NaN());
  for (; t < series.size(); ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();

  const StreamStats st = pipe.stats();
  EXPECT_EQ(st.nonfinite_inputs, 1u);
  EXPECT_EQ(st.nonfinite_scores, 1u);  // that sample's own score is NaN
  EXPECT_EQ(st.events_total, 0u);      // NaN never flags
  // Repair replaced it in the window, so streaming continued: every later
  // sample was scored (none went not-ready after the glitch).
  EXPECT_EQ(st.not_ready_total, lookback);
  EXPECT_EQ(st.gaps_total, 0u);
}

// ---- Back-pressure ----------------------------------------------------------

TEST(StreamPipeline, BackPressureDropsOldestAndCounts) {
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.repair_inputs = false;
  cfg.queue_max = 4;
  cfg.queue_shrink = 2;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.freeze_threshold(0, 0.0f);  // every scored sample becomes an event

  const std::size_t n = 40;
  const std::vector<float> series = make_series(n, 13);
  for (std::size_t t = 0; t < n; ++t) pipe.ingest(0, t, series[t]);
  pipe.flush();

  const StreamStats st = pipe.stats();
  const std::size_t scored = st.scored_total;
  ASSERT_GT(scored, cfg.queue_max);
  EXPECT_EQ(st.events_total, scored);
  EXPECT_EQ(st.events_dropped, scored - cfg.queue_max);

  // Only the freshest events survive, still in order.
  std::vector<AnomalyEvent> events;
  EXPECT_EQ(pipe.drain(events), cfg.queue_max);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t, n - cfg.queue_max + i);
  }
  EXPECT_EQ(pipe.stats().events_dropped, scored - cfg.queue_max);
}

// ---- Auto-flush and validation ---------------------------------------------

TEST(StreamPipeline, IngestAutoFlushesAtBatch) {
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 2;
  cfg.flush_batch = 8;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.add_zone(identity_scaler());

  for (std::size_t t = 0; t < 7; ++t) pipe.ingest(0, t, 0.5f);
  EXPECT_EQ(pipe.pending(), 7u);
  pipe.ingest(1, 0, 0.5f);  // 8th pending sample trips the flush
  EXPECT_EQ(pipe.pending(), 0u);
  EXPECT_EQ(pipe.stats().flushes_total, 1u);
}

TEST(StreamPipeline, Validation) {
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 1;
  StreamPipeline pipe(fx.engine, cfg);
  EXPECT_THROW(pipe.ingest(0, 0, 1.0f), Error);  // no zone yet
  pipe.add_zone(identity_scaler());
  EXPECT_THROW(pipe.add_zone(identity_scaler()), Error);  // max_zones
  EXPECT_THROW(pipe.freeze_threshold(0, std::nanf("")), Error);
  EXPECT_THROW(pipe.freeze_threshold(7, 1.0f), Error);
  EXPECT_THROW(pipe.threshold(7), Error);
  data::MinMaxScaler unfitted;
  StreamConfig cfg2;
  cfg2.max_zones = 2;
  StreamPipeline pipe2(fx.engine, cfg2);
  EXPECT_THROW(pipe2.add_zone(unfitted), Error);

  // Engine too small for the zone fan-out.
  forecast::EngineConfig small_engine;
  small_engine.max_batch = 2;
  Engine engine2(fx.model, small_engine);
  StreamConfig wide;
  wide.max_zones = 64;
  EXPECT_THROW(StreamPipeline(engine2, wide), Error);
}

// ---- Concurrent producer/consumer soak (TSan-exercised) ---------------------

TEST(StreamPipeline, ConcurrentDrainSoak) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;
  const std::size_t zones = 2;
  const std::size_t n = 1500;

  StreamConfig cfg;
  cfg.max_zones = zones;
  cfg.flush_batch = 16;
  cfg.queue_max = 64;
  cfg.queue_shrink = 16;
  StreamPipeline pipe(fx.engine, cfg);
  std::vector<std::vector<float>> series;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 40 + z));
    pipe.add_zone(identity_scaler());
    pipe.freeze_threshold(static_cast<std::uint32_t>(z), 1e-5f);  // busy queue
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread consumer([&] {
    std::vector<AnomalyEvent> out;
    while (!done.load(std::memory_order_acquire)) {
      out.clear();
      drained.fetch_add(pipe.drain(out), std::memory_order_relaxed);
      std::this_thread::yield();
    }
    out.clear();
    drained.fetch_add(pipe.drain(out), std::memory_order_relaxed);
  });

  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t z = 0; z < zones; ++z) {
      // Periodic churn on zone 1: skip a tick every 400 samples.
      const std::uint64_t ts = z == 1 ? t + (t / 400) : t;
      pipe.ingest(static_cast<std::uint32_t>(z), ts, series[z][t]);
    }
  }
  pipe.flush();
  done.store(true, std::memory_order_release);
  consumer.join();

  const StreamStats st = pipe.stats();
  EXPECT_EQ(st.samples_total, zones * n);
  EXPECT_EQ(st.gaps_total, (n - 1) / 400);
  // Every event is either delivered or accounted as dropped — none vanish.
  EXPECT_EQ(drained.load() + st.events_dropped, st.events_total);
  // Zone 0 scores n - lookback samples; zone 1 pays a lookback refill after
  // each of its 3 gaps on top of the initial one: n - 4 * lookback.
  EXPECT_EQ(st.scored_total, 2 * n - 5 * lookback);
}

// ---- Drift-triggered threshold re-seeding -----------------------------------

/// Replay clean-then-shifted data through one adaptive zone and report how
/// it behaved after the sustained level shift.
struct DriftRunResult {
  std::uint64_t reseeds = 0;
  std::size_t tail_events = 0;  // flagged in the late post-shift region
  bool spike_flagged = false;   // the genuine anomaly after recovery
};

DriftRunResult run_drift_scenario(double drift_z) {
  EngineFixture fx;
  const std::size_t n_base = 300;   // stationary level
  const std::size_t n_shift = 400;  // sustained +0.5 level shift
  const std::size_t tail_start = 200;  // post-shift sample where we start
                                       // counting residual false alarms

  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.repair_inputs = false;  // keep score dynamics purely input-driven
  cfg.drift_z = drift_z;
  cfg.drift_window = 64;
  cfg.flush_batch = 16;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());

  const std::vector<float> base = make_series(n_base + n_shift + 1, 23);
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < n_base; ++i, ++t) pipe.ingest(0, t, base[t]);
  // The regime change: every subsequent sample rides 0.5 higher, so
  // forecast errors (and scores) stay inflated indefinitely — exactly the
  // shape winsorized adaptation crawls through and a re-seed jumps through.
  const std::uint64_t spike_t = t + n_shift;
  for (std::size_t i = 0; i < n_shift; ++i, ++t) {
    pipe.ingest(0, t, base[t] + 0.5f);
  }
  pipe.ingest(0, t, base[t] + 2.5f);  // genuine anomaly on the new level
  pipe.flush();

  std::vector<AnomalyEvent> events;
  pipe.drain(events);
  DriftRunResult r;
  r.reseeds = pipe.stats().reseeds_total;
  for (const AnomalyEvent& ev : events) {
    if (ev.t == spike_t) r.spike_flagged = true;
    if (ev.t >= n_base + tail_start && ev.t < spike_t) ++r.tail_events;
  }
  return r;
}

TEST(StreamDrift, ReseedRecoversFasterAfterLevelShiftWithoutRecallLoss) {
  const DriftRunResult off = run_drift_scenario(0.0);
  const DriftRunResult on = run_drift_scenario(4.0);

  // The probe is off by default and never fires when disarmed.
  EXPECT_EQ(off.reseeds, 0u);
  // Armed, the sustained shift must trigger at least one re-seed.
  EXPECT_GE(on.reseeds, 1u);

  // Recovery: by the tail of the shifted region the re-seeded threshold
  // has converged to the new score level, while pure winsorized
  // adaptation is still walking its P2 markers up — strictly fewer
  // residual false alarms with the probe armed.
  EXPECT_LT(on.tail_events, off.tail_events);

  // No recall loss: a genuine anomaly on the new level is still flagged.
  EXPECT_TRUE(on.spike_flagged);
}

TEST(StreamDrift, FrozenZoneNeverReseeds) {
  EngineFixture fx;
  StreamConfig cfg;
  cfg.max_zones = 1;
  cfg.drift_z = 1.0;  // hair trigger
  cfg.drift_window = 8;
  StreamPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.freeze_threshold(0, 0.5f);

  for (std::uint64_t t = 0; t < 200; ++t) {
    pipe.ingest(0, t, t < 100 ? 0.2f : 0.9f);  // blatant level shift
  }
  pipe.flush();
  EXPECT_EQ(pipe.stats().reseeds_total, 0u);
  EXPECT_EQ(pipe.threshold(0), 0.5f);  // frozen means frozen
}

}  // namespace
}  // namespace evfl::stream
