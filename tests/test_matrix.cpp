#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace evfl::tensor {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 1.5f);
  EXPECT_EQ(m(0, 0), 1.5f);
  EXPECT_EQ(m(1, 1), 1.5f);
}

TEST(Matrix, FromRows) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0f);
  EXPECT_EQ(m(1, 0), 4.0f);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), ShapeError);
}

TEST(Matrix, RowAndColVector) {
  Matrix r = Matrix::row_vector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Matrix c = Matrix::col_vector({1, 2, 3});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0f);
  EXPECT_EQ(i(0, 1), 0.0f);
  EXPECT_EQ(i(2, 2), 1.0f);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), ShapeError);
  EXPECT_THROW(m.at(0, 2), ShapeError);
}

TEST(Matrix, AddSubScale) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{10, 20}, {30, 40}});
  Matrix sum = a + b;
  EXPECT_EQ(sum(1, 1), 44.0f);
  Matrix diff = b - a;
  EXPECT_EQ(diff(0, 0), 9.0f);
  Matrix scaled = a * 2.0f;
  EXPECT_EQ(scaled(1, 0), 6.0f);
  Matrix scaled2 = 0.5f * b;
  EXPECT_EQ(scaled2(0, 1), 10.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_THROW(a += b, ShapeError);
  EXPECT_THROW(a -= b, ShapeError);
  EXPECT_THROW(a.hadamard_inplace(b), ShapeError);
  EXPECT_THROW(a.axpy(1.0f, b), ShapeError);
}

TEST(Matrix, Hadamard) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{2, 2}, {2, 2}});
  Matrix h = hadamard(a, b);
  EXPECT_EQ(h(1, 1), 8.0f);
}

TEST(Matrix, Axpy) {
  Matrix a = Matrix::from_rows({{1, 1}});
  Matrix b = Matrix::from_rows({{2, 4}});
  a.axpy(0.5f, b);
  EXPECT_EQ(a(0, 0), 2.0f);
  EXPECT_EQ(a(0, 1), 3.0f);
}

TEST(Matrix, AddRowBroadcast) {
  Matrix m(2, 3, 1.0f);
  Matrix bias = Matrix::row_vector({1, 2, 3});
  m.add_row_broadcast(bias);
  EXPECT_EQ(m(0, 0), 2.0f);
  EXPECT_EQ(m(1, 2), 4.0f);
  Matrix bad = Matrix::row_vector({1, 2});
  EXPECT_THROW(m.add_row_broadcast(bad), ShapeError);
}

TEST(Matrix, Reductions) {
  Matrix m = Matrix::from_rows({{1, -2}, {3, 4}});
  EXPECT_FLOAT_EQ(m.sum(), 6.0f);
  EXPECT_FLOAT_EQ(m.min(), -2.0f);
  EXPECT_FLOAT_EQ(m.max(), 4.0f);
  EXPECT_FLOAT_EQ(m.squared_norm(), 1 + 4 + 9 + 16);
  Matrix cs = m.col_sums();
  EXPECT_EQ(cs.rows(), 1u);
  EXPECT_FLOAT_EQ(cs(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(cs(0, 1), 2.0f);
}

TEST(Matrix, Transposed) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0f);
}

TEST(Matrix, MatmulSmallKnown) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Matrix, MatmulIdentity) {
  Rng rng(1);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  Matrix c = matmul(a, Matrix::identity(4));
  EXPECT_LT(max_abs_diff(a, c), 1e-6f);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), ShapeError);
}

/// Property sweep: matmul_tn / matmul_nt agree with explicit transposition.
class MatmulVariants
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulVariants, TnMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(42 + m + 10 * k + 100 * n);
  Matrix a(k, m), b(k, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), matmul(a.transposed(), b)), 1e-4f);
}

TEST_P(MatmulVariants, NtMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(7 + m + 10 * k + 100 * n);
  Matrix a(m, k), b(n, k);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  EXPECT_LT(max_abs_diff(matmul_nt(a, b), matmul(a, b.transposed())), 1e-4f);
}

TEST_P(MatmulVariants, AccumulateAddsOntoExisting) {
  const auto [m, k, n] = GetParam();
  Rng rng(99 + m + k + n);
  Matrix a(m, k), b(k, n), c(m, n, 1.0f);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  Matrix expect = matmul(a, b) + Matrix(m, n, 1.0f);
  matmul_acc(a, b, c);
  EXPECT_LT(max_abs_diff(expect, c), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulVariants,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(13, 21, 17),
                                           std::make_tuple(32, 50, 200)));

TEST(Matrix, MatmulAssociativityProperty) {
  Rng rng(5);
  Matrix a(3, 4), b(4, 5), c(5, 2);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] = rng.uniform(-1, 1);
  EXPECT_LT(max_abs_diff(matmul(matmul(a, b), c), matmul(a, matmul(b, c))),
            1e-4f);
}

}  // namespace
}  // namespace evfl::tensor
