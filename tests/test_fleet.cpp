#include "fl/fleet.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "datagen/fleet.hpp"
#include "fl/server.hpp"
#include "forecast/model.hpp"
#include "obs/round_telemetry.hpp"
#include "tensor/rng.hpp"

namespace evfl {
namespace {

datagen::FleetConfig small_fleet_cfg(std::size_t clients) {
  datagen::FleetConfig cfg;
  cfg.clients = clients;
  cfg.hours = 60;
  cfg.seed = 99;
  return cfg;
}

forecast::ForecasterConfig tiny_model_cfg() {
  forecast::ForecasterConfig cfg;
  cfg.sequence_length = 12;
  cfg.lstm_units = 4;
  cfg.dense_units = 2;
  return cfg;
}

fl::FleetDriverConfig tiny_driver_cfg(std::size_t edges) {
  fl::FleetDriverConfig cfg;
  cfg.edges = edges;
  cfg.lookback = 12;
  cfg.client.epochs_per_round = 1;
  return cfg;
}

fl::ModelFactory tiny_factory() {
  return [](tensor::Rng& rng) {
    return forecast::make_forecaster(tiny_model_cfg(), rng);
  };
}

std::vector<float> root_weights() {
  tensor::Rng rng(7);
  return forecast::make_forecaster(tiny_model_cfg(), rng).get_weights();
}

TEST(MakeFleet, DeterministicAndPopulationSizeIndependent) {
  const std::vector<datagen::ClientSpec> a =
      datagen::make_fleet(small_fleet_cfg(16));
  const std::vector<datagen::ClientSpec> b =
      datagen::make_fleet(small_fleet_cfg(16));
  const std::vector<datagen::ClientSpec> prefix =
      datagen::make_fleet(small_fleet_cfg(8));
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].series_seed, b[i].series_seed);
    EXPECT_EQ(a[i].hours, b[i].hours);
    EXPECT_EQ(a[i].profile.zone_id, b[i].profile.zone_id);
  }
  // Client i's spec never depends on how many other clients exist.
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(a[i].series_seed, prefix[i].series_seed);
    EXPECT_EQ(a[i].hours, prefix[i].hours);
  }
}

TEST(MakeFleet, PopulationIsHeterogeneous) {
  const std::vector<datagen::ClientSpec> fleet =
      datagen::make_fleet(small_fleet_cfg(32));
  std::set<std::size_t> hours;
  std::set<int> archetypes;
  for (const datagen::ClientSpec& s : fleet) {
    EXPECT_GE(s.hours, 48u);
    hours.insert(s.hours);
    archetypes.insert(s.archetype);
  }
  EXPECT_GT(hours.size(), 4u);       // jittered series lengths
  EXPECT_GT(archetypes.size(), 1u);  // more than one zone archetype drawn
}

TEST(MakeFleet, MaterializeSeriesIsPure) {
  const std::vector<datagen::ClientSpec> fleet =
      datagen::make_fleet(small_fleet_cfg(4));
  const data::TimeSeries once = datagen::materialize_series(fleet[2]);
  const data::TimeSeries again = datagen::materialize_series(fleet[2]);
  EXPECT_EQ(once.values, again.values);
  EXPECT_EQ(once.values.size(), fleet[2].hours);
}

TEST(FleetDriver, TreeTopologyIsInvisibleUnderDense) {
  // The tentpole end-to-end: the same fleet trained behind 1 edge and
  // behind 4 edges yields bit-identical global weights (kDense everywhere,
  // no faults) — aggregation trees are exact, and sampling/training are
  // spec-deterministic, not topology-dependent.
  const std::vector<datagen::ClientSpec> fleet =
      datagen::make_fleet(small_fleet_cfg(8));

  std::vector<float> w1, w4;
  for (const std::size_t edges : {1u, 4u}) {
    fl::Server root(root_weights());
    fl::FleetDriver driver(root, fleet, tiny_factory(),
                           tiny_driver_cfg(edges));
    const fl::FederatedRunResult res = driver.run(2);
    ASSERT_EQ(res.rounds.size(), 2u);
    EXPECT_EQ(res.rounds[0].updates_received, 8u);
    (edges == 1 ? w1 : w4) = res.final_weights;
  }
  EXPECT_EQ(w1, w4);  // bit-identical, not approximately equal
}

TEST(FleetDriver, SamplingBoundsParticipationAndTimeouts) {
  // Satellite 2: unsampled clients are counted nowhere — not trained, not
  // timed out — and the round reports cohort vs population.
  const std::vector<datagen::ClientSpec> fleet =
      datagen::make_fleet(small_fleet_cfg(8));
  fl::FleetDriverConfig cfg = tiny_driver_cfg(2);
  cfg.sampling.mode = fl::SamplingMode::kFixedSize;
  cfg.sampling.count = 4;

  fl::Server root(root_weights());
  obs::RoundTelemetrySink telemetry;
  fl::FleetDriver driver(root, fleet, tiny_factory(), cfg, nullptr, nullptr,
                         &telemetry);
  const fl::FederatedRunResult res = driver.run(1);
  ASSERT_EQ(res.rounds.size(), 1u);
  const fl::RoundMetrics& rm = res.rounds[0];
  EXPECT_EQ(rm.population, 8u);
  EXPECT_EQ(rm.sampled_clients, 4u);
  EXPECT_EQ(rm.updates_received, 4u);
  EXPECT_EQ(rm.timed_out_clients, 0u);
  EXPECT_EQ(rm.dropped_messages, 0u);

  ASSERT_EQ(telemetry.size(), 1u);
  const obs::RoundTelemetry rt = telemetry.rounds()[0];
  EXPECT_EQ(rt.population, 8u);
  EXPECT_EQ(rt.sampled_clients, 4u);
  // Train-seconds are reported for the sampled cohort only — no
  // zero-padding to the population size.
  EXPECT_EQ(rt.client_train_seconds.size(), 4u);
}

TEST(FleetDriver, CrashedEdgeDropsItsShardNotTheRound) {
  // Satellite 3: fault injection through an aggregator tier.  Edge 1 of 2
  // crashes in round 0: its whole shard (leaves 4..7) is dropped, the root
  // sees one child and — with min_updates=2 — skips the round (quorum
  // false, weights unchanged).  Round 1 both edges return and the model
  // moves.  Partial aggregation at every tier; never an abort.
  const std::vector<datagen::ClientSpec> fleet =
      datagen::make_fleet(small_fleet_cfg(8));
  faults::FaultPlan plan;
  plan.crash(fl::FleetDriver::edge_node_id(1), /*from=*/0, /*to=*/0);
  const faults::FaultInjector injector(plan);

  fl::ValidatorConfig root_vcfg;
  root_vcfg.min_updates = 2;  // per-tier quorum at the root, counted in edges
  fl::Server root(root_weights(), {}, root_vcfg);
  fl::FleetDriver driver(root, fleet, tiny_factory(), tiny_driver_cfg(2),
                         nullptr, &injector);
  const fl::FederatedRunResult res = driver.run(2);
  ASSERT_EQ(res.rounds.size(), 2u);

  const fl::RoundMetrics& r0 = res.rounds[0];
  EXPECT_EQ(r0.dropped_messages, 4u);   // the dark shard's broadcasts
  EXPECT_EQ(r0.updates_received, 4u);   // surviving shard's leaves
  EXPECT_EQ(r0.timed_out_clients, 0u);  // nobody who was reached went silent
  EXPECT_EQ(r0.weight_delta, 0.0);      // root under quorum: model held

  const fl::RoundMetrics& r1 = res.rounds[1];
  EXPECT_EQ(r1.updates_received, 8u);
  EXPECT_EQ(r1.dropped_messages, 0u);
  EXPECT_GT(r1.weight_delta, 0.0);      // recovered: both shards aggregated
}

TEST(FleetDriver, CrashedLeafTimesOutAgainstItsEdge) {
  const std::vector<datagen::ClientSpec> fleet =
      datagen::make_fleet(small_fleet_cfg(8));
  faults::FaultPlan plan;
  plan.crash(fleet[3].id, /*from=*/0, /*to=*/0);
  const faults::FaultInjector injector(plan);

  fl::Server root(root_weights());
  fl::FleetDriver driver(root, fleet, tiny_factory(), tiny_driver_cfg(2),
                         nullptr, &injector);
  const fl::FederatedRunResult res = driver.run(1);
  const fl::RoundMetrics& rm = res.rounds[0];
  EXPECT_EQ(rm.updates_received, 7u);
  EXPECT_EQ(rm.timed_out_clients, 1u);
  EXPECT_EQ(rm.dropped_messages, 0u);
}

}  // namespace
}  // namespace evfl
