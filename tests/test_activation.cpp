#include "nn/activation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::nn {
namespace {

TEST(Activation, LinearIsIdentity) {
  EXPECT_EQ(apply_activation(Activation::kLinear, 3.7f), 3.7f);
  EXPECT_EQ(activation_grad_from_output(Activation::kLinear, -5.0f), 1.0f);
}

TEST(Activation, Relu) {
  EXPECT_EQ(apply_activation(Activation::kRelu, 2.0f), 2.0f);
  EXPECT_EQ(apply_activation(Activation::kRelu, -2.0f), 0.0f);
  EXPECT_EQ(apply_activation(Activation::kRelu, 0.0f), 0.0f);
  EXPECT_EQ(activation_grad_from_output(Activation::kRelu, 1.0f), 1.0f);
  EXPECT_EQ(activation_grad_from_output(Activation::kRelu, 0.0f), 0.0f);
}

TEST(Activation, TanhValuesAndGrad) {
  const float y = apply_activation(Activation::kTanh, 0.5f);
  EXPECT_NEAR(y, std::tanh(0.5f), 1e-6f);
  EXPECT_NEAR(activation_grad_from_output(Activation::kTanh, y), 1.0f - y * y,
              1e-6f);
}

TEST(Activation, SigmoidValues) {
  EXPECT_NEAR(apply_activation(Activation::kSigmoid, 0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(apply_activation(Activation::kSigmoid, 2.0f),
              1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
}

TEST(Activation, SigmoidStableAtExtremes) {
  // Must not produce NaN/Inf for large |x|.
  const float hi = apply_activation(Activation::kSigmoid, 500.0f);
  const float lo = apply_activation(Activation::kSigmoid, -500.0f);
  EXPECT_TRUE(std::isfinite(hi));
  EXPECT_TRUE(std::isfinite(lo));
  EXPECT_NEAR(hi, 1.0f, 1e-6f);
  EXPECT_NEAR(lo, 0.0f, 1e-6f);
}

TEST(Activation, SigmoidGradFromOutput) {
  const float y = apply_activation(Activation::kSigmoid, 1.3f);
  EXPECT_NEAR(activation_grad_from_output(Activation::kSigmoid, y),
              y * (1.0f - y), 1e-6f);
}

TEST(Activation, SigmoidSymmetry) {
  for (float x : {0.1f, 0.7f, 2.3f, 8.0f}) {
    EXPECT_NEAR(apply_activation(Activation::kSigmoid, x) +
                    apply_activation(Activation::kSigmoid, -x),
                1.0f, 1e-6f);
  }
}

TEST(Activation, MatrixApplyInPlace) {
  tensor::Matrix m = tensor::Matrix::from_rows({{-1, 0, 1}});
  apply_activation(Activation::kRelu, m);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(0, 1), 0.0f);
  EXPECT_EQ(m(0, 2), 1.0f);
}

TEST(Activation, ToString) {
  EXPECT_EQ(to_string(Activation::kRelu), "relu");
  EXPECT_EQ(to_string(Activation::kLinear), "linear");
  EXPECT_EQ(to_string(Activation::kTanh), "tanh");
  EXPECT_EQ(to_string(Activation::kSigmoid), "sigmoid");
}

}  // namespace
}  // namespace evfl::nn
