#include "fl/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "common/error.hpp"
#include "fl/serialize.hpp"
#include "fl/server.hpp"
#include "fl/validator.hpp"

namespace evfl::fl {
namespace {

std::vector<float> random_weights(std::size_t dim, std::uint32_t seed,
                                  float scale = 1.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-scale, scale);
  std::vector<float> w(dim);
  for (float& v : w) v = dist(rng);
  return w;
}

WeightUpdate make_update(std::vector<float> weights, std::uint32_t round = 3,
                         int client = 1) {
  WeightUpdate u;
  u.client_id = client;
  u.round = round;
  u.sample_count = 77;
  u.train_loss = 0.5f;
  u.weights = std::move(weights);
  return u;
}

CodecConfig codec_cfg(CodecKind kind, double frac = 0.1, int bits = 8) {
  CodecConfig cfg;
  cfg.kind = kind;
  cfg.topk_frac = frac;
  cfg.quant_bits = bits;
  return cfg;
}

// The sizes the round-trip property tests sweep: zero, one, just under /
// at / over the quant block, and a non-multiple-of-block tail.
const std::size_t kDims[] = {0, 1, 5, 255, 256, 257, 1000};

TEST(CodecNames, RoundTripAndRejection) {
  for (CodecKind k : {CodecKind::kDense, CodecKind::kDelta, CodecKind::kTopK,
                      CodecKind::kTopKQuant}) {
    EXPECT_EQ(parse_codec_kind(to_string(k)), k);
  }
  EXPECT_THROW(parse_codec_kind("zstd"), Error);
  EXPECT_THROW(parse_codec_kind(""), Error);
  // The broadcast-leg codec is not a CLI-selectable update codec.
  EXPECT_THROW(parse_codec_kind("quant_dense"), Error);
}

TEST(CodecConfigValidation, BadKnobsThrowAtConstruction) {
  EXPECT_THROW(UpdateEncoder(codec_cfg(CodecKind::kQuantDense)), Error);
  EXPECT_THROW(UpdateEncoder(codec_cfg(CodecKind::kTopKQuant, 0.1, 16)),
               Error);
  EXPECT_THROW(UpdateEncoder(codec_cfg(CodecKind::kTopK, 0.0)), Error);
  EXPECT_THROW(UpdateEncoder(codec_cfg(CodecKind::kTopK, 1.5)), Error);
}

TEST(CodecDense, ByteIdenticalToWireV1) {
  for (const std::size_t dim : kDims) {
    const WeightUpdate u = make_update(random_weights(dim, 11));
    const std::vector<float> ref = random_weights(dim, 12);
    UpdateEncoder enc(codec_cfg(CodecKind::kDense));
    std::vector<std::uint8_t> bytes;
    enc.encode(u, ref, bytes);
    EXPECT_EQ(bytes, serialize(u)) << "dim=" << dim;
  }
}

TEST(CodecDelta, RoundTripsExactDelta) {
  for (const std::size_t dim : kDims) {
    const std::vector<float> local = random_weights(dim, 21);
    const std::vector<float> ref = random_weights(dim, 22);
    UpdateEncoder enc(codec_cfg(CodecKind::kDelta));
    std::vector<std::uint8_t> bytes;
    enc.encode(make_update(local), ref, bytes);
    const WeightUpdate back = deserialize_update(bytes);
    EXPECT_TRUE(back.is_delta);
    ASSERT_EQ(back.weights.size(), dim);
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(back.weights[i], local[i] - ref[i]) << "i=" << i;
    }
  }
}

TEST(CodecTopK, FullFractionIsLosslessDelta) {
  const std::size_t dim = 300;
  const std::vector<float> local = random_weights(dim, 31);
  const std::vector<float> ref = random_weights(dim, 32);
  UpdateEncoder enc(codec_cfg(CodecKind::kTopK, 1.0));
  std::vector<std::uint8_t> bytes;
  enc.encode(make_update(local), ref, bytes);
  const WeightUpdate back = deserialize_update(bytes);
  EXPECT_TRUE(back.is_delta);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_EQ(back.weights[i], local[i] - ref[i]);
  }
}

TEST(CodecTopK, KeepsLargestAndFeedsResidual) {
  for (const std::size_t dim : kDims) {
    if (dim == 0) continue;  // no coordinates to select
    const std::vector<float> local = random_weights(dim, 41);
    const std::vector<float> ref = random_weights(dim, 42);
    UpdateEncoder enc(codec_cfg(CodecKind::kTopK, 0.1));
    std::vector<std::uint8_t> bytes;
    enc.encode(make_update(local), ref, bytes);
    const WeightUpdate back = deserialize_update(bytes);
    ASSERT_EQ(back.weights.size(), dim);

    const std::size_t k = std::min<std::size_t>(
        dim, static_cast<std::size_t>(std::ceil(0.1 * dim)));
    std::size_t nonzero = 0;
    float smallest_sent = std::numeric_limits<float>::infinity();
    float largest_kept = 0.0f;
    for (std::size_t i = 0; i < dim; ++i) {
      const float full = local[i] - ref[i];
      if (back.weights[i] != 0.0f) {
        ++nonzero;
        EXPECT_EQ(back.weights[i], full);
        EXPECT_EQ(enc.residual()[i], 0.0f);  // sent: nothing left behind
        smallest_sent = std::min(smallest_sent, std::fabs(full));
      } else {
        EXPECT_EQ(enc.residual()[i], full);  // unsent: full delta retained
        largest_kept = std::max(largest_kept, std::fabs(full));
      }
    }
    EXPECT_LE(nonzero, k);
    // Magnitude selection: every shipped coordinate dominates every held one.
    if (nonzero > 0 && nonzero < dim) {
      EXPECT_GE(smallest_sent, largest_kept);
    }
    // Sent + residual reconstructs the full delta.
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(back.weights[i] + enc.residual()[i], local[i] - ref[i]);
    }
  }
}

TEST(CodecTopKQuant, QuantizationErrorIsBlockBounded) {
  for (const int bits : {8, 4}) {
    for (const std::size_t dim : kDims) {
      if (dim == 0) continue;
      const std::vector<float> local = random_weights(dim, 51);
      const std::vector<float> ref = random_weights(dim, 52);
      UpdateEncoder enc(codec_cfg(CodecKind::kTopKQuant, 0.2, bits));
      std::vector<std::uint8_t> bytes;
      enc.encode(make_update(local), ref, bytes);
      const WeightUpdate back = deserialize_update(bytes);
      ASSERT_EQ(back.weights.size(), dim) << "bits=" << bits;

      // Per-coordinate: |decoded - true| <= scale (loose bound: half a
      // quantization step is the tight one, but the block scale is not
      // reconstructed here — bound by the largest representable step).
      const int qmax = (1 << (bits - 1)) - 1;
      float max_sent_abs = 0.0f;
      for (std::size_t i = 0; i < dim; ++i) {
        if (back.weights[i] != 0.0f) {
          max_sent_abs =
              std::max(max_sent_abs, std::fabs(local[i] - ref[i]));
        }
      }
      const float step = max_sent_abs / static_cast<float>(qmax);
      for (std::size_t i = 0; i < dim; ++i) {
        if (back.weights[i] == 0.0f) continue;
        EXPECT_NEAR(back.weights[i], local[i] - ref[i], step)
            << "bits=" << bits << " dim=" << dim << " i=" << i;
        // Residual absorbs the quantization error (up to fp32 rounding of
        // the dequant + residual sum).
        EXPECT_NEAR(back.weights[i] + enc.residual()[i], local[i] - ref[i],
                    1e-5f);
      }
    }
  }
}

TEST(CodecTopKQuant, CompressesWellBelowDense) {
  const std::size_t dim = 10'000;
  const WeightUpdate u = make_update(random_weights(dim, 61));
  const std::vector<float> ref = random_weights(dim, 62);
  UpdateEncoder enc(codec_cfg(CodecKind::kTopKQuant, 0.05, 8));
  std::vector<std::uint8_t> bytes;
  enc.encode(u, ref, bytes);
  const std::size_t dense = serialize(u).size();
  // 5% kept, 5 bytes/coordinate (u32 index + int8 value) + scales: ~>13x.
  EXPECT_LT(bytes.size() * 8, dense);
}

TEST(CodecEncoder, DeterministicAcrossIdenticalRuns) {
  const std::size_t dim = 777;
  const std::vector<float> local = random_weights(dim, 71);
  const std::vector<float> ref = random_weights(dim, 72);
  const auto run = [&] {
    UpdateEncoder enc(codec_cfg(CodecKind::kTopKQuant, 0.1));
    std::vector<std::uint8_t> bytes;
    enc.encode(make_update(local), ref, bytes);
    return bytes;
  };
  EXPECT_EQ(run(), run());
}

TEST(CodecEncoder, NonFiniteDeltaShipsDenseForValidator) {
  // A Byzantine NaN must reach the server's validator, not be "sparsified"
  // by a magnitude sort that is meaningless over NaNs.
  std::vector<float> local = random_weights(64, 81);
  local[13] = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> ref = random_weights(64, 82);
  UpdateEncoder enc(codec_cfg(CodecKind::kTopK, 0.05));
  std::vector<std::uint8_t> bytes;
  enc.encode(make_update(local), ref, bytes);
  const WeightUpdate back = deserialize_update(bytes);
  EXPECT_TRUE(back.is_delta);
  ASSERT_EQ(back.weights.size(), 64u);
  EXPECT_TRUE(std::isnan(back.weights[13]));

  RoundAudit audit;
  UpdateValidator validator;
  const auto accepted = validator.filter({back}, 3, ref, audit);
  EXPECT_TRUE(accepted.empty());
  EXPECT_EQ(audit.rejected_nonfinite, 1u);
}

TEST(CodecGlobal, DenseBroadcastIsWireV1) {
  const std::vector<float> w = random_weights(300, 91);
  std::vector<std::uint8_t> bytes;
  encode_global(5, w, codec_cfg(CodecKind::kTopK), bytes);  // lossless leg
  EXPECT_EQ(bytes, serialize(GlobalModel{5, w}));
}

TEST(CodecGlobal, QuantizedBroadcastDecodesWithinBlockStep) {
  const std::vector<float> w = random_weights(515, 92, 3.0f);
  std::vector<std::uint8_t> bytes;
  encode_global(5, w, codec_cfg(CodecKind::kTopKQuant), bytes);
  const GlobalModel back = deserialize_global(bytes);
  EXPECT_EQ(back.round, 5u);
  ASSERT_EQ(back.weights.size(), w.size());
  for (std::size_t b = 0; b * kQuantBlock < w.size(); ++b) {
    const std::size_t lo = b * kQuantBlock;
    const std::size_t hi = std::min(lo + kQuantBlock, w.size());
    float maxabs = 0.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      maxabs = std::max(maxabs, std::fabs(w[i]));
    }
    const float step = maxabs / 127.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_NEAR(back.weights[i], w[i], 0.5f * step + 1e-6f) << "i=" << i;
    }
  }
  // And it is smaller than the dense broadcast.
  EXPECT_LT(bytes.size() * 3, serialize(GlobalModel{5, w}).size());
}

TEST(CodecWireV2, TruncationAlwaysThrows) {
  UpdateEncoder enc(codec_cfg(CodecKind::kTopKQuant, 0.2));
  std::vector<std::uint8_t> bytes;
  enc.encode(make_update(random_weights(300, 101)), random_weights(300, 102),
             bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> partial(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(deserialize_update(partial), FormatError) << "cut=" << cut;
  }
}

TEST(CodecWireV2, SingleByteMutationsNeverCrash) {
  UpdateEncoder enc(codec_cfg(CodecKind::kTopKQuant, 0.2));
  std::vector<std::uint8_t> bytes;
  enc.encode(make_update(random_weights(300, 103)), random_weights(300, 104),
             bytes);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      (void)deserialize_update(mutated);
    } catch (const FormatError&) {
      // rejected — fine; crashing or hanging is the only failure mode
    }
  }
}

// Byte offsets in the fixed v2 header prefix (see serialize.hpp).
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffKind = 6;
constexpr std::size_t kOffCodec = 28;
constexpr std::size_t kOffQuantBits = 29;
constexpr std::size_t kOffAggLeaves = 30;
constexpr std::size_t kOffNnz = 40;

std::vector<std::uint8_t> v2_delta_message() {
  UpdateEncoder enc(codec_cfg(CodecKind::kDelta));
  std::vector<std::uint8_t> bytes;
  enc.encode(make_update(random_weights(8, 111)), random_weights(8, 112),
             bytes);
  return bytes;
}

TEST(CodecWireV2, MalformedHeaderFieldsRejected) {
  {
    // agg_leaves on an exact aggregate is a forgery: the authoritative
    // contributor count rides in the kAggSum payload.
    FedAccumulator acc;
    acc.reset(4);
    acc.add_update(random_weights(4, 113), 2);
    std::vector<std::uint8_t> b;
    serialize_aggregate_into(3, -2, 2, 0.5f, acc.contributors(),
                             acc.total_weight(), acc.terms(), b);
    b[kOffAggLeaves] = 1;
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
  {
    auto b = v2_delta_message();
    b[kOffCodec] = 9;  // unknown codec id
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
  {
    auto b = v2_delta_message();
    b[kOffQuantBits] = 8;  // quant bits on an unquantized codec
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
  {
    auto b = v2_delta_message();
    b[kOffNnz] = 9;  // nnz > dim
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
  {
    auto b = v2_delta_message();
    b[b.size() - 1] ^= 0xFF;  // payload corruption must trip the CRC
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
}

TEST(CodecWireV2, AggLeavesRoundTripsAcrossUpdateCodecs) {
  // A forwarded aggregate *mean* (robust shard reduction, or exact mean
  // through a lossy upstream) re-announces its leaf coverage so a robust
  // parent folds it instead of re-buffering it as one leaf vote.
  for (CodecKind k : {CodecKind::kDense, CodecKind::kDelta, CodecKind::kTopK,
                      CodecKind::kTopKQuant}) {
    WeightUpdate u = make_update(random_weights(16, 211), 3, -7);
    u.agg_contributors = 12;
    UpdateEncoder enc(codec_cfg(k, 0.5));
    std::vector<std::uint8_t> bytes;
    enc.encode(u, random_weights(16, 212), bytes);
    EXPECT_EQ(deserialize_update(bytes).agg_contributors, 12u)
        << to_string(k);
  }
  // The u16 field saturates; the exact count only matters on the kAggSum
  // payload, which carries it at full width.
  WeightUpdate u = make_update(random_weights(4, 213), 3, -7);
  u.agg_contributors = 1'000'000;
  UpdateEncoder enc(codec_cfg(CodecKind::kDelta));
  std::vector<std::uint8_t> bytes;
  enc.encode(u, random_weights(4, 214), bytes);
  EXPECT_EQ(deserialize_update(bytes).agg_contributors, 0xFFFFu);
}

TEST(CodecWireV2, VersionConfusionRejected) {
  {
    // v1 bytes relabeled v2: the v1 count field reads as codec/quant/dim
    // garbage that cannot validate.
    auto b = serialize(make_update(random_weights(8, 121)));
    b[kOffVersion] = 2;
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
  {
    // v2 bytes relabeled v1: the codec/dim fields read as an enormous count.
    auto b = v2_delta_message();
    b[kOffVersion] = 1;
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
  {
    auto b = v2_delta_message();
    b[kOffVersion] = 3;  // unknown version
    EXPECT_THROW(deserialize_update(b), FormatError);
  }
}

TEST(CodecWireV2, DeltaCodedGlobalRejected) {
  // Flip the kind of a delta update to GlobalModel: the CRC only covers the
  // payload, so the decoder itself must refuse a delta-coded broadcast (a
  // client that missed rounds could never reconstruct it).
  auto b = v2_delta_message();
  b[kOffKind] = 2;
  EXPECT_THROW(deserialize_global(b), FormatError);
}

TEST(CodecWireV2, QuantDenseUpdateRejected) {
  // Conversely, the broadcast-leg codec arriving as an update is a forgery.
  std::vector<std::uint8_t> bytes;
  encode_global(5, random_weights(64, 131), codec_cfg(CodecKind::kTopKQuant),
                bytes);
  bytes[kOffKind] = 1;
  EXPECT_THROW(deserialize_update(bytes), FormatError);
}

TEST(CodecValidator, DeltaNormClipScalesTheDelta) {
  ValidatorConfig vcfg;
  vcfg.max_update_norm = 1.0;
  UpdateValidator validator(vcfg);
  const std::vector<float> global(16, 0.5f);

  WeightUpdate u = make_update(std::vector<float>(16, 10.0f), 3);
  u.is_delta = true;  // movement of norm 40 — must clip to 1
  RoundAudit audit;
  auto accepted = validator.filter({u}, 3, global, audit);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(audit.clipped, 1u);
  double sq = 0.0;
  for (const float w : accepted[0].weights) sq += double(w) * w;
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-5);
  EXPECT_TRUE(accepted[0].is_delta);  // clipping must not relabel the basis
}

TEST(CodecServer, DeltaUpdatesMaterializeAgainstBroadcast) {
  const std::vector<float> init(32, 1.0f);
  Server server(init, FedAvgConfig{}, ValidatorConfig{},
                codec_cfg(CodecKind::kDelta));
  const std::vector<std::uint8_t>& wire = server.broadcast_wire();
  const GlobalModel g = deserialize_global(wire);
  EXPECT_EQ(g.weights, init);  // delta codec keeps the broadcast lossless

  // One client moves every weight by +0.25.
  std::vector<float> local(32, 1.25f);
  UpdateEncoder enc(codec_cfg(CodecKind::kDelta));
  std::vector<std::uint8_t> bytes;
  WeightUpdate u = make_update(local, 0);
  enc.encode(u, g.weights, bytes);
  server.finish_round({deserialize_update(bytes)});
  for (const float w : server.weights()) EXPECT_NEAR(w, 1.25f, 1e-6f);
}

TEST(CodecServer, LossyBroadcastReferenceCancelsDownlinkError) {
  // With a quantized downlink the server must re-materialize against the
  // broadcast the clients decoded.  A client that sends "no change" (local
  // == decoded broadcast) must leave the global model at the *decoded*
  // weights exactly — no drift from (weights - decoded) leaking in.
  const std::vector<float> init = random_weights(300, 141, 2.0f);
  Server server(init, FedAvgConfig{}, ValidatorConfig{},
                codec_cfg(CodecKind::kTopKQuant, 1.0));
  const GlobalModel g = deserialize_global(server.broadcast_wire());

  UpdateEncoder enc(codec_cfg(CodecKind::kTopKQuant, 1.0));
  std::vector<std::uint8_t> bytes;
  enc.encode(make_update(g.weights, 0), g.weights, bytes);
  server.finish_round({deserialize_update(bytes)});
  EXPECT_EQ(server.weights(), g.weights);
}

TEST(CodecConvergence, ErrorFeedbackTracksDenseAggregation) {
  // Three synthetic clients gradient-step toward distinct targets through
  // a federated loop.  The sparsified+quantized run must converge to the
  // same fixed point (the target mean) as the dense run — the error
  // feedback re-sends what sparsification dropped.  The step size is kept
  // below the sparsification delay's stability bound (a coordinate waits
  // ~1/topk_frac rounds between sends, so gain * delay must stay < 1).
  const std::size_t dim = 400;
  const std::size_t kRounds = 400;
  const float kStep = 0.05f;
  const std::vector<std::vector<float>> targets = {
      random_weights(dim, 151), random_weights(dim, 152),
      random_weights(dim, 153)};

  const auto run = [&](CodecConfig cfg) {
    Server server(std::vector<float>(dim, 0.0f), FedAvgConfig{},
                  ValidatorConfig{}, cfg);
    std::vector<UpdateEncoder> encs(targets.size(), UpdateEncoder(cfg));
    std::vector<std::uint8_t> bytes;
    for (std::size_t r = 0; r < kRounds; ++r) {
      const GlobalModel g = deserialize_global(server.broadcast_wire());
      std::vector<WeightUpdate> updates;
      for (std::size_t c = 0; c < targets.size(); ++c) {
        std::vector<float> local(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          local[i] = g.weights[i] + kStep * (targets[c][i] - g.weights[i]);
        }
        WeightUpdate u = make_update(std::move(local), g.round,
                                     static_cast<int>(c));
        encs[c].encode(u, g.weights, bytes);
        updates.push_back(deserialize_update(bytes));
      }
      server.finish_round(std::move(updates));
    }
    return server.weights();
  };

  const std::vector<float> dense = run(codec_cfg(CodecKind::kDense));
  const std::vector<float> sparse =
      run(codec_cfg(CodecKind::kTopKQuant, 0.25, 8));

  double dense_err = 0.0, sparse_err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double mean = (double(targets[0][i]) + targets[1][i] +
                         targets[2][i]) / 3.0;
    dense_err += (dense[i] - mean) * (dense[i] - mean);
    sparse_err += (sparse[i] - mean) * (sparse[i] - mean);
    norm += mean * mean;
  }
  // Dense converges essentially exactly.  The compressed run carries an
  // error floor from the int8 grid (~1/127 per block) amplified by the
  // send-delay staleness; empirically it settles at ~4.4% relative here.
  // Without error feedback the unsent 75% of coordinates would never
  // converge at all, so landing within 6% demonstrates the residual works.
  EXPECT_LT(std::sqrt(dense_err / norm), 1e-3);
  EXPECT_LT(std::sqrt(sparse_err / norm), 0.06);
}

}  // namespace
}  // namespace evfl::fl
