#include <gtest/gtest.h>

#include <cmath>

#include "forecast/centralized.hpp"
#include "forecast/model.hpp"

namespace evfl::forecast {
namespace {

using tensor::Rng;

TEST(Forecaster, PaperArchitecture) {
  ForecasterConfig cfg;  // defaults = paper hyperparameters
  Rng rng(1);
  nn::Sequential model = make_forecaster(cfg, rng);
  EXPECT_EQ(model.layer_count(), 3u);
  EXPECT_EQ(model.layer(0).name(), "Lstm(50, last)");
  EXPECT_EQ(model.layer(1).name(), "Dense(10, relu)");
  EXPECT_EQ(model.layer(2).name(), "Dense(1, linear)");
  EXPECT_EQ(model.weight_count(), forecaster_param_count(cfg));
}

TEST(Forecaster, ParamCountFormula) {
  ForecasterConfig cfg;
  // LSTM(1->50): 4*50*(1+50) + 4*50 = 10400; Dense 50->10: 510; 10->1: 11.
  EXPECT_EQ(forecaster_param_count(cfg), 10400u + 510u + 11u);
}

TEST(Forecaster, EagerBuildAllowsImmediateWeightExchange) {
  ForecasterConfig cfg;
  cfg.lstm_units = 8;
  cfg.dense_units = 4;
  Rng rng(2);
  nn::Sequential a = make_forecaster(cfg, rng);
  Rng rng2(3);
  nn::Sequential b = make_forecaster(cfg, rng2);
  // No forward pass has happened; weights must still be exchangeable.
  b.set_weights(a.get_weights());
  EXPECT_EQ(a.get_weights(), b.get_weights());
}

TEST(Forecaster, LearnsSineOneStepAhead) {
  ForecasterConfig cfg;
  cfg.lstm_units = 12;
  cfg.dense_units = 6;
  cfg.sequence_length = 12;

  std::vector<float> wave;
  for (int i = 0; i < 600; ++i) {
    wave.push_back(0.5f + 0.4f * std::sin(i * 2.0f * 3.14159f / 12.0f));
  }
  const data::SequenceDataset ds = data::make_forecast_sequences(wave, 12);

  Rng rng(4);
  nn::Sequential model = make_forecaster(cfg, rng);
  nn::MseLoss loss;
  nn::Adam adam(1e-2f);
  nn::Trainer trainer(model, loss, adam, rng);
  nn::FitConfig fit;
  fit.epochs = 20;
  fit.batch_size = 32;
  const nn::FitHistory hist = trainer.fit(ds.x, ds.y, fit);
  // A periodic signal with period == lookback must be learnable.
  EXPECT_LT(hist.train_loss.back(), 0.002f);
}

TEST(PoolDatasets, ConcatenatesInOrder) {
  data::SequenceDataset a, b;
  a.lookback = b.lookback = 2;
  a.x = tensor::Tensor3(2, 2, 1);
  a.y = tensor::Tensor3(2, 1, 1);
  a.x(0, 0, 0) = 1.0f;
  a.y(1, 0, 0) = 7.0f;
  b.x = tensor::Tensor3(3, 2, 1);
  b.y = tensor::Tensor3(3, 1, 1);
  b.x(2, 1, 0) = 9.0f;

  const data::SequenceDataset pooled = pool_datasets({a, b});
  EXPECT_EQ(pooled.x.batch(), 5u);
  EXPECT_EQ(pooled.x(0, 0, 0), 1.0f);
  EXPECT_EQ(pooled.y(1, 0, 0), 7.0f);
  EXPECT_EQ(pooled.x(4, 1, 0), 9.0f);
}

TEST(PoolDatasets, RejectsIncompatibleShapes) {
  data::SequenceDataset a, b;
  a.x = tensor::Tensor3(2, 2, 1);
  a.y = tensor::Tensor3(2, 1, 1);
  b.x = tensor::Tensor3(2, 3, 1);  // different lookback
  b.y = tensor::Tensor3(2, 1, 1);
  EXPECT_THROW(pool_datasets({a, b}), Error);
  EXPECT_THROW(pool_datasets({}), Error);
}

TEST(Centralized, TrainsOnPooledClients) {
  // Two clients with the same underlying sine process.
  std::vector<float> wave;
  for (int i = 0; i < 300; ++i) {
    wave.push_back(0.5f + 0.3f * std::sin(i * 0.5f));
  }
  const data::SequenceDataset ds = data::make_forecast_sequences(wave, 8);

  CentralizedConfig cfg;
  cfg.model.lstm_units = 8;
  cfg.model.dense_units = 4;
  cfg.model.sequence_length = 8;
  cfg.epochs = 8;

  Rng rng(5);
  const CentralizedResult result = train_centralized({ds, ds}, cfg, rng);
  EXPECT_EQ(result.history.epochs_run, 8u);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_LT(result.history.train_loss.back(),
            result.history.train_loss.front());
}

}  // namespace
}  // namespace evfl::forecast
