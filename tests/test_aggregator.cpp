#include "fl/aggregator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "fl/serialize.hpp"
#include "fl/server.hpp"

namespace evfl::fl {
namespace {

WeightUpdate make_update(int id, std::uint64_t samples,
                         std::vector<float> weights, std::uint32_t round = 0) {
  WeightUpdate u;
  u.client_id = id;
  u.round = round;
  u.sample_count = samples;
  u.train_loss = 0.25f;
  u.weights = std::move(weights);
  return u;
}

/// A deterministic heterogeneous leaf population: varied weights and varied
/// sample counts (the case two-level weighting must get right).
std::vector<WeightUpdate> make_leaves(std::size_t n, std::size_t dim) {
  std::vector<WeightUpdate> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> w(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      w[d] = 0.0625f * static_cast<float>((i * 7 + d * 13) % 29) -
             0.5f * static_cast<float>(d);
    }
    leaves.push_back(make_update(static_cast<int>(i),
                                 11 + (i * 53) % 400, std::move(w)));
  }
  return leaves;
}

TEST(Aggregator, StreamingOfferMatchesBatchFinishRound) {
  const std::vector<float> init = {0.5f, -1.0f, 2.0f};
  const std::vector<WeightUpdate> updates = make_leaves(5, 3);

  Server batch(init);
  Aggregator streaming(init);
  batch.finish_round(updates);
  for (const WeightUpdate& u : updates) streaming.offer(u);
  streaming.close_round();

  EXPECT_EQ(streaming.weights(), batch.weights());
  EXPECT_EQ(streaming.round(), batch.round());
  EXPECT_EQ(streaming.last_audit().accepted, batch.last_audit().accepted);
}

TEST(Aggregator, TreeEqualsFlatBitIdenticalUnderDense) {
  // The tentpole acceptance: 8 edges x 128 heterogeneous leaves, forwarded
  // through the real kAggSum wire, produce the SAME float weights as one
  // flat server seeing all 1024 leaves.  EXPECT_EQ — bit-identical.
  const std::size_t kEdges = 8, kLeavesPerEdge = 128, kDim = 6;
  const std::vector<WeightUpdate> leaves =
      make_leaves(kEdges * kLeavesPerEdge, kDim);
  std::vector<float> init(kDim, 0.125f);

  Server flat(init);
  flat.finish_round(leaves);

  Server root(init);
  std::vector<EdgeAggregator> edges;
  for (std::size_t e = 0; e < kEdges; ++e) {
    edges.emplace_back(-2 - static_cast<std::int32_t>(e), init);
  }
  for (std::size_t e = 0; e < kEdges; ++e) {
    edges[e].begin_round(root.broadcast_wire());
    for (std::size_t k = 0; k < kLeavesPerEdge; ++k) {
      edges[e].offer(leaves[e * kLeavesPerEdge + k]);
    }
    const std::vector<std::uint8_t>* fw = edges[e].forward_wire();
    ASSERT_NE(fw, nullptr);
    WeightUpdate up;
    deserialize_update_into(*fw, up);
    EXPECT_FALSE(up.agg_terms.empty());  // exact path taken
    root.offer(std::move(up));
  }
  root.close_round();

  EXPECT_EQ(root.weights(), flat.weights());
  EXPECT_EQ(root.round(), flat.round());
}

TEST(Aggregator, TreeEqualsFlatUnweighted) {
  // Unweighted mode folds forwarded aggregates by contributor count; the
  // grouping must still vanish exactly.
  const std::vector<WeightUpdate> leaves = make_leaves(12, 2);
  std::vector<float> init = {0.0f, 0.0f};
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;

  Server flat(init, cfg);
  flat.finish_round(leaves);

  Server root(init, cfg);
  std::vector<EdgeAggregator> edges;
  for (int e = 0; e < 3; ++e) edges.emplace_back(-2 - e, init, cfg);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (i % 4 == 0) edges[i / 4].begin_round(root.broadcast_wire());
    edges[i / 4].offer(leaves[i]);
  }
  for (EdgeAggregator& edge : edges) {
    const std::vector<std::uint8_t>* fw = edge.forward_wire();
    ASSERT_NE(fw, nullptr);
    WeightUpdate up;
    deserialize_update_into(*fw, up);
    root.offer(std::move(up));
  }
  root.close_round();
  EXPECT_EQ(root.weights(), flat.weights());
}

TEST(Aggregator, ForwardedUpdateCarriesCumulativeSamplesAndLoss) {
  std::vector<float> init = {1.0f};
  EdgeAggregator edge(-5, init);
  Server root(init);
  edge.begin_round(root.broadcast_wire());
  edge.offer(make_update(0, 300, {2.0f}));
  edge.offer(make_update(1, 100, {6.0f}));
  const std::vector<std::uint8_t>* fw = edge.forward_wire();
  ASSERT_NE(fw, nullptr);
  WeightUpdate up;
  deserialize_update_into(*fw, up);
  EXPECT_EQ(up.client_id, -5);
  EXPECT_EQ(up.sample_count, 400u);  // cumulative, not per-shard-mean
  EXPECT_EQ(up.agg_contributors, 2u);
  // The mean view decoded alongside the exact terms: (300*2+100*6)/400 = 3.
  ASSERT_EQ(up.weights.size(), 1u);
  EXPECT_NEAR(up.weights[0], 3.0f, 1e-6f);
  EXPECT_FLOAT_EQ(up.train_loss, 0.25f);
}

TEST(Aggregator, EdgeUnderQuorumForwardsNothing) {
  // Per-tier quorum (satellite 3): a shard below its own quorum drops out
  // of the round as a partial aggregation; the parent is never aborted.
  std::vector<float> init = {1.0f, 2.0f};
  ValidatorConfig vcfg;
  vcfg.min_updates = 2;
  EdgeAggregator edge(-2, init, {}, vcfg);
  Server root(init);
  edge.begin_round(root.broadcast_wire());
  edge.offer(make_update(0, 10, {1.5f, 2.5f}));
  EXPECT_EQ(edge.forward_wire(), nullptr);
  // The shard round still closed and audited.
  EXPECT_FALSE(edge.last_audit().quorum_met);
  EXPECT_EQ(edge.last_audit().accepted, 1u);

  // Root aggregates whatever arrived from other children; with zero
  // children this round it simply doesn't move.
  root.close_round();
  EXPECT_EQ(root.weights(), init);
}

TEST(Aggregator, EmptyShardRecoversNextRound) {
  std::vector<float> init = {1.0f};
  EdgeAggregator edge(-2, init);
  Server root(init);
  edge.begin_round(root.broadcast_wire());
  EXPECT_EQ(edge.forward_wire(), nullptr);  // nothing arrived
  root.close_round();  // round 0 closes empty

  edge.begin_round(root.broadcast_wire());  // round 1: shard comes back
  edge.offer(make_update(0, 10, {3.0f}, /*round=*/1));
  const std::vector<std::uint8_t>* fw = edge.forward_wire();
  ASSERT_NE(fw, nullptr);
  WeightUpdate up;
  deserialize_update_into(*fw, up);
  root.offer(std::move(up));
  root.close_round();
  EXPECT_FLOAT_EQ(root.weights()[0], 3.0f);
  EXPECT_EQ(root.round(), 2u);
}

TEST(Aggregator, ClippedForwardedAggregateStillFolds) {
  // Root clips the forwarded aggregate: exactness is forfeited (agg terms
  // dropped) but the clipped mean still aggregates — degraded, not aborted.
  std::vector<float> init = {0.0f};
  ValidatorConfig root_vcfg;
  root_vcfg.max_update_norm = 0.5;
  Server root(init, {}, root_vcfg);
  EdgeAggregator edge(-2, init);
  edge.begin_round(root.broadcast_wire());
  edge.offer(make_update(0, 10, {100.0f}));
  const std::vector<std::uint8_t>* fw = edge.forward_wire();
  ASSERT_NE(fw, nullptr);
  WeightUpdate up;
  deserialize_update_into(*fw, up);
  root.offer(std::move(up));
  root.close_round();
  EXPECT_EQ(root.last_audit().clipped, 1u);
  EXPECT_NEAR(root.weights()[0], 0.5f, 1e-5f);
}

TEST(Aggregator, RobustShardForwardMatchesFlatRobustReduction) {
  // Tree-vs-flat for the robust rules, at shard level: an edge running a
  // robust rule forwards exactly the reduction a flat robust aggregator
  // computes over the same leaves — bit-identical through the dense wire.
  std::vector<WeightUpdate> leaves = make_leaves(9, 4);
  leaves[3].weights.assign(4, 500.0f);  // a Byzantine minority
  leaves[7].weights.assign(4, -500.0f);
  const std::vector<float> init(4, 0.25f);

  for (const AggregationRule rule :
       {AggregationRule::kTrimmedMean, AggregationRule::kCoordinateMedian,
        AggregationRule::kNormBoundedMean, AggregationRule::kMultiKrum}) {
    FedAvgConfig cfg;
    cfg.rule = rule;
    cfg.krum_assumed_byzantine = 2;

    Aggregator flat(init, cfg);
    for (const WeightUpdate& u : leaves) flat.offer(u);
    flat.close_round();

    Server root(init, cfg);
    EdgeAggregator edge(-2, init, cfg);
    edge.begin_round(root.broadcast_wire());
    for (const WeightUpdate& u : leaves) edge.offer(u);
    const std::vector<std::uint8_t>* fw = edge.forward_wire();
    ASSERT_NE(fw, nullptr) << to_string(rule);
    WeightUpdate up;
    deserialize_update_into(*fw, up);
    // A robust reduction has no exact linear sum to ship: it travels as a
    // regular dense update tagged with its leaf count.
    EXPECT_TRUE(up.agg_terms.empty()) << to_string(rule);
    EXPECT_EQ(up.agg_contributors, 9u) << to_string(rule);
    EXPECT_EQ(up.weights, flat.weights()) << to_string(rule);
  }
}

TEST(Aggregator, RobustParentFoldsShardAggregatesInsteadOfRebuffering) {
  // "Robust-per-shard, fold upstream": each shard's robust reduction has
  // already defused its local minority, so the parent folds the shard means
  // by weight instead of subjecting 2 forwarded values to a 2-row order
  // statistic.  The composed result must sit in the honest hull even though
  // every shard contained attackers.
  const std::vector<float> init = {0.0f};
  FedAvgConfig cfg;
  cfg.rule = AggregationRule::kTrimmedMean;
  cfg.trim_fraction = 0.34;

  Server root(init, cfg);
  std::vector<EdgeAggregator> edges;
  for (int e = 0; e < 2; ++e) edges.emplace_back(-2 - e, init, cfg);
  for (int e = 0; e < 2; ++e) {
    edges[e].begin_round(root.broadcast_wire());
    const float honest = e == 0 ? 1.0f : 3.0f;
    edges[e].offer(make_update(e * 3 + 0, 10, {honest}));
    edges[e].offer(make_update(e * 3 + 1, 10, {honest}));
    edges[e].offer(make_update(e * 3 + 2, 10, {1000.0f}));  // 1/3 Byzantine
    const std::vector<std::uint8_t>* fw = edges[e].forward_wire();
    ASSERT_NE(fw, nullptr);
    WeightUpdate up;
    deserialize_update_into(*fw, up);
    EXPECT_GT(up.agg_contributors, 0u);
    root.offer(std::move(up));
  }
  root.close_round();
  // Both shard reductions trimmed their outlier; the fold is the equal-
  // weight mean of the honest shard values 1 and 3.
  EXPECT_NEAR(root.weights()[0], 2.0f, 1e-5f);
}

TEST(Aggregator, AdoptRebasesRoundAndRejectsMismatchedDim) {
  Aggregator agg(std::vector<float>{1.0f, 1.0f});
  agg.adopt(7, {2.0f, 3.0f});
  EXPECT_EQ(agg.round(), 7u);
  EXPECT_EQ(agg.weights(), (std::vector<float>{2.0f, 3.0f}));
  EXPECT_THROW(agg.adopt(8, {1.0f}), Error);

  // Updates for the pre-adopt round are now stale.
  agg.offer(make_update(0, 1, {1.0f, 1.0f}, /*round=*/0));
  agg.close_round();
  EXPECT_EQ(agg.last_audit().rejected_stale, 1u);
}

TEST(AggSumWire, RoundTripAndCorruptionDetection) {
  FedAccumulator acc;
  acc.reset(3);
  acc.add_update({1.5f, -2.0f, 0.25f}, 7);
  acc.add_update({0.5f, 4.0f, -1.0f}, 3);

  std::vector<std::uint8_t> wire;
  serialize_aggregate_into(/*round=*/5, /*client=*/-3, /*samples=*/10,
                           /*loss=*/1.5f, acc.contributors(),
                           acc.total_weight(), acc.terms(), wire);
  WeightUpdate up;
  deserialize_update_into(wire, up);
  EXPECT_EQ(up.round, 5u);
  EXPECT_EQ(up.client_id, -3);
  EXPECT_EQ(up.sample_count, 10u);
  EXPECT_EQ(up.agg_contributors, 2u);
  ASSERT_EQ(up.agg_terms.size(), 3u);
  EXPECT_TRUE(up.agg_terms == acc.terms());
  std::vector<float> mean;
  acc.mean(mean);
  EXPECT_EQ(up.weights, mean);  // decoded mean view == accumulator mean

  // Truncation and payload corruption must throw, not misparse.
  std::vector<std::uint8_t> truncated(wire.begin(), wire.end() - 5);
  EXPECT_THROW(deserialize_update_into(truncated, up), FormatError);
  std::vector<std::uint8_t> flipped = wire;
  flipped[flipped.size() - 1] ^= 0x40;
  EXPECT_THROW(deserialize_update_into(flipped, up), FormatError);
}

}  // namespace
}  // namespace evfl::fl
