#include "data/scaler.hpp"

#include <gtest/gtest.h>

namespace evfl::data {
namespace {

TEST(MinMaxScaler, MapsToUnitInterval) {
  MinMaxScaler s;
  s.fit({10, 20, 30});
  EXPECT_FLOAT_EQ(s.transform_one(10), 0.0f);
  EXPECT_FLOAT_EQ(s.transform_one(30), 1.0f);
  EXPECT_FLOAT_EQ(s.transform_one(20), 0.5f);
}

TEST(MinMaxScaler, InverseRoundTrip) {
  MinMaxScaler s;
  s.fit({-5, 3, 17, 8});
  for (float v : {-5.0f, 0.0f, 8.5f, 17.0f, 25.0f}) {
    EXPECT_NEAR(s.inverse_one(s.transform_one(v)), v, 1e-4f);
  }
}

TEST(MinMaxScaler, VectorTransform) {
  MinMaxScaler s;
  s.fit({0, 10});
  const auto out = s.transform({0, 5, 10});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
  const auto back = s.inverse(out);
  EXPECT_FLOAT_EQ(back[1], 5.0f);
}

TEST(MinMaxScaler, OutOfRangeExtrapolates) {
  // Values outside the fitted range (test-set spikes) must extrapolate
  // linearly, not clamp — matches scikit-learn.
  MinMaxScaler s;
  s.fit({0, 10});
  EXPECT_FLOAT_EQ(s.transform_one(20), 2.0f);
  EXPECT_FLOAT_EQ(s.transform_one(-10), -1.0f);
}

TEST(MinMaxScaler, ConstantSeriesDoesNotDivideByZero) {
  MinMaxScaler s;
  s.fit({5, 5, 5});
  EXPECT_FLOAT_EQ(s.transform_one(5), 0.0f);
  EXPECT_FLOAT_EQ(s.inverse_one(0.0f), 5.0f);
}

TEST(MinMaxScaler, UseBeforeFitThrows) {
  MinMaxScaler s;
  EXPECT_FALSE(s.fitted());
  EXPECT_THROW(s.transform_one(1.0f), Error);
  EXPECT_THROW(s.inverse_one(1.0f), Error);
  EXPECT_THROW(s.transform({1.0f}), Error);
}

TEST(MinMaxScaler, FitEmptyThrows) {
  MinMaxScaler s;
  EXPECT_THROW(s.fit({}), Error);
}

TEST(MinMaxScaler, ExposesDataRange) {
  MinMaxScaler s;
  s.fit({3, 9, 6});
  EXPECT_FLOAT_EQ(s.data_min(), 3.0f);
  EXPECT_FLOAT_EQ(s.data_max(), 9.0f);
}

}  // namespace
}  // namespace evfl::data
