#include "stream/sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "forecast/model.hpp"
#include "stream/mpsc_ring.hpp"
#include "stream/pipeline.hpp"
#include "tensor/rng.hpp"

namespace evfl::stream {
namespace {

using forecast::Engine;
using forecast::ForecasterConfig;

// ---- MpscRing: serial contract ---------------------------------------------

TEST(MpscRing, FifoWithinBound) {
  MpscRing<int> r(64, 8);
  for (int i = 0; i < 6; ++i) r.push(i);
  EXPECT_EQ(r.size(), 6u);
  EXPECT_EQ(r.dropped(), 0u);
  std::vector<int> out;
  EXPECT_EQ(r.drain(out), 6u);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.size(), 0u);
}

TEST(MpscRing, DropsOldestPastMaxWithCount) {
  MpscRing<int> r(8, 8);
  for (int i = 0; i < 20; ++i) r.push(i);
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.dropped(), 12u);
  // The freshest entries survive back-pressure, in order.
  std::vector<int> out;
  r.drain(out);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], 12 + i);
}

TEST(MpscRing, StorageGrowsUnderBurstAndShrinksOnDrain) {
  MpscRing<int> r(256, 8);
  EXPECT_EQ(r.capacity(), 8u);
  for (int i = 0; i < 100; ++i) r.push(i);
  EXPECT_GE(r.capacity(), 100u);
  EXPECT_EQ(r.dropped(), 0u);  // growth absorbed the burst, nothing lost
  std::vector<int> out;
  r.drain(out);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.capacity(), 8u);  // burst memory returned
  // Steady state within the watermark never grows the storage again.
  for (int i = 0; i < 8; ++i) r.push(i);
  EXPECT_EQ(r.capacity(), 8u);
}

TEST(MpscRing, Validation) {
  EXPECT_THROW(MpscRing<int>(4, 4), Error);    // shrink floor is 8
  EXPECT_THROW(MpscRing<int>(16, 32), Error);  // shrink > max
  EXPECT_THROW(MpscRing<int>(16, 0), Error);
}

TEST(MpscRing, DrainInterleavedWithPushes) {
  MpscRing<int> r(16, 8);
  std::vector<int> out;
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) r.push(next++);
    r.drain(out);
  }
  r.drain(out);
  ASSERT_EQ(out.size(), 250u);
  for (int i = 0; i < 250; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.dropped(), 0u);
}

// ---- MpscRing: concurrent fuzz ---------------------------------------------

// Value encoding: producer id in the high bits, per-producer sequence in the
// low bits, so FIFO-per-producer and exact-accounting are both checkable.
constexpr std::uint64_t make_item(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 32) | seq;
}

TEST(MpscRing, ConcurrentProducersExactDropAccounting) {
  // Concurrent producers against a draining consumer, ring small enough to
  // force the whole slow path (grow, gate, drop-oldest).  Every pushed item
  // must end up either drained or counted dropped — exactly once.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(64, 8);

  std::atomic<bool> done{false};
  std::vector<std::uint64_t> drained;
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      ring.drain(drained);
      std::this_thread::yield();
    }
    ring.drain(drained);
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ring.push(make_item(p, i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  // Exact accounting: drained + dropped == pushed.
  EXPECT_EQ(drained.size() + ring.dropped(), kProducers * kPerProducer);

  // Per-producer order: every producer's surviving items appear in strictly
  // increasing sequence order (drop-oldest removes items, never reorders).
  std::vector<std::int64_t> last(kProducers, -1);
  std::vector<std::uint64_t> seen(kProducers, 0);
  for (std::uint64_t item : drained) {
    const std::size_t p = static_cast<std::size_t>(item >> 32);
    const std::int64_t seq = static_cast<std::int64_t>(item & 0xFFFFFFFFu);
    ASSERT_LT(p, kProducers);
    EXPECT_GT(seq, last[p]);
    last[p] = seq;
    ++seen[p];
  }
  std::uint64_t total_seen = 0;
  for (std::uint64_t s : seen) total_seen += s;
  EXPECT_EQ(total_seen, drained.size());
}

TEST(MpscRing, ConcurrentProducersNoConsumerUntilEnd) {
  // No drain while producing: the ring must converge to exactly `max`
  // survivors (the freshest) with everything else counted dropped.
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  MpscRing<std::uint64_t> ring(32, 8);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ring.push(make_item(p, i));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  std::vector<std::uint64_t> out;
  ring.drain(out);
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(out.size() + ring.dropped(), kProducers * kPerProducer);
}

// ---- ShardedPipeline fixtures ----------------------------------------------

ForecasterConfig small_config() {
  ForecasterConfig cfg;
  cfg.lstm_units = 16;
  cfg.dense_units = 6;
  cfg.sequence_length = 12;
  return cfg;
}

data::MinMaxScaler identity_scaler() {
  data::MinMaxScaler s;
  s.fit({0.0f, 1.0f});
  return s;
}

std::vector<float> make_series(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull + seed;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    const float noise = static_cast<float>((x >> 40) & 0xFFFF) / 65535.0f;
    v[i] = 0.5f + 0.3f * std::sin(0.3f * static_cast<float>(i + seed)) +
           0.05f * (noise - 0.5f);
  }
  return v;
}

struct EngineFixture {
  ForecasterConfig model = small_config();
  Engine engine;

  explicit EngineFixture(std::uint64_t seed = 7) : engine(model) {
    tensor::Rng rng(seed);
    nn::Sequential net = forecast::make_forecaster(model, rng);
    engine.publish(net.get_weights());
  }
};

/// Per-zone event trace with exact score/threshold bits — the unit the
/// determinism contract is stated over (global interleaving across zones is
/// allowed to differ between shard counts; per-zone sequences are not).
using ZoneTrace =
    std::map<std::uint32_t, std::vector<std::tuple<std::uint64_t, float, float>>>;

ZoneTrace trace_of(std::vector<AnomalyEvent>& events) {
  ZoneTrace trace;
  for (const AnomalyEvent& ev : events) {
    trace[ev.zone].emplace_back(ev.t, ev.score, ev.threshold);
  }
  return trace;
}

/// Replay `series` (one vector per zone, interleaved sample-major) through a
/// ShardedPipeline with `shards` shards and frozen thresholds; returns the
/// per-zone event trace.
ZoneTrace run_sharded(Engine& engine, std::size_t shards,
                      const std::vector<std::vector<float>>& series,
                      const std::vector<float>& thresholds,
                      std::size_t flush_every) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.stream.max_zones = series.size();
  cfg.stream.repair_inputs = false;
  cfg.ring_max = 4096;
  cfg.ring_shrink = 256;
  ShardedPipeline pipe(engine, cfg);
  for (std::size_t z = 0; z < series.size(); ++z) {
    pipe.add_zone(identity_scaler());
    pipe.freeze_threshold(static_cast<std::uint32_t>(z), thresholds[z]);
  }
  const std::size_t n = series[0].size();
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t z = 0; z < series.size(); ++z) {
      pipe.ingest(static_cast<std::uint32_t>(z), t, series[z][t]);
    }
    if ((t + 1) % flush_every == 0) pipe.flush();
  }
  pipe.flush();
  std::vector<AnomalyEvent> events;
  pipe.drain(events);
  return trace_of(events);
}

// ---- Shard-count invariance -------------------------------------------------

TEST(ShardedPipeline, FrozenBitIdenticalAcrossShardCounts) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;
  const std::size_t zones = 6;
  const std::size_t n = 150;

  std::vector<std::vector<float>> series;
  std::vector<float> thresholds;
  std::vector<std::vector<float>> expected;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 300 + z));
    expected.push_back(batch_scores(fx.engine, series[z]));
    thresholds.push_back(anomaly::percentile(expected[z], 90.0));
  }

  const ZoneTrace base = run_sharded(fx.engine, 1, series, thresholds, 32);
  ASSERT_FALSE(base.empty()) << "degenerate fixture: nothing flagged";

  // Every surviving event carries the exact batch-score bits (wide tier,
  // merged fan-in batch) ...
  for (const auto& [zone, evs] : base) {
    for (const auto& [t, score, thr] : evs) {
      ASSERT_GE(t, lookback);
      EXPECT_EQ(score, expected[zone][t - lookback]);
      EXPECT_EQ(thr, thresholds[zone]);
    }
  }

  // ... and the per-zone traces are bit-identical at every shard count and
  // flush cadence (round composition changes; per-zone results must not).
  for (std::size_t shards : {2u, 4u, 8u}) {
    const ZoneTrace t = run_sharded(fx.engine, shards, series, thresholds, 32);
    EXPECT_EQ(t, base) << "shards=" << shards;
  }
  const ZoneTrace odd = run_sharded(fx.engine, 4, series, thresholds, 7);
  EXPECT_EQ(odd, base) << "odd flush cadence";
}

TEST(ShardedPipeline, MatchesStreamPipelinePerZone) {
  // The sharded runtime and the single-producer StreamPipeline must agree
  // per zone, event for event, score bit for score bit.
  EngineFixture fx;
  const std::size_t zones = 5;
  const std::size_t n = 120;

  std::vector<std::vector<float>> series;
  std::vector<float> thresholds;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 900 + z));
    const std::vector<float> exp = batch_scores(fx.engine, series[z]);
    thresholds.push_back(anomaly::percentile(exp, 88.0));
  }

  StreamConfig scfg;
  scfg.max_zones = zones;
  scfg.repair_inputs = false;
  scfg.flush_batch = 1u << 20;  // manual flush only, like the sharded run
  StreamPipeline ref(fx.engine, scfg);
  for (std::size_t z = 0; z < zones; ++z) {
    ref.add_zone(identity_scaler());
    ref.freeze_threshold(static_cast<std::uint32_t>(z), thresholds[z]);
  }
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t z = 0; z < zones; ++z) {
      ref.ingest(static_cast<std::uint32_t>(z), t, series[z][t]);
    }
  }
  ref.flush();
  std::vector<AnomalyEvent> ref_events;
  ref.drain(ref_events);
  const ZoneTrace ref_trace = trace_of(ref_events);
  ASSERT_FALSE(ref_trace.empty()) << "degenerate fixture: nothing flagged";

  for (std::size_t shards : {1u, 3u, 8u}) {
    const ZoneTrace t = run_sharded(fx.engine, shards, series, thresholds, 40);
    EXPECT_EQ(t, ref_trace) << "shards=" << shards;
  }
}

TEST(ShardedPipeline, SingleZoneManyShards) {
  // 7 shards, 1 zone: every round stages exactly one row, the shape that
  // must pad onto the wide tier once at the merged batch — scores must
  // still carry batch bits.
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;
  const std::size_t n = 70;
  const std::vector<float> series = make_series(n, 17);
  const std::vector<float> expected = batch_scores(fx.engine, series);
  const float thr = anomaly::percentile(expected, 85.0);

  const ZoneTrace trace = run_sharded(fx.engine, 7, {series}, {thr}, 9);
  std::size_t batch_flagged = 0;
  for (float s : expected) batch_flagged += (s > thr);
  ASSERT_TRUE(trace.count(0) == 1);
  ASSERT_EQ(trace.at(0).size(), batch_flagged);
  for (const auto& [t, score, threshold] : trace.at(0)) {
    EXPECT_EQ(score, expected[t - lookback]);
    EXPECT_EQ(threshold, thr);
  }
}

// ---- Multi-producer behavior ------------------------------------------------

TEST(ShardedPipeline, MultiProducerDeterministicPerZone) {
  // Producers own disjoint zone sets (the collector topology): per-zone
  // sample order is then fixed regardless of thread interleaving, so the
  // whole pipeline output must be deterministic — identical to the serial
  // single-thread feed.
  EngineFixture fx;
  const std::size_t zones = 6;
  const std::size_t n = 100;
  constexpr std::size_t kProducers = 3;

  std::vector<std::vector<float>> series;
  std::vector<float> thresholds;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 40 + z));
    const std::vector<float> exp = batch_scores(fx.engine, series[z]);
    thresholds.push_back(anomaly::percentile(exp, 88.0));
  }
  const ZoneTrace serial = run_sharded(fx.engine, 4, series, thresholds, 25);
  ASSERT_FALSE(serial.empty()) << "degenerate fixture: nothing flagged";

  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.stream.max_zones = zones;
  cfg.stream.repair_inputs = false;
  cfg.ring_max = 8192;  // ample: back-pressure drops would break equality
  cfg.ring_shrink = 256;
  ShardedPipeline pipe(fx.engine, cfg);
  for (std::size_t z = 0; z < zones; ++z) {
    pipe.add_zone(identity_scaler());
    pipe.freeze_threshold(static_cast<std::uint32_t>(z), thresholds[z]);
  }

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t z = p; z < zones; z += kProducers) {
          pipe.ingest(static_cast<std::uint32_t>(z), t, series[z][t]);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pipe.flush();

  std::vector<AnomalyEvent> events;
  pipe.drain(events);
  EXPECT_EQ(pipe.ingest_dropped(), 0u);
  EXPECT_EQ(trace_of(events), serial);
}

TEST(ShardedPipeline, ConcurrentIngestWithFlushesSoak) {
  // Churn soak: producers hammer all zones (with timestamp gaps) while the
  // control thread flushes concurrently.  Accounting must stay exact:
  // every sample is processed or counted dropped, and every zone's gap
  // count is consistent.  Primarily a TSan target.
  EngineFixture fx;
  const std::size_t zones = 8;
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 800;

  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.stream.max_zones = zones;
  cfg.ring_max = 1024;
  cfg.ring_shrink = 64;
  ShardedPipeline pipe(fx.engine, cfg);
  for (std::size_t z = 0; z < zones; ++z) pipe.add_zone(identity_scaler());

  std::atomic<bool> done{false};
  std::thread control([&] {
    while (!done.load(std::memory_order_acquire)) {
      pipe.flush();
      std::this_thread::yield();
    }
    pipe.flush();
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Each producer owns two zones; every 97th sample skips a timestamp
      // (churn) so gap handling runs under concurrency too.
      std::uint64_t t = 0;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        t += (i % 97 == 0) ? 2 : 1;
        const auto z0 = static_cast<std::uint32_t>(2 * p);
        const auto z1 = static_cast<std::uint32_t>(2 * p + 1);
        const float v = 0.4f + 0.2f * std::sin(0.1f * static_cast<float>(i));
        pipe.ingest(z0, t, v);
        pipe.ingest(z1, t, v + 0.1f);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  control.join();

  const StreamStats st = pipe.stats();
  const std::uint64_t pushed = kProducers * kPerProducer * 2;
  EXPECT_EQ(st.samples_total + st.ingest_dropped, pushed);
  EXPECT_EQ(st.scored_total + st.not_ready_total, st.samples_total);
  EXPECT_EQ(pipe.pending(), 0u);
}

// ---- Back-pressure & stats --------------------------------------------------

TEST(ShardedPipeline, IngestBackPressureDropsOldestWithExactCount) {
  EngineFixture fx;
  ShardedConfig cfg;
  cfg.shards = 2;
  cfg.stream.max_zones = 2;
  cfg.ring_max = 16;  // tiny: overfill before any flush
  cfg.ring_shrink = 8;
  ShardedPipeline pipe(fx.engine, cfg);
  pipe.add_zone(identity_scaler());
  pipe.add_zone(identity_scaler());

  // 100 samples into each zone's shard ring, no flush: 16 survive per ring.
  for (std::uint64_t t = 0; t < 100; ++t) {
    pipe.ingest(0, t, 0.5f);
    pipe.ingest(1, t, 0.5f);
  }
  EXPECT_EQ(pipe.ingest_dropped(), 2u * (100 - 16));
  const std::size_t processed = pipe.flush();
  EXPECT_EQ(processed, 2u * 16);
  const StreamStats st = pipe.stats();
  EXPECT_EQ(st.samples_total, 2u * 16);
  EXPECT_EQ(st.ingest_dropped, 2u * (100 - 16));
  // The survivors are the freshest and contiguous: one gap reset each at
  // most (from the jump over the dropped prefix), no phantom samples.
  EXPECT_EQ(st.scored_total + st.not_ready_total, st.samples_total);
}

TEST(ShardedPipeline, StatsAggregateAcrossShards) {
  EngineFixture fx;
  const std::size_t lookback = fx.model.sequence_length;
  const std::size_t zones = 4;
  const std::size_t n = 40;

  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.stream.max_zones = zones;
  ShardedPipeline pipe(fx.engine, cfg);
  std::vector<std::vector<float>> series;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 70 + z));
    pipe.add_zone(identity_scaler());
  }
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t z = 0; z < zones; ++z) {
      pipe.ingest(static_cast<std::uint32_t>(z), t, series[z][t]);
    }
  }
  pipe.flush();

  const StreamStats st = pipe.stats();
  EXPECT_EQ(st.samples_total, zones * n);
  EXPECT_EQ(st.not_ready_total, zones * lookback);
  EXPECT_EQ(st.scored_total, zones * (n - lookback));
  EXPECT_EQ(st.flushes_total, 1u);
  EXPECT_EQ(st.ingest_dropped, 0u);
  EXPECT_EQ(pipe.pending(), 0u);
  EXPECT_EQ(pipe.shards(), 4u);
  EXPECT_EQ(pipe.zones(), zones);
}

TEST(ShardedPipeline, ParallelContextMatchesSerial) {
  // Shard stage/scatter on a thread pool must be bit-identical to the
  // serial dispatch (the repo-wide parallel determinism contract).
  EngineFixture fx;
  const std::size_t zones = 6;
  const std::size_t n = 90;

  std::vector<std::vector<float>> series;
  std::vector<float> thresholds;
  for (std::size_t z = 0; z < zones; ++z) {
    series.push_back(make_series(n, 510 + z));
    const std::vector<float> exp = batch_scores(fx.engine, series[z]);
    thresholds.push_back(anomaly::percentile(exp, 88.0));
  }
  const ZoneTrace serial = run_sharded(fx.engine, 4, series, thresholds, 30);

  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.stream.max_zones = zones;
  cfg.stream.repair_inputs = false;
  cfg.ring_max = 4096;
  cfg.ring_shrink = 256;
  ShardedPipeline pipe(fx.engine, cfg);
  for (std::size_t z = 0; z < zones; ++z) {
    pipe.add_zone(identity_scaler());
    pipe.freeze_threshold(static_cast<std::uint32_t>(z), thresholds[z]);
  }
  runtime::ThreadPool pool(4);
  runtime::RunContext ctx;
  ctx.pool = &pool;
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t z = 0; z < zones; ++z) {
      pipe.ingest(static_cast<std::uint32_t>(z), t, series[z][t]);
    }
    if ((t + 1) % 30 == 0) pipe.flush(&ctx);
  }
  pipe.flush(&ctx);
  std::vector<AnomalyEvent> events;
  pipe.drain(events);
  EXPECT_EQ(trace_of(events), serial);
}

// ---- Validation -------------------------------------------------------------

TEST(ShardedPipeline, Validation) {
  EngineFixture fx;
  ShardedConfig cfg;
  cfg.shards = 0;
  EXPECT_THROW(ShardedPipeline(fx.engine, cfg), Error);
  cfg.shards = 257;
  EXPECT_THROW(ShardedPipeline(fx.engine, cfg), Error);
  cfg.shards = 2;
  cfg.ring_shrink = cfg.ring_max + 1;
  EXPECT_THROW(ShardedPipeline(fx.engine, cfg), Error);

  ShardedConfig ok;
  ok.shards = 2;
  ok.stream.max_zones = 2;
  ShardedPipeline pipe(fx.engine, ok);
  pipe.add_zone(identity_scaler());
  EXPECT_THROW(pipe.ingest(5, 0, 0.5f), Error);
  EXPECT_THROW(pipe.freeze_threshold(0, NAN), Error);
}

}  // namespace
}  // namespace evfl::stream
