#include "fl/network.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "fl/serialize.hpp"

namespace evfl::fl {
namespace {

Message msg(int from, int to, std::size_t bytes = 4) {
  Message m;
  m.from = from;
  m.to = to;
  m.bytes.assign(bytes, 0xAB);
  return m;
}

TEST(Network, SendReceiveRoundTrip) {
  InMemoryNetwork net;
  EXPECT_TRUE(net.send(msg(0, 1)));
  EXPECT_EQ(net.pending(1), 1u);
  const auto received = net.try_receive(1);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, 0);
  EXPECT_EQ(received->bytes.size(), 4u);
  EXPECT_EQ(net.pending(1), 0u);
}

TEST(Network, FifoPerDestination) {
  InMemoryNetwork net;
  Message a = msg(0, 5);
  a.bytes = {1};
  Message b = msg(0, 5);
  b.bytes = {2};
  net.send(a);
  net.send(b);
  EXPECT_EQ(net.try_receive(5)->bytes[0], 1);
  EXPECT_EQ(net.try_receive(5)->bytes[0], 2);
}

TEST(Network, QueuesAreIsolatedPerNode) {
  InMemoryNetwork net;
  net.send(msg(0, 1));
  EXPECT_FALSE(net.try_receive(2).has_value());
  EXPECT_TRUE(net.try_receive(1).has_value());
}

TEST(Network, ReceiveTimesOutWhenEmpty) {
  InMemoryNetwork net;
  const auto r = net.receive(3, 20.0);  // 20 ms
  EXPECT_FALSE(r.has_value());
}

TEST(Network, BlockingReceiveWakesOnSend) {
  InMemoryNetwork net;
  std::thread sender([&net] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    net.send(msg(0, 9));
  });
  const auto r = net.receive(9, 2000.0);
  sender.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->from, 0);
}

TEST(Network, StatsCountMessagesAndBytes) {
  InMemoryNetwork net;
  net.send(msg(0, 1, 100));
  net.send(msg(1, 0, 50));
  const NetworkStats st = net.stats();
  EXPECT_EQ(st.messages_sent, 2u);
  EXPECT_EQ(st.bytes_sent, 150u);
  EXPECT_EQ(st.messages_dropped, 0u);
  net.reset_stats();
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(Network, SimulatedLatencyAccumulates) {
  NetworkConfig cfg;
  cfg.latency_ms_per_message = 5.0;
  cfg.latency_ms_per_kib = 1.0;
  InMemoryNetwork net(cfg);
  net.send(msg(0, 1, 2048));  // 5 + 2 = 7 ms
  net.send(msg(0, 1, 1024));  // 5 + 1 = 6 ms
  EXPECT_NEAR(net.stats().virtual_latency_ms, 13.0, 1e-9);
}

TEST(Network, DropProbabilityDropsRoughlyThatFraction) {
  NetworkConfig cfg;
  cfg.drop_probability = 0.3;
  cfg.drop_seed = 11;
  InMemoryNetwork net(cfg);
  std::size_t delivered = 0;
  const std::size_t n = 2000;
  for (std::size_t i = 0; i < n; ++i) {
    delivered += net.send(msg(0, 1));
  }
  const NetworkStats st = net.stats();
  EXPECT_EQ(st.messages_dropped, n - delivered);
  EXPECT_NEAR(static_cast<double>(st.messages_dropped) / n, 0.3, 0.05);
  EXPECT_EQ(net.pending(1), delivered);
}

TEST(Network, PeakMailboxDepthIsAHighWaterMark) {
  InMemoryNetwork net;
  EXPECT_EQ(net.stats().peak_mailbox_depth, 0u);
  net.send(msg(0, 1));
  net.send(msg(0, 2));
  net.send(msg(0, 1));
  EXPECT_EQ(net.stats().peak_mailbox_depth, 2u);  // node 1 held two at once
  net.try_receive(1);
  net.try_receive(1);
  net.send(msg(0, 1));  // back to depth 1: the peak must not move
  EXPECT_EQ(net.stats().peak_mailbox_depth, 2u);
  net.reset_stats();
  EXPECT_EQ(net.stats().peak_mailbox_depth, 0u);
}

TEST(Network, DuplicateDeliveriesChargeWireBytesAndSizeLatency) {
  // An injected duplicate crosses the wire like any other copy: it must
  // cost its bytes and its size-proportional transfer time.  Per-message
  // latency models connection setup, which a retransmission re-uses — it
  // is charged once per send() call.
  NetworkConfig cfg;
  cfg.latency_ms_per_message = 5.0;
  cfg.latency_ms_per_kib = 1.0;
  InMemoryNetwork net(cfg);
  faults::FaultPlan plan;
  plan.duplicate(/*client=*/1, /*extra_copies=*/2);
  faults::FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  GlobalModel g;
  g.round = 0;
  g.weights = {1.0f, 2.0f};
  const auto bcast = serialize(g);  // establishes the current round
  net.send(Message{kServerNode, 1, bcast});

  WeightUpdate u;
  u.client_id = 1;
  u.round = 0;
  u.weights = {3.0f, 4.0f};
  const auto up = serialize(u);
  net.send(Message{1, kServerNode, up});

  const NetworkStats st = net.stats();
  EXPECT_EQ(st.messages_sent, 2u);
  EXPECT_EQ(st.messages_duplicated, 2u);
  EXPECT_EQ(net.pending(kServerNode), 3u);  // original + 2 copies queued
  EXPECT_EQ(st.peak_mailbox_depth, 3u);
  EXPECT_EQ(st.bytes_sent, bcast.size() + 3u * up.size());
  const double kib =
      (static_cast<double>(bcast.size()) + 3.0 * up.size()) / 1024.0;
  EXPECT_NEAR(st.virtual_latency_ms, 2 * 5.0 + kib * 1.0, 1e-9);
}

TEST(Network, TryReceiveOnEmptyQueueIsNullopt) {
  InMemoryNetwork net;
  EXPECT_FALSE(net.try_receive(0).has_value());
  // A node that was drained earlier behaves the same as a never-used one.
  net.send(msg(0, 1));
  net.try_receive(1);
  EXPECT_FALSE(net.try_receive(1).has_value());
  EXPECT_EQ(net.pending(1), 0u);
}

TEST(Network, TimeoutIsAnAbsoluteDeadlineDespiteForeignWakeups) {
  // Sends to *other* nodes notify the receiver's condition variable; those
  // wakeups must not extend the receiver's deadline beyond timeout_ms.
  InMemoryNetwork net;
  std::atomic<bool> stop{false};
  std::thread noisy([&] {
    while (!stop.load()) {
      net.send(msg(0, 2));  // wrong node: pure wakeup noise
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = net.receive(1, 100.0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true);
  noisy.join();
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(elapsed_ms, 99.0);
  EXPECT_LT(elapsed_ms, 1000.0);  // not extended by the wakeup stream
}

TEST(Network, DropPatternIsDeterministicUnderFixedSeed) {
  const auto delivered_pattern = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.drop_probability = 0.5;
    cfg.drop_seed = seed;
    InMemoryNetwork net(cfg);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(net.send(msg(0, 1)));
    return pattern;
  };
  EXPECT_EQ(delivered_pattern(11), delivered_pattern(11));
  EXPECT_NE(delivered_pattern(11), delivered_pattern(12));
}

TEST(Network, InterleavedMultiNodeSendsKeepPerNodeFifo) {
  InMemoryNetwork net;
  for (std::uint8_t i = 0; i < 6; ++i) {
    Message m = msg(0, i % 3);  // round-robin across three nodes
    m.bytes = {i};
    net.send(m);
  }
  // Each node sees only its own messages, in send order.
  for (int node = 0; node < 3; ++node) {
    EXPECT_EQ(net.try_receive(node)->bytes[0], node);
    EXPECT_EQ(net.try_receive(node)->bytes[0], node + 3);
    EXPECT_FALSE(net.try_receive(node).has_value());
  }
}

TEST(Network, ConcurrentSendersDoNotLoseMessages) {
  InMemoryNetwork net;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&net, t] {
      for (int i = 0; i < kPerThread; ++i) net.send(msg(t, 99));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(net.pending(99), 4u * kPerThread);
}

}  // namespace
}  // namespace evfl::fl
