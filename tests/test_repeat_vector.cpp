#include "nn/repeat_vector.hpp"

#include <gtest/gtest.h>

namespace evfl::nn {
namespace {

using tensor::Tensor3;

TEST(RepeatVector, TilesAcrossTime) {
  RepeatVector layer(4);
  Tensor3 x(2, 1, 3);
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t f = 0; f < 3; ++f) {
      x(n, 0, f) = static_cast<float>(n * 10 + f);
    }
  }
  const Tensor3 y = layer.forward(x, false);
  EXPECT_EQ(y.time(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(y(1, t, 2), 12.0f);
    EXPECT_EQ(y(0, t, 0), 0.0f);
  }
}

TEST(RepeatVector, BackwardSumsOverTime) {
  RepeatVector layer(3);
  Tensor3 x(1, 1, 2);
  layer.forward(x, false);
  Tensor3 g(1, 3, 2);
  g(0, 0, 0) = 1.0f;
  g(0, 1, 0) = 2.0f;
  g(0, 2, 0) = 3.0f;
  g(0, 0, 1) = 0.5f;
  const Tensor3 dx = layer.backward(g);
  EXPECT_EQ(dx.time(), 1u);
  EXPECT_FLOAT_EQ(dx(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(dx(0, 0, 1), 0.5f);
}

TEST(RepeatVector, RejectsMultiTimestepInput) {
  RepeatVector layer(3);
  Tensor3 x(1, 2, 2);
  EXPECT_THROW(layer.forward(x, false), Error);
}

TEST(RepeatVector, RejectsWrongBackwardTime) {
  RepeatVector layer(3);
  Tensor3 x(1, 1, 2);
  layer.forward(x, false);
  Tensor3 bad(1, 2, 2);
  EXPECT_THROW(layer.backward(bad), Error);
}

TEST(RepeatVector, ZeroRepeatsRejected) {
  EXPECT_THROW(RepeatVector(0), Error);
}

TEST(RepeatVector, StatelessNoParams) {
  RepeatVector layer(2);
  EXPECT_TRUE(layer.params().empty());
  EXPECT_EQ(layer.output_features(5), 5u);
}

}  // namespace
}  // namespace evfl::nn
