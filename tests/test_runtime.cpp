// The runtime execution-context layer: pool semantics, the determinism
// contract (parallel == serial, bit for bit) across tensor kernels, the
// trainer, and the pipeline, plus driver degradation under loss/stragglers.
#include "runtime/run_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "fl/driver.hpp"
#include "forecast/model.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "tensor/linalg.hpp"

namespace evfl::runtime {
namespace {

using tensor::Matrix;
using tensor::Rng;
using tensor::Tensor3;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

// ---- ThreadPool / parallel_for ---------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OneThreadPoolIsTheSerialPath) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  // No workers: chunks must run in order on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, 3, [&](std::size_t begin, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(begin);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 3, 6, 9}));
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a throwing loop.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(50, 5, [&](std::size_t begin, std::size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 50u);
}

TEST(RunContext, SerialDefaultAndGrainFloor) {
  RunContext ctx;  // no pool, no metrics
  EXPECT_EQ(ctx.concurrency(), 1u);
  EXPECT_FALSE(ctx.parallel());
  EXPECT_GE(ctx.grain_for(0), 1u);
  std::size_t calls = 0, covered = 0;
  ctx.parallel_for(17, 4, [&](std::size_t begin, std::size_t end) {
    ++calls;
    covered += end - begin;
  });
  // Serial context runs one body call over the whole range.
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(covered, 17u);
  ctx.count("noop");  // metrics-free context: must not crash
}

TEST(RunContext, MetricsAccumulateThreadSafely) {
  ThreadPool pool(4);
  Metrics metrics;
  RunContext ctx{&pool, &metrics};
  ctx.parallel_for(100, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ctx.count("ticks");
  });
  EXPECT_DOUBLE_EQ(metrics.value("ticks"), 100.0);
  EXPECT_DOUBLE_EQ(metrics.value("never_touched"), 0.0);
}

TEST(RunContext, SplitRngsMatchesSequentialSplits) {
  Rng a(123), b(123);
  std::vector<Rng> pre = split_rngs(a, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    Rng child = b.split();
    EXPECT_EQ(pre[i].engine()(), child.engine()());
  }
  // The parent stream advanced identically.
  EXPECT_EQ(a.engine()(), b.engine()());
}

// ---- context-aware tensor kernels ------------------------------------------

TEST(ContextMatmul, BitIdenticalToSerialKernels) {
  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const Matrix a = random_matrix(61, 47, 1);
  const Matrix b = random_matrix(47, 53, 2);

  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul(a, b),
                                 tensor::matmul(a, b, ctx)),
            0.0f);
  // matmul_tn computes aᵀ·b: operands share their leading (k) dimension.
  const Matrix at = random_matrix(47, 61, 4);
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul_tn(at, b),
                                 tensor::matmul_tn(at, b, ctx)),
            0.0f);
  const Matrix bt = random_matrix(53, 47, 3);
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul_nt(a, bt),
                                 tensor::matmul_nt(a, bt, ctx)),
            0.0f);
}

TEST(ContextMatmul, ShapeChecked) {
  ThreadPool pool(2);
  RunContext ctx{&pool, nullptr};
  const Matrix a(4, 3), b(5, 6);
  Matrix c(4, 6);
  EXPECT_THROW(tensor::matmul_acc(a, b, c, ctx), ShapeError);
}

// ---- model clones & parallel inference -------------------------------------

TEST(CloneAndPredict, ParallelInferenceBitIdentical) {
  Rng rng(11);
  forecast::ForecasterConfig cfg;
  cfg.sequence_length = 8;
  cfg.lstm_units = 6;
  cfg.dense_units = 3;
  nn::Sequential model = forecast::make_forecaster(cfg, rng);

  Tensor3 x(40, 8, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);

  const Tensor3 serial = nn::predict_batched(model, x, 8);

  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const Tensor3 parallel = nn::predict_batched(model, x, 8, &ctx);
  EXPECT_EQ(tensor::max_abs_diff(serial, parallel), 0.0f);
}

TEST(CloneAndPredict, ParallelEvaluateBitIdentical) {
  Rng rng(12);
  nn::Sequential model;
  model.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
  nn::MseLoss loss;
  nn::Adam opt(1e-3f);
  nn::Trainer trainer(model, loss, opt, rng);

  Tensor3 x(100, 1, 1), y(100, 1, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0, 0) = rng.uniform(-1, 1);
    y(i, 0, 0) = 2.0f * x(i, 0, 0);
  }
  const float serial = trainer.evaluate(x, y, 16);

  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const float parallel = trainer.evaluate(x, y, 16, &ctx);
  EXPECT_EQ(serial, parallel);
}

TEST(CloneAndPredict, CloneIsIndependent) {
  Rng rng(13);
  nn::Sequential model;
  model.emplace<nn::Dense>(2, nn::Activation::kRelu, rng, 3);
  Tensor3 x(4, 1, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  model.forward(x, false);  // build lazily-created weights

  nn::Sequential copy = model.clone();
  EXPECT_EQ(model.get_weights(), copy.get_weights());
  // Mutating the clone must not touch the original.
  std::vector<float> w = copy.get_weights();
  for (float& v : w) v += 1.0f;
  copy.set_weights(w);
  EXPECT_NE(model.get_weights(), copy.get_weights());
}

// ---- Tensor3 bulk copies ----------------------------------------------------

TEST(Tensor3Copy, CopyBatchIntoMatchesElementwise) {
  Rng rng(14);
  Tensor3 src(3, 4, 2);
  for (std::size_t i = 0; i < src.size(); ++i) src.data()[i] = rng.normal();
  Tensor3 dst(8, 4, 2);
  src.copy_batch_into(dst, 5);
  for (std::size_t n = 0; n < 3; ++n) {
    for (std::size_t t = 0; t < 4; ++t) {
      for (std::size_t f = 0; f < 2; ++f) {
        EXPECT_EQ(dst(5 + n, t, f), src(n, t, f));
      }
    }
  }
  EXPECT_EQ(dst(0, 0, 0), 0.0f);  // untouched region stays zero
  Tensor3 wrong(3, 5, 2);
  EXPECT_THROW(wrong.copy_batch_into(dst, 0), ShapeError);
  EXPECT_THROW(src.copy_batch_into(dst, 6), Error);
}

// ---- pipeline determinism ---------------------------------------------------

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.generator.hours = 480;
  cfg.ddos.bursts = 6;
  cfg.filter.autoencoder.window = 12;
  cfg.filter.autoencoder.encoder_units = 8;
  cfg.filter.autoencoder.latent_units = 4;
  cfg.filter.autoencoder.max_epochs = 3;
  cfg.forecaster.sequence_length = 12;
  cfg.forecaster.lstm_units = 6;
  cfg.forecaster.dense_units = 3;
  cfg.federated_rounds = 1;
  cfg.epochs_per_round = 1;
  cfg.seed = 21;
  cfg.cache_dir.clear();  // determinism must not come from the disk cache
  return cfg;
}

TEST(PipelineDeterminism, ParallelPrepareClientsBitIdenticalToSerial) {
  const core::ExperimentConfig cfg = small_config();
  const std::vector<core::ClientData> serial = core::prepare_clients(cfg);

  ThreadPool pool(4);
  Metrics metrics;
  RunContext ctx{&pool, &metrics};
  const std::vector<core::ClientData> parallel =
      core::prepare_clients(cfg, &ctx);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    const core::ClientData& s = serial[c];
    const core::ClientData& p = parallel[c];
    EXPECT_EQ(s.zone, p.zone);
    EXPECT_EQ(s.clean.values, p.clean.values);
    EXPECT_EQ(s.attacked.values, p.attacked.values);
    EXPECT_EQ(s.attacked.labels, p.attacked.labels);
    EXPECT_EQ(s.filtered.values, p.filtered.values);
    EXPECT_EQ(s.filter_result.scores, p.filter_result.scores);
    EXPECT_EQ(s.filter_result.flags, p.filter_result.flags);
    EXPECT_EQ(s.filter_result.threshold, p.filter_result.threshold);
    EXPECT_EQ(s.injection.points_attacked, p.injection.points_attacked);
    EXPECT_EQ(s.injection.bursts, p.injection.bursts);
  }
  EXPECT_GE(metrics.value("pipeline.parallel_client_preps"), 1.0);
}

// ---- drivers ----------------------------------------------------------------

fl::ModelFactory linear_factory() {
  return [](Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

std::vector<std::unique_ptr<fl::Client>> make_clients(std::size_t n_per_client,
                                                      std::uint64_t seed) {
  std::vector<std::unique_ptr<fl::Client>> clients;
  Rng root(seed);
  for (int c = 0; c < 3; ++c) {
    Tensor3 x(n_per_client, 1, 1), y(n_per_client, 1, 1);
    Rng data_rng = root.split();
    for (std::size_t i = 0; i < n_per_client; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = static_cast<float>(c + 1) * xi;
    }
    fl::ClientConfig cfg;
    cfg.epochs_per_round = 5;
    cfg.learning_rate = 0.05f;
    cfg.batch_size = 16;
    clients.push_back(std::make_unique<fl::Client>(
        c, x, y, linear_factory(), cfg, root.split()));
  }
  return clients;
}

TEST(PoolBackedSyncDriver, BitIdenticalToSerialDriver) {
  auto run_with = [](const RunContext* ctx) {
    auto clients = make_clients(32, 5);
    fl::Server server({0.0f, 0.0f});
    fl::InMemoryNetwork net;
    fl::SyncDriver driver(server, clients, net, ctx);
    return driver.run(3).final_weights;
  };
  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  EXPECT_EQ(run_with(nullptr), run_with(&ctx));
}

TEST(PoolBackedSyncDriver, RunsThroughDriverInterface) {
  auto clients = make_clients(16, 6);
  fl::Server server({0.0f, 0.0f});
  fl::InMemoryNetwork net;
  ThreadPool pool(3);
  RunContext ctx{&pool, nullptr};
  std::unique_ptr<fl::Driver> driver =
      std::make_unique<fl::SyncDriver>(server, clients, net, &ctx);
  const fl::FederatedRunResult result = driver->run(2);
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const fl::RoundMetrics& r : result.rounds) {
    EXPECT_EQ(r.updates_received, 3u);
    EXPECT_EQ(r.dropped_messages, 0u);
  }
}

TEST(SyncDriver, CountsDropsInsteadOfAborting) {
  auto clients = make_clients(16, 7);
  fl::Server server({0.0f, 0.0f});
  fl::NetworkConfig net_cfg;
  net_cfg.drop_probability = 0.5;
  net_cfg.drop_seed = 3;
  fl::InMemoryNetwork net(net_cfg);
  fl::SyncDriver driver(server, clients, net);
  const fl::FederatedRunResult result = driver.run(5);
  std::size_t dropped = 0, received = 0;
  for (const fl::RoundMetrics& r : result.rounds) {
    dropped += r.dropped_messages;
    received += r.updates_received;
  }
  EXPECT_GT(dropped, 0u);   // the lossy network really lost messages...
  EXPECT_LT(received, 15u); // ...which degraded rounds...
  EXPECT_EQ(result.rounds.size(), 5u);  // ...without aborting the run
}

TEST(ThreadedDriverStraggler, RoundCompletesWithFewerUpdatesThanClients) {
  auto clients = make_clients(256, 8);
  fl::Server server({0.0f, 0.0f});
  fl::InMemoryNetwork net;
  fl::ThreadedDriver driver(server, clients, net);
  // Zero collection budget: every client is a straggler, each round must
  // still complete (FedAvg over the empty/partial subset).
  const fl::FederatedRunResult result = driver.run(2, 0.0);
  ASSERT_EQ(result.rounds.size(), 2u);
  EXPECT_LT(result.rounds[0].updates_received, clients.size());
}

}  // namespace
}  // namespace evfl::runtime
