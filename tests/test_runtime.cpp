// The runtime execution-context layer: pool semantics, the determinism
// contract (parallel == serial, bit for bit) across tensor kernels, the
// trainer, and the pipeline, plus driver degradation under loss/stragglers.
#include "runtime/run_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/pipeline.hpp"
#include "fl/driver.hpp"
#include "forecast/model.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "runtime/workspace.hpp"
#include "tensor/init.hpp"
#include "tensor/linalg.hpp"

namespace evfl::runtime {
namespace {

using tensor::Matrix;
using tensor::Rng;
using tensor::Tensor3;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

// ---- ThreadPool / parallel_for ---------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OneThreadPoolIsTheSerialPath) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  // No workers: chunks must run in order on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, 3, [&](std::size_t begin, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(begin);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 3, 6, 9}));
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a throwing loop.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(50, 5, [&](std::size_t begin, std::size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 50u);
}

TEST(RunContext, SerialDefaultAndGrainFloor) {
  RunContext ctx;  // no pool, no metrics
  EXPECT_EQ(ctx.concurrency(), 1u);
  EXPECT_FALSE(ctx.parallel());
  EXPECT_GE(ctx.grain_for(0), 1u);
  std::size_t calls = 0, covered = 0;
  ctx.parallel_for(17, 4, [&](std::size_t begin, std::size_t end) {
    ++calls;
    covered += end - begin;
  });
  // Serial context runs one body call over the whole range.
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(covered, 17u);
  ctx.count("noop");  // metrics-free context: must not crash
}

TEST(RunContext, MetricsAccumulateThreadSafely) {
  ThreadPool pool(4);
  Metrics metrics;
  RunContext ctx{&pool, &metrics};
  ctx.parallel_for(100, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ctx.count("ticks");
  });
  EXPECT_DOUBLE_EQ(metrics.value("ticks"), 100.0);
  EXPECT_DOUBLE_EQ(metrics.value("never_touched"), 0.0);
}

TEST(RunContext, SplitRngsMatchesSequentialSplits) {
  Rng a(123), b(123);
  std::vector<Rng> pre = split_rngs(a, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    Rng child = b.split();
    EXPECT_EQ(pre[i].engine()(), child.engine()());
  }
  // The parent stream advanced identically.
  EXPECT_EQ(a.engine()(), b.engine()());
}

// ---- context-aware tensor kernels ------------------------------------------

TEST(ContextMatmul, BitIdenticalToSerialKernels) {
  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const Matrix a = random_matrix(61, 47, 1);
  const Matrix b = random_matrix(47, 53, 2);

  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul(a, b),
                                 tensor::matmul(a, b, ctx)),
            0.0f);
  // matmul_tn computes aᵀ·b: operands share their leading (k) dimension.
  const Matrix at = random_matrix(47, 61, 4);
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul_tn(at, b),
                                 tensor::matmul_tn(at, b, ctx)),
            0.0f);
  const Matrix bt = random_matrix(53, 47, 3);
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul_nt(a, bt),
                                 tensor::matmul_nt(a, bt, ctx)),
            0.0f);
}

TEST(ContextMatmul, ShapeChecked) {
  ThreadPool pool(2);
  RunContext ctx{&pool, nullptr};
  const Matrix a(4, 3), b(5, 6);
  Matrix c(4, 6);
  EXPECT_THROW(tensor::matmul_acc(a, b, c, ctx), ShapeError);
}

// ---- Workspace arena --------------------------------------------------------

TEST(Workspace, RewindReusesMemoryWithoutMoving) {
  Workspace ws;
  float* base = ws.borrow(100);
  base[0] = 1.0f;
  const Workspace::Mark m = ws.mark();
  float* scratch = ws.borrow(200);
  scratch[0] = 2.0f;
  ws.rewind(m);
  // The next borrow reuses the rewound region; earlier borrows are intact.
  EXPECT_EQ(ws.borrow(50), scratch);
  EXPECT_EQ(base[0], 1.0f);
}

TEST(Workspace, PointersSurviveBlockGrowth) {
  Workspace ws;
  float* early = ws.borrow_zeroed(64);
  early[0] = 42.0f;
  // Force several new blocks; existing blocks must never move or shrink.
  for (int i = 0; i < 4; ++i) ws.borrow(1u << 18);
  EXPECT_EQ(early[0], 42.0f);
  EXPECT_GT(ws.capacity_floats(), 1u << 18);
  ws.reset();
  EXPECT_EQ(ws.borrow(1), early);  // reset rewinds to the first block
}

TEST(Workspace, BorrowsAreAlignedAndHighWaterTracksPeak) {
  Workspace ws;
  float* a = ws.borrow(1);
  float* b = ws.borrow(1);
  // Requests round up to 16-float (64-byte) lanes, so consecutive borrows
  // never share a cache line.
  EXPECT_EQ(b - a, 16);
  const std::size_t peak = ws.high_water_floats();
  EXPECT_GE(peak, 2u);
  ws.reset();
  ws.borrow(1);
  EXPECT_EQ(ws.high_water_floats(), peak);  // high water never rewinds
}

TEST(Workspace, ScratchScopeRewindsOnUnwind) {
  Workspace ws;
  float* p1 = nullptr;
  {
    ScratchScope scope(ws);
    p1 = scope.borrow_zeroed(128);
    EXPECT_EQ(p1[127], 0.0f);
  }
  ScratchScope scope(ws);
  EXPECT_EQ(scope.borrow(16), p1);  // the scope released its borrows
}

TEST(Workspace, ThreadLanesAreDistinct) {
  Workspace* main_lane = &thread_workspace();
  Workspace* worker_lane = nullptr;
  std::thread t([&] { worker_lane = &thread_workspace(); });
  t.join();
  ASSERT_NE(worker_lane, nullptr);
  EXPECT_NE(main_lane, worker_lane);
  EXPECT_EQ(main_lane, &thread_workspace());  // stable per thread
}

// ---- blocked GEMM vs the seed's naive kernels -------------------------------

// Verbatim copies of the pre-blocking kernels.  The blocked kernels in
// tensor/matrix.cpp promise bit-identical results: per output element the
// k accumulation runs in the same order with the same zero-skip, only the
// (i, j) tile visit order changes.  These references keep that promise
// checkable against any future kernel rewrite.
void naive_matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b.row(kk);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void naive_matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.row(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void naive_matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      // NB: float*float multiply, then the product widens into the double
      // accumulator — the seed semantics the vectorized kernel reproduces.
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += static_cast<float>(acc);
    }
  }
}

/// Exact zeros sprinkled in to exercise the kernels' zero-skip branch.
Matrix random_sparse_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m = random_matrix(r, c, seed);
  for (std::size_t i = 0; i < m.size(); i += 13) m.data()[i] = 0.0f;
  return m;
}

TEST(BlockedMatmul, BitIdenticalToNaiveAcrossThreadCounts) {
  // 93 rows / 150 cols straddle the 64-row and 128-column tile boundaries,
  // so every kernel runs multi-tile with ragged edge tiles.
  const Matrix a = random_sparse_matrix(93, 70, 21);   // [m, k]
  const Matrix b = random_sparse_matrix(70, 150, 22);  // [k, n]
  const Matrix at = random_sparse_matrix(70, 93, 23);  // [k, m] for tn
  const Matrix bt = random_sparse_matrix(150, 70, 24); // [n, k] for nt

  Matrix c_naive(93, 150), c_tn_naive(93, 150), c_nt_naive(93, 150);
  naive_matmul_acc(a, b, c_naive);
  naive_matmul_tn_acc(at, b, c_tn_naive);
  naive_matmul_nt_acc(a, bt, c_nt_naive);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    RunContext ctx{&pool, nullptr};
    Matrix c(93, 150);
    tensor::matmul_acc(a, b, c, ctx);
    EXPECT_EQ(tensor::max_abs_diff(c, c_naive), 0.0f) << threads << " threads";

    c.set_zero();
    tensor::matmul_tn_acc(at, b, c, ctx);
    EXPECT_EQ(tensor::max_abs_diff(c, c_tn_naive), 0.0f)
        << threads << " threads";

    c.set_zero();
    tensor::matmul_nt_acc(a, bt, c, ctx);
    EXPECT_EQ(tensor::max_abs_diff(c, c_nt_naive), 0.0f)
        << threads << " threads";
  }

  // The serial Matrix overloads hit the same blocked bodies.
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul(a, b), c_naive), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul_tn(at, b), c_tn_naive), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(tensor::matmul_nt(a, bt), c_nt_naive), 0.0f);
}

TEST(BlockedMatmul, StridedGateViewsMatchFullMatrixKernels) {
  // Writing into a column block of a wider matrix through a strided view
  // must equal computing into a dense matrix and copying the block in.
  const std::size_t n = 9, k = 7, h = 40;  // 4h = 160 crosses the 128 tile
  const Matrix a = random_matrix(n, k, 31);
  const Matrix w = random_matrix(k, 4 * h, 32);
  Matrix fused(n, 4 * h);
  fused.set_zero();
  for (std::size_t g = 0; g < 4; ++g) {
    const tensor::ConstMatView wg{w.data() + g * h, k, h, 4 * h};
    tensor::MatView out = fused.col_block(g * h, h);
    tensor::matmul_acc(a.view(), wg, out);
  }
  Matrix dense(n, 4 * h);
  naive_matmul_acc(a, w, dense);
  EXPECT_EQ(tensor::max_abs_diff(fused, dense), 0.0f);
}

// ---- LSTM fused fast path vs the seed algorithm -----------------------------

/// The seed LSTM, reimplemented on the naive kernels with per-gate Matrix
/// temporaries — the algorithm the fused/workspace rewrite in nn/lstm.cpp
/// must reproduce float-for-float (forward, BPTT, and parameter grads).
class ReferenceLstm {
 public:
  ReferenceLstm(std::size_t units, Rng& rng, std::size_t input_features)
      : units_(units) {
    const std::size_t h = units;
    wx_ = tensor::glorot_uniform(input_features, 4 * h, rng);
    wh_ = Matrix(h, 4 * h);
    for (std::size_t g = 0; g < 4; ++g) {
      const Matrix block = tensor::orthogonal(h, h, rng);
      for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t c = 0; c < h; ++c) wh_(r, g * h + c) = block(r, c);
      }
    }
    b_ = Matrix(1, 4 * h);
    for (std::size_t c = 0; c < h; ++c) b_(0, h + c) = 1.0f;
    gwx_ = Matrix(input_features, 4 * h);
    gwh_ = Matrix(h, 4 * h);
    gb_ = Matrix(1, 4 * h);
  }

  Tensor3 forward(const Tensor3& input) {
    const std::size_t n = input.batch(), t_len = input.time(), h = units_;
    cached_n_ = n;
    cached_in_ = input.features();
    cache_.assign(t_len, Step{});
    Matrix h_state(n, h), c_state(n, h);
    Tensor3 out(n, 1, h);
    for (std::size_t t = 0; t < t_len; ++t) {
      Step& sc = cache_[t];
      sc.x = input.timestep(t);
      sc.h_prev = h_state;
      sc.c_prev = c_state;
      Matrix z(n, 4 * h);
      z.add_row_broadcast(b_);
      naive_matmul_acc(sc.x, wx_, z);
      naive_matmul_acc(sc.h_prev, wh_, z);
      sc.i = gate_block(z, 0);
      sc.f = gate_block(z, 1);
      sc.g = gate_block(z, 2);
      sc.o = gate_block(z, 3);
      nn::apply_activation(nn::Activation::kSigmoid, sc.i);
      nn::apply_activation(nn::Activation::kSigmoid, sc.f);
      nn::apply_activation(nn::Activation::kTanh, sc.g);
      nn::apply_activation(nn::Activation::kSigmoid, sc.o);
      for (std::size_t idx = 0; idx < n * h; ++idx) {
        c_state.data()[idx] = sc.f.data()[idx] * sc.c_prev.data()[idx] +
                              sc.i.data()[idx] * sc.g.data()[idx];
      }
      sc.c_tanh = c_state;
      nn::apply_activation(nn::Activation::kTanh, sc.c_tanh);
      for (std::size_t idx = 0; idx < n * h; ++idx) {
        h_state.data()[idx] = sc.o.data()[idx] * sc.c_tanh.data()[idx];
      }
    }
    out.set_timestep(0, h_state);
    return out;
  }

  Tensor3 backward(const Tensor3& grad_output) {
    const std::size_t n = cached_n_, t_len = cache_.size(), h = units_;
    Tensor3 dx(n, t_len, cached_in_);
    Matrix dh_next(n, h), dc_next(n, h);
    for (std::size_t ti = t_len; ti-- > 0;) {
      const Step& sc = cache_[ti];
      Matrix dh = dh_next;
      if (ti == t_len - 1) dh += grad_output.timestep(0);
      Matrix dc(n, h);
      for (std::size_t idx = 0; idx < n * h; ++idx) {
        const float ct = sc.c_tanh.data()[idx];
        dc.data()[idx] = dh.data()[idx] * sc.o.data()[idx] * (1.0f - ct * ct) +
                         dc_next.data()[idx];
      }
      Matrix dz(n, 4 * h);
      for (std::size_t r = 0; r < n; ++r) {
        float* dzrow = dz.row(r);
        for (std::size_t c = 0; c < h; ++c) {
          const std::size_t idx = r * h + c;
          const float i = sc.i.data()[idx], f = sc.f.data()[idx];
          const float g = sc.g.data()[idx], o = sc.o.data()[idx];
          const float dci = dc.data()[idx];
          dzrow[c] = dci * g * i * (1.0f - i);
          dzrow[h + c] = dci * sc.c_prev.data()[idx] * f * (1.0f - f);
          dzrow[2 * h + c] = dci * i * (1.0f - g * g);
          dzrow[3 * h + c] =
              dh.data()[idx] * sc.c_tanh.data()[idx] * o * (1.0f - o);
        }
      }
      naive_matmul_tn_acc(sc.x, dz, gwx_);
      naive_matmul_tn_acc(sc.h_prev, dz, gwh_);
      // Seed order: column sums land in a zeroed temporary first, then the
      // whole row adds into gb_ (gb_ += dz.col_sums()).
      Matrix col_sums(1, 4 * h);
      for (std::size_t r = 0; r < n; ++r) {
        const float* dzrow = dz.row(r);
        for (std::size_t c = 0; c < 4 * h; ++c) col_sums(0, c) += dzrow[c];
      }
      gb_ += col_sums;
      Matrix dxt(n, cached_in_);
      naive_matmul_nt_acc(dz, wx_, dxt);
      dx.set_timestep(ti, dxt);
      dh_next = Matrix(n, h);
      naive_matmul_nt_acc(dz, wh_, dh_next);
      for (std::size_t idx = 0; idx < n * h; ++idx) {
        dc_next.data()[idx] = dc.data()[idx] * sc.f.data()[idx];
      }
    }
    return dx;
  }

  void zero_grads() {
    gwx_.set_zero();
    gwh_.set_zero();
    gb_.set_zero();
  }

  std::vector<nn::ParamRef> params() {
    return {{"lstm.wx", &wx_, &gwx_},
            {"lstm.wh", &wh_, &gwh_},
            {"lstm.b", &b_, &gb_}};
  }

  Matrix wx_, wh_, b_, gwx_, gwh_, gb_;

 private:
  struct Step {
    Matrix x, h_prev, c_prev, i, f, g, o, c_tanh;
  };

  Matrix gate_block(const Matrix& z, std::size_t g) const {
    const std::size_t h = units_;
    Matrix out(z.rows(), h);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      const float* src = z.row(r) + g * h;
      float* dst = out.row(r);
      for (std::size_t c = 0; c < h; ++c) dst[c] = src[c];
    }
    return out;
  }

  std::size_t units_;
  std::size_t cached_n_ = 0, cached_in_ = 0;
  std::vector<Step> cache_;
};

TEST(LstmBitIdentity, FusedPathMatchesSeedAlgorithmOverTrainingSteps) {
  // batch 70 crosses the 64-row tile bound, 4h = 160 the 128-column bound.
  const std::size_t units = 40, in = 3, n = 70, t = 5;
  Rng rng_new(42), rng_ref(42);
  nn::Lstm lstm(units, /*return_sequences=*/false, rng_new, in);
  ReferenceLstm ref(units, rng_ref, in);

  Rng data_rng(7);
  Tensor3 x(n, t, in);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = data_rng.uniform(0, 1);
  }
  Tensor3 g(n, 1, units);
  for (std::size_t i = 0; i < g.size(); ++i) {
    g.data()[i] = data_rng.uniform(-1, 1);
  }

  nn::Adam opt_new(1e-3f), opt_ref(1e-3f);
  for (int step = 0; step < 3; ++step) {
    const Tensor3 out_new = lstm.forward(x, /*training=*/true);
    const Tensor3 out_ref = ref.forward(x);
    EXPECT_EQ(tensor::max_abs_diff(out_new, out_ref), 0.0f)
        << "forward diverged at step " << step;

    lstm.zero_grads();
    ref.zero_grads();
    const Tensor3 dx_new = lstm.backward(g);
    const Tensor3 dx_ref = ref.backward(g);
    EXPECT_EQ(tensor::max_abs_diff(dx_new, dx_ref), 0.0f)
        << "dx diverged at step " << step;

    auto p_new = lstm.params();
    auto p_ref = ref.params();
    ASSERT_EQ(p_new.size(), p_ref.size());
    for (std::size_t p = 0; p < p_new.size(); ++p) {
      EXPECT_EQ(tensor::max_abs_diff(*p_new[p].grad, *p_ref[p].grad), 0.0f)
          << p_new[p].name << " grad diverged at step " << step;
    }
    opt_new.step(p_new);
    opt_ref.step(p_ref);
    for (std::size_t p = 0; p < p_new.size(); ++p) {
      EXPECT_EQ(tensor::max_abs_diff(*p_new[p].value, *p_ref[p].value), 0.0f)
          << p_new[p].name << " weights diverged at step " << step;
    }
  }
}

TEST(LstmBitIdentity, TrainingUnderParallelContextMatchesSerial) {
  // fit() keeps weight updates sequential and only parallelizes validation
  // scoring; final weights must be bit-identical for threads {1, N}.
  auto train = [](const RunContext* ctx) {
    Rng rng(42);
    nn::Sequential model;
    model.emplace<nn::Lstm>(8, /*return_sequences=*/false, rng, 1);
    model.emplace<nn::Dense>(4, nn::Activation::kRelu, rng, 8);
    model.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 4);
    nn::MseLoss loss;
    nn::Adam opt(1e-3f);
    nn::Trainer trainer(model, loss, opt, rng);
    Rng d(7);
    Tensor3 x(48, 12, 1), y(48, 1, 1);
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = d.uniform(0, 1);
    for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = d.uniform(0, 1);
    nn::FitConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 16;
    trainer.fit(x, y, cfg, &x, &y, ctx);
    return model.get_weights();
  };
  const std::vector<float> serial = train(nullptr);
  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const std::vector<float> parallel = train(&ctx);
  EXPECT_EQ(serial, parallel);
}

// ---- model clones & parallel inference -------------------------------------

TEST(CloneAndPredict, ParallelInferenceBitIdentical) {
  Rng rng(11);
  forecast::ForecasterConfig cfg;
  cfg.sequence_length = 8;
  cfg.lstm_units = 6;
  cfg.dense_units = 3;
  nn::Sequential model = forecast::make_forecaster(cfg, rng);

  Tensor3 x(40, 8, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(0, 1);

  const Tensor3 serial = nn::predict_batched(model, x, 8);

  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const Tensor3 parallel = nn::predict_batched(model, x, 8, &ctx);
  EXPECT_EQ(tensor::max_abs_diff(serial, parallel), 0.0f);
}

TEST(CloneAndPredict, ParallelEvaluateBitIdentical) {
  Rng rng(12);
  nn::Sequential model;
  model.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
  nn::MseLoss loss;
  nn::Adam opt(1e-3f);
  nn::Trainer trainer(model, loss, opt, rng);

  Tensor3 x(100, 1, 1), y(100, 1, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0, 0) = rng.uniform(-1, 1);
    y(i, 0, 0) = 2.0f * x(i, 0, 0);
  }
  const float serial = trainer.evaluate(x, y, 16);

  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  const float parallel = trainer.evaluate(x, y, 16, &ctx);
  EXPECT_EQ(serial, parallel);
}

TEST(CloneAndPredict, CloneIsIndependent) {
  Rng rng(13);
  nn::Sequential model;
  model.emplace<nn::Dense>(2, nn::Activation::kRelu, rng, 3);
  Tensor3 x(4, 1, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  model.forward(x, false);  // build lazily-created weights

  nn::Sequential copy = model.clone();
  EXPECT_EQ(model.get_weights(), copy.get_weights());
  // Mutating the clone must not touch the original.
  std::vector<float> w = copy.get_weights();
  for (float& v : w) v += 1.0f;
  copy.set_weights(w);
  EXPECT_NE(model.get_weights(), copy.get_weights());
}

// ---- Tensor3 bulk copies ----------------------------------------------------

TEST(Tensor3Copy, CopyBatchIntoMatchesElementwise) {
  Rng rng(14);
  Tensor3 src(3, 4, 2);
  for (std::size_t i = 0; i < src.size(); ++i) src.data()[i] = rng.normal();
  Tensor3 dst(8, 4, 2);
  src.copy_batch_into(dst, 5);
  for (std::size_t n = 0; n < 3; ++n) {
    for (std::size_t t = 0; t < 4; ++t) {
      for (std::size_t f = 0; f < 2; ++f) {
        EXPECT_EQ(dst(5 + n, t, f), src(n, t, f));
      }
    }
  }
  EXPECT_EQ(dst(0, 0, 0), 0.0f);  // untouched region stays zero
  Tensor3 wrong(3, 5, 2);
  EXPECT_THROW(wrong.copy_batch_into(dst, 0), ShapeError);
  EXPECT_THROW(src.copy_batch_into(dst, 6), Error);
}

// ---- pipeline determinism ---------------------------------------------------

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.generator.hours = 480;
  cfg.ddos.bursts = 6;
  cfg.filter.autoencoder.window = 12;
  cfg.filter.autoencoder.encoder_units = 8;
  cfg.filter.autoencoder.latent_units = 4;
  cfg.filter.autoencoder.max_epochs = 3;
  cfg.forecaster.sequence_length = 12;
  cfg.forecaster.lstm_units = 6;
  cfg.forecaster.dense_units = 3;
  cfg.federated_rounds = 1;
  cfg.epochs_per_round = 1;
  cfg.seed = 21;
  cfg.cache_dir.clear();  // determinism must not come from the disk cache
  return cfg;
}

TEST(PipelineDeterminism, ParallelPrepareClientsBitIdenticalToSerial) {
  const core::ExperimentConfig cfg = small_config();
  const std::vector<core::ClientData> serial = core::prepare_clients(cfg);

  ThreadPool pool(4);
  Metrics metrics;
  RunContext ctx{&pool, &metrics};
  const std::vector<core::ClientData> parallel =
      core::prepare_clients(cfg, &ctx);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    const core::ClientData& s = serial[c];
    const core::ClientData& p = parallel[c];
    EXPECT_EQ(s.zone, p.zone);
    EXPECT_EQ(s.clean.values, p.clean.values);
    EXPECT_EQ(s.attacked.values, p.attacked.values);
    EXPECT_EQ(s.attacked.labels, p.attacked.labels);
    EXPECT_EQ(s.filtered.values, p.filtered.values);
    EXPECT_EQ(s.filter_result.scores, p.filter_result.scores);
    EXPECT_EQ(s.filter_result.flags, p.filter_result.flags);
    EXPECT_EQ(s.filter_result.threshold, p.filter_result.threshold);
    EXPECT_EQ(s.injection.points_attacked, p.injection.points_attacked);
    EXPECT_EQ(s.injection.bursts, p.injection.bursts);
  }
  EXPECT_GE(metrics.value("pipeline.parallel_client_preps"), 1.0);
}

// ---- drivers ----------------------------------------------------------------

fl::ModelFactory linear_factory() {
  return [](Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

std::vector<std::unique_ptr<fl::Client>> make_clients(std::size_t n_per_client,
                                                      std::uint64_t seed) {
  std::vector<std::unique_ptr<fl::Client>> clients;
  Rng root(seed);
  for (int c = 0; c < 3; ++c) {
    Tensor3 x(n_per_client, 1, 1), y(n_per_client, 1, 1);
    Rng data_rng = root.split();
    for (std::size_t i = 0; i < n_per_client; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = static_cast<float>(c + 1) * xi;
    }
    fl::ClientConfig cfg;
    cfg.epochs_per_round = 5;
    cfg.learning_rate = 0.05f;
    cfg.batch_size = 16;
    clients.push_back(std::make_unique<fl::Client>(
        c, x, y, linear_factory(), cfg, root.split()));
  }
  return clients;
}

TEST(PoolBackedSyncDriver, BitIdenticalToSerialDriver) {
  auto run_with = [](const RunContext* ctx) {
    auto clients = make_clients(32, 5);
    fl::Server server({0.0f, 0.0f});
    fl::InMemoryNetwork net;
    fl::SyncDriver driver(server, clients, net, ctx);
    return driver.run(3).final_weights;
  };
  ThreadPool pool(4);
  RunContext ctx{&pool, nullptr};
  EXPECT_EQ(run_with(nullptr), run_with(&ctx));
}

TEST(PoolBackedSyncDriver, RunsThroughDriverInterface) {
  auto clients = make_clients(16, 6);
  fl::Server server({0.0f, 0.0f});
  fl::InMemoryNetwork net;
  ThreadPool pool(3);
  RunContext ctx{&pool, nullptr};
  std::unique_ptr<fl::Driver> driver =
      std::make_unique<fl::SyncDriver>(server, clients, net, &ctx);
  const fl::FederatedRunResult result = driver->run(2);
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const fl::RoundMetrics& r : result.rounds) {
    EXPECT_EQ(r.updates_received, 3u);
    EXPECT_EQ(r.dropped_messages, 0u);
  }
}

TEST(SyncDriver, CountsDropsInsteadOfAborting) {
  auto clients = make_clients(16, 7);
  fl::Server server({0.0f, 0.0f});
  fl::NetworkConfig net_cfg;
  net_cfg.drop_probability = 0.5;
  net_cfg.drop_seed = 3;
  fl::InMemoryNetwork net(net_cfg);
  fl::SyncDriver driver(server, clients, net);
  const fl::FederatedRunResult result = driver.run(5);
  std::size_t dropped = 0, received = 0;
  for (const fl::RoundMetrics& r : result.rounds) {
    dropped += r.dropped_messages;
    received += r.updates_received;
  }
  EXPECT_GT(dropped, 0u);   // the lossy network really lost messages...
  EXPECT_LT(received, 15u); // ...which degraded rounds...
  EXPECT_EQ(result.rounds.size(), 5u);  // ...without aborting the run
}

TEST(ThreadedDriverStraggler, RoundCompletesWithFewerUpdatesThanClients) {
  auto clients = make_clients(256, 8);
  fl::Server server({0.0f, 0.0f});
  fl::InMemoryNetwork net;
  fl::ThreadedDriver driver(server, clients, net);
  // Zero collection budget: every client is a straggler, each round must
  // still complete (FedAvg over the empty/partial subset).
  const fl::FederatedRunResult result = driver.run(2, 0.0);
  ASSERT_EQ(result.rounds.size(), 2u);
  EXPECT_LT(result.rounds[0].updates_received, clients.size());
}

}  // namespace
}  // namespace evfl::runtime
