#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor3;

Tensor3 random_input(std::size_t n, std::size_t t, std::size_t f,
                     std::uint64_t seed) {
  Rng rng(seed);
  Tensor3 x(n, t, f);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  return x;
}

TEST(Lstm, OutputShapes) {
  Rng rng(1);
  Lstm seq(5, true, rng, 2);
  Lstm last(5, false, rng, 2);
  const Tensor3 x = random_input(3, 7, 2, 10);
  const Tensor3 ys = seq.forward(x, false);
  EXPECT_EQ(ys.batch(), 3u);
  EXPECT_EQ(ys.time(), 7u);
  EXPECT_EQ(ys.features(), 5u);
  const Tensor3 yl = last.forward(x, false);
  EXPECT_EQ(yl.batch(), 3u);
  EXPECT_EQ(yl.time(), 1u);
  EXPECT_EQ(yl.features(), 5u);
}

TEST(Lstm, LastStepMatchesFinalSequenceOutput) {
  Rng rng(2);
  Lstm seq(4, true, rng, 3);
  // Copy weights into a last-step twin.
  Rng rng2(3);
  Lstm last(4, false, rng2, 3);
  const Tensor3 x = random_input(2, 6, 3, 11);
  seq.forward(x, false);  // builds weights
  last.forward(x, false);
  // Synchronize weights.
  auto ps = seq.params();
  auto pl = last.params();
  for (std::size_t i = 0; i < ps.size(); ++i) *pl[i].value = *ps[i].value;

  const Tensor3 ys = seq.forward(x, false);
  const Tensor3 yl = last.forward(x, false);
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t f = 0; f < 4; ++f) {
      EXPECT_NEAR(ys(n, 5, f), yl(n, 0, f), 1e-6f);
    }
  }
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  Rng rng(4);
  Lstm layer(3, false, rng, 1);
  auto params = layer.params();
  // params: wx, wh, b.  b layout: [i | f | g | o], each 3 wide.
  const Matrix& b = *params[2].value;
  EXPECT_EQ(b(0, 0), 0.0f);  // input gate
  EXPECT_EQ(b(0, 3), 1.0f);  // forget gate
  EXPECT_EQ(b(0, 4), 1.0f);
  EXPECT_EQ(b(0, 6), 0.0f);  // cell candidate
  EXPECT_EQ(b(0, 9), 0.0f);  // output gate
}

TEST(Lstm, DeterministicForward) {
  Rng rng(5);
  Lstm layer(6, true, rng, 2);
  const Tensor3 x = random_input(2, 5, 2, 12);
  const Tensor3 y1 = layer.forward(x, false);
  const Tensor3 y2 = layer.forward(x, false);
  EXPECT_LT(tensor::max_abs_diff(y1, y2), 1e-7f);
}

TEST(Lstm, ZeroWeightsGiveZeroOutput) {
  Rng rng(6);
  Lstm layer(3, false, rng, 1);
  for (auto& p : layer.params()) p.value->set_zero();
  const Tensor3 x = random_input(2, 4, 1, 13);
  const Tensor3 y = layer.forward(x, false);
  // All gates 0.5/0, candidate tanh(0)=0 -> cell stays 0 -> h = 0.
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.data()[i], 0.0f, 1e-7f);
  }
}

TEST(Lstm, OutputBoundedByTanh) {
  Rng rng(7);
  Lstm layer(4, true, rng, 1);
  const Tensor3 x = random_input(2, 10, 1, 14);
  const Tensor3 y = layer.forward(x, false);
  for (std::size_t i = 0; i < y.size(); ++i) {
    // |h| = |o * tanh(c)| <= 1.
    EXPECT_LE(std::abs(y.data()[i]), 1.0f);
  }
}

TEST(Lstm, LongerHistoryChangesOutput) {
  // The recurrence must actually carry state: same final inputs with
  // different prefixes must give different outputs.
  Rng rng(8);
  Lstm layer(4, false, rng, 1);
  Tensor3 a(1, 6, 1), b(1, 6, 1);
  for (std::size_t t = 0; t < 6; ++t) {
    a(0, t, 0) = 0.5f;
    b(0, t, 0) = (t < 3) ? -1.5f : 0.5f;  // different prefix
  }
  const Tensor3 ya = layer.forward(a, false);
  const Tensor3 yb = layer.forward(b, false);
  EXPECT_GT(tensor::max_abs_diff(ya, yb), 1e-4f);
}

TEST(Lstm, BackwardInputGradShape) {
  Rng rng(9);
  Lstm layer(4, true, rng, 3);
  const Tensor3 x = random_input(2, 5, 3, 15);
  const Tensor3 y = layer.forward(x, true);
  Tensor3 g(2, 5, 4);
  const Tensor3 dx = layer.backward(g);
  EXPECT_EQ(dx.batch(), 2u);
  EXPECT_EQ(dx.time(), 5u);
  EXPECT_EQ(dx.features(), 3u);
}

TEST(Lstm, BackwardGradShapeMismatchThrows) {
  Rng rng(10);
  Lstm layer(4, false, rng, 2);
  const Tensor3 x = random_input(2, 5, 2, 16);
  layer.forward(x, true);
  Tensor3 bad(2, 5, 4);  // last-step layer expects time == 1
  EXPECT_THROW(layer.backward(bad), Error);
}

TEST(Lstm, RejectsChangedInputWidth) {
  Rng rng(11);
  Lstm layer(4, false, rng, 2);
  EXPECT_THROW(layer.forward(random_input(1, 3, 5, 17), false), ShapeError);
}

TEST(Lstm, ParamCountMatchesFormula) {
  Rng rng(12);
  const std::size_t h = 50, in = 1;
  Lstm layer(h, false, rng, in);
  std::size_t total = 0;
  for (auto& p : layer.params()) total += p.value->size();
  EXPECT_EQ(total, in * 4 * h + h * 4 * h + 4 * h);
}

TEST(Lstm, EmptyTimeRejected) {
  Rng rng(13);
  Lstm layer(2, false, rng, 1);
  Tensor3 x(2, 0, 1);
  EXPECT_THROW(layer.forward(x, false), Error);
}

}  // namespace
}  // namespace evfl::nn
