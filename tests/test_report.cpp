#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace evfl::core {
namespace {

TEST(TableWriter, AlignedOutput) {
  TableWriter t({"A", "Longer"});
  t.add_row({"x", "y"});
  t.add_row({"longervalue", "z"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("longervalue"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableWriter, RowWidthValidated) {
  TableWriter t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(TableWriter({}), Error);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 4), "1.0000");
}

TEST(PaperReference, Table1MatchesPublication) {
  ASSERT_EQ(kPaperTable1.size(), 4u);
  EXPECT_STREQ(kPaperTable1[0].scenario, "Clean Data");
  EXPECT_DOUBLE_EQ(kPaperTable1[0].r2, 0.9075);
  EXPECT_DOUBLE_EQ(kPaperTable1[3].mae, 6.1644);
  EXPECT_STREQ(kPaperTable1[3].architecture, "Centralized");
}

TEST(PaperReference, Table2MatchesPublication) {
  ASSERT_EQ(kPaperTable2.size(), 3u);
  EXPECT_DOUBLE_EQ(kPaperTable2[1].precision, 0.955);
  EXPECT_DOUBLE_EQ(kPaperTable2[2].recall, 0.354);
}

TEST(PaperReference, Table3MatchesPublication) {
  ASSERT_EQ(kPaperTable3.size(), 6u);
  EXPECT_DOUBLE_EQ(kPaperTable3[0].r2, 0.8883);
  EXPECT_DOUBLE_EQ(kPaperTable3[5].r2, 0.6356);
}

TEST(Recovery, MatchesPaperFormula) {
  // Paper: clean 0.9075, attacked 0.8707, filtered 0.8883 -> 47.9% recovery.
  EXPECT_NEAR(recovery_percent(0.9075, 0.8707, 0.8883), 47.9, 0.5);
}

TEST(Recovery, DegenerateCases) {
  EXPECT_EQ(recovery_percent(0.9, 0.9, 0.95), 0.0);   // nothing lost
  EXPECT_EQ(recovery_percent(0.8, 0.9, 0.95), 0.0);   // attack "helped"
  EXPECT_NEAR(recovery_percent(0.9, 0.5, 0.9), 100.0, 1e-9);
  EXPECT_LT(recovery_percent(0.9, 0.5, 0.4), 0.0);    // filtering hurt
}

TEST(AddScenarioRows, RendersPerClient) {
  ScenarioResult result;
  result.scenario = DataScenario::kFiltered;
  result.architecture = "Federated";
  result.train_seconds = 12.5;
  ClientEvaluation ev;
  ev.zone = "102";
  ev.regression.mae = 1.0;
  ev.regression.rmse = 2.0;
  ev.regression.r2 = 0.9;
  result.per_client.push_back(ev);

  TableWriter t({"Scenario", "Arch", "Client", "MAE", "RMSE", "R2", "Time"});
  add_scenario_rows(t, result);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("Filtered Data"), std::string::npos);
  EXPECT_NE(os.str().find("zone 102"), std::string::npos);
  EXPECT_NE(os.str().find("0.9000"), std::string::npos);
}

}  // namespace
}  // namespace evfl::core
