#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "nn/dense.hpp"
#include "nn/lstm.hpp"

namespace evfl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor3;

Sequential small_model(Rng& rng) {
  Sequential m;
  m.emplace<Lstm>(4, false, rng, 1);
  m.emplace<Dense>(3, Activation::kRelu, rng, 4);
  m.emplace<Dense>(1, Activation::kLinear, rng, 3);
  return m;
}

TEST(Sequential, ForwardThroughStack) {
  Rng rng(1);
  Sequential m = small_model(rng);
  Tensor3 x(2, 5, 1);
  const Tensor3 y = m.forward(x, false);
  EXPECT_EQ(y.batch(), 2u);
  EXPECT_EQ(y.time(), 1u);
  EXPECT_EQ(y.features(), 1u);
}

TEST(Sequential, EmptyModelRejected) {
  Sequential m;
  Tensor3 x(1, 1, 1);
  EXPECT_THROW(m.forward(x, false), Error);
}

TEST(Sequential, WeightCountMatchesFormula) {
  Rng rng(2);
  Sequential m = small_model(rng);
  // LSTM: 1*16 + 4*16 + 16 = 96; Dense1: 4*3+3 = 15; Dense2: 3*1+1 = 4.
  EXPECT_EQ(m.weight_count(), 96u + 15u + 4u);
}

TEST(Sequential, GetSetWeightsRoundTrip) {
  Rng rng(3);
  Sequential a = small_model(rng);
  Rng rng2(4);
  Sequential b = small_model(rng2);

  Tensor3 x(3, 5, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = 0.1f * i;

  const Tensor3 ya_before = a.forward(x, false);
  const Tensor3 yb_before = b.forward(x, false);
  EXPECT_GT(tensor::max_abs_diff(ya_before, yb_before), 1e-6f);

  b.set_weights(a.get_weights());
  const Tensor3 yb_after = b.forward(x, false);
  EXPECT_LT(tensor::max_abs_diff(ya_before, yb_after), 1e-7f);
}

TEST(Sequential, SetWeightsWrongSizeThrows) {
  Rng rng(5);
  Sequential m = small_model(rng);
  std::vector<float> too_short(m.weight_count() - 1, 0.0f);
  EXPECT_THROW(m.set_weights(too_short), Error);
  std::vector<float> too_long(m.weight_count() + 1, 0.0f);
  EXPECT_THROW(m.set_weights(too_long), Error);
}

TEST(Sequential, GradsHaveSameLayoutAsWeights) {
  Rng rng(6);
  Sequential m = small_model(rng);
  EXPECT_EQ(m.get_grads().size(), m.get_weights().size());
}

TEST(Sequential, ZeroGradsClearsAll) {
  Rng rng(7);
  Sequential m = small_model(rng);
  Tensor3 x(2, 5, 1);
  Tensor3 g(2, 1, 1);
  g(0, 0, 0) = 1.0f;
  m.forward(x, true);
  m.backward(g);
  bool any_nonzero = false;
  for (float v : m.get_grads()) any_nonzero |= (v != 0.0f);
  EXPECT_TRUE(any_nonzero);
  m.zero_grads();
  for (float v : m.get_grads()) EXPECT_EQ(v, 0.0f);
}

TEST(Sequential, SummaryMentionsLayersAndParams) {
  Rng rng(8);
  Sequential m = small_model(rng);
  const std::string s = m.summary();
  EXPECT_NE(s.find("Lstm(4"), std::string::npos);
  EXPECT_NE(s.find("Dense(3"), std::string::npos);
  EXPECT_NE(s.find("total params: 115"), std::string::npos);
}

TEST(Sequential, SaveLoadWeightsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/evfl_weights.bin";
  Rng rng(10);
  Sequential a = small_model(rng);
  a.save_weights(path);

  Rng rng2(11);
  Sequential b = small_model(rng2);
  b.load_weights(path);
  EXPECT_EQ(a.get_weights(), b.get_weights());
}

TEST(Sequential, LoadWeightsRejectsWrongModel) {
  const std::string path = ::testing::TempDir() + "/evfl_weights2.bin";
  Rng rng(12);
  Sequential a = small_model(rng);
  a.save_weights(path);

  Sequential other;
  Rng rng3(13);
  other.emplace<Dense>(2, Activation::kLinear, rng3, 2);
  EXPECT_THROW(other.load_weights(path), FormatError);
}

TEST(Sequential, LoadWeightsDetectsCorruption) {
  const std::string path = ::testing::TempDir() + "/evfl_weights3.bin";
  Rng rng(14);
  Sequential a = small_model(rng);
  a.save_weights(path);
  // Flip one payload byte.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    char c;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  Rng rng2(15);
  Sequential b = small_model(rng2);
  EXPECT_THROW(b.load_weights(path), FormatError);
  EXPECT_THROW(b.load_weights("/nonexistent/w.bin"), Error);
}

TEST(Sequential, AddNullLayerRejected) {
  Sequential m;
  EXPECT_THROW(m.add(nullptr), Error);
}

TEST(Sequential, LayerAccess) {
  Rng rng(9);
  Sequential m = small_model(rng);
  EXPECT_EQ(m.layer_count(), 3u);
  EXPECT_EQ(m.layer(0).name(), "Lstm(4, last)");
}

}  // namespace
}  // namespace evfl::nn
