#include "tensor/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::tensor {
namespace {

TEST(Init, GlorotUniformWithinLimit) {
  Rng rng(1);
  const std::size_t fan_in = 30, fan_out = 50;
  const float limit = std::sqrt(6.0f / (fan_in + fan_out));
  Matrix m = glorot_uniform(fan_in, fan_out, rng);
  EXPECT_EQ(m.rows(), fan_in);
  EXPECT_EQ(m.cols(), fan_out);
  EXPECT_GE(m.min(), -limit);
  EXPECT_LE(m.max(), limit);
  // Not degenerate.
  EXPECT_GT(m.squared_norm(), 0.0f);
}

TEST(Init, RandomNormalStddev) {
  Rng rng(2);
  Matrix m = random_normal(100, 100, 0.5f, rng);
  const double var = static_cast<double>(m.squared_norm()) / m.size();
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(Init, OrthogonalSquareIsOrthonormal) {
  Rng rng(3);
  const std::size_t n = 20;
  Matrix q = orthogonal(n, n, rng);
  Matrix qtq = matmul_tn(q, q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(n)), 1e-4f);
}

TEST(Init, OrthogonalTallHasOrthonormalColumns) {
  Rng rng(4);
  Matrix q = orthogonal(30, 10, rng);
  Matrix qtq = matmul_tn(q, q);  // 10 x 10
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(10)), 1e-4f);
}

TEST(Init, OrthogonalWideHasOrthonormalRows) {
  Rng rng(5);
  Matrix q = orthogonal(10, 30, rng);
  Matrix qqt = matmul_nt(q, q);  // 10 x 10
  EXPECT_LT(max_abs_diff(qqt, Matrix::identity(10)), 1e-4f);
}

TEST(Init, OrthogonalPreservesNormThroughMultiplication) {
  Rng rng(6);
  const std::size_t n = 16;
  Matrix q = orthogonal(n, n, rng);
  Matrix v = random_normal(n, 1, 1.0f, rng);
  Matrix qv = matmul(q.transposed(), v);
  EXPECT_NEAR(qv.squared_norm(), v.squared_norm(),
              1e-3f * v.squared_norm());
}

}  // namespace
}  // namespace evfl::tensor
