#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace evfl::nn {
namespace {

using tensor::Tensor3;

Tensor3 make(std::initializer_list<float> vals) {
  Tensor3 x(vals.size(), 1, 1);
  std::size_t i = 0;
  for (float v : vals) x(i++, 0, 0) = v;
  return x;
}

TEST(MseLoss, KnownValue) {
  MseLoss loss;
  const Tensor3 pred = make({1, 2, 3});
  const Tensor3 target = make({1, 4, 0});
  // ((0)^2 + (-2)^2 + (3)^2) / 3 = 13/3
  EXPECT_NEAR(loss.value(pred, target), 13.0f / 3.0f, 1e-6f);
}

TEST(MseLoss, PerfectPredictionIsZero) {
  MseLoss loss;
  const Tensor3 p = make({1, 2, 3});
  EXPECT_EQ(loss.value(p, p), 0.0f);
}

TEST(MseLoss, GradientIsTwoErrOverN) {
  MseLoss loss;
  const Tensor3 pred = make({1, 5});
  const Tensor3 target = make({0, 2});
  const LossResult r = loss.value_and_grad(pred, target);
  EXPECT_NEAR(r.grad(0, 0, 0), 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad(1, 0, 0), 2.0f * 3.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(r.value, (1.0f + 9.0f) / 2.0f, 1e-6f);
}

TEST(MseLoss, GradMatchesNumericDifference) {
  MseLoss loss;
  Tensor3 pred = make({0.3f, -0.7f, 1.2f});
  const Tensor3 target = make({0.1f, 0.2f, -0.4f});
  const LossResult r = loss.value_and_grad(pred, target);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float eps = 1e-3f;
    const float saved = pred.data()[i];
    pred.data()[i] = saved + eps;
    const float lp = loss.value(pred, target);
    pred.data()[i] = saved - eps;
    const float lm = loss.value(pred, target);
    pred.data()[i] = saved;
    EXPECT_NEAR(r.grad.data()[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

TEST(MaeLoss, KnownValue) {
  MaeLoss loss;
  const Tensor3 pred = make({1, 2, 3});
  const Tensor3 target = make({1, 4, 0});
  EXPECT_NEAR(loss.value(pred, target), (0 + 2 + 3) / 3.0f, 1e-6f);
}

TEST(MaeLoss, GradientIsSignOverN) {
  MaeLoss loss;
  const Tensor3 pred = make({2, -2, 1});
  const Tensor3 target = make({0, 0, 1});
  const LossResult r = loss.value_and_grad(pred, target);
  EXPECT_NEAR(r.grad(0, 0, 0), 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(r.grad(1, 0, 0), -1.0f / 3.0f, 1e-6f);
  EXPECT_EQ(r.grad(2, 0, 0), 0.0f);
}

TEST(Loss, ShapeMismatchThrows) {
  MseLoss mse;
  MaeLoss mae;
  const Tensor3 a = make({1, 2});
  const Tensor3 b = make({1, 2, 3});
  EXPECT_THROW(mse.value(a, b), Error);
  EXPECT_THROW(mse.value_and_grad(a, b), Error);
  EXPECT_THROW(mae.value(a, b), Error);
  EXPECT_THROW(mae.value_and_grad(a, b), Error);
}

}  // namespace
}  // namespace evfl::nn
