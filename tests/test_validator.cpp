#include "fl/validator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "fl/fedavg.hpp"

namespace evfl::fl {
namespace {

WeightUpdate update(int client, std::uint32_t round,
                    std::vector<float> weights) {
  WeightUpdate u;
  u.client_id = client;
  u.round = round;
  u.sample_count = 10;
  u.weights = std::move(weights);
  return u;
}

TEST(Validator, AcceptsCleanCurrentRoundUpdates) {
  UpdateValidator v;
  RoundAudit audit;
  const auto out = v.filter({update(0, 3, {1.0f}), update(1, 3, {2.0f})}, 3,
                            {0.0f}, audit);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(audit.received, 2u);
  EXPECT_EQ(audit.accepted, 2u);
  EXPECT_EQ(audit.rejected(), 0u);
  EXPECT_TRUE(audit.quorum_met);
}

TEST(Validator, RejectsStaleAndFutureRounds) {
  UpdateValidator v;
  RoundAudit audit;
  const auto out = v.filter(
      {update(0, 2, {1.0f}), update(1, 3, {1.0f}), update(2, 4, {1.0f})}, 3,
      {0.0f}, audit);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].client_id, 1);
  EXPECT_EQ(audit.rejected_stale, 2u);
}

TEST(Validator, KeepsFirstUpdatePerClient) {
  UpdateValidator v;
  RoundAudit audit;
  const auto out = v.filter(
      {update(0, 1, {1.0f}), update(0, 1, {9.0f}), update(1, 1, {2.0f})}, 1,
      {0.0f}, audit);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0].weights[0], 1.0f);  // first arrival wins
  EXPECT_EQ(audit.rejected_duplicate, 1u);
}

TEST(Validator, RejectsNonFinitePayloads) {
  UpdateValidator v;
  RoundAudit audit;
  const auto out = v.filter(
      {update(0, 0, {std::numeric_limits<float>::quiet_NaN()}),
       update(1, 0, {-std::numeric_limits<float>::infinity()}),
       update(2, 0, {1.0f})},
      0, {0.0f}, audit);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(audit.rejected_nonfinite, 2u);
}

TEST(Validator, ClipsMovementNormAgainstGlobalWeights) {
  ValidatorConfig cfg;
  cfg.max_update_norm = 2.0;
  UpdateValidator v(cfg);
  RoundAudit audit;
  // Movement (3, 4) has norm 5 → clipped to norm 2 → (1.2, 1.6) + global.
  const auto out =
      v.filter({update(0, 0, {4.0f, 5.0f})}, 0, {1.0f, 1.0f}, audit);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(audit.clipped, 1u);
  EXPECT_NEAR(out[0].weights[0], 1.0f + 1.2f, 1e-5f);
  EXPECT_NEAR(out[0].weights[1], 1.0f + 1.6f, 1e-5f);

  // Small movements pass through untouched.
  const auto small =
      v.filter({update(0, 0, {1.5f, 1.0f})}, 0, {1.0f, 1.0f}, audit);
  EXPECT_EQ(audit.clipped, 0u);
  EXPECT_FLOAT_EQ(small[0].weights[0], 1.5f);
}

TEST(Validator, RejectsWrongDimensionUpdates) {
  UpdateValidator v;
  RoundAudit audit;
  // Global model has 2 weights; 1- and 3-weight payloads are unaggregatable.
  const auto out = v.filter(
      {update(0, 0, {1.0f}), update(1, 0, {1.0f, 2.0f}),
       update(2, 0, {1.0f, 2.0f, 3.0f})},
      0, {0.0f, 0.0f}, audit);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].client_id, 1);
  EXPECT_EQ(audit.rejected_dimension, 2u);
  EXPECT_EQ(audit.rejected(), 2u);
}

TEST(Validator, DimensionRejectionIsUnconditional) {
  ValidatorConfig cfg;
  cfg.reject_nonfinite = false;
  cfg.reject_stale = false;
  cfg.reject_duplicates = false;
  UpdateValidator v(cfg);
  RoundAudit audit;
  const auto out = v.filter({update(0, 0, {1.0f, 2.0f, 3.0f})}, 0,
                            {0.0f, 0.0f}, audit);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(audit.rejected_dimension, 1u);
}

TEST(Validator, QuorumReportedNotEnforced) {
  ValidatorConfig cfg;
  cfg.min_updates = 3;
  UpdateValidator v(cfg);
  RoundAudit audit;
  const auto out = v.filter({update(0, 0, {1.0f})}, 0, {0.0f}, audit);
  EXPECT_EQ(out.size(), 1u);  // caller sees the updates...
  EXPECT_FALSE(audit.quorum_met);  // ...and the quorum verdict
}

TEST(Validator, ChecksCanBeDisabled) {
  ValidatorConfig cfg;
  cfg.reject_nonfinite = false;
  cfg.reject_stale = false;
  cfg.reject_duplicates = false;
  UpdateValidator v(cfg);
  RoundAudit audit;
  const auto out = v.filter(
      {update(0, 9, {std::numeric_limits<float>::quiet_NaN()}),
       update(0, 9, {1.0f})},
      0, {0.0f}, audit);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(audit.rejected(), 0u);
}

TEST(Validator, ClippedAggregateIsCountedNotSilentlyDowngraded) {
  // Clipping a forwarded aggregate forfeits its exact int128 terms; that
  // event must show up in the audit as clipped_aggregates, not vanish into
  // the generic clip counter.
  ValidatorConfig cfg;
  cfg.max_update_norm = 1.0;
  const std::vector<float> global = {0.0f, 0.0f};

  RoundGate gate(cfg, 0, global);
  WeightUpdate leaf = update(0, 0, {3.0f, 4.0f});
  EXPECT_TRUE(gate.admit(leaf));  // leaf clip: generic counter only

  WeightUpdate agg = update(-2, 0, {3.0f, 4.0f});
  agg.agg_terms = {to_fixed(30.0), to_fixed(40.0)};
  agg.agg_contributors = 5;
  EXPECT_TRUE(gate.admit(agg));
  EXPECT_TRUE(agg.agg_terms.empty());  // exactness forfeited...
  EXPECT_EQ(gate.audit().clipped, 2u);
  EXPECT_EQ(gate.audit().clipped_aggregates, 1u);  // ...and audited

  // A within-norm aggregate keeps its terms and adds to neither counter.
  WeightUpdate fine = update(-3, 0, {0.3f, 0.4f});
  fine.agg_terms = {to_fixed(3.0), to_fixed(4.0)};
  fine.agg_contributors = 5;
  EXPECT_TRUE(gate.admit(fine));
  EXPECT_FALSE(fine.agg_terms.empty());
  EXPECT_EQ(gate.audit().clipped_aggregates, 1u);
}

TEST(Validator, RejectsBadConfig) {
  ValidatorConfig bad_norm;
  bad_norm.max_update_norm = -1.0;
  EXPECT_THROW(UpdateValidator{bad_norm}, Error);
  ValidatorConfig bad_quorum;
  bad_quorum.min_updates = 0;
  EXPECT_THROW(UpdateValidator{bad_quorum}, Error);
}

}  // namespace
}  // namespace evfl::fl
