#include "forecast/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "metrics/regression.hpp"
#include "tensor/linalg.hpp"

namespace evfl::forecast {
namespace {

/// Seasonal series with mild noise: s[t] = 10 + 4 sin(2πt/24) + ε.
std::vector<float> seasonal_series(std::size_t n, float noise,
                                   std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.push_back(10.0f + 4.0f * std::sin(2.0f * 3.14159f * t / 24.0f) +
                  noise * rng.normal());
  }
  return out;
}

TEST(Linalg, CholeskyReconstructsSpd) {
  // A = Lᵀ... build SPD as MᵀM + I.
  tensor::Rng rng(1);
  tensor::Matrix m(6, 4);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  tensor::Matrix a = tensor::matmul_tn(m, m);
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 1.0f;

  const tensor::Matrix l = tensor::cholesky(a);
  const tensor::Matrix back = tensor::matmul_nt(l, l);
  EXPECT_LT(tensor::max_abs_diff(a, back), 1e-3f);
}

TEST(Linalg, CholeskyRejectsNonSpd) {
  tensor::Matrix bad = tensor::Matrix::from_rows({{1, 2}, {2, 1}});  // eig -1
  EXPECT_THROW(tensor::cholesky(bad), Error);
  tensor::Matrix rect(2, 3);
  EXPECT_THROW(tensor::cholesky(rect), Error);
}

TEST(Linalg, SolveSpdRoundTrip) {
  tensor::Rng rng(2);
  tensor::Matrix m(8, 5);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  tensor::Matrix a = tensor::matmul_tn(m, m);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 0.5f;
  tensor::Matrix x_true(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x_true(i, 0) = static_cast<float>(i) - 2;
  const tensor::Matrix b = tensor::matmul(a, x_true);
  const tensor::Matrix x = tensor::solve_spd(a, b);
  EXPECT_LT(tensor::max_abs_diff(x, x_true), 1e-3f);
}

TEST(Linalg, LeastSquaresRecoversLinearModel) {
  // y = 3 x1 - 2 x2 + 1.
  tensor::Rng rng(3);
  tensor::Matrix x(64, 3);
  tensor::Matrix y(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    const float x1 = rng.uniform(-1, 1), x2 = rng.uniform(-1, 1);
    x(r, 0) = 1.0f;
    x(r, 1) = x1;
    x(r, 2) = x2;
    y(r, 0) = 1.0f + 3.0f * x1 - 2.0f * x2;
  }
  const tensor::Matrix w = tensor::least_squares(x, y);
  EXPECT_NEAR(w(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(w(1, 0), 3.0f, 1e-2f);
  EXPECT_NEAR(w(2, 0), -2.0f, 1e-2f);
}

TEST(Baselines, PersistencePredictsPreviousValue) {
  PersistenceBaseline b;
  b.fit({1, 2, 3});
  const auto pred = b.predict({1, 2, 3, 4, 5}, 3);
  EXPECT_EQ(pred, (std::vector<float>{3, 4}));
  EXPECT_THROW(b.predict({1}, 0), Error);
}

TEST(Baselines, SeasonalNaivePredictsSeasonBack) {
  SeasonalNaiveBaseline b(3);
  b.fit({1, 2, 3, 4});
  const auto pred = b.predict({1, 2, 3, 4, 5, 6}, 4);
  EXPECT_EQ(pred, (std::vector<float>{2, 3}));
  EXPECT_THROW(b.predict({1, 2}, 1), Error);
}

TEST(Baselines, SeasonalNaiveNailsPurePeriodicSignal) {
  const auto series = seasonal_series(400, 0.0f, 4);
  SeasonalNaiveBaseline b(24);
  b.fit({series.begin(), series.begin() + 300});
  const auto pred = b.predict(series, 300);
  const std::vector<float> actual(series.begin() + 300, series.end());
  EXPECT_LT(metrics::mean_absolute_error(actual, pred), 1e-4);
}

TEST(Baselines, SeasonalArBeatsPersistenceOnNoisySeasonal) {
  const auto series = seasonal_series(600, 0.5f, 5);
  const std::size_t split = 480;
  const std::vector<float> train(series.begin(), series.begin() + split);
  const std::vector<float> actual(series.begin() + split, series.end());

  SeasonalArBaseline ar(3, 2, 24);
  ar.fit(train);
  PersistenceBaseline persist;
  persist.fit(train);

  const double ar_mae =
      metrics::mean_absolute_error(actual, ar.predict(series, split));
  const double persist_mae =
      metrics::mean_absolute_error(actual, persist.predict(series, split));
  EXPECT_LT(ar_mae, persist_mae);
}

TEST(Baselines, SeasonalArR2RegressionPin) {
  // Regression pin for the normal-equations path (least_squares ->
  // cholesky -> solve_spd).  The R2 below was captured before those
  // routines were rewritten for cache-friendly traversal; the rewrite
  // keeps every element's accumulation order, so the fit must not drift.
  const auto series = seasonal_series(600, 0.5f, 5);
  const std::size_t split = 480;
  SeasonalArBaseline ar(3, 2, 24);
  ar.fit({series.begin(), series.begin() + split});
  const auto pred = ar.predict(series, split);
  const std::vector<float> actual(series.begin() + split, series.end());
  EXPECT_NEAR(metrics::evaluate_regression(actual, pred).r2, 0.9547929673,
              1e-4);
}

TEST(Baselines, SeasonalArValidation) {
  SeasonalArBaseline ar(2, 1, 24);
  EXPECT_THROW(ar.predict({1, 2, 3}, 1), Error);  // before fit
  std::vector<float> tiny(10, 1.0f);
  EXPECT_THROW(ar.fit(tiny), Error);
  EXPECT_THROW(SeasonalArBaseline(0, 0, 24), Error);
}

TEST(Baselines, MlpLearnsSeasonalPattern) {
  const auto series = seasonal_series(500, 0.1f, 6);
  const std::size_t split = 400;
  MlpBaseline mlp(24, 16, 20, 7);
  mlp.fit({series.begin(), series.begin() + split});
  const auto pred = mlp.predict(series, split);
  const std::vector<float> actual(series.begin() + split, series.end());
  const metrics::RegressionMetrics m =
      metrics::evaluate_regression(actual, pred);
  EXPECT_GT(m.r2, 0.8);
}

TEST(Baselines, MlpValidation) {
  MlpBaseline mlp(8, 8, 2, 8);
  EXPECT_THROW(mlp.predict({1, 2, 3}, 1), Error);  // before fit
  std::vector<float> tiny(5, 1.0f);
  EXPECT_THROW(mlp.fit(tiny), Error);
}

TEST(Baselines, FactoryProducesAllFour) {
  const auto all = make_all_baselines(24);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "persistence");
  EXPECT_EQ(all[1]->name(), "seasonal-naive");
  EXPECT_EQ(all[2]->name(), "seasonal-AR(3,2x24)");
  EXPECT_EQ(all[3]->name(), "mlp");
}

}  // namespace
}  // namespace evfl::forecast
