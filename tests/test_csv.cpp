#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace evfl::data {
namespace {

TEST(Csv, SeriesRoundTripWithLabels) {
  TimeSeries s;
  s.name = "zone-x";
  s.values = {1.5f, 2.25f, -3.0f};
  s.labels = {0, 1, 0};

  std::stringstream buf;
  write_series_csv(s, buf);
  const TimeSeries back = read_series_csv(buf);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FLOAT_EQ(back.values[1], 2.25f);
  EXPECT_EQ(back.labels[1], 1);
  EXPECT_EQ(back.labels[2], 0);
}

TEST(Csv, SeriesRoundTripWithoutLabels) {
  TimeSeries s;
  s.values = {1, 2, 3};
  std::stringstream buf;
  write_series_csv(s, buf);
  const TimeSeries back = read_series_csv(buf);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_FALSE(back.has_labels());
}

TEST(Csv, RejectsEmptyAndMalformed) {
  {
    std::stringstream buf("");
    EXPECT_THROW(read_series_csv(buf), FormatError);
  }
  {
    std::stringstream buf("wrong,header\n1,2\n");
    EXPECT_THROW(read_series_csv(buf), FormatError);
  }
  {
    std::stringstream buf("index,value\n0,notanumber\n");
    EXPECT_THROW(read_series_csv(buf), FormatError);
  }
  {
    std::stringstream buf("index,value,label\n0,1.0\n");
    EXPECT_THROW(read_series_csv(buf), FormatError);
  }
}

TEST(Csv, FileRoundTrip) {
  TimeSeries s;
  s.values = {10, 20};
  s.labels = {1, 0};
  const std::string path = ::testing::TempDir() + "/evfl_test_series.csv";
  write_series_csv(s, path);
  const TimeSeries back = read_series_csv(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.labels[0], 1);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_series_csv("/nonexistent/nope.csv"), Error);
}

TEST(Csv, ColumnsWriterValidates) {
  const std::string path = ::testing::TempDir() + "/evfl_test_cols.csv";
  EXPECT_NO_THROW(write_columns_csv({"a", "b"}, {{1, 2}, {3, 4}}, path));
  EXPECT_THROW(write_columns_csv({"a"}, {{1}, {2}}, path), Error);
  EXPECT_THROW(write_columns_csv({"a", "b"}, {{1, 2}, {3}}, path), Error);
  EXPECT_THROW(write_columns_csv({}, {}, path), Error);
}

}  // namespace
}  // namespace evfl::data
