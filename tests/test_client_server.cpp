#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "fl/client.hpp"
#include "fl/server.hpp"
#include "nn/dense.hpp"

namespace evfl::fl {
namespace {

using tensor::Rng;
using tensor::Tensor3;

ModelFactory linear_factory() {
  return [](Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

/// y = slope * x data on [-1, 1].
void make_data(Tensor3& x, Tensor3& y, float slope, std::size_t n,
               std::uint64_t seed) {
  Rng rng(seed);
  x = Tensor3(n, 1, 1);
  y = Tensor3(n, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const float xi = rng.uniform(-1.0f, 1.0f);
    x(i, 0, 0) = xi;
    y(i, 0, 0) = slope * xi;
  }
}

TEST(Client, RequiresData) {
  ClientConfig cfg;
  EXPECT_THROW(Client(0, Tensor3(0, 1, 1), Tensor3(0, 1, 1), linear_factory(),
                      cfg, Rng(1)),
               Error);
  EXPECT_THROW(Client(0, Tensor3(4, 1, 1), Tensor3(3, 1, 1), linear_factory(),
                      cfg, Rng(1)),
               Error);
}

TEST(Client, TrainRoundAdoptsGlobalAndImproves) {
  Tensor3 x, y;
  make_data(x, y, 2.0f, 128, 1);
  ClientConfig cfg;
  cfg.epochs_per_round = 20;
  cfg.learning_rate = 0.05f;
  Client client(0, x, y, linear_factory(), cfg, Rng(2));
  EXPECT_EQ(client.sample_count(), 128u);

  GlobalModel global;
  global.round = 0;
  global.weights = {0.0f, 0.0f};  // start from zero
  const WeightUpdate u = client.train_round(global);
  EXPECT_EQ(u.client_id, 0);
  EXPECT_EQ(u.round, 0u);
  EXPECT_EQ(u.sample_count, 128u);
  ASSERT_EQ(u.weights.size(), 2u);
  // Should have moved towards slope 2, bias 0.
  EXPECT_NEAR(u.weights[0], 2.0f, 0.5f);
  EXPECT_NEAR(u.weights[1], 0.0f, 0.3f);
  EXPECT_GT(client.last_train_seconds(), 0.0);
}

TEST(Client, ServeHandlesRoundsOverNetwork) {
  Tensor3 x, y;
  make_data(x, y, 1.0f, 64, 3);
  ClientConfig cfg;
  cfg.epochs_per_round = 2;
  Client client(5, x, y, linear_factory(), cfg, Rng(4));

  InMemoryNetwork net;
  GlobalModel global;
  global.weights = client.initial_weights();
  net.send(Message{kServerNode, 5, serialize(global)});
  client.serve(net, 1, 1000.0);

  const auto up = net.try_receive(kServerNode);
  ASSERT_TRUE(up.has_value());
  const WeightUpdate u = deserialize_update(up->bytes);
  EXPECT_EQ(u.client_id, 5);
}

TEST(Client, ServeExitsOnTimeout) {
  Tensor3 x, y;
  make_data(x, y, 1.0f, 8, 5);
  ClientConfig cfg;
  Client client(1, x, y, linear_factory(), cfg, Rng(6));
  InMemoryNetwork net;
  client.serve(net, 3, 10.0);  // nothing arrives; returns promptly
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(Client, ServeRetriesUntilBudgetNotBackoffRampExhausted) {
  // With a tiny backoff ramp the exponential waits sum to ~20 ms; the client
  // must keep retrying at the per-attempt ceiling until the full budget is
  // spent, so a broadcast arriving well after the ramp still gets served.
  Tensor3 x, y;
  make_data(x, y, 1.0f, 16, 7);
  ClientConfig cfg;
  cfg.epochs_per_round = 1;
  Client client(3, x, y, linear_factory(), cfg, Rng(8));
  InMemoryNetwork net;

  ServeOptions opts;
  opts.receive_timeout_ms = 5'000.0;
  opts.backoff.initial_ms = 1.0;
  opts.backoff.multiplier = 2.0;
  opts.backoff.max_wait_ms = 4.0;  // ramp: 1+2+4+4+... — ceiling after 3

  std::thread server_side([&net, &client] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    GlobalModel global;
    global.weights = client.initial_weights();
    net.send(Message{kServerNode, 3, serialize(global)});
  });
  client.serve(net, 1, opts);
  server_side.join();

  // The late broadcast was received and answered.
  EXPECT_TRUE(net.try_receive(kServerNode).has_value());
}

TEST(Client, ServeExitsPromptlyOnShutdownBroadcast) {
  Tensor3 x, y;
  make_data(x, y, 1.0f, 8, 9);
  ClientConfig cfg;
  Client client(4, x, y, linear_factory(), cfg, Rng(10));
  InMemoryNetwork net;
  net.send_control(
      Message{kServerNode, 4, serialize(GlobalModel{kShutdownRound, {}})});
  // Huge budget and 5 pending rounds: only the shutdown makes this return.
  ServeOptions opts;
  opts.receive_timeout_ms = 600'000.0;
  client.serve(net, 5, opts);
  EXPECT_EQ(net.stats().messages_sent, 0u);  // no update was produced
}

TEST(Server, BroadcastCarriesRoundAndWeights) {
  Server server({1.0f, 2.0f});
  const GlobalModel g = server.broadcast();
  EXPECT_EQ(g.round, 0u);
  EXPECT_EQ(g.weights, (std::vector<float>{1.0f, 2.0f}));
}

TEST(Server, FinishRoundAggregatesAndAdvances) {
  Server server({0.0f});
  WeightUpdate u;
  u.client_id = 0;
  u.sample_count = 10;
  u.weights = {4.0f};
  const double delta = server.finish_round({u});
  EXPECT_EQ(server.round(), 1u);
  EXPECT_FLOAT_EQ(server.weights()[0], 4.0f);
  EXPECT_DOUBLE_EQ(delta, 4.0);
}

TEST(Server, EmptyRoundKeepsWeights) {
  Server server({3.0f});
  const double delta = server.finish_round({});
  EXPECT_EQ(server.round(), 1u);
  EXPECT_FLOAT_EQ(server.weights()[0], 3.0f);
  EXPECT_EQ(delta, 0.0);
}

TEST(Server, AllRejectedRoundKeepsWeightsAndAdvancesRound) {
  // Every arrival is non-finite: the validator rejects them all, the global
  // weights stay untouched, and the round counter still advances so the
  // protocol makes progress instead of wedging on a poisoned round.
  Server server({1.5f, -2.5f});
  const std::vector<float> before = server.weights();

  WeightUpdate nan_update;
  nan_update.client_id = 0;
  nan_update.round = 0;
  nan_update.sample_count = 8;
  nan_update.weights = {std::numeric_limits<float>::quiet_NaN(), 1.0f};
  WeightUpdate inf_update;
  inf_update.client_id = 1;
  inf_update.round = 0;
  inf_update.sample_count = 8;
  inf_update.weights = {0.0f, std::numeric_limits<float>::infinity()};

  const double delta = server.finish_round({nan_update, inf_update});
  EXPECT_EQ(delta, 0.0);
  EXPECT_EQ(server.weights(), before);
  EXPECT_EQ(server.round(), 1u);
  EXPECT_EQ(server.last_audit().rejected_nonfinite, 2u);
  EXPECT_EQ(server.last_audit().accepted, 0u);
}

TEST(Server, RejectsDimensionMismatch) {
  // A wrong-dimension payload is Byzantine input like any other: the round
  // degrades (update rejected, weights unchanged) — the server never aborts.
  Server server({1.0f, 2.0f});
  WeightUpdate u;
  u.sample_count = 1;
  u.weights = {1.0f};
  const double delta = server.finish_round({u});
  EXPECT_EQ(delta, 0.0);
  EXPECT_EQ(server.weights(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(server.round(), 1u);
  EXPECT_EQ(server.last_audit().rejected_dimension, 1u);
  EXPECT_THROW(Server({}), Error);
}

}  // namespace
}  // namespace evfl::fl
