#include "tensor/tensor3.hpp"

#include <gtest/gtest.h>

namespace evfl::tensor {
namespace {

Tensor3 iota_tensor(std::size_t n, std::size_t t, std::size_t f) {
  Tensor3 x(n, t, f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(i);
  }
  return x;
}

TEST(Tensor3, ShapeAndIndexing) {
  Tensor3 x = iota_tensor(2, 3, 4);
  EXPECT_EQ(x.batch(), 2u);
  EXPECT_EQ(x.time(), 3u);
  EXPECT_EQ(x.features(), 4u);
  // Row-major: (n, t, f) -> ((n*T + t)*F + f)
  EXPECT_EQ(x(0, 0, 0), 0.0f);
  EXPECT_EQ(x(0, 1, 0), 4.0f);
  EXPECT_EQ(x(1, 0, 0), 12.0f);
  EXPECT_EQ(x(1, 2, 3), 23.0f);
}

TEST(Tensor3, TimestepRoundTrip) {
  Tensor3 x = iota_tensor(2, 3, 2);
  Matrix m = x.timestep(1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 0), x(0, 1, 0));
  EXPECT_EQ(m(1, 1), x(1, 1, 1));

  Matrix repl(2, 2, -1.0f);
  x.set_timestep(1, repl);
  EXPECT_EQ(x(0, 1, 0), -1.0f);
  EXPECT_EQ(x(1, 1, 1), -1.0f);
  // Neighbouring timesteps untouched.
  EXPECT_EQ(x(0, 0, 0), 0.0f);
  EXPECT_EQ(x(0, 2, 0), 4.0f);
}

TEST(Tensor3, AddTimestepAccumulates) {
  Tensor3 x(1, 2, 2);
  Matrix m(1, 2, 3.0f);
  x.add_timestep(0, m);
  x.add_timestep(0, m);
  EXPECT_EQ(x(0, 0, 0), 6.0f);
  EXPECT_EQ(x(0, 1, 0), 0.0f);
}

TEST(Tensor3, SetTimestepShapeMismatchThrows) {
  Tensor3 x(2, 2, 2);
  Matrix bad(3, 2);
  EXPECT_THROW(x.set_timestep(0, bad), ShapeError);
}

TEST(Tensor3, SampleRoundTrip) {
  Tensor3 x = iota_tensor(3, 2, 2);
  Matrix s = x.sample(1);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), x(1, 0, 0));
  Matrix repl(2, 2, 9.0f);
  x.set_sample(1, repl);
  EXPECT_EQ(x(1, 1, 1), 9.0f);
  EXPECT_EQ(x(0, 0, 0), 0.0f);
}

TEST(Tensor3, FlattenRowsRoundTrip) {
  Tensor3 x = iota_tensor(2, 3, 4);
  Matrix flat = x.flatten_rows();
  EXPECT_EQ(flat.rows(), 6u);
  EXPECT_EQ(flat.cols(), 4u);
  Tensor3 back = Tensor3::from_flat_rows(flat, 2, 3);
  EXPECT_LT(max_abs_diff(x, back), 1e-7f);
}

TEST(Tensor3, FromFlatRowsBadSplitThrows) {
  Matrix flat(5, 2);
  EXPECT_THROW(Tensor3::from_flat_rows(flat, 2, 3), ShapeError);
}

TEST(Tensor3, BatchSlice) {
  Tensor3 x = iota_tensor(4, 2, 1);
  Tensor3 s = x.batch_slice(1, 3);
  EXPECT_EQ(s.batch(), 2u);
  EXPECT_EQ(s(0, 0, 0), x(1, 0, 0));
  EXPECT_EQ(s(1, 1, 0), x(2, 1, 0));
  EXPECT_THROW(x.batch_slice(3, 5), Error);
}

TEST(Tensor3, Gather) {
  Tensor3 x = iota_tensor(4, 1, 2);
  Tensor3 g = x.gather({3, 0, 3});
  EXPECT_EQ(g.batch(), 3u);
  EXPECT_EQ(g(0, 0, 0), x(3, 0, 0));
  EXPECT_EQ(g(1, 0, 1), x(0, 0, 1));
  EXPECT_EQ(g(2, 0, 0), x(3, 0, 0));
  EXPECT_THROW(x.gather({4}), Error);
}

TEST(Tensor3, Arithmetic) {
  Tensor3 a = iota_tensor(1, 2, 2);
  Tensor3 b = iota_tensor(1, 2, 2);
  a += b;
  EXPECT_EQ(a(0, 1, 1), 6.0f);
  a -= b;
  EXPECT_EQ(a(0, 1, 1), 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a(0, 1, 0), 4.0f);
  Tensor3 c(2, 2, 2);
  EXPECT_THROW(a += c, ShapeError);
}

TEST(Tensor3, SumAndNorm) {
  Tensor3 x = iota_tensor(1, 1, 3);  // 0, 1, 2
  EXPECT_FLOAT_EQ(x.sum(), 3.0f);
  EXPECT_FLOAT_EQ(x.squared_norm(), 5.0f);
}

}  // namespace
}  // namespace evfl::tensor
