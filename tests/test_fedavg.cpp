#include "fl/fedavg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {
namespace {

WeightUpdate make_update(int id, std::uint64_t samples,
                         std::vector<float> weights) {
  WeightUpdate u;
  u.client_id = id;
  u.sample_count = samples;
  u.weights = std::move(weights);
  return u;
}

TEST(FedAvg, EqualSamplesIsPlainMean) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 100, {1.0f, 2.0f}),
      make_update(1, 100, {3.0f, 6.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
  EXPECT_FLOAT_EQ(avg[1], 4.0f);
}

TEST(FedAvg, SampleWeighting) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.0f}),
      make_update(1, 100, {4.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_FLOAT_EQ(avg[0], 1.0f);  // (300*0 + 100*4) / 400
}

TEST(FedAvg, UnweightedIgnoresSampleCounts) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.0f}),
      make_update(1, 100, {4.0f}),
  };
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  const auto avg = fed_avg(updates, cfg);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
}

TEST(FedAvg, SingleClientIsIdentity) {
  const std::vector<WeightUpdate> updates = {make_update(0, 5, {1, 2, 3})};
  EXPECT_EQ(fed_avg(updates), (std::vector<float>{1, 2, 3}));
}

TEST(FedAvg, DimensionMismatchThrows) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 1, {1.0f}),
      make_update(1, 1, {1.0f, 2.0f}),
  };
  EXPECT_THROW(fed_avg(updates), Error);
}

TEST(FedAvg, EmptyInputsThrow) {
  EXPECT_THROW(fed_avg({}), Error);
  EXPECT_THROW(fed_avg({make_update(0, 1, {})}), Error);
}

TEST(FedAvg, ZeroSamplesWithWeightingThrows) {
  const std::vector<WeightUpdate> updates = {make_update(0, 0, {1.0f})};
  EXPECT_THROW(fed_avg(updates), Error);
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  EXPECT_NO_THROW(fed_avg(updates, cfg));
}

TEST(FedAvg, AverageStaysWithinHull) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 10, {-1.0f, 5.0f}),
      make_update(1, 20, {2.0f, 1.0f}),
      make_update(2, 30, {0.5f, 3.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_GE(avg[0], -1.0f);
  EXPECT_LE(avg[0], 2.0f);
  EXPECT_GE(avg[1], 1.0f);
  EXPECT_LE(avg[1], 5.0f);
}

TEST(WeightsHelpers, AxpyAndDistance) {
  std::vector<float> a = {1.0f, 2.0f};
  axpy(a, 2.0, {0.5f, 0.5f});
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
  EXPECT_DOUBLE_EQ(l2_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_THROW(axpy(a, 1.0, {1.0f}), Error);
  EXPECT_THROW(l2_distance({1.0f}, {1.0f, 2.0f}), Error);
}

}  // namespace
}  // namespace evfl::fl
