#include "fl/fedavg.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {
namespace {

WeightUpdate make_update(int id, std::uint64_t samples,
                         std::vector<float> weights) {
  WeightUpdate u;
  u.client_id = id;
  u.sample_count = samples;
  u.weights = std::move(weights);
  return u;
}

TEST(FedAvg, EqualSamplesIsPlainMean) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 100, {1.0f, 2.0f}),
      make_update(1, 100, {3.0f, 6.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
  EXPECT_FLOAT_EQ(avg[1], 4.0f);
}

TEST(FedAvg, SampleWeighting) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.0f}),
      make_update(1, 100, {4.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_FLOAT_EQ(avg[0], 1.0f);  // (300*0 + 100*4) / 400
}

TEST(FedAvg, UnweightedIgnoresSampleCounts) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.0f}),
      make_update(1, 100, {4.0f}),
  };
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  const auto avg = fed_avg(updates, cfg);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
}

TEST(FedAvg, SingleClientIsIdentity) {
  const std::vector<WeightUpdate> updates = {make_update(0, 5, {1, 2, 3})};
  EXPECT_EQ(fed_avg(updates), (std::vector<float>{1, 2, 3}));
}

TEST(FedAvg, DimensionMismatchThrows) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 1, {1.0f}),
      make_update(1, 1, {1.0f, 2.0f}),
  };
  EXPECT_THROW(fed_avg(updates), Error);
}

TEST(FedAvg, EmptyInputsThrow) {
  EXPECT_THROW(fed_avg({}), Error);
  EXPECT_THROW(fed_avg({make_update(0, 1, {})}), Error);
}

TEST(FedAvg, ZeroSamplesWithWeightingThrows) {
  const std::vector<WeightUpdate> updates = {make_update(0, 0, {1.0f})};
  EXPECT_THROW(fed_avg(updates), Error);
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  EXPECT_NO_THROW(fed_avg(updates, cfg));
}

TEST(FedAvg, AverageStaysWithinHull) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 10, {-1.0f, 5.0f}),
      make_update(1, 20, {2.0f, 1.0f}),
      make_update(2, 30, {0.5f, 3.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_GE(avg[0], -1.0f);
  EXPECT_LE(avg[0], 2.0f);
  EXPECT_GE(avg[1], 1.0f);
  EXPECT_LE(avg[1], 5.0f);
}

TEST(FedAccumulator, StreamingMatchesBatch) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.125f, -2.5f}),
      make_update(1, 100, {4.0f, 0.75f}),
      make_update(2, 57, {-1.25f, 3.5f}),
  };
  const std::vector<float> batch = fed_avg(updates);
  FedAccumulator acc;
  acc.reset(2);
  for (const WeightUpdate& u : updates) acc.add_update(u.weights, u.sample_count);
  std::vector<float> streamed;
  acc.mean(streamed);
  EXPECT_EQ(streamed, batch);  // bit-identical, not just close
}

TEST(FedAccumulator, GroupingInvarianceWithHeterogeneousSamples) {
  // The satellite-1 property at the accumulator level: folding per-group
  // fixed-point sums with *cumulative* sample counts reproduces the flat
  // weighted mean bit for bit, whatever the grouping.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 12; ++i) {
    updates.push_back(make_update(
        i, 10 + 37 * static_cast<std::uint64_t>(i),
        {0.1f * static_cast<float>(i) - 0.4f,
         1.0f / (1.0f + static_cast<float>(i))}));
  }

  FedAccumulator flat;
  flat.reset(2);
  for (const WeightUpdate& u : updates) flat.add_update(u.weights, u.sample_count);
  std::vector<float> flat_mean;
  flat.mean(flat_mean);

  for (const std::size_t groups : {1u, 3u, 4u}) {
    FedAccumulator parent;
    parent.reset(2);
    for (std::size_t g = 0; g < groups; ++g) {
      FedAccumulator shard;
      shard.reset(2);
      std::uint64_t cumulative = 0;
      for (std::size_t i = g; i < updates.size(); i += groups) {
        shard.add_update(updates[i].weights, updates[i].sample_count);
        cumulative += updates[i].sample_count;
      }
      parent.add_terms(shard.terms(), cumulative, shard.contributors());
    }
    std::vector<float> tree_mean;
    parent.mean(tree_mean);
    EXPECT_EQ(tree_mean, flat_mean) << groups << " groups";
  }
}

TEST(FedAvg, FoldsForwardedAggregates) {
  // An update carrying agg_terms is a shard's exact partial sum; fed_avg
  // must weight it by its cumulative sample count.
  FedAccumulator shard;
  shard.reset(1);
  shard.add_update({2.0f}, 300);  // leaves: 300 samples at 2.0
  shard.add_update({6.0f}, 100);  //         100 samples at 6.0

  WeightUpdate forwarded;
  forwarded.client_id = -2;
  forwarded.sample_count = 400;  // cumulative
  forwarded.weights = {3.0f};    // the mean view (validator's concern)
  forwarded.agg_terms = shard.terms();
  forwarded.agg_contributors = 2;
  const std::vector<WeightUpdate> mixed = {
      forwarded, make_update(9, 400, {5.0f})};
  const std::vector<float> avg = fed_avg(mixed);
  // (300*2 + 100*6 + 400*5) / 800 = 4.0
  EXPECT_FLOAT_EQ(avg[0], 4.0f);

  // Unweighted mode folds by contributor count.  The shard must have been
  // accumulated under the same (unweighted) config — weight 1 per leaf.
  FedAccumulator flat_shard;
  flat_shard.reset(1);
  flat_shard.add_update({2.0f}, 1);
  flat_shard.add_update({6.0f}, 1);
  WeightUpdate forwarded_unweighted = forwarded;
  forwarded_unweighted.agg_terms = flat_shard.terms();
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  const std::vector<float> unweighted =
      fed_avg({forwarded_unweighted, make_update(9, 400, {5.0f})}, cfg);
  EXPECT_NEAR(unweighted[0], (2.0 + 6.0 + 5.0) / 3.0, 1e-6);
}

TEST(FedAvg, ToFixedHandlesNonFiniteAndCap) {
  EXPECT_EQ(to_fixed(std::numeric_limits<double>::quiet_NaN()),
            static_cast<ExactTerm>(0));
  EXPECT_EQ(to_fixed(std::numeric_limits<double>::infinity()),
            to_fixed(kExactTermCap));
  EXPECT_EQ(to_fixed(-std::numeric_limits<double>::infinity()),
            to_fixed(-kExactTermCap));
  EXPECT_EQ(to_fixed(1.0), static_cast<ExactTerm>(1) << 64);
}

TEST(AggregationRule, ParseRoundTripsAndRejectsUnknown) {
  for (const AggregationRule r :
       {AggregationRule::kMean, AggregationRule::kTrimmedMean,
        AggregationRule::kCoordinateMedian, AggregationRule::kNormBoundedMean,
        AggregationRule::kMultiKrum}) {
    EXPECT_EQ(parse_aggregation_rule(to_string(r)), r);
  }
  EXPECT_THROW(parse_aggregation_rule("krum!"), Error);
  EXPECT_THROW(parse_aggregation_rule(""), Error);
}

TEST(RobustRules, MeanRuleStaysBitIdenticalToStreamingPath) {
  // kMean through the rule dispatch must be the exact int128 path, not a
  // float re-implementation.
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.125f, -2.5f}),
      make_update(1, 100, {4.0f, 0.75f}),
      make_update(2, 57, {-1.25f, 3.5f}),
  };
  FedAvgConfig cfg;
  cfg.rule = AggregationRule::kMean;
  EXPECT_EQ(fed_avg(updates, cfg), fed_avg(updates));
}

TEST(RobustRules, TrimmedMeanDiscardsExtremes) {
  // One colluding pair of extreme values per side; trim 0.25 of 8 = 2 each
  // side, so both poisoned rows vanish and the mean is over honest rows.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 6; ++i) updates.push_back(make_update(i, 10, {1.0f}));
  updates.push_back(make_update(6, 10, {1000.0f}));
  updates.push_back(make_update(7, 10, {-1000.0f}));
  FedAvgConfig cfg;
  cfg.rule = AggregationRule::kTrimmedMean;
  cfg.trim_fraction = 0.25;
  const auto avg = fed_avg(updates, cfg);
  EXPECT_NEAR(avg[0], 1.0f, 1e-6f);
}

TEST(RobustRules, CoordinateMedianResistsNearHalfCorruption) {
  // 3 of 7 poisoned: the per-coordinate median still lands on an honest
  // value.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 4; ++i)
    updates.push_back(make_update(i, 10, {2.0f, -1.0f}));
  for (int i = 4; i < 7; ++i)
    updates.push_back(make_update(i, 10, {1e6f, -1e6f}));
  FedAvgConfig cfg;
  cfg.rule = AggregationRule::kCoordinateMedian;
  const auto avg = fed_avg(updates, cfg);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
  EXPECT_FLOAT_EQ(avg[1], -1.0f);
}

TEST(RobustRules, OrderStatisticRulesIgnoreSampleCountInflation) {
  // An attacker claiming 10^6 samples must still get exactly one vote in
  // rank-based rules — otherwise sample_count is a free amplifier.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 4; ++i) updates.push_back(make_update(i, 10, {1.0f}));
  updates.push_back(make_update(4, 1'000'000, {1000.0f}));
  for (const AggregationRule rule : {AggregationRule::kTrimmedMean,
                                     AggregationRule::kCoordinateMedian}) {
    FedAvgConfig cfg;
    cfg.rule = rule;
    cfg.trim_fraction = 0.25;
    const auto avg = fed_avg(updates, cfg);
    EXPECT_NEAR(avg[0], 1.0f, 1e-6f) << to_string(rule);
  }
}

TEST(RobustRules, NormBoundedMeanAdaptiveBoundCapsOutlier) {
  // With norm_bound == 0 the bound is the median movement norm, so a huge
  // movement is rescaled onto the honest scale instead of dominating.
  const std::vector<float> reference = {0.0f, 0.0f};
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 4; ++i)
    updates.push_back(make_update(i, 10, {0.1f, 0.0f}));
  updates.push_back(make_update(4, 10, {1000.0f, 0.0f}));
  FedAvgConfig cfg;
  cfg.rule = AggregationRule::kNormBoundedMean;
  const auto avg = fed_avg(updates, cfg, &reference);
  // Outlier clamped to norm 0.1: mean <= (4*0.1 + 0.1)/5 = 0.1.
  EXPECT_LE(avg[0], 0.1f + 1e-6f);
  EXPECT_GT(avg[0], 0.0f);
}

TEST(RobustRules, MultiKrumExcludesColludingCluster) {
  // 6 honest near 1.0, 3 colluders at 50.0: with f = 3 the colluders score
  // worse (their n-f-2 = 4 nearest neighbours include honest rows far
  // away) and none is selected.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 6; ++i) {
    updates.push_back(
        make_update(i, 10, {1.0f + 0.01f * static_cast<float>(i)}));
  }
  for (int i = 6; i < 9; ++i) updates.push_back(make_update(i, 10, {50.0f}));
  FedAvgConfig cfg;
  cfg.rule = AggregationRule::kMultiKrum;
  cfg.krum_assumed_byzantine = 3;
  const auto avg = fed_avg(updates, cfg);
  EXPECT_GT(avg[0], 0.9f);
  EXPECT_LT(avg[0], 1.1f);
}

TEST(RobustRules, EveryRobustRuleHoldsUnderMinorityAttack) {
  // The f < n/2 contract from the threat model: 4 of 10 colluders pulling
  // toward +100 move every robust rule by at most the honest spread, while
  // plain mean is dragged over 39.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 6; ++i) {
    updates.push_back(
        make_update(i, 10, {0.5f + 0.02f * static_cast<float>(i)}));
  }
  for (int i = 6; i < 10; ++i) {
    updates.push_back(make_update(i, 10, {100.0f}));
  }
  const std::vector<float> reference = {0.5f};
  const float honest_mean = 0.55f;

  FedAvgConfig mean_cfg;
  const auto mean = fed_avg(updates, mean_cfg, &reference);
  EXPECT_GT(mean[0], 39.0f);  // the attack works on plain FedAvg

  for (const AggregationRule rule :
       {AggregationRule::kTrimmedMean, AggregationRule::kCoordinateMedian,
        AggregationRule::kNormBoundedMean, AggregationRule::kMultiKrum}) {
    FedAvgConfig cfg;
    cfg.rule = rule;
    cfg.trim_fraction = 0.4;
    // 4 attackers at n = 10 sits past Krum's n >= 2f+3 guarantee (f is
    // clamped to 3), so the default m = n - f would admit one colluder;
    // a deployment assuming 4 Byzantine picks m = 6 survivors explicitly.
    cfg.krum_assumed_byzantine = 4;
    cfg.krum_select = 6;
    const auto avg = fed_avg(updates, cfg, &reference);
    EXPECT_NEAR(avg[0], honest_mean, 0.2f) << to_string(rule);
  }
}

TEST(RobustRules, DeterministicAcrossRepeats) {
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 9; ++i) {
    updates.push_back(make_update(i, 10 + i, {0.1f * static_cast<float>(i),
                                              1.0f - 0.05f * i}));
  }
  const std::vector<float> reference = {0.0f, 0.5f};
  for (const AggregationRule rule :
       {AggregationRule::kTrimmedMean, AggregationRule::kCoordinateMedian,
        AggregationRule::kNormBoundedMean, AggregationRule::kMultiKrum}) {
    FedAvgConfig cfg;
    cfg.rule = rule;
    const auto a = fed_avg(updates, cfg, &reference);
    const auto b = fed_avg(updates, cfg, &reference);
    EXPECT_EQ(a, b) << to_string(rule);
  }
}

TEST(WeightsHelpers, AxpyAndDistance) {
  std::vector<float> a = {1.0f, 2.0f};
  axpy(a, 2.0, {0.5f, 0.5f});
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
  EXPECT_DOUBLE_EQ(l2_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_THROW(axpy(a, 1.0, {1.0f}), Error);
  EXPECT_THROW(l2_distance({1.0f}, {1.0f, 2.0f}), Error);
}

}  // namespace
}  // namespace evfl::fl
