#include "fl/fedavg.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {
namespace {

WeightUpdate make_update(int id, std::uint64_t samples,
                         std::vector<float> weights) {
  WeightUpdate u;
  u.client_id = id;
  u.sample_count = samples;
  u.weights = std::move(weights);
  return u;
}

TEST(FedAvg, EqualSamplesIsPlainMean) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 100, {1.0f, 2.0f}),
      make_update(1, 100, {3.0f, 6.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
  EXPECT_FLOAT_EQ(avg[1], 4.0f);
}

TEST(FedAvg, SampleWeighting) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.0f}),
      make_update(1, 100, {4.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_FLOAT_EQ(avg[0], 1.0f);  // (300*0 + 100*4) / 400
}

TEST(FedAvg, UnweightedIgnoresSampleCounts) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.0f}),
      make_update(1, 100, {4.0f}),
  };
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  const auto avg = fed_avg(updates, cfg);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
}

TEST(FedAvg, SingleClientIsIdentity) {
  const std::vector<WeightUpdate> updates = {make_update(0, 5, {1, 2, 3})};
  EXPECT_EQ(fed_avg(updates), (std::vector<float>{1, 2, 3}));
}

TEST(FedAvg, DimensionMismatchThrows) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 1, {1.0f}),
      make_update(1, 1, {1.0f, 2.0f}),
  };
  EXPECT_THROW(fed_avg(updates), Error);
}

TEST(FedAvg, EmptyInputsThrow) {
  EXPECT_THROW(fed_avg({}), Error);
  EXPECT_THROW(fed_avg({make_update(0, 1, {})}), Error);
}

TEST(FedAvg, ZeroSamplesWithWeightingThrows) {
  const std::vector<WeightUpdate> updates = {make_update(0, 0, {1.0f})};
  EXPECT_THROW(fed_avg(updates), Error);
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  EXPECT_NO_THROW(fed_avg(updates, cfg));
}

TEST(FedAvg, AverageStaysWithinHull) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 10, {-1.0f, 5.0f}),
      make_update(1, 20, {2.0f, 1.0f}),
      make_update(2, 30, {0.5f, 3.0f}),
  };
  const auto avg = fed_avg(updates);
  EXPECT_GE(avg[0], -1.0f);
  EXPECT_LE(avg[0], 2.0f);
  EXPECT_GE(avg[1], 1.0f);
  EXPECT_LE(avg[1], 5.0f);
}

TEST(FedAccumulator, StreamingMatchesBatch) {
  const std::vector<WeightUpdate> updates = {
      make_update(0, 300, {0.125f, -2.5f}),
      make_update(1, 100, {4.0f, 0.75f}),
      make_update(2, 57, {-1.25f, 3.5f}),
  };
  const std::vector<float> batch = fed_avg(updates);
  FedAccumulator acc;
  acc.reset(2);
  for (const WeightUpdate& u : updates) acc.add_update(u.weights, u.sample_count);
  std::vector<float> streamed;
  acc.mean(streamed);
  EXPECT_EQ(streamed, batch);  // bit-identical, not just close
}

TEST(FedAccumulator, GroupingInvarianceWithHeterogeneousSamples) {
  // The satellite-1 property at the accumulator level: folding per-group
  // fixed-point sums with *cumulative* sample counts reproduces the flat
  // weighted mean bit for bit, whatever the grouping.
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 12; ++i) {
    updates.push_back(make_update(
        i, 10 + 37 * static_cast<std::uint64_t>(i),
        {0.1f * static_cast<float>(i) - 0.4f,
         1.0f / (1.0f + static_cast<float>(i))}));
  }

  FedAccumulator flat;
  flat.reset(2);
  for (const WeightUpdate& u : updates) flat.add_update(u.weights, u.sample_count);
  std::vector<float> flat_mean;
  flat.mean(flat_mean);

  for (const std::size_t groups : {1u, 3u, 4u}) {
    FedAccumulator parent;
    parent.reset(2);
    for (std::size_t g = 0; g < groups; ++g) {
      FedAccumulator shard;
      shard.reset(2);
      std::uint64_t cumulative = 0;
      for (std::size_t i = g; i < updates.size(); i += groups) {
        shard.add_update(updates[i].weights, updates[i].sample_count);
        cumulative += updates[i].sample_count;
      }
      parent.add_terms(shard.terms(), cumulative, shard.contributors());
    }
    std::vector<float> tree_mean;
    parent.mean(tree_mean);
    EXPECT_EQ(tree_mean, flat_mean) << groups << " groups";
  }
}

TEST(FedAvg, FoldsForwardedAggregates) {
  // An update carrying agg_terms is a shard's exact partial sum; fed_avg
  // must weight it by its cumulative sample count.
  FedAccumulator shard;
  shard.reset(1);
  shard.add_update({2.0f}, 300);  // leaves: 300 samples at 2.0
  shard.add_update({6.0f}, 100);  //         100 samples at 6.0

  WeightUpdate forwarded;
  forwarded.client_id = -2;
  forwarded.sample_count = 400;  // cumulative
  forwarded.weights = {3.0f};    // the mean view (validator's concern)
  forwarded.agg_terms = shard.terms();
  forwarded.agg_contributors = 2;
  const std::vector<WeightUpdate> mixed = {
      forwarded, make_update(9, 400, {5.0f})};
  const std::vector<float> avg = fed_avg(mixed);
  // (300*2 + 100*6 + 400*5) / 800 = 4.0
  EXPECT_FLOAT_EQ(avg[0], 4.0f);

  // Unweighted mode folds by contributor count.  The shard must have been
  // accumulated under the same (unweighted) config — weight 1 per leaf.
  FedAccumulator flat_shard;
  flat_shard.reset(1);
  flat_shard.add_update({2.0f}, 1);
  flat_shard.add_update({6.0f}, 1);
  WeightUpdate forwarded_unweighted = forwarded;
  forwarded_unweighted.agg_terms = flat_shard.terms();
  FedAvgConfig cfg;
  cfg.weighted_by_samples = false;
  const std::vector<float> unweighted =
      fed_avg({forwarded_unweighted, make_update(9, 400, {5.0f})}, cfg);
  EXPECT_NEAR(unweighted[0], (2.0 + 6.0 + 5.0) / 3.0, 1e-6);
}

TEST(FedAvg, ToFixedHandlesNonFiniteAndCap) {
  EXPECT_EQ(to_fixed(std::numeric_limits<double>::quiet_NaN()),
            static_cast<ExactTerm>(0));
  EXPECT_EQ(to_fixed(std::numeric_limits<double>::infinity()),
            to_fixed(kExactTermCap));
  EXPECT_EQ(to_fixed(-std::numeric_limits<double>::infinity()),
            to_fixed(-kExactTermCap));
  EXPECT_EQ(to_fixed(1.0), static_cast<ExactTerm>(1) << 64);
}

TEST(WeightsHelpers, AxpyAndDistance) {
  std::vector<float> a = {1.0f, 2.0f};
  axpy(a, 2.0, {0.5f, 0.5f});
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
  EXPECT_DOUBLE_EQ(l2_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_THROW(axpy(a, 1.0, {1.0f}), Error);
  EXPECT_THROW(l2_distance({1.0f}, {1.0f, 2.0f}), Error);
}

}  // namespace
}  // namespace evfl::fl
