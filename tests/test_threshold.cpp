#include "anomaly/threshold.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace evfl::anomaly {
namespace {

TEST(Percentile, KnownValues) {
  const std::vector<float> v = {1, 2, 3, 4, 5};
  EXPECT_FLOAT_EQ(percentile(v, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(percentile(v, 100.0), 5.0f);
  EXPECT_FLOAT_EQ(percentile(v, 50.0), 3.0f);
  EXPECT_FLOAT_EQ(percentile(v, 25.0), 2.0f);
  // Interpolated rank: 98% of (n-1)=4 -> 3.92 -> 4 + 0.92*(5-4).
  EXPECT_NEAR(percentile(v, 98.0), 4.92f, 1e-4f);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_FLOAT_EQ(percentile({5, 1, 3, 2, 4}, 50.0), 3.0f);
}

TEST(Percentile, SingleElement) {
  EXPECT_FLOAT_EQ(percentile({7.0f}, 98.0), 7.0f);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile({1.0f}, -1.0), Error);
  EXPECT_THROW(percentile({1.0f}, 101.0), Error);
}

TEST(Median, OddAndEven) {
  EXPECT_FLOAT_EQ(median({3, 1, 2}), 2.0f);
  EXPECT_FLOAT_EQ(median({4, 1, 2, 3}), 2.5f);
}

TEST(Threshold, PercentileRule) {
  ThresholdRule rule{ThresholdKind::kPercentile, 98.0};
  std::vector<float> scores(100);
  for (std::size_t i = 0; i < 100; ++i) scores[i] = static_cast<float>(i);
  const float t = compute_threshold(scores, rule);
  EXPECT_NEAR(t, 97.02f, 0.01f);
  // ~2% of training scores exceed the threshold by construction.
  std::size_t above = 0;
  for (float s : scores) above += (s > t);
  EXPECT_EQ(above, 2u);
}

TEST(Threshold, MeanStdRule) {
  ThresholdRule rule{ThresholdKind::kMeanStd, 2.0};
  const std::vector<float> scores = {2, 4, 4, 4, 5, 5, 7, 9};  // mean 5 std 2
  EXPECT_NEAR(compute_threshold(scores, rule), 9.0f, 1e-4f);
}

TEST(Threshold, MadRuleRobustToOutlier) {
  // MAD must barely move when one huge outlier joins the scores.
  ThresholdRule rule{ThresholdKind::kMad, 3.0};
  std::vector<float> base = {1, 2, 3, 4, 5, 6, 7};
  const float t1 = compute_threshold(base, rule);
  base.push_back(1000.0f);
  const float t2 = compute_threshold(base, rule);
  EXPECT_LT(std::abs(t2 - t1), 3.0f);

  // mean+k*std explodes under the same contamination.
  ThresholdRule msd{ThresholdKind::kMeanStd, 3.0};
  std::vector<float> base2 = {1, 2, 3, 4, 5, 6, 7};
  const float m1 = compute_threshold(base2, msd);
  base2.push_back(1000.0f);
  const float m2 = compute_threshold(base2, msd);
  EXPECT_GT(m2 - m1, 100.0f);
}

TEST(Threshold, SingleElementScoresUnderEveryRule) {
  // One training score: whatever the rule, the spread is zero and the
  // threshold is the score itself.
  const std::vector<float> one = {5.0f};
  EXPECT_FLOAT_EQ(
      compute_threshold(one, {ThresholdKind::kPercentile, 98.0}), 5.0f);
  EXPECT_FLOAT_EQ(compute_threshold(one, {ThresholdKind::kMeanStd, 3.0}),
                  5.0f);
  EXPECT_FLOAT_EQ(compute_threshold(one, {ThresholdKind::kMad, 3.0}), 5.0f);
}

TEST(Threshold, AllEqualScoresMadIsZero) {
  // Degenerate distribution: every deviation from the median is zero, so
  // mad == 0 and the threshold collapses to the median — it must not go
  // below it (which would flag the entire constant series) or NaN out.
  const std::vector<float> flat = {3.0f, 3.0f, 3.0f, 3.0f};
  const float t = compute_threshold(flat, {ThresholdKind::kMad, 3.0});
  EXPECT_FLOAT_EQ(t, 3.0f);
}

TEST(Threshold, AllEqualScoresMeanStdIsZeroSpread) {
  const std::vector<float> flat = {3.0f, 3.0f, 3.0f};
  EXPECT_FLOAT_EQ(compute_threshold(flat, {ThresholdKind::kMeanStd, 2.0}),
                  3.0f);
}

TEST(Threshold, EmptyScoresThrow) {
  ThresholdRule rule;
  EXPECT_THROW(compute_threshold({}, rule), Error);
}

TEST(Threshold, Names) {
  EXPECT_EQ(to_string(ThresholdKind::kPercentile), "percentile");
  EXPECT_EQ(to_string(ThresholdKind::kMeanStd), "mean+k*std");
  EXPECT_EQ(to_string(ThresholdKind::kMad), "mad");
}

// ---- Non-finite score handling ---------------------------------------------
// Regression: scores from a just-initialized or poisoned model can be
// NaN/Inf, and a NaN reaching std::sort is undefined behaviour (NaN
// comparisons break strict weak ordering) — the finite entries end up
// scrambled too.  Both evaluation modes must drop non-finite scores with an
// accounted count, never sort or average them.

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(Percentile, NonFiniteDroppedWithCount) {
  std::size_t dropped = 0;
  EXPECT_FLOAT_EQ(percentile({kNan, 5, 1, kInf, 3, 2, -kInf, 4}, 50.0,
                             &dropped),
                  3.0f);
  EXPECT_EQ(dropped, 3u);
  // The median over the finite entries, not over a NaN-scrambled order.
  EXPECT_FLOAT_EQ(percentile({1, 2, kNan, 3}, 100.0), 3.0f);
}

TEST(Percentile, AllNonFiniteThrows) {
  EXPECT_THROW(percentile({kNan, kInf, -kInf}, 50.0), Error);
}

TEST(Threshold, NonFiniteDroppedUnderEveryRule) {
  const std::vector<float> clean = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<float> dirty = clean;
  dirty.insert(dirty.begin() + 3, kNan);
  dirty.push_back(kInf);
  for (ThresholdKind kind :
       {ThresholdKind::kPercentile, ThresholdKind::kMeanStd,
        ThresholdKind::kMad}) {
    const ThresholdRule rule{kind, kind == ThresholdKind::kPercentile ? 90.0
                                                                      : 2.0};
    std::size_t dropped = 0;
    const float got = compute_threshold(dirty, rule, &dropped);
    EXPECT_EQ(dropped, 2u) << to_string(kind);
    EXPECT_FLOAT_EQ(got, compute_threshold(clean, rule)) << to_string(kind);
    EXPECT_TRUE(std::isfinite(got)) << to_string(kind);
  }
}

TEST(Threshold, AllNonFiniteScoresThrow) {
  EXPECT_THROW(compute_threshold({kNan, kNan}, ThresholdRule{}), Error);
}

// ---- IncrementalThreshold ---------------------------------------------------

/// Deterministic uniform [0, 1) stream for convergence checks.
float uniform01(std::uint64_t i) {
  std::uint64_t x = i + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<float>(x >> 11) * 0x1.0p-53f;
}

TEST(IncrementalThreshold, ExactForSmallSamples) {
  // Below the five-marker warmup the estimator must be the exact
  // interpolated percentile of the observed prefix.
  IncrementalThreshold est({ThresholdKind::kPercentile, 75.0});
  std::vector<float> seen;
  for (float v : {0.4f, 0.9f, 0.1f, 0.6f}) {
    est.observe(v);
    seen.push_back(v);
    EXPECT_FLOAT_EQ(est.value(), percentile(seen, 75.0));
  }
  EXPECT_EQ(est.count(), 4u);
}

TEST(IncrementalThreshold, P2ConvergesToExactPercentile) {
  for (double pct : {95.0, 99.5}) {
    IncrementalThreshold est({ThresholdKind::kPercentile, pct});
    std::vector<float> all;
    for (std::uint64_t i = 0; i < 4000; ++i) {
      const float v = uniform01(i);
      est.observe(v);
      all.push_back(v);
    }
    const float exact = percentile(all, pct);
    EXPECT_NEAR(est.value(), exact, 0.02f) << "pct=" << pct;
  }
}

TEST(IncrementalThreshold, WelfordMatchesBatchMeanStd) {
  const ThresholdRule rule{ThresholdKind::kMeanStd, 3.0};
  IncrementalThreshold est(rule);
  std::vector<float> all;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const float v = uniform01(i) * 4.0f - 1.0f;
    est.observe(v);
    all.push_back(v);
  }
  // Welford in double vs the batch float pass: same population-stddev
  // definition, so they agree to float accumulation error.
  EXPECT_NEAR(est.value(), compute_threshold(all, rule), 2e-3f);
}

TEST(IncrementalThreshold, MadMatchesBatchUnderReservoirCap) {
  // Fewer observations than the reservoir capacity: the reservoir holds
  // every score, so the incremental MAD is the batch MAD exactly.
  const ThresholdRule rule{ThresholdKind::kMad, 3.0};
  IncrementalThreshold est(rule);
  std::vector<float> all;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const float v = uniform01(i);
    est.observe(v);
    all.push_back(v);
  }
  EXPECT_FLOAT_EQ(est.value(), compute_threshold(all, rule));
}

TEST(IncrementalThreshold, MadRobustAtScaleWithBoundedMemory) {
  // Past the cap the reservoir subsamples; the estimate stays close to the
  // batch value and, like the batch rule, shrugs off an outlier burst.
  const ThresholdRule rule{ThresholdKind::kMad, 3.0};
  IncrementalThreshold est(rule);
  std::vector<float> all;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const float v = i % 100 == 99 ? 1000.0f : uniform01(i);
    est.observe(v);
    all.push_back(v);
  }
  EXPECT_NEAR(est.value(), compute_threshold(all, rule), 0.15f);
}

TEST(IncrementalThreshold, RejectsNonFiniteWithCount) {
  IncrementalThreshold est({ThresholdKind::kMeanStd, 2.0});
  EXPECT_TRUE(est.observe(1.0f));
  EXPECT_FALSE(est.observe(kNan));
  EXPECT_FALSE(est.observe(kInf));
  EXPECT_TRUE(est.observe(3.0f));
  EXPECT_EQ(est.count(), 2u);
  EXPECT_EQ(est.nonfinite_dropped(), 2u);
  // mean 2, population std 1 -> 2 + 2*1; the NaN/Inf never entered.
  EXPECT_NEAR(est.value(), 4.0f, 1e-5f);
}

TEST(IncrementalThreshold, ValueBeforeAnyScoreThrows) {
  IncrementalThreshold est;
  EXPECT_THROW(est.value(), Error);
  EXPECT_FALSE(est.observe(kNan));
  EXPECT_THROW(est.value(), Error);  // a dropped score does not arm it
}

TEST(IncrementalThreshold, ResetForgetsObservationsKeepsRule) {
  IncrementalThreshold est({ThresholdKind::kMeanStd, 2.0});
  for (int i = 1; i <= 10; ++i) est.observe(static_cast<float>(i));
  EXPECT_FALSE(est.observe(kNan));
  ASSERT_GT(est.count(), 0u);

  est.reset();
  EXPECT_EQ(est.count(), 0u);
  EXPECT_THROW(est.value(), Error);  // fully disarmed, not stale
  EXPECT_EQ(est.rule().kind, ThresholdKind::kMeanStd);
  // The drop counter audits inputs, not estimator state: it survives.
  EXPECT_EQ(est.nonfinite_dropped(), 1u);

  // Re-seeding after reset sees ONLY the new scores.
  EXPECT_TRUE(est.observe(1.0f));
  EXPECT_TRUE(est.observe(3.0f));
  EXPECT_NEAR(est.value(), 4.0f, 1e-5f);  // mean 2 + 2 * std 1
}

TEST(IncrementalThreshold, ResetMatchesFreshEstimatorUnderEveryRule) {
  for (ThresholdKind kind :
       {ThresholdKind::kPercentile, ThresholdKind::kMeanStd,
        ThresholdKind::kMad}) {
    const ThresholdRule rule{kind, kind == ThresholdKind::kPercentile ? 90.0
                                                                      : 2.0};
    IncrementalThreshold recycled(rule);
    for (int i = 0; i < 500; ++i) {
      recycled.observe(static_cast<float>((i * 37) % 100));
    }
    recycled.reset();
    IncrementalThreshold fresh(rule);
    for (int i = 0; i < 64; ++i) {
      const float s = 1.0f + 0.01f * static_cast<float>(i % 7);
      recycled.observe(s);
      fresh.observe(s);
    }
    EXPECT_EQ(recycled.value(), fresh.value()) << to_string(kind);
  }
}

// ---- DriftProbe -------------------------------------------------------------

TEST(DriftProbe, DisabledProbeNeverTrips) {
  DriftProbe probe;
  EXPECT_FALSE(probe.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(probe.observe(i < 50 ? 1.0f : 100.0f));
  }
}

TEST(DriftProbe, Validation) {
  EXPECT_THROW(DriftProbe(0.0, 64), Error);
  EXPECT_THROW(DriftProbe(-1.0, 64), Error);
  EXPECT_THROW(DriftProbe(4.0, 4), Error);  // window floor is 8
}

TEST(DriftProbe, StationaryScoresStayQuiet) {
  DriftProbe probe(5.0, 16);
  // Deterministic noisy-but-stationary scores around 1.0.
  for (int i = 0; i < 400; ++i) {
    const float s =
        1.0f + 0.1f * std::sin(0.7f * static_cast<float>(i)) +
        0.05f * static_cast<float>((i * 2654435761u >> 24) & 0xFF) / 255.0f;
    EXPECT_FALSE(probe.observe(s)) << "i=" << i;
  }
  EXPECT_EQ(probe.reseeds(), 0u);
}

TEST(DriftProbe, SustainedShiftTripsAndReseedRebuildsEstimator) {
  constexpr std::size_t kWindow = 16;
  DriftProbe probe(4.0, kWindow);
  IncrementalThreshold est({ThresholdKind::kMeanStd, 2.0});

  // Baseline: enough history for the window AND a full graduated baseline.
  for (int i = 0; i < 100; ++i) {
    const float s = 1.0f + 0.1f * std::sin(0.5f * static_cast<float>(i));
    est.observe(s);
    ASSERT_FALSE(probe.observe(s)) << "baseline i=" << i;
  }
  const float before = est.value();

  // Sustained shift: scores jump 5x.  The probe must trip once the window
  // has seen enough post-shift mass — within one window of the shift
  // (mean-shift this large saturates the z-bound well before that).
  bool tripped = false;
  for (std::size_t i = 0; i < kWindow; ++i) {
    const float s = 5.0f + 0.1f * std::sin(0.5f * static_cast<float>(i));
    est.observe(s);
    if (probe.observe(s)) {
      tripped = true;
      break;
    }
  }
  ASSERT_TRUE(tripped);

  probe.reseed(est);
  EXPECT_EQ(probe.reseeds(), 1u);
  // The estimator was rebuilt from the trailing window only: its count is
  // exactly the window, not 100+ samples of pre-shift history.
  EXPECT_EQ(est.count(), kWindow);
  EXPECT_GT(est.value(), before);

  // The first trip fires while the window still holds mostly pre-shift
  // scores, so the re-seeded baseline may lag the new level; each further
  // window either re-trips (re-seeding onto progressively newer history)
  // or goes quiet.  Convergence, not single-shot: within a handful of
  // windows the baseline IS the new level and the probe settles.
  std::size_t quiet_streak = 0;
  for (std::size_t i = 0; i < 8 * kWindow && quiet_streak < 2 * kWindow;
       ++i) {
    const float s = 5.0f + 0.1f * std::sin(0.5f * static_cast<float>(i));
    est.observe(s);
    if (probe.observe(s)) {
      probe.reseed(est);
      quiet_streak = 0;
    } else {
      ++quiet_streak;
    }
  }
  EXPECT_GE(quiet_streak, 2 * kWindow);  // settled at the new level
  EXPECT_LE(probe.reseeds(), 4u);        // geometric, not thrashing
  EXPECT_GT(est.value(), 4.0f);  // the settled state reflects the new level
}

TEST(DriftProbe, ReseedNeverAllocatesBeyondConstruction) {
  // The contract test proper lives in bench_stream --check-allocs; here we
  // at least pin that reseed() works repeatedly on the same storage.
  DriftProbe probe(3.0, 8);
  IncrementalThreshold est({ThresholdKind::kMad, 3.0});
  float level = 1.0f;
  std::uint64_t reseeds = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 64; ++i) {
      const float s = level + 0.01f * static_cast<float>(i % 5);
      est.observe(s);
      if (probe.observe(s)) {
        probe.reseed(est);
        ++reseeds;
      }
    }
    level *= 8.0f;
  }
  EXPECT_EQ(probe.reseeds(), reseeds);
  EXPECT_GE(reseeds, 2u);  // every level jump after the first should trip
}

}  // namespace
}  // namespace evfl::anomaly
