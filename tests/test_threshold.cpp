#include "anomaly/threshold.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace evfl::anomaly {
namespace {

TEST(Percentile, KnownValues) {
  const std::vector<float> v = {1, 2, 3, 4, 5};
  EXPECT_FLOAT_EQ(percentile(v, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(percentile(v, 100.0), 5.0f);
  EXPECT_FLOAT_EQ(percentile(v, 50.0), 3.0f);
  EXPECT_FLOAT_EQ(percentile(v, 25.0), 2.0f);
  // Interpolated rank: 98% of (n-1)=4 -> 3.92 -> 4 + 0.92*(5-4).
  EXPECT_NEAR(percentile(v, 98.0), 4.92f, 1e-4f);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_FLOAT_EQ(percentile({5, 1, 3, 2, 4}, 50.0), 3.0f);
}

TEST(Percentile, SingleElement) {
  EXPECT_FLOAT_EQ(percentile({7.0f}, 98.0), 7.0f);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile({1.0f}, -1.0), Error);
  EXPECT_THROW(percentile({1.0f}, 101.0), Error);
}

TEST(Median, OddAndEven) {
  EXPECT_FLOAT_EQ(median({3, 1, 2}), 2.0f);
  EXPECT_FLOAT_EQ(median({4, 1, 2, 3}), 2.5f);
}

TEST(Threshold, PercentileRule) {
  ThresholdRule rule{ThresholdKind::kPercentile, 98.0};
  std::vector<float> scores(100);
  for (std::size_t i = 0; i < 100; ++i) scores[i] = static_cast<float>(i);
  const float t = compute_threshold(scores, rule);
  EXPECT_NEAR(t, 97.02f, 0.01f);
  // ~2% of training scores exceed the threshold by construction.
  std::size_t above = 0;
  for (float s : scores) above += (s > t);
  EXPECT_EQ(above, 2u);
}

TEST(Threshold, MeanStdRule) {
  ThresholdRule rule{ThresholdKind::kMeanStd, 2.0};
  const std::vector<float> scores = {2, 4, 4, 4, 5, 5, 7, 9};  // mean 5 std 2
  EXPECT_NEAR(compute_threshold(scores, rule), 9.0f, 1e-4f);
}

TEST(Threshold, MadRuleRobustToOutlier) {
  // MAD must barely move when one huge outlier joins the scores.
  ThresholdRule rule{ThresholdKind::kMad, 3.0};
  std::vector<float> base = {1, 2, 3, 4, 5, 6, 7};
  const float t1 = compute_threshold(base, rule);
  base.push_back(1000.0f);
  const float t2 = compute_threshold(base, rule);
  EXPECT_LT(std::abs(t2 - t1), 3.0f);

  // mean+k*std explodes under the same contamination.
  ThresholdRule msd{ThresholdKind::kMeanStd, 3.0};
  std::vector<float> base2 = {1, 2, 3, 4, 5, 6, 7};
  const float m1 = compute_threshold(base2, msd);
  base2.push_back(1000.0f);
  const float m2 = compute_threshold(base2, msd);
  EXPECT_GT(m2 - m1, 100.0f);
}

TEST(Threshold, SingleElementScoresUnderEveryRule) {
  // One training score: whatever the rule, the spread is zero and the
  // threshold is the score itself.
  const std::vector<float> one = {5.0f};
  EXPECT_FLOAT_EQ(
      compute_threshold(one, {ThresholdKind::kPercentile, 98.0}), 5.0f);
  EXPECT_FLOAT_EQ(compute_threshold(one, {ThresholdKind::kMeanStd, 3.0}),
                  5.0f);
  EXPECT_FLOAT_EQ(compute_threshold(one, {ThresholdKind::kMad, 3.0}), 5.0f);
}

TEST(Threshold, AllEqualScoresMadIsZero) {
  // Degenerate distribution: every deviation from the median is zero, so
  // mad == 0 and the threshold collapses to the median — it must not go
  // below it (which would flag the entire constant series) or NaN out.
  const std::vector<float> flat = {3.0f, 3.0f, 3.0f, 3.0f};
  const float t = compute_threshold(flat, {ThresholdKind::kMad, 3.0});
  EXPECT_FLOAT_EQ(t, 3.0f);
}

TEST(Threshold, AllEqualScoresMeanStdIsZeroSpread) {
  const std::vector<float> flat = {3.0f, 3.0f, 3.0f};
  EXPECT_FLOAT_EQ(compute_threshold(flat, {ThresholdKind::kMeanStd, 2.0}),
                  3.0f);
}

TEST(Threshold, EmptyScoresThrow) {
  ThresholdRule rule;
  EXPECT_THROW(compute_threshold({}, rule), Error);
}

TEST(Threshold, Names) {
  EXPECT_EQ(to_string(ThresholdKind::kPercentile), "percentile");
  EXPECT_EQ(to_string(ThresholdKind::kMeanStd), "mean+k*std");
  EXPECT_EQ(to_string(ThresholdKind::kMad), "mad");
}

}  // namespace
}  // namespace evfl::anomaly
