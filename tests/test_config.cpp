#include "core/config.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"

namespace evfl::core {
namespace {

/// Build an argv and run apply_cli_overrides over it.
void apply(ExperimentConfig& cfg, std::vector<std::string> args) {
  std::vector<char*> argv;
  static char prog[] = "prog";
  argv.push_back(prog);
  for (std::string& a : args) argv.push_back(a.data());
  apply_cli_overrides(cfg, static_cast<int>(argv.size()), argv.data());
}

TEST(CliOverrides, AppliesKnownKeys) {
  ExperimentConfig cfg;
  apply(cfg, {"--rounds", "7", "--epochs", "3", "--threads", "8",
              "--train-fraction", "0.9", "--threaded", "1"});
  EXPECT_EQ(cfg.federated_rounds, 7u);
  EXPECT_EQ(cfg.epochs_per_round, 3u);
  EXPECT_EQ(cfg.threads, 8u);
  EXPECT_DOUBLE_EQ(cfg.train_fraction, 0.9);
  EXPECT_TRUE(cfg.threaded);
}

TEST(CliOverrides, SetsTelemetryPaths) {
  ExperimentConfig cfg;
  apply(cfg, {"--trace-out", "t.jsonl", "--metrics-json", "m.json"});
  EXPECT_EQ(cfg.trace_out, "t.jsonl");
  EXPECT_EQ(cfg.metrics_json, "m.json");
}

TEST(CliOverrides, AppliesCodecKnobs) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.codec.kind, fl::CodecKind::kDense);  // lossless default
  apply(cfg, {"--codec", "topk_q", "--topk-frac", "0.02", "--quant-bits",
              "4"});
  EXPECT_EQ(cfg.codec.kind, fl::CodecKind::kTopKQuant);
  EXPECT_DOUBLE_EQ(cfg.codec.topk_frac, 0.02);
  EXPECT_EQ(cfg.codec.quant_bits, 4);
}

TEST(CliOverrides, RejectsBadCodecKnobs) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--codec", "gzip"}), Error);
  EXPECT_THROW(apply(cfg, {"--topk-frac", "0"}), Error);
  EXPECT_THROW(apply(cfg, {"--topk-frac", "1.5"}), Error);
  EXPECT_THROW(apply(cfg, {"--quant-bits", "16"}), Error);
  EXPECT_THROW(apply(cfg, {"--quant-bits", "0"}), Error);
}

TEST(CliOverrides, AppliesAdversaryKnobs) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.fedavg.rule, fl::AggregationRule::kMean);  // exact default
  EXPECT_EQ(cfg.attack.kind, fl::AttackKind::kNone);
  apply(cfg, {"--agg-rule", "trimmed_mean", "--attack-kind", "alie",
              "--attack-frac", "0.3"});
  EXPECT_EQ(cfg.fedavg.rule, fl::AggregationRule::kTrimmedMean);
  EXPECT_EQ(cfg.attack.kind, fl::AttackKind::kAlie);
  EXPECT_DOUBLE_EQ(cfg.attack.fraction, 0.3);
}

TEST(CliOverrides, RejectsBadAdversaryKnobs) {
  // Validate-then-assign: a rejected value leaves the config untouched.
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--agg-rule", "krum"}), Error);
  EXPECT_THROW(apply(cfg, {"--agg-rule", "MEAN"}), Error);
  EXPECT_THROW(apply(cfg, {"--attack-kind", "alie2"}), Error);
  EXPECT_THROW(apply(cfg, {"--attack-frac", "-0.1"}), Error);
  EXPECT_THROW(apply(cfg, {"--attack-frac", "1.5"}), Error);
  EXPECT_THROW(apply(cfg, {"--attack-frac", "0.3x"}), Error);
  EXPECT_EQ(cfg.fedavg.rule, fl::AggregationRule::kMean);
  EXPECT_EQ(cfg.attack.kind, fl::AttackKind::kNone);
  EXPECT_DOUBLE_EQ(cfg.attack.fraction, 0.0);
}

TEST(CliOverrides, AppliesFleetKnobs) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.fleet_clients, 0u);  // flat 3-zone federation by default
  apply(cfg, {"--clients", "2048", "--edges", "16", "--sample-frac", "0.25"});
  EXPECT_EQ(cfg.fleet_clients, 2048u);
  EXPECT_EQ(cfg.fleet_edges, 16u);
  EXPECT_DOUBLE_EQ(cfg.sample_frac, 0.25);
  // describe() surfaces the fleet only when one is configured.
  EXPECT_NE(describe(cfg).find("clients=2048"), std::string::npos);
  EXPECT_NE(describe(cfg).find("edges=16"), std::string::npos);
}

TEST(CliOverrides, RejectsBadFleetKnobs) {
  ExperimentConfig cfg;
  // Same strict full-token numeric parsing as every other knob: trailing
  // garbage, negatives, and out-of-range values all throw.
  EXPECT_THROW(apply(cfg, {"--clients", "10x"}), Error);
  EXPECT_THROW(apply(cfg, {"--clients", "-5"}), Error);
  EXPECT_THROW(apply(cfg, {"--clients", "2000000"}), Error);
  EXPECT_THROW(apply(cfg, {"--edges", "0"}), Error);
  EXPECT_THROW(apply(cfg, {"--edges", "8192"}), Error);
  EXPECT_THROW(apply(cfg, {"--edges", "4.5"}), Error);
  EXPECT_THROW(apply(cfg, {"--sample-frac", "0"}), Error);
  EXPECT_THROW(apply(cfg, {"--sample-frac", "1.5"}), Error);
  EXPECT_THROW(apply(cfg, {"--sample-frac", "0.5.1"}), Error);
  EXPECT_THROW(apply(cfg, {"--sample-frac", "25%"}), Error);
  // Nothing was half-applied.
  EXPECT_EQ(cfg.fleet_clients, 0u);
  EXPECT_EQ(cfg.fleet_edges, 8u);
  EXPECT_DOUBLE_EQ(cfg.sample_frac, 1.0);
}

TEST(CliOverrides, AppliesStreamKnobs) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.stream_shards, 1u);        // sharding off by default
  EXPECT_DOUBLE_EQ(cfg.stream_drift_z, 0.0);  // drift probe off by default
  apply(cfg, {"--stream", "1", "--stream-queue-max", "512", "--stream-flush",
              "64", "--stream-shards", "8", "--stream-drift-z", "4.5"});
  EXPECT_TRUE(cfg.stream);
  EXPECT_EQ(cfg.stream_queue_max, 512u);
  EXPECT_EQ(cfg.stream_flush, 64u);
  EXPECT_EQ(cfg.stream_shards, 8u);
  EXPECT_DOUBLE_EQ(cfg.stream_drift_z, 4.5);
}

TEST(CliOverrides, RejectsBadStreamKnobs) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--stream-shards", "0"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-shards", "257"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-shards", "4x"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-shards", "-2"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-shards", "2.5"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-drift-z", "-1"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-drift-z", "nanx"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-drift-z", "3.0z"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-queue-max", "0"}), Error);
  EXPECT_THROW(apply(cfg, {"--stream-flush", "0"}), Error);
  // Validate-then-assign: a rejected value leaves the config untouched.
  EXPECT_EQ(cfg.stream_shards, 1u);
  EXPECT_DOUBLE_EQ(cfg.stream_drift_z, 0.0);
}

TEST(CliOverrides, RejectsTrailingGarbageOnIntegers) {
  // Regression: std::stoul accepted "8x" as 8 — a typo'd unit suffix ran
  // the experiment with a silently different configuration.
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--threads", "8x"}), Error);
  EXPECT_THROW(apply(cfg, {"--rounds", "5rounds"}), Error);
  EXPECT_THROW(apply(cfg, {"--seed", "42 "}), Error);
  // The failed parse must not have half-applied anything.
  EXPECT_EQ(cfg.threads, ExperimentConfig{}.threads);
}

TEST(CliOverrides, RejectsTrailingGarbageOnDoubles) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--train-fraction", "0.9.1"}), Error);
  EXPECT_THROW(apply(cfg, {"--threshold-pct", "98%"}), Error);
  EXPECT_THROW(apply(cfg, {"--damping", "1.5abc"}), Error);
}

TEST(CliOverrides, RejectsNonNumericAndNegative) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--rounds", "abc"}), Error);
  EXPECT_THROW(apply(cfg, {"--rounds", ""}), Error);
  // stoull wraps negatives into huge values instead of failing; the parser
  // must reject them outright.
  EXPECT_THROW(apply(cfg, {"--rounds", "-3"}), Error);
}

TEST(CliOverrides, ThreadsCapEnforced) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--threads", "2000"}), Error);
  apply(cfg, {"--threads", "1024"});
  EXPECT_EQ(cfg.threads, 1024u);
}

TEST(CliOverrides, AppliesServingKnobs) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.serve_batch, 32u);     // paper batch size
  EXPECT_EQ(cfg.serve_quant_bits, 0);  // fp32 snapshots by default
  apply(cfg, {"--serve-batch", "128", "--serve-quant-bits", "8"});
  EXPECT_EQ(cfg.serve_batch, 128u);
  EXPECT_EQ(cfg.serve_quant_bits, 8);
  apply(cfg, {"--serve-quant-bits", "0"});
  EXPECT_EQ(cfg.serve_quant_bits, 0);
}

TEST(CliOverrides, RejectsBadServingKnobs) {
  ExperimentConfig cfg;
  // Range violations.
  EXPECT_THROW(apply(cfg, {"--serve-batch", "0"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-batch", "4097"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-quant-bits", "4"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-quant-bits", "16"}), Error);
  // Malformed tokens: prefix parses and negatives must throw, not truncate.
  EXPECT_THROW(apply(cfg, {"--serve-batch", "32x"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-batch", "-1"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-batch", "1.5"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-quant-bits", "8.0"}), Error);
  EXPECT_THROW(apply(cfg, {"--serve-quant-bits", "eight"}), Error);
  // validate-then-assign: a rejected value leaves the config untouched.
  EXPECT_EQ(cfg.serve_batch, 32u);
  EXPECT_EQ(cfg.serve_quant_bits, 0);
}

TEST(CliOverrides, UnknownKeyThrows) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--no-such-flag", "1"}), Error);
}

TEST(CliOverrides, DanglingKeyThrows) {
  ExperimentConfig cfg;
  EXPECT_THROW(apply(cfg, {"--rounds"}), Error);
}

TEST(CliOverrides, SeedAlsoReseedsGenerator) {
  ExperimentConfig cfg;
  apply(cfg, {"--seed", "100"});
  EXPECT_EQ(cfg.seed, 100u);
  EXPECT_EQ(cfg.generator.seed, 101u);
}

}  // namespace
}  // namespace evfl::core
