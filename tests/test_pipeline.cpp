#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace evfl::core {
namespace {

/// Shrunk config: real pipeline, toy sizes, so the suite stays fast.
ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.generator.hours = 600;
  cfg.ddos.bursts = 8;
  cfg.filter.autoencoder.window = 12;
  cfg.filter.autoencoder.encoder_units = 10;
  cfg.filter.autoencoder.latent_units = 5;
  cfg.filter.autoencoder.max_epochs = 8;
  cfg.forecaster.sequence_length = 12;
  cfg.forecaster.lstm_units = 8;
  cfg.forecaster.dense_units = 4;
  cfg.federated_rounds = 1;
  cfg.epochs_per_round = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(Pipeline, PreparesThreeLabelledClients) {
  const ExperimentConfig cfg = small_config();
  const std::vector<ClientData> clients = prepare_clients(cfg);
  ASSERT_EQ(clients.size(), 3u);
  EXPECT_EQ(clients[0].zone, "102");
  EXPECT_EQ(clients[1].zone, "105");
  EXPECT_EQ(clients[2].zone, "108");

  for (const ClientData& cd : clients) {
    EXPECT_EQ(cd.clean.size(), 600u);
    EXPECT_EQ(cd.attacked.size(), 600u);
    EXPECT_EQ(cd.filtered.size(), 600u);
    EXPECT_GT(cd.injection.points_attacked, 0u);
    EXPECT_EQ(cd.attacked.anomaly_count(), cd.injection.points_attacked);
    EXPECT_GT(cd.filter_fit_seconds, 0.0);
    EXPECT_EQ(cd.filter_result.flags.size(), 600u);
  }
}

TEST(Pipeline, FilteredDiffersFromAttackedWhereFlagged) {
  const ExperimentConfig cfg = small_config();
  const std::vector<ClientData> clients = prepare_clients(cfg);
  const ClientData& cd = clients[0];
  bool any_repair = false;
  for (std::size_t i = 0; i < cd.attacked.size(); ++i) {
    if (cd.filter_result.flags[i]) {
      any_repair |= cd.filtered.values[i] != cd.attacked.values[i];
    } else {
      // Untouched outside merged segments... the point may still fall in a
      // bridged gap, so only assert the common case loosely.
      continue;
    }
  }
  EXPECT_TRUE(any_repair);
}

TEST(Pipeline, ScenarioSeriesSelection) {
  const ExperimentConfig cfg = small_config();
  const std::vector<ClientData> clients = prepare_clients(cfg);
  const ClientData& cd = clients[1];
  EXPECT_EQ(&scenario_series(cd, DataScenario::kClean), &cd.clean);
  EXPECT_EQ(&scenario_series(cd, DataScenario::kAttacked), &cd.attacked);
  EXPECT_EQ(&scenario_series(cd, DataScenario::kFiltered), &cd.filtered);
}

TEST(Pipeline, WindowScenarioShapesAndSplit) {
  const ExperimentConfig cfg = small_config();
  const std::vector<ClientData> clients = prepare_clients(cfg);
  const PreparedClient pc =
      window_scenario(clients[0], DataScenario::kClean, cfg);

  const std::size_t lookback = cfg.forecaster.sequence_length;
  const std::size_t total = 600 - lookback;
  EXPECT_EQ(pc.train.x.batch() + pc.test.x.batch(), total);
  EXPECT_EQ(pc.train.x.time(), lookback);
  EXPECT_EQ(pc.test.x.features(), 1u);
  EXPECT_EQ(pc.test_actual.size(), pc.test.x.batch());
  // ~80/20 split by construction.
  const double frac =
      static_cast<double>(pc.train.x.batch()) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.8, 0.03);
  // Scaled training targets live in [0, 1] (scaler fit on train region).
  for (std::size_t i = 0; i < pc.train.y.batch(); ++i) {
    EXPECT_GE(pc.train.y(i, 0, 0), -1e-5f);
    EXPECT_LE(pc.train.y(i, 0, 0), 1.0f + 1e-5f);
  }
}

TEST(Pipeline, TestActualsAreOriginalUnits) {
  const ExperimentConfig cfg = small_config();
  const std::vector<ClientData> clients = prepare_clients(cfg);
  const PreparedClient pc =
      window_scenario(clients[0], DataScenario::kClean, cfg);
  // Test actuals must equal the raw series tail values.
  const std::size_t lookback = cfg.forecaster.sequence_length;
  const std::size_t n_train = pc.train.x.batch();
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t src = n_train + i + lookback;
    EXPECT_NEAR(pc.test_actual[i], clients[0].clean.values[src], 1e-2f);
  }
}

TEST(Pipeline, DetectionMetricsComputable) {
  const ExperimentConfig cfg = small_config();
  const std::vector<ClientData> clients = prepare_clients(cfg);
  const metrics::DetectionMetrics m = detection_metrics(clients[0]);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_EQ(m.cm.total(), 600u);
}

TEST(Pipeline, DeterministicForSameSeed) {
  const ExperimentConfig cfg = small_config();
  const auto a = prepare_clients(cfg);
  const auto b = prepare_clients(cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].attacked.values, b[0].attacked.values);
  EXPECT_EQ(a[0].filtered.values, b[0].filtered.values);
  EXPECT_EQ(a[0].filter_result.flags, b[0].filter_result.flags);
}

TEST(Pipeline, CacheRoundTripsExactly) {
  ExperimentConfig cfg = small_config();
  cfg.cache_dir = ::testing::TempDir() + "/evfl_cache_test";
  // A cache left by a differently-optimized build (Release vs Debug) holds
  // legitimately different floats; this test is about round-tripping.
  std::filesystem::remove_all(cfg.cache_dir);

  // First call computes and stores; second call must load identical data.
  const auto first = prepare_clients(cfg);
  const auto second = prepare_clients(cfg);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t c = 0; c < first.size(); ++c) {
    EXPECT_EQ(first[c].zone, second[c].zone);
    EXPECT_EQ(first[c].clean.values, second[c].clean.values);
    EXPECT_EQ(first[c].attacked.values, second[c].attacked.values);
    EXPECT_EQ(first[c].attacked.labels, second[c].attacked.labels);
    EXPECT_EQ(first[c].filtered.values, second[c].filtered.values);
    EXPECT_EQ(first[c].filter_result.flags, second[c].filter_result.flags);
    EXPECT_EQ(first[c].filter_result.scores, second[c].filter_result.scores);
    EXPECT_EQ(first[c].injection.points_attacked,
              second[c].injection.points_attacked);
  }
  // And matches an uncached run of the same config.
  ExperimentConfig plain = small_config();
  const auto uncached = prepare_clients(plain);
  EXPECT_EQ(first[0].filtered.values, uncached[0].filtered.values);
}

TEST(Pipeline, CacheKeyedByConfig) {
  ExperimentConfig cfg = small_config();
  cfg.cache_dir = ::testing::TempDir() + "/evfl_cache_test2";
  std::filesystem::remove_all(cfg.cache_dir);
  const auto a = prepare_clients(cfg);

  ExperimentConfig changed = cfg;
  changed.seed = cfg.seed + 1;
  const auto b = prepare_clients(changed);  // must NOT reuse a's cache
  EXPECT_NE(a[0].attacked.values, b[0].attacked.values);
}

TEST(Pipeline, ScenarioNames) {
  EXPECT_EQ(to_string(DataScenario::kClean), "Clean Data");
  EXPECT_EQ(to_string(DataScenario::kAttacked), "Attacked Data");
  EXPECT_EQ(to_string(DataScenario::kFiltered), "Filtered Data");
}

TEST(Config, CliOverrides) {
  ExperimentConfig cfg;
  const char* argv[] = {"prog", "--seed", "9", "--rounds", "2",
                        "--epochs", "3", "--hours", "500",
                        "--threshold-pct", "95", "--gap-tolerance", "4"};
  apply_cli_overrides(cfg, 13, const_cast<char**>(argv));
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_EQ(cfg.federated_rounds, 2u);
  EXPECT_EQ(cfg.epochs_per_round, 3u);
  EXPECT_EQ(cfg.generator.hours, 500u);
  EXPECT_DOUBLE_EQ(cfg.filter.threshold.param, 95.0);
  EXPECT_EQ(cfg.filter.gap_tolerance, 4u);
}

TEST(Config, CliRejectsUnknownAndMalformed) {
  ExperimentConfig cfg;
  const char* bad_key[] = {"prog", "--nope", "1"};
  EXPECT_THROW(apply_cli_overrides(cfg, 3, const_cast<char**>(bad_key)),
               Error);
  const char* bad_value[] = {"prog", "--rounds", "banana"};
  EXPECT_THROW(apply_cli_overrides(cfg, 3, const_cast<char**>(bad_value)),
               Error);
  const char* dangling[] = {"prog", "--rounds"};
  EXPECT_THROW(apply_cli_overrides(cfg, 2, const_cast<char**>(dangling)),
               Error);
}

TEST(Config, DescribeMentionsKeyParams) {
  ExperimentConfig cfg;
  const std::string s = describe(cfg);
  EXPECT_NE(s.find("seq=24"), std::string::npos);
  EXPECT_NE(s.find("lstm=50"), std::string::npos);
  EXPECT_NE(s.find("rounds=5"), std::string::npos);
}

}  // namespace
}  // namespace evfl::core
