#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace evfl::tensor {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float v = rng.normal(2.0f, 3.0f);
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, IndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, LogUniformRangeAndValidation) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.log_uniform(1.5f, 10.6f);
    EXPECT_GE(v, 1.5f * 0.999f);
    EXPECT_LE(v, 10.6f * 1.001f);
  }
  EXPECT_THROW(rng.log_uniform(0.0f, 1.0f), Error);
  EXPECT_THROW(rng.log_uniform(2.0f, 1.0f), Error);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(17);
  const auto perm = rng.permutation(100);
  EXPECT_EQ(perm.size(), 100u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(19);
  const auto perm = rng.permutation(50);
  std::vector<std::size_t> sorted(perm);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(perm, sorted);  // astronomically unlikely to be sorted
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream should not replay the parent's continuation.
  Rng parent_copy(23);
  Rng child_copy = parent_copy.split();
  EXPECT_EQ(child.uniform(0, 1), child_copy.uniform(0, 1));  // deterministic
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform(0, 1) == child.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace evfl::tensor
