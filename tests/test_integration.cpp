// End-to-end integration tests: the full paper pipeline at toy scale.
// These exercise generation -> attack -> detection -> mitigation ->
// federated + centralized training -> evaluation through the public API
// exactly as the bench binaries do, just with shrunken parameters.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/scenario_runner.hpp"

namespace evfl::core {
namespace {

ExperimentConfig tiny_config(std::uint64_t seed = 11) {
  ExperimentConfig cfg;
  cfg.generator.hours = 700;
  cfg.ddos.bursts = 10;
  cfg.filter.autoencoder.window = 12;
  cfg.filter.autoencoder.encoder_units = 12;
  cfg.filter.autoencoder.latent_units = 6;
  cfg.filter.autoencoder.max_epochs = 12;
  cfg.forecaster.sequence_length = 12;
  cfg.forecaster.lstm_units = 10;
  cfg.forecaster.dense_units = 5;
  cfg.federated_rounds = 3;
  cfg.epochs_per_round = 10;
  cfg.seed = seed;
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new ScenarioRunner(tiny_config());
    fed_clean_ = new ScenarioResult(runner_->run_federated(DataScenario::kClean));
    fed_filtered_ =
        new ScenarioResult(runner_->run_federated(DataScenario::kFiltered));
    central_filtered_ = new ScenarioResult(
        runner_->run_centralized(DataScenario::kFiltered));
  }
  static void TearDownTestSuite() {
    delete central_filtered_;
    delete fed_filtered_;
    delete fed_clean_;
    delete runner_;
    runner_ = nullptr;
  }

  static ScenarioRunner* runner_;
  static ScenarioResult* fed_clean_;
  static ScenarioResult* fed_filtered_;
  static ScenarioResult* central_filtered_;
};

ScenarioRunner* IntegrationTest::runner_ = nullptr;
ScenarioResult* IntegrationTest::fed_clean_ = nullptr;
ScenarioResult* IntegrationTest::fed_filtered_ = nullptr;
ScenarioResult* IntegrationTest::central_filtered_ = nullptr;

TEST_F(IntegrationTest, FederatedCleanLearnsTheSignal) {
  ASSERT_EQ(fed_clean_->per_client.size(), 3u);
  for (const ClientEvaluation& ev : fed_clean_->per_client) {
    // Even the toy model must explain substantial variance on clean data
    // with this strongly daily-seasonal generator.  Zone 108 is the
    // deliberately noisy/spiky zone, so the bar is modest at toy scale.
    EXPECT_GT(ev.regression.r2, 0.35) << "zone " << ev.zone;
    EXPECT_GT(ev.regression.mae, 0.0);
    EXPECT_GE(ev.regression.rmse, ev.regression.mae);
    EXPECT_EQ(ev.actual.size(), ev.predicted.size());
  }
  EXPECT_EQ(fed_clean_->architecture, "Federated");
  EXPECT_EQ(fed_clean_->rounds.size(), 3u);
  EXPECT_GT(fed_clean_->train_seconds, 0.0);
}

TEST_F(IntegrationTest, FederatedRunsExchangeOnlyWeights) {
  // 3 rounds x 3 clients x 2 legs = 18 messages; each payload is the model
  // weight vector + 40-byte header.  No raw data crosses the network.
  const fl::NetworkStats st = fed_clean_->network;
  EXPECT_EQ(st.messages_sent, 18u);
  const std::size_t weight_count = fed_clean_->global_weights.size();
  EXPECT_EQ(st.bytes_sent, 18u * (40u + weight_count * sizeof(float)));
}

TEST_F(IntegrationTest, FederatedCompetitiveWithCentralizedOnFilteredData) {
  // The paper's headline architectural claim (Table III) — federated beats
  // centralized per client — reproduces at full scale (see
  // bench_table3_fed_vs_central; EXPERIMENTS.md records 3/3 wins).  At this
  // toy scale the federated clients are deliberately under-trained, so the
  // test asserts the weaker property that federated local models stay
  // competitive with a centralized model that sees 3x the data and takes
  // 3x the gradient steps.
  double fed_mean = 0.0, central_mean = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    fed_mean += fed_filtered_->per_client[c].regression.r2;
    central_mean += central_filtered_->per_client[c].regression.r2;
  }
  EXPECT_GT(fed_mean / 3.0, central_mean / 3.0 - 0.15);
  EXPECT_GT(fed_mean / 3.0, 0.5);
}

TEST_F(IntegrationTest, DetectionReportHasPaperShape) {
  const DetectionReport report = runner_->detection_report();
  ASSERT_EQ(report.per_client.size(), 3u);
  EXPECT_EQ(report.per_client[0].first, "102");
  EXPECT_EQ(report.per_client[2].first, "108");
  // Precision-focused detector: precision clearly above FPR-driven chance.
  EXPECT_GT(report.aggregate.precision, 0.5);
  EXPECT_LT(report.aggregate.false_positive_rate, 0.10);
  EXPECT_GT(report.aggregate.recall, 0.1);
}

TEST_F(IntegrationTest, GlobalWeightsEvaluable) {
  const ClientEvaluation ev = runner_->evaluate_weights(
      fed_filtered_->global_weights, 0, DataScenario::kFiltered);
  EXPECT_EQ(ev.zone, "102");
  EXPECT_GT(ev.regression.r2, -1.0);
  EXPECT_THROW(
      runner_->evaluate_weights(fed_filtered_->global_weights, 99,
                                DataScenario::kFiltered),
      Error);
}

TEST_F(IntegrationTest, CentralizedTimeAndShape) {
  EXPECT_EQ(central_filtered_->architecture, "Centralized");
  EXPECT_EQ(central_filtered_->per_client.size(), 3u);
  EXPECT_GT(central_filtered_->train_seconds, 0.0);
  EXPECT_TRUE(central_filtered_->rounds.empty());
}

TEST(IntegrationThreaded, ThreadedDriverProducesComparableResults) {
  ExperimentConfig cfg = tiny_config(13);
  cfg.threaded = true;
  ScenarioRunner runner(cfg);
  const ScenarioResult result = runner.run_federated(DataScenario::kClean);
  ASSERT_EQ(result.per_client.size(), 3u);
  for (const ClientEvaluation& ev : result.per_client) {
    EXPECT_GT(ev.regression.r2, 0.4) << "zone " << ev.zone;
  }
  for (const auto& r : result.rounds) {
    EXPECT_EQ(r.updates_received, 3u);
  }
}

TEST(IntegrationDeterminism, SameSeedSameResults) {
  ScenarioRunner a(tiny_config(21));
  ScenarioRunner b(tiny_config(21));
  const ScenarioResult ra = a.run_federated(DataScenario::kAttacked);
  const ScenarioResult rb = b.run_federated(DataScenario::kAttacked);
  ASSERT_EQ(ra.per_client.size(), rb.per_client.size());
  for (std::size_t c = 0; c < ra.per_client.size(); ++c) {
    EXPECT_DOUBLE_EQ(ra.per_client[c].regression.r2,
                     rb.per_client[c].regression.r2);
  }
  EXPECT_EQ(ra.global_weights, rb.global_weights);
}

}  // namespace
}  // namespace evfl::core
