#include <gtest/gtest.h>

#include "attack/ddos_injector.hpp"
#include "attack/fdi_injector.hpp"
#include "attack/ramp_injector.hpp"
#include "datagen/shenzhen.hpp"

namespace evfl::attack {
namespace {

data::TimeSeries make_clean(std::size_t hours = 1000, std::uint64_t seed = 1) {
  datagen::GeneratorConfig cfg;
  cfg.hours = hours;
  tensor::Rng rng(seed);
  return datagen::generate_zone(datagen::zone_102(), cfg, rng);
}

TEST(DdosInjector, LabelsMatchModifications) {
  const data::TimeSeries clean = make_clean();
  DdosInjector injector;
  data::TimeSeries attacked;
  tensor::Rng rng(2);
  const InjectionSummary s = injector.inject(clean, attacked, rng);

  ASSERT_EQ(attacked.size(), clean.size());
  ASSERT_EQ(attacked.labels.size(), clean.size());
  EXPECT_EQ(s.kind, AttackKind::kDdos);
  EXPECT_GT(s.points_attacked, 0u);
  EXPECT_EQ(attacked.anomaly_count(), s.points_attacked);

  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (attacked.labels[i] == 0) {
      EXPECT_EQ(attacked.values[i], clean.values[i]) << "unlabelled change at " << i;
    } else {
      EXPECT_GE(attacked.values[i], clean.values[i]) << "DDoS must inflate";
    }
  }
}

TEST(DdosInjector, InputNotMutated) {
  const data::TimeSeries clean = make_clean();
  const std::vector<float> copy = clean.values;
  DdosInjector injector;
  data::TimeSeries attacked;
  tensor::Rng rng(3);
  injector.inject(clean, attacked, rng);
  EXPECT_EQ(clean.values, copy);
}

TEST(DdosInjector, MultiplierDomainIsDamped) {
  DdosConfig cfg;
  DdosInjector injector(cfg);
  // 10.62 ^ 0.55 ≈ 3.67: volume multipliers stay well below the raw
  // network-domain 10.6x.
  EXPECT_NEAR(injector.max_volume_multiplier(), 3.67f, 0.1f);
  EXPECT_LT(injector.max_volume_multiplier(), 10.6f);

  DdosConfig undamped = cfg;
  undamped.damping = 1.0f;
  EXPECT_NEAR(DdosInjector(undamped).max_volume_multiplier(), 10.62f, 0.05f);
}

TEST(DdosInjector, MeanMultiplierWithinConfiguredRange) {
  const data::TimeSeries clean = make_clean(2000);
  DdosConfig cfg;
  cfg.within_burst_jitter = 0.0f;
  DdosInjector injector(cfg);
  data::TimeSeries attacked;
  tensor::Rng rng(4);
  const InjectionSummary s = injector.inject(clean, attacked, rng);
  EXPECT_GE(s.mean_multiplier, cfg.min_multiplier * 0.99);
  EXPECT_LE(s.mean_multiplier, injector.max_volume_multiplier() * 1.01);
}

TEST(DdosInjector, BurstsAreTemporallyLocalized) {
  const data::TimeSeries clean = make_clean(4000);
  DdosConfig cfg;
  cfg.bursts = 10;
  DdosInjector injector(cfg);
  data::TimeSeries attacked;
  tensor::Rng rng(5);
  injector.inject(clean, attacked, rng);

  // Count contiguous anomalous runs: must be <= bursts (overlaps merge).
  std::size_t runs = 0;
  bool in_run = false;
  for (auto l : attacked.labels) {
    if (l && !in_run) ++runs;
    in_run = l;
  }
  EXPECT_GT(runs, 0u);
  EXPECT_LE(runs, 10u);
}

TEST(DdosInjector, DeterministicGivenSeed) {
  const data::TimeSeries clean = make_clean();
  DdosInjector injector;
  data::TimeSeries a1, a2;
  tensor::Rng r1(77), r2(77);
  injector.inject(clean, a1, r1);
  injector.inject(clean, a2, r2);
  EXPECT_EQ(a1.values, a2.values);
  EXPECT_EQ(a1.labels, a2.labels);
}

TEST(DdosInjector, ConfigValidation) {
  DdosConfig bad;
  bad.min_multiplier = 1.0f;
  EXPECT_THROW(DdosInjector{bad}, Error);
  DdosConfig bad2;
  bad2.max_burst_hours = 1;
  bad2.min_burst_hours = 4;
  EXPECT_THROW(DdosInjector{bad2}, Error);
  DdosConfig bad3;
  bad3.damping = 0.0f;
  EXPECT_THROW(DdosInjector{bad3}, Error);
}

TEST(DdosInjector, SeriesTooShortThrows) {
  data::TimeSeries tiny;
  tiny.values = {1, 2, 3};
  tiny.init_clean_labels();
  DdosInjector injector;
  data::TimeSeries out;
  tensor::Rng rng(6);
  EXPECT_THROW(injector.inject(tiny, out, rng), Error);
}

TEST(FdiInjector, SubtleBiasWithinOneSigma) {
  const data::TimeSeries clean = make_clean(2000);
  const data::SeriesStats st = data::compute_stats(clean.values);
  FdiConfig cfg;
  FalseDataInjector injector(cfg);
  data::TimeSeries attacked;
  tensor::Rng rng(7);
  const InjectionSummary s = injector.inject(clean, attacked, rng);
  EXPECT_EQ(s.kind, AttackKind::kFdi);
  EXPECT_GT(s.points_attacked, 0u);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const float delta = std::abs(attacked.values[i] - clean.values[i]);
    if (attacked.labels[i]) {
      EXPECT_LE(delta, cfg.bias_sigma * st.stddev + 1e-3f);
    } else {
      EXPECT_EQ(delta, 0.0f);
    }
  }
}

TEST(FdiInjector, AlternatingSignBiasesBothWays) {
  const data::TimeSeries clean = make_clean(3000);
  FdiConfig cfg;
  cfg.windows = 8;
  FalseDataInjector injector(cfg);
  data::TimeSeries attacked;
  tensor::Rng rng(8);
  injector.inject(clean, attacked, rng);
  bool up = false, down = false;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (!attacked.labels[i]) continue;
    if (attacked.values[i] > clean.values[i]) up = true;
    if (attacked.values[i] < clean.values[i]) down = true;
  }
  EXPECT_TRUE(up);
  EXPECT_TRUE(down);
}

TEST(RampInjector, TriangularProfilePeaksMidWindow) {
  data::TimeSeries flat;
  flat.values.assign(500, 10.0f);
  flat.init_clean_labels();
  RampConfig cfg;
  cfg.ramps = 1;
  cfg.min_ramp_hours = 21;
  cfg.max_ramp_hours = 21;
  RampInjector injector(cfg);
  data::TimeSeries attacked;
  tensor::Rng rng(9);
  injector.inject(flat, attacked, rng);

  // Find the ramp and verify its apex is near the configured multiplier
  // and near the middle.
  std::size_t begin = 0, end = 0;
  for (std::size_t i = 0; i < attacked.size(); ++i) {
    if (attacked.labels[i]) {
      if (begin == 0 && end == 0) begin = i;
      end = i;
    }
  }
  ASSERT_GT(end, begin);
  float peak = 0.0f;
  std::size_t peak_at = 0;
  for (std::size_t i = begin; i <= end; ++i) {
    if (attacked.values[i] > peak) {
      peak = attacked.values[i];
      peak_at = i;
    }
  }
  EXPECT_NEAR(peak, 10.0f * cfg.peak_multiplier, 0.5f);
  const std::size_t mid = (begin + end) / 2;
  EXPECT_NEAR(static_cast<double>(peak_at), static_cast<double>(mid), 1.5);
  // Edges are barely modified.
  EXPECT_NEAR(attacked.values[begin], 10.0f, 1.5f);
}

TEST(AttackKind, Names) {
  EXPECT_EQ(to_string(AttackKind::kDdos), "ddos");
  EXPECT_EQ(to_string(AttackKind::kFdi), "fdi");
  EXPECT_EQ(to_string(AttackKind::kRamp), "ramp");
  EXPECT_EQ(to_string(AttackKind::kNone), "none");
}

}  // namespace
}  // namespace evfl::attack
