#include "nn/dense.hpp"

#include <gtest/gtest.h>

namespace evfl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor3;

TEST(Dense, ForwardKnownValues) {
  Rng rng(1);
  Dense layer(2, Activation::kLinear, rng, 3);
  // Overwrite weights with known values: y = x·W + b.
  auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);
  Matrix& w = *params[0].value;
  Matrix& b = *params[1].value;
  w = Matrix::from_rows({{1, 0}, {0, 1}, {1, 1}});
  b = Matrix::row_vector({10, 20});

  Tensor3 x(1, 1, 3);
  x(0, 0, 0) = 1;
  x(0, 0, 1) = 2;
  x(0, 0, 2) = 3;
  const Tensor3 y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0, 0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y(0, 0, 1), 2 + 3 + 20);
}

TEST(Dense, ReluClampsNegative) {
  Rng rng(2);
  Dense layer(1, Activation::kRelu, rng, 1);
  auto params = layer.params();
  *params[0].value = Matrix::from_rows({{1.0f}});
  *params[1].value = Matrix::row_vector({-5.0f});
  Tensor3 x(1, 1, 1);
  x(0, 0, 0) = 2.0f;  // pre-activation = -3
  EXPECT_EQ(layer.forward(x, false)(0, 0, 0), 0.0f);
}

TEST(Dense, TimeDistributedAppliesPerStep) {
  Rng rng(3);
  Dense layer(2, Activation::kLinear, rng, 1);
  Tensor3 x(2, 3, 1);
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t t = 0; t < 3; ++t) {
      x(n, t, 0) = static_cast<float>(n * 3 + t);
    }
  }
  const Tensor3 y = layer.forward(x, false);
  EXPECT_EQ(y.batch(), 2u);
  EXPECT_EQ(y.time(), 3u);
  EXPECT_EQ(y.features(), 2u);
  // Same input value -> same output regardless of position.
  Tensor3 x2(1, 1, 1);
  x2(0, 0, 0) = x(1, 2, 0);
  const Tensor3 y2 = layer.forward(x2, false);
  EXPECT_FLOAT_EQ(y(1, 2, 0), y2(0, 0, 0));
  EXPECT_FLOAT_EQ(y(1, 2, 1), y2(0, 0, 1));
}

TEST(Dense, LazyBuildInfersInputWidth) {
  Rng rng(4);
  Dense layer(3, Activation::kLinear, rng);  // no input size yet
  Tensor3 x(2, 1, 5);
  layer.forward(x, false);
  EXPECT_EQ(layer.weights().rows(), 5u);
  EXPECT_EQ(layer.weights().cols(), 3u);
}

TEST(Dense, RejectsChangedInputWidth) {
  Rng rng(5);
  Dense layer(3, Activation::kLinear, rng, 4);
  Tensor3 bad(2, 1, 7);
  EXPECT_THROW(layer.forward(bad, false), ShapeError);
}

TEST(Dense, OutputFeatures) {
  Rng rng(6);
  Dense layer(9, Activation::kLinear, rng, 4);
  EXPECT_EQ(layer.output_features(4), 9u);
}

TEST(Dense, GradAccumulatesAcrossBackwards) {
  Rng rng(7);
  Dense layer(1, Activation::kLinear, rng, 1);
  Tensor3 x(1, 1, 1);
  x(0, 0, 0) = 1.0f;
  Tensor3 g(1, 1, 1);
  g(0, 0, 0) = 1.0f;

  layer.forward(x, true);
  layer.backward(g);
  const float after_one = layer.params()[0].grad->data()[0];
  layer.forward(x, true);
  layer.backward(g);
  const float after_two = layer.params()[0].grad->data()[0];
  EXPECT_FLOAT_EQ(after_two, 2.0f * after_one);

  layer.zero_grads();
  EXPECT_FLOAT_EQ(layer.params()[0].grad->data()[0], 0.0f);
}

TEST(Dense, BackwardShapeMismatchThrows) {
  Rng rng(8);
  Dense layer(2, Activation::kLinear, rng, 3);
  Tensor3 x(2, 1, 3);
  layer.forward(x, false);
  Tensor3 bad_grad(2, 1, 5);
  EXPECT_THROW(layer.backward(bad_grad), ShapeError);
}

TEST(Dense, ZeroUnitsRejected) {
  Rng rng(9);
  EXPECT_THROW(Dense(0, Activation::kLinear, rng), Error);
}

}  // namespace
}  // namespace evfl::nn
