#include "anomaly/imputation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::anomaly {
namespace {

/// Flags with anomalies at the given indices.
std::vector<std::uint8_t> flags_at(std::size_t n,
                                   std::initializer_list<std::size_t> idx) {
  std::vector<std::uint8_t> f(n, 0);
  for (std::size_t i : idx) f[i] = 1;
  return f;
}

TEST(Imputation, Names) {
  EXPECT_EQ(to_string(ImputationMethod::kLinear), "linear");
  EXPECT_EQ(to_string(ImputationMethod::kSeasonalNaive), "seasonal-naive");
  EXPECT_EQ(to_string(ImputationMethod::kSpline), "spline");
  EXPECT_EQ(to_string(ImputationMethod::kModelReconstruction),
            "model-reconstruction");
}

TEST(Imputation, LinearMatchesInterpolateSegments) {
  std::vector<float> a = {0, 99, 99, 3, 4};
  std::vector<float> b = a;
  const std::vector<Segment> segs = {{1, 2}};
  const auto flags = flags_at(5, {1, 2});

  impute_segments(a, segs, flags, {ImputationMethod::kLinear, 24});
  interpolate_segments(b, segs);
  EXPECT_EQ(a, b);
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  EXPECT_FLOAT_EQ(a[2], 2.0f);
}

TEST(Imputation, SeasonalNaiveUsesValueOneSeasonBack) {
  // Season = 4; point 6 anomalous -> take point 2's value.
  std::vector<float> v = {10, 11, 12, 13, 10, 11, 99, 13};
  const auto flags = flags_at(8, {6});
  impute_segments(v, {{6, 6}}, flags, {ImputationMethod::kSeasonalNaive, 4});
  EXPECT_FLOAT_EQ(v[6], 12.0f);
}

TEST(Imputation, SeasonalNaiveSkipsAnomalousReference) {
  // Season = 3; point 7 anomalous, point 4 (one season back) also anomalous
  // -> walk back to point 1.
  std::vector<float> v = {0, 5, 0, 0, 99, 0, 0, 99, 0};
  const auto flags = flags_at(9, {4, 7});
  impute_segments(v, {{7, 7}}, flags, {ImputationMethod::kSeasonalNaive, 3});
  EXPECT_FLOAT_EQ(v[7], 5.0f);
}

TEST(Imputation, SeasonalNaiveFallsBackToLinearAtSeriesStart) {
  // Anomaly at index 1 with season 24: no seasonal reference exists.
  std::vector<float> v = {2, 99, 4};
  const auto flags = flags_at(3, {1});
  impute_segments(v, {{1, 1}}, flags, {ImputationMethod::kSeasonalNaive, 24});
  EXPECT_FLOAT_EQ(v[1], 3.0f);  // linear fallback
}

TEST(Imputation, SeasonalFallbackSkipsAnomalousNeighbours) {
  // Season 10 on a length-8 series: no point has a seasonal reference, so
  // every repair takes the linear fallback.  The whole segment {2..5} is
  // flagged; the fallback must anchor on the nearest *trustworthy* points
  // (indices 1 and 6), not on the immediately adjacent flagged samples —
  // the old behaviour rebuilt index 2 from the corrupted values[3] = 99.
  std::vector<float> v = {10, 12, 99, 99, 99, 99, 20, 22};
  const auto flags = flags_at(8, {2, 3, 4, 5});
  impute_segments(v, {{2, 5}}, flags, {ImputationMethod::kSeasonalNaive, 10});
  EXPECT_FLOAT_EQ(v[2], 13.6f);  // 12 + 1/5 * (20 - 12)
  EXPECT_FLOAT_EQ(v[3], 15.2f);
  EXPECT_FLOAT_EQ(v[4], 16.8f);
  EXPECT_FLOAT_EQ(v[5], 18.4f);
}

TEST(Imputation, SeasonalFallbackHoldsAtSeriesEnd) {
  // Trailing flagged run with season longer than the series: only a left
  // trustworthy anchor exists, so the repair holds it — the old behaviour
  // interpolated index 1 against the corrupted values[2].
  std::vector<float> v = {5, 99, 99};
  const auto flags = flags_at(3, {1, 2});
  impute_segments(v, {{1, 2}}, flags, {ImputationMethod::kSeasonalNaive, 10});
  EXPECT_FLOAT_EQ(v[1], 5.0f);
  EXPECT_FLOAT_EQ(v[2], 5.0f);
}

TEST(Imputation, SeasonalFallbackLeavesFullyAnomalousSeriesAlone) {
  // Nothing trustworthy anywhere: no value can be manufactured.
  std::vector<float> v = {99, 98};
  const auto flags = flags_at(2, {0, 1});
  impute_segments(v, {{0, 1}}, flags, {ImputationMethod::kSeasonalNaive, 10});
  EXPECT_FLOAT_EQ(v[0], 99.0f);
  EXPECT_FLOAT_EQ(v[1], 98.0f);
}

TEST(Imputation, CatmullRomEndpointsAndMidpoint) {
  EXPECT_FLOAT_EQ(catmull_rom(0, 1, 2, 3, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(catmull_rom(0, 1, 2, 3, 1.0f), 2.0f);
  // On a straight line the spline stays on the line.
  EXPECT_FLOAT_EQ(catmull_rom(0, 1, 2, 3, 0.5f), 1.5f);
}

TEST(Imputation, SplineOnLinearDataMatchesLinear) {
  std::vector<float> v = {0, 1, 99, 99, 4, 5};
  const auto flags = flags_at(6, {2, 3});
  impute_segments(v, {{2, 3}}, flags, {ImputationMethod::kSpline, 24});
  EXPECT_NEAR(v[2], 2.0f, 1e-5f);
  EXPECT_NEAR(v[3], 3.0f, 1e-5f);
}

TEST(Imputation, SplineFollowsCurvatureBetterThanLinear) {
  // Quadratic series y = x^2 with a hole at x = 3..4.
  std::vector<float> v;
  for (int x = 0; x <= 7; ++x) v.push_back(static_cast<float>(x * x));
  std::vector<float> spline = v, linear = v;
  spline[3] = spline[4] = linear[3] = linear[4] = 999.0f;
  const auto flags = flags_at(8, {3, 4});

  impute_segments(spline, {{3, 4}}, flags, {ImputationMethod::kSpline, 24});
  impute_segments(linear, {{3, 4}}, flags, {ImputationMethod::kLinear, 24});

  const float spline_err =
      std::abs(spline[3] - 9.0f) + std::abs(spline[4] - 16.0f);
  const float linear_err =
      std::abs(linear[3] - 9.0f) + std::abs(linear[4] - 16.0f);
  EXPECT_LT(spline_err, linear_err);
}

TEST(Imputation, SplineAtEdgeFallsBackToHold) {
  std::vector<float> v = {99, 99, 5, 6};
  const auto flags = flags_at(4, {0, 1});
  impute_segments(v, {{0, 1}}, flags, {ImputationMethod::kSpline, 24});
  EXPECT_FLOAT_EQ(v[0], 5.0f);
  EXPECT_FLOAT_EQ(v[1], 5.0f);
}

TEST(Imputation, SplineNeverRepairsBelowZero) {
  // A spike at the left outer anchor (values[0] = 50) makes the inner
  // tangent steeply negative: the unclamped Hermite repaired index 2 to
  // about -4.6 even though every anchor is non-negative.  Traffic volume
  // cannot be negative, so the repair must clamp at zero.
  std::vector<float> v = {50.0f, 1.0f, 99.0f, 99.0f, 0.5f, 0.4f};
  const auto flags = flags_at(6, {2, 3});
  impute_segments(v, {{2, 3}}, flags, {ImputationMethod::kSpline, 24});
  EXPECT_GE(v[2], 0.0f);
  EXPECT_GE(v[3], 0.0f);
  // The clamp actually engaged (the raw polynomial is negative here).
  EXPECT_FLOAT_EQ(v[2], 0.0f);
}

TEST(Imputation, ModelReconstructionCopiesRepairSignal) {
  std::vector<float> v = {1, 99, 99, 4};
  const std::vector<float> recon = {1.1f, 2.2f, 3.3f, 4.4f};
  const auto flags = flags_at(4, {1, 2});
  impute_segments(v, {{1, 2}}, flags,
                  {ImputationMethod::kModelReconstruction, 24}, &recon);
  EXPECT_FLOAT_EQ(v[0], 1.0f);   // untouched
  EXPECT_FLOAT_EQ(v[1], 2.2f);   // repaired from model
  EXPECT_FLOAT_EQ(v[2], 3.3f);
  EXPECT_FLOAT_EQ(v[3], 4.0f);
}

TEST(Imputation, ModelReconstructionRequiresAlignedSignal) {
  std::vector<float> v = {1, 2, 3};
  const auto flags = flags_at(3, {1});
  EXPECT_THROW(impute_segments(v, {{1, 1}}, flags,
                               {ImputationMethod::kModelReconstruction, 24},
                               nullptr),
               Error);
  const std::vector<float> short_recon = {1.0f};
  EXPECT_THROW(impute_segments(v, {{1, 1}}, flags,
                               {ImputationMethod::kModelReconstruction, 24},
                               &short_recon),
               Error);
}

TEST(Imputation, Validation) {
  std::vector<float> v = {1, 2, 3};
  const auto flags = flags_at(3, {1});
  EXPECT_THROW(
      impute_segments(v, {{1, 5}}, flags, {ImputationMethod::kLinear, 24}),
      Error);
  std::vector<std::uint8_t> wrong_flags(2, 0);
  EXPECT_THROW(impute_segments(v, {{1, 1}}, wrong_flags,
                               {ImputationMethod::kLinear, 24}),
               Error);
  EXPECT_THROW(impute_segments(v, {{1, 1}}, flags,
                               {ImputationMethod::kSeasonalNaive, 0}),
               Error);
}

}  // namespace
}  // namespace evfl::anomaly
