#include "anomaly/imputation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evfl::anomaly {
namespace {

/// Flags with anomalies at the given indices.
std::vector<std::uint8_t> flags_at(std::size_t n,
                                   std::initializer_list<std::size_t> idx) {
  std::vector<std::uint8_t> f(n, 0);
  for (std::size_t i : idx) f[i] = 1;
  return f;
}

TEST(Imputation, Names) {
  EXPECT_EQ(to_string(ImputationMethod::kLinear), "linear");
  EXPECT_EQ(to_string(ImputationMethod::kSeasonalNaive), "seasonal-naive");
  EXPECT_EQ(to_string(ImputationMethod::kSpline), "spline");
  EXPECT_EQ(to_string(ImputationMethod::kModelReconstruction),
            "model-reconstruction");
}

TEST(Imputation, LinearMatchesInterpolateSegments) {
  std::vector<float> a = {0, 99, 99, 3, 4};
  std::vector<float> b = a;
  const std::vector<Segment> segs = {{1, 2}};
  const auto flags = flags_at(5, {1, 2});

  impute_segments(a, segs, flags, {ImputationMethod::kLinear, 24});
  interpolate_segments(b, segs);
  EXPECT_EQ(a, b);
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  EXPECT_FLOAT_EQ(a[2], 2.0f);
}

TEST(Imputation, SeasonalNaiveUsesValueOneSeasonBack) {
  // Season = 4; point 6 anomalous -> take point 2's value.
  std::vector<float> v = {10, 11, 12, 13, 10, 11, 99, 13};
  const auto flags = flags_at(8, {6});
  impute_segments(v, {{6, 6}}, flags, {ImputationMethod::kSeasonalNaive, 4});
  EXPECT_FLOAT_EQ(v[6], 12.0f);
}

TEST(Imputation, SeasonalNaiveSkipsAnomalousReference) {
  // Season = 3; point 7 anomalous, point 4 (one season back) also anomalous
  // -> walk back to point 1.
  std::vector<float> v = {0, 5, 0, 0, 99, 0, 0, 99, 0};
  const auto flags = flags_at(9, {4, 7});
  impute_segments(v, {{7, 7}}, flags, {ImputationMethod::kSeasonalNaive, 3});
  EXPECT_FLOAT_EQ(v[7], 5.0f);
}

TEST(Imputation, SeasonalNaiveFallsBackToLinearAtSeriesStart) {
  // Anomaly at index 1 with season 24: no seasonal reference exists.
  std::vector<float> v = {2, 99, 4};
  const auto flags = flags_at(3, {1});
  impute_segments(v, {{1, 1}}, flags, {ImputationMethod::kSeasonalNaive, 24});
  EXPECT_FLOAT_EQ(v[1], 3.0f);  // linear fallback
}

TEST(Imputation, CatmullRomEndpointsAndMidpoint) {
  EXPECT_FLOAT_EQ(catmull_rom(0, 1, 2, 3, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(catmull_rom(0, 1, 2, 3, 1.0f), 2.0f);
  // On a straight line the spline stays on the line.
  EXPECT_FLOAT_EQ(catmull_rom(0, 1, 2, 3, 0.5f), 1.5f);
}

TEST(Imputation, SplineOnLinearDataMatchesLinear) {
  std::vector<float> v = {0, 1, 99, 99, 4, 5};
  const auto flags = flags_at(6, {2, 3});
  impute_segments(v, {{2, 3}}, flags, {ImputationMethod::kSpline, 24});
  EXPECT_NEAR(v[2], 2.0f, 1e-5f);
  EXPECT_NEAR(v[3], 3.0f, 1e-5f);
}

TEST(Imputation, SplineFollowsCurvatureBetterThanLinear) {
  // Quadratic series y = x^2 with a hole at x = 3..4.
  std::vector<float> v;
  for (int x = 0; x <= 7; ++x) v.push_back(static_cast<float>(x * x));
  std::vector<float> spline = v, linear = v;
  spline[3] = spline[4] = linear[3] = linear[4] = 999.0f;
  const auto flags = flags_at(8, {3, 4});

  impute_segments(spline, {{3, 4}}, flags, {ImputationMethod::kSpline, 24});
  impute_segments(linear, {{3, 4}}, flags, {ImputationMethod::kLinear, 24});

  const float spline_err =
      std::abs(spline[3] - 9.0f) + std::abs(spline[4] - 16.0f);
  const float linear_err =
      std::abs(linear[3] - 9.0f) + std::abs(linear[4] - 16.0f);
  EXPECT_LT(spline_err, linear_err);
}

TEST(Imputation, SplineAtEdgeFallsBackToHold) {
  std::vector<float> v = {99, 99, 5, 6};
  const auto flags = flags_at(4, {0, 1});
  impute_segments(v, {{0, 1}}, flags, {ImputationMethod::kSpline, 24});
  EXPECT_FLOAT_EQ(v[0], 5.0f);
  EXPECT_FLOAT_EQ(v[1], 5.0f);
}

TEST(Imputation, ModelReconstructionCopiesRepairSignal) {
  std::vector<float> v = {1, 99, 99, 4};
  const std::vector<float> recon = {1.1f, 2.2f, 3.3f, 4.4f};
  const auto flags = flags_at(4, {1, 2});
  impute_segments(v, {{1, 2}}, flags,
                  {ImputationMethod::kModelReconstruction, 24}, &recon);
  EXPECT_FLOAT_EQ(v[0], 1.0f);   // untouched
  EXPECT_FLOAT_EQ(v[1], 2.2f);   // repaired from model
  EXPECT_FLOAT_EQ(v[2], 3.3f);
  EXPECT_FLOAT_EQ(v[3], 4.0f);
}

TEST(Imputation, ModelReconstructionRequiresAlignedSignal) {
  std::vector<float> v = {1, 2, 3};
  const auto flags = flags_at(3, {1});
  EXPECT_THROW(impute_segments(v, {{1, 1}}, flags,
                               {ImputationMethod::kModelReconstruction, 24},
                               nullptr),
               Error);
  const std::vector<float> short_recon = {1.0f};
  EXPECT_THROW(impute_segments(v, {{1, 1}}, flags,
                               {ImputationMethod::kModelReconstruction, 24},
                               &short_recon),
               Error);
}

TEST(Imputation, Validation) {
  std::vector<float> v = {1, 2, 3};
  const auto flags = flags_at(3, {1});
  EXPECT_THROW(
      impute_segments(v, {{1, 5}}, flags, {ImputationMethod::kLinear, 24}),
      Error);
  std::vector<std::uint8_t> wrong_flags(2, 0);
  EXPECT_THROW(impute_segments(v, {{1, 1}}, wrong_flags,
                               {ImputationMethod::kLinear, 24}),
               Error);
  EXPECT_THROW(impute_segments(v, {{1, 1}}, flags,
                               {ImputationMethod::kSeasonalNaive, 0}),
               Error);
}

}  // namespace
}  // namespace evfl::anomaly
