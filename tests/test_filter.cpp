#include "anomaly/filter.hpp"

#include <gtest/gtest.h>

namespace evfl::anomaly {
namespace {

// ---- merge_segments ---------------------------------------------------------

TEST(MergeSegments, EmptyAndAllClean) {
  EXPECT_TRUE(merge_segments({}, 2).empty());
  EXPECT_TRUE(merge_segments({0, 0, 0, 0}, 2).empty());
}

TEST(MergeSegments, SingleRun) {
  const auto segs = merge_segments({0, 1, 1, 1, 0}, 2);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].begin, 1u);
  EXPECT_EQ(segs[0].end, 3u);
}

TEST(MergeSegments, GapWithinToleranceMerges) {
  // Runs at {1} and {4} separated by two normal points (2, 3): gap = 2.
  const auto segs = merge_segments({0, 1, 0, 0, 1, 0}, 2);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].begin, 1u);
  EXPECT_EQ(segs[0].end, 4u);
}

TEST(MergeSegments, GapBeyondToleranceSplits) {
  // Gap of three normal points (2, 3, 4) > tolerance 2.
  const auto segs = merge_segments({0, 1, 0, 0, 0, 1, 0}, 2);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].begin, 1u);
  EXPECT_EQ(segs[0].end, 1u);
  EXPECT_EQ(segs[1].begin, 5u);
  EXPECT_EQ(segs[1].end, 5u);
}

TEST(MergeSegments, ZeroToleranceOnlyMergesAdjacent) {
  const auto segs = merge_segments({1, 1, 0, 1}, 0);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].end, 1u);
  EXPECT_EQ(segs[1].begin, 3u);
}

TEST(MergeSegments, GapExactlyAtToleranceMerges) {
  // One clean point between the runs == tolerance 1: inclusive boundary.
  const auto segs = merge_segments({1, 0, 1}, 1);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 2u);
}

TEST(MergeSegments, GapOnePastToleranceSplits) {
  // Two clean points between the runs == tolerance 1 + 1: must split.
  const auto segs = merge_segments({1, 0, 0, 1}, 1);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 0u);
  EXPECT_EQ(segs[1].begin, 3u);
  EXPECT_EQ(segs[1].end, 3u);
}

TEST(MergeSegments, HugeToleranceSpansEverything) {
  const auto segs = merge_segments({1, 0, 0, 0, 0, 0, 1}, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 6u);
}

TEST(MergeSegments, EdgesHandled) {
  const auto segs = merge_segments({1, 0, 0, 0, 0, 1}, 1);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[1].end, 5u);
}

/// Property sweep: random flag vectors, structural invariants of the merge.
class MergeSegmentsProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(MergeSegmentsProperty, Invariants) {
  const auto [seed, gap_tolerance] = GetParam();
  tensor::Rng rng(seed);
  std::vector<std::uint8_t> flags(200);
  for (auto& f : flags) f = rng.bernoulli(0.15) ? 1 : 0;

  const auto segments = merge_segments(flags, gap_tolerance);

  // 1. Segments are sorted, non-overlapping, and separated by gaps larger
  //    than the tolerance.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_LE(segments[i].begin, segments[i].end);
    EXPECT_LT(segments[i].end, flags.size());
    if (i > 0) {
      EXPECT_GT(segments[i].begin, segments[i - 1].end + gap_tolerance + 1);
    }
    // 2. Segment endpoints are genuinely anomalous (no gap padding at ends).
    EXPECT_EQ(flags[segments[i].begin], 1);
    EXPECT_EQ(flags[segments[i].end], 1);
  }

  // 3. Every flagged point is covered by exactly one segment.
  for (std::size_t p = 0; p < flags.size(); ++p) {
    std::size_t covering = 0;
    for (const Segment& s : segments) {
      covering += (p >= s.begin && p <= s.end);
    }
    if (flags[p]) {
      EXPECT_EQ(covering, 1u) << "point " << p;
    } else {
      EXPECT_LE(covering, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFlags, MergeSegmentsProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(0u, 1u, 2u, 5u)));

// ---- interpolate_segments ---------------------------------------------------

TEST(Interpolate, LinearBetweenBoundaries) {
  std::vector<float> v = {0, 100, 100, 100, 4};
  interpolate_segments(v, {{1, 3}});
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_FLOAT_EQ(v[1], 1.0f);
  EXPECT_FLOAT_EQ(v[2], 2.0f);
  EXPECT_FLOAT_EQ(v[3], 3.0f);
  EXPECT_FLOAT_EQ(v[4], 4.0f);
}

TEST(Interpolate, LeadingSegmentHoldsRightBoundary) {
  std::vector<float> v = {50, 60, 7, 8};
  interpolate_segments(v, {{0, 1}});
  EXPECT_FLOAT_EQ(v[0], 7.0f);
  EXPECT_FLOAT_EQ(v[1], 7.0f);
}

TEST(Interpolate, TrailingSegmentHoldsLeftBoundary) {
  std::vector<float> v = {1, 2, 90, 95};
  interpolate_segments(v, {{2, 3}});
  EXPECT_FLOAT_EQ(v[2], 2.0f);
  EXPECT_FLOAT_EQ(v[3], 2.0f);
}

TEST(Interpolate, WholeSeriesAnomalousLeftUntouched) {
  std::vector<float> v = {5, 6, 7};
  interpolate_segments(v, {{0, 2}});
  EXPECT_FLOAT_EQ(v[0], 5.0f);
  EXPECT_FLOAT_EQ(v[2], 7.0f);
}

TEST(Interpolate, MultipleSegments) {
  std::vector<float> v = {0, 99, 2, 99, 99, 5};
  interpolate_segments(v, {{1, 1}, {3, 4}});
  EXPECT_FLOAT_EQ(v[1], 1.0f);
  EXPECT_FLOAT_EQ(v[3], 3.0f);
  EXPECT_FLOAT_EQ(v[4], 4.0f);
}

TEST(Interpolate, OutOfRangeSegmentThrows) {
  std::vector<float> v = {1, 2, 3};
  EXPECT_THROW(interpolate_segments(v, {{1, 5}}), Error);
}

// ---- filter lifecycle -------------------------------------------------------

TEST(Filter, UseBeforeFitThrows) {
  FilterConfig cfg;
  cfg.autoencoder.window = 4;
  tensor::Rng rng(1);
  EvChargingAnomalyFilter filter(cfg, rng);
  data::TimeSeries s;
  s.values.assign(50, 1.0f);
  EXPECT_FALSE(filter.fitted());
  EXPECT_THROW(filter.detect(s), Error);
  EXPECT_THROW(filter.filter(s), Error);
  EXPECT_THROW(filter.score(s), Error);
  EXPECT_THROW(filter.set_threshold_rule(ThresholdRule{}), Error);
}

TEST(Filter, FitRejectsShortSeries) {
  FilterConfig cfg;
  cfg.autoencoder.window = 24;
  tensor::Rng rng(2);
  EvChargingAnomalyFilter filter(cfg, rng);
  data::TimeSeries tiny;
  tiny.values.assign(10, 1.0f);
  EXPECT_THROW(filter.fit(tiny, rng), Error);
}

TEST(Filter, DetectsObviousSpikesOnSyntheticWave) {
  // Tiny AE on a clean sine-like wave; spikes of 5x amplitude must score
  // far above the 98th-percentile threshold.
  FilterConfig cfg;
  cfg.autoencoder.window = 8;
  cfg.autoencoder.encoder_units = 12;
  cfg.autoencoder.latent_units = 6;
  cfg.autoencoder.max_epochs = 40;
  cfg.autoencoder.dropout = 0.0f;

  data::TimeSeries train;
  for (int i = 0; i < 400; ++i) {
    train.values.push_back(10.0f + 5.0f * std::sin(i * 0.26f));
  }
  tensor::Rng rng(3);
  EvChargingAnomalyFilter filter(cfg, rng);
  filter.fit(train, rng);
  EXPECT_TRUE(filter.fitted());
  EXPECT_GT(filter.threshold(), 0.0f);

  data::TimeSeries test;
  test.values = train.values;
  test.init_clean_labels();
  for (std::size_t i : {100u, 101u, 102u, 250u, 251u}) {
    test.values[i] *= 5.0f;
    test.labels[i] = 1;
  }

  const FilterResult result = filter.filter(test);
  ASSERT_EQ(result.flags.size(), test.size());

  // Every injected spike must be flagged...
  for (std::size_t i : {100u, 101u, 102u, 250u, 251u}) {
    EXPECT_EQ(result.flags[i], 1) << "missed spike at " << i;
  }
  // ...and the filtered series must pull those points back near the wave.
  for (std::size_t i : {101u, 250u}) {
    EXPECT_LT(std::abs(result.filtered.values[i] - train.values[i]), 6.0f);
  }
  // Segments were recorded and the filtered labels read clean.
  EXPECT_GE(result.segments.size(), 2u);
  EXPECT_EQ(result.filtered.anomaly_count(), 0u);
}

TEST(Filter, ThresholdRuleSwapWithoutRetrain) {
  FilterConfig cfg;
  cfg.autoencoder.window = 6;
  cfg.autoencoder.encoder_units = 8;
  cfg.autoencoder.latent_units = 4;
  cfg.autoencoder.max_epochs = 10;

  data::TimeSeries train;
  for (int i = 0; i < 200; ++i) {
    train.values.push_back(std::sin(i * 0.3f));
  }
  tensor::Rng rng(4);
  EvChargingAnomalyFilter filter(cfg, rng);
  filter.fit(train, rng);

  const float pct_threshold = filter.threshold();
  filter.set_threshold_rule(ThresholdRule{ThresholdKind::kMeanStd, 3.0});
  const float msd_threshold = filter.threshold();
  // Different rules generally give different cutoffs; both positive.
  EXPECT_GT(msd_threshold, 0.0f);
  EXPECT_NE(pct_threshold, msd_threshold);
}

}  // namespace
}  // namespace evfl::anomaly
