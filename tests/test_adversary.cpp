#include "fl/adversary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fl/fedavg.hpp"
#include "fl/validator.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {
namespace {

WeightUpdate make_update(int id, std::uint32_t round,
                         std::vector<float> weights) {
  WeightUpdate u;
  u.client_id = id;
  u.round = round;
  u.sample_count = 10;
  u.weights = std::move(weights);
  return u;
}

double movement_norm(const WeightUpdate& u, const std::vector<float>& ref) {
  double sq = 0.0;
  for (std::size_t i = 0; i < u.weights.size(); ++i) {
    const double d =
        static_cast<double>(u.weights[i]) - static_cast<double>(ref[i]);
    sq += d * d;
  }
  return std::sqrt(sq);
}

TEST(AttackKind, ParseRoundTripsAndRejectsUnknown) {
  for (const AttackKind k :
       {AttackKind::kNone, AttackKind::kSignFlip, AttackKind::kAlie,
        AttackKind::kLabelFlip, AttackKind::kBackdoor}) {
    EXPECT_EQ(parse_attack_kind(to_string(k)), k);
  }
  EXPECT_THROW(parse_attack_kind("alie!"), Error);
  EXPECT_THROW(parse_attack_kind(""), Error);
}

TEST(AdversarySuite, ConfigValidation) {
  AdversaryConfig bad;
  bad.fraction = 1.5;
  EXPECT_THROW(AdversarySuite{bad}, Error);
  bad = AdversaryConfig{};
  bad.norm_budget = 0.0;
  EXPECT_THROW(AdversarySuite{bad}, Error);
  bad = AdversaryConfig{};
  bad.trigger_lo = 2.0f;
  bad.trigger_hi = 1.0f;
  EXPECT_THROW(AdversarySuite{bad}, Error);
}

TEST(AdversarySuite, MembershipIsDeterministicAndSeedDependent) {
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kAlie;
  cfg.fraction = 0.3;
  cfg.seed = 7;
  const AdversarySuite a(cfg);
  const AdversarySuite b(cfg);
  cfg.seed = 8;
  const AdversarySuite c(cfg);
  std::size_t differs = 0;
  for (int id = 0; id < 200; ++id) {
    EXPECT_EQ(a.is_attacker(id), b.is_attacker(id));
    if (a.is_attacker(id) != c.is_attacker(id)) ++differs;
  }
  EXPECT_GT(differs, 0u);  // a different seed compromises a different set
}

TEST(AdversarySuite, ExplicitAttackerListWins) {
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kSignFlip;
  cfg.fraction = 0.0;  // would select nobody by hash
  cfg.attackers = {3, 7};
  const AdversarySuite suite(cfg);
  EXPECT_TRUE(suite.is_attacker(3));
  EXPECT_TRUE(suite.is_attacker(7));
  EXPECT_FALSE(suite.is_attacker(4));
}

TEST(AdversarySuite, RoundWindowGatesActivity) {
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kAlie;
  cfg.attackers = {1};
  cfg.round_begin = 3;
  cfg.round_end = 5;
  const AdversarySuite suite(cfg);
  EXPECT_FALSE(suite.active(1, 2));
  EXPECT_TRUE(suite.active(1, 3));
  EXPECT_TRUE(suite.active(1, 5));
  EXPECT_FALSE(suite.active(1, 6));
  EXPECT_FALSE(suite.active(2, 4));  // non-member never active
}

TEST(AdversarySuite, PickAttackersIsExactAndDeterministic) {
  std::vector<int> ids;
  for (int i = 0; i < 40; ++i) ids.push_back(i);
  const std::vector<int> a = AdversarySuite::pick_attackers(0.3, 99, ids);
  const std::vector<int> b = AdversarySuite::pick_attackers(0.3, 99, ids);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 12u);  // floor(0.3 * 40), exactly
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(AdversarySuite, SignFlipReversesMovement) {
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kSignFlip;
  cfg.attackers = {0};
  cfg.sign_scale = 10.0;
  const AdversarySuite suite(cfg);
  const std::vector<float> ref = {1.0f, -2.0f};
  WeightUpdate u = make_update(0, 0, {1.5f, -2.5f});  // movement (+0.5, -0.5)
  EXPECT_TRUE(suite.poison_update(u, ref));
  EXPECT_FLOAT_EQ(u.weights[0], 1.0f - 10.0f * 0.5f);
  EXPECT_FLOAT_EQ(u.weights[1], -2.0f + 10.0f * 0.5f);

  // Honest clients pass through untouched.
  WeightUpdate honest = make_update(1, 0, {1.5f, -2.5f});
  EXPECT_FALSE(suite.poison_update(honest, ref));
  EXPECT_FLOAT_EQ(honest.weights[0], 1.5f);
}

TEST(AdversarySuite, AlieStaysExactlyWithinNormBudgetAndPassesValidator) {
  // The defining property of the colluding attack: every poisoned update
  // has movement norm == norm_budget, so a validator clipping at that norm
  // admits it without touching a single weight.
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kAlie;
  cfg.attackers = {0, 1, 2};
  cfg.norm_budget = 1.0;
  const AdversarySuite suite(cfg);
  const std::vector<float> ref(64, 0.25f);

  ValidatorConfig vcfg;
  vcfg.max_update_norm = 1.0;
  RoundGate gate(vcfg, 0, ref);

  WeightUpdate first;
  for (int id = 0; id < 3; ++id) {
    WeightUpdate u = make_update(id, 0, std::vector<float>(64, 0.3f));
    EXPECT_TRUE(suite.poison_update(u, ref));
    EXPECT_NEAR(movement_norm(u, ref), 1.0, 1e-5);
    const WeightUpdate before = u;
    EXPECT_TRUE(gate.admit(u));
    EXPECT_EQ(u.weights, before.weights);  // admitted *unclipped*
    if (id == 0) first = u;
    // Collusion without communication: every attacker ships the identical
    // drift regardless of its honest training result.
    EXPECT_EQ(u.weights, first.weights);
  }
  EXPECT_EQ(gate.audit().clipped, 0u);
}

TEST(AdversarySuite, LabelFlipReflectsWithinObservedRange) {
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kLabelFlip;
  cfg.attackers = {5};
  const AdversarySuite suite(cfg);
  tensor::Tensor3 x(3, 2, 1);
  tensor::Tensor3 y(3, 1, 1);
  y(0, 0, 0) = 0.0f;
  y(1, 0, 0) = 0.5f;
  y(2, 0, 0) = 1.0f;
  EXPECT_EQ(suite.poison_labels(5, 0, x, y), 3u);
  EXPECT_FLOAT_EQ(y(0, 0, 0), 1.0f);  // min became max
  EXPECT_FLOAT_EQ(y(1, 0, 0), 0.5f);  // midpoint is a fixed point
  EXPECT_FLOAT_EQ(y(2, 0, 0), 0.0f);  // max became min

  // Honest client: untouched.
  tensor::Tensor3 y2(1, 1, 1);
  y2(0, 0, 0) = 0.7f;
  EXPECT_EQ(suite.poison_labels(6, 0, x, y2), 0u);
  EXPECT_FLOAT_EQ(y2(0, 0, 0), 0.7f);
}

TEST(AdversarySuite, BackdoorRelabelsOnlyTriggeredSamples) {
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kBackdoor;
  cfg.attackers = {1};
  cfg.trigger_lo = 0.5f;
  cfg.trigger_hi = 1.0f;
  cfg.backdoor_value = -9.0f;
  const AdversarySuite suite(cfg);
  tensor::Tensor3 x(2, 2, 1);
  // Sample 0 mean 0.25 (off-trigger), sample 1 mean 0.75 (in-trigger).
  x(0, 0, 0) = 0.25f;
  x(0, 1, 0) = 0.25f;
  x(1, 0, 0) = 0.5f;
  x(1, 1, 0) = 1.0f;
  tensor::Tensor3 y(2, 1, 1);
  y(0, 0, 0) = 0.3f;
  y(1, 0, 0) = 0.8f;
  EXPECT_EQ(suite.poison_labels(1, 0, x, y), 1u);
  EXPECT_FLOAT_EQ(y(0, 0, 0), 0.3f);   // off-trigger label intact
  EXPECT_FLOAT_EQ(y(1, 0, 0), -9.0f);  // triggered label rewritten
}

TEST(AdversarySuite, ModelAndDataHooksAreDisjoint) {
  // poison_update is a no-op for data attacks; poison_labels for model
  // attacks — so wiring both hooks unconditionally never double-poisons.
  AdversaryConfig cfg;
  cfg.kind = AttackKind::kLabelFlip;
  cfg.attackers = {0};
  const AdversarySuite data_suite(cfg);
  const std::vector<float> ref = {0.0f};
  WeightUpdate u = make_update(0, 0, {1.0f});
  EXPECT_FALSE(data_suite.poison_update(u, ref));

  cfg.kind = AttackKind::kAlie;
  const AdversarySuite model_suite(cfg);
  tensor::Tensor3 x(1, 1, 1);
  tensor::Tensor3 y(1, 1, 1);
  y(0, 0, 0) = 0.4f;
  EXPECT_EQ(model_suite.poison_labels(0, 0, x, y), 0u);
  EXPECT_FLOAT_EQ(y(0, 0, 0), 0.4f);
}

TEST(AdversarySuite, ColludingAlieDefeatsMeanButNotRobustRules) {
  // Pinned regression of the tentpole scenario in miniature: 3 of 10
  // within-norm colluders drag the clipped FedAvg mean a macroscopic
  // distance from the honest consensus, while trimmed mean and median stay
  // on it.  (The full-pipeline R² version lives in bench_adversarial.)
  AdversaryConfig acfg;
  acfg.kind = AttackKind::kAlie;
  acfg.fraction = 0.3;
  acfg.seed = 21;
  std::vector<int> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(i);
  acfg.attackers = AdversarySuite::pick_attackers(acfg.fraction, acfg.seed, ids);
  ASSERT_EQ(acfg.attackers.size(), 3u);
  acfg.norm_budget = 1.0;
  const AdversarySuite suite(acfg);

  const std::vector<float> ref(16, 0.0f);
  ValidatorConfig vcfg;
  vcfg.max_update_norm = 1.0;
  RoundGate gate(vcfg, 0, ref);
  std::vector<WeightUpdate> admitted;
  for (int id = 0; id < 10; ++id) {
    // Honest movement: small, zero-mean-ish jitter around the broadcast.
    std::vector<float> w(16, (id % 2 == 0) ? 0.01f : -0.01f);
    WeightUpdate u = make_update(id, 0, std::move(w));
    suite.poison_update(u, ref);
    ASSERT_TRUE(gate.admit(u));
    admitted.push_back(std::move(u));
  }
  EXPECT_EQ(gate.audit().clipped, 0u);  // the whole attack passed the gate

  const std::vector<float> mean = fed_avg(admitted);
  double mean_norm = 0.0;
  for (const float v : mean) mean_norm += static_cast<double>(v) * v;
  mean_norm = std::sqrt(mean_norm);
  // 3/10 colluders with unit budget drift the mean by ~0.3.
  EXPECT_GT(mean_norm, 0.2);

  for (const AggregationRule rule : {AggregationRule::kTrimmedMean,
                                     AggregationRule::kCoordinateMedian}) {
    FedAvgConfig cfg;
    cfg.rule = rule;
    cfg.trim_fraction = 0.3;
    const std::vector<float> robust = fed_avg(admitted, cfg, &ref);
    double norm = 0.0;
    for (const float v : robust) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    EXPECT_LT(norm, 0.05) << to_string(rule);
  }
}

}  // namespace
}  // namespace evfl::fl
