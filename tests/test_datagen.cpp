#include "datagen/shenzhen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/timeseries.hpp"

namespace evfl::datagen {
namespace {

TEST(ZoneProfile, PresetsAreDistinct) {
  const ZoneProfile a = zone_102(), b = zone_105(), c = zone_108();
  EXPECT_EQ(a.zone_id, "102");
  EXPECT_EQ(b.zone_id, "105");
  EXPECT_EQ(c.zone_id, "108");
  // Zone 108 must be the "hard" zone: most natural spikes.
  EXPECT_GT(c.spike_prob, a.spike_prob);
  EXPECT_GT(c.spike_prob, b.spike_prob);
  EXPECT_GT(c.noise_std, a.noise_std);
}

TEST(ZoneProfile, LookupByIdAndUnknownThrows) {
  EXPECT_EQ(zone_by_id("105").zone_id, "105");
  EXPECT_THROW(zone_by_id("999"), Error);
}

TEST(ExpectedDemand, NonNegativeEverywhere) {
  const ZoneProfile p = zone_102();
  for (std::size_t h = 0; h < 24 * 14; ++h) {
    EXPECT_GE(expected_demand(p, h, 3, 4344), 0.0f);
  }
}

TEST(ExpectedDemand, DailyDoublePeakShape) {
  const ZoneProfile p = zone_102();
  // Compare a peak-hour to the overnight trough on the same (week)day.
  const float evening = expected_demand(p, 19, 0, 4344);  // Monday 7pm-ish
  const float night = expected_demand(p, 3, 0, 4344);     // Monday 3am
  EXPECT_GT(evening, night + 10.0f);
}

TEST(ExpectedDemand, WeekendEffect) {
  const ZoneProfile business = zone_105();  // weekend_factor < 1
  // start_weekday=0 (Monday): day 5 = Saturday.
  const float weekday = expected_demand(business, 12, 0, 4344);
  const float weekend = expected_demand(business, 5 * 24 + 12, 0, 4344);
  EXPECT_GT(weekday, weekend);
}

TEST(GenerateZone, LengthLabelsAndPositivity) {
  GeneratorConfig cfg;
  cfg.hours = 500;
  tensor::Rng rng(1);
  const data::TimeSeries s = generate_zone(zone_102(), cfg, rng);
  EXPECT_EQ(s.size(), 500u);
  EXPECT_EQ(s.labels.size(), 500u);
  EXPECT_EQ(s.anomaly_count(), 0u);
  for (float v : s.values) EXPECT_GE(v, 0.0f);
}

TEST(GenerateZone, Deterministic) {
  GeneratorConfig cfg;
  cfg.hours = 200;
  tensor::Rng a(9), b(9);
  const auto s1 = generate_zone(zone_105(), cfg, a);
  const auto s2 = generate_zone(zone_105(), cfg, b);
  EXPECT_EQ(s1.values, s2.values);
}

TEST(GenerateZone, DailyAutocorrelation) {
  // A 24 h-seasonal series must correlate strongly with itself at lag 24.
  GeneratorConfig cfg;
  cfg.hours = 2000;
  tensor::Rng rng(2);
  const auto s = generate_zone(zone_102(), cfg, rng);
  const data::SeriesStats st = data::compute_stats(s.values);
  double acc = 0.0;
  for (std::size_t i = 24; i < s.size(); ++i) {
    acc += (s.values[i] - st.mean) * (s.values[i - 24] - st.mean);
  }
  const double corr =
      acc / ((s.size() - 24) * static_cast<double>(st.stddev) * st.stddev);
  EXPECT_GT(corr, 0.5);
}

TEST(GenerateClients, PaperShape) {
  GeneratorConfig cfg;  // defaults: 4,344 hours
  const auto clients = generate_clients(cfg);
  ASSERT_EQ(clients.size(), 3u);
  for (const auto& c : clients) {
    EXPECT_EQ(c.size(), 4344u);
  }
  EXPECT_EQ(clients[0].name, "zone-102");
  EXPECT_EQ(clients[2].name, "zone-108");
  // Independent noise: series differ.
  EXPECT_NE(clients[0].values, clients[1].values);
}

TEST(GenerateClients, Zone108IsSpikier) {
  GeneratorConfig cfg;
  const auto clients = generate_clients(cfg);
  // Count extreme upward deviations (> mean + 3 std of zone 102's scale).
  auto spike_count = [](const data::TimeSeries& s) {
    const data::SeriesStats st = data::compute_stats(s.values);
    std::size_t n = 0;
    for (float v : s.values) n += (v > st.mean + 2.5f * st.stddev);
    return n;
  };
  EXPECT_GT(spike_count(clients[2]), spike_count(clients[1]));
}

TEST(GenerateZone, RejectsZeroHours) {
  GeneratorConfig cfg;
  cfg.hours = 0;
  tensor::Rng rng(1);
  EXPECT_THROW(generate_zone(zone_102(), cfg, rng), Error);
}

}  // namespace
}  // namespace evfl::datagen
