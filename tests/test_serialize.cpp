#include "fl/serialize.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"

namespace evfl::fl {
namespace {

WeightUpdate sample_update() {
  WeightUpdate u;
  u.client_id = 2;
  u.round = 7;
  u.sample_count = 3456;
  u.train_loss = 0.0123f;
  u.weights = {1.0f, -2.5f, 0.0f, 3.14159f};
  return u;
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32, StandardCheckValues) {
  const auto crc_of = [](const char* s) {
    return crc32(reinterpret_cast<const std::uint8_t*>(s),
                 std::char_traits<char>::length(s));
  };
  EXPECT_EQ(crc_of("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc_of("abc"), 0x352441C2u);
  EXPECT_EQ(crc_of("message digest"), 0x20159D7Fu);
  EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

/// Pre-slicing byte-at-a-time CRC-32 (reflected, poly 0xEDB88320) — the
/// implementation this module shipped before the slice-by-8 rewrite, kept
/// as the oracle the fast path is pinned against.
std::uint32_t crc32_bytewise(const std::uint8_t* data, std::size_t size) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c ^= data[i];
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32, SliceBy8MatchesBytewiseOracleAcrossSizesAndOffsets) {
  std::mt19937 rng(99);
  std::vector<std::uint8_t> buf(4096 + 8);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
  // Sweep lengths around the 8-byte chunk boundary plus unaligned starts:
  // slicing bugs live exactly at chunk edges and odd alignments.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
        std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{63}, std::size_t{64}, std::size_t{255},
        std::size_t{1021}, std::size_t{4096}}) {
    for (std::size_t offset = 0; offset < 8; ++offset) {
      EXPECT_EQ(crc32(buf.data() + offset, len),
                crc32_bytewise(buf.data() + offset, len))
          << "len=" << len << " offset=" << offset;
    }
  }
}

TEST(Serialize, UpdateRoundTrip) {
  const WeightUpdate u = sample_update();
  const auto bytes = serialize(u);
  EXPECT_EQ(peek_kind(bytes), MessageKind::kWeightUpdate);
  const WeightUpdate back = deserialize_update(bytes);
  EXPECT_EQ(back.client_id, u.client_id);
  EXPECT_EQ(back.round, u.round);
  EXPECT_EQ(back.sample_count, u.sample_count);
  EXPECT_FLOAT_EQ(back.train_loss, u.train_loss);
  EXPECT_EQ(back.weights, u.weights);
}

TEST(Serialize, GlobalRoundTrip) {
  GlobalModel g;
  g.round = 4;
  g.weights = {0.5f, 0.25f};
  const auto bytes = serialize(g);
  EXPECT_EQ(peek_kind(bytes), MessageKind::kGlobalModel);
  const GlobalModel back = deserialize_global(bytes);
  EXPECT_EQ(back.round, 4u);
  EXPECT_EQ(back.weights, g.weights);
}

TEST(Serialize, KindConfusionRejected) {
  const auto update_bytes = serialize(sample_update());
  EXPECT_THROW(deserialize_global(update_bytes), FormatError);
  GlobalModel g;
  g.weights = {1.0f};
  EXPECT_THROW(deserialize_update(serialize(g)), FormatError);
}

TEST(Serialize, CorruptedPayloadDetectedByCrc) {
  auto bytes = serialize(sample_update());
  bytes[bytes.size() - 2] ^= 0xFF;  // flip bits inside the float payload
  EXPECT_THROW(deserialize_update(bytes), FormatError);
}

TEST(Serialize, CorruptedMagicRejected) {
  auto bytes = serialize(sample_update());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize_update(bytes), FormatError);
  EXPECT_THROW(peek_kind(bytes), FormatError);
}

TEST(Serialize, TruncationRejected) {
  const auto bytes = serialize(sample_update());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{10},
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> partial(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(deserialize_update(partial), FormatError) << "cut=" << cut;
  }
}

TEST(Serialize, UnsupportedVersionRejected) {
  auto bytes = serialize(sample_update());
  bytes[4] = 0x77;  // version lives right after the 4-byte magic
  EXPECT_THROW(deserialize_update(bytes), FormatError);
}

TEST(Serialize, EmptyWeightsRoundTrip) {
  WeightUpdate u;
  u.client_id = 0;
  u.weights = {};
  const WeightUpdate back = deserialize_update(serialize(u));
  EXPECT_TRUE(back.weights.empty());
}

TEST(Serialize, RandomMutationsNeverCrashOnlyThrowOrReject) {
  // Fuzz-ish: single-byte mutations of a valid message must either decode
  // to *something* (mutations inside float payload bytes can cancel out in
  // CRC only if they don't change it — effectively impossible for single
  // bytes, but mutations of the loss field are CRC-exempt) or throw
  // FormatError.  They must never crash or hang.
  const auto bytes = serialize(sample_update());
  std::mt19937 rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      const WeightUpdate u = deserialize_update(mutated);
      // Decoded despite mutation: only header fields outside magic /
      // version / kind / count / crc / payload can differ (round, client,
      // samples, loss) — the weights must still be intact.
      EXPECT_EQ(u.weights, sample_update().weights);
    } catch (const FormatError&) {
      // rejected — fine
    }
  }
}

TEST(Serialize, RandomTruncationsNeverCrash) {
  const auto bytes = serialize(sample_update());
  std::mt19937 rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t cut = rng() % bytes.size();
    std::vector<std::uint8_t> partial(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(deserialize_update(partial), FormatError);
  }
}

TEST(Serialize, PayloadSizeIsHeaderPlusFloats) {
  const WeightUpdate u = sample_update();
  const auto bytes = serialize(u);
  // magic 4 + version 2 + kind 2 + round 4 + client 4 + samples 8 + loss 4
  // + count 8 + crc 4 = 40 header bytes.
  EXPECT_EQ(bytes.size(), 40u + u.weights.size() * sizeof(float));
}

}  // namespace
}  // namespace evfl::fl
