// Numerical gradient verification for every trainable layer, including the
// full LSTM BPTT and the autoencoder stack.  If these pass, the substrate's
// learning dynamics are trustworthy.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/repeat_vector.hpp"
#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace evfl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor3;

Tensor3 random_tensor(std::size_t n, std::size_t t, std::size_t f, Rng& rng,
                      float scale = 1.0f) {
  Tensor3 x(n, t, f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = scale * rng.normal();
  }
  return x;
}

/// Central-difference check of dLoss/dW against the analytic backward pass.
/// Checks every `stride`-th weight to bound runtime.
void expect_gradients_match(Sequential& model, const Tensor3& x,
                            const Tensor3& y, std::size_t stride = 7,
                            float tol_abs = 2e-3f, float tol_rel = 6e-2f) {
  MseLoss loss;

  model.zero_grads();
  const Tensor3 pred = model.forward(x, /*training=*/false);
  const LossResult lr = loss.value_and_grad(pred, y);
  model.backward(lr.grad);

  auto params = model.params();
  std::size_t checked = 0, flat_index = 0;
  for (auto& p : params) {
    for (std::size_t i = 0; i < p.value->size(); ++i, ++flat_index) {
      if (flat_index % stride != 0) continue;
      float& w = p.value->data()[i];
      const float analytic = p.grad->data()[i];

      const float eps = std::max(1e-3f, 1e-2f * std::abs(w));
      const float saved = w;
      w = saved + eps;
      const float lp = loss.value(model.forward(x, false), y);
      w = saved - eps;
      const float lm = loss.value(model.forward(x, false), y);
      w = saved;
      const float numeric = (lp - lm) / (2.0f * eps);

      const float err = std::abs(numeric - analytic);
      const float scale = std::max(std::abs(numeric), std::abs(analytic));
      EXPECT_LE(err, tol_abs + tol_rel * scale)
          << p.name << "[" << i << "]: analytic=" << analytic
          << " numeric=" << numeric;
      ++checked;
    }
  }
  EXPECT_GE(checked, 5u) << "gradient check sampled too few weights";
}

TEST(GradCheck, DenseLinear) {
  Rng rng(1);
  Sequential model;
  model.emplace<Dense>(3, Activation::kLinear, rng, 4);
  const Tensor3 x = random_tensor(5, 1, 4, rng);
  const Tensor3 y = random_tensor(5, 1, 3, rng);
  expect_gradients_match(model, x, y, 1);
}

TEST(GradCheck, DenseReluStack) {
  Rng rng(2);
  Sequential model;
  model.emplace<Dense>(8, Activation::kRelu, rng, 4);
  model.emplace<Dense>(1, Activation::kLinear, rng, 8);
  const Tensor3 x = random_tensor(6, 1, 4, rng);
  const Tensor3 y = random_tensor(6, 1, 1, rng);
  expect_gradients_match(model, x, y, 1);
}

TEST(GradCheck, DenseTanhSigmoid) {
  Rng rng(3);
  Sequential model;
  model.emplace<Dense>(5, Activation::kTanh, rng, 3);
  model.emplace<Dense>(2, Activation::kSigmoid, rng, 5);
  const Tensor3 x = random_tensor(4, 1, 3, rng);
  const Tensor3 y = random_tensor(4, 1, 2, rng, 0.3f);
  expect_gradients_match(model, x, y, 1);
}

TEST(GradCheck, DenseTimeDistributed) {
  Rng rng(4);
  Sequential model;
  model.emplace<Dense>(2, Activation::kTanh, rng, 3);
  const Tensor3 x = random_tensor(3, 6, 3, rng);
  const Tensor3 y = random_tensor(3, 6, 2, rng, 0.5f);
  expect_gradients_match(model, x, y, 1);
}

TEST(GradCheck, LstmLastStep) {
  Rng rng(5);
  Sequential model;
  model.emplace<Lstm>(4, /*return_sequences=*/false, rng, 2);
  const Tensor3 x = random_tensor(3, 5, 2, rng);
  const Tensor3 y = random_tensor(3, 1, 4, rng, 0.5f);
  expect_gradients_match(model, x, y, 1);
}

TEST(GradCheck, LstmReturnSequences) {
  Rng rng(6);
  Sequential model;
  model.emplace<Lstm>(3, /*return_sequences=*/true, rng, 2);
  const Tensor3 x = random_tensor(2, 6, 2, rng);
  const Tensor3 y = random_tensor(2, 6, 3, rng, 0.5f);
  expect_gradients_match(model, x, y, 1);
}

TEST(GradCheck, LstmWideFusedGateBlocks) {
  // units = 40 makes the fused gate width 4H = 160, which crosses the GEMM
  // kernels' 128-column block boundary.  This drives the LSTM's fused
  // pre-activation / in-place gate-view path through multi-tile blocked
  // matmuls rather than the single-tile fast case the small units above hit.
  Rng rng(12);
  Sequential model;
  model.emplace<Lstm>(40, /*return_sequences=*/false, rng, 2);
  const Tensor3 x = random_tensor(3, 4, 2, rng);
  const Tensor3 y = random_tensor(3, 1, 40, rng, 0.5f);
  expect_gradients_match(model, x, y, 97);
}

TEST(GradCheck, ForecasterArchitecture) {
  // The paper's forecaster shrunk: LSTM(last) -> Dense(relu) -> Dense(1).
  Rng rng(7);
  Sequential model;
  model.emplace<Lstm>(6, /*return_sequences=*/false, rng, 1);
  model.emplace<Dense>(4, Activation::kRelu, rng, 6);
  model.emplace<Dense>(1, Activation::kLinear, rng, 4);
  const Tensor3 x = random_tensor(4, 8, 1, rng);
  const Tensor3 y = random_tensor(4, 1, 1, rng);
  expect_gradients_match(model, x, y, 3);
}

TEST(GradCheck, AutoencoderArchitecture) {
  // The paper's AE shrunk: LSTM(seq) -> LSTM(last) -> RepeatVector ->
  // LSTM(seq) -> LSTM(seq) -> TimeDistributed Dense(1).
  Rng rng(8);
  const std::size_t window = 5;
  Sequential model;
  model.emplace<Lstm>(6, true, rng, 1);
  model.emplace<Lstm>(3, false, rng, 6);
  model.emplace<RepeatVector>(window);
  model.emplace<Lstm>(3, true, rng, 3);
  model.emplace<Lstm>(6, true, rng, 3);
  model.emplace<Dense>(1, Activation::kLinear, rng, 6);
  const Tensor3 x = random_tensor(3, window, 1, rng, 0.5f);
  expect_gradients_match(model, x, x, 5);
}

TEST(GradCheck, StackedLstm) {
  Rng rng(9);
  Sequential model;
  model.emplace<Lstm>(4, true, rng, 2);
  model.emplace<Lstm>(3, false, rng, 4);
  model.emplace<Dense>(1, Activation::kLinear, rng, 3);
  const Tensor3 x = random_tensor(3, 4, 2, rng);
  const Tensor3 y = random_tensor(3, 1, 1, rng);
  expect_gradients_match(model, x, y, 2);
}

TEST(GradCheck, InputGradientDense) {
  // Verify dLoss/dInput as well (needed for correct stacking).
  Rng rng(10);
  Sequential model;
  model.emplace<Dense>(3, Activation::kTanh, rng, 4);
  MseLoss loss;

  Tensor3 x = random_tensor(2, 1, 4, rng);
  const Tensor3 y = random_tensor(2, 1, 3, rng, 0.5f);

  model.zero_grads();
  const LossResult lr = loss.value_and_grad(model.forward(x, false), y);
  const Tensor3 dx = model.backward(lr.grad);

  for (std::size_t i = 0; i < x.size(); ++i) {
    const float eps = 1e-3f;
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const float lp = loss.value(model.forward(x, false), y);
    x.data()[i] = saved - eps;
    const float lm = loss.value(model.forward(x, false), y);
    x.data()[i] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(dx.data()[i], numeric,
                2e-3f + 6e-2f * std::abs(numeric));
  }
}

TEST(GradCheck, InputGradientLstm) {
  Rng rng(11);
  Sequential model;
  model.emplace<Lstm>(3, false, rng, 2);
  MseLoss loss;

  Tensor3 x = random_tensor(2, 4, 2, rng);
  const Tensor3 y = random_tensor(2, 1, 3, rng, 0.5f);

  model.zero_grads();
  const LossResult lr = loss.value_and_grad(model.forward(x, false), y);
  const Tensor3 dx = model.backward(lr.grad);

  for (std::size_t i = 0; i < x.size(); ++i) {
    const float eps = 1e-3f;
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const float lp = loss.value(model.forward(x, false), y);
    x.data()[i] = saved - eps;
    const float lm = loss.value(model.forward(x, false), y);
    x.data()[i] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(dx.data()[i], numeric,
                2e-3f + 6e-2f * std::abs(numeric));
  }
}

}  // namespace
}  // namespace evfl::nn
