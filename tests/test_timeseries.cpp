#include "data/timeseries.hpp"

#include <gtest/gtest.h>

namespace evfl::data {
namespace {

TimeSeries make_series(std::size_t n) {
  TimeSeries s;
  s.name = "test";
  for (std::size_t i = 0; i < n; ++i) {
    s.values.push_back(static_cast<float>(i));
  }
  return s;
}

TEST(TimeSeries, ValidateDetectsMisalignedLabels) {
  TimeSeries s = make_series(5);
  EXPECT_NO_THROW(s.validate());
  s.labels = {1, 0};
  EXPECT_THROW(s.validate(), Error);
  s.init_clean_labels();
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.labels.size(), 5u);
}

TEST(TimeSeries, AnomalyCount) {
  TimeSeries s = make_series(4);
  EXPECT_EQ(s.anomaly_count(), 0u);
  s.labels = {0, 1, 1, 0};
  EXPECT_EQ(s.anomaly_count(), 2u);
}

TEST(TimeSeries, SlicePreservesLabels) {
  TimeSeries s = make_series(6);
  s.labels = {0, 1, 0, 1, 0, 1};
  const TimeSeries sub = s.slice(1, 4);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.values[0], 1.0f);
  EXPECT_EQ(sub.labels[0], 1);
  EXPECT_EQ(sub.labels[2], 1);
  EXPECT_THROW(s.slice(4, 8), Error);
}

TEST(TemporalSplit, EightyTwenty) {
  const TimeSeries s = make_series(100);
  const TrainTestSplit split = temporal_split(s, 0.8);
  EXPECT_EQ(split.split_index, 80u);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
  // Temporal: train strictly precedes test.
  EXPECT_EQ(split.train.values.back(), 79.0f);
  EXPECT_EQ(split.test.values.front(), 80.0f);
}

TEST(TemporalSplit, RejectsBadFraction) {
  const TimeSeries s = make_series(10);
  EXPECT_THROW(temporal_split(s, 0.0), Error);
  EXPECT_THROW(temporal_split(s, 1.0), Error);
  EXPECT_THROW(temporal_split(make_series(1), 0.5), Error);
}

TEST(SeriesStats, KnownValues) {
  const SeriesStats st = compute_stats({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_FLOAT_EQ(st.mean, 5.0f);
  EXPECT_FLOAT_EQ(st.stddev, 2.0f);
  EXPECT_FLOAT_EQ(st.min, 2.0f);
  EXPECT_FLOAT_EQ(st.max, 9.0f);
}

TEST(SeriesStats, EmptyIsZero) {
  const SeriesStats st = compute_stats({});
  EXPECT_EQ(st.mean, 0.0f);
  EXPECT_EQ(st.stddev, 0.0f);
}

}  // namespace
}  // namespace evfl::data
