// Fault-injection acceptance tests: the federated runtime must degrade
// gracefully — never hang, never diverge — under crashes, stragglers,
// corrupted updates, duplicates and stale replays.
#include <gtest/gtest.h>

#include <cmath>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "fl/driver.hpp"
#include "metrics/regression.hpp"
#include "nn/dense.hpp"

namespace evfl::fl {
namespace {

using faults::CorruptionMode;
using faults::FaultInjector;
using faults::FaultPlan;
using tensor::Rng;
using tensor::Tensor3;

ModelFactory linear_factory() {
  return [](Rng& rng) {
    nn::Sequential m;
    m.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, 1);
    return m;
  };
}

/// Homogeneous clients (all fit y = 2x): losing any one client must not
/// move the optimum, so fault-tolerance shows up as unchanged R², not as a
/// shifted consensus.
std::vector<std::unique_ptr<Client>> make_clients(std::size_t count,
                                                  std::size_t n_per_client,
                                                  std::uint64_t seed) {
  std::vector<std::unique_ptr<Client>> clients;
  Rng root(seed);
  for (int c = 0; c < static_cast<int>(count); ++c) {
    Tensor3 x(n_per_client, 1, 1), y(n_per_client, 1, 1);
    Rng data_rng = root.split();
    for (std::size_t i = 0; i < n_per_client; ++i) {
      const float xi = data_rng.uniform(-1.0f, 1.0f);
      x(i, 0, 0) = xi;
      y(i, 0, 0) = 2.0f * xi;
    }
    ClientConfig cfg;
    cfg.epochs_per_round = 10;
    cfg.learning_rate = 0.05f;
    cfg.batch_size = 16;
    clients.push_back(std::make_unique<Client>(c, x, y, linear_factory(), cfg,
                                               root.split()));
  }
  return clients;
}

/// R² of the final global linear model (w, b) on held-out y = 2x data.
double holdout_r2(const std::vector<float>& weights) {
  Rng rng(991);
  std::vector<float> actual, predicted;
  for (int i = 0; i < 256; ++i) {
    const float x = rng.uniform(-1.0f, 1.0f);
    actual.push_back(2.0f * x);
    predicted.push_back(weights[0] * x + weights[1]);
  }
  return metrics::r2_score(actual, predicted);
}

FederatedRunResult run_sync(const FaultInjector* injector,
                            std::uint64_t seed, std::size_t rounds) {
  auto clients = make_clients(3, 64, seed);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  SyncDriver driver(server, clients, net, nullptr, injector);
  return driver.run(rounds);
}

// --- FaultInjector unit behaviour -----------------------------------------

TEST(FaultInjector, DecisionsAreDeterministicAndScheduleFree) {
  FaultPlan plan;
  plan.crash(faults::kAllClients, 0, faults::kAllRounds, 0.5);
  const FaultInjector a(plan, 42);
  const FaultInjector b(plan, 42);
  const FaultInjector c(plan, 43);
  std::size_t agree = 0, differ_from_c = 0;
  for (int client = 0; client < 8; ++client) {
    for (std::uint32_t round = 0; round < 32; ++round) {
      const bool da = a.should_crash(client, round);
      // Same (plan, seed): identical answers, however often asked.
      EXPECT_EQ(da, b.should_crash(client, round));
      EXPECT_EQ(da, a.should_crash(client, round));
      agree += da;
      differ_from_c += (da != c.should_crash(client, round));
    }
  }
  // p=0.5 over 256 draws: both outcomes occur, and a different seed gives a
  // different pattern.
  EXPECT_GT(agree, 64u);
  EXPECT_LT(agree, 192u);
  EXPECT_GT(differ_from_c, 0u);
}

TEST(FaultInjector, CorruptionModesDamageUpdatesAsSpecified) {
  WeightUpdate u;
  u.client_id = 1;
  u.round = 0;
  u.weights = {1.0f, -2.0f, 3.0f, -4.0f};

  {
    FaultPlan plan;
    plan.corrupt(1, CorruptionMode::kNaN);
    WeightUpdate v = u;
    EXPECT_TRUE(FaultInjector(plan).corrupt_update(v));
    EXPECT_FALSE(all_finite(v.weights));
  }
  {
    FaultPlan plan;
    plan.corrupt(1, CorruptionMode::kInf);
    WeightUpdate v = u;
    EXPECT_TRUE(FaultInjector(plan).corrupt_update(v));
    EXPECT_FALSE(all_finite(v.weights));
  }
  {
    faults::FaultRule rule;
    rule.kind = faults::FaultKind::kCorrupt;
    rule.client = 1;
    rule.mode = CorruptionMode::kNormInflate;
    rule.norm_factor = 100.0;
    FaultPlan plan;
    plan.add(rule);
    WeightUpdate v = u;
    EXPECT_TRUE(FaultInjector(plan).corrupt_update(v));
    EXPECT_FLOAT_EQ(v.weights[0], 100.0f);
    EXPECT_TRUE(all_finite(v.weights));
  }
  {
    FaultPlan plan;
    plan.corrupt(1, CorruptionMode::kSignFlip);
    WeightUpdate v = u;
    EXPECT_TRUE(FaultInjector(plan).corrupt_update(v));
    EXPECT_FLOAT_EQ(v.weights[0], -1.0f);
    EXPECT_FLOAT_EQ(v.weights[1], 2.0f);
  }
  {
    // Rule scoped to another client: no corruption.
    FaultPlan plan;
    plan.corrupt(2, CorruptionMode::kNaN);
    WeightUpdate v = u;
    EXPECT_FALSE(FaultInjector(plan).corrupt_update(v));
    EXPECT_EQ(v.weights, u.weights);
  }
}

// --- Acceptance: crash + corruption under SyncDriver ----------------------

TEST(Faults, CrashAndCorruptionRunMatchesPlanAndHoldsR2) {
  constexpr std::size_t kRounds = 10;

  // Fault-free reference.
  const FederatedRunResult clean = run_sync(nullptr, 17, kRounds);

  // Crash client 0 every round; poison client 1's update with NaNs.
  FaultPlan plan;
  plan.crash(0);
  plan.corrupt(1, CorruptionMode::kNaN);
  const FaultInjector injector(plan, 7);
  const FederatedRunResult faulty = run_sync(&injector, 17, kRounds);

  // The run completed all rounds without hanging.
  ASSERT_EQ(faulty.rounds.size(), kRounds);

  // Counters match the plan exactly: one crash and one rejection per round.
  EXPECT_EQ(faulty.total_timed_out_clients(), kRounds);
  EXPECT_EQ(faulty.total_rejected_updates(), kRounds);
  for (const RoundMetrics& r : faulty.rounds) {
    EXPECT_EQ(r.timed_out_clients, 1u);
    EXPECT_EQ(r.rejected_updates, 1u);
    EXPECT_EQ(r.updates_received, 1u);  // only client 2 survives validation
  }
  EXPECT_EQ(injector.stats().crashes, kRounds);
  EXPECT_EQ(injector.stats().corrupted_updates, kRounds);

  // Final weights are finite and forecasting quality held: R² within 10%
  // of the fault-free run.
  ASSERT_EQ(faulty.final_weights.size(), 2u);
  EXPECT_TRUE(all_finite(faulty.final_weights));
  const double r2_clean = holdout_r2(clean.final_weights);
  const double r2_faulty = holdout_r2(faulty.final_weights);
  EXPECT_GT(r2_clean, 0.9);
  EXPECT_GT(r2_faulty, r2_clean * 0.9);
}

TEST(Faults, UnvalidatedNaNWouldPoisonButValidatorBlocksIt) {
  // Direct server check: one poisoned update among good ones never reaches
  // the global model.
  Server server({1.0f, 1.0f});
  WeightUpdate good;
  good.client_id = 0;
  good.round = 0;
  good.sample_count = 10;
  good.weights = {2.0f, 0.0f};
  WeightUpdate bad = good;
  bad.client_id = 1;
  bad.weights = {std::nanf(""), 5.0f};
  server.finish_round({good, bad});
  EXPECT_TRUE(all_finite(server.weights()));
  EXPECT_FLOAT_EQ(server.weights()[0], 2.0f);
  EXPECT_EQ(server.last_audit().rejected_nonfinite, 1u);
}

// --- Duplicates and stale replays ----------------------------------------

TEST(Faults, DuplicateSendsAreDeliveredTwiceAndRejectedOnce) {
  auto clients = make_clients(3, 32, 5);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  FaultPlan plan;
  plan.duplicate(1);  // client 1's uploads delivered twice, every round
  const FaultInjector injector(plan, 3);
  SyncDriver driver(server, clients, net, nullptr, &injector);
  const FederatedRunResult result = driver.run(3);

  EXPECT_EQ(net.stats().messages_duplicated, 3u);
  EXPECT_EQ(result.total_rejected_updates(), 3u);  // the duplicate copies
  for (const RoundMetrics& r : result.rounds) {
    EXPECT_EQ(r.updates_received, 3u);  // all three clients still aggregate
  }
}

TEST(Faults, StaleReplaysAreCountedAsLateAndRejected) {
  auto clients = make_clients(3, 32, 6);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  FaultPlan plan;
  plan.stale_replay(2, 1);  // from round 1 on, client 2 replays round r-1
  const FaultInjector injector(plan, 3);
  SyncDriver driver(server, clients, net, nullptr, &injector);
  const FederatedRunResult result = driver.run(4);

  // Rounds 1..3 each see one stale arrival.
  EXPECT_EQ(result.total_late_updates(), 3u);
  for (const RoundMetrics& r : result.rounds) {
    EXPECT_EQ(r.updates_received, 3u);
    EXPECT_EQ(r.timed_out_clients, 0u);
  }
  EXPECT_TRUE(all_finite(result.final_weights));
}

TEST(Faults, WrongDimensionUpdateDegradesRoundNotServer) {
  // A malformed payload must be rejected like any other Byzantine input,
  // never terminate the server process.
  Server server({1.0f, 1.0f});
  WeightUpdate good;
  good.client_id = 0;
  good.round = 0;
  good.sample_count = 10;
  good.weights = {2.0f, 0.0f};
  WeightUpdate malformed = good;
  malformed.client_id = 1;
  malformed.weights = {1.0f, 2.0f, 3.0f};  // global model has 2 weights
  server.finish_round({good, malformed});
  EXPECT_EQ(server.last_audit().rejected_dimension, 1u);
  EXPECT_EQ(server.last_audit().accepted, 1u);
  EXPECT_EQ(server.round(), 1u);
  EXPECT_FLOAT_EQ(server.weights()[0], 2.0f);
}

TEST(Faults, StaleReplayDoesNotRetriggerDuplicateRule) {
  // A replayed round r-1 message crossing the wire during round r must not
  // consult the duplicate rule again: decisions are once per (client,
  // round), so duplicate counts track fresh sends only.
  auto clients = make_clients(3, 32, 8);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  FaultPlan plan;
  plan.duplicate(2);         // every fresh upload from client 2 duplicated
  plan.stale_replay(2, 1);   // from round 1 on, client 2 replays round r-1
  const FaultInjector injector(plan, 9);
  SyncDriver driver(server, clients, net, nullptr, &injector);
  const FederatedRunResult result = driver.run(4);

  // 4 fresh uploads duplicated once each; the 3 stale replays add nothing.
  EXPECT_EQ(net.stats().messages_duplicated, 4u);
  EXPECT_EQ(injector.stats().duplicated_messages, 4u);
  EXPECT_EQ(injector.stats().stale_replays, 3u);
  EXPECT_EQ(result.total_late_updates(), 3u);
}

// --- Norm clipping --------------------------------------------------------

TEST(Faults, NormInflatedUpdateIsClippedNotFatal) {
  ValidatorConfig vc;
  vc.max_update_norm = 1.0;
  Server server({0.0f, 0.0f}, {}, vc);
  WeightUpdate huge;
  huge.client_id = 0;
  huge.round = 0;
  huge.sample_count = 10;
  huge.weights = {1000.0f, 0.0f};
  server.finish_round({huge});
  EXPECT_EQ(server.last_audit().clipped, 1u);
  // Movement clipped to norm 1: the global model moved, but boundedly.
  EXPECT_NEAR(server.weights()[0], 1.0f, 1e-4f);
}

// --- Acceptance: ThreadedDriver straggler + deadline ----------------------

FederatedRunResult run_threaded_straggler(std::uint64_t client_seed) {
  auto clients = make_clients(3, 64, client_seed);
  Server server({0.0f, 0.0f});
  InMemoryNetwork net;
  FaultPlan plan;
  plan.straggle(2, 600.0);  // client 2 sleeps 600 ms before every upload
  const FaultInjector injector(plan, 11);
  ThreadedDriver driver(server, clients, net, &injector);
  RoundPolicy policy;
  policy.round_deadline_ms = 250.0;
  return driver.run(4, policy);
}

TEST(Faults, ThreadedStragglerRoundsCloseAtDeadlineDeterministically) {
  const FederatedRunResult a = run_threaded_straggler(21);

  ASSERT_EQ(a.rounds.size(), 4u);
  for (const RoundMetrics& r : a.rounds) {
    // Quorum-partial aggregation: the two fast clients always make it, the
    // straggler never does.
    EXPECT_EQ(r.updates_received, 2u);
    EXPECT_EQ(r.timed_out_clients, 1u);
    // Never blocks past the deadline (generous slack for CI jitter).
    EXPECT_LT(r.wall_seconds, 0.250 + 0.400);
  }
  // The straggler's 600 ms-old updates surface as late arrivals in some
  // later round rather than silently joining the wrong aggregation.
  EXPECT_GE(a.total_late_updates(), 1u);
  EXPECT_TRUE(all_finite(a.final_weights));
  EXPECT_GT(holdout_r2(a.final_weights), 0.9);

  // Bit-identical across two runs with the same seeds.
  const FederatedRunResult b = run_threaded_straggler(21);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

// --- Quorum ---------------------------------------------------------------

TEST(Faults, UnderQuorumRoundLeavesWeightsUnchanged) {
  ValidatorConfig vc;
  vc.min_updates = 2;
  Server server({5.0f}, {}, vc);
  WeightUpdate lone;
  lone.client_id = 0;
  lone.round = 0;
  lone.sample_count = 4;
  lone.weights = {1.0f};
  const double delta = server.finish_round({lone});
  EXPECT_EQ(delta, 0.0);
  EXPECT_FLOAT_EQ(server.weights()[0], 5.0f);
  EXPECT_EQ(server.round(), 1u);
  EXPECT_FALSE(server.last_audit().quorum_met);
}

}  // namespace
}  // namespace evfl::fl
