#include "data/window.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace evfl::data {
namespace {

TEST(ForecastSequences, ShapesAndAlignment) {
  const std::vector<float> series = {0, 1, 2, 3, 4, 5};
  const SequenceDataset ds = make_forecast_sequences(series, 3);
  EXPECT_EQ(ds.x.batch(), 3u);
  EXPECT_EQ(ds.x.time(), 3u);
  EXPECT_EQ(ds.x.features(), 1u);
  // Sample 0: window [0,1,2] -> target 3.
  EXPECT_EQ(ds.x(0, 0, 0), 0.0f);
  EXPECT_EQ(ds.x(0, 2, 0), 2.0f);
  EXPECT_EQ(ds.y(0, 0, 0), 3.0f);
  // Sample 2: window [2,3,4] -> target 5.
  EXPECT_EQ(ds.x(2, 0, 0), 2.0f);
  EXPECT_EQ(ds.y(2, 0, 0), 5.0f);
  EXPECT_EQ(ds.target_offset(2), 5u);
}

TEST(ForecastSequences, TooShortThrows) {
  EXPECT_THROW(make_forecast_sequences({1, 2}, 2), Error);
  EXPECT_THROW(make_forecast_sequences({1, 2, 3}, 0), Error);
}

TEST(AutoencoderWindows, StrideOneCoverage) {
  const std::vector<float> series = {0, 1, 2, 3, 4};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 3);
  EXPECT_EQ(w.batch(), 3u);  // 5 - 3 + 1
  EXPECT_EQ(w(0, 0, 0), 0.0f);
  EXPECT_EQ(w(2, 2, 0), 4.0f);
}

TEST(AutoencoderWindows, ExactLengthGivesOneWindow) {
  const tensor::Tensor3 w = make_autoencoder_windows({1, 2, 3}, 3);
  EXPECT_EQ(w.batch(), 1u);
}

TEST(PerPointError, PerfectReconstructionIsZero) {
  const std::vector<float> series = {0, 1, 2, 3, 4};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 3);
  const auto err = per_point_reconstruction_error(w, w, series.size());
  ASSERT_EQ(err.size(), series.size());
  for (float e : err) EXPECT_EQ(e, 0.0f);
}

TEST(PerPointError, LocalizedErrorAveragedOverCoveringWindows) {
  const std::vector<float> series = {0, 0, 0, 0, 0};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 3);
  tensor::Tensor3 recon = w;
  // Corrupt reconstruction of point 2 in every window covering it.
  // Point 2 appears in window 0 at t=2, window 1 at t=1, window 2 at t=0.
  recon(0, 2, 0) = 1.0f;
  recon(1, 1, 0) = 1.0f;
  recon(2, 0, 0) = 1.0f;
  const auto err = per_point_reconstruction_error(w, recon, series.size());
  EXPECT_FLOAT_EQ(err[2], 1.0f);  // mean of three unit squared errors
  EXPECT_EQ(err[0], 0.0f);
  EXPECT_EQ(err[4], 0.0f);
}

TEST(PerPointError, EdgePointsCoveredByFewerWindows) {
  const std::vector<float> series = {0, 0, 0, 0};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 2);
  tensor::Tensor3 recon = w;
  recon(0, 0, 0) = 2.0f;  // only window covering point 0
  const auto err = per_point_reconstruction_error(w, recon, series.size());
  EXPECT_FLOAT_EQ(err[0], 4.0f);
}

TEST(PerPointError, MinAggregationIgnoresSmearedWindows) {
  // Point 2 is covered by three windows; only one window reconstructs it
  // badly (as happens when a *neighbouring* attack corrupts that window).
  const std::vector<float> series = {0, 0, 0, 0, 0};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 3);
  tensor::Tensor3 recon = w;
  recon(0, 2, 0) = 1.0f;  // only window 0's view of point 2 is corrupted
  const auto mean_err = per_point_reconstruction_error(
      w, recon, series.size(), ErrorAggregation::kMean);
  const auto min_err = per_point_reconstruction_error(
      w, recon, series.size(), ErrorAggregation::kMin);
  EXPECT_GT(mean_err[2], 0.0f);      // mean smears
  EXPECT_FLOAT_EQ(min_err[2], 0.0f); // min sees the clean windows
}

TEST(PerPointError, MinEqualsMeanWhenAllWindowsAgree) {
  const std::vector<float> series = {0, 0, 0, 0};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 2);
  tensor::Tensor3 recon = w;
  // Corrupt point 1 in both covering windows identically.
  recon(0, 1, 0) = 2.0f;
  recon(1, 0, 0) = 2.0f;
  const auto mean_err = per_point_reconstruction_error(
      w, recon, series.size(), ErrorAggregation::kMean);
  const auto min_err = per_point_reconstruction_error(
      w, recon, series.size(), ErrorAggregation::kMin);
  EXPECT_FLOAT_EQ(mean_err[1], 4.0f);
  EXPECT_FLOAT_EQ(min_err[1], 4.0f);
}

TEST(PerPointError, MedianAggregation) {
  const std::vector<float> series = {0, 0, 0, 0, 0};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 3);
  tensor::Tensor3 recon = w;
  // Point 2's three covering errors: 1, 4, 0 -> median 1.
  recon(0, 2, 0) = 1.0f;
  recon(1, 1, 0) = 2.0f;
  const auto med = per_point_reconstruction_error(
      w, recon, series.size(), ErrorAggregation::kMedian);
  EXPECT_FLOAT_EQ(med[2], 1.0f);
}

TEST(PerPointError, AggregationNames) {
  EXPECT_EQ(to_string(ErrorAggregation::kMean), "mean");
  EXPECT_EQ(to_string(ErrorAggregation::kMin), "min");
  EXPECT_EQ(to_string(ErrorAggregation::kMedian), "median");
}

TEST(PerPointReconstruction, AveragesCoveringWindows) {
  // 4-point series, window 2: windows (0,1) (1,2) (2,3).  Reconstruction
  // values chosen so point 1 is covered by window 0 pos 1 (value 10) and
  // window 1 pos 0 (value 20) -> mean 15.
  tensor::Tensor3 recon(3, 2, 1);
  recon(0, 0, 0) = 5;
  recon(0, 1, 0) = 10;
  recon(1, 0, 0) = 20;
  recon(1, 1, 0) = 30;
  recon(2, 0, 0) = 40;
  recon(2, 1, 0) = 50;
  const auto r = per_point_reconstruction(recon, 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_FLOAT_EQ(r[0], 5.0f);
  EXPECT_FLOAT_EQ(r[1], 15.0f);
  EXPECT_FLOAT_EQ(r[2], 35.0f);
  EXPECT_FLOAT_EQ(r[3], 50.0f);
}

TEST(PerPointReconstruction, LengthValidated) {
  tensor::Tensor3 recon(3, 2, 1);
  EXPECT_THROW(per_point_reconstruction(recon, 99), Error);
}

TEST(PerPointError, InconsistentLengthThrows) {
  const std::vector<float> series = {0, 1, 2, 3};
  const tensor::Tensor3 w = make_autoencoder_windows(series, 2);
  EXPECT_THROW(per_point_reconstruction_error(w, w, 99), Error);
  const tensor::Tensor3 other(w.batch(), 3, 1);
  EXPECT_THROW(per_point_reconstruction_error(w, other, series.size()), Error);
}

}  // namespace
}  // namespace evfl::data
