#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.hpp"
#include "nn/lstm.hpp"

namespace evfl::nn {
namespace {

using tensor::Rng;
using tensor::Tensor3;

/// y = 2x + 1 with mild noise — learnable by a single linear Dense.
void linear_data(Tensor3& x, Tensor3& y, std::size_t n, Rng& rng) {
  x = Tensor3(n, 1, 1);
  y = Tensor3(n, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const float xi = rng.uniform(-1.0f, 1.0f);
    x(i, 0, 0) = xi;
    y(i, 0, 0) = 2.0f * xi + 1.0f + 0.01f * rng.normal();
  }
}

TEST(Trainer, LearnsLinearMap) {
  Rng rng(1);
  Sequential model;
  model.emplace<Dense>(1, Activation::kLinear, rng, 1);
  MseLoss loss;
  Adam opt(0.05f);
  Trainer trainer(model, loss, opt, rng);

  Tensor3 x, y;
  linear_data(x, y, 256, rng);

  FitConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  const FitHistory hist = trainer.fit(x, y, cfg);

  EXPECT_EQ(hist.epochs_run, 60u);
  EXPECT_LT(hist.train_loss.back(), 0.01f);
  EXPECT_LT(hist.train_loss.back(), hist.train_loss.front());

  const auto w = model.get_weights();  // [w, b]
  EXPECT_NEAR(w[0], 2.0f, 0.1f);
  EXPECT_NEAR(w[1], 1.0f, 0.1f);
}

TEST(Trainer, TrainBatchReturnsLoss) {
  Rng rng(2);
  Sequential model;
  model.emplace<Dense>(1, Activation::kLinear, rng, 1);
  MseLoss loss;
  Adam opt(0.01f);
  Trainer trainer(model, loss, opt, rng);

  Tensor3 x, y;
  linear_data(x, y, 8, rng);
  const float l0 = trainer.train_batch(x, y);
  EXPECT_GT(l0, 0.0f);
  float l = l0;
  for (int i = 0; i < 100; ++i) l = trainer.train_batch(x, y);
  EXPECT_LT(l, l0);
}

TEST(Trainer, EvaluateMatchesLossOnTrivialModel) {
  Rng rng(3);
  Sequential model;
  model.emplace<Dense>(1, Activation::kLinear, rng, 1);
  // Force y_hat = 0 for all inputs.
  model.set_weights({0.0f, 0.0f});
  MseLoss loss;
  Adam opt(0.01f);
  Trainer trainer(model, loss, opt, rng);

  Tensor3 x(3, 1, 1), y(3, 1, 1);
  y(0, 0, 0) = 1;
  y(1, 0, 0) = 2;
  y(2, 0, 0) = 3;
  EXPECT_NEAR(trainer.evaluate(x, y), (1 + 4 + 9) / 3.0f, 1e-5f);
}

TEST(Trainer, EarlyStoppingHaltsAndRestoresBest) {
  Rng rng(4);
  Sequential model;
  model.emplace<Dense>(4, Activation::kTanh, rng, 1);
  model.emplace<Dense>(1, Activation::kLinear, rng, 4);
  MseLoss loss;
  // Absurdly high LR so validation loss oscillates/diverges quickly.
  Adam opt(0.8f);
  Trainer trainer(model, loss, opt, rng);

  Tensor3 x, y;
  linear_data(x, y, 64, rng);
  Tensor3 xv, yv;
  linear_data(xv, yv, 32, rng);

  FitConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 16;
  cfg.early_stopping = EarlyStopping{3, 0.0f, true};
  const FitHistory hist = trainer.fit(x, y, cfg, &xv, &yv);

  EXPECT_TRUE(hist.stopped_early);
  EXPECT_LT(hist.epochs_run, 200u);
  EXPECT_EQ(hist.val_loss.size(), hist.epochs_run);

  // Restored weights should score (approximately) the best recorded
  // validation loss, not the last one.
  float best = hist.val_loss.front();
  for (float v : hist.val_loss) best = std::min(best, v);
  EXPECT_NEAR(trainer.evaluate(xv, yv), best, 1e-4f + 0.05f * best);
}

TEST(Trainer, NoShuffleIsDeterministic) {
  Tensor3 x, y;
  Rng data_rng(5);
  linear_data(x, y, 64, data_rng);

  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    Sequential model;
    model.emplace<Dense>(1, Activation::kLinear, rng, 1);
    MseLoss loss;
    Adam opt(0.01f);
    Trainer trainer(model, loss, opt, rng);
    FitConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 16;
    cfg.shuffle = false;
    trainer.fit(x, y, cfg);
    return model.get_weights();
  };

  EXPECT_EQ(run(7), run(7));
}

TEST(Trainer, RejectsMismatchedData) {
  Rng rng(6);
  Sequential model;
  model.emplace<Dense>(1, Activation::kLinear, rng, 1);
  MseLoss loss;
  Adam opt(0.01f);
  Trainer trainer(model, loss, opt, rng);
  Tensor3 x(4, 1, 1), y(5, 1, 1);
  FitConfig cfg;
  EXPECT_THROW(trainer.fit(x, y, cfg), Error);
  EXPECT_THROW(trainer.fit(Tensor3(0, 1, 1), Tensor3(0, 1, 1), cfg), Error);
}

TEST(Trainer, OnEpochEndCallbackFires) {
  Rng rng(7);
  Sequential model;
  model.emplace<Dense>(1, Activation::kLinear, rng, 1);
  MseLoss loss;
  Adam opt(0.01f);
  Trainer trainer(model, loss, opt, rng);
  Tensor3 x, y;
  linear_data(x, y, 16, rng);
  std::size_t calls = 0;
  FitConfig cfg;
  cfg.epochs = 5;
  cfg.on_epoch_end = [&](std::size_t, float, float) { ++calls; };
  trainer.fit(x, y, cfg);
  EXPECT_EQ(calls, 5u);
}

TEST(PredictBatched, MatchesSingleForward) {
  Rng rng(8);
  Sequential model;
  model.emplace<Lstm>(3, false, rng, 1);
  model.emplace<Dense>(1, Activation::kLinear, rng, 3);

  Tensor3 x(10, 4, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = 0.05f * i;

  const Tensor3 all = model.forward(x, false);
  const Tensor3 batched = predict_batched(model, x, 3);
  EXPECT_LT(tensor::max_abs_diff(all, batched), 1e-6f);
}

}  // namespace
}  // namespace evfl::nn
