#include "attack/ddos_injector.hpp"

#include <algorithm>
#include <cmath>

namespace evfl::attack {

DdosInjector::DdosInjector(DdosConfig cfg) : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.min_burst_hours >= 1, "bursts need >= 1 hour");
  EVFL_REQUIRE(cfg_.max_burst_hours >= cfg_.min_burst_hours,
               "max_burst_hours < min_burst_hours");
  EVFL_REQUIRE(cfg_.min_multiplier > 1.0f, "min_multiplier must exceed 1");
  EVFL_REQUIRE(cfg_.damping > 0.0f && cfg_.damping <= 1.0f,
               "damping must be in (0,1]");
}

float DdosInjector::max_volume_multiplier() const {
  const sim::TrafficModel model(cfg_.traffic);
  return std::pow(static_cast<float>(model.nominal_multiplier()),
                  cfg_.damping);
}

InjectionSummary DdosInjector::inject(const data::TimeSeries& clean,
                                      data::TimeSeries& attacked,
                                      tensor::Rng& rng) const {
  clean.validate();
  EVFL_REQUIRE(clean.size() > cfg_.max_burst_hours,
               "series too short for configured bursts");

  attacked = clean;
  attacked.name = clean.name + "+ddos";
  attacked.init_clean_labels();

  const float mult_hi = std::max(max_volume_multiplier(),
                                 cfg_.min_multiplier + 0.01f);

  InjectionSummary summary;
  summary.kind = AttackKind::kDdos;
  double mult_sum = 0.0;

  for (std::size_t b = 0; b < cfg_.bursts; ++b) {
    const std::size_t len =
        cfg_.min_burst_hours +
        rng.index(cfg_.max_burst_hours - cfg_.min_burst_hours + 1);
    const std::size_t start = rng.index(clean.size() - len + 1);
    const float burst_mult = rng.log_uniform(cfg_.min_multiplier, mult_hi);

    for (std::size_t i = start; i < start + len; ++i) {
      const float jitter =
          1.0f + cfg_.within_burst_jitter * rng.normal(0.0f, 1.0f);
      const float m = std::max(burst_mult * jitter, 1.05f);
      if (attacked.labels[i] == 0) {
        // First burst touching this point: inflate from the clean value.
        attacked.values[i] = clean.values[i] * m;
        attacked.labels[i] = 1;
        ++summary.points_attacked;
        mult_sum += m;
      } else {
        // Overlapping bursts compound, as coordinated floods do.
        attacked.values[i] = std::max(attacked.values[i], clean.values[i] * m);
      }
    }
    ++summary.bursts;
  }

  if (summary.points_attacked > 0) {
    summary.mean_multiplier = mult_sum / summary.points_attacked;
  }
  return summary;
}

}  // namespace evfl::attack
