// Ramp attack: temporal-pattern disruption (paper future work §III-G) —
// the adversary gradually ramps reported volume up and back down over a
// window, distorting the daily shape without abrupt spikes.
#pragma once

#include "attack/scenario.hpp"

namespace evfl::attack {

struct RampConfig {
  std::size_t ramps = 12;
  std::size_t min_ramp_hours = 12;
  std::size_t max_ramp_hours = 48;
  float peak_multiplier = 2.2f;  // multiplier at the apex of the ramp
};

class RampInjector : public Injector {
 public:
  explicit RampInjector(RampConfig cfg = {});

  InjectionSummary inject(const data::TimeSeries& clean,
                          data::TimeSeries& attacked,
                          tensor::Rng& rng) const override;
  AttackKind kind() const override { return AttackKind::kRamp; }

 private:
  RampConfig cfg_;
};

}  // namespace evfl::attack
