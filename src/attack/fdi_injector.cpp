#include "attack/fdi_injector.hpp"

#include <algorithm>

namespace evfl::attack {

FalseDataInjector::FalseDataInjector(FdiConfig cfg) : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.min_window_hours >= 1, "FDI window needs >= 1 hour");
  EVFL_REQUIRE(cfg_.max_window_hours >= cfg_.min_window_hours,
               "FDI max window < min window");
  EVFL_REQUIRE(cfg_.bias_sigma > 0.0f, "bias_sigma must be positive");
}

InjectionSummary FalseDataInjector::inject(const data::TimeSeries& clean,
                                           data::TimeSeries& attacked,
                                           tensor::Rng& rng) const {
  clean.validate();
  EVFL_REQUIRE(clean.size() > cfg_.max_window_hours,
               "series too short for configured FDI windows");

  attacked = clean;
  attacked.name = clean.name + "+fdi";
  attacked.init_clean_labels();

  const data::SeriesStats stats = data::compute_stats(clean.values);
  const float bias_mag = cfg_.bias_sigma * stats.stddev;

  InjectionSummary summary;
  summary.kind = AttackKind::kFdi;
  double ratio_sum = 0.0;

  for (std::size_t w = 0; w < cfg_.windows; ++w) {
    const std::size_t len =
        cfg_.min_window_hours +
        rng.index(cfg_.max_window_hours - cfg_.min_window_hours + 1);
    const std::size_t start = rng.index(clean.size() - len + 1);
    const float sign = (cfg_.alternate_sign && (w % 2 == 1)) ? -1.0f : 1.0f;

    for (std::size_t i = start; i < start + len; ++i) {
      if (attacked.labels[i] != 0) continue;
      const float biased = std::max(clean.values[i] + sign * bias_mag, 0.0f);
      attacked.values[i] = biased;
      attacked.labels[i] = 1;
      ++summary.points_attacked;
      if (clean.values[i] > 0.0f) ratio_sum += biased / clean.values[i];
    }
    ++summary.bursts;
  }
  if (summary.points_attacked > 0) {
    summary.mean_multiplier = ratio_sum / summary.points_attacked;
  }
  return summary;
}

}  // namespace evfl::attack
