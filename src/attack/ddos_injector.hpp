// DDoS-like anomaly injection for charging-volume series.
//
// Following §II-B of the paper, network-level attack characteristics
// (normal 33 kp/s vs attack 350.5 kp/s, i.e. a 10.6x intensity multiplier)
// are translated into irregular volume spikes: during an attack burst the
// reported charging volume is inflated by a per-burst multiplier drawn from
// the traffic model's intensity distribution (log-uniform between
// `min_multiplier` and a damped share of the network multiplier — flooding
// saturates data-collection pipelines, it does not multiply physical demand
// by 10x, so the volume-domain multiplier is sub-linear in packet rate).
#pragma once

#include "attack/scenario.hpp"
#include "sim/traffic_model.hpp"

namespace evfl::attack {

struct DdosConfig {
  std::size_t bursts = 36;          // attack windows over the study period
  std::size_t min_burst_hours = 2;
  std::size_t max_burst_hours = 8;
  float min_multiplier = 1.25f;     // weakest volume inflation
  /// Exponent mapping the network-domain multiplier into the volume domain:
  /// max volume multiplier = network_multiplier ^ damping (10.6^0.55 ≈ 3.7).
  float damping = 0.55f;
  float within_burst_jitter = 0.15f;  // relative spike-to-spike variation
  sim::TrafficModelConfig traffic;    // source of the network multiplier
};

class DdosInjector : public Injector {
 public:
  explicit DdosInjector(DdosConfig cfg = {});

  InjectionSummary inject(const data::TimeSeries& clean,
                          data::TimeSeries& attacked,
                          tensor::Rng& rng) const override;
  AttackKind kind() const override { return AttackKind::kDdos; }

  const DdosConfig& config() const { return cfg_; }
  /// The volume-domain multiplier ceiling derived from the traffic model.
  float max_volume_multiplier() const;

 private:
  DdosConfig cfg_;
};

}  // namespace evfl::attack
