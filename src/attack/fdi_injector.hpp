// False Data Injection: the paper's future-work attack vector — subtle,
// sustained additive bias on measured volume that stays inside normal
// variation, designed to evade spike-based detectors.  Used by the
// attack-vector ablation bench.
#pragma once

#include "attack/scenario.hpp"

namespace evfl::attack {

struct FdiConfig {
  std::size_t windows = 10;
  std::size_t min_window_hours = 24;
  std::size_t max_window_hours = 96;
  /// Bias as a fraction of the series' standard deviation (subtle: < 1 σ).
  float bias_sigma = 0.8f;
  bool alternate_sign = true;  // alternate inflation/deflation per window
};

class FalseDataInjector : public Injector {
 public:
  explicit FalseDataInjector(FdiConfig cfg = {});

  InjectionSummary inject(const data::TimeSeries& clean,
                          data::TimeSeries& attacked,
                          tensor::Rng& rng) const override;
  AttackKind kind() const override { return AttackKind::kFdi; }

 private:
  FdiConfig cfg_;
};

}  // namespace evfl::attack
