// Attack scenario plumbing shared by all injectors.
#pragma once

#include <string>

#include "data/timeseries.hpp"
#include "tensor/rng.hpp"

namespace evfl::attack {

enum class AttackKind {
  kNone,
  kDdos,   // volume spikes from flooding (the paper's primary threat model)
  kFdi,    // false data injection: subtle sustained bias (future work §III-G)
  kRamp,   // temporal pattern disruption: gradual ramps (future work §III-G)
};

std::string to_string(AttackKind kind);

/// What an injector did to a series — used by reports and tests.
struct InjectionSummary {
  AttackKind kind = AttackKind::kNone;
  std::size_t bursts = 0;
  std::size_t points_attacked = 0;
  double mean_multiplier = 0.0;  // mean |attacked/clean| over attacked points
};

/// Common interface: produce an attacked copy of `clean` with ground-truth
/// labels set, never mutating the input.
class Injector {
 public:
  virtual ~Injector() = default;
  virtual InjectionSummary inject(const data::TimeSeries& clean,
                                  data::TimeSeries& attacked,
                                  tensor::Rng& rng) const = 0;
  virtual AttackKind kind() const = 0;
};

}  // namespace evfl::attack
