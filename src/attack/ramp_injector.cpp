#include "attack/ramp_injector.hpp"

#include <algorithm>
#include <cmath>

namespace evfl::attack {

RampInjector::RampInjector(RampConfig cfg) : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.min_ramp_hours >= 2, "ramps need >= 2 hours");
  EVFL_REQUIRE(cfg_.max_ramp_hours >= cfg_.min_ramp_hours,
               "max ramp < min ramp");
  EVFL_REQUIRE(cfg_.peak_multiplier > 1.0f, "peak_multiplier must exceed 1");
}

InjectionSummary RampInjector::inject(const data::TimeSeries& clean,
                                      data::TimeSeries& attacked,
                                      tensor::Rng& rng) const {
  clean.validate();
  EVFL_REQUIRE(clean.size() > cfg_.max_ramp_hours,
               "series too short for configured ramps");

  attacked = clean;
  attacked.name = clean.name + "+ramp";
  attacked.init_clean_labels();

  InjectionSummary summary;
  summary.kind = AttackKind::kRamp;
  double mult_sum = 0.0;

  for (std::size_t r = 0; r < cfg_.ramps; ++r) {
    const std::size_t len =
        cfg_.min_ramp_hours +
        rng.index(cfg_.max_ramp_hours - cfg_.min_ramp_hours + 1);
    const std::size_t start = rng.index(clean.size() - len + 1);

    for (std::size_t i = start; i < start + len; ++i) {
      if (attacked.labels[i] != 0) continue;
      // Triangular profile: 1 at the edges, peak_multiplier at the centre.
      const float pos = static_cast<float>(i - start) / (len - 1);
      const float tri = 1.0f - std::abs(2.0f * pos - 1.0f);
      const float m = 1.0f + (cfg_.peak_multiplier - 1.0f) * tri;
      attacked.values[i] = clean.values[i] * m;
      attacked.labels[i] = 1;
      ++summary.points_attacked;
      mult_sum += m;
    }
    ++summary.bursts;
  }
  if (summary.points_attacked > 0) {
    summary.mean_multiplier = mult_sum / summary.points_attacked;
  }
  return summary;
}

}  // namespace evfl::attack
