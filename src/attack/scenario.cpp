#include "attack/scenario.hpp"

namespace evfl::attack {

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kDdos: return "ddos";
    case AttackKind::kFdi: return "fdi";
    case AttackKind::kRamp: return "ramp";
  }
  return "?";
}

}  // namespace evfl::attack
