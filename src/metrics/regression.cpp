#include "metrics/regression.hpp"

#include <cmath>

#include "common/error.hpp"

namespace evfl::metrics {

namespace {
void require_aligned(const std::vector<float>& a, const std::vector<float>& p) {
  EVFL_REQUIRE(a.size() == p.size(), "metrics: length mismatch");
  EVFL_REQUIRE(!a.empty(), "metrics: empty input");
}
}  // namespace

double mean_absolute_error(const std::vector<float>& actual,
                           const std::vector<float>& predicted) {
  require_aligned(actual, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    acc += std::abs(static_cast<double>(actual[i]) - predicted[i]);
  }
  return acc / static_cast<double>(actual.size());
}

double root_mean_squared_error(const std::vector<float>& actual,
                               const std::vector<float>& predicted) {
  require_aligned(actual, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = static_cast<double>(actual[i]) - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double r2_score(const std::vector<float>& actual,
                const std::vector<float>& predicted) {
  require_aligned(actual, predicted);
  double mean = 0.0;
  for (float v : actual) mean += v;
  mean /= static_cast<double>(actual.size());

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double r = static_cast<double>(actual[i]) - predicted[i];
    const double t = static_cast<double>(actual[i]) - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

RegressionMetrics evaluate_regression(const std::vector<float>& actual,
                                      const std::vector<float>& predicted) {
  RegressionMetrics m;
  m.mae = mean_absolute_error(actual, predicted);
  m.rmse = root_mean_squared_error(actual, predicted);
  m.r2 = r2_score(actual, predicted);
  m.n = actual.size();
  return m;
}

}  // namespace evfl::metrics
