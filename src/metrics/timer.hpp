// Wall-clock timing helper for the paper's training-time comparisons.
#pragma once

#include <chrono>

namespace evfl::metrics {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace evfl::metrics
