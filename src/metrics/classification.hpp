// Binary classification metrics for anomaly detection (Table II and the
// in-text precision / false-positive-rate claims).
#pragma once

#include <cstdint>
#include <vector>

namespace evfl::metrics {

struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  ConfusionMatrix& operator+=(const ConfusionMatrix& o);
};

ConfusionMatrix confusion(const std::vector<std::uint8_t>& truth,
                          const std::vector<std::uint8_t>& predicted);

struct DetectionMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double false_positive_rate = 0.0;
  double true_attacks_detected = 0.0;  // = recall, the paper's alias
  ConfusionMatrix cm;
};

DetectionMetrics evaluate_detection(const std::vector<std::uint8_t>& truth,
                                    const std::vector<std::uint8_t>& predicted);

DetectionMetrics from_confusion(const ConfusionMatrix& cm);

}  // namespace evfl::metrics
