#include "metrics/classification.hpp"

#include "common/error.hpp"

namespace evfl::metrics {

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& o) {
  tp += o.tp;
  fp += o.fp;
  tn += o.tn;
  fn += o.fn;
  return *this;
}

ConfusionMatrix confusion(const std::vector<std::uint8_t>& truth,
                          const std::vector<std::uint8_t>& predicted) {
  EVFL_REQUIRE(truth.size() == predicted.size(),
               "confusion: length mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] != 0;
    const bool p = predicted[i] != 0;
    if (t && p) ++cm.tp;
    else if (!t && p) ++cm.fp;
    else if (!t && !p) ++cm.tn;
    else ++cm.fn;
  }
  return cm;
}

DetectionMetrics from_confusion(const ConfusionMatrix& cm) {
  DetectionMetrics m;
  m.cm = cm;
  const double tp = static_cast<double>(cm.tp);
  if (cm.tp + cm.fp > 0) m.precision = tp / static_cast<double>(cm.tp + cm.fp);
  if (cm.tp + cm.fn > 0) m.recall = tp / static_cast<double>(cm.tp + cm.fn);
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  if (cm.fp + cm.tn > 0) {
    m.false_positive_rate =
        static_cast<double>(cm.fp) / static_cast<double>(cm.fp + cm.tn);
  }
  m.true_attacks_detected = m.recall;
  return m;
}

DetectionMetrics evaluate_detection(const std::vector<std::uint8_t>& truth,
                                    const std::vector<std::uint8_t>& predicted) {
  return from_confusion(confusion(truth, predicted));
}

}  // namespace evfl::metrics
