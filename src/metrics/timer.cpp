#include "metrics/timer.hpp"

// Header-only; this translation unit exists so the build system owns one
// object per module and future non-inline additions have a home.
