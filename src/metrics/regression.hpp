// Regression metrics used throughout the paper's tables: MAE, RMSE, R².
#pragma once

#include <vector>

namespace evfl::metrics {

struct RegressionMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;
  std::size_t n = 0;
};

double mean_absolute_error(const std::vector<float>& actual,
                           const std::vector<float>& predicted);

double root_mean_squared_error(const std::vector<float>& actual,
                               const std::vector<float>& predicted);

/// Coefficient of determination: 1 - SS_res / SS_tot.  A constant actual
/// series yields r2 = 0 by convention (no variance to explain).
double r2_score(const std::vector<float>& actual,
                const std::vector<float>& predicted);

RegressionMetrics evaluate_regression(const std::vector<float>& actual,
                                      const std::vector<float>& predicted);

}  // namespace evfl::metrics
