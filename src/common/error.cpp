#include "common/error.hpp"

#include <cstdlib>
#include <iostream>

namespace evfl::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::cerr << "EVFL_ASSERT failed: " << expr << "\n  at " << file << ":"
            << line << "\n  " << msg << std::endl;
  std::abort();
}

}  // namespace evfl::detail
