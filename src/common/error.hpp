// Error handling primitives shared by every evfl module.
//
// Contract violations (bad arguments, shape mismatches, protocol errors)
// throw evfl::Error.  Internal invariants use EVFL_ASSERT, which is active
// in all build types: this library backs experiments whose conclusions
// depend on numerical correctness, so silent corruption is never acceptable.
#pragma once

#include <stdexcept>
#include <string>

namespace evfl {

/// Base exception for all evfl failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on shape or dimension mismatches in tensor / nn code.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed serialized payloads (fl wire format, CSV, ...).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace evfl

/// Always-on invariant check.  `msg` may use stream-free string concatenation.
#define EVFL_ASSERT(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::evfl::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)

/// Contract check on public API arguments: throws evfl::Error.
#define EVFL_REQUIRE(expr, msg)                     \
  do {                                              \
    if (!(expr)) {                                  \
      throw ::evfl::Error(std::string("requirement failed: ") + (msg)); \
    }                                               \
  } while (false)
