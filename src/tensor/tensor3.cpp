#include "tensor/tensor3.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace evfl::tensor {

Matrix Tensor3::timestep(std::size_t t) const {
  EVFL_ASSERT(t < t_, "timestep out of range");
  Matrix m(n_, f_);
  for (std::size_t n = 0; n < n_; ++n) {
    const float* src = data_.data() + (n * t_ + t) * f_;
    std::copy(src, src + f_, m.row(n));
  }
  return m;
}

void Tensor3::copy_timestep_into(std::size_t t, Matrix& dst) const {
  EVFL_ASSERT(t < t_, "timestep out of range");
  if (dst.rows() != n_ || dst.cols() != f_) dst = Matrix(n_, f_);
  for (std::size_t n = 0; n < n_; ++n) {
    const float* src = data_.data() + (n * t_ + t) * f_;
    std::copy(src, src + f_, dst.row(n));
  }
}

void Tensor3::set_timestep(std::size_t t, const Matrix& m) {
  EVFL_ASSERT(t < t_, "timestep out of range");
  if (m.rows() != n_ || m.cols() != f_) {
    throw ShapeError("set_timestep: " + m.shape_str() + " into " + shape_str());
  }
  for (std::size_t n = 0; n < n_; ++n) {
    float* dst = data_.data() + (n * t_ + t) * f_;
    std::copy(m.row(n), m.row(n) + f_, dst);
  }
}

void Tensor3::set_timestep(std::size_t t, ConstMatView m) {
  EVFL_ASSERT(t < t_, "timestep out of range");
  if (m.rows != n_ || m.cols != f_) {
    throw ShapeError("set_timestep: view into " + shape_str());
  }
  for (std::size_t n = 0; n < n_; ++n) {
    float* dst = data_.data() + (n * t_ + t) * f_;
    const float* src = m.row(n);
    std::copy(src, src + f_, dst);
  }
}

void Tensor3::add_timestep(std::size_t t, const Matrix& m) {
  EVFL_ASSERT(t < t_, "timestep out of range");
  if (m.rows() != n_ || m.cols() != f_) {
    throw ShapeError("add_timestep: " + m.shape_str() + " into " + shape_str());
  }
  for (std::size_t n = 0; n < n_; ++n) {
    float* dst = data_.data() + (n * t_ + t) * f_;
    const float* src = m.row(n);
    for (std::size_t f = 0; f < f_; ++f) dst[f] += src[f];
  }
}

Matrix Tensor3::sample(std::size_t n) const {
  EVFL_ASSERT(n < n_, "sample out of range");
  Matrix m(t_, f_);
  const float* src = data_.data() + n * t_ * f_;
  std::copy(src, src + t_ * f_, m.data());
  return m;
}

void Tensor3::set_sample(std::size_t n, const Matrix& m) {
  EVFL_ASSERT(n < n_, "sample out of range");
  if (m.rows() != t_ || m.cols() != f_) {
    throw ShapeError("set_sample: " + m.shape_str() + " into " + shape_str());
  }
  std::copy(m.data(), m.data() + t_ * f_, data_.data() + n * t_ * f_);
}

Matrix Tensor3::flatten_rows() const {
  Matrix m(n_ * t_, f_);
  std::copy(data_.begin(), data_.end(), m.data());
  return m;
}

void Tensor3::flatten_rows_into(Matrix& dst) const {
  if (dst.rows() != n_ * t_ || dst.cols() != f_) dst = Matrix(n_ * t_, f_);
  std::copy(data_.begin(), data_.end(), dst.data());
}

Tensor3 Tensor3::from_flat_rows(const Matrix& m, std::size_t n, std::size_t t) {
  if (m.rows() != n * t) {
    throw ShapeError("from_flat_rows: row count mismatch");
  }
  Tensor3 out(n, t, m.cols());
  std::copy(m.data(), m.data() + m.size(), out.data());
  return out;
}

Tensor3 Tensor3::from_flat_rows(ConstMatView m, std::size_t n, std::size_t t) {
  if (m.rows != n * t) {
    throw ShapeError("from_flat_rows: row count mismatch");
  }
  Tensor3 out(n, t, m.cols);
  for (std::size_t r = 0; r < m.rows; ++r) {
    const float* src = m.row(r);
    std::copy(src, src + m.cols, out.data() + r * m.cols);
  }
  return out;
}

Tensor3 Tensor3::batch_slice(std::size_t begin, std::size_t end) const {
  EVFL_REQUIRE(begin <= end && end <= n_, "batch_slice range invalid");
  Tensor3 out(end - begin, t_, f_);
  const std::size_t stride = t_ * f_;
  std::copy(data_.data() + begin * stride, data_.data() + end * stride,
            out.data());
  return out;
}

Tensor3 Tensor3::gather(const std::vector<std::size_t>& indices) const {
  Tensor3 out(indices.size(), t_, f_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EVFL_REQUIRE(indices[i] < n_, "gather index out of range");
    copy_sample_into(indices[i], out, i);
  }
  return out;
}

void Tensor3::copy_batch_into(Tensor3& dst, std::size_t offset) const {
  if (t_ != dst.t_ || f_ != dst.f_) {
    throw ShapeError("copy_batch_into: " + shape_str() + " into " +
                     dst.shape_str());
  }
  EVFL_REQUIRE(offset + n_ <= dst.n_, "copy_batch_into: batch overflow");
  const std::size_t stride = t_ * f_;
  std::copy(data_.data(), data_.data() + n_ * stride,
            dst.data() + offset * stride);
}

void Tensor3::copy_sample_into(std::size_t src_index, Tensor3& dst,
                               std::size_t dst_index) const {
  EVFL_ASSERT(src_index < n_ && dst_index < dst.n_,
              "copy_sample_into: index out of range");
  EVFL_ASSERT(t_ == dst.t_ && f_ == dst.f_,
              "copy_sample_into: shape mismatch");
  const std::size_t stride = t_ * f_;
  std::copy(data_.data() + src_index * stride,
            data_.data() + (src_index + 1) * stride,
            dst.data() + dst_index * stride);
}

Tensor3& Tensor3::operator+=(const Tensor3& o) {
  if (!same_shape(o)) {
    throw ShapeError("Tensor3 +=: " + shape_str() + " vs " + o.shape_str());
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor3& Tensor3::operator-=(const Tensor3& o) {
  if (!same_shape(o)) {
    throw ShapeError("Tensor3 -=: " + shape_str() + " vs " + o.shape_str());
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor3& Tensor3::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

float Tensor3::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor3::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

std::string Tensor3::shape_str() const {
  std::ostringstream os;
  os << "[" << n_ << " x " << t_ << " x " << f_ << "]";
  return os.str();
}

float max_abs_diff(const Tensor3& a, const Tensor3& b) {
  if (!a.same_shape(b)) {
    throw ShapeError("max_abs_diff: " + a.shape_str() + " vs " + b.shape_str());
  }
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

}  // namespace evfl::tensor
