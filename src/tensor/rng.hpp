// Deterministic random number generation.  Every stochastic component in
// evfl (init, dropout, shuffling, data generation, attack scheduling) pulls
// from an explicitly seeded Rng so experiments replay bit-identically.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace evfl::tensor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal scaled: mean + stddev * N(0,1).
  float normal(float mean = 0.0f, float stddev = 1.0f);
  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n);
  /// Bernoulli with probability p of true.
  bool bernoulli(double p);
  /// Log-uniform in [lo, hi] — multiplier sampling for attack bursts.
  float log_uniform(float lo, float hi);

  /// A shuffled permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (per client / per component).
  Rng split();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace evfl::tensor
