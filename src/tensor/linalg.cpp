#include "tensor/linalg.hpp"

#include <cmath>

namespace evfl::tensor {

Matrix cholesky(const Matrix& a) {
  EVFL_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= static_cast<double>(l(i, k)) * l(j, k);
      }
      if (i == j) {
        if (sum <= 0.0) {
          throw Error("cholesky: matrix not positive definite (pivot " +
                      std::to_string(i) + ")");
        }
        l(i, i) = static_cast<float>(std::sqrt(sum));
      } else {
        l(i, j) = static_cast<float>(sum / l(j, j));
      }
    }
  }
  return l;
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  EVFL_REQUIRE(a.rows() == b.rows(), "solve_spd: dimension mismatch");
  const Matrix l = cholesky(a);
  const std::size_t n = a.rows();
  const std::size_t k = b.cols();

  // Forward substitution: L·z = b.
  Matrix z(n, k);
  for (std::size_t col = 0; col < k; ++col) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = b(i, col);
      for (std::size_t j = 0; j < i; ++j) {
        sum -= static_cast<double>(l(i, j)) * z(j, col);
      }
      z(i, col) = static_cast<float>(sum / l(i, i));
    }
  }
  // Back substitution: Lᵀ·x = z.
  Matrix x(n, k);
  for (std::size_t col = 0; col < k; ++col) {
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = z(ii, col);
      for (std::size_t j = ii + 1; j < n; ++j) {
        sum -= static_cast<double>(l(j, ii)) * x(j, col);
      }
      x(ii, col) = static_cast<float>(sum / l(ii, ii));
    }
  }
  return x;
}

Matrix least_squares(const Matrix& x, const Matrix& y, float ridge) {
  EVFL_REQUIRE(x.rows() == y.rows(), "least_squares: row mismatch");
  EVFL_REQUIRE(x.rows() >= x.cols(), "least_squares: underdetermined system");
  Matrix xtx = matmul_tn(x, x);
  for (std::size_t i = 0; i < xtx.rows(); ++i) xtx(i, i) += ridge;
  const Matrix xty = matmul_tn(x, y);
  return solve_spd(xtx, xty);
}

}  // namespace evfl::tensor
