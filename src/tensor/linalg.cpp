#include "tensor/linalg.hpp"

#include <cmath>

namespace evfl::tensor {

namespace {

void require_matmul_shapes(const Matrix& a, const Matrix& b, const Matrix& c,
                           std::size_t k_a, std::size_t k_b, std::size_t m,
                           std::size_t n, const char* op) {
  if (k_a != k_b || c.rows() != m || c.cols() != n) {
    throw ShapeError(std::string(op) + ": incompatible shapes " +
                     a.shape_str() + " · " + b.shape_str() + " -> " +
                     c.shape_str());
  }
}

}  // namespace

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c,
                const runtime::RunContext& ctx) {
  require_matmul_shapes(a, b, c, a.cols(), b.rows(), a.rows(), b.cols(),
                        "matmul");
  ctx.parallel_for(a.rows(), ctx.grain_for(a.rows()),
                   [&](std::size_t begin, std::size_t end) {
                     matmul_acc_rows(a, b, c, begin, end);
                   });
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   const runtime::RunContext& ctx) {
  require_matmul_shapes(a, b, c, a.rows(), b.rows(), a.cols(), b.cols(),
                        "matmul_tn");
  ctx.parallel_for(a.cols(), ctx.grain_for(a.cols()),
                   [&](std::size_t begin, std::size_t end) {
                     matmul_tn_acc_rows(a, b, c, begin, end);
                   });
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   const runtime::RunContext& ctx) {
  require_matmul_shapes(a, b, c, a.cols(), b.cols(), a.rows(), b.rows(),
                        "matmul_nt");
  ctx.parallel_for(a.rows(), ctx.grain_for(a.rows()),
                   [&](std::size_t begin, std::size_t end) {
                     matmul_nt_acc_rows(a, b, c, begin, end);
                   });
}

Matrix matmul(const Matrix& a, const Matrix& b,
              const runtime::RunContext& ctx) {
  Matrix c(a.rows(), b.cols());
  matmul_acc(a, b, c, ctx);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b,
                 const runtime::RunContext& ctx) {
  Matrix c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c, ctx);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b,
                 const runtime::RunContext& ctx) {
  Matrix c(a.rows(), b.rows());
  matmul_nt_acc(a, b, c, ctx);
  return c;
}

Matrix cholesky(const Matrix& a) {
  EVFL_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* lrow_i = l.row(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const float* lrow_j = l.row(j);
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= static_cast<double>(lrow_i[k]) * lrow_j[k];
      }
      if (i == j) {
        if (sum <= 0.0) {
          throw Error("cholesky: matrix not positive definite (pivot " +
                      std::to_string(i) + ")");
        }
        l(i, i) = static_cast<float>(std::sqrt(sum));
      } else {
        l(i, j) = static_cast<float>(sum / l(j, j));
      }
    }
  }
  return l;
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  EVFL_REQUIRE(a.rows() == b.rows(), "solve_spd: dimension mismatch");
  const Matrix l = cholesky(a);
  const std::size_t n = a.rows();
  const std::size_t k = b.cols();

  // Both substitutions solve all right-hand sides together, row by row:
  // the inner j loop then reads whole z/x rows contiguously instead of
  // striding down one column at a time.  Per (row, col) element the j
  // accumulation order is unchanged, so results match the column-at-a-
  // time loops exactly.
  std::vector<double> acc(k);

  // Forward substitution: L·z = b.
  Matrix z(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const float* lrow = l.row(i);
    for (std::size_t col = 0; col < k; ++col) acc[col] = b(i, col);
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = lrow[j];
      const float* zrow = z.row(j);
      for (std::size_t col = 0; col < k; ++col) {
        acc[col] -= lij * static_cast<double>(zrow[col]);
      }
    }
    const float lii = lrow[i];
    float* zout = z.row(i);
    for (std::size_t col = 0; col < k; ++col) {
      zout[col] = static_cast<float>(acc[col] / lii);
    }
  }
  // Back substitution: Lᵀ·x = z.
  Matrix x(n, k);
  for (std::size_t ii = n; ii-- > 0;) {
    const float* zrow = z.row(ii);
    for (std::size_t col = 0; col < k; ++col) acc[col] = zrow[col];
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double lji = l(j, ii);
      const float* xrow = x.row(j);
      for (std::size_t col = 0; col < k; ++col) {
        acc[col] -= lji * static_cast<double>(xrow[col]);
      }
    }
    const float lii = l(ii, ii);
    float* xout = x.row(ii);
    for (std::size_t col = 0; col < k; ++col) {
      xout[col] = static_cast<float>(acc[col] / lii);
    }
  }
  return x;
}

Matrix least_squares(const Matrix& x, const Matrix& y, float ridge) {
  EVFL_REQUIRE(x.rows() == y.rows(), "least_squares: row mismatch");
  EVFL_REQUIRE(x.rows() >= x.cols(), "least_squares: underdetermined system");
  Matrix xtx = matmul_tn(x, x);
  for (std::size_t i = 0; i < xtx.rows(); ++i) xtx(i, i) += ridge;
  const Matrix xty = matmul_tn(x, y);
  return solve_spd(xtx, xty);
}

}  // namespace evfl::tensor
