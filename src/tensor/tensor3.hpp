// Tensor3 is the [batch, time, feature] container that flows between nn
// layers.  Storage is one contiguous row-major buffer (n outer, t middle,
// f inner) so per-timestep Matrix slices are cheap strided copies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace evfl::tensor {

class Tensor3 {
 public:
  Tensor3() = default;

  /// batch x time x features, zero-initialized.
  Tensor3(std::size_t n, std::size_t t, std::size_t f)
      : n_(n), t_(t), f_(f), data_(n * t * f, 0.0f) {}

  std::size_t batch() const { return n_; }
  std::size_t time() const { return t_; }
  std::size_t features() const { return f_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t n, std::size_t t, std::size_t f) {
    return data_[(n * t_ + t) * f_ + f];
  }
  float operator()(std::size_t n, std::size_t t, std::size_t f) const {
    return data_[(n * t_ + t) * f_ + f];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool same_shape(const Tensor3& o) const {
    return n_ == o.n_ && t_ == o.t_ && f_ == o.f_;
  }

  /// Copy out timestep t as an [batch x features] matrix.
  Matrix timestep(std::size_t t) const;
  /// Copy timestep t into a pre-shaped [batch x features] matrix
  /// (allocation-free when `dst` already has the right shape).
  void copy_timestep_into(std::size_t t, Matrix& dst) const;
  /// Overwrite timestep t from an [batch x features] matrix.
  void set_timestep(std::size_t t, const Matrix& m);
  /// Overwrite timestep t from a strided [batch x features] view.
  void set_timestep(std::size_t t, ConstMatView m);
  /// Accumulate an [batch x features] matrix into timestep t.
  void add_timestep(std::size_t t, const Matrix& m);

  /// Copy out sample n as a [time x features] matrix.
  Matrix sample(std::size_t n) const;
  void set_sample(std::size_t n, const Matrix& m);

  /// Reinterpret as [(batch*time) x features] — same data, matrix view copy.
  Matrix flatten_rows() const;
  /// flatten_rows into a pre-shaped matrix (allocation-free on reuse).
  void flatten_rows_into(Matrix& dst) const;
  /// Inverse of flatten_rows for a known (n, t) split.
  static Tensor3 from_flat_rows(const Matrix& m, std::size_t n, std::size_t t);
  static Tensor3 from_flat_rows(ConstMatView m, std::size_t n, std::size_t t);

  /// Select a contiguous batch range [begin, end) into a new tensor.
  Tensor3 batch_slice(std::size_t begin, std::size_t end) const;

  /// Gather rows by index (mini-batch sampling).
  Tensor3 gather(const std::vector<std::size_t>& indices) const;

  /// Bulk-copy all of this tensor's samples into `dst` starting at batch
  /// index `offset` (one contiguous memcpy; time/feature dims must match).
  void copy_batch_into(Tensor3& dst, std::size_t offset) const;

  /// Copy one sample `src_index` of this tensor into `dst` at `dst_index`.
  void copy_sample_into(std::size_t src_index, Tensor3& dst,
                        std::size_t dst_index) const;

  Tensor3& operator+=(const Tensor3& o);
  Tensor3& operator-=(const Tensor3& o);
  Tensor3& operator*=(float s);

  float sum() const;
  float squared_norm() const;

  std::string shape_str() const;

 private:
  std::size_t n_ = 0, t_ = 0, f_ = 0;
  FloatVec data_;
};

float max_abs_diff(const Tensor3& a, const Tensor3& b);

}  // namespace evfl::tensor
