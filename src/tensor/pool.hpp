// Thread-local recycling pool for tensor storage.
//
// Matrix and Tensor3 back their float buffers with PoolAllocator: freed
// blocks park in a per-thread, size-bucketed free list instead of going
// back to the heap, and a later allocation of the same byte size is a
// pointer pop.  Training loops cycle through a fixed set of shapes, so
// after one warm-up step every temporary (forward outputs, gradients,
// mini-batch gathers) is a pool hit and the steady state performs zero
// heap allocations — the property bench_lstm_kernels pins.
//
// The pool is invisible to callers: allocator instances are stateless and
// always equal, so vector copy/move semantics are unchanged.  Blocks freed
// on a different thread than they were allocated on simply park in the
// freeing thread's pool (ownership transfers; no cross-thread races).
// Each pool is torn down at thread exit, returning every parked block to
// the heap, so sanitizer leak checks stay clean.  Under ASan/TSan the pool
// compiles to plain operator new/delete so the sanitizers keep full
// visibility into buffer lifetimes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace evfl::tensor {

/// Allocate `bytes` from the calling thread's pool (exact-size bucket hit)
/// or the heap on a miss.
void* pool_allocate(std::size_t bytes);
/// Return a block to the calling thread's pool (or the heap if the bucket
/// is full or the block is oversized).
void pool_deallocate(void* p, std::size_t bytes) noexcept;

struct PoolStats {
  std::uint64_t hits = 0;      // allocations served from the free list
  std::uint64_t misses = 0;    // allocations that fell through to the heap
  std::uint64_t parked = 0;    // blocks currently held by the pool
  std::uint64_t parked_bytes = 0;
};

/// Statistics of the calling thread's pool (always zero when the pool is
/// compiled out under sanitizers).
PoolStats pool_stats();

/// Release every parked block of the calling thread back to the heap.
void pool_trim();

template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_deallocate(p, n * sizeof(T));
  }
};

template <typename T, typename U>
bool operator==(const PoolAllocator<T>&, const PoolAllocator<U>&) {
  return true;
}
template <typename T, typename U>
bool operator!=(const PoolAllocator<T>&, const PoolAllocator<U>&) {
  return false;
}

/// The storage type behind Matrix and Tensor3.
using FloatVec = std::vector<float, PoolAllocator<float>>;

}  // namespace evfl::tensor
