#include "tensor/pool.hpp"

#include <new>
#include <unordered_map>

// Compile the pool out under sanitizers: recycling would blind ASan to
// use-after-free on tensor buffers and hide allocation ordering from TSan.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EVFL_TENSOR_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EVFL_TENSOR_POOL_DISABLED 1
#endif
#endif

namespace evfl::tensor {

#ifdef EVFL_TENSOR_POOL_DISABLED

void* pool_allocate(std::size_t bytes) {
  return ::operator new(bytes == 0 ? 1 : bytes);
}
void pool_deallocate(void* p, std::size_t) noexcept { ::operator delete(p); }
PoolStats pool_stats() { return {}; }
void pool_trim() {}

#else

namespace {

// Blocks above this size are never parked (a handful of huge pipeline
// buffers must not pin memory forever); buckets are capped so a burst of
// temporaries cannot hoard unbounded storage.
constexpr std::size_t kMaxPooledBytes = std::size_t{64} << 20;
constexpr std::size_t kMaxBlocksPerBucket = 64;

struct FreeLists {
  std::unordered_map<std::size_t, std::vector<void*>> buckets;
  PoolStats stats;

  ~FreeLists() {
    for (auto& [size, blocks] : buckets) {
      for (void* p : blocks) ::operator delete(p);
    }
    buckets.clear();
  }
};

FreeLists& lists() {
  static thread_local FreeLists fl;
  return fl;
}

}  // namespace

void* pool_allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  FreeLists& fl = lists();
  if (bytes <= kMaxPooledBytes) {
    auto it = fl.buckets.find(bytes);
    if (it != fl.buckets.end() && !it->second.empty()) {
      void* p = it->second.back();
      it->second.pop_back();
      ++fl.stats.hits;
      --fl.stats.parked;
      fl.stats.parked_bytes -= bytes;
      return p;
    }
  }
  ++fl.stats.misses;
  return ::operator new(bytes);
}

void pool_deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes <= kMaxPooledBytes) {
    FreeLists& fl = lists();
    std::vector<void*>& bucket = fl.buckets[bytes];
    if (bucket.size() < kMaxBlocksPerBucket) {
      // Growing the bucket vector itself can throw; a full/failed park
      // falls through to a plain free.
      try {
        bucket.push_back(p);
        ++fl.stats.parked;
        fl.stats.parked_bytes += bytes;
        return;
      } catch (...) {
      }
    }
  }
  ::operator delete(p);
}

PoolStats pool_stats() { return lists().stats; }

void pool_trim() {
  FreeLists& fl = lists();
  for (auto& [size, blocks] : fl.buckets) {
    for (void* p : blocks) ::operator delete(p);
    fl.stats.parked -= blocks.size();
    fl.stats.parked_bytes -= size * blocks.size();
    blocks.clear();
  }
}

#endif  // EVFL_TENSOR_POOL_DISABLED

}  // namespace evfl::tensor
