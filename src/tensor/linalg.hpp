// Small dense linear-algebra routines for the classical baselines
// (Cholesky factorization and SPD solves / normal-equations least squares)
// plus the context-aware GEMM entry points: matmul overloads that
// row-partition the output across a runtime::RunContext's thread pool while
// keeping the serial kernels from tensor/matrix as the grain body, so the
// parallel results stay bit-identical to the serial ones.
#pragma once

#include <vector>

#include "runtime/run_context.hpp"
#include "tensor/matrix.hpp"

namespace evfl::tensor {

/// C += A · B, output rows partitioned across ctx's pool.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c,
                const runtime::RunContext& ctx);
/// C += Aᵀ · B, output rows partitioned across ctx's pool.
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   const runtime::RunContext& ctx);
/// C += A · Bᵀ, output rows partitioned across ctx's pool.
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   const runtime::RunContext& ctx);

/// C = A · B under a RunContext.
Matrix matmul(const Matrix& a, const Matrix& b, const runtime::RunContext& ctx);
/// C = Aᵀ · B under a RunContext.
Matrix matmul_tn(const Matrix& a, const Matrix& b,
                 const runtime::RunContext& ctx);
/// C = A · Bᵀ under a RunContext.
Matrix matmul_nt(const Matrix& a, const Matrix& b,
                 const runtime::RunContext& ctx);

/// Lower-triangular Cholesky factor L of a symmetric positive-definite A
/// (A = L·Lᵀ).  Throws evfl::Error if A is not SPD (within tolerance).
Matrix cholesky(const Matrix& a);

/// Solve A·x = b for SPD A via Cholesky (b is [n x k], solves all columns).
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Least squares: argmin_w |X·w - y|² via ridge-stabilized normal equations
/// (XᵀX + lambda·I) w = Xᵀy.  X is [m x n], y is [m x 1]; returns [n x 1].
Matrix least_squares(const Matrix& x, const Matrix& y, float ridge = 1e-6f);

}  // namespace evfl::tensor
