// Small dense linear-algebra routines for the classical baselines:
// Cholesky factorization and SPD solves (normal-equations least squares).
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace evfl::tensor {

/// Lower-triangular Cholesky factor L of a symmetric positive-definite A
/// (A = L·Lᵀ).  Throws evfl::Error if A is not SPD (within tolerance).
Matrix cholesky(const Matrix& a);

/// Solve A·x = b for SPD A via Cholesky (b is [n x k], solves all columns).
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Least squares: argmin_w |X·w - y|² via ridge-stabilized normal equations
/// (XᵀX + lambda·I) w = Xᵀy.  X is [m x n], y is [m x 1]; returns [n x 1].
Matrix least_squares(const Matrix& x, const Matrix& y, float ridge = 1e-6f);

}  // namespace evfl::tensor
