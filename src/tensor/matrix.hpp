// Dense row-major float matrix with the handful of BLAS-like kernels the
// neural-network substrate needs.  Deliberately small: no expression
// templates, no views — clarity and predictable performance on one core.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace evfl::tensor {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols, every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists; all rows must have equal length.
  static Matrix from_rows(std::initializer_list<std::initializer_list<float>> rows);

  /// Build a 1 x n row vector from a flat list of values.
  static Matrix row_vector(const std::vector<float>& values);

  /// Build an n x 1 column vector from a flat list of values.
  static Matrix col_vector(const std::vector<float>& values);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws ShapeError); use in non-hot paths.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float value);
  void set_zero() { fill(0.0f); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // ---- in-place elementwise ops ------------------------------------------
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);
  /// Elementwise (Hadamard) product in place.
  Matrix& hadamard_inplace(const Matrix& other);
  /// this += alpha * other  (axpy).
  Matrix& axpy(float alpha, const Matrix& other);

  /// Adds the 1 x cols row vector `bias` to every row (bias broadcast).
  Matrix& add_row_broadcast(const Matrix& bias);

  // ---- reductions ---------------------------------------------------------
  float sum() const;
  float min() const;
  float max() const;
  /// Sum over rows producing a 1 x cols row vector (bias gradient).
  Matrix col_sums() const;
  /// Frobenius norm squared.
  float squared_norm() const;

  Matrix transposed() const;

  std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- free functions --------------------------------------------------------

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, float s);
Matrix operator*(float s, Matrix a);
Matrix hadamard(Matrix a, const Matrix& b);

/// C = A · B
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ · B  (without materializing the transpose)
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A · Bᵀ  (without materializing the transpose)
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// C += A · B  — the LSTM hot loop; kernel is cache-blocked ikj.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C += Aᵀ · B
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A · Bᵀ
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c);

// Row-range kernel bodies: compute output rows [row_begin, row_end) of C
// only, with the same per-element accumulation order as the full serial
// kernels (bit-identical results).  These are the grain bodies the
// context-aware overloads in tensor/linalg partition across a thread pool;
// shapes are assumed already validated.
void matmul_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                     std::size_t row_begin, std::size_t row_end);
void matmul_tn_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end);
void matmul_nt_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end);

/// Max absolute elementwise difference; matrices must share a shape.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace evfl::tensor
