// Dense row-major float matrix with the handful of BLAS-like kernels the
// neural-network substrate needs, plus lightweight strided views so a
// column block of a fused matrix (e.g. one LSTM gate inside [N, 4H]) can
// be read and written in place.  Storage is pool-recycled (tensor/pool) so
// steady-state temporaries don't touch the heap.  Kernels are cache-
// blocked over output rows/columns only — the per-element accumulation
// order over k is identical to the naive loops, so blocked, serial, and
// row-partitioned parallel runs all produce bit-identical results.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tensor/pool.hpp"

namespace evfl::tensor {

// ---- strided views ---------------------------------------------------------
// Non-owning [rows x cols] window onto row-major storage whose rows are
// `stride` floats apart.  A Matrix is the stride == cols special case; a
// gate block of a fused [N, 4H] matrix is a stride == 4H view.  Views are
// cheap value types; the referenced storage must outlive them.

struct ConstMatView {
  const float* data = nullptr;
  std::size_t rows = 0, cols = 0, stride = 0;

  const float* row(std::size_t r) const { return data + r * stride; }
  float operator()(std::size_t r, std::size_t c) const {
    return data[r * stride + c];
  }
};

struct MatView {
  float* data = nullptr;
  std::size_t rows = 0, cols = 0, stride = 0;

  float* row(std::size_t r) const { return data + r * stride; }
  float& operator()(std::size_t r, std::size_t c) const {
    return data[r * stride + c];
  }
  operator ConstMatView() const { return {data, rows, cols, stride}; }

  void set_zero() const;
};

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols, every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists; all rows must have equal length.
  static Matrix from_rows(std::initializer_list<std::initializer_list<float>> rows);

  /// Build a 1 x n row vector from a flat list of values.
  static Matrix row_vector(const std::vector<float>& values);

  /// Build an n x 1 column vector from a flat list of values.
  static Matrix col_vector(const std::vector<float>& values);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws ShapeError); use in non-hot paths.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Whole-matrix view (stride == cols).
  MatView view() { return {data(), rows_, cols_, cols_}; }
  ConstMatView view() const { return {data(), rows_, cols_, cols_}; }

  /// Strided view of columns [col_begin, col_begin + n_cols): reads and
  /// writes go straight to this matrix's storage.
  MatView col_block(std::size_t col_begin, std::size_t n_cols);
  ConstMatView col_block(std::size_t col_begin, std::size_t n_cols) const;

  void fill(float value);
  void set_zero() { fill(0.0f); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // ---- in-place elementwise ops ------------------------------------------
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);
  /// Elementwise (Hadamard) product in place.
  Matrix& hadamard_inplace(const Matrix& other);
  /// this += alpha * other  (axpy).
  Matrix& axpy(float alpha, const Matrix& other);

  /// Adds the 1 x cols row vector `bias` to every row (bias broadcast).
  Matrix& add_row_broadcast(const Matrix& bias);

  // ---- reductions ---------------------------------------------------------
  float sum() const;
  float min() const;
  float max() const;
  /// Sum over rows producing a 1 x cols row vector (bias gradient).
  Matrix col_sums() const;
  /// col_sums into a pre-shaped 1 x cols matrix — same accumulation order,
  /// no allocation when `out` already has the right shape.
  void col_sums_into(Matrix& out) const;
  /// Frobenius norm squared.
  float squared_norm() const;

  Matrix transposed() const;

  std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  FloatVec data_;
};

// ---- free functions --------------------------------------------------------

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, float s);
Matrix operator*(float s, Matrix a);
Matrix hadamard(Matrix a, const Matrix& b);

/// C = A · B
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ · B  (without materializing the transpose)
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A · Bᵀ  (without materializing the transpose)
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// C += A · B  — the LSTM hot loop; kernel is cache-blocked over i/j.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C += Aᵀ · B
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A · Bᵀ
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c);

// Shape-checked view entry points: identical kernels over strided storage
// (workspace scratch, gate blocks), so hot paths can multiply without
// materializing Matrix temporaries.
void matmul_acc(ConstMatView a, ConstMatView b, MatView c);
void matmul_tn_acc(ConstMatView a, ConstMatView b, MatView c);
void matmul_nt_acc(ConstMatView a, ConstMatView b, MatView c);

// Row-range kernel bodies: compute output rows [row_begin, row_end) of C
// only.  Blocking covers output rows and columns exclusively — for every
// C element the k accumulation runs ascending exactly like the naive
// triple loop, so blocked, unblocked, and row-partitioned parallel runs
// are bit-identical.  These are the grain bodies the context-aware
// overloads in tensor/linalg partition across a thread pool; shapes are
// assumed already validated.
void matmul_acc_rows(ConstMatView a, ConstMatView b, MatView c,
                     std::size_t row_begin, std::size_t row_end);
void matmul_tn_acc_rows(ConstMatView a, ConstMatView b, MatView c,
                        std::size_t row_begin, std::size_t row_end);
void matmul_nt_acc_rows(ConstMatView a, ConstMatView b, MatView c,
                        std::size_t row_begin, std::size_t row_end);
void matmul_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                     std::size_t row_begin, std::size_t row_end);
void matmul_tn_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end);
void matmul_nt_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end);

/// Max absolute elementwise difference; matrices must share a shape.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace evfl::tensor
