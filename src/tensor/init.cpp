#include "tensor/init.hpp"

#include <cmath>

namespace evfl::tensor {

Matrix glorot_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  Matrix m(fan_in, fan_out);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.uniform(-limit, limit);
  }
  return m;
}

Matrix random_normal(std::size_t rows, std::size_t cols, float stddev,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.normal(0.0f, stddev);
  }
  return m;
}

Matrix orthogonal(std::size_t rows, std::size_t cols, Rng& rng) {
  // Build a tall random matrix and orthonormalize its columns with modified
  // Gram-Schmidt; transpose back if a wide matrix was requested.
  const bool transpose = rows < cols;
  const std::size_t r = transpose ? cols : rows;
  const std::size_t c = transpose ? rows : cols;

  Matrix a = random_normal(r, c, 1.0f, rng);
  for (std::size_t j = 0; j < c; ++j) {
    // Orthogonalize column j against the previous columns.
    for (std::size_t k = 0; k < j; ++k) {
      double dot = 0.0;
      for (std::size_t i = 0; i < r; ++i) dot += a(i, k) * a(i, j);
      for (std::size_t i = 0; i < r; ++i) {
        a(i, j) -= static_cast<float>(dot) * a(i, k);
      }
    }
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < r; ++i) {
      norm_sq += static_cast<double>(a(i, j)) * a(i, j);
    }
    double norm = std::sqrt(norm_sq);
    if (norm < 1e-8) {
      // Degenerate column (vanishingly unlikely): re-randomize axis.
      for (std::size_t i = 0; i < r; ++i) a(i, j) = 0.0f;
      a(j % r, j) = 1.0f;
      norm = 1.0;
    }
    for (std::size_t i = 0; i < r; ++i) {
      a(i, j) = static_cast<float>(a(i, j) / norm);
    }
  }
  return transpose ? a.transposed() : a;
}

}  // namespace evfl::tensor
