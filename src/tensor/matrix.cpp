#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace evfl::tensor {

namespace {

void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (!a.same_shape(b)) {
    throw ShapeError(std::string(op) + ": shape mismatch " + a.shape_str() +
                     " vs " + b.shape_str());
  }
}

}  // namespace

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c) {
      throw ShapeError("from_rows: ragged initializer");
    }
    std::size_t j = 0;
    for (float v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::row_vector(const std::vector<float>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::col_vector(const std::vector<float>& values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError("Matrix::at out of range in " + shape_str());
  }
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError("Matrix::at out of range in " + shape_str());
  }
  return (*this)(r, c);
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(*this, other, "operator+=");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] += src[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(*this, other, "operator-=");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] -= src[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  require_same_shape(*this, other, "hadamard");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] *= src[i];
  return *this;
}

Matrix& Matrix::axpy(float alpha, const Matrix& other) {
  require_same_shape(*this, other, "axpy");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
  return *this;
}

Matrix& Matrix::add_row_broadcast(const Matrix& bias) {
  if (bias.rows() != 1 || bias.cols() != cols_) {
    throw ShapeError("add_row_broadcast: bias " + bias.shape_str() +
                     " does not broadcast over " + shape_str());
  }
  const float* b = bias.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    float* dst = row(r);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += b[c];
  }
  return *this;
}

float Matrix::sum() const {
  // Pairwise-ish accumulation in double to keep long reductions accurate.
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::min() const {
  EVFL_ASSERT(!data_.empty(), "min of empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

float Matrix::max() const {
  EVFL_ASSERT(!data_.empty(), "max of empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

Matrix Matrix::col_sums() const {
  Matrix out(1, cols_);
  float* dst = out.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* src = row(r);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  return out;
}

float Matrix::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

std::string Matrix::shape_str() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, float s) { return a *= s; }
Matrix operator*(float s, Matrix a) { return a *= s; }
Matrix hadamard(Matrix a, const Matrix& b) { return a.hadamard_inplace(b); }

void matmul_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                     std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.cols(), n = b.cols();
  // ikj order: streams B and C rows; good locality for the small-to-medium
  // matrices (batch x hidden · hidden x 4*hidden) the LSTM produces.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b.row(kk);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw ShapeError("matmul: incompatible shapes " + a.shape_str() + " · " +
                     b.shape_str() + " -> " + c.shape_str());
  }
  matmul_acc_rows(a, b, c, 0, a.rows());
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_acc(a, b, c);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols()) {
    throw ShapeError("matmul_tn: incompatible shapes " + a.shape_str() +
                     "ᵀ · " + b.shape_str() + " -> " + c.shape_str());
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  // C[i,j] += sum_kk A[kk,i] * B[kk,j]; iterate kk outer to stream rows.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.row(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void matmul_tn_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.rows(), n = b.cols();
  // i outer so each thread owns a C-row range.  For a fixed element (i,j)
  // the kk accumulation still runs ascending, matching the kk-outer serial
  // kernel float-for-float.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* crow = c.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aki = a(kk, i);
      if (aki == 0.0f) continue;
      const float* brow = b.row(kk);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_nt_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.cols(), n = b.rows();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += static_cast<float>(acc);
    }
  }
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.cols() || c.rows() != a.rows() || c.cols() != b.rows()) {
    throw ShapeError("matmul_nt: incompatible shapes " + a.shape_str() +
                     " · " + b.shape_str() + "ᵀ -> " + c.shape_str());
  }
  matmul_nt_acc_rows(a, b, c, 0, a.rows());
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_nt_acc(a, b, c);
  return c;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "max_abs_diff");
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(pa[i] - pb[i]));
  }
  return worst;
}

}  // namespace evfl::tensor
