#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#if defined(__AVX__)
#include <immintrin.h>
#endif

namespace evfl::tensor {

namespace {

void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (!a.same_shape(b)) {
    throw ShapeError(std::string(op) + ": shape mismatch " + a.shape_str() +
                     " vs " + b.shape_str());
  }
}

void require_view_shapes(ConstMatView c, std::size_t k_a, std::size_t k_b,
                         std::size_t m, std::size_t n, const char* op) {
  if (k_a != k_b || c.rows != m || c.cols != n) {
    throw ShapeError(std::string(op) + ": incompatible view shapes");
  }
}

}  // namespace

void MatView::set_zero() const {
  for (std::size_t r = 0; r < rows; ++r) {
    std::fill(row(r), row(r) + cols, 0.0f);
  }
}

MatView Matrix::col_block(std::size_t col_begin, std::size_t n_cols) {
  EVFL_REQUIRE(col_begin + n_cols <= cols_,
               "col_block out of range in " + shape_str());
  return {data() + col_begin, rows_, n_cols, cols_};
}

ConstMatView Matrix::col_block(std::size_t col_begin,
                               std::size_t n_cols) const {
  EVFL_REQUIRE(col_begin + n_cols <= cols_,
               "col_block out of range in " + shape_str());
  return {data() + col_begin, rows_, n_cols, cols_};
}

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c) {
      throw ShapeError("from_rows: ragged initializer");
    }
    std::size_t j = 0;
    for (float v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::row_vector(const std::vector<float>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::col_vector(const std::vector<float>& values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError("Matrix::at out of range in " + shape_str());
  }
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError("Matrix::at out of range in " + shape_str());
  }
  return (*this)(r, c);
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(*this, other, "operator+=");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] += src[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(*this, other, "operator-=");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] -= src[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  require_same_shape(*this, other, "hadamard");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] *= src[i];
  return *this;
}

Matrix& Matrix::axpy(float alpha, const Matrix& other) {
  require_same_shape(*this, other, "axpy");
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
  return *this;
}

Matrix& Matrix::add_row_broadcast(const Matrix& bias) {
  if (bias.rows() != 1 || bias.cols() != cols_) {
    throw ShapeError("add_row_broadcast: bias " + bias.shape_str() +
                     " does not broadcast over " + shape_str());
  }
  const float* b = bias.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    float* dst = row(r);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += b[c];
  }
  return *this;
}

float Matrix::sum() const {
  // Pairwise-ish accumulation in double to keep long reductions accurate.
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::min() const {
  EVFL_ASSERT(!data_.empty(), "min of empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

float Matrix::max() const {
  EVFL_ASSERT(!data_.empty(), "max of empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

Matrix Matrix::col_sums() const {
  Matrix out(1, cols_);
  col_sums_into(out);
  return out;
}

void Matrix::col_sums_into(Matrix& out) const {
  if (out.rows() != 1 || out.cols() != cols_) out = Matrix(1, cols_);
  out.set_zero();
  float* dst = out.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* src = row(r);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
}

float Matrix::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

std::string Matrix::shape_str() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, float s) { return a *= s; }
Matrix operator*(float s, Matrix a) { return a *= s; }
Matrix hadamard(Matrix a, const Matrix& b) { return a.hadamard_inplace(b); }

// ---- blocked GEMM kernels --------------------------------------------------
// All three kernels tile the *output*: i blocks keep a C panel resident
// while B rows stream through, j blocks keep the streamed B columns inside
// L1.  The k loop is never reordered or split, so each C element sees the
// exact accumulation sequence of the naive ikj loop — the determinism
// contract (DESIGN.md §8) that lets blocked, unblocked, and thread-
// partitioned runs produce bit-identical results.

namespace {
constexpr std::size_t kBlockI = 64;   // C rows per tile
constexpr std::size_t kBlockJ = 128;  // C cols per tile (512 B per row)
}  // namespace

void matmul_acc_rows(ConstMatView a, ConstMatView b, MatView c,
                     std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.cols, n = b.cols;
  for (std::size_t ib = row_begin; ib < row_end; ib += kBlockI) {
    const std::size_t iend = std::min(row_end, ib + kBlockI);
    for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
      const std::size_t jend = std::min(n, jb + kBlockJ);
      for (std::size_t i = ib; i < iend; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float aik = arow[kk];
          if (aik == 0.0f) continue;
          const float* brow = b.row(kk);
          for (std::size_t j = jb; j < jend; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void matmul_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                     std::size_t row_begin, std::size_t row_end) {
  matmul_acc_rows(a.view(), b.view(), c.view(), row_begin, row_end);
}

void matmul_acc(ConstMatView a, ConstMatView b, MatView c) {
  require_view_shapes(c, a.cols, b.rows, a.rows, b.cols, "matmul");
  matmul_acc_rows(a, b, c, 0, a.rows);
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw ShapeError("matmul: incompatible shapes " + a.shape_str() + " · " +
                     b.shape_str() + " -> " + c.shape_str());
  }
  matmul_acc_rows(a, b, c, 0, a.rows());
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_acc(a, b, c);
  return c;
}

void matmul_tn_acc_rows(ConstMatView a, ConstMatView b, MatView c,
                        std::size_t row_begin, std::size_t row_end) {
  // C[i,j] += sum_kk A[kk,i] * B[kk,j].  kk runs outermost *within* each
  // tile so A and B rows stream contiguously; for a fixed (i,j) the kk
  // accumulation is still ascending, matching the naive kernel bit for
  // bit.
  const std::size_t k = a.rows, n = b.cols;
  for (std::size_t ib = row_begin; ib < row_end; ib += kBlockI) {
    const std::size_t iend = std::min(row_end, ib + kBlockI);
    for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
      const std::size_t jend = std::min(n, jb + kBlockJ);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* arow = a.row(kk);
        const float* brow = b.row(kk);
        for (std::size_t i = ib; i < iend; ++i) {
          const float aki = arow[i];
          if (aki == 0.0f) continue;
          float* crow = c.row(i);
          for (std::size_t j = jb; j < jend; ++j) crow[j] += aki * brow[j];
        }
      }
    }
  }
}

void matmul_tn_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end) {
  matmul_tn_acc_rows(a.view(), b.view(), c.view(), row_begin, row_end);
}

void matmul_tn_acc(ConstMatView a, ConstMatView b, MatView c) {
  require_view_shapes(c, a.rows, b.rows, a.cols, b.cols, "matmul_tn");
  matmul_tn_acc_rows(a, b, c, 0, a.cols);
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols()) {
    throw ShapeError("matmul_tn: incompatible shapes " + a.shape_str() +
                     "ᵀ · " + b.shape_str() + " -> " + c.shape_str());
  }
  matmul_tn_acc_rows(a, b, c, 0, a.cols());
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_nt_acc_rows(ConstMatView a, ConstMatView b, MatView c,
                        std::size_t row_begin, std::size_t row_end) {
  // Each C element is a double-accumulated dot of two float rows — a
  // strictly serial dependency chain (~4-cycle add latency per element).
  // Independent chains hide that latency: process 8 output columns at
  // once, each with its own accumulator running its exact serial order.
  // The products stay float (only the running sum is double), matching the
  // one-column loop bit for bit.
  const std::size_t k = a.cols, n = b.rows;
  // Column-major pack of 8 B rows so the 8 chains load one contiguous
  // vector per k step; reused across every A row of the block.
  static thread_local std::vector<float> packed;
  if (n >= 8 && packed.size() < k * 8) packed.resize(k * 8);
  for (std::size_t ib = row_begin; ib < row_end; ib += kBlockI) {
    const std::size_t iend = std::min(row_end, ib + kBlockI);
    for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
      const std::size_t jend = std::min(n, jb + kBlockJ);
      std::size_t j = jb;
      for (; j + 8 <= jend; j += 8) {
        for (std::size_t m = 0; m < 8; ++m) {
          const float* brow = b.row(j + m);
          for (std::size_t kk = 0; kk < k; ++kk) packed[kk * 8 + m] = brow[kk];
        }
        const float* bp = packed.data();
        for (std::size_t i = ib; i < iend; ++i) {
          const float* arow = a.row(i);
          float* crow = c.row(i);
#if defined(__AVX__)
          // Lane m runs column j+m's exact serial chain: IEEE float
          // multiply, exact widen to double, double add per k step.
          __m256d slo = _mm256_setzero_pd();
          __m256d shi = _mm256_setzero_pd();
          for (std::size_t kk = 0; kk < k; ++kk) {
            const __m256 prod = _mm256_mul_ps(_mm256_broadcast_ss(arow + kk),
                                              _mm256_loadu_ps(bp + kk * 8));
            slo = _mm256_add_pd(slo,
                                _mm256_cvtps_pd(_mm256_castps256_ps128(prod)));
            shi = _mm256_add_pd(shi,
                                _mm256_cvtps_pd(_mm256_extractf128_ps(prod, 1)));
          }
          double s[8];
          _mm256_storeu_pd(s, slo);
          _mm256_storeu_pd(s + 4, shi);
#else
          double s[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            const float* col = bp + kk * 8;
            for (std::size_t m = 0; m < 8; ++m) s[m] += av * col[m];
          }
#endif
          for (std::size_t m = 0; m < 8; ++m) {
            crow[j + m] += static_cast<float>(s[m]);
          }
        }
      }
      for (; j < jend; ++j) {
        const float* brow = b.row(j);
        for (std::size_t i = ib; i < iend; ++i) {
          const float* arow = a.row(i);
          double acc = 0.0;
          for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          c.row(i)[j] += static_cast<float>(acc);
        }
      }
    }
  }
}

void matmul_nt_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                        std::size_t row_begin, std::size_t row_end) {
  matmul_nt_acc_rows(a.view(), b.view(), c.view(), row_begin, row_end);
}

void matmul_nt_acc(ConstMatView a, ConstMatView b, MatView c) {
  require_view_shapes(c, a.cols, b.cols, a.rows, b.rows, "matmul_nt");
  matmul_nt_acc_rows(a, b, c, 0, a.rows);
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.cols() || c.rows() != a.rows() || c.cols() != b.rows()) {
    throw ShapeError("matmul_nt: incompatible shapes " + a.shape_str() +
                     " · " + b.shape_str() + "ᵀ -> " + c.shape_str());
  }
  matmul_nt_acc_rows(a, b, c, 0, a.rows());
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_nt_acc(a, b, c);
  return c;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "max_abs_diff");
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(pa[i] - pb[i]));
  }
  return worst;
}

}  // namespace evfl::tensor
