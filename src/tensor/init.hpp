// Weight initializers used by the nn layers.
#pragma once

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace evfl::tensor {

/// Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (fan_in+fan_out)).
Matrix glorot_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// Scaled normal N(0, stddev).
Matrix random_normal(std::size_t rows, std::size_t cols, float stddev, Rng& rng);

/// Orthogonal init (modified Gram-Schmidt on a random normal matrix) —
/// the standard recurrent-kernel initializer; keeps hidden-state norms stable
/// through time.
Matrix orthogonal(std::size_t rows, std::size_t cols, Rng& rng);

}  // namespace evfl::tensor
