#include "tensor/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace evfl::tensor {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  return dist(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  EVFL_REQUIRE(n > 0, "Rng::index needs n > 0");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

float Rng::log_uniform(float lo, float hi) {
  EVFL_REQUIRE(lo > 0.0f && hi >= lo, "log_uniform needs 0 < lo <= hi");
  const float u = uniform(std::log(lo), std::log(hi));
  return std::exp(u);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

Rng Rng::split() {
  // Consuming two draws decorrelates the child stream from the parent's
  // subsequent output.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace evfl::tensor
