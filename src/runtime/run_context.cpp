#include "runtime/run_context.hpp"

#include <algorithm>

namespace evfl::runtime {

void Metrics::add(const std::string& name, double amount) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_[name] += amount;
}

double Metrics::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::unordered_map<std::string, double> Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_;
}

void RunContext::parallel_for(
    std::size_t total, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (total == 0) return;
  if (pool != nullptr && pool->concurrency() > 1) {
    pool->parallel_for(total, grain, body);
  } else {
    body(0, total);
  }
}

std::size_t RunContext::grain_for(std::size_t total) const {
  const std::size_t lanes = std::max<std::size_t>(1, concurrency()) * 4;
  return std::max<std::size_t>(1, (total + lanes - 1) / lanes);
}

std::vector<tensor::Rng> split_rngs(tensor::Rng& root, std::size_t n) {
  std::vector<tensor::Rng> children;
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) children.push_back(root.split());
  return children;
}

}  // namespace evfl::runtime
