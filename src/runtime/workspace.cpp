#include "runtime/workspace.hpp"

#include <algorithm>
#include <cstring>

namespace evfl::runtime {

float* Workspace::borrow(std::size_t n) {
  const std::size_t need =
      (std::max<std::size_t>(n, 1) + kAlignFloats - 1) / kAlignFloats *
      kAlignFloats;

  // Advance to the first block (possibly a fresh one) that can hold the
  // request.  Blocks are never freed or resized, so pointers handed out
  // before this call stay valid.
  while (true) {
    if (block_ < blocks_.size() &&
        offset_ + need <= blocks_[block_].cap) {
      break;
    }
    if (block_ + 1 < blocks_.size()) {
      ++block_;
      offset_ = 0;
      continue;
    }
    const std::size_t last_cap = blocks_.empty() ? 0 : blocks_.back().cap;
    const std::size_t cap =
        std::max({need, 2 * last_cap, kMinBlockFloats});
    blocks_.push_back(Block{std::make_unique<float[]>(cap), cap});
    block_ = blocks_.size() - 1;
    offset_ = 0;
    break;
  }

  float* p = blocks_[block_].data.get() + offset_;
  offset_ += need;

  std::size_t in_use = offset_;
  for (std::size_t b = 0; b < block_; ++b) in_use += blocks_[b].cap;
  high_water_ = std::max(high_water_, in_use);
  return p;
}

float* Workspace::borrow_zeroed(std::size_t n) {
  float* p = borrow(n);
  std::memset(p, 0, n * sizeof(float));
  return p;
}

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.cap;
  return total;
}

Workspace& thread_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace evfl::runtime
