// Bounded exponential backoff for retrying transient failures (a dropped
// broadcast, a slow peer).  Deliberately jitter-free: evfl's determinism
// contract means two runs with the same seeds must retry on the same
// schedule.
#pragma once

#include <cstddef>

namespace evfl::runtime {

struct BackoffPolicy {
  double initial_ms = 100.0;   // first wait
  double multiplier = 2.0;     // growth per attempt
  double max_wait_ms = 5'000.0;  // per-attempt ceiling
};

/// Wait before attempt `attempt` (0-based): initial * multiplier^attempt,
/// capped at max_wait_ms.  There is deliberately no attempt limit in the
/// policy itself — callers own the total budget and keep retrying at
/// max_wait_ms until it is spent, so the time a caller waits is governed by
/// its budget, not by how the ramp happens to sum.
inline double backoff_wait_ms(const BackoffPolicy& policy,
                              std::size_t attempt) {
  double wait = policy.initial_ms;
  for (std::size_t i = 0; i < attempt; ++i) {
    wait *= policy.multiplier;
    if (wait >= policy.max_wait_ms) return policy.max_wait_ms;
  }
  return wait < policy.max_wait_ms ? wait : policy.max_wait_ms;
}

}  // namespace evfl::runtime
