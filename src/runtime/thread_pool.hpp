// Fixed-size thread pool with a chunked parallel_for primitive — the
// execution substrate every context-aware code path (tensor kernels,
// evaluation, pipeline prep, federated drivers) partitions work onto.
//
// Deliberately work-stealing-free: chunks are claimed from one atomic
// cursor, the calling thread participates, and a pool of size 1 spawns no
// workers at all, so the 1-thread pool is literally the serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace evfl::runtime {

class ThreadPool {
 public:
  /// `threads` is the total desired concurrency including the calling
  /// thread: ThreadPool(1) spawns no workers and parallel_for degrades to
  /// a plain serial loop.  0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency: worker threads plus the calling thread.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Split [0, total) into chunks of at most `grain` indices and run
  /// `body(begin, end)` once per chunk across the pool; the calling thread
  /// participates and the call blocks until every chunk finished.  The
  /// first exception thrown by any chunk is rethrown on the caller once
  /// all chunks settle.  Calls from inside a pool worker (nested
  /// parallelism) run serially instead of deadlocking on their own pool.
  void parallel_for(std::size_t total, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace evfl::runtime
