// Workspace — a bump-allocated scratch arena for kernel temporaries.
//
// Hot kernels (LSTM BPTT, Dense backward, blocked GEMM drivers) need
// short-lived float buffers every call.  Constructing Matrix temporaries
// for them costs an allocation plus a zero-fill each time; a Workspace
// instead hands out slices of a few long-lived blocks and rewinds to a
// checkpoint when the kernel returns, so the steady state never touches
// the heap.
//
// Lifetime rules (DESIGN.md §8 "Performance model"):
//  - borrow() pointers stay valid until the Workspace is rewound past the
//    checkpoint taken before the borrow — blocks never move or shrink.
//  - Every thread has its own lane (thread_workspace()); borrowing and
//    rewinding are single-threaded by construction.  Other threads may
//    *read* a borrowed buffer inside a parallel_for, but only the owning
//    thread borrows from or rewinds its lane, and the lane must not be
//    rewound while workers still hold the pointer (parallel_for joins
//    before ScratchScope unwinds, which guarantees this).
//  - Holding a borrowed pointer across a return or into another
//    ScratchScope's lifetime is a bug; cache long-lived state in member
//    Matrices instead.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace evfl::runtime {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrow `n` floats of uninitialized scratch.  Requests round up to
  /// 16-float (64-byte) lanes, so consecutive borrows never share a
  /// cache line.
  float* borrow(std::size_t n);
  /// Borrow `n` floats and zero them.
  float* borrow_zeroed(std::size_t n);

  /// A rewind point: everything borrowed after mark() is released by
  /// rewind().  Marks nest like a stack — rewind in reverse mark order.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };
  Mark mark() const { return {block_, offset_}; }
  void rewind(const Mark& m) {
    block_ = m.block;
    offset_ = m.offset;
  }
  void reset() { rewind(Mark{}); }

  /// Total floats reserved across all blocks (monitoring only).
  std::size_t capacity_floats() const;
  /// Largest number of floats ever simultaneously borrowed.
  std::size_t high_water_floats() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    std::size_t cap = 0;
  };

  // Floats, not bytes; 64-byte lanes so vectorized kernels never straddle.
  static constexpr std::size_t kAlignFloats = 16;
  static constexpr std::size_t kMinBlockFloats = 1 << 16;  // 256 KiB

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block being bumped
  std::size_t offset_ = 0;  // floats used within blocks_[block_]
  std::size_t high_water_ = 0;
};

/// RAII checkpoint/rewind: borrows made through (or after constructing)
/// the scope are released when it unwinds — exception-safe.
class ScratchScope {
 public:
  explicit ScratchScope(Workspace& ws) : ws_(ws), mark_(ws.mark()) {}
  ~ScratchScope() { ws_.rewind(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  float* borrow(std::size_t n) { return ws_.borrow(n); }
  float* borrow_zeroed(std::size_t n) { return ws_.borrow_zeroed(n); }

 private:
  Workspace& ws_;
  Workspace::Mark mark_;
};

/// The calling thread's scratch lane, created on first use.  Thread-pool
/// workers each see their own lane, so kernels running inside a
/// parallel_for body can borrow without synchronization.
Workspace& thread_workspace();

}  // namespace evfl::runtime
