// RunContext — the execution-context handle threaded through every layer
// that can exploit parallelism (tensor kernels, trainer evaluation, the
// data pipeline, the federated drivers).
//
// Ownership rules: a RunContext is a non-owning view.  Whoever builds the
// ThreadPool / Metrics (a ScenarioRunner, a bench main, a test) keeps them
// alive for as long as any RunContext pointing at them is in use.  A
// default-constructed RunContext (or a nullptr where one is optional) means
// "serial, no metrics" and is always valid.
//
// Determinism contract: parallel code paths must produce bit-identical
// results to the serial path.  The two mechanisms are (a) pre-splitting
// RNGs in serial order via split_rngs() before dispatching work, and
// (b) keeping per-element floating-point accumulation order fixed (row
// partitions reduce in-place; batch partitions reduce in index order).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"
#include "tensor/rng.hpp"

namespace evfl::runtime {

/// Thread-safe counter sink for lightweight observability: counters and
/// accumulated timer seconds share one name → double map.
class Metrics {
 public:
  void add(const std::string& name, double amount = 1.0);
  /// Current value of a counter; 0 when never touched.
  double value(const std::string& name) const;
  std::unordered_map<std::string, double> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, double> values_;
};

/// RAII timer accumulating elapsed wall seconds into a Metrics counter on
/// destruction.  A nullptr sink makes it a no-op.
class ScopedTimer {
 public:
  ScopedTimer(Metrics* sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->add(name_, timer_.seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics* sink_;
  std::string name_;
  metrics::WallTimer timer_;
};

struct RunContext {
  ThreadPool* pool = nullptr;   // nullptr -> serial execution
  Metrics* metrics = nullptr;   // nullptr -> metrics calls are no-ops
  // Optional explicit scratch arena.  Leave null to use the per-thread
  // lane; set only for single-threaded callers (tests, benches) that want
  // an isolated arena they can inspect.
  Workspace* workspace = nullptr;
  // Optional trace sink: spans created through span() (and by the stages
  // that consult `trace` directly) record into it.  nullptr -> no tracing.
  obs::TraceWriter* trace = nullptr;

  std::size_t concurrency() const { return pool ? pool->concurrency() : 1; }
  bool parallel() const { return concurrency() > 1; }

  /// Scratch arena for kernel temporaries: the explicitly attached one if
  /// set, else the calling thread's lane.  Inside a parallel_for body this
  /// must be re-fetched (each worker has its own lane); never share the
  /// attached workspace across concurrent workers.
  Workspace& scratch() const {
    return workspace != nullptr ? *workspace : thread_workspace();
  }

  /// Pool-backed parallel_for when a pool with workers is attached;
  /// otherwise one serial body(0, total) call.
  void parallel_for(
      std::size_t total, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& body) const;

  /// Chunk size that yields ~4 chunks per thread over `total` items —
  /// enough slack to absorb uneven chunk cost without drowning in dispatch.
  std::size_t grain_for(std::size_t total) const;

  void count(const std::string& name, double amount = 1.0) const {
    if (metrics != nullptr) metrics->add(name, amount);
  }

  /// RAII trace span recording into the attached writer; inert when no
  /// writer is attached (or tracing is compiled out).
  obs::TraceSpan span(const char* name, const char* cat = "evfl") const {
    return obs::TraceSpan(trace, name, cat);
  }
};

/// Derive `n` child generators from `root` by sequential splitting — the
/// order is fixed before any work is dispatched, so parallel consumers get
/// the exact streams the serial loop would have drawn regardless of
/// execution schedule.
std::vector<tensor::Rng> split_rngs(tensor::Rng& root, std::size_t n);

}  // namespace evfl::runtime
