#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/error.hpp"

namespace evfl::runtime {

namespace {

/// Set while a pool worker runs a task so nested parallel_for calls fall
/// back to the serial path instead of queueing work no free thread can run.
thread_local bool tls_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  EVFL_REQUIRE(threads <= 1024,
               "ThreadPool: unreasonable thread count (wrapped negative?)");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // only reachable when stopping
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t total, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (total + grain - 1) / grain;

  if (workers_.empty() || chunks == 1 || tls_in_worker) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * grain;
      body(begin, std::min(total, begin + grain));
    }
    return;
  }

  struct ForState {
    std::size_t total = 0;
    std::size_t grain = 0;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  state->total = total;
  state->grain = grain;
  state->chunks = chunks;

  // Chunks are claimed with fetch_add so a straggling helper that wakes up
  // after everything finished claims nothing and never touches `body`
  // (whose lifetime ends when this call returns).
  const auto* body_ptr = &body;
  auto run_chunks = [state, body_ptr] {
    for (;;) {
      const std::size_t c = state->next.fetch_add(1);
      if (c >= state->chunks) return;
      const std::size_t begin = c * state->grain;
      const std::size_t end = std::min(state->total, begin + state->grain);
      try {
        (*body_ptr)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1) + 1 == state->chunks) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.emplace_back(run_chunks);
  }
  cv_.notify_all();

  run_chunks();  // the caller participates
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock,
                   [&] { return state->done.load() == state->chunks; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace evfl::runtime
