#include "sim/traffic_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace evfl::sim {

TrafficModel::TrafficModel(TrafficModelConfig cfg) : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.normal_pps > 0.0, "normal_pps must be positive");
  EVFL_REQUIRE(cfg_.attack_pps > cfg_.normal_pps,
               "attack_pps must exceed normal_pps");
}

double TrafficModel::nominal_multiplier() const {
  return cfg_.attack_pps / cfg_.normal_pps;
}

TrafficTrace TrafficModel::generate_trace(std::size_t slots,
                                          std::size_t attack_bursts,
                                          std::size_t burst_slots,
                                          tensor::Rng& rng) const {
  EVFL_REQUIRE(slots > 0, "trace needs slots > 0");
  TrafficTrace trace;
  trace.slot_ms = cfg_.slot_ms;
  trace.pps.resize(slots);
  trace.attack.assign(slots, 0);

  // Mark attack windows (uniform placement; overlaps allowed but merged by
  // the label vector, mirroring how real flooding bursts can coalesce).
  for (std::size_t b = 0; b < attack_bursts; ++b) {
    if (burst_slots == 0 || burst_slots > slots) break;
    const std::size_t start = rng.index(slots - burst_slots + 1);
    std::fill(trace.attack.begin() + start,
              trace.attack.begin() + start + burst_slots, std::uint8_t{1});
  }

  for (std::size_t s = 0; s < slots; ++s) {
    const bool attacked = trace.attack[s] != 0;
    const double mean = attacked ? cfg_.attack_pps : cfg_.normal_pps;
    const double jitter = attacked ? cfg_.attack_jitter : cfg_.normal_jitter;
    const double v = mean * (1.0 + jitter * rng.normal(0.0f, 1.0f));
    trace.pps[s] = static_cast<float>(std::max(v, 0.0));
  }
  return trace;
}

TrafficStats TrafficModel::analyze(const TrafficTrace& trace) {
  EVFL_REQUIRE(trace.pps.size() == trace.attack.size(),
               "trace pps/labels misaligned");
  TrafficStats st;
  st.total_slots = trace.size();
  double normal_sum = 0.0, attack_sum = 0.0;
  std::size_t normal_n = 0;
  for (std::size_t s = 0; s < trace.size(); ++s) {
    if (trace.attack[s] != 0) {
      attack_sum += trace.pps[s];
      ++st.attack_slots;
    } else {
      normal_sum += trace.pps[s];
      ++normal_n;
    }
  }
  if (normal_n > 0) st.mean_normal_pps = normal_sum / normal_n;
  if (st.attack_slots > 0) st.mean_attack_pps = attack_sum / st.attack_slots;
  if (st.mean_normal_pps > 0.0 && st.attack_slots > 0) {
    st.intensity_multiplier = st.mean_attack_pps / st.mean_normal_pps;
  }
  return st;
}

}  // namespace evfl::sim
