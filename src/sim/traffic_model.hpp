// Packet-level DDoS traffic simulator (substitute for the real-world DDoS
// trace, see DESIGN.md §1).  The paper derives its attack model from
// documented measurements: normal IP traffic ≈ 33,000 packets/s, attack
// traffic ≈ 350,500 packets/s (a 10.6x multiplier) observed on 100 ms
// slots.  This module reproduces that derivation: it synthesizes a
// slotted packet-rate trace with attack windows, and extracts the intensity
// statistics the charging-volume injector consumes — exercising the same
// trace -> multiplier -> injection path the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"

namespace evfl::sim {

struct TrafficModelConfig {
  double normal_pps = 33'000.0;    // documented normal packet rate
  double attack_pps = 350'500.0;   // documented attack packet rate
  double slot_ms = 100.0;          // measurement slot length
  double normal_jitter = 0.10;     // relative std of normal-rate noise
  double attack_jitter = 0.25;     // attack flows burst harder
};

/// A slotted packet-rate trace with ground-truth attack labels.
struct TrafficTrace {
  std::vector<float> pps;            // packets/s per slot
  std::vector<std::uint8_t> attack;  // 1 = slot under attack
  double slot_ms = 100.0;

  std::size_t size() const { return pps.size(); }
};

/// Statistics extracted from a trace (what the injector consumes).
struct TrafficStats {
  double mean_normal_pps = 0.0;
  double mean_attack_pps = 0.0;
  /// mean_attack / mean_normal — the paper's "10.6x intensity multiplier".
  double intensity_multiplier = 0.0;
  std::size_t attack_slots = 0;
  std::size_t total_slots = 0;
};

class TrafficModel {
 public:
  explicit TrafficModel(TrafficModelConfig cfg = {});

  const TrafficModelConfig& config() const { return cfg_; }

  /// Nominal multiplier straight from the configured rates (350500/33000).
  double nominal_multiplier() const;

  /// Synthesize a trace of `slots` measurement slots containing
  /// `attack_bursts` attack windows of `burst_slots` slots each, placed
  /// uniformly at random without overlap (best effort).
  TrafficTrace generate_trace(std::size_t slots, std::size_t attack_bursts,
                              std::size_t burst_slots, tensor::Rng& rng) const;

  /// Measure a trace the way the paper's source measurements were taken.
  static TrafficStats analyze(const TrafficTrace& trace);

 private:
  TrafficModelConfig cfg_;
};

}  // namespace evfl::sim
