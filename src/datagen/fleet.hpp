// Fleet-scale client population generator.
//
// The paper's federation has three zones; scaling experiments need
// thousands of plausible clients.  make_fleet draws a seeded parametric
// population around the three zone archetypes: each client gets one
// archetype's ZoneProfile with log-normal jitter on its shape parameters
// (clamped to sane ranges) and a jittered series length, so the fleet is
// heterogeneous in both behaviour and sample count — which is exactly what
// exercises sample-weighted hierarchical FedAvg.
//
// A ClientSpec is deliberately tiny (a profile plus seeds): the actual
// series, scaler, windows, model and trainer are materialized lazily by the
// fleet driver for sampled clients only and released after the round, so
// per-round memory is bounded by the sampling cohort, not the fleet size.
#pragma once

#include <cstdint>
#include <vector>

#include "data/timeseries.hpp"
#include "datagen/zone_profile.hpp"

namespace evfl::datagen {

struct FleetConfig {
  std::size_t clients = 1024;
  /// Base series length in hours; each client's length is jittered around
  /// it (min 48) so shard sample counts are heterogeneous.
  std::size_t hours = 336;
  std::size_t start_weekday = 3;
  std::uint64_t seed = 2024;
  /// Archetype mix (normalized internally): fractions of clients modeled on
  /// zones 102 / 105 / 108.
  double mix_102 = 0.45;
  double mix_105 = 0.35;
  double mix_108 = 0.20;
  /// Log-normal sigma applied multiplicatively to profile shape parameters.
  double jitter = 0.15;
  /// Relative half-range of the per-client series-length jitter.
  double hours_jitter = 0.25;
};

/// Everything needed to (re)materialize one client deterministically.
struct ClientSpec {
  int id = -1;
  int archetype = 0;       // 0 = zone 102, 1 = zone 105, 2 = zone 108
  ZoneProfile profile;     // jittered copy of the archetype profile
  std::size_t hours = 0;   // this client's series length
  std::size_t start_weekday = 3;
  std::uint64_t series_seed = 0;  // drives generate_zone's noise stream
};

/// Deterministic population: the same config always yields the same specs
/// (per-client sub-seeds are splitmix-derived from cfg.seed and the id, so
/// the population is also stable under reordering or subsetting).
std::vector<ClientSpec> make_fleet(const FleetConfig& cfg);

/// Materialize one client's demand series from its spec.  Pure: depends on
/// the spec alone, so a client sampled in rounds 3 and 7 trains on the same
/// data both times even though its state was released in between.
data::TimeSeries materialize_series(const ClientSpec& spec);

}  // namespace evfl::datagen
