// Synthetic Shenzhen-like EV charging demand generator (dataset substitute —
// see DESIGN.md §1).  Produces hourly region-level charging-volume series
// structurally equivalent to the paper's Sept 2022 – Feb 2023 study window.
#pragma once

#include <vector>

#include "data/timeseries.hpp"
#include "datagen/zone_profile.hpp"
#include "tensor/rng.hpp"

namespace evfl::datagen {

struct GeneratorConfig {
  std::size_t hours = 4344;     // the paper's per-zone timestamp count
  std::size_t start_weekday = 3;  // 2022-09-01 was a Thursday (Mon = 0)
  std::uint64_t seed = 2022;
};

/// Deterministic expected demand (no noise/spikes) for one hour — exposed
/// separately so tests can verify seasonality independent of noise.
float expected_demand(const ZoneProfile& profile, std::size_t hour_index,
                      std::size_t start_weekday, std::size_t total_hours);

/// Generate one zone's series: expectation + AR(1) noise + natural spikes,
/// floored at zero.  Labels are initialized clean (all zero).
data::TimeSeries generate_zone(const ZoneProfile& profile,
                               const GeneratorConfig& cfg,
                               tensor::Rng& rng);

/// Generate the paper's three clients (zones 102, 105, 108) with independent
/// noise streams derived from cfg.seed.
std::vector<data::TimeSeries> generate_clients(const GeneratorConfig& cfg);

}  // namespace evfl::datagen
