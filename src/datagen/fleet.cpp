#include "datagen/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "datagen/shenzhen.hpp"
#include "tensor/rng.hpp"

namespace evfl::datagen {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Multiplicative log-normal jitter with a generic sanity clamp: a drawn
/// factor exp(sigma * z) stays within [1/4x, 4x] of the archetype value.
float jittered(tensor::Rng& rng, double sigma, float value) {
  const double factor =
      std::clamp(std::exp(sigma * static_cast<double>(rng.normal())), 0.25,
                 4.0);
  return static_cast<float>(static_cast<double>(value) * factor);
}

}  // namespace

std::vector<ClientSpec> make_fleet(const FleetConfig& cfg) {
  EVFL_REQUIRE(cfg.clients > 0, "make_fleet: need at least one client");
  EVFL_REQUIRE(cfg.hours >= 48, "make_fleet: base hours must be >= 48");
  const double mix_total = cfg.mix_102 + cfg.mix_105 + cfg.mix_108;
  EVFL_REQUIRE(mix_total > 0.0, "make_fleet: archetype mix sums to zero");
  EVFL_REQUIRE(cfg.jitter >= 0.0 && cfg.hours_jitter >= 0.0 &&
                   cfg.hours_jitter < 1.0,
               "make_fleet: jitter out of range");

  const ZoneProfile archetypes[3] = {zone_102(), zone_105(), zone_108()};
  const double cut_102 = cfg.mix_102 / mix_total;
  const double cut_105 = cut_102 + cfg.mix_105 / mix_total;

  std::vector<ClientSpec> fleet;
  fleet.reserve(cfg.clients);
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    // Per-client sub-seed from (fleet seed, id) alone: the spec for client i
    // never depends on how many other clients exist.
    const std::uint64_t sub_seed =
        splitmix64(cfg.seed ^ splitmix64(static_cast<std::uint64_t>(i)));
    tensor::Rng rng(sub_seed);

    ClientSpec spec;
    spec.id = static_cast<int>(i);
    const double pick = static_cast<double>(rng.uniform(0.0f, 1.0f));
    spec.archetype = pick < cut_102 ? 0 : (pick < cut_105 ? 1 : 2);
    ZoneProfile p = archetypes[spec.archetype];

    const double s = cfg.jitter;
    p.base_load = jittered(rng, s, p.base_load);
    p.morning_peak_amp = jittered(rng, s, p.morning_peak_amp);
    p.evening_peak_amp = jittered(rng, s, p.evening_peak_amp);
    p.overnight_dip = jittered(rng, s, p.overnight_dip);
    p.weekly_wave_amp = jittered(rng, s, p.weekly_wave_amp);
    p.seasonal_drift_amp = jittered(rng, s, p.seasonal_drift_amp);
    p.noise_std = jittered(rng, s, p.noise_std);
    p.spike_scale = jittered(rng, s, p.spike_scale);
    // Parameters with hard semantic ranges get their own clamps.
    p.weekend_factor =
        std::clamp(jittered(rng, s, p.weekend_factor), 0.5f, 1.2f);
    p.ar_coeff = std::clamp(jittered(rng, s, p.ar_coeff), 0.0f, 0.95f);
    p.spike_prob = std::clamp(jittered(rng, s, p.spike_prob), 0.0f, 0.05f);
    p.spike_persistence =
        std::clamp(jittered(rng, s, p.spike_persistence), 0.0f, 0.9f);
    p.zone_id += "-c" + std::to_string(i);
    spec.profile = p;

    // Heterogeneous sample counts: hours in [base*(1-j), base*(1+j)].
    const double span = cfg.hours_jitter * static_cast<double>(cfg.hours);
    const double jittered_hours =
        static_cast<double>(cfg.hours) +
        static_cast<double>(rng.uniform(-1.0f, 1.0f)) * span;
    spec.hours = std::max<std::size_t>(
        48, static_cast<std::size_t>(std::llround(jittered_hours)));
    spec.start_weekday = cfg.start_weekday;
    spec.series_seed = splitmix64(sub_seed ^ 0xA5A5A5A55A5A5A5Aull);
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

data::TimeSeries materialize_series(const ClientSpec& spec) {
  GeneratorConfig gen;
  gen.hours = spec.hours;
  gen.start_weekday = spec.start_weekday;
  gen.seed = spec.series_seed;
  tensor::Rng rng(spec.series_seed);
  return generate_zone(spec.profile, gen, rng);
}

}  // namespace evfl::datagen
