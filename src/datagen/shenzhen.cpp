#include "datagen/shenzhen.hpp"

#include <algorithm>
#include <cmath>

namespace evfl::datagen {

namespace {
constexpr float kTwoPi = 6.2831853f;

/// Periodic Gaussian bump centred on `peak_hour` with circular distance on
/// the 24 h clock.
float daily_bump(float hour_of_day, float peak_hour, float width, float amp) {
  float d = std::abs(hour_of_day - peak_hour);
  d = std::min(d, 24.0f - d);
  return amp * std::exp(-(d * d) / (2.0f * width * width));
}
}  // namespace

float expected_demand(const ZoneProfile& p, std::size_t hour_index,
                      std::size_t start_weekday, std::size_t total_hours) {
  const float hour_of_day = static_cast<float>(hour_index % 24);
  const std::size_t day = hour_index / 24;
  const std::size_t weekday = (start_weekday + day) % 7;
  const bool weekend = weekday >= 5;

  float v = p.base_load;
  v += p.growth_rate * static_cast<float>(hour_index) / 1000.0f;
  v += daily_bump(hour_of_day, p.morning_peak_hour, p.morning_peak_width,
                  p.morning_peak_amp);
  v += daily_bump(hour_of_day, p.evening_peak_hour, p.evening_peak_width,
                  p.evening_peak_amp);
  v -= daily_bump(hour_of_day, 3.5f, 2.5f, p.overnight_dip);

  // Smooth within-week wave (hour-of-week phase).
  const float how = static_cast<float>(((start_weekday * 24) + hour_index) %
                                       (7 * 24));
  v += p.weekly_wave_amp * std::sin(kTwoPi * how / (7.0f * 24.0f));

  if (weekend) v *= p.weekend_factor;

  // One slow seasonal cycle across the whole study window (autumn → winter).
  if (total_hours > 0) {
    const float phase =
        static_cast<float>(hour_index) / static_cast<float>(total_hours);
    v += p.seasonal_drift_amp * std::sin(kTwoPi * 0.5f * phase);
  }
  return std::max(v, 0.0f);
}

data::TimeSeries generate_zone(const ZoneProfile& p,
                               const GeneratorConfig& cfg,
                               tensor::Rng& rng) {
  EVFL_REQUIRE(cfg.hours > 0, "generator needs hours > 0");
  data::TimeSeries series;
  series.name = "zone-" + p.zone_id;
  series.values.reserve(cfg.hours);

  float noise = 0.0f;        // AR(1) state
  float spike_level = 0.0f;  // ongoing natural spike episode
  for (std::size_t h = 0; h < cfg.hours; ++h) {
    const float mean = expected_demand(p, h, cfg.start_weekday, cfg.hours);
    noise = p.ar_coeff * noise + rng.normal(0.0f, p.noise_std);

    if (spike_level > 0.0f) {
      // Episode continues with probability spike_persistence, decaying.
      spike_level = rng.bernoulli(p.spike_persistence)
                        ? spike_level * rng.uniform(0.55f, 0.85f)
                        : 0.0f;
      if (spike_level < 1.0f) spike_level = 0.0f;
    }
    if (rng.bernoulli(p.spike_prob)) {
      // New natural demand spike: exponential-ish magnitude.
      spike_level =
          p.spike_scale * (0.5f + rng.log_uniform(0.5f, 2.5f) / 2.5f);
    }

    const float v = mean + noise + spike_level;
    series.values.push_back(std::max(v, 0.0f));
  }
  series.init_clean_labels();
  return series;
}

std::vector<data::TimeSeries> generate_clients(const GeneratorConfig& cfg) {
  tensor::Rng root(cfg.seed);
  std::vector<data::TimeSeries> out;
  for (const ZoneProfile& p : {zone_102(), zone_105(), zone_108()}) {
    tensor::Rng child = root.split();
    out.push_back(generate_zone(p, cfg, child));
  }
  return out;
}

}  // namespace evfl::datagen
