#include "datagen/zone_profile.hpp"

#include "common/error.hpp"

namespace evfl::datagen {

// The three presets are deliberately *structurally* heterogeneous — not just
// rescaled copies of one another.  Per-client MinMax scaling normalizes
// level and amplitude away, so the heterogeneity that drives the paper's
// centralized-compromise effect must live in the temporal shape itself:
// different peak hours, different weekday/weekend regimes, different noise
// persistence.  Zone 102 is a commuter district (morning + evening peaks),
// zone 105 a business district (single morning-to-midday peak, weekday
// heavy), and zone 108 a leisure/night-charging district (late-night peak,
// weekend heavy, spiky).

ZoneProfile zone_102() {
  ZoneProfile p;
  p.zone_id = "102";
  p.base_load = 52.0f;
  p.growth_rate = 1.2f;
  p.morning_peak_amp = 20.0f;
  p.morning_peak_hour = 8.5f;
  p.morning_peak_width = 2.0f;
  p.evening_peak_amp = 30.0f;
  p.evening_peak_hour = 19.0f;
  p.evening_peak_width = 2.8f;
  p.overnight_dip = 18.0f;
  p.weekend_factor = 0.85f;
  p.weekly_wave_amp = 3.0f;
  p.noise_std = 3.6f;
  p.ar_coeff = 0.55f;
  p.spike_prob = 0.003f;
  p.spike_scale = 22.0f;
  p.spike_persistence = 0.10f;  // isolated one-hour spikes
  return p;
}

ZoneProfile zone_105() {
  ZoneProfile p;
  p.zone_id = "105";
  p.base_load = 44.0f;
  p.growth_rate = 0.8f;
  // Single broad business-hours peak: no evening commute bump at all.
  p.morning_peak_amp = 34.0f;
  p.morning_peak_hour = 11.0f;
  p.morning_peak_width = 3.5f;
  p.evening_peak_amp = 0.0f;
  p.evening_peak_hour = 18.0f;
  p.overnight_dip = 14.0f;
  p.weekend_factor = 0.55f;  // business district: weekends nearly idle
  p.weekly_wave_amp = 4.0f;
  p.noise_std = 3.2f;
  p.ar_coeff = 0.4f;
  p.spike_prob = 0.002f;
  p.spike_scale = 18.0f;
  return p;
}

ZoneProfile zone_108() {
  ZoneProfile p;
  p.zone_id = "108";
  p.base_load = 47.0f;
  p.growth_rate = 1.0f;
  // Leisure district + overnight fleet charging: activity peaks late night,
  // almost the inverse of zone 102's commuter shape.
  p.morning_peak_amp = 8.0f;
  p.morning_peak_hour = 13.0f;
  p.morning_peak_width = 3.0f;
  p.evening_peak_amp = 28.0f;
  p.evening_peak_hour = 22.5f;
  p.evening_peak_width = 3.5f;
  p.overnight_dip = 6.0f;    // nights stay busy
  p.weekend_factor = 1.25f;  // weekends are the rush
  p.weekly_wave_amp = 2.0f;
  p.noise_std = 5.5f;
  p.ar_coeff = 0.65f;
  // The "hard" zone: frequent large *persistent* natural spike episodes
  // that mimic DDoS bursts, inflating the zone's detection threshold.
  p.spike_prob = 0.012f;
  p.spike_scale = 38.0f;
  p.spike_persistence = 0.75f;
  return p;
}

ZoneProfile zone_by_id(const std::string& zone_id) {
  if (zone_id == "102") return zone_102();
  if (zone_id == "105") return zone_105();
  if (zone_id == "108") return zone_108();
  throw Error("unknown zone id: " + zone_id);
}

}  // namespace evfl::datagen
