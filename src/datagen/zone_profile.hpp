// Parametric description of one traffic zone's charging-demand behaviour.
//
// The real study uses Shenzhen zones '102', '105' and '108' (4,344 hourly
// points each, Sept 2022 – Feb 2023).  We cannot ship that proprietary
// dataset, so these profiles encode the structural properties the paper's
// results rest on: strong daily double-peak seasonality (learnable with a
// 24 h lookback), weekly modulation, slow seasonal drift, autocorrelated
// noise, and — crucially for zone 108 — naturally occurring demand spikes
// that resemble attack signatures (the paper's explanation for that zone's
// low detection recall).
#pragma once

#include <string>

namespace evfl::datagen {

struct ZoneProfile {
  std::string zone_id;

  float base_load = 50.0f;         // mean charging volume (vehicles/hour)
  float growth_rate = 0.0f;        // linear adoption trend per 1000 hours

  // Daily double-peak shape (commute pattern), hours in local time.
  float morning_peak_amp = 20.0f;
  float morning_peak_hour = 9.0f;
  float morning_peak_width = 2.5f;
  float evening_peak_amp = 28.0f;
  float evening_peak_hour = 19.0f;
  float evening_peak_width = 3.0f;
  float overnight_dip = 18.0f;     // subtracted around 3-4 am

  float weekend_factor = 0.85f;    // multiplicative weekend demand change
  float weekly_wave_amp = 3.0f;    // smooth within-week modulation

  float seasonal_drift_amp = 6.0f; // slow (multi-month) sinusoidal drift

  float noise_std = 4.0f;          // innovation std of the AR(1) noise
  float ar_coeff = 0.6f;           // AR(1) persistence

  // Naturally occurring demand spikes (events, fleet arrivals).
  float spike_prob = 0.004f;       // per-hour probability of a spike
  float spike_scale = 25.0f;       // mean additional volume of a spike
  /// Probability a spike continues into the next hour (decaying).  High
  /// persistence produces multi-hour spike episodes that resemble DDoS
  /// bursts — the paper's explanation for zone 108's low detection recall.
  float spike_persistence = 0.15f;
};

/// Presets tuned so the three clients mirror the paper's qualitative
/// heterogeneity (zone 108 is the spiky / hard-to-detect one).
ZoneProfile zone_102();
ZoneProfile zone_105();
ZoneProfile zone_108();

/// Preset lookup by zone id string; throws on unknown zone.
ZoneProfile zone_by_id(const std::string& zone_id);

}  // namespace evfl::datagen
