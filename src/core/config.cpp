#include "core/config.hpp"

#include <sstream>

#include "common/error.hpp"

namespace evfl::core {

void apply_cli_overrides(ExperimentConfig& cfg, int argc, char** argv) {
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    try {
      if (key == "--seed") {
        cfg.seed = std::stoull(value);
        cfg.generator.seed = cfg.seed + 1;
      } else if (key == "--rounds") {
        cfg.federated_rounds = std::stoul(value);
      } else if (key == "--epochs") {
        cfg.epochs_per_round = std::stoul(value);
      } else if (key == "--hours") {
        cfg.generator.hours = std::stoul(value);
      } else if (key == "--lstm-units") {
        cfg.forecaster.lstm_units = std::stoul(value);
      } else if (key == "--seq-len") {
        cfg.forecaster.sequence_length = std::stoul(value);
        cfg.filter.autoencoder.window = cfg.forecaster.sequence_length;
      } else if (key == "--bursts") {
        cfg.ddos.bursts = std::stoul(value);
      } else if (key == "--threshold-pct") {
        cfg.filter.threshold.kind = anomaly::ThresholdKind::kPercentile;
        cfg.filter.threshold.param = std::stod(value);
      } else if (key == "--gap-tolerance") {
        cfg.filter.gap_tolerance = std::stoul(value);
      } else if (key == "--train-fraction") {
        cfg.train_fraction = std::stod(value);
      } else if (key == "--threaded") {
        cfg.threaded = std::stoi(value) != 0;
      } else if (key == "--ae-epochs") {
        cfg.filter.autoencoder.max_epochs = std::stoul(value);
      } else if (key == "--damping") {
        cfg.ddos.damping = std::stof(value);
      } else if (key == "--threads") {
        cfg.threads = std::stoul(value);
        // stoul wraps "-1" to SIZE_MAX; reject nonsense before it sizes a
        // worker pool.
        if (value.find('-') != std::string::npos || cfg.threads > 1024) {
          throw Error("bad value for --threads: '" + value + "'");
        }
      } else if (key == "--cache-dir") {
        cfg.cache_dir = value;
      } else {
        throw Error("unknown option: " + key);
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("bad value for " + key + ": '" + value + "'");
    }
  }
  if (argc >= 2 && (argc - 1) % 2 != 0) {
    throw Error("options must come in --key value pairs");
  }
}

std::string describe(const ExperimentConfig& cfg) {
  std::ostringstream os;
  os << "seq=" << cfg.forecaster.sequence_length
     << " lstm=" << cfg.forecaster.lstm_units
     << " rounds=" << cfg.federated_rounds
     << " epochs/round=" << cfg.epochs_per_round
     << " lr=" << cfg.forecaster.learning_rate
     << " batch=" << cfg.forecaster.batch_size
     << " hours=" << cfg.generator.hours
     << " bursts=" << cfg.ddos.bursts
     << " threshold=" << anomaly::to_string(cfg.filter.threshold.kind) << "("
     << cfg.filter.threshold.param << ")"
     << " seed=" << cfg.seed << " threads=" << cfg.threads;
  return os.str();
}

}  // namespace evfl::core
