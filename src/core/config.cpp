#include "core/config.hpp"

#include <sstream>

#include "common/error.hpp"

namespace evfl::core {

namespace {

/// Strict non-negative integer parse: the whole token must be numeric.
/// std::stoul alone silently accepts trailing garbage ("--threads 8x" ->
/// 8) and wraps negatives; every failure mode becomes an evfl::Error here
/// so callers never leak std::invalid_argument to the user.
std::uint64_t parse_unsigned(const std::string& key, const std::string& value) {
  std::uint64_t parsed = 0;
  std::size_t consumed = 0;
  try {
    parsed = std::stoull(value, &consumed);
  } catch (const std::exception&) {
    throw Error("bad value for " + key + ": '" + value +
                "' (expected a non-negative integer)");
  }
  if (consumed != value.size() || value.find('-') != std::string::npos) {
    throw Error("bad value for " + key + ": '" + value +
                "' (expected a non-negative integer)");
  }
  return parsed;
}

/// Strict floating-point parse with full-token consumption ("0.9.1" and
/// "1.5abc" are errors, not prefix parses).
double parse_double(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  std::size_t consumed = 0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    throw Error("bad value for " + key + ": '" + value +
                "' (expected a number)");
  }
  if (consumed != value.size()) {
    throw Error("bad value for " + key + ": '" + value +
                "' (expected a number)");
  }
  return parsed;
}

}  // namespace

void apply_cli_overrides(ExperimentConfig& cfg, int argc, char** argv) {
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--seed") {
      cfg.seed = parse_unsigned(key, value);
      cfg.generator.seed = cfg.seed + 1;
    } else if (key == "--rounds") {
      cfg.federated_rounds = parse_unsigned(key, value);
    } else if (key == "--epochs") {
      cfg.epochs_per_round = parse_unsigned(key, value);
    } else if (key == "--hours") {
      cfg.generator.hours = parse_unsigned(key, value);
    } else if (key == "--lstm-units") {
      cfg.forecaster.lstm_units = parse_unsigned(key, value);
    } else if (key == "--seq-len") {
      cfg.forecaster.sequence_length = parse_unsigned(key, value);
      cfg.filter.autoencoder.window = cfg.forecaster.sequence_length;
    } else if (key == "--bursts") {
      cfg.ddos.bursts = parse_unsigned(key, value);
    } else if (key == "--threshold-pct") {
      cfg.filter.threshold.kind = anomaly::ThresholdKind::kPercentile;
      cfg.filter.threshold.param = parse_double(key, value);
    } else if (key == "--gap-tolerance") {
      cfg.filter.gap_tolerance = parse_unsigned(key, value);
    } else if (key == "--train-fraction") {
      cfg.train_fraction = parse_double(key, value);
    } else if (key == "--threaded") {
      cfg.threaded = parse_unsigned(key, value) != 0;
    } else if (key == "--ae-epochs") {
      cfg.filter.autoencoder.max_epochs = parse_unsigned(key, value);
    } else if (key == "--damping") {
      cfg.ddos.damping = static_cast<float>(parse_double(key, value));
    } else if (key == "--threads") {
      cfg.threads = parse_unsigned(key, value);
      // Cap before it sizes a worker pool.
      if (cfg.threads > 1024) {
        throw Error("bad value for --threads: '" + value + "' (max 1024)");
      }
    } else if (key == "--codec") {
      cfg.codec.kind = fl::parse_codec_kind(value);
    } else if (key == "--topk-frac") {
      cfg.codec.topk_frac = parse_double(key, value);
      if (!(cfg.codec.topk_frac > 0.0) || cfg.codec.topk_frac > 1.0) {
        throw Error("bad value for --topk-frac: '" + value +
                    "' (expected a fraction in (0, 1])");
      }
    } else if (key == "--quant-bits") {
      const std::uint64_t bits = parse_unsigned(key, value);
      if (bits != 4 && bits != 8) {
        throw Error("bad value for --quant-bits: '" + value +
                    "' (expected 4 or 8)");
      }
      cfg.codec.quant_bits = static_cast<int>(bits);
    } else if (key == "--clients") {
      const std::uint64_t clients = parse_unsigned(key, value);
      if (clients > 1'000'000) {
        throw Error("bad value for --clients: '" + value + "' (max 1000000)");
      }
      cfg.fleet_clients = clients;
    } else if (key == "--edges") {
      const std::uint64_t edges = parse_unsigned(key, value);
      if (edges < 1 || edges > 4096) {
        throw Error("bad value for --edges: '" + value +
                    "' (expected 1..4096)");
      }
      cfg.fleet_edges = edges;
    } else if (key == "--sample-frac") {
      const double frac = parse_double(key, value);
      if (!(frac > 0.0) || frac > 1.0) {
        throw Error("bad value for --sample-frac: '" + value +
                    "' (expected a fraction in (0, 1])");
      }
      cfg.sample_frac = frac;
    } else if (key == "--serve-batch") {
      const std::uint64_t batch = parse_unsigned(key, value);
      if (batch < 1 || batch > 4096) {
        throw Error("bad value for --serve-batch: '" + value +
                    "' (expected 1..4096)");
      }
      cfg.serve_batch = batch;
    } else if (key == "--serve-quant-bits") {
      const std::uint64_t bits = parse_unsigned(key, value);
      if (bits != 0 && bits != 8) {
        throw Error("bad value for --serve-quant-bits: '" + value +
                    "' (expected 0 for fp32 or 8 for int8)");
      }
      cfg.serve_quant_bits = static_cast<int>(bits);
    } else if (key == "--stream") {
      cfg.stream = parse_unsigned(key, value) != 0;
    } else if (key == "--stream-queue-max") {
      const std::uint64_t n = parse_unsigned(key, value);
      if (n < 1 || n > 1'048'576) {
        throw Error("bad value for --stream-queue-max: '" + value +
                    "' (expected 1..1048576)");
      }
      cfg.stream_queue_max = n;
    } else if (key == "--stream-flush") {
      const std::uint64_t n = parse_unsigned(key, value);
      if (n < 1) {
        throw Error("bad value for --stream-flush: '" + value +
                    "' (expected >= 1)");
      }
      cfg.stream_flush = n;
    } else if (key == "--stream-shards") {
      const std::uint64_t n = parse_unsigned(key, value);
      if (n < 1 || n > 256) {
        throw Error("bad value for --stream-shards: '" + value +
                    "' (expected 1..256)");
      }
      cfg.stream_shards = n;
    } else if (key == "--stream-drift-z") {
      const double z = parse_double(key, value);
      if (!(z >= 0.0)) {
        throw Error("bad value for --stream-drift-z: '" + value +
                    "' (expected >= 0; 0 disables the drift probe)");
      }
      cfg.stream_drift_z = z;
    } else if (key == "--agg-rule") {
      cfg.fedavg.rule = fl::parse_aggregation_rule(value);
    } else if (key == "--attack-kind") {
      cfg.attack.kind = fl::parse_attack_kind(value);
    } else if (key == "--attack-frac") {
      const double frac = parse_double(key, value);
      if (frac < 0.0 || frac > 1.0) {
        throw Error("bad value for --attack-frac: '" + value +
                    "' (expected a fraction in [0, 1])");
      }
      cfg.attack.fraction = frac;
    } else if (key == "--cache-dir") {
      cfg.cache_dir = value;
    } else if (key == "--trace-out") {
      cfg.trace_out = value;
    } else if (key == "--metrics-json") {
      cfg.metrics_json = value;
    } else {
      throw Error("unknown option: " + key);
    }
  }
  if (argc >= 2 && (argc - 1) % 2 != 0) {
    throw Error("options must come in --key value pairs");
  }
}

std::string describe(const ExperimentConfig& cfg) {
  std::ostringstream os;
  os << "seq=" << cfg.forecaster.sequence_length
     << " lstm=" << cfg.forecaster.lstm_units
     << " rounds=" << cfg.federated_rounds
     << " epochs/round=" << cfg.epochs_per_round
     << " lr=" << cfg.forecaster.learning_rate
     << " batch=" << cfg.forecaster.batch_size
     << " hours=" << cfg.generator.hours
     << " bursts=" << cfg.ddos.bursts
     << " threshold=" << anomaly::to_string(cfg.filter.threshold.kind) << "("
     << cfg.filter.threshold.param << ")"
     << " seed=" << cfg.seed << " threads=" << cfg.threads
     << " codec=" << fl::to_string(cfg.codec.kind)
     << " agg-rule=" << fl::to_string(cfg.fedavg.rule);
  if (cfg.attack.kind != fl::AttackKind::kNone) {
    os << " attack=" << fl::to_string(cfg.attack.kind)
       << " attack-frac=" << cfg.attack.fraction;
  }
  if (cfg.fleet_clients > 0) {
    os << " clients=" << cfg.fleet_clients << " edges=" << cfg.fleet_edges
       << " sample-frac=" << cfg.sample_frac;
  }
  if (cfg.stream) {
    os << " stream=1 stream-queue-max=" << cfg.stream_queue_max
       << " stream-flush=" << cfg.stream_flush
       << " stream-shards=" << cfg.stream_shards
       << " stream-drift-z=" << cfg.stream_drift_z;
  }
  return os.str();
}

}  // namespace evfl::core
