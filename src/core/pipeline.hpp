// The end-to-end data pipeline of Fig. 1(b): generate -> inject attacks ->
// detect & mitigate -> scale -> window.  Produces, per client, the three
// data scenarios of §II-B (Clean / Attacked / Filtered) and the supervised
// datasets the forecasting architectures train on.
#pragma once

#include <string>
#include <vector>

#include "anomaly/filter.hpp"
#include "core/config.hpp"
#include "data/scaler.hpp"
#include "data/window.hpp"
#include "metrics/classification.hpp"
#include "runtime/run_context.hpp"
#include "stream/pipeline.hpp"
#include "stream/sharded.hpp"

namespace evfl::core {

enum class DataScenario { kClean, kAttacked, kFiltered };

std::string to_string(DataScenario s);

/// Everything the pipeline derives for one client (traffic zone).
struct ClientData {
  std::string zone;                       // "102" / "105" / "108"
  data::TimeSeries clean;                 // generated ground truth
  data::TimeSeries attacked;              // DDoS-injected, labelled
  data::TimeSeries filtered;              // detected + interpolated
  anomaly::FilterResult filter_result;    // detection artefacts
  double filter_fit_seconds = 0.0;        // AE training time
  attack::InjectionSummary injection;
};

/// A scenario's supervised view of one client: scaler fitted on the train
/// region only (leak-free), windows over the full scaled series, split by
/// target index at the 80% boundary.
struct PreparedClient {
  std::string zone;
  data::MinMaxScaler scaler;
  data::SequenceDataset train;
  data::SequenceDataset test;
  std::vector<float> test_actual;         // test targets in original units
};

/// Run generation, attack injection and anomaly filtering for all clients.
/// The anomaly filter is fitted per client on its clean training region
/// (the paper trains the autoencoder "exclusively on normal data segments").
/// With a RunContext, clients are fitted concurrently; per-client RNGs are
/// pre-split in serial order so the output is bit-identical to the serial
/// path.
std::vector<ClientData> prepare_clients(const ExperimentConfig& cfg,
                                        const runtime::RunContext* ctx = nullptr);

/// Select a scenario's series for a client.
const data::TimeSeries& scenario_series(const ClientData& client,
                                        DataScenario scenario);

/// Scale + window one client for one scenario.  When `shared_scaler` is
/// given it is used instead of a per-client fit — this reproduces the
/// paper's centralized baseline, which pools "combined sequences from all
/// clients ... without [per-client] preprocessing" (§II-C-1): one global
/// scaling for the pooled model versus locality-aware scaling for the
/// federated clients.
PreparedClient window_scenario(const ClientData& client, DataScenario scenario,
                               const ExperimentConfig& cfg,
                               const data::MinMaxScaler* shared_scaler = nullptr);

/// Fit one scaler over the concatenated training regions of all clients for
/// a scenario (the centralized baseline's global scaling).
data::MinMaxScaler fit_shared_scaler(const std::vector<ClientData>& clients,
                                     DataScenario scenario,
                                     const ExperimentConfig& cfg);

/// Detection quality of the fitted filter on the attacked series.
metrics::DetectionMetrics detection_metrics(const ClientData& client);

/// Map the experiment's --stream knobs onto a StreamPipeline configuration
/// for `zones` ingestion zones: the detection threshold rule is shared with
/// the batch filter, the queue bound comes from --stream-queue-max (shrink
/// watermark at a quarter of it), and --stream-flush sets the auto-flush
/// batch.  Used by the streaming drivers and bench_stream.
stream::StreamConfig make_stream_config(const ExperimentConfig& cfg,
                                        std::size_t zones);

/// Same mapping for the sharded runtime: shard count from --stream-shards,
/// per-zone semantics from make_stream_config (including --stream-drift-z),
/// per-shard ingest-ring bound mirroring --stream-queue-max (floor 8,
/// watermark at a quarter).  Used by bench_stream's shard sweep.
stream::ShardedConfig make_sharded_config(const ExperimentConfig& cfg,
                                          std::size_t zones);

}  // namespace evfl::core
