// Experiment configuration: one struct holding every knob of the paper's
// pipeline, defaulted to the published hyperparameters, plus a tiny CLI
// override parser shared by all bench binaries and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anomaly/filter.hpp"
#include "attack/ddos_injector.hpp"
#include "datagen/shenzhen.hpp"
#include "fl/adversary.hpp"
#include "fl/codec.hpp"
#include "fl/fedavg.hpp"
#include "forecast/model.hpp"

namespace evfl::core {

struct ExperimentConfig {
  datagen::GeneratorConfig generator;      // 4,344 hourly points, 3 zones
  attack::DdosConfig ddos;
  anomaly::FilterConfig filter;            // AE 50->25->25->50, 98th pct
  forecast::ForecasterConfig forecaster;   // LSTM 50, Dense 10 relu, Dense 1
  fl::FedAvgConfig fedavg;
  /// Adaptive adversary simulated inside the protocol (default: none).
  /// `fedavg.rule` picks the aggregation defense.
  fl::AdversaryConfig attack;
  /// Wire codec for the federated comms path (default kDense: lossless v1
  /// bytes, bit-identical results to the uncompressed path).
  fl::CodecConfig codec;

  std::size_t federated_rounds = 5;        // FEDERATED_ROUNDS
  std::size_t epochs_per_round = 10;       // EPOCHS_PER_ROUND
  double train_fraction = 0.8;             // 80/20 temporal split
  std::uint64_t seed = 42;
  bool threaded = false;                   // ThreadedDriver instead of Sync

  /// Fleet-scale topology: 0 keeps the paper's flat 3-zone federation;
  /// N > 0 runs a generated population of N clients behind `fleet_edges`
  /// edge aggregators (see fl/fleet.hpp).
  std::size_t fleet_clients = 0;
  std::size_t fleet_edges = 8;
  /// Per-round client sampling fraction in (0, 1]; 1.0 = every client
  /// participates every round.
  double sample_frac = 1.0;

  /// Serving-engine knobs (forecast::Engine, bench_serving): series scored
  /// per engine batch, and snapshot weight storage — 0 keeps fp32, 8
  /// freezes int8 block-quantized snapshots.
  std::size_t serve_batch = 32;
  int serve_quant_bits = 0;

  /// Streaming online detection (stream::StreamPipeline /
  /// stream::ShardedPipeline, bench_stream): `stream` turns the mode on for
  /// drivers that support it; queue-max/flush bound the event queue
  /// (drop-oldest past the max) and the pending-sample count that triggers
  /// an automatic flush.  `stream_shards` > 1 selects the sharded runtime
  /// (zones hash-partitioned across that many worker partitions);
  /// `stream_drift_z` > 0 arms per-zone drift-triggered threshold
  /// re-seeding at that z-bound (0 = probe off).
  bool stream = false;
  std::size_t stream_queue_max = 4096;
  std::size_t stream_flush = 256;
  std::size_t stream_shards = 1;
  double stream_drift_z = 0.0;

  /// Worker-thread budget for the runtime execution context: 1 = serial
  /// (the default — bit-reproducible and what the tests assume), 0 = size
  /// to hardware_concurrency(), N = exactly N threads.  Parallel paths are
  /// bit-identical to serial, so this only trades wall-clock time.
  std::size_t threads = 1;

  /// The paper's centralized baseline pools "combined sequences from all
  /// clients ... without [per-client] preprocessing" (§II-C-1): one global
  /// scaling.  Set false to give the centralized model per-client scaling
  /// instead (ablation).
  bool centralized_shared_scaler = true;

  /// When non-empty, prepare_clients() caches its output (generated,
  /// attacked and filtered series plus detection flags) in this directory,
  /// keyed by a config fingerprint.  Lets the per-table bench binaries
  /// share one expensive autoencoder-fitting pass.
  std::string cache_dir;

  /// When non-empty, the run writes Chrome-trace_event-compatible JSONL
  /// spans (rounds, per-client training, pipeline stages) to this file.
  std::string trace_out;
  /// When non-empty, the run writes its metrics JSON (per-round telemetry
  /// records, round-latency histograms with p50/p95/p99, runtime counters)
  /// to this file.
  std::string metrics_json;
};

/// Apply "--key value" overrides.  Known keys:
///   --seed N  --rounds N  --epochs N  --hours N  --lstm-units N
///   --seq-len N  --bursts N  --threshold-pct X  --gap-tolerance N
///   --train-fraction X  --threaded 0|1  --ae-epochs N  --damping X
///   --threads N (0 = hardware_concurrency)
///   --cache-dir PATH  --trace-out FILE  --metrics-json FILE
///   --codec dense|delta|topk|topk_q  --topk-frac X  --quant-bits 4|8
///   --clients N  --edges N  --sample-frac X
///   --serve-batch N (1..4096)  --serve-quant-bits 0|8 (0 = fp32 snapshots)
///   --stream 0|1  --stream-queue-max N (1..1048576)  --stream-flush N (>=1)
///   --stream-shards N (1..256)  --stream-drift-z X (>= 0, 0 = probe off)
///   --agg-rule mean|trimmed_mean|median|norm_bounded|multi_krum
///   --attack-kind none|sign_flip|alie|label_flip|backdoor
///   --attack-frac X (fraction of clients compromised, [0, 1])
/// Unknown keys throw evfl::Error (typos must not silently run the
/// default), and numeric values must consume the whole token: "8x" or
/// "1.5abc" is an error, never a silent prefix parse.
void apply_cli_overrides(ExperimentConfig& cfg, int argc, char** argv);

/// One-line render of the headline parameters (for bench banners).
std::string describe(const ExperimentConfig& cfg);

}  // namespace evfl::core
