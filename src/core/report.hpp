// Table rendering and the paper's published reference values, so every
// bench binary prints paper-vs-measured side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/scenario_runner.hpp"

namespace evfl::core {

/// Fixed-width text table writer.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 4);

// ---- Published values (for side-by-side comparison) -------------------------

/// Table I — complete performance comparison for Client 1.
struct PaperScenarioRow {
  const char* scenario;
  const char* architecture;
  double mae, rmse, r2, time_s;
};
extern const std::vector<PaperScenarioRow> kPaperTable1;

/// Table II — client-specific anomaly detection results.
struct PaperDetectionRow {
  const char* zone;
  double precision, recall, f1;
};
extern const std::vector<PaperDetectionRow> kPaperTable2;

/// Table III — client-specific comparison on filtered data.
struct PaperClientRow {
  const char* zone;
  const char* architecture;
  double mae, rmse, r2;
};
extern const std::vector<PaperClientRow> kPaperTable3;

/// In-text §III-C aggregates.
inline constexpr double kPaperOverallPrecision = 0.913;
inline constexpr double kPaperFalsePositiveRate = 0.0121;
inline constexpr double kPaperRecoveryPercent = 47.9;
inline constexpr double kPaperFederatedR2Gain = 15.2;   // % over centralized
inline constexpr double kPaperTrainingSpeedup = 18.1;   // % faster than central

/// Attack-induced loss recovered by filtering, in percent:
/// (r2_filtered - r2_attacked) / (r2_clean - r2_attacked) * 100.
double recovery_percent(double r2_clean, double r2_attacked,
                        double r2_filtered);

/// Render a ScenarioResult's per-client block into a table writer.
void add_scenario_rows(TableWriter& table, const ScenarioResult& result);

}  // namespace evfl::core
