#include "core/scenario_runner.hpp"

#include "forecast/centralized.hpp"
#include "metrics/timer.hpp"
#include "nn/trainer.hpp"

namespace evfl::core {

ScenarioRunner::ScenarioRunner(ExperimentConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.threads != 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(cfg_.threads);
  }
  if (!cfg_.trace_out.empty()) {
    trace_ = std::make_unique<obs::TraceWriter>(cfg_.trace_out);
  }
  ctx_.pool = pool_.get();
  ctx_.metrics = &metrics_;
  ctx_.trace = trace_.get();
}

ScenarioRunner::~ScenarioRunner() {
  try {
    write_metrics_json();
  } catch (...) {
    // Destructor must not throw; a failed telemetry flush is not worth
    // terminating an otherwise finished run.
  }
}

std::string ScenarioRunner::write_metrics_json() {
  if (cfg_.metrics_json.empty()) return {};
  const auto snapshot = metrics_.snapshot();  // unordered -> sorted for JSON
  rounds_.write_json_file(cfg_.metrics_json,
                          {snapshot.begin(), snapshot.end()});
  return cfg_.metrics_json;
}

const std::vector<ClientData>& ScenarioRunner::clients() {
  if (!clients_) {
    obs::TraceSpan span = ctx_.span("pipeline.prepare_clients", "pipeline");
    clients_ = prepare_clients(cfg_, &ctx_);
  }
  return *clients_;
}

std::vector<PreparedClient> ScenarioRunner::window_all(
    DataScenario scenario, const data::MinMaxScaler* shared_scaler) {
  const std::vector<ClientData>& data = clients();
  std::vector<PreparedClient> prepared(data.size());
  // window_scenario is deterministic and RNG-free, so concurrent windowing
  // is trivially bit-identical.
  ctx_.parallel_for(data.size(), 1,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t c = begin; c < end; ++c) {
                        prepared[c] =
                            window_scenario(data[c], scenario, cfg_,
                                            shared_scaler);
                      }
                    });
  return prepared;
}

ClientEvaluation ScenarioRunner::evaluate_model(nn::Sequential& model,
                                                const PreparedClient& prepared) {
  ClientEvaluation ev;
  ev.zone = prepared.zone;
  ev.actual = prepared.test_actual;

  const tensor::Tensor3 pred =
      nn::predict_batched(model, prepared.test.x, 256, &ctx_);
  ev.predicted.reserve(pred.batch());
  for (std::size_t i = 0; i < pred.batch(); ++i) {
    ev.predicted.push_back(prepared.scaler.inverse_one(pred(i, 0, 0)));
  }
  ev.regression = metrics::evaluate_regression(ev.actual, ev.predicted);
  return ev;
}

ScenarioResult ScenarioRunner::run_federated(DataScenario scenario) {
  std::vector<PreparedClient> prepared = window_all(scenario, nullptr);

  tensor::Rng root(cfg_.seed ^ 0xFEDAu);
  const forecast::ForecasterConfig model_cfg = cfg_.forecaster;
  const fl::ModelFactory factory = [&model_cfg](tensor::Rng& r) {
    return forecast::make_forecaster(model_cfg, r);
  };

  fl::ClientConfig client_cfg;
  client_cfg.epochs_per_round = cfg_.epochs_per_round;
  client_cfg.batch_size = cfg_.forecaster.batch_size;
  client_cfg.learning_rate = cfg_.forecaster.learning_rate;
  client_cfg.codec = cfg_.codec;

  // --attack-kind/--attack-frac: hash-seeded attacker membership over the
  // scenario's clients.  Data-poisoning kinds relabel the training tensors
  // here, before the Client takes ownership; model-poisoning kinds hook the
  // drivers below.
  const fl::AdversarySuite adversary(cfg_.attack);
  const fl::AdversarySuite* adv =
      cfg_.attack.kind == fl::AttackKind::kNone ? nullptr : &adversary;

  std::vector<std::unique_ptr<fl::Client>> fl_clients;
  for (std::size_t c = 0; c < prepared.size(); ++c) {
    if (adv != nullptr) {
      adv->poison_labels(static_cast<int>(c), 0, prepared[c].train.x,
                         prepared[c].train.y);
    }
    fl_clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(c), prepared[c].train.x, prepared[c].train.y, factory,
        client_cfg, root.split()));
  }

  // The server seeds the global model with its own initialization.
  tensor::Rng server_rng = root.split();
  nn::Sequential init_model = forecast::make_forecaster(model_cfg, server_rng);
  fl::Server server(init_model.get_weights(), cfg_.fedavg,
                    fl::ValidatorConfig{}, cfg_.codec);
  fl::InMemoryNetwork net;

  const metrics::WallTimer timer;
  obs::TraceSpan scenario_span = ctx_.span("scenario.federated", "scenario");
  scenario_span.annotate("rounds",
                         static_cast<std::uint64_t>(cfg_.federated_rounds));
  scenario_span.annotate("clients",
                         static_cast<std::uint64_t>(fl_clients.size()));
  std::unique_ptr<fl::Driver> driver;
  if (cfg_.threaded) {
    driver = std::make_unique<fl::ThreadedDriver>(server, fl_clients, net,
                                                  nullptr, &ctx_, &rounds_,
                                                  adv);
  } else {
    driver = std::make_unique<fl::SyncDriver>(server, fl_clients, net, &ctx_,
                                              nullptr, fl::RoundPolicy{},
                                              &rounds_, adv);
  }
  const fl::FederatedRunResult run = driver->run(cfg_.federated_rounds);
  scenario_span.end();

  ScenarioResult result;
  result.scenario = scenario;
  result.architecture = "Federated";
  result.wall_seconds = timer.seconds();
  result.train_seconds = run.simulated_parallel_seconds;
  result.rounds = run.rounds;
  result.network = run.network;
  result.global_weights = run.final_weights;

  for (std::size_t c = 0; c < prepared.size(); ++c) {
    result.per_client.push_back(
        evaluate_model(fl_clients[c]->model(), prepared[c]));
  }
  return result;
}

ScenarioResult ScenarioRunner::run_centralized(DataScenario scenario) {
  const std::vector<ClientData>& data = clients();

  // The centralized baseline pools all clients jointly with one global
  // scaling (see ExperimentConfig::centralized_shared_scaler).
  data::MinMaxScaler shared;
  const data::MinMaxScaler* shared_ptr = nullptr;
  if (cfg_.centralized_shared_scaler) {
    shared = fit_shared_scaler(data, scenario, cfg_);
    shared_ptr = &shared;
  }

  std::vector<PreparedClient> prepared = window_all(scenario, shared_ptr);
  std::vector<data::SequenceDataset> train_sets;
  train_sets.reserve(prepared.size());
  for (const PreparedClient& pc : prepared) train_sets.push_back(pc.train);

  forecast::CentralizedConfig central_cfg;
  central_cfg.model = cfg_.forecaster;
  central_cfg.epochs = cfg_.federated_rounds * cfg_.epochs_per_round;
  central_cfg.batch_size = cfg_.forecaster.batch_size;

  tensor::Rng rng(cfg_.seed ^ 0xCE17u);
  const metrics::WallTimer timer;
  obs::TraceSpan scenario_span = ctx_.span("scenario.centralized", "scenario");
  scenario_span.annotate("epochs",
                         static_cast<std::uint64_t>(central_cfg.epochs));
  forecast::CentralizedResult central =
      forecast::train_centralized(train_sets, central_cfg, rng);
  scenario_span.end();

  ScenarioResult result;
  result.scenario = scenario;
  result.architecture = "Centralized";
  result.wall_seconds = timer.seconds();
  result.train_seconds = central.train_seconds;

  for (const PreparedClient& pc : prepared) {
    result.per_client.push_back(evaluate_model(central.model, pc));
  }
  return result;
}

DetectionReport ScenarioRunner::detection_report() {
  DetectionReport report;
  metrics::ConfusionMatrix total;
  for (const ClientData& cd : clients()) {
    const metrics::DetectionMetrics m = detection_metrics(cd);
    total += m.cm;
    report.per_client.emplace_back(cd.zone, m);
  }
  report.aggregate = metrics::from_confusion(total);
  return report;
}

ClientEvaluation ScenarioRunner::evaluate_weights(
    const std::vector<float>& weights, std::size_t client_index,
    DataScenario scenario) {
  const std::vector<ClientData>& data = clients();
  EVFL_REQUIRE(client_index < data.size(), "client index out of range");
  const PreparedClient prepared =
      window_scenario(data[client_index], scenario, cfg_);

  tensor::Rng rng(cfg_.seed ^ 0xE7A1u);
  nn::Sequential model = forecast::make_forecaster(cfg_.forecaster, rng);
  model.set_weights(weights);
  return evaluate_model(model, prepared);
}

}  // namespace evfl::core
