// ScenarioRunner — drives the paper's four experimental scenarios (§III-A):
//   1. Federated LSTM on Clean Data
//   2. Federated LSTM on Attacked Data
//   3. Federated LSTM on Filtered Data
//   4. Centralized LSTM on Filtered Data
// over the shared pipeline output, and reports regression metrics per
// client in original units plus detection metrics for Table II.
//
// Federated per-client metrics evaluate each client's local model after its
// final round of local training (the personalized model the paper's "local
// specialization" analysis describes); the aggregated global weights are
// also exposed for the FedAvg ablation.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "core/pipeline.hpp"
#include "fl/driver.hpp"
#include "metrics/regression.hpp"
#include "obs/round_telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"

namespace evfl::core {

struct ClientEvaluation {
  std::string zone;
  metrics::RegressionMetrics regression;
  std::vector<float> actual;     // original units
  std::vector<float> predicted;  // original units
};

struct ScenarioResult {
  DataScenario scenario = DataScenario::kClean;
  std::string architecture;      // "Federated" / "Centralized"
  std::vector<ClientEvaluation> per_client;

  /// Training time in the deployment's natural execution model:
  /// federated = simulated-parallel seconds (slowest client per round),
  /// centralized = single-node wall seconds.
  double train_seconds = 0.0;
  double wall_seconds = 0.0;

  // Federated-only diagnostics (empty/zero for centralized).
  std::vector<fl::RoundMetrics> rounds;
  fl::NetworkStats network;
  std::vector<float> global_weights;
};

struct DetectionReport {
  std::vector<std::pair<std::string, metrics::DetectionMetrics>> per_client;
  metrics::DetectionMetrics aggregate;
};

class ScenarioRunner {
 public:
  /// Builds a thread pool sized from cfg.threads (1 = serial, 0 = hardware
  /// concurrency) that every stage below — pipeline prep, windowing,
  /// evaluation, the federated driver — partitions work onto.  All parallel
  /// paths are bit-identical to serial execution.
  ///
  /// When cfg.trace_out is set, a TraceWriter is opened there and every
  /// stage records spans; when cfg.metrics_json is set, the destructor (or
  /// an explicit write_metrics_json() call) writes the accumulated round
  /// telemetry + runtime counters there.
  explicit ScenarioRunner(ExperimentConfig cfg);
  ~ScenarioRunner();

  const ExperimentConfig& config() const { return cfg_; }

  /// The execution context shared by every stage this runner drives.
  const runtime::RunContext& context() const { return ctx_; }
  /// Counters/timers accumulated by the runtime-aware stages.
  const runtime::Metrics& runtime_metrics() const { return metrics_; }

  /// Per-round telemetry accumulated by every federated run this runner
  /// drove (all scenarios append to the same sink).
  const obs::RoundTelemetrySink& round_telemetry() const { return rounds_; }

  /// Write the metrics JSON to cfg.metrics_json now; returns the path, or
  /// an empty string when the knob is unset.  Also called by the
  /// destructor, so benches that exit normally always leave the file.
  std::string write_metrics_json();

  /// Pipeline output (generated lazily, cached — all scenarios share it).
  const std::vector<ClientData>& clients();

  ScenarioResult run_federated(DataScenario scenario);
  ScenarioResult run_centralized(DataScenario scenario);

  /// Table II + the aggregate precision / FPR quoted in §III-C.
  DetectionReport detection_report();

  /// Evaluate an arbitrary model (e.g. the aggregated global weights) on
  /// one client's test set for a scenario.
  ClientEvaluation evaluate_weights(const std::vector<float>& weights,
                                    std::size_t client_index,
                                    DataScenario scenario);

 private:
  ClientEvaluation evaluate_model(nn::Sequential& model,
                                  const PreparedClient& prepared);
  std::vector<PreparedClient> window_all(
      DataScenario scenario, const data::MinMaxScaler* shared_scaler);

  ExperimentConfig cfg_;
  std::unique_ptr<runtime::ThreadPool> pool_;  // null when cfg.threads == 1
  runtime::Metrics metrics_;
  std::unique_ptr<obs::TraceWriter> trace_;    // null when cfg.trace_out empty
  obs::RoundTelemetrySink rounds_;
  runtime::RunContext ctx_;
  std::optional<std::vector<ClientData>> clients_;
};

}  // namespace evfl::core
