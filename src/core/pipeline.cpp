#include "core/pipeline.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "attack/ddos_injector.hpp"
#include "data/csv.hpp"
#include "datagen/shenzhen.hpp"
#include "fl/serialize.hpp"
#include "metrics/timer.hpp"

namespace evfl::core {

namespace {

/// Everything that influences prepare_clients' output, rendered to a string
/// whose CRC keys the on-disk cache.
std::string pipeline_fingerprint(const ExperimentConfig& cfg) {
  std::ostringstream os;
  os << "v2|agg:" << data::to_string(cfg.filter.autoencoder.score_aggregation)
     << "|gen:" << cfg.generator.hours << "," << cfg.generator.start_weekday
     << "," << cfg.generator.seed << "|ddos:" << cfg.ddos.bursts << ","
     << cfg.ddos.min_burst_hours << "," << cfg.ddos.max_burst_hours << ","
     << cfg.ddos.min_multiplier << "," << cfg.ddos.damping << ","
     << cfg.ddos.within_burst_jitter << "," << cfg.ddos.traffic.normal_pps
     << "," << cfg.ddos.traffic.attack_pps
     << "|ae:" << cfg.filter.autoencoder.window << ","
     << cfg.filter.autoencoder.encoder_units << ","
     << cfg.filter.autoencoder.latent_units << ","
     << cfg.filter.autoencoder.dropout << ","
     << cfg.filter.autoencoder.learning_rate << ","
     << cfg.filter.autoencoder.max_epochs << ","
     << cfg.filter.autoencoder.batch_size << ","
     << cfg.filter.autoencoder.patience << ","
     << cfg.filter.autoencoder.val_fraction
     << "|thr:" << anomaly::to_string(cfg.filter.threshold.kind) << ","
     << cfg.filter.threshold.param << "|gap:" << cfg.filter.gap_tolerance
     << "|split:" << cfg.train_fraction << "|seed:" << cfg.seed;
  return os.str();
}

std::filesystem::path cache_path(const ExperimentConfig& cfg,
                                 const std::string& fingerprint) {
  const std::uint32_t crc = fl::crc32(
      reinterpret_cast<const std::uint8_t*>(fingerprint.data()),
      fingerprint.size());
  std::ostringstream name;
  name << "evfl_pipeline_" << std::hex << crc;
  return std::filesystem::path(cfg.cache_dir) / name.str();
}

bool load_cached_clients(const ExperimentConfig& cfg,
                         const std::string& fingerprint,
                         std::vector<ClientData>& out) {
  const std::filesystem::path dir = cache_path(cfg, fingerprint);
  std::ifstream meta(dir / "meta.txt");
  if (!meta) return false;
  std::string stored;
  if (!std::getline(meta, stored) || stored != fingerprint) return false;

  std::vector<ClientData> clients;
  std::string line;
  try {
    while (std::getline(meta, line)) {
      if (line.empty()) continue;
      std::istringstream is(line);
      ClientData cd;
      std::size_t points = 0, bursts = 0;
      double mean_mult = 0.0;
      float threshold = 0.0f;
      if (!(is >> cd.zone >> cd.filter_fit_seconds >> threshold >> points >>
            bursts >> mean_mult)) {
        return false;
      }
      cd.injection.kind = attack::AttackKind::kDdos;
      cd.injection.points_attacked = points;
      cd.injection.bursts = bursts;
      cd.injection.mean_multiplier = mean_mult;

      const std::string base = (dir / ("zone_" + cd.zone)).string();
      cd.clean = data::read_series_csv(base + "_clean.csv");
      cd.clean.name = "zone-" + cd.zone;
      cd.attacked = data::read_series_csv(base + "_attacked.csv");
      cd.attacked.name = cd.clean.name + "+ddos";
      cd.filtered = data::read_series_csv(base + "_filtered.csv");
      cd.filtered.name = cd.attacked.name + "+filtered";
      // scores/flags were stored as a labelled series: values = scores,
      // labels = detection flags.
      const data::TimeSeries sf = data::read_series_csv(base + "_scores.csv");
      cd.filter_result.scores = sf.values;
      cd.filter_result.flags = sf.labels;
      cd.filter_result.threshold = threshold;
      cd.filter_result.segments =
          anomaly::merge_segments(sf.labels, cfg.filter.gap_tolerance);
      cd.filter_result.filtered = cd.filtered;
      clients.push_back(std::move(cd));
    }
  } catch (const Error&) {
    return false;  // stale / corrupt cache: fall through to regeneration
  }
  if (clients.size() != 3) return false;
  out = std::move(clients);
  return true;
}

void store_cached_clients(const ExperimentConfig& cfg,
                          const std::string& fingerprint,
                          const std::vector<ClientData>& clients) {
  const std::filesystem::path dir = cache_path(cfg, fingerprint);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // cache is best-effort

  std::ofstream meta(dir / "meta.txt");
  if (!meta) return;
  meta << fingerprint << "\n";
  for (const ClientData& cd : clients) {
    meta << cd.zone << " " << cd.filter_fit_seconds << " "
         << cd.filter_result.threshold << " " << cd.injection.points_attacked
         << " " << cd.injection.bursts << " " << cd.injection.mean_multiplier
         << "\n";
    const std::string base = (dir / ("zone_" + cd.zone)).string();
    data::write_series_csv(cd.clean, base + "_clean.csv");
    data::write_series_csv(cd.attacked, base + "_attacked.csv");
    data::write_series_csv(cd.filtered, base + "_filtered.csv");
    data::TimeSeries sf;
    sf.values = cd.filter_result.scores;
    sf.labels = cd.filter_result.flags;
    data::write_series_csv(sf, base + "_scores.csv");
  }
}

}  // namespace

std::string to_string(DataScenario s) {
  switch (s) {
    case DataScenario::kClean: return "Clean Data";
    case DataScenario::kAttacked: return "Attacked Data";
    case DataScenario::kFiltered: return "Filtered Data";
  }
  return "?";
}

std::vector<ClientData> prepare_clients(const ExperimentConfig& cfg,
                                        const runtime::RunContext* ctx) {
  const std::string fingerprint = pipeline_fingerprint(cfg);
  if (!cfg.cache_dir.empty()) {
    std::vector<ClientData> cached;
    if (load_cached_clients(cfg, fingerprint, cached)) return cached;
  }

  runtime::ScopedTimer prep_timer(ctx != nullptr ? ctx->metrics : nullptr,
                                  "pipeline.prepare_clients_seconds");
  tensor::Rng root(cfg.seed);
  const std::vector<data::TimeSeries> clean_series =
      datagen::generate_clients(cfg.generator);
  const attack::DdosInjector injector(cfg.ddos);

  const std::size_t n = clean_series.size();
  const std::vector<std::string> zones = {"102", "105", "108"};

  // Pre-split per-client RNGs in the exact order the serial loop consumed
  // the root stream (attack split then filter split, per client), so the
  // concurrent path replays identical randomness regardless of schedule.
  std::vector<tensor::Rng> attack_rngs, filter_rngs;
  attack_rngs.reserve(n);
  filter_rngs.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    attack_rngs.push_back(root.split());
    filter_rngs.push_back(root.split());
  }

  std::vector<ClientData> clients(n);
  auto build_client = [&](std::size_t c) {
    ClientData cd;
    cd.zone = c < zones.size() ? zones[c] : std::to_string(c);
    cd.clean = clean_series[c];

    // Inject DDoS anomalies over the whole study window.
    cd.injection = injector.inject(cd.clean, cd.attacked, attack_rngs[c]);

    // Fit the anomaly filter on the clean training region only — the paper
    // trains the autoencoder exclusively on normal data segments.
    const data::TrainTestSplit clean_split =
        data::temporal_split(cd.clean, cfg.train_fraction);
    anomaly::EvChargingAnomalyFilter filter(cfg.filter, filter_rngs[c]);
    const metrics::WallTimer timer;
    filter.fit(clean_split.train, filter_rngs[c]);
    cd.filter_fit_seconds = timer.seconds();

    // Detect + mitigate across the full attacked series.
    cd.filter_result = filter.filter(cd.attacked);
    cd.filtered = cd.filter_result.filtered;

    clients[c] = std::move(cd);
  };

  if (ctx != nullptr && ctx->parallel() && n > 1) {
    ctx->count("pipeline.parallel_client_preps");
    ctx->parallel_for(n, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t c = begin; c < end; ++c) build_client(c);
    });
  } else {
    for (std::size_t c = 0; c < n; ++c) build_client(c);
  }

  if (!cfg.cache_dir.empty()) {
    store_cached_clients(cfg, fingerprint, clients);
  }
  return clients;
}

const data::TimeSeries& scenario_series(const ClientData& client,
                                        DataScenario scenario) {
  switch (scenario) {
    case DataScenario::kClean: return client.clean;
    case DataScenario::kAttacked: return client.attacked;
    case DataScenario::kFiltered: return client.filtered;
  }
  EVFL_ASSERT(false, "unknown scenario");
  return client.clean;
}

data::MinMaxScaler fit_shared_scaler(const std::vector<ClientData>& clients,
                                     DataScenario scenario,
                                     const ExperimentConfig& cfg) {
  std::vector<float> pooled;
  for (const ClientData& cd : clients) {
    const data::TimeSeries& series = scenario_series(cd, scenario);
    const std::size_t split_index = static_cast<std::size_t>(
        static_cast<double>(series.size()) * cfg.train_fraction);
    pooled.insert(pooled.end(), series.values.begin(),
                  series.values.begin() + split_index);
  }
  data::MinMaxScaler scaler;
  scaler.fit(pooled);
  return scaler;
}

PreparedClient window_scenario(const ClientData& client, DataScenario scenario,
                               const ExperimentConfig& cfg,
                               const data::MinMaxScaler* shared_scaler) {
  const data::TimeSeries& series = scenario_series(client, scenario);
  const std::size_t lookback = cfg.forecaster.sequence_length;
  EVFL_REQUIRE(series.size() > lookback + 2, "series too short to window");

  PreparedClient pc;
  pc.zone = client.zone;

  const std::size_t split_index = static_cast<std::size_t>(
      static_cast<double>(series.size()) * cfg.train_fraction);

  if (shared_scaler != nullptr) {
    pc.scaler = *shared_scaler;
  } else {
    // Leak-free per-client scaling: fit on the training region only.
    const std::vector<float> train_values(series.values.begin(),
                                          series.values.begin() + split_index);
    pc.scaler.fit(train_values);
  }
  const std::vector<float> scaled = pc.scaler.transform(series.values);

  // Window the full scaled series, then split samples by target position:
  // a sample belongs to the test set iff its prediction target falls in the
  // final 20% — test windows may look back across the boundary, exactly as
  // a deployed forecaster would.
  const data::SequenceDataset all = data::make_forecast_sequences(scaled, lookback);
  const std::size_t n = all.x.batch();
  std::size_t n_train = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (all.target_offset(i) < split_index) ++n_train;
  }
  EVFL_REQUIRE(n_train > 0 && n_train < n,
               "degenerate train/test split for zone " + client.zone);

  pc.train.lookback = lookback;
  pc.test.lookback = lookback;
  pc.train.x = all.x.batch_slice(0, n_train);
  pc.train.y = all.y.batch_slice(0, n_train);
  pc.test.x = all.x.batch_slice(n_train, n);
  pc.test.y = all.y.batch_slice(n_train, n);

  pc.test_actual.reserve(n - n_train);
  for (std::size_t i = n_train; i < n; ++i) {
    pc.test_actual.push_back(pc.scaler.inverse_one(all.y(i, 0, 0)));
  }
  return pc;
}

metrics::DetectionMetrics detection_metrics(const ClientData& client) {
  return metrics::evaluate_detection(client.attacked.labels,
                                     client.filter_result.flags);
}

stream::StreamConfig make_stream_config(const ExperimentConfig& cfg,
                                        std::size_t zones) {
  EVFL_REQUIRE(zones >= 1, "make_stream_config needs at least one zone");
  stream::StreamConfig sc;
  sc.max_zones = zones;
  sc.threshold = cfg.filter.threshold;
  sc.queue_max = cfg.stream_queue_max;
  // Shrink watermark at a quarter of the bound (>= 1): bursts borrow up to
  // the max, steady state keeps a small resident ring.
  sc.queue_shrink = std::max<std::size_t>(1, cfg.stream_queue_max / 4);
  sc.flush_batch = cfg.stream_flush;
  sc.drift_z = cfg.stream_drift_z;
  return sc;
}

stream::ShardedConfig make_sharded_config(const ExperimentConfig& cfg,
                                          std::size_t zones) {
  stream::ShardedConfig sc;
  sc.shards = cfg.stream_shards;
  sc.stream = make_stream_config(cfg, zones);
  // Ring bound mirrors the event-queue knob (both are "how much burst the
  // runtime absorbs before counted drops"), clamped to the MpscRing floor;
  // watermark at a quarter of it like the event queue.
  sc.ring_max = std::max<std::size_t>(8, cfg.stream_queue_max);
  sc.ring_shrink = std::max<std::size_t>(8, sc.ring_max / 4);
  return sc;
}

}  // namespace evfl::core
