#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace evfl::core {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EVFL_REQUIRE(!headers_.empty(), "table needs headers");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  EVFL_REQUIRE(cells.size() == headers_.size(),
               "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " | ";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

const std::vector<PaperScenarioRow> kPaperTable1 = {
    {"Clean Data", "Federated", 3.3859, 5.3162, 0.9075, 80.85},
    {"Attacked Data", "Federated", 4.4134, 6.2835, 0.8707, 80.33},
    {"Filtered Data", "Federated", 3.9801, 5.7921, 0.8883, 85.95},
    {"Filtered Data", "Centralized", 6.1644, 8.6040, 0.7536, 101.46},
};

const std::vector<PaperDetectionRow> kPaperTable2 = {
    {"102", 0.907, 0.584, 0.710},
    {"105", 0.955, 0.591, 0.730},
    {"108", 0.859, 0.354, 0.501},
};

const std::vector<PaperClientRow> kPaperTable3 = {
    {"102", "Federated", 3.9801, 5.7921, 0.8883},
    {"102", "Centralized", 6.8277, 8.4567, 0.7646},
    {"105", "Federated", 5.2215, 5.5876, 0.8350},
    {"105", "Centralized", 6.5100, 8.1582, 0.7463},
    {"108", "Federated", 5.0459, 6.2328, 0.7792},
    {"108", "Centralized", 5.1554, 9.1659, 0.6356},
};

double recovery_percent(double r2_clean, double r2_attacked,
                        double r2_filtered) {
  const double lost = r2_clean - r2_attacked;
  if (lost <= 0.0) return 0.0;
  return (r2_filtered - r2_attacked) / lost * 100.0;
}

void add_scenario_rows(TableWriter& table, const ScenarioResult& result) {
  for (const ClientEvaluation& ev : result.per_client) {
    table.add_row({to_string(result.scenario), result.architecture,
                   "zone " + ev.zone, fmt(ev.regression.mae),
                   fmt(ev.regression.rmse), fmt(ev.regression.r2),
                   fmt(result.train_seconds, 2)});
  }
}

}  // namespace evfl::core
