// Scriptable fault plans for the federated runtime.
//
// A FaultPlan is a declarative list of rules — "crash client 2 from round 3
// on", "corrupt client 1's updates with NaNs with probability 0.5" — that a
// FaultInjector evaluates deterministically per (client, round).  Plans are
// plain data: they can be built fluently in tests, swept by benches, and
// printed into reports.  Nothing in this layer touches the network or the
// model; it only answers "what goes wrong, where, when".
#pragma once

#include <cstdint>
#include <vector>

namespace evfl::faults {

/// Rule matches every client / every round unless narrowed.
inline constexpr int kAllClients = -1;
inline constexpr std::uint32_t kAllRounds = 0xFFFFFFFFu;

enum class FaultKind : std::uint8_t {
  kCrash = 0,        // client dies after receiving the broadcast, sends nothing
  kStraggler = 1,    // client delays its update past (possibly) the deadline
  kCorrupt = 2,      // client's update payload is damaged before sending
  kDuplicate = 3,    // the network delivers the client's update more than once
  kStaleReplay = 4,  // client re-sends its previous round's update
};

enum class CorruptionMode : std::uint8_t {
  kNaN = 0,          // poison a few weights with quiet NaNs
  kInf = 1,          // poison a few weights with +/- infinity
  kNormInflate = 2,  // scale the whole update by norm_factor (gradient blow-up)
  kSignFlip = 3,     // negate the update (classic Byzantine sign-flip attack)
};

struct FaultRule {
  FaultKind kind = FaultKind::kCrash;
  int client = kAllClients;             // exact id, or kAllClients
  std::uint32_t round_begin = 0;        // inclusive
  std::uint32_t round_end = kAllRounds; // inclusive
  double probability = 1.0;             // per-(client, round) Bernoulli
  CorruptionMode mode = CorruptionMode::kNaN;  // kCorrupt only
  double delay_ms = 0.0;                // kStraggler only
  double norm_factor = 1e4;             // kNormInflate multiplier
  int extra_copies = 1;                 // kDuplicate: additional deliveries

  bool matches(int client_id, std::uint32_t round) const {
    return (client == kAllClients || client == client_id) &&
           round >= round_begin && round <= round_end;
  }
};

class FaultPlan {
 public:
  FaultPlan& crash(int client, std::uint32_t from = 0,
                   std::uint32_t to = kAllRounds, double probability = 1.0);
  FaultPlan& straggle(int client, double delay_ms, std::uint32_t from = 0,
                      std::uint32_t to = kAllRounds, double probability = 1.0);
  FaultPlan& corrupt(int client, CorruptionMode mode, std::uint32_t from = 0,
                     std::uint32_t to = kAllRounds, double probability = 1.0);
  FaultPlan& duplicate(int client, int extra_copies = 1, std::uint32_t from = 0,
                       std::uint32_t to = kAllRounds, double probability = 1.0);
  FaultPlan& stale_replay(int client, std::uint32_t from = 0,
                          std::uint32_t to = kAllRounds,
                          double probability = 1.0);
  FaultPlan& add(FaultRule rule);

  const std::vector<FaultRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

 private:
  std::vector<FaultRule> rules_;
};

}  // namespace evfl::faults
