#include "faults/fault_injector.hpp"

#include <cmath>
#include <limits>

namespace evfl::faults {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stateless — the right shape
// for schedule-independent per-(rule, client, round) decisions.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, std::size_t rule_index,
                            int client, std::uint32_t round) {
  std::uint64_t h = mix64(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  h = mix64(h ^ static_cast<std::uint64_t>(rule_index));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(client)));
  h = mix64(h ^ static_cast<std::uint64_t>(round));
  return h;
}

double to_unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

bool FaultInjector::decide(std::size_t rule_index, const FaultRule& rule,
                           int client, std::uint32_t round) const {
  if (!rule.matches(client, round)) return false;
  if (rule.probability >= 1.0) return true;
  return to_unit_interval(decision_hash(seed_, rule_index, client, round)) <
         rule.probability;
}

bool FaultInjector::should_crash(int client, std::uint32_t round) const {
  const auto& rules = plan_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].kind != FaultKind::kCrash) continue;
    if (decide(i, rules[i], client, round)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.crashes;
      return true;
    }
  }
  return false;
}

double FaultInjector::straggler_delay_ms(int client,
                                         std::uint32_t round) const {
  double delay = 0.0;
  const auto& rules = plan_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].kind != FaultKind::kStraggler) continue;
    if (decide(i, rules[i], client, round)) delay += rules[i].delay_ms;
  }
  if (delay > 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.straggler_delays;
  }
  return delay;
}

bool FaultInjector::corrupt_update(fl::WeightUpdate& update) const {
  const auto& rules = plan_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (rule.kind != FaultKind::kCorrupt) continue;
    if (!decide(i, rule, update.client_id, update.round)) continue;

    std::vector<float>& w = update.weights;
    switch (rule.mode) {
      case CorruptionMode::kNaN: {
        // Poison a deterministic, hash-chosen subset (at least one weight).
        const std::uint64_t h =
            decision_hash(seed_ ^ 0x17u, i, update.client_id, update.round);
        const std::size_t stride = 1 + h % 7;
        for (std::size_t k = 0; k < w.size(); k += stride) {
          w[k] = std::numeric_limits<float>::quiet_NaN();
        }
        break;
      }
      case CorruptionMode::kInf: {
        const std::uint64_t h =
            decision_hash(seed_ ^ 0x2Bu, i, update.client_id, update.round);
        const std::size_t stride = 1 + h % 7;
        for (std::size_t k = 0; k < w.size(); k += stride) {
          w[k] = (k % 2 == 0) ? std::numeric_limits<float>::infinity()
                              : -std::numeric_limits<float>::infinity();
        }
        break;
      }
      case CorruptionMode::kNormInflate:
        for (float& v : w) v = static_cast<float>(v * rule.norm_factor);
        break;
      case CorruptionMode::kSignFlip:
        for (float& v : w) v = -v;
        break;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupted_updates;
    return true;
  }
  return false;
}

int FaultInjector::duplicate_copies(int client, std::uint32_t round) const {
  int copies = 0;
  const auto& rules = plan_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].kind != FaultKind::kDuplicate) continue;
    if (decide(i, rules[i], client, round)) copies += rules[i].extra_copies;
  }
  if (copies > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.duplicated_messages += static_cast<std::uint64_t>(copies);
  }
  return copies;
}

bool FaultInjector::should_replay_stale(int client, std::uint32_t round) const {
  const auto& rules = plan_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].kind != FaultKind::kStaleReplay) continue;
    if (decide(i, rules[i], client, round)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.stale_replays;
      return true;
    }
  }
  return false;
}

bool FaultInjector::may_replay_stale(int client) const {
  for (const FaultRule& rule : plan_.rules()) {
    if (rule.kind != FaultKind::kStaleReplay) continue;
    if (rule.client == kAllClients || rule.client == client) return true;
  }
  return false;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FaultInjector::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = FaultStats{};
}

}  // namespace evfl::faults
