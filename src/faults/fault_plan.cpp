#include "faults/fault_plan.hpp"

#include "common/error.hpp"

namespace evfl::faults {

FaultPlan& FaultPlan::crash(int client, std::uint32_t from, std::uint32_t to,
                            double probability) {
  FaultRule r;
  r.kind = FaultKind::kCrash;
  r.client = client;
  r.round_begin = from;
  r.round_end = to;
  r.probability = probability;
  return add(r);
}

FaultPlan& FaultPlan::straggle(int client, double delay_ms, std::uint32_t from,
                               std::uint32_t to, double probability) {
  EVFL_REQUIRE(delay_ms >= 0.0, "straggler delay must be non-negative");
  FaultRule r;
  r.kind = FaultKind::kStraggler;
  r.client = client;
  r.delay_ms = delay_ms;
  r.round_begin = from;
  r.round_end = to;
  r.probability = probability;
  return add(r);
}

FaultPlan& FaultPlan::corrupt(int client, CorruptionMode mode,
                              std::uint32_t from, std::uint32_t to,
                              double probability) {
  FaultRule r;
  r.kind = FaultKind::kCorrupt;
  r.client = client;
  r.mode = mode;
  r.round_begin = from;
  r.round_end = to;
  r.probability = probability;
  return add(r);
}

FaultPlan& FaultPlan::duplicate(int client, int extra_copies,
                                std::uint32_t from, std::uint32_t to,
                                double probability) {
  EVFL_REQUIRE(extra_copies >= 1, "duplicate needs at least one extra copy");
  FaultRule r;
  r.kind = FaultKind::kDuplicate;
  r.client = client;
  r.extra_copies = extra_copies;
  r.round_begin = from;
  r.round_end = to;
  r.probability = probability;
  return add(r);
}

FaultPlan& FaultPlan::stale_replay(int client, std::uint32_t from,
                                   std::uint32_t to, double probability) {
  FaultRule r;
  r.kind = FaultKind::kStaleReplay;
  r.client = client;
  r.round_begin = from;
  r.round_end = to;
  r.probability = probability;
  return add(r);
}

FaultPlan& FaultPlan::add(FaultRule rule) {
  EVFL_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
               "fault probability must be in [0, 1]");
  EVFL_REQUIRE(rule.round_begin <= rule.round_end,
               "fault rule round range is inverted");
  rules_.push_back(rule);
  return *this;
}

}  // namespace evfl::faults
