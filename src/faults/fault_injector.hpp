// FaultInjector — deterministic evaluation of a FaultPlan.
//
// Every decision ("does client 2 crash in round 5?") is a pure function of
// (seed, rule index, client, round): a counter-free hash drives the
// Bernoulli draw, so answers do not depend on thread schedule, call order,
// or how many times a question is asked.  Two runs with the same plan and
// seed inject byte-identical fault sequences — the property the
// reproducibility acceptance tests rely on.
//
// Stats are the one piece of mutable state; they are mutex-protected because
// the ThreadedDriver consults the injector from concurrent client threads.
// Drivers consult each decision once per (client, round) so counters equal
// injected-fault counts.
#pragma once

#include <cstdint>
#include <mutex>

#include "faults/fault_plan.hpp"
#include "fl/weights.hpp"

namespace evfl::faults {

struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t straggler_delays = 0;
  std::uint64_t corrupted_updates = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t stale_replays = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0x5eed);

  /// Does `client` crash (after receiving the broadcast, before sending an
  /// update) in `round`?
  bool should_crash(int client, std::uint32_t round) const;

  /// Injected delay before the client's update is sent; 0 when no straggler
  /// rule fires.  Multiple matching rules accumulate.
  double straggler_delay_ms(int client, std::uint32_t round) const;

  /// Damage `update` in place according to the first matching corruption
  /// rule.  Returns true when a corruption was applied.
  bool corrupt_update(fl::WeightUpdate& update) const;

  /// Extra network deliveries of this client's update for this round
  /// (0 = deliver once, normally).
  int duplicate_copies(int client, std::uint32_t round) const;

  /// Should the client re-send its previous round's update alongside the
  /// fresh one?
  bool should_replay_stale(int client, std::uint32_t round) const;

  /// Could any stale-replay rule ever fire for `client` (any round, any
  /// probability)?  Pure plan inspection — no stats, no Bernoulli draw.
  /// Lets senders skip retaining previous payloads when no rule wants them.
  bool may_replay_stale(int client) const;

  FaultStats stats() const;
  void reset_stats();

 private:
  bool decide(std::size_t rule_index, const FaultRule& rule, int client,
              std::uint32_t round) const;

  FaultPlan plan_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;
  mutable FaultStats stats_;
};

}  // namespace evfl::faults
