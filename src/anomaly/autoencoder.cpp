#include "anomaly/autoencoder.hpp"

#include "data/window.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "nn/repeat_vector.hpp"

namespace evfl::anomaly {

LstmAutoencoder::LstmAutoencoder(AutoencoderConfig cfg, tensor::Rng& rng)
    : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.window >= 2, "autoencoder window must be >= 2");
  using namespace nn;
  model_.emplace<Lstm>(cfg_.encoder_units, /*return_sequences=*/true, rng,
                       /*input_features=*/1);
  model_.emplace<Dropout>(cfg_.dropout, rng);
  model_.emplace<Lstm>(cfg_.latent_units, /*return_sequences=*/false, rng,
                       cfg_.encoder_units);
  model_.emplace<RepeatVector>(cfg_.window);
  model_.emplace<Lstm>(cfg_.latent_units, /*return_sequences=*/true, rng,
                       cfg_.latent_units);
  model_.emplace<Dropout>(cfg_.dropout, rng);
  model_.emplace<Lstm>(cfg_.encoder_units, /*return_sequences=*/true, rng,
                       cfg_.latent_units);
  model_.emplace<Dense>(1, Activation::kLinear, rng, cfg_.encoder_units);
}

nn::FitHistory LstmAutoencoder::train(const std::vector<float>& scaled_normal,
                                      tensor::Rng& rng) {
  const tensor::Tensor3 windows =
      data::make_autoencoder_windows(scaled_normal, cfg_.window);
  const std::size_t n = windows.batch();

  // Hold out the chronological tail of the training windows for early
  // stopping — a temporal validation split, consistent with the paper's
  // leak-free train/test methodology.
  std::size_t n_val =
      static_cast<std::size_t>(static_cast<double>(n) * cfg_.val_fraction);
  if (n_val == 0 && n >= 10) n_val = 1;
  const std::size_t n_train = n - n_val;
  EVFL_REQUIRE(n_train > 0, "autoencoder: no training windows");

  const tensor::Tensor3 x_train = windows.batch_slice(0, n_train);
  nn::MseLoss loss;
  nn::Adam adam(cfg_.learning_rate);
  nn::Trainer trainer(model_, loss, adam, rng);

  nn::FitConfig fit;
  fit.epochs = cfg_.max_epochs;
  fit.batch_size = cfg_.batch_size;
  if (n_val > 0) {
    fit.early_stopping = nn::EarlyStopping{cfg_.patience, 0.0f, true};
    const tensor::Tensor3 x_val = windows.batch_slice(n_train, n);
    const nn::FitHistory hist =
        trainer.fit(x_train, x_train, fit, &x_val, &x_val);
    trained_ = true;
    return hist;
  }
  const nn::FitHistory hist = trainer.fit(x_train, x_train, fit);
  trained_ = true;
  return hist;
}

tensor::Tensor3 LstmAutoencoder::reconstruct(
    const std::vector<float>& scaled_series) {
  EVFL_REQUIRE(trained_, "autoencoder not trained");
  const tensor::Tensor3 windows =
      data::make_autoencoder_windows(scaled_series, cfg_.window);
  return nn::predict_batched(model_, windows);
}

std::vector<float> LstmAutoencoder::score(
    const std::vector<float>& scaled_series) {
  EVFL_REQUIRE(trained_, "autoencoder not trained");
  const tensor::Tensor3 windows =
      data::make_autoencoder_windows(scaled_series, cfg_.window);
  const tensor::Tensor3 recon = nn::predict_batched(model_, windows);
  return data::per_point_reconstruction_error(
      windows, recon, scaled_series.size(), cfg_.score_aggregation);
}

}  // namespace evfl::anomaly
