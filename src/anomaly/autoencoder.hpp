// LSTM autoencoder for unsupervised anomaly detection (§II-B).
//
// Architecture per the paper: encoder LSTM 50 -> 25, decoder 25 -> 50 with
// dropout 0.2, trained only on normal data; anomalies are scored by MSE
// between input windows and their reconstructions.  Expressed in Keras
// terms:
//   LSTM(50, return_sequences=True) -> Dropout(0.2) -> LSTM(25)
//   -> RepeatVector(window) -> LSTM(25, return_sequences=True)
//   -> Dropout(0.2) -> LSTM(50, return_sequences=True)
//   -> TimeDistributed(Dense(1))
#pragma once

#include <vector>

#include "data/window.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/rng.hpp"

namespace evfl::anomaly {

struct AutoencoderConfig {
  std::size_t window = 24;      // reconstruction window (= lookback hours)
  std::size_t encoder_units = 50;
  std::size_t latent_units = 25;
  float dropout = 0.2f;
  float learning_rate = 1e-3f;
  std::size_t max_epochs = 25;
  std::size_t batch_size = 32;
  std::size_t patience = 10;    // early stopping (paper: patience = 10)
  double val_fraction = 0.1;    // tail of the training windows held out
  /// Per-point score aggregation across covering windows.  kMin keeps
  /// burst-induced window errors from smearing onto neighbouring normal
  /// points (see data::ErrorAggregation).
  data::ErrorAggregation score_aggregation = data::ErrorAggregation::kMin;
};

class LstmAutoencoder {
 public:
  LstmAutoencoder(AutoencoderConfig cfg, tensor::Rng& rng);

  /// Train on scaled *normal* series values; returns the fit history.
  nn::FitHistory train(const std::vector<float>& scaled_normal,
                       tensor::Rng& rng);

  /// Per-point reconstruction MSE over a scaled series (length preserved).
  std::vector<float> score(const std::vector<float>& scaled_series);

  /// Reconstruct the windows of a scaled series (exposed for examples).
  tensor::Tensor3 reconstruct(const std::vector<float>& scaled_series);

  const AutoencoderConfig& config() const { return cfg_; }
  nn::Sequential& model() { return model_; }
  bool trained() const { return trained_; }

 private:
  AutoencoderConfig cfg_;
  nn::Sequential model_;
  bool trained_ = false;
};

}  // namespace evfl::anomaly
