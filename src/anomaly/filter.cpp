#include "anomaly/filter.hpp"

#include <algorithm>

#include "data/window.hpp"

namespace evfl::anomaly {

EvChargingAnomalyFilter::EvChargingAnomalyFilter(FilterConfig cfg,
                                                 tensor::Rng& rng)
    : cfg_(cfg), autoencoder_(cfg.autoencoder, rng) {}

nn::FitHistory EvChargingAnomalyFilter::fit(const data::TimeSeries& clean_train,
                                            tensor::Rng& rng) {
  clean_train.validate();
  EVFL_REQUIRE(clean_train.size() > cfg_.autoencoder.window,
               "training series shorter than autoencoder window");
  scaler_.fit(clean_train.values);
  const std::vector<float> scaled = scaler_.transform(clean_train.values);
  const nn::FitHistory hist = autoencoder_.train(scaled, rng);
  train_scores_ = autoencoder_.score(scaled);
  threshold_ = compute_threshold(train_scores_, cfg_.threshold);
  fitted_ = true;
  return hist;
}

void EvChargingAnomalyFilter::set_threshold_rule(const ThresholdRule& rule) {
  EVFL_REQUIRE(fitted_, "set_threshold_rule before fit");
  cfg_.threshold = rule;
  threshold_ = compute_threshold(train_scores_, rule);
}

std::vector<float> EvChargingAnomalyFilter::score(
    const data::TimeSeries& series) {
  EVFL_REQUIRE(fitted_, "score before fit");
  return autoencoder_.score(scaler_.transform(series.values));
}

std::vector<std::uint8_t> EvChargingAnomalyFilter::detect(
    const data::TimeSeries& series) {
  const std::vector<float> s = score(series);
  std::vector<std::uint8_t> flags(s.size(), 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    flags[i] = s[i] > threshold_ ? 1 : 0;
  }
  return flags;
}

FilterResult EvChargingAnomalyFilter::filter(const data::TimeSeries& series) {
  EVFL_REQUIRE(fitted_, "filter before fit");
  FilterResult result;
  result.scores = score(series);
  result.threshold = threshold_;
  result.flags.assign(result.scores.size(), 0);
  for (std::size_t i = 0; i < result.scores.size(); ++i) {
    result.flags[i] = result.scores[i] > threshold_ ? 1 : 0;
  }
  result.segments = merge_segments(result.flags, cfg_.gap_tolerance);

  result.filtered = series;
  result.filtered.name = series.name + "+filtered";

  // Mitigation: the paper's linear interpolation by default, or one of the
  // future-work imputation strategies if configured.
  if (cfg_.imputation.method == ImputationMethod::kModelReconstruction) {
    // The autoencoder's own per-point reconstruction, mapped back to
    // physical units, repairs the flagged points.
    const std::vector<float> scaled = scaler_.transform(series.values);
    const tensor::Tensor3 recon = autoencoder().reconstruct(scaled);
    const std::vector<float> recon_scaled =
        data::per_point_reconstruction(recon, series.size());
    const std::vector<float> recon_raw = scaler_.inverse(recon_scaled);
    impute_segments(result.filtered.values, result.segments, result.flags,
                    cfg_.imputation, &recon_raw);
  } else {
    impute_segments(result.filtered.values, result.segments, result.flags,
                    cfg_.imputation);
  }
  // The filtered series is what downstream forecasting consumes; from its
  // point of view the repaired data is "clean".
  result.filtered.init_clean_labels();
  return result;
}

}  // namespace evfl::anomaly
