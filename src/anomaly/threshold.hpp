// Anomaly-score thresholding strategies.
//
// The paper's primary rule is the 98th percentile of training-set
// reconstruction MSE.  The MSD (mean + k·std) and MAD (median absolute
// deviation) rules from its cited prior work [4] are provided as ablation
// alternatives (bench_ablation_threshold).
//
// Two evaluation modes share the ThresholdRule description:
//   compute_threshold    — batch: one pass over a score vector (train-time).
//   IncrementalThreshold — streaming: O(1)/O(R) per-score state updates so a
//                          long-running detector adapts its cutoff without
//                          rescanning history (evfl::stream).
//
// Both modes reject non-finite scores with a counted drop: a NaN entering
// std::sort is undefined behaviour and silently corrupts the order (and any
// mean/percentile built on it), and scores from a just-initialized or
// poisoned model do produce NaN/Inf.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace evfl::anomaly {

enum class ThresholdKind {
  kPercentile,  // param = percentile in (0, 100)        (paper: 98)
  kMeanStd,     // param = k in  mean + k * std          (MSD rule)
  kMad,         // param = k in  median + k * 1.4826*MAD (MAD rule)
};

std::string to_string(ThresholdKind kind);

struct ThresholdRule {
  ThresholdKind kind = ThresholdKind::kPercentile;
  /// The paper applies the 98th percentile to its window-level MSE scores.
  /// Our per-point scores use min-aggregation across covering windows
  /// (data::ErrorAggregation::kMin), which concentrates the clean-score
  /// distribution, so the percentile realizing the paper's operating point
  /// (precision ≈ 0.9, FPR ≈ 1.2%) sits higher; 99.5 is the calibrated
  /// default.  bench_ablation_threshold sweeps the full range including 98.
  double param = 99.5;
};

/// Remove non-finite entries in place (order of the finite entries is
/// preserved); returns how many were dropped.
std::size_t drop_nonfinite(std::vector<float>& values);

/// Compute the scalar threshold from training scores under the rule.
/// Non-finite scores are dropped first (reported through
/// `nonfinite_dropped` when non-null); throws if no finite score remains.
float compute_threshold(const std::vector<float>& train_scores,
                        const ThresholdRule& rule,
                        std::size_t* nonfinite_dropped = nullptr);

/// Linear-interpolated percentile (inclusive method, like numpy default)
/// over the finite entries of `values`; non-finite entries are dropped
/// (counted into `nonfinite_dropped` when non-null) and an all-non-finite
/// input throws.
float percentile(std::vector<float> values, double pct,
                 std::size_t* nonfinite_dropped = nullptr);

float median(std::vector<float> values);

/// Streaming threshold state behind a ThresholdRule — the incremental
/// counterpart of compute_threshold for continuous ingestion:
///
///   kPercentile — P² quantile estimator (Jain & Chlamtac 1985): five
///                 markers tracking {0, p/2, p, (1+p)/2, 1} quantile
///                 positions with parabolic height adjustment.  O(1) per
///                 observation, exact for the first five.
///   kMeanStd    — Welford mean/variance recurrence; matches
///                 data::compute_stats (population stddev) in the limit.
///   kMad        — deterministic reservoir sample (splitmix-hashed
///                 Algorithm R, fixed capacity) with an exact
///                 median + k·1.4826·MAD recompute over the reservoir,
///                 cached between observations.
///
/// Non-finite observations are rejected and counted, never folded into
/// state.  All storage is fixed at construction — observe() never
/// allocates, which is what the streaming zero-alloc ingest contract
/// (bench_stream --check-allocs) relies on.
class IncrementalThreshold {
 public:
  explicit IncrementalThreshold(const ThresholdRule& rule = {});

  /// Fold one score in.  Returns false (and counts the drop) for NaN/Inf.
  bool observe(float score);

  /// Forget every observation while keeping the rule and all storage
  /// (reservoir/scratch capacity survives, so a drift-triggered re-seed in
  /// a streaming zone never allocates).  The non-finite drop counter is
  /// cumulative across resets — it audits inputs, not estimator state.
  void reset();

  /// Current threshold estimate; requires at least one accepted score.
  float value() const;

  /// Accepted (finite) observations so far.
  std::size_t count() const { return count_; }
  std::uint64_t nonfinite_dropped() const { return nonfinite_dropped_; }
  const ThresholdRule& rule() const { return rule_; }

 private:
  static constexpr std::size_t kReservoirCap = 256;

  float percentile_value() const;
  void observe_p2(float score);

  ThresholdRule rule_;
  std::size_t count_ = 0;
  std::uint64_t nonfinite_dropped_ = 0;

  // kPercentile (P²): marker heights, integer positions, desired positions.
  std::array<double, 5> q_{};
  std::array<double, 5> n_{};
  std::array<double, 5> np_{};
  std::array<double, 5> dn_{};

  // kMeanStd (Welford).
  double mean_ = 0.0;
  double m2_ = 0.0;

  // kMad: fixed-capacity deterministic reservoir + reusable sort scratch.
  std::vector<float> reservoir_;
  mutable std::vector<float> mad_scratch_;
  mutable float mad_cached_ = 0.0f;
  mutable bool mad_dirty_ = true;
};

/// Drift probe for streaming thresholds (DESIGN.md §15): detects a
/// sustained shift of the score distribution that winsorized adaptation
/// would take thousands of samples to track, and hands the caller the
/// evidence to re-seed its IncrementalThreshold from.
///
/// Mechanics: scores enter a fixed trailing window (the re-seed
/// reservoir); scores that age out of the window graduate into a Welford
/// baseline, so baseline and window never overlap — the first `window`
/// post-shift samples are compared against a pre-shift baseline.  observe()
/// trips when the window mean sits more than `z_bound` standard errors
/// (baseline σ / √window) from the baseline mean.  After reseed() the
/// window graduates wholesale into a fresh baseline, giving a built-in
/// cooldown of one full window between trips.
///
/// All storage is fixed at construction; observe() and reseed() never
/// allocate (the streaming zero-alloc contract).  A default-constructed
/// probe is disabled: observe() accepts scores but never trips.
class DriftProbe {
 public:
  DriftProbe() = default;
  /// `z_bound` > 0 arms the probe; `window` is the trailing-window length
  /// (and the re-seed sample count).
  DriftProbe(double z_bound, std::size_t window);

  bool enabled() const { return z_bound_ > 0.0; }

  /// Fold one finite score; returns true when the window mean has drifted
  /// past the z-bound and the caller should reseed().  Non-finite scores
  /// are ignored (the caller's estimator already dropped them).
  bool observe(float score);

  /// Rebuild `estimator` from the trailing window (reset + oldest-first
  /// replay), then graduate the window into a fresh baseline and clear it.
  /// Call only after observe() returned true (requires a full window).
  void reseed(IncrementalThreshold& estimator);

  /// Windows replayed into an estimator so far (monotonic).
  std::uint64_t reseeds() const { return reseeds_; }
  std::size_t window() const { return window_; }
  double z_bound() const { return z_bound_; }

 private:
  double z_bound_ = 0.0;
  std::size_t window_ = 0;

  std::vector<float> ring_;  // trailing window, ring order
  std::size_t head_ = 0;     // slot of the oldest score
  std::size_t filled_ = 0;

  // Welford baseline over scores older than the window.
  std::size_t base_count_ = 0;
  double base_mean_ = 0.0;
  double base_m2_ = 0.0;

  std::uint64_t reseeds_ = 0;
};

}  // namespace evfl::anomaly
