// Anomaly-score thresholding strategies.
//
// The paper's primary rule is the 98th percentile of training-set
// reconstruction MSE.  The MSD (mean + k·std) and MAD (median absolute
// deviation) rules from its cited prior work [4] are provided as ablation
// alternatives (bench_ablation_threshold).
#pragma once

#include <string>
#include <vector>

namespace evfl::anomaly {

enum class ThresholdKind {
  kPercentile,  // param = percentile in (0, 100)        (paper: 98)
  kMeanStd,     // param = k in  mean + k * std          (MSD rule)
  kMad,         // param = k in  median + k * 1.4826*MAD (MAD rule)
};

std::string to_string(ThresholdKind kind);

struct ThresholdRule {
  ThresholdKind kind = ThresholdKind::kPercentile;
  /// The paper applies the 98th percentile to its window-level MSE scores.
  /// Our per-point scores use min-aggregation across covering windows
  /// (data::ErrorAggregation::kMin), which concentrates the clean-score
  /// distribution, so the percentile realizing the paper's operating point
  /// (precision ≈ 0.9, FPR ≈ 1.2%) sits higher; 99.5 is the calibrated
  /// default.  bench_ablation_threshold sweeps the full range including 98.
  double param = 99.5;
};

/// Compute the scalar threshold from training scores under the rule.
float compute_threshold(const std::vector<float>& train_scores,
                        const ThresholdRule& rule);

/// Linear-interpolated percentile (inclusive method, like numpy default).
float percentile(std::vector<float> values, double pct);

float median(std::vector<float> values);

}  // namespace evfl::anomaly
