#include "anomaly/segments.hpp"

#include <optional>

namespace evfl::anomaly {

std::vector<Segment> merge_segments(const std::vector<std::uint8_t>& flags,
                                    std::size_t gap_tolerance) {
  std::vector<Segment> segments;
  std::optional<Segment> current;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] == 0) continue;
    if (current && i - current->end <= gap_tolerance + 1) {
      current->end = i;  // extend (possibly across a small normal gap)
    } else {
      if (current) segments.push_back(*current);
      current = Segment{i, i};
    }
  }
  if (current) segments.push_back(*current);
  return segments;
}

void interpolate_segments(std::vector<float>& values,
                          const std::vector<Segment>& segments) {
  const std::size_t n = values.size();
  for (const Segment& seg : segments) {
    EVFL_REQUIRE(seg.begin <= seg.end && seg.end < n,
                 "interpolate_segments: segment out of range");
    const bool has_left = seg.begin > 0;
    const bool has_right = seg.end + 1 < n;
    if (!has_left && !has_right) {
      // Whole series anomalous: nothing trustworthy to anchor on.
      continue;
    }
    if (!has_left) {
      // Leading segment: hold the first trustworthy value backwards.
      const float v = values[seg.end + 1];
      for (std::size_t i = seg.begin; i <= seg.end; ++i) values[i] = v;
      continue;
    }
    if (!has_right) {
      // Trailing segment: hold the last trustworthy value forwards.
      const float v = values[seg.begin - 1];
      for (std::size_t i = seg.begin; i <= seg.end; ++i) values[i] = v;
      continue;
    }
    const std::size_t left = seg.begin - 1;
    const std::size_t right = seg.end + 1;
    const float v0 = values[left];
    const float v1 = values[right];
    const float span = static_cast<float>(right - left);
    for (std::size_t i = seg.begin; i <= seg.end; ++i) {
      const float t = static_cast<float>(i - left) / span;
      values[i] = v0 + t * (v1 - v0);
    }
  }
}

}  // namespace evfl::anomaly
