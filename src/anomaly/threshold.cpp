#include "anomaly/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "data/timeseries.hpp"

namespace evfl::anomaly {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Inclusive linear-interpolated percentile of an already-sorted,
/// all-finite range.
float sorted_percentile(const float* values, std::size_t n, double pct) {
  if (n == 1) return values[0];
  const double rank = pct / 100.0 * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<float>(values[lo] + frac * (values[hi] - values[lo]));
}

float mad_threshold(std::vector<float>& sorted_scratch, double k) {
  // `sorted_scratch` holds finite scores; sorted in place, then reused for
  // the deviations so the whole computation stays within one buffer.
  std::sort(sorted_scratch.begin(), sorted_scratch.end());
  const float med =
      sorted_percentile(sorted_scratch.data(), sorted_scratch.size(), 50.0);
  for (float& v : sorted_scratch) v = std::abs(v - med);
  std::sort(sorted_scratch.begin(), sorted_scratch.end());
  const float mad =
      sorted_percentile(sorted_scratch.data(), sorted_scratch.size(), 50.0);
  // 1.4826 scales MAD to the std of a normal distribution.
  return med + static_cast<float>(k) * 1.4826f * mad;
}

}  // namespace

std::string to_string(ThresholdKind kind) {
  switch (kind) {
    case ThresholdKind::kPercentile: return "percentile";
    case ThresholdKind::kMeanStd: return "mean+k*std";
    case ThresholdKind::kMad: return "mad";
  }
  return "?";
}

std::size_t drop_nonfinite(std::vector<float>& values) {
  const std::size_t before = values.size();
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](float v) { return !std::isfinite(v); }),
               values.end());
  return before - values.size();
}

float percentile(std::vector<float> values, double pct,
                 std::size_t* nonfinite_dropped) {
  EVFL_REQUIRE(pct >= 0.0 && pct <= 100.0, "percentile out of [0,100]");
  // NaN comparisons violate strict weak ordering: sorting them is UB and
  // can silently scramble the finite entries too.  Inf sorts, but poisons
  // the interpolation (Inf * 0 = NaN).  Drop both, with an accounted count.
  const std::size_t dropped = drop_nonfinite(values);
  if (nonfinite_dropped != nullptr) *nonfinite_dropped = dropped;
  EVFL_REQUIRE(!values.empty(), "percentile of empty vector (after dropping " +
                                    std::to_string(dropped) +
                                    " non-finite values)");
  std::sort(values.begin(), values.end());
  return sorted_percentile(values.data(), values.size(), pct);
}

float median(std::vector<float> values) { return percentile(std::move(values), 50.0); }

float compute_threshold(const std::vector<float>& train_scores,
                        const ThresholdRule& rule,
                        std::size_t* nonfinite_dropped) {
  EVFL_REQUIRE(!train_scores.empty(), "threshold from empty scores");
  std::vector<float> finite = train_scores;
  const std::size_t dropped = drop_nonfinite(finite);
  if (nonfinite_dropped != nullptr) *nonfinite_dropped = dropped;
  EVFL_REQUIRE(!finite.empty(),
               "threshold from scores with no finite entry (" +
                   std::to_string(dropped) + " non-finite dropped)");
  switch (rule.kind) {
    case ThresholdKind::kPercentile: {
      std::sort(finite.begin(), finite.end());
      return sorted_percentile(finite.data(), finite.size(), rule.param);
    }
    case ThresholdKind::kMeanStd: {
      const data::SeriesStats s = data::compute_stats(finite);
      return s.mean + static_cast<float>(rule.param) * s.stddev;
    }
    case ThresholdKind::kMad:
      return mad_threshold(finite, rule.param);
  }
  EVFL_ASSERT(false, "unknown threshold kind");
  return 0.0f;
}

// ---------------------------------------------------------------------------
// IncrementalThreshold

IncrementalThreshold::IncrementalThreshold(const ThresholdRule& rule)
    : rule_(rule) {
  if (rule_.kind == ThresholdKind::kPercentile) {
    EVFL_REQUIRE(rule_.param >= 0.0 && rule_.param <= 100.0,
                 "percentile out of [0,100]");
    const double p = rule_.param / 100.0;
    // Desired marker positions track {0, p/2, p, (1+p)/2, 1} quantiles.
    dn_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  } else if (rule_.kind == ThresholdKind::kMad) {
    reservoir_.reserve(kReservoirCap);
    mad_scratch_.reserve(kReservoirCap);
  }
}

void IncrementalThreshold::reset() {
  count_ = 0;
  q_.fill(0.0);
  n_.fill(0.0);
  np_.fill(0.0);
  mean_ = 0.0;
  m2_ = 0.0;
  reservoir_.clear();  // capacity retained: reset never allocates
  mad_cached_ = 0.0f;
  mad_dirty_ = true;
}

bool IncrementalThreshold::observe(float score) {
  if (!std::isfinite(score)) {
    ++nonfinite_dropped_;
    return false;
  }
  ++count_;
  switch (rule_.kind) {
    case ThresholdKind::kPercentile:
      observe_p2(score);
      break;
    case ThresholdKind::kMeanStd: {
      const double delta = score - mean_;
      mean_ += delta / static_cast<double>(count_);
      m2_ += delta * (score - mean_);
      break;
    }
    case ThresholdKind::kMad: {
      mad_dirty_ = true;
      if (reservoir_.size() < kReservoirCap) {
        reservoir_.push_back(score);
      } else {
        // Algorithm R with a hash-derived draw: item i replaces a uniform
        // reservoir slot with probability cap/i — deterministic in the
        // observation sequence, independent of wall clock.
        const std::uint64_t h =
            splitmix64(static_cast<std::uint64_t>(count_) ^ 0x9E37ull);
        const std::uint64_t j = h % static_cast<std::uint64_t>(count_);
        if (j < kReservoirCap) reservoir_[static_cast<std::size_t>(j)] = score;
      }
      break;
    }
  }
  return true;
}

void IncrementalThreshold::observe_p2(float score) {
  const double x = score;
  if (count_ <= 5) {
    // Warmup: the first five observations become the initial markers.
    q_[count_ - 1] = x;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        n_[i] = static_cast<double>(i);
        np_[i] = dn_[i] * 4.0;
      }
    }
    return;
  }

  // Locate the cell and bump the extreme markers.
  std::size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x < q_[1]) {
    k = 0;
  } else if (x < q_[2]) {
    k = 1;
  } else if (x < q_[3]) {
    k = 2;
  } else if (x <= q_[4]) {
    k = 3;
  } else {
    q_[4] = x;
    k = 3;
  }
  for (std::size_t i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) height prediction.
      const double np1 = n_[i + 1], nm1 = n_[i - 1], ni = n_[i];
      double qn =
          q_[i] + sign / (np1 - nm1) *
                      ((ni - nm1 + sign) * (q_[i + 1] - q_[i]) / (np1 - ni) +
                       (np1 - ni - sign) * (q_[i] - q_[i - 1]) / (ni - nm1));
      if (qn <= q_[i - 1] || qn >= q_[i + 1]) {
        // Parabola left the bracket: fall back to linear adjustment.
        const std::size_t nb = sign > 0.0 ? i + 1 : i - 1;
        qn = q_[i] + sign * (q_[nb] - q_[i]) / (n_[nb] - ni);
      }
      q_[i] = qn;
      n_[i] += sign;
    }
  }
}

float IncrementalThreshold::percentile_value() const {
  if (count_ < 5) {
    // Exact small-sample percentile over the observed prefix (markers hold
    // the raw values until the fifth observation sorts them).
    std::array<double, 5> sorted{};
    std::copy(q_.begin(), q_.begin() + count_, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + count_);
    if (count_ == 1) return static_cast<float>(sorted[0]);
    const double rank =
        rule_.param / 100.0 * static_cast<double>(count_ - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<float>(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
  }
  return static_cast<float>(q_[2]);
}

float IncrementalThreshold::value() const {
  EVFL_REQUIRE(count_ > 0, "IncrementalThreshold::value before any score");
  switch (rule_.kind) {
    case ThresholdKind::kPercentile:
      return percentile_value();
    case ThresholdKind::kMeanStd: {
      // Population variance, matching data::compute_stats.
      const double var = m2_ / static_cast<double>(count_);
      return static_cast<float>(mean_ +
                                rule_.param * std::sqrt(std::max(0.0, var)));
    }
    case ThresholdKind::kMad: {
      if (mad_dirty_) {
        mad_scratch_.assign(reservoir_.begin(), reservoir_.end());
        mad_cached_ = mad_threshold(mad_scratch_, rule_.param);
        mad_dirty_ = false;
      }
      return mad_cached_;
    }
  }
  EVFL_ASSERT(false, "unknown threshold kind");
  return 0.0f;
}

// ---------------------------------------------------------------------------
// DriftProbe

DriftProbe::DriftProbe(double z_bound, std::size_t window)
    : z_bound_(z_bound), window_(window) {
  EVFL_REQUIRE(z_bound > 0.0, "DriftProbe needs z_bound > 0");
  EVFL_REQUIRE(window >= 8, "DriftProbe needs window >= 8");
  ring_.assign(window_, 0.0f);
}

bool DriftProbe::observe(float score) {
  if (!enabled() || !std::isfinite(score)) return false;
  if (filled_ == window_) {
    // The evicted score graduates into the baseline before the new one
    // takes its slot, keeping baseline and window disjoint.
    const double evicted = ring_[head_];
    ++base_count_;
    const double delta = evicted - base_mean_;
    base_mean_ += delta / static_cast<double>(base_count_);
    base_m2_ += delta * (evicted - base_mean_);
    ring_[head_] = score;
    head_ = head_ + 1 == window_ ? 0 : head_ + 1;
  } else {
    ring_[(head_ + filled_) % window_] = score;
    ++filled_;
  }
  // A baseline at least one window deep keeps the standard error honest;
  // earlier trips would fire off a handful of graduated scores.
  if (filled_ < window_ || base_count_ < window_) return false;

  double recent = 0.0;
  for (float v : ring_) recent += v;
  recent /= static_cast<double>(window_);
  const double base_var = base_m2_ / static_cast<double>(base_count_);
  // Standard error of a window mean under the baseline distribution; the
  // epsilon keeps a constant (zero-variance) baseline from tripping on
  // float noise.
  const double se =
      std::sqrt(std::max(base_var, 0.0) / static_cast<double>(window_)) +
      1e-12;
  return std::abs(recent - base_mean_) / se > z_bound_;
}

void DriftProbe::reseed(IncrementalThreshold& estimator) {
  EVFL_REQUIRE(filled_ == window_, "DriftProbe::reseed before a full window");
  estimator.reset();
  // Oldest-first replay keeps the estimator's state a pure function of the
  // zone's score sequence (the shard-invariance contract).
  base_count_ = 0;
  base_mean_ = 0.0;
  base_m2_ = 0.0;
  for (std::size_t i = 0; i < window_; ++i) {
    std::size_t j = head_ + i;
    if (j >= window_) j -= window_;
    const double s = ring_[j];
    estimator.observe(ring_[j]);
    // The window wholesale becomes the new baseline: post-drift scores are
    // the new normal, and the empty window gives a one-window cooldown.
    ++base_count_;
    const double delta = s - base_mean_;
    base_mean_ += delta / static_cast<double>(base_count_);
    base_m2_ += delta * (s - base_mean_);
  }
  head_ = 0;
  filled_ = 0;
  ++reseeds_;
}

}  // namespace evfl::anomaly
