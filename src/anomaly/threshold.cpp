#include "anomaly/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "data/timeseries.hpp"

namespace evfl::anomaly {

std::string to_string(ThresholdKind kind) {
  switch (kind) {
    case ThresholdKind::kPercentile: return "percentile";
    case ThresholdKind::kMeanStd: return "mean+k*std";
    case ThresholdKind::kMad: return "mad";
  }
  return "?";
}

float percentile(std::vector<float> values, double pct) {
  EVFL_REQUIRE(!values.empty(), "percentile of empty vector");
  EVFL_REQUIRE(pct >= 0.0 && pct <= 100.0, "percentile out of [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<float>(values[lo] +
                            frac * (values[hi] - values[lo]));
}

float median(std::vector<float> values) { return percentile(std::move(values), 50.0); }

float compute_threshold(const std::vector<float>& train_scores,
                        const ThresholdRule& rule) {
  EVFL_REQUIRE(!train_scores.empty(), "threshold from empty scores");
  switch (rule.kind) {
    case ThresholdKind::kPercentile:
      return percentile(train_scores, rule.param);
    case ThresholdKind::kMeanStd: {
      const data::SeriesStats s = data::compute_stats(train_scores);
      return s.mean + static_cast<float>(rule.param) * s.stddev;
    }
    case ThresholdKind::kMad: {
      const float med = median(train_scores);
      std::vector<float> dev;
      dev.reserve(train_scores.size());
      for (float v : train_scores) dev.push_back(std::abs(v - med));
      const float mad = median(std::move(dev));
      // 1.4826 scales MAD to the std of a normal distribution.
      return med + static_cast<float>(rule.param) * 1.4826f * mad;
    }
  }
  EVFL_ASSERT(false, "unknown threshold kind");
  return 0.0f;
}

}  // namespace evfl::anomaly
