// Anomalous-segment utilities shared by the filter and the imputation
// strategies: gap-tolerant merging of per-point flags into repair segments,
// and the paper's baseline linear-interpolation repair.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace evfl::anomaly {

/// Inclusive index range of one mitigated segment.
struct Segment {
  std::size_t begin = 0;  // first anomalous index
  std::size_t end = 0;    // last anomalous index (inclusive)
};

/// Merge anomalous flags into segments, bridging normal gaps of length
/// <= gap_tolerance between anomalous runs (the paper merges gaps <= 2).
std::vector<Segment> merge_segments(const std::vector<std::uint8_t>& flags,
                                    std::size_t gap_tolerance);

/// Linear interpolation repair of `segments` in-place over `values`:
/// each segment is replaced by the line between the nearest non-anomalous
/// neighbours; at the series edges the boundary value is held constant.
void interpolate_segments(std::vector<float>& values,
                          const std::vector<Segment>& segments);

}  // namespace evfl::anomaly
