// EvChargingAnomalyFilter — the paper's EVChargingAnomalyFilter class:
// LSTM-autoencoder detection plus interpolation-based mitigation.
//
// Lifecycle:
//   1. fit(clean_train)   — fit a MinMax scaler, train the autoencoder on
//                           normal data only, set the detection threshold
//                           (a percentile of training reconstruction MSE;
//                           see ThresholdRule for the calibrated default).
//   2. detect(series)     — per-point anomaly flags for any series.
//   3. filter(series)     — detect, merge anomalous segments allowing gaps
//                           <= gap_tolerance, and linearly interpolate each
//                           merged segment between its non-anomalous
//                           boundary points (paper's filter_anomalies).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "anomaly/autoencoder.hpp"
#include "anomaly/imputation.hpp"
#include "anomaly/segments.hpp"
#include "anomaly/threshold.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"

namespace evfl::anomaly {

struct FilterConfig {
  AutoencoderConfig autoencoder;
  ThresholdRule threshold;           // default: 98th percentile
  std::size_t gap_tolerance = 2;     // paper: gaps <= 2 timestamps merged
  ImputationConfig imputation;       // paper default: linear interpolation
};

struct FilterResult {
  data::TimeSeries filtered;           // interpolated series
  std::vector<std::uint8_t> flags;     // raw per-point detections
  std::vector<Segment> segments;       // merged segments that were repaired
  float threshold = 0.0f;
  std::vector<float> scores;           // per-point reconstruction MSE
};

class EvChargingAnomalyFilter {
 public:
  EvChargingAnomalyFilter(FilterConfig cfg, tensor::Rng& rng);

  /// Train on a clean (normal) training series; returns the AE fit history.
  nn::FitHistory fit(const data::TimeSeries& clean_train, tensor::Rng& rng);

  bool fitted() const { return fitted_; }
  float threshold() const { return threshold_; }
  const data::MinMaxScaler& scaler() const { return scaler_; }
  const FilterConfig& config() const { return cfg_; }

  /// Per-point anomaly scores (reconstruction MSE in scaled space).
  std::vector<float> score(const data::TimeSeries& series);

  /// Per-point anomaly flags under the fitted threshold.
  std::vector<std::uint8_t> detect(const data::TimeSeries& series);

  /// Full mitigation pipeline (the paper's filter_anomalies).
  FilterResult filter(const data::TimeSeries& series);

  /// Re-threshold without retraining (ablations).  Requires fit() first.
  void set_threshold_rule(const ThresholdRule& rule);

  /// Swap the mitigation strategy without retraining (ablations).
  void set_imputation(const ImputationConfig& imputation) {
    cfg_.imputation = imputation;
  }

  /// The underlying autoencoder (reconstruction-based repair, examples).
  LstmAutoencoder& autoencoder() { return autoencoder_; }

 private:
  FilterConfig cfg_;
  LstmAutoencoder autoencoder_;
  data::MinMaxScaler scaler_;
  std::vector<float> train_scores_;
  float threshold_ = 0.0f;
  bool fitted_ = false;
};

}  // namespace evfl::anomaly
