// Mitigation (imputation) strategies for anomalous segments.
//
// The paper repairs anomalies with linear interpolation and explicitly
// flags "more sophisticated reconstruction techniques ... or advanced
// time-series imputation methods" as future work (§III-G.3).  This module
// implements that future work alongside the paper's baseline:
//
//   kLinear         — the paper's method: straight line between the nearest
//                     trustworthy neighbours.
//   kSeasonalNaive  — replace each anomalous point with the value one
//                     season (24 h) earlier, falling back to a linear repair
//                     between the nearest trustworthy neighbours when every
//                     seasonal reference is itself anomalous.
//   kSpline         — Catmull-Rom cubic through the four nearest trustworthy
//                     anchor points; smoother than linear on long segments.
//                     Repaired values are clamped at zero: the series is a
//                     non-negative traffic volume and steep tangents can
//                     otherwise overshoot below it.
//   kModelReconstruction — use a model-provided reconstruction (e.g. the
//                     LSTM autoencoder's own output) for the repaired points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anomaly/segments.hpp"

namespace evfl::anomaly {

enum class ImputationMethod {
  kLinear,
  kSeasonalNaive,
  kSpline,
  kModelReconstruction,
};

std::string to_string(ImputationMethod method);

struct ImputationConfig {
  ImputationMethod method = ImputationMethod::kLinear;
  std::size_t season = 24;  // hours per season for kSeasonalNaive
};

/// Repair `values` over `segments` using the chosen method.  `flags` marks
/// untrustworthy points (used to find valid seasonal/spline anchors);
/// `reconstruction` is required for kModelReconstruction (same length as
/// values) and ignored otherwise.
void impute_segments(std::vector<float>& values,
                     const std::vector<Segment>& segments,
                     const std::vector<std::uint8_t>& flags,
                     const ImputationConfig& cfg,
                     const std::vector<float>* reconstruction = nullptr);

/// Catmull-Rom interpolation at parameter t in [0,1] between p1 and p2 with
/// outer tangent anchors p0 and p3 (exposed for testing).
float catmull_rom(float p0, float p1, float p2, float p3, float t);

}  // namespace evfl::anomaly
