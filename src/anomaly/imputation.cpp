#include "anomaly/imputation.hpp"

#include <algorithm>
#include <optional>

namespace evfl::anomaly {

std::string to_string(ImputationMethod method) {
  switch (method) {
    case ImputationMethod::kLinear: return "linear";
    case ImputationMethod::kSeasonalNaive: return "seasonal-naive";
    case ImputationMethod::kSpline: return "spline";
    case ImputationMethod::kModelReconstruction: return "model-reconstruction";
  }
  return "?";
}

namespace {

bool trustworthy(const std::vector<std::uint8_t>& flags, std::size_t i) {
  return i < flags.size() && flags[i] == 0;
}

/// Nearest trustworthy index at or left of `from`; nullopt if none.
std::optional<std::size_t> left_anchor(const std::vector<std::uint8_t>& flags,
                                       std::size_t from) {
  for (std::size_t i = from + 1; i-- > 0;) {
    if (flags[i] == 0) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> right_anchor(const std::vector<std::uint8_t>& flags,
                                        std::size_t from) {
  for (std::size_t i = from; i < flags.size(); ++i) {
    if (flags[i] == 0) return i;
  }
  return std::nullopt;
}

void impute_seasonal(std::vector<float>& values, const Segment& seg,
                     const std::vector<std::uint8_t>& flags,
                     std::size_t season) {
  for (std::size_t i = seg.begin; i <= seg.end; ++i) {
    // Walk back season by season until a trustworthy reference appears.
    std::size_t back = i;
    bool found = false;
    while (back >= season) {
      back -= season;
      if (trustworthy(flags, back)) {
        values[i] = values[back];
        found = true;
        break;
      }
    }
    if (!found) {
      // No clean seasonal reference: fall back to a linear repair anchored
      // on the nearest *trustworthy* neighbours.  Anchoring on values[i±1]
      // directly would rebuild the point from samples that are themselves
      // flagged anomalous whenever the miss happens inside a multi-point
      // attack segment.
      const auto l = i > 0 ? left_anchor(flags, i - 1) : std::nullopt;
      const auto r = right_anchor(flags, i + 1);
      if (l && r) {
        const float t = static_cast<float>(i - *l) /
                        static_cast<float>(*r - *l);
        values[i] = values[*l] + t * (values[*r] - values[*l]);
      } else if (l) {
        values[i] = values[*l];
      } else if (r) {
        values[i] = values[*r];
      }
      // No trustworthy anchor on either side: leave the sample untouched
      // rather than manufacture a value from corrupted data.
    }
  }
}

void impute_spline(std::vector<float>& values, const Segment& seg,
                   const std::vector<std::uint8_t>& flags) {
  const auto l1 = seg.begin > 0
                      ? left_anchor(flags, seg.begin - 1)
                      : std::nullopt;
  const auto r1 = right_anchor(flags, seg.end + 1);
  if (!l1 || !r1) {
    // Series edge: same hold-boundary behaviour as the linear repair.
    interpolate_segments(values, {seg});
    return;
  }
  // Outer tangent anchors: the next trustworthy points beyond l1 / r1.
  const auto l2 = *l1 > 0 ? left_anchor(flags, *l1 - 1) : std::nullopt;
  const auto r2 = right_anchor(flags, *r1 + 1);

  // Non-uniform cubic Hermite: anchors sit at their true series indices, so
  // the endpoint tangents are finite differences scaled by the repaired
  // segment's actual span — uniform Catmull-Rom would bow on the unevenly
  // spaced anchors that surround a gap.
  const float x1 = static_cast<float>(*l1);
  const float x2 = static_cast<float>(*r1);
  const float p1 = values[*l1];
  const float p2 = values[*r1];
  const float h = x2 - x1;

  const float x0 = static_cast<float>(l2.value_or(*l1));
  const float x3 = static_cast<float>(r2.value_or(*r1));
  const float p0 = values[l2.value_or(*l1)];
  const float p3 = values[r2.value_or(*r1)];

  // One-sided differences when an outer anchor is missing (clamped).
  const float m1 = (x2 > x0) ? h * (p2 - p0) / (x2 - x0) : (p2 - p1);
  const float m2 = (x3 > x1) ? h * (p3 - p1) / (x3 - x1) : (p2 - p1);

  for (std::size_t i = seg.begin; i <= seg.end; ++i) {
    const float t = (static_cast<float>(i) - x1) / h;
    const float t2 = t * t;
    const float t3 = t2 * t;
    const float v = (2 * t3 - 3 * t2 + 1) * p1 + (t3 - 2 * t2 + t) * m1 +
                    (-2 * t3 + 3 * t2) * p2 + (t3 - t2) * m2;
    // Cubic Hermite can overshoot the anchor range on steep tangents; the
    // repaired quantity is a non-negative traffic volume, so clamp at zero.
    values[i] = std::max(0.0f, v);
  }
}

}  // namespace

float catmull_rom(float p0, float p1, float p2, float p3, float t) {
  const float t2 = t * t;
  const float t3 = t2 * t;
  return 0.5f * ((2.0f * p1) + (-p0 + p2) * t +
                 (2.0f * p0 - 5.0f * p1 + 4.0f * p2 - p3) * t2 +
                 (-p0 + 3.0f * p1 - 3.0f * p2 + p3) * t3);
}

void impute_segments(std::vector<float>& values,
                     const std::vector<Segment>& segments,
                     const std::vector<std::uint8_t>& flags,
                     const ImputationConfig& cfg,
                     const std::vector<float>* reconstruction) {
  EVFL_REQUIRE(flags.size() == values.size(),
               "impute_segments: flags/values length mismatch");
  if (cfg.method == ImputationMethod::kModelReconstruction) {
    EVFL_REQUIRE(reconstruction != nullptr &&
                     reconstruction->size() == values.size(),
                 "model-reconstruction imputation needs a reconstruction "
                 "aligned with the series");
  }
  for (const Segment& seg : segments) {
    EVFL_REQUIRE(seg.begin <= seg.end && seg.end < values.size(),
                 "impute_segments: segment out of range");
    switch (cfg.method) {
      case ImputationMethod::kLinear:
        interpolate_segments(values, {seg});
        break;
      case ImputationMethod::kSeasonalNaive:
        EVFL_REQUIRE(cfg.season > 0, "seasonal imputation needs season > 0");
        impute_seasonal(values, seg, flags, cfg.season);
        break;
      case ImputationMethod::kSpline:
        impute_spline(values, seg, flags);
        break;
      case ImputationMethod::kModelReconstruction:
        for (std::size_t i = seg.begin; i <= seg.end; ++i) {
          values[i] = (*reconstruction)[i];
        }
        break;
    }
  }
}

}  // namespace evfl::anomaly
