// Block quantization shared by the wire codec (fl/codec) and the serving
// engine (forecast/engine): values are grouped into fixed-size blocks of
// kQuantBlock floats, each block carrying one fp32 scale (maxabs / qmax)
// and signed integer codes.  An all-zero block gets scale 0 and zero
// codes, so dequantization is exact there.
//
// The codec quantizes update deltas for the wire; the engine quantizes
// frozen model weights for cache footprint and int8 arithmetic.  Both must
// agree on the grid, so the helpers live here — fl/wire_detail.hpp
// re-exports quant_qmax for the wire TUs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace evfl::nn {

/// Values per quantization block; one fp32 scale is stored per block.
inline constexpr std::size_t kQuantBlockSize = 256;

/// Symmetric quantization grid: b bits store integers in [-qmax, qmax].
inline int quant_qmax(int bits) { return (1 << (bits - 1)) - 1; }

/// Block-quantize `count` values from `src`: per-block fp32 scale
/// (maxabs / qmax) into `scales`, rounded signed integers into `quants`.
/// Buffers are resized (capacity reused), so steady-state calls with a
/// stable `count` do not allocate.
inline void block_quantize(const float* src, std::size_t count, int bits,
                           std::vector<float>& scales,
                           std::vector<std::int8_t>& quants) {
  const int qmax = quant_qmax(bits);
  const std::size_t blocks = (count + kQuantBlockSize - 1) / kQuantBlockSize;
  scales.resize(blocks);
  quants.resize(count);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kQuantBlockSize;
    const std::size_t hi = std::min(lo + kQuantBlockSize, count);
    float maxabs = 0.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      maxabs = std::max(maxabs, std::fabs(src[i]));
    }
    const float scale = maxabs > 0.0f ? maxabs / static_cast<float>(qmax)
                                      : 0.0f;
    scales[b] = scale;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      const float q = std::nearbyint(src[i] * inv);
      quants[i] = static_cast<std::int8_t>(
          std::clamp(static_cast<int>(q), -qmax, qmax));
    }
  }
}

/// Reconstruct one value from its code and its block's scale.
inline float dequantize(std::int8_t code, float scale) {
  return static_cast<float>(code) * scale;
}

/// Dequantize `count` codes (scales indexed per kQuantBlockSize block) into
/// `out`, which must hold `count` floats.
inline void block_dequantize(const std::int8_t* quants, const float* scales,
                             std::size_t count, float* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = dequantize(quants[i], scales[i / kQuantBlockSize]);
  }
}

}  // namespace evfl::nn
