#include "nn/activation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace evfl::nn {

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kLinear: return "linear";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "?";
}

float sigmoidf(float x) {
  // Branch on sign for numerical stability at large |x|.
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float apply_activation(Activation a, float x) {
  switch (a) {
    case Activation::kLinear: return x;
    case Activation::kRelu: return x > 0.0f ? x : 0.0f;
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return sigmoidf(x);
  }
  EVFL_ASSERT(false, "unknown activation");
  return 0.0f;
}

float activation_grad_from_output(Activation a, float y) {
  switch (a) {
    case Activation::kLinear: return 1.0f;
    case Activation::kRelu: return y > 0.0f ? 1.0f : 0.0f;
    case Activation::kTanh: return 1.0f - y * y;
    case Activation::kSigmoid: return y * (1.0f - y);
  }
  EVFL_ASSERT(false, "unknown activation");
  return 0.0f;
}

void apply_activation(Activation a, tensor::Matrix& m) {
  if (a == Activation::kLinear) return;
  float* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) p[i] = apply_activation(a, p[i]);
}

}  // namespace evfl::nn
