// RepeatVector(T): tile a [N, 1, F] encoding across T timesteps so a decoder
// LSTM can unroll it back into a sequence (Keras RepeatVector equivalent).
#pragma once

#include "nn/layer.hpp"

namespace evfl::nn {

class RepeatVector : public Layer {
 public:
  explicit RepeatVector(std::size_t repeats);

  Tensor3 forward(const Tensor3& input, bool training) override;
  Tensor3 backward(const Tensor3& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<RepeatVector>(*this);
  }

 private:
  std::size_t repeats_;
};

}  // namespace evfl::nn
