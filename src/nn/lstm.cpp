#include "nn/lstm.hpp"

#include <cmath>

#include "nn/activation.hpp"
#include "tensor/init.hpp"

namespace evfl::nn {

namespace {

/// Copy gate block `g` (0..3) out of a fused [N, 4H] matrix.
Matrix gate_block(const Matrix& z, std::size_t g, std::size_t h) {
  Matrix out(z.rows(), h);
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const float* src = z.row(r) + g * h;
    float* dst = out.row(r);
    for (std::size_t c = 0; c < h; ++c) dst[c] = src[c];
  }
  return out;
}

/// Write gate block `g` into a fused [N, 4H] matrix.
void set_gate_block(Matrix& z, std::size_t g, const Matrix& block) {
  const std::size_t h = block.cols();
  for (std::size_t r = 0; r < z.rows(); ++r) {
    float* dst = z.row(r) + g * h;
    const float* src = block.row(r);
    for (std::size_t c = 0; c < h; ++c) dst[c] = src[c];
  }
}

}  // namespace

Lstm::Lstm(std::size_t units, bool return_sequences, Rng& rng,
           std::size_t input_features)
    : units_(units), return_sequences_(return_sequences), rng_(&rng) {
  EVFL_REQUIRE(units > 0, "Lstm needs units > 0");
  if (input_features > 0) ensure_built(input_features);
}

void Lstm::ensure_built(std::size_t input_features) {
  if (!wx_.empty()) {
    if (wx_.rows() != input_features) {
      throw ShapeError("Lstm built for " + std::to_string(wx_.rows()) +
                       " inputs, got " + std::to_string(input_features));
    }
    return;
  }
  const std::size_t h = units_;
  wx_ = tensor::glorot_uniform(input_features, 4 * h, *rng_);
  // Per-gate orthogonal recurrent kernel.
  wh_ = Matrix(h, 4 * h);
  for (std::size_t g = 0; g < 4; ++g) {
    const Matrix block = tensor::orthogonal(h, h, *rng_);
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < h; ++c) wh_(r, g * h + c) = block(r, c);
    }
  }
  b_ = Matrix(1, 4 * h);
  for (std::size_t c = 0; c < h; ++c) b_(0, h + c) = 1.0f;  // forget bias

  gwx_ = Matrix(input_features, 4 * h);
  gwh_ = Matrix(h, 4 * h);
  gb_ = Matrix(1, 4 * h);
}

Tensor3 Lstm::forward(const Tensor3& input, bool /*training*/) {
  ensure_built(input.features());
  const std::size_t n = input.batch(), t_len = input.time(), h = units_;
  EVFL_REQUIRE(t_len > 0, "Lstm forward needs time >= 1");
  cached_n_ = n;
  cached_t_ = t_len;
  cached_in_ = input.features();
  cache_.assign(t_len, StepCache{});

  Matrix h_state(n, h);
  Matrix c_state(n, h);
  Tensor3 out_seq(n, return_sequences_ ? t_len : 1, h);

  for (std::size_t t = 0; t < t_len; ++t) {
    StepCache& sc = cache_[t];
    sc.x = input.timestep(t);
    sc.h_prev = h_state;
    sc.c_prev = c_state;

    // Fused pre-activation Z = x·Wx + h·Wh + b.
    Matrix z(n, 4 * h);
    z.add_row_broadcast(b_);
    matmul_acc(sc.x, wx_, z);
    matmul_acc(sc.h_prev, wh_, z);

    sc.i = gate_block(z, 0, h);
    sc.f = gate_block(z, 1, h);
    sc.g = gate_block(z, 2, h);
    sc.o = gate_block(z, 3, h);
    apply_activation(Activation::kSigmoid, sc.i);
    apply_activation(Activation::kSigmoid, sc.f);
    apply_activation(Activation::kTanh, sc.g);
    apply_activation(Activation::kSigmoid, sc.o);

    // c = f ⊙ c_prev + i ⊙ g ;  h = o ⊙ tanh(c)
    for (std::size_t idx = 0; idx < n * h; ++idx) {
      c_state.data()[idx] = sc.f.data()[idx] * sc.c_prev.data()[idx] +
                            sc.i.data()[idx] * sc.g.data()[idx];
    }
    sc.c_tanh = c_state;
    apply_activation(Activation::kTanh, sc.c_tanh);
    for (std::size_t idx = 0; idx < n * h; ++idx) {
      h_state.data()[idx] = sc.o.data()[idx] * sc.c_tanh.data()[idx];
    }

    if (return_sequences_) {
      out_seq.set_timestep(t, h_state);
    }
  }
  if (!return_sequences_) {
    out_seq.set_timestep(0, h_state);
  }
  return out_seq;
}

Tensor3 Lstm::backward(const Tensor3& grad_output) {
  EVFL_ASSERT(!cache_.empty(), "Lstm::backward before forward");
  const std::size_t n = cached_n_, t_len = cached_t_, h = units_;
  if (return_sequences_) {
    EVFL_REQUIRE(grad_output.batch() == n && grad_output.time() == t_len &&
                     grad_output.features() == h,
                 "Lstm backward grad shape mismatch (sequences)");
  } else {
    EVFL_REQUIRE(grad_output.batch() == n && grad_output.time() == 1 &&
                     grad_output.features() == h,
                 "Lstm backward grad shape mismatch (last step)");
  }

  Tensor3 dx(n, t_len, cached_in_);
  Matrix dh_next(n, h);  // dL/dh_t flowing from step t+1
  Matrix dc_next(n, h);  // dL/dc_t flowing from step t+1

  for (std::size_t ti = t_len; ti-- > 0;) {
    const StepCache& sc = cache_[ti];

    Matrix dh = dh_next;
    if (return_sequences_) {
      dh += grad_output.timestep(ti);
    } else if (ti == t_len - 1) {
      dh += grad_output.timestep(0);
    }

    // dc = dh ⊙ o ⊙ (1 - tanh(c)^2) + dc_next
    Matrix dc(n, h);
    for (std::size_t idx = 0; idx < n * h; ++idx) {
      const float ct = sc.c_tanh.data()[idx];
      dc.data()[idx] = dh.data()[idx] * sc.o.data()[idx] * (1.0f - ct * ct) +
                       dc_next.data()[idx];
    }

    // Gate pre-activation gradients, fused into dZ [N, 4H].
    Matrix dz(n, 4 * h);
    {
      Matrix dzi(n, h), dzf(n, h), dzg(n, h), dzo(n, h);
      for (std::size_t idx = 0; idx < n * h; ++idx) {
        const float i = sc.i.data()[idx], f = sc.f.data()[idx];
        const float g = sc.g.data()[idx], o = sc.o.data()[idx];
        const float dci = dc.data()[idx];
        dzi.data()[idx] = dci * g * i * (1.0f - i);
        dzf.data()[idx] = dci * sc.c_prev.data()[idx] * f * (1.0f - f);
        dzg.data()[idx] = dci * i * (1.0f - g * g);
        dzo.data()[idx] = dh.data()[idx] * sc.c_tanh.data()[idx] * o * (1.0f - o);
      }
      set_gate_block(dz, 0, dzi);
      set_gate_block(dz, 1, dzf);
      set_gate_block(dz, 2, dzg);
      set_gate_block(dz, 3, dzo);
    }

    matmul_tn_acc(sc.x, dz, gwx_);       // gWx += xᵀ · dZ
    matmul_tn_acc(sc.h_prev, dz, gwh_);  // gWh += h_prevᵀ · dZ
    gb_ += dz.col_sums();

    dx.set_timestep(ti, matmul_nt(dz, wx_));  // dx_t = dZ · Wxᵀ
    dh_next = matmul_nt(dz, wh_);             // dh_prev = dZ · Whᵀ
    // dc_prev = dc ⊙ f
    for (std::size_t idx = 0; idx < n * h; ++idx) {
      dc_next.data()[idx] = dc.data()[idx] * sc.f.data()[idx];
    }
  }
  return dx;
}

std::vector<ParamRef> Lstm::params() {
  EVFL_ASSERT(!wx_.empty(), "Lstm::params before build");
  return {{"lstm.wx", &wx_, &gwx_},
          {"lstm.wh", &wh_, &gwh_},
          {"lstm.b", &b_, &gb_}};
}

std::size_t Lstm::output_features(std::size_t /*input_features*/) const {
  return units_;
}

std::string Lstm::name() const {
  return "Lstm(" + std::to_string(units_) +
         (return_sequences_ ? ", seq" : ", last") + ")";
}

}  // namespace evfl::nn
