#include "nn/lstm.hpp"

#include <cmath>

#include "nn/activation.hpp"
#include "tensor/init.hpp"

namespace evfl::nn {

namespace {

/// Reshape `m` to [rows x cols] only when needed, preserving storage (and
/// thus avoiding an allocation) when the shape already matches.
void ensure_shape(Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) m = Matrix(rows, cols);
}

}  // namespace

Lstm::Lstm(std::size_t units, bool return_sequences, Rng& rng,
           std::size_t input_features)
    : units_(units), return_sequences_(return_sequences), rng_(&rng) {
  EVFL_REQUIRE(units > 0, "Lstm needs units > 0");
  if (input_features > 0) ensure_built(input_features);
}

void Lstm::ensure_built(std::size_t input_features) {
  if (!wx_.empty()) {
    if (wx_.rows() != input_features) {
      throw ShapeError("Lstm built for " + std::to_string(wx_.rows()) +
                       " inputs, got " + std::to_string(input_features));
    }
    return;
  }
  const std::size_t h = units_;
  wx_ = tensor::glorot_uniform(input_features, 4 * h, *rng_);
  // Per-gate orthogonal recurrent kernel.
  wh_ = Matrix(h, 4 * h);
  for (std::size_t g = 0; g < 4; ++g) {
    const Matrix block = tensor::orthogonal(h, h, *rng_);
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < h; ++c) wh_(r, g * h + c) = block(r, c);
    }
  }
  b_ = Matrix(1, 4 * h);
  for (std::size_t c = 0; c < h; ++c) b_(0, h + c) = 1.0f;  // forget bias

  gwx_ = Matrix(input_features, 4 * h);
  gwh_ = Matrix(h, 4 * h);
  gb_ = Matrix(1, 4 * h);
}

Tensor3 Lstm::forward(const Tensor3& input, bool /*training*/) {
  ensure_built(input.features());
  const std::size_t n = input.batch(), t_len = input.time(), h = units_;
  EVFL_REQUIRE(t_len > 0, "Lstm forward needs time >= 1");
  if (cached_n_ != n || cached_t_ != t_len || cached_in_ != input.features()) {
    cache_.assign(t_len, StepCache{});
    cached_n_ = n;
    cached_t_ = t_len;
    cached_in_ = input.features();
  }

  ensure_shape(h_state_, n, h);
  ensure_shape(c_state_, n, h);
  h_state_.set_zero();
  c_state_.set_zero();
  Tensor3 out_seq(n, return_sequences_ ? t_len : 1, h);

  for (std::size_t t = 0; t < t_len; ++t) {
    StepCache& sc = cache_[t];
    input.copy_timestep_into(t, sc.x);
    sc.h_prev = h_state_;  // same-shape copy: storage reused, no alloc
    sc.c_prev = c_state_;

    // Fused pre-activation Z = x·Wx + h·Wh + b, activated in place so the
    // gate blocks [i | f | g | o] live inside z with stride 4H.
    ensure_shape(sc.z, n, 4 * h);
    sc.z.set_zero();
    sc.z.add_row_broadcast(b_);
    matmul_acc(sc.x, wx_, sc.z);
    matmul_acc(sc.h_prev, wh_, sc.z);

    for (std::size_t r = 0; r < n; ++r) {
      float* zrow = sc.z.row(r);
      for (std::size_t c = 0; c < 2 * h; ++c) zrow[c] = sigmoidf(zrow[c]);
      for (std::size_t c = 2 * h; c < 3 * h; ++c) zrow[c] = std::tanh(zrow[c]);
      for (std::size_t c = 3 * h; c < 4 * h; ++c) zrow[c] = sigmoidf(zrow[c]);
    }

    // c = f ⊙ c_prev + i ⊙ g ;  h = o ⊙ tanh(c)
    for (std::size_t r = 0; r < n; ++r) {
      const float* zi = sc.z.row(r);
      const float* zf = zi + h;
      const float* zg = zi + 2 * h;
      const float* cp = sc.c_prev.row(r);
      float* cs = c_state_.row(r);
      for (std::size_t c = 0; c < h; ++c) {
        cs[c] = zf[c] * cp[c] + zi[c] * zg[c];
      }
    }
    sc.c_tanh = c_state_;
    apply_activation(Activation::kTanh, sc.c_tanh);
    for (std::size_t r = 0; r < n; ++r) {
      const float* zo = sc.z.row(r) + 3 * h;
      const float* ct = sc.c_tanh.row(r);
      float* hs = h_state_.row(r);
      for (std::size_t c = 0; c < h; ++c) hs[c] = zo[c] * ct[c];
    }

    if (return_sequences_) {
      out_seq.set_timestep(t, h_state_);
    }
  }
  if (!return_sequences_) {
    out_seq.set_timestep(0, h_state_);
  }
  return out_seq;
}

Tensor3 Lstm::backward(const Tensor3& grad_output) {
  EVFL_ASSERT(!cache_.empty(), "Lstm::backward before forward");
  const std::size_t n = cached_n_, t_len = cached_t_, h = units_;
  if (return_sequences_) {
    EVFL_REQUIRE(grad_output.batch() == n && grad_output.time() == t_len &&
                     grad_output.features() == h,
                 "Lstm backward grad shape mismatch (sequences)");
  } else {
    EVFL_REQUIRE(grad_output.batch() == n && grad_output.time() == 1 &&
                     grad_output.features() == h,
                 "Lstm backward grad shape mismatch (last step)");
  }

  Tensor3 dx(n, t_len, cached_in_);
  ensure_shape(bwd_dh_, n, h);        // dh_t: dZ·Whᵀ from step t+1, + grads
  ensure_shape(bwd_dc_, n, h);
  ensure_shape(bwd_dc_next_, n, h);   // dL/dc_t flowing from step t+1
  ensure_shape(bwd_dz_, n, 4 * h);
  ensure_shape(bwd_dx_step_, n, cached_in_);
  bwd_dh_.set_zero();
  bwd_dc_next_.set_zero();

  for (std::size_t ti = t_len; ti-- > 0;) {
    const StepCache& sc = cache_[ti];

    // dh = dh_next + incoming grad for this step (bwd_dh_ already holds
    // dZ·Whᵀ from the step above; the last step starts from zero).
    if (return_sequences_ || ti == t_len - 1) {
      const std::size_t got = return_sequences_ ? ti : 0;
      for (std::size_t r = 0; r < n; ++r) {
        const float* src =
            grad_output.data() + (r * grad_output.time() + got) * h;
        float* dst = bwd_dh_.row(r);
        for (std::size_t c = 0; c < h; ++c) dst[c] += src[c];
      }
    }

    // dc = dh ⊙ o ⊙ (1 - tanh(c)^2) + dc_next
    for (std::size_t r = 0; r < n; ++r) {
      const float* zo = sc.z.row(r) + 3 * h;
      const float* ct = sc.c_tanh.row(r);
      const float* dhp = bwd_dh_.row(r);
      const float* dcn = bwd_dc_next_.row(r);
      float* dcp = bwd_dc_.row(r);
      for (std::size_t c = 0; c < h; ++c) {
        const float t = ct[c];
        dcp[c] = dhp[c] * zo[c] * (1.0f - t * t) + dcn[c];
      }
    }

    // Gate pre-activation gradients, written straight into the fused
    // dZ [N, 4H] blocks — no per-gate temporaries.
    for (std::size_t r = 0; r < n; ++r) {
      const float* zi = sc.z.row(r);
      const float* zf = zi + h;
      const float* zg = zi + 2 * h;
      const float* zo = zi + 3 * h;
      const float* cp = sc.c_prev.row(r);
      const float* ct = sc.c_tanh.row(r);
      const float* dhp = bwd_dh_.row(r);
      const float* dcp = bwd_dc_.row(r);
      float* dzrow = bwd_dz_.row(r);
      for (std::size_t c = 0; c < h; ++c) {
        const float i = zi[c], f = zf[c], g = zg[c], o = zo[c];
        const float dci = dcp[c];
        dzrow[c] = dci * g * i * (1.0f - i);
        dzrow[h + c] = dci * cp[c] * f * (1.0f - f);
        dzrow[2 * h + c] = dci * i * (1.0f - g * g);
        dzrow[3 * h + c] = dhp[c] * ct[c] * o * (1.0f - o);
      }
    }

    matmul_tn_acc(sc.x, bwd_dz_, gwx_);       // gWx += xᵀ · dZ
    matmul_tn_acc(sc.h_prev, bwd_dz_, gwh_);  // gWh += h_prevᵀ · dZ
    bwd_dz_.col_sums_into(bwd_col_sums_);
    gb_ += bwd_col_sums_;

    bwd_dx_step_.set_zero();
    matmul_nt_acc(bwd_dz_, wx_, bwd_dx_step_);  // dx_t = dZ · Wxᵀ
    dx.set_timestep(ti, bwd_dx_step_);

    bwd_dh_.set_zero();
    matmul_nt_acc(bwd_dz_, wh_, bwd_dh_);  // dh_prev = dZ · Whᵀ

    // dc_prev = dc ⊙ f
    for (std::size_t r = 0; r < n; ++r) {
      const float* zf = sc.z.row(r) + h;
      const float* dcp = bwd_dc_.row(r);
      float* dcn = bwd_dc_next_.row(r);
      for (std::size_t c = 0; c < h; ++c) dcn[c] = dcp[c] * zf[c];
    }
  }
  return dx;
}

std::vector<ParamRef> Lstm::params() {
  EVFL_ASSERT(!wx_.empty(), "Lstm::params before build");
  return {{"lstm.wx", &wx_, &gwx_},
          {"lstm.wh", &wh_, &gwh_},
          {"lstm.b", &b_, &gb_}};
}

std::size_t Lstm::output_features(std::size_t /*input_features*/) const {
  return units_;
}

std::string Lstm::name() const {
  return "Lstm(" + std::to_string(units_) +
         (return_sequences_ ? ", seq" : ", last") + ")";
}

}  // namespace evfl::nn
