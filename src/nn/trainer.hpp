// Mini-batch training loop with optional validation-loss early stopping
// (the paper trains its autoencoder with patience = 10) and best-weight
// restoration.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "runtime/run_context.hpp"

namespace evfl::nn {

struct EarlyStopping {
  std::size_t patience = 10;
  float min_delta = 0.0f;
  bool restore_best_weights = true;
};

struct FitConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  bool shuffle = true;
  std::optional<EarlyStopping> early_stopping;
  /// Optional per-epoch observer: (epoch, train_loss, val_loss-or-NaN).
  std::function<void(std::size_t, float, float)> on_epoch_end;
};

struct FitHistory {
  std::vector<float> train_loss;
  std::vector<float> val_loss;     // empty when no validation set given
  std::size_t epochs_run = 0;
  bool stopped_early = false;
};

class Trainer {
 public:
  Trainer(Sequential& model, Loss& loss, Optimizer& optimizer, Rng& rng)
      : model_(&model), loss_(&loss), optimizer_(&optimizer), rng_(&rng) {}

  /// Train on (x, y); optionally validate on (x_val, y_val) each epoch.
  /// Training itself stays sequential per model (weight updates must apply
  /// in mini-batch order for determinism); a RunContext only parallelizes
  /// the per-epoch validation evaluation.
  FitHistory fit(const Tensor3& x, const Tensor3& y, const FitConfig& cfg,
                 const Tensor3* x_val = nullptr,
                 const Tensor3* y_val = nullptr,
                 const runtime::RunContext* ctx = nullptr);

  /// Average loss over a dataset, evaluated in inference mode batch-wise.
  /// With a RunContext, batch slices are scored concurrently on model
  /// clones and reduced in batch order — bit-identical to the serial path.
  float evaluate(const Tensor3& x, const Tensor3& y,
                 std::size_t batch_size = 256,
                 const runtime::RunContext* ctx = nullptr);

  /// One gradient step on a single batch; returns the batch loss.
  float train_batch(const Tensor3& x, const Tensor3& y);

 private:
  Sequential* model_;
  Loss* loss_;
  Optimizer* optimizer_;
  Rng* rng_;
  // Parameter refs resolved once after the first forward pass (layers build
  // lazily); Matrix addresses are stable for the model's lifetime, so the
  // per-step params() vector rebuild would be pure allocation churn.
  std::vector<ParamRef> param_refs_;
};

/// Inference over a dataset in batches (memory-bounded).  With a
/// RunContext, batches run concurrently on model clones, each writing its
/// disjoint output slice — bit-identical to the serial path.
Tensor3 predict_batched(Sequential& model, const Tensor3& x,
                        std::size_t batch_size = 256,
                        const runtime::RunContext* ctx = nullptr);

}  // namespace evfl::nn
