#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"

namespace evfl::nn {

namespace {
void require_same(const Tensor3& pred, const Tensor3& target) {
  if (!pred.same_shape(target)) {
    throw ShapeError("loss: pred " + pred.shape_str() + " vs target " +
                             target.shape_str());
  }
}
}  // namespace

LossResult MseLoss::value_and_grad(const Tensor3& pred,
                                   const Tensor3& target) const {
  require_same(pred, target);
  const std::size_t n = pred.size();
  LossResult r;
  r.grad = Tensor3(pred.batch(), pred.time(), pred.features());
  double acc = 0.0;
  const float inv = 2.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred.data()[i] - target.data()[i];
    acc += static_cast<double>(d) * d;
    r.grad.data()[i] = inv * d;
  }
  r.value = static_cast<float>(acc / static_cast<double>(n));
  return r;
}

float MseLoss::value(const Tensor3& pred, const Tensor3& target) const {
  require_same(pred, target);
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred.data()[i] - target.data()[i];
    acc += static_cast<double>(d) * d;
  }
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

LossResult MaeLoss::value_and_grad(const Tensor3& pred,
                                   const Tensor3& target) const {
  require_same(pred, target);
  const std::size_t n = pred.size();
  LossResult r;
  r.grad = Tensor3(pred.batch(), pred.time(), pred.features());
  double acc = 0.0;
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred.data()[i] - target.data()[i];
    acc += std::abs(d);
    r.grad.data()[i] = d > 0.0f ? inv : (d < 0.0f ? -inv : 0.0f);
  }
  r.value = static_cast<float>(acc / static_cast<double>(n));
  return r;
}

float MaeLoss::value(const Tensor3& pred, const Tensor3& target) const {
  require_same(pred, target);
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    acc += std::abs(pred.data()[i] - target.data()[i]);
  }
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

}  // namespace evfl::nn
