// Optimizers.  State (Adam moments) is keyed by parameter order, so an
// optimizer instance must be paired with one model for its lifetime; after
// FedAvg replaces a client's weights the moments intentionally persist, as
// Keras does across manual set_weights calls.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace evfl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the gradients currently in `params`.
  virtual void step(std::vector<ParamRef>& params) = 0;
  virtual void reset_state() = 0;
  virtual float learning_rate() const = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void step(std::vector<ParamRef>& params) override;
  void reset_state() override;
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with Keras defaults; the paper uses lr = 1e-3.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-7f);
  void step(std::vector<ParamRef>& params) override;
  void reset_state() override;
  float learning_rate() const override { return lr_; }
  std::size_t step_count() const { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace evfl::nn
