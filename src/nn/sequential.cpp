#include "nn/sequential.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace evfl::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  EVFL_REQUIRE(layer != nullptr, "Sequential::add null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& l : layers_) copy.layers_.push_back(l->clone());
  return copy;
}

Tensor3 Sequential::forward(const Tensor3& input, bool training) {
  EVFL_REQUIRE(!layers_.empty(), "Sequential has no layers");
  Tensor3 x = input;
  for (auto& l : layers_) x = l->forward(x, training);
  return x;
}

Tensor3 Sequential::backward(const Tensor3& grad_output) {
  Tensor3 g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& l : layers_) {
    for (ParamRef& p : l->params()) out.push_back(p);
  }
  return out;
}

void Sequential::zero_grads() {
  for (auto& l : layers_) l->zero_grads();
}

std::size_t Sequential::weight_count() {
  std::size_t n = 0;
  for (ParamRef& p : params()) n += p.value->size();
  return n;
}

std::vector<float> Sequential::get_weights() {
  std::vector<float> flat;
  flat.reserve(weight_count());
  for (ParamRef& p : params()) {
    flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
  }
  return flat;
}

void Sequential::set_weights(const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (ParamRef& p : params()) {
    const std::size_t n = p.value->size();
    EVFL_REQUIRE(offset + n <= flat.size(),
                 "set_weights: vector too short for model");
    std::copy(flat.begin() + offset, flat.begin() + offset + n,
              p.value->data());
    offset += n;
  }
  EVFL_REQUIRE(offset == flat.size(),
               "set_weights: vector larger than model (" +
                   std::to_string(flat.size()) + " vs " +
                   std::to_string(offset) + ")");
}

std::vector<float> Sequential::get_grads() {
  std::vector<float> flat;
  for (ParamRef& p : params()) {
    flat.insert(flat.end(), p.grad->data(), p.grad->data() + p.grad->size());
  }
  return flat;
}

namespace {
constexpr std::uint32_t kWeightsMagic = 0x4C57'5645;  // "EVWL"

std::uint32_t weights_checksum(const std::vector<float>& w) {
  // FNV-1a over the raw bytes: cheap, adequate for corruption detection.
  std::uint32_t h = 2166136261u;
  const auto* p = reinterpret_cast<const unsigned char*>(w.data());
  for (std::size_t i = 0; i < w.size() * sizeof(float); ++i) {
    h = (h ^ p[i]) * 16777619u;
  }
  return h;
}
}  // namespace

void Sequential::save_weights(const std::string& path) {
  const std::vector<float> w = get_weights();
  std::ofstream os(path, std::ios::binary);
  EVFL_REQUIRE(static_cast<bool>(os), "cannot open for write: " + path);
  const std::uint64_t count = w.size();
  const std::uint32_t crc = weights_checksum(w);
  os.write(reinterpret_cast<const char*>(&kWeightsMagic), sizeof(kWeightsMagic));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  os.write(reinterpret_cast<const char*>(w.data()),
           static_cast<std::streamsize>(count * sizeof(float)));
  EVFL_REQUIRE(static_cast<bool>(os), "short write to " + path);
}

void Sequential::load_weights(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EVFL_REQUIRE(static_cast<bool>(is), "cannot open for read: " + path);
  std::uint32_t magic = 0, crc = 0;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  is.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!is || magic != kWeightsMagic) {
    throw FormatError("weights file: bad header in " + path);
  }
  if (count != weight_count()) {
    throw FormatError("weights file: " + std::to_string(count) +
                      " weights do not fit this model (" +
                      std::to_string(weight_count()) + ")");
  }
  std::vector<float> w(count);
  is.read(reinterpret_cast<char*>(w.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!is) throw FormatError("weights file: truncated payload in " + path);
  if (weights_checksum(w) != crc) {
    throw FormatError("weights file: checksum mismatch in " + path);
  }
  set_weights(w);
}

std::string Sequential::summary() {
  std::ostringstream os;
  os << "Sequential {\n";
  for (auto& l : layers_) {
    os << "  " << l->name();
    std::size_t n = 0;
    for (ParamRef& p : l->params()) n += p.value->size();
    if (n > 0) os << "  [" << n << " params]";
    os << "\n";
  }
  os << "}  total params: " << weight_count();
  return os.str();
}

}  // namespace evfl::nn
