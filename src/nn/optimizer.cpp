#include "nn/optimizer.hpp"

#include <cmath>

namespace evfl::nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  EVFL_REQUIRE(lr > 0.0f, "Sgd lr must be positive");
}

void Sgd::step(std::vector<ParamRef>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (ParamRef& p : params) {
      velocity_.emplace_back(p.value->rows(), p.value->cols());
    }
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    Matrix& w = *params[k].value;
    const Matrix& g = *params[k].grad;
    Matrix& vel = velocity_[k];
    for (std::size_t i = 0; i < w.size(); ++i) {
      vel.data()[i] = momentum_ * vel.data()[i] - lr_ * g.data()[i];
      w.data()[i] += vel.data()[i];
    }
  }
}

void Sgd::reset_state() { velocity_.clear(); }

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  EVFL_REQUIRE(lr > 0.0f, "Adam lr must be positive");
}

void Adam::step(std::vector<ParamRef>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    t_ = 0;
    for (ParamRef& p : params) {
      m_.emplace_back(p.value->rows(), p.value->cols());
      v_.emplace_back(p.value->rows(), p.value->cols());
    }
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float alpha = lr_ * std::sqrt(bc2) / bc1;

  for (std::size_t k = 0; k < params.size(); ++k) {
    Matrix& w = *params[k].value;
    const Matrix& g = *params[k].grad;
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    EVFL_ASSERT(w.same_shape(g) && w.same_shape(m),
                "Adam state/param shape drift");
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float gi = g.data()[i];
      m.data()[i] = beta1_ * m.data()[i] + (1.0f - beta1_) * gi;
      v.data()[i] = beta2_ * v.data()[i] + (1.0f - beta2_) * gi * gi;
      w.data()[i] -= alpha * m.data()[i] / (std::sqrt(v.data()[i]) + eps_);
    }
  }
}

void Adam::reset_state() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

}  // namespace evfl::nn
