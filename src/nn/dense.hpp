// Time-distributed fully connected layer: y[n,t,:] = act(x[n,t,:] · W + b).
// With time == 1 this is an ordinary Dense layer, so the same class serves
// both the forecaster head and the autoencoder's TimeDistributed(Dense(1)).
#pragma once

#include "nn/activation.hpp"
#include "nn/layer.hpp"

namespace evfl::nn {

class Dense : public Layer {
 public:
  /// Weights are created lazily on the first forward (input width inferred)
  /// unless `input_features` is given here.
  Dense(std::size_t units, Activation activation, Rng& rng,
        std::size_t input_features = 0);

  Tensor3 forward(const Tensor3& input, bool training) override;
  Tensor3 backward(const Tensor3& grad_output) override;
  std::vector<ParamRef> params() override;
  void zero_grads() override {
    if (gw_.empty()) return;
    gw_.set_zero();
    gb_.set_zero();
  }
  std::size_t output_features(std::size_t input_features) const override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }

  std::size_t units() const { return units_; }
  const Matrix& weights() const { return w_; }
  const Matrix& bias() const { return b_; }

 private:
  void ensure_built(std::size_t input_features);

  std::size_t units_;
  Activation activation_;
  Rng* rng_;

  Matrix w_;   // [in, units]
  Matrix b_;   // [1, units]
  Matrix gw_;
  Matrix gb_;

  // Forward caches for backward.
  Matrix cached_input_;    // [(n*t), in]
  Matrix cached_output_;   // [(n*t), units] post-activation
  std::size_t cached_n_ = 0;
  std::size_t cached_t_ = 0;
};

}  // namespace evfl::nn
