// Inverted dropout: activations are zeroed with probability `rate` during
// training and the survivors scaled by 1/(1-rate), so inference needs no
// rescaling.  The paper's autoencoder uses rate 0.2.
#pragma once

#include "nn/layer.hpp"

namespace evfl::nn {

class Dropout : public Layer {
 public:
  Dropout(float rate, Rng& rng);

  Tensor3 forward(const Tensor3& input, bool training) override;
  Tensor3 backward(const Tensor3& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng* rng_;
  Tensor3 mask_;        // scaled keep mask from last training forward
  bool mask_valid_ = false;
};

}  // namespace evfl::nn
