// Scalar activation functions and their derivatives.
#pragma once

#include <string>

#include "tensor/matrix.hpp"

namespace evfl::nn {

enum class Activation { kLinear, kRelu, kTanh, kSigmoid };

std::string to_string(Activation a);

float apply_activation(Activation a, float x);

/// Derivative expressed in terms of the *output* y = act(x) where possible
/// (tanh, sigmoid) — matches what the layers cache.
float activation_grad_from_output(Activation a, float y);

/// Apply in place over a whole matrix.
void apply_activation(Activation a, tensor::Matrix& m);

float sigmoidf(float x);

}  // namespace evfl::nn
