// Layer abstraction for the from-scratch neural-network substrate.
//
// Every layer maps a Tensor3 [batch, time, features] to another Tensor3 and
// supports a single cached backward pass (forward must precede backward on
// the same batch).  Parameters are exposed as (value, grad) matrix pairs so
// optimizers and the federated weight plumbing stay layer-agnostic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor3.hpp"

namespace evfl::nn {

using tensor::Matrix;
using tensor::Rng;
using tensor::Tensor3;

/// Non-owning reference to one trainable parameter and its gradient buffer.
struct ParamRef {
  std::string name;
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass.  `training` enables stochastic behaviour (dropout).
  virtual Tensor3 forward(const Tensor3& input, bool training) = 0;

  /// Backward pass for the most recent forward batch.  Accumulates parameter
  /// gradients into the layer's grad buffers and returns dLoss/dInput.
  virtual Tensor3 backward(const Tensor3& grad_output) = 0;

  /// Trainable parameters; empty for stateless layers.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Deep copy of the layer: parameters, lazily-built shapes and caches.
  /// Clones share the parent's Rng handle, so concurrent *inference* on
  /// clones is safe (inference never draws), while concurrent training on
  /// clones would race the generator and is not supported.
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Zero all parameter gradient buffers.
  /// Zero all gradient buffers.  Layers with parameters override this to
  /// hit their members directly — the default builds a params() vector,
  /// which is allocation churn in the training hot loop.
  virtual void zero_grads() {
    for (ParamRef& p : params()) p.grad->set_zero();
  }

  /// Output feature count for a given input feature count (shape inference).
  virtual std::size_t output_features(std::size_t input_features) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace evfl::nn
