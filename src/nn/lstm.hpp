// LSTM layer with full backpropagation through time.
//
// Gate layout follows the common [i | f | g | o] convention with a fused
// pre-activation Z = x·Wx + h·Wh + b of width 4*hidden.  The forget-gate
// bias initializes to 1 (standard remedy for early vanishing memory), the
// input kernel is Glorot uniform, and the recurrent kernel is per-gate
// orthogonal — the same recipe Keras uses for the paper's models.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace evfl::nn {

class Lstm : public Layer {
 public:
  /// `return_sequences` true yields [N, T, H]; false yields the final hidden
  /// state as [N, 1, H] (Keras LSTM(units) default).
  Lstm(std::size_t units, bool return_sequences, Rng& rng,
       std::size_t input_features = 0);

  Tensor3 forward(const Tensor3& input, bool training) override;
  Tensor3 backward(const Tensor3& grad_output) override;
  std::vector<ParamRef> params() override;
  std::size_t output_features(std::size_t input_features) const override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Lstm>(*this);
  }

  std::size_t units() const { return units_; }
  bool return_sequences() const { return return_sequences_; }

 private:
  void ensure_built(std::size_t input_features);

  std::size_t units_;
  bool return_sequences_;
  Rng* rng_;

  Matrix wx_;  // [in, 4H]
  Matrix wh_;  // [H, 4H]
  Matrix b_;   // [1, 4H]
  Matrix gwx_, gwh_, gb_;

  // Per-timestep caches from the last forward pass.
  struct StepCache {
    Matrix x;       // [N, in]
    Matrix h_prev;  // [N, H]
    Matrix c_prev;  // [N, H]
    Matrix i, f, g, o;  // gate activations, each [N, H]
    Matrix c_tanh;  // tanh(c_t), [N, H]
  };
  std::vector<StepCache> cache_;
  std::size_t cached_n_ = 0;
  std::size_t cached_t_ = 0;
  std::size_t cached_in_ = 0;
};

}  // namespace evfl::nn
