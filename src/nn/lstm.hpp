// LSTM layer with full backpropagation through time.
//
// Gate layout follows the common [i | f | g | o] convention with a fused
// pre-activation Z = x·Wx + h·Wh + b of width 4*hidden.  The forget-gate
// bias initializes to 1 (standard remedy for early vanishing memory), the
// input kernel is Glorot uniform, and the recurrent kernel is per-gate
// orthogonal — the same recipe Keras uses for the paper's models.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace evfl::nn {

class Lstm : public Layer {
 public:
  /// `return_sequences` true yields [N, T, H]; false yields the final hidden
  /// state as [N, 1, H] (Keras LSTM(units) default).
  Lstm(std::size_t units, bool return_sequences, Rng& rng,
       std::size_t input_features = 0);

  Tensor3 forward(const Tensor3& input, bool training) override;
  Tensor3 backward(const Tensor3& grad_output) override;
  std::vector<ParamRef> params() override;
  void zero_grads() override {
    if (gwx_.empty()) return;
    gwx_.set_zero();
    gwh_.set_zero();
    gb_.set_zero();
  }
  std::size_t output_features(std::size_t input_features) const override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Lstm>(*this);
  }

  std::size_t units() const { return units_; }
  bool return_sequences() const { return return_sequences_; }

 private:
  void ensure_built(std::size_t input_features);

  std::size_t units_;
  bool return_sequences_;
  Rng* rng_;

  Matrix wx_;  // [in, 4H]
  Matrix wh_;  // [H, 4H]
  Matrix b_;   // [1, 4H]
  Matrix gwx_, gwh_, gb_;

  // Per-timestep caches from the last forward pass.  Gate activations live
  // fused in `z` ([i | f | g | o] blocks of the pre-activation, activated
  // in place); backward reads them through col_block views instead of
  // materializing per-gate copies.  Caches are reused across steps and
  // epochs — same-shape reassignment never reallocates.
  struct StepCache {
    Matrix x;       // [N, in]
    Matrix h_prev;  // [N, H]
    Matrix c_prev;  // [N, H]
    Matrix z;       // [N, 4H] activated gates, fused
    Matrix c_tanh;  // tanh(c_t), [N, H]
  };
  std::vector<StepCache> cache_;
  std::size_t cached_n_ = 0;
  std::size_t cached_t_ = 0;
  std::size_t cached_in_ = 0;

  // Forward state + backward scratch, reused across calls so the steady
  // state allocates nothing.
  Matrix h_state_, c_state_;              // [N, H]
  Matrix bwd_dh_, bwd_dc_, bwd_dc_next_;  // [N, H]
  Matrix bwd_dz_;                         // [N, 4H]
  Matrix bwd_dx_step_;                    // [N, in]
  Matrix bwd_col_sums_;                   // [1, 4H]
};

}  // namespace evfl::nn
