#include "nn/dropout.hpp"

namespace evfl::nn {

Dropout::Dropout(float rate, Rng& rng) : rate_(rate), rng_(&rng) {
  EVFL_REQUIRE(rate >= 0.0f && rate < 1.0f, "Dropout rate must be in [0,1)");
}

Tensor3 Dropout::forward(const Tensor3& input, bool training) {
  if (!training || rate_ == 0.0f) {
    mask_valid_ = false;
    return input;
  }
  const float scale = 1.0f / (1.0f - rate_);
  mask_ = Tensor3(input.batch(), input.time(), input.features());
  Tensor3 out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float keep = rng_->bernoulli(1.0 - rate_) ? scale : 0.0f;
    mask_.data()[i] = keep;
    out.data()[i] *= keep;
  }
  mask_valid_ = true;
  return out;
}

Tensor3 Dropout::backward(const Tensor3& grad_output) {
  if (!mask_valid_) return grad_output;  // eval-mode forward was identity
  EVFL_REQUIRE(grad_output.same_shape(mask_),
               "Dropout backward shape mismatch");
  Tensor3 dx = grad_output;
  for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] *= mask_.data()[i];
  return dx;
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_) + ")";
}

}  // namespace evfl::nn
