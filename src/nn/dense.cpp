#include "nn/dense.hpp"

#include <cstring>

#include "runtime/workspace.hpp"
#include "tensor/init.hpp"

namespace evfl::nn {

Dense::Dense(std::size_t units, Activation activation, Rng& rng,
             std::size_t input_features)
    : units_(units), activation_(activation), rng_(&rng) {
  EVFL_REQUIRE(units > 0, "Dense needs units > 0");
  if (input_features > 0) ensure_built(input_features);
}

void Dense::ensure_built(std::size_t input_features) {
  if (!w_.empty()) {
    if (w_.rows() != input_features) {
      throw ShapeError("Dense built for " + std::to_string(w_.rows()) +
                       " inputs, got " + std::to_string(input_features));
    }
    return;
  }
  w_ = tensor::glorot_uniform(input_features, units_, *rng_);
  b_ = Matrix(1, units_);
  gw_ = Matrix(input_features, units_);
  gb_ = Matrix(1, units_);
}

Tensor3 Dense::forward(const Tensor3& input, bool /*training*/) {
  ensure_built(input.features());
  cached_n_ = input.batch();
  cached_t_ = input.time();
  input.flatten_rows_into(cached_input_);

  // Compute straight into the cached output; same-shape reuse means the
  // steady state allocates nothing.
  const std::size_t rows = cached_input_.rows();
  if (cached_output_.rows() != rows || cached_output_.cols() != units_) {
    cached_output_ = Matrix(rows, units_);
  } else {
    cached_output_.set_zero();
  }
  matmul_acc(cached_input_, w_, cached_output_);
  cached_output_.add_row_broadcast(b_);
  apply_activation(activation_, cached_output_);
  return Tensor3::from_flat_rows(cached_output_, cached_n_, cached_t_);
}

Tensor3 Dense::backward(const Tensor3& grad_output) {
  EVFL_ASSERT(!cached_input_.empty(), "Dense::backward before forward");
  const std::size_t rows = cached_output_.rows();
  const std::size_t cols = cached_output_.cols();
  if (grad_output.batch() * grad_output.time() != rows ||
      grad_output.features() != cols) {
    throw ShapeError("Dense::backward grad " + grad_output.shape_str() +
                     " vs output " + cached_output_.shape_str());
  }

  // dy and dx are step-local: borrow both from the thread's scratch lane
  // and run the view kernels over them directly.
  runtime::ScratchScope scratch(runtime::thread_workspace());
  tensor::MatView dy{scratch.borrow(rows * cols), rows, cols, cols};
  std::memcpy(dy.data, grad_output.data(), rows * cols * sizeof(float));

  // Chain through the activation using the cached outputs.
  if (activation_ != Activation::kLinear) {
    float* g = dy.data;
    const float* y = cached_output_.data();
    for (std::size_t i = 0; i < rows * cols; ++i) {
      g[i] *= activation_grad_from_output(activation_, y[i]);
    }
  }

  matmul_tn_acc(cached_input_.view(), dy, gw_.view());  // gw += xᵀ · dy
  {
    // gb += column sums of dy, accumulated in the usual row-major order.
    tensor::MatView sums{scratch.borrow_zeroed(cols), 1, cols, cols};
    for (std::size_t r = 0; r < rows; ++r) {
      const float* src = dy.row(r);
      for (std::size_t c = 0; c < cols; ++c) sums.data[c] += src[c];
    }
    float* gb = gb_.data();
    for (std::size_t c = 0; c < cols; ++c) gb[c] += sums.data[c];
  }

  const std::size_t in = w_.rows();
  tensor::MatView dx{scratch.borrow(rows * in), rows, in, in};
  dx.set_zero();
  matmul_nt_acc(dy, w_.view(), dx);  // dx = dy · wᵀ
  return Tensor3::from_flat_rows(tensor::ConstMatView(dx), cached_n_, cached_t_);
}

std::vector<ParamRef> Dense::params() {
  EVFL_ASSERT(!w_.empty(), "Dense::params before build");
  return {{"dense.w", &w_, &gw_}, {"dense.b", &b_, &gb_}};
}

std::size_t Dense::output_features(std::size_t /*input_features*/) const {
  return units_;
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(units_) + ", " + to_string(activation_) + ")";
}

}  // namespace evfl::nn
