#include "nn/dense.hpp"

#include "tensor/init.hpp"

namespace evfl::nn {

Dense::Dense(std::size_t units, Activation activation, Rng& rng,
             std::size_t input_features)
    : units_(units), activation_(activation), rng_(&rng) {
  EVFL_REQUIRE(units > 0, "Dense needs units > 0");
  if (input_features > 0) ensure_built(input_features);
}

void Dense::ensure_built(std::size_t input_features) {
  if (!w_.empty()) {
    if (w_.rows() != input_features) {
      throw ShapeError("Dense built for " + std::to_string(w_.rows()) +
                       " inputs, got " + std::to_string(input_features));
    }
    return;
  }
  w_ = tensor::glorot_uniform(input_features, units_, *rng_);
  b_ = Matrix(1, units_);
  gw_ = Matrix(input_features, units_);
  gb_ = Matrix(1, units_);
}

Tensor3 Dense::forward(const Tensor3& input, bool /*training*/) {
  ensure_built(input.features());
  cached_n_ = input.batch();
  cached_t_ = input.time();
  cached_input_ = input.flatten_rows();

  Matrix out = matmul(cached_input_, w_);
  out.add_row_broadcast(b_);
  apply_activation(activation_, out);
  cached_output_ = out;
  return Tensor3::from_flat_rows(out, cached_n_, cached_t_);
}

Tensor3 Dense::backward(const Tensor3& grad_output) {
  EVFL_ASSERT(!cached_input_.empty(), "Dense::backward before forward");
  Matrix dy = grad_output.flatten_rows();
  if (!dy.same_shape(cached_output_)) {
    throw ShapeError("Dense::backward grad " + dy.shape_str() +
                     " vs output " + cached_output_.shape_str());
  }

  // Chain through the activation using the cached outputs.
  if (activation_ != Activation::kLinear) {
    float* g = dy.data();
    const float* y = cached_output_.data();
    for (std::size_t i = 0; i < dy.size(); ++i) {
      g[i] *= activation_grad_from_output(activation_, y[i]);
    }
  }

  matmul_tn_acc(cached_input_, dy, gw_);  // gw += xᵀ · dy
  gb_ += dy.col_sums();
  Matrix dx = matmul_nt(dy, w_);          // dx = dy · wᵀ
  return Tensor3::from_flat_rows(dx, cached_n_, cached_t_);
}

std::vector<ParamRef> Dense::params() {
  EVFL_ASSERT(!w_.empty(), "Dense::params before build");
  return {{"dense.w", &w_, &gw_}, {"dense.b", &b_, &gb_}};
}

std::size_t Dense::output_features(std::size_t /*input_features*/) const {
  return units_;
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(units_) + ", " + to_string(activation_) + ")";
}

}  // namespace evfl::nn
