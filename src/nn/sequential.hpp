// Sequential model container: owns an ordered list of layers, runs
// forward/backward through them, and exposes the flat weight vector the
// federated-averaging plumbing exchanges between clients.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace evfl::nn {

class Sequential {
 public:
  Sequential() = default;

  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Deep copy via per-layer clone() — replicates a model so independent
  /// threads can run inference concurrently (each replica owns its caches).
  Sequential clone() const;

  /// Append a layer; returns *this for fluent building.
  Sequential& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  Tensor3 forward(const Tensor3& input, bool training);
  /// Convenience for inference.
  Tensor3 predict(const Tensor3& input) { return forward(input, false); }

  /// Backward through all layers; returns dLoss/dInput.
  Tensor3 backward(const Tensor3& grad_output);

  std::vector<ParamRef> params();
  void zero_grads();

  /// Total trainable scalar count.  Layers build lazily, so this (and the
  /// weight accessors) require a forward pass or explicit input sizes first.
  std::size_t weight_count();

  /// Flatten all parameters into one contiguous vector (layer order, then
  /// param order within layer, row-major within matrix).
  std::vector<float> get_weights();

  /// Inverse of get_weights; sizes must match exactly.
  void set_weights(const std::vector<float>& flat);

  /// Gradients in the same flat layout (for tests / analysis).
  std::vector<float> get_grads();

  /// Persist / restore the flat weight vector (binary, CRC-checked).  The
  /// architecture itself is code, not data: loading into a model of a
  /// different shape throws.
  void save_weights(const std::string& path);
  void load_weights(const std::string& path);

  std::string summary();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace evfl::nn
