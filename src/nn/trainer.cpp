#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace evfl::nn {

float Trainer::train_batch(const Tensor3& x, const Tensor3& y) {
  // Forward first: lazily-built layers create their parameter (and grad)
  // buffers on the first pass, after which they can be zeroed.
  const Tensor3 pred = model_->forward(x, /*training=*/true);
  model_->zero_grads();
  LossResult lr = loss_->value_and_grad(pred, y);
  model_->backward(lr.grad);
  if (param_refs_.empty()) param_refs_ = model_->params();
  optimizer_->step(param_refs_);
  return lr.value;
}

FitHistory Trainer::fit(const Tensor3& x, const Tensor3& y,
                        const FitConfig& cfg, const Tensor3* x_val,
                        const Tensor3* y_val,
                        const runtime::RunContext* ctx) {
  EVFL_REQUIRE(x.batch() == y.batch(), "fit: x/y batch mismatch");
  EVFL_REQUIRE(x.batch() > 0, "fit: empty dataset");
  EVFL_REQUIRE((x_val == nullptr) == (y_val == nullptr),
               "fit: validation x/y must be given together");

  const std::size_t n = x.batch();
  const std::size_t bs = std::max<std::size_t>(1, cfg.batch_size);

  FitHistory hist;
  float best_val = std::numeric_limits<float>::infinity();
  std::size_t bad_epochs = 0;
  std::vector<float> best_weights;

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::vector<std::size_t> order;
    if (cfg.shuffle) {
      order = rng_->permutation(n);
    } else {
      order.resize(n);
      for (std::size_t i = 0; i < n; ++i) order[i] = i;
    }

    double epoch_loss = 0.0;
    std::size_t seen = 0;
    std::vector<std::size_t> idx;
    idx.reserve(bs);
    for (std::size_t start = 0; start < n; start += bs) {
      const std::size_t end = std::min(n, start + bs);
      idx.assign(order.begin() + start, order.begin() + end);
      const Tensor3 xb = x.gather(idx);
      const Tensor3 yb = y.gather(idx);
      const float l = train_batch(xb, yb);
      epoch_loss += static_cast<double>(l) * static_cast<double>(end - start);
      seen += end - start;
    }
    const float train_loss = static_cast<float>(epoch_loss / seen);
    hist.train_loss.push_back(train_loss);
    hist.epochs_run = epoch + 1;

    float val_loss = std::numeric_limits<float>::quiet_NaN();
    if (x_val != nullptr) {
      val_loss = evaluate(*x_val, *y_val, 256, ctx);
      hist.val_loss.push_back(val_loss);
    }
    if (cfg.on_epoch_end) cfg.on_epoch_end(epoch, train_loss, val_loss);

    if (cfg.early_stopping && x_val != nullptr) {
      const EarlyStopping& es = *cfg.early_stopping;
      if (val_loss < best_val - es.min_delta) {
        best_val = val_loss;
        bad_epochs = 0;
        if (es.restore_best_weights) best_weights = model_->get_weights();
      } else {
        ++bad_epochs;
        if (bad_epochs > es.patience) {
          hist.stopped_early = true;
          if (es.restore_best_weights && !best_weights.empty()) {
            model_->set_weights(best_weights);
          }
          break;
        }
      }
    }
  }
  return hist;
}

float Trainer::evaluate(const Tensor3& x, const Tensor3& y,
                        std::size_t batch_size,
                        const runtime::RunContext* ctx) {
  EVFL_REQUIRE(x.batch() == y.batch(), "evaluate: x/y batch mismatch");
  batch_size = std::max<std::size_t>(1, batch_size);
  const std::size_t n_batches = (x.batch() + batch_size - 1) / batch_size;

  // Per-batch weighted losses land in slots so the final reduction runs in
  // batch order whether the batches were scored serially or concurrently.
  std::vector<double> partial(n_batches, 0.0);
  auto score_batches = [&](Sequential& model, std::size_t batch_begin,
                           std::size_t batch_end) {
    for (std::size_t k = batch_begin; k < batch_end; ++k) {
      const std::size_t start = k * batch_size;
      const std::size_t end = std::min(x.batch(), start + batch_size);
      const Tensor3 xb = x.batch_slice(start, end);
      const Tensor3 yb = y.batch_slice(start, end);
      const Tensor3 pred = model.forward(xb, /*training=*/false);
      partial[k] = static_cast<double>(loss_->value(pred, yb)) *
                   static_cast<double>(end - start);
    }
  };

  if (ctx != nullptr && ctx->parallel() && n_batches > 1) {
    ctx->count("trainer.parallel_evaluations");
    ctx->parallel_for(n_batches, 1,
                      [&](std::size_t begin, std::size_t end) {
                        Sequential replica = model_->clone();
                        score_batches(replica, begin, end);
                      });
  } else {
    score_batches(*model_, 0, n_batches);
  }

  double acc = 0.0;
  for (const double p : partial) acc += p;
  return static_cast<float>(acc / static_cast<double>(x.batch()));
}

Tensor3 predict_batched(Sequential& model, const Tensor3& x,
                        std::size_t batch_size,
                        const runtime::RunContext* ctx) {
  EVFL_REQUIRE(x.batch() > 0, "predict_batched: empty input");
  batch_size = std::max<std::size_t>(1, batch_size);
  const std::size_t n_batches = (x.batch() + batch_size - 1) / batch_size;

  // First batch sizes the output (layers may reshape time/features).
  const Tensor3 head = model.forward(x.batch_slice(0, std::min(x.batch(), batch_size)),
                                     /*training=*/false);
  Tensor3 out(x.batch(), head.time(), head.features());
  head.copy_batch_into(out, 0);

  auto predict_range = [&](Sequential& m, std::size_t batch_begin,
                           std::size_t batch_end) {
    for (std::size_t k = batch_begin; k < batch_end; ++k) {
      const std::size_t start = k * batch_size;
      const std::size_t end = std::min(x.batch(), start + batch_size);
      const Tensor3 pred = m.forward(x.batch_slice(start, end), false);
      pred.copy_batch_into(out, start);
    }
  };

  if (ctx != nullptr && ctx->parallel() && n_batches > 2) {
    ctx->count("trainer.parallel_predictions");
    // Batches [1, n) run concurrently on clones, each writing a disjoint
    // slice of `out`.
    ctx->parallel_for(n_batches - 1, 1,
                      [&](std::size_t begin, std::size_t end) {
                        Sequential replica = model.clone();
                        predict_range(replica, begin + 1, end + 1);
                      });
  } else {
    predict_range(model, 1, n_batches);
  }
  return out;
}

}  // namespace evfl::nn
