// Losses.  value_and_grad returns the scalar loss averaged over every element
// of the target tensor plus dLoss/dPred, which feeds Sequential::backward.
#pragma once

#include <utility>

#include "tensor/tensor3.hpp"

namespace evfl::nn {

using tensor::Tensor3;

struct LossResult {
  float value = 0.0f;
  Tensor3 grad;
};

class Loss {
 public:
  virtual ~Loss() = default;
  virtual LossResult value_and_grad(const Tensor3& pred,
                                    const Tensor3& target) const = 0;
  /// Loss value only (no gradient allocation).
  virtual float value(const Tensor3& pred, const Tensor3& target) const = 0;
};

/// Mean squared error, averaged over all elements.
class MseLoss : public Loss {
 public:
  LossResult value_and_grad(const Tensor3& pred,
                            const Tensor3& target) const override;
  float value(const Tensor3& pred, const Tensor3& target) const override;
};

/// Mean absolute error, averaged over all elements.
class MaeLoss : public Loss {
 public:
  LossResult value_and_grad(const Tensor3& pred,
                            const Tensor3& target) const override;
  float value(const Tensor3& pred, const Tensor3& target) const override;
};

}  // namespace evfl::nn
