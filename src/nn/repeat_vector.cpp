#include "nn/repeat_vector.hpp"

namespace evfl::nn {

RepeatVector::RepeatVector(std::size_t repeats) : repeats_(repeats) {
  EVFL_REQUIRE(repeats > 0, "RepeatVector needs repeats > 0");
}

Tensor3 RepeatVector::forward(const Tensor3& input, bool /*training*/) {
  EVFL_REQUIRE(input.time() == 1,
               "RepeatVector expects a [N,1,F] input, got " + input.shape_str());
  Tensor3 out(input.batch(), repeats_, input.features());
  const Matrix step = input.timestep(0);
  for (std::size_t t = 0; t < repeats_; ++t) out.set_timestep(t, step);
  return out;
}

Tensor3 RepeatVector::backward(const Tensor3& grad_output) {
  EVFL_REQUIRE(grad_output.time() == repeats_,
               "RepeatVector backward time mismatch");
  Tensor3 dx(grad_output.batch(), 1, grad_output.features());
  for (std::size_t t = 0; t < repeats_; ++t) {
    dx.add_timestep(0, grad_output.timestep(t));
  }
  return dx;
}

std::string RepeatVector::name() const {
  return "RepeatVector(" + std::to_string(repeats_) + ")";
}

}  // namespace evfl::nn
