// Federated server: holds the global model and applies FedAvg to the
// updates collected each round.  Transport-agnostic — the drivers move the
// serialized bytes.
//
// The server does not trust incoming updates: every finish_round runs the
// UpdateValidator first (stale/duplicate rejection, non-finite and
// wrong-dimension rejection, optional norm clipping, quorum), and publishes
// what it rejected through last_audit().  An all-rejected or under-quorum round leaves the global
// weights unchanged but still advances the round counter, so a poisoned
// round costs progress, never correctness.
#pragma once

#include <vector>

#include "fl/fedavg.hpp"
#include "fl/validator.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {

class Server {
 public:
  explicit Server(std::vector<float> initial_weights, FedAvgConfig cfg = {},
                  ValidatorConfig validator_cfg = {});

  std::uint32_t round() const { return round_; }
  const std::vector<float>& weights() const { return weights_; }

  /// The broadcast for the current round.
  GlobalModel broadcast() const;

  /// Validate and aggregate one round's updates and advance the round
  /// counter.  Returns the L2 movement of the global weights (convergence
  /// diagnostic).  An empty, all-rejected, or under-quorum update set
  /// leaves weights unchanged.
  double finish_round(std::vector<WeightUpdate> updates);

  /// Validation outcome of the most recent finish_round.
  const RoundAudit& last_audit() const { return last_audit_; }

 private:
  std::vector<float> weights_;
  FedAvgConfig cfg_;
  UpdateValidator validator_;
  RoundAudit last_audit_;
  std::uint32_t round_ = 0;
};

}  // namespace evfl::fl
