// Federated server: holds the global model and applies FedAvg to the
// updates collected each round.  Transport-agnostic — the drivers move the
// serialized bytes.
//
// The server does not trust incoming updates: every finish_round runs the
// UpdateValidator first (stale/duplicate rejection, non-finite and
// wrong-dimension rejection, optional norm clipping, quorum), and publishes
// what it rejected through last_audit().  An all-rejected or under-quorum round leaves the global
// weights unchanged but still advances the round counter, so a poisoned
// round costs progress, never correctness.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/codec.hpp"
#include "fl/fedavg.hpp"
#include "fl/validator.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {

class Server {
 public:
  explicit Server(std::vector<float> initial_weights, FedAvgConfig cfg = {},
                  ValidatorConfig validator_cfg = {}, CodecConfig codec = {});

  std::uint32_t round() const { return round_; }
  const std::vector<float>& weights() const { return weights_; }
  const CodecConfig& codec() const { return codec_; }

  /// The broadcast for the current round.
  GlobalModel broadcast() const;

  /// The broadcast for the current round as wire bytes under the configured
  /// codec (internal buffer, reused across rounds — valid until the next
  /// call).  When the codec makes the broadcast lossy, the server also
  /// decodes its own message and keeps the result as the round's delta
  /// reference: clients compute deltas against what they *received*, so the
  /// server must re-materialize against the same basis — that way downlink
  /// quantization error cancels exactly instead of compounding per round.
  const std::vector<std::uint8_t>& broadcast_wire();

  /// Validate and aggregate one round's updates and advance the round
  /// counter.  Returns the L2 movement of the global weights (convergence
  /// diagnostic).  An empty, all-rejected, or under-quorum update set
  /// leaves weights unchanged.
  ///
  /// Delta-coded updates (WeightUpdate::is_delta, from wire-v2 codecs) are
  /// validated as deltas, then materialized against the round's broadcast
  /// reference before FedAvg — mathematically identical to averaging in
  /// delta space and re-materializing, since FedAvg weights sum to 1.
  double finish_round(std::vector<WeightUpdate> updates);

  /// Validation outcome of the most recent finish_round.
  const RoundAudit& last_audit() const { return last_audit_; }

 private:
  std::vector<float> weights_;
  FedAvgConfig cfg_;
  UpdateValidator validator_;
  CodecConfig codec_;
  RoundAudit last_audit_;
  std::uint32_t round_ = 0;
  std::vector<std::uint8_t> wire_buf_;   // broadcast_wire scratch
  GlobalModel decoded_broadcast_;        // lossy-broadcast reference
  bool has_lossy_reference_ = false;
};

}  // namespace evfl::fl
