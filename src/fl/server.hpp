// Federated server: the root of an aggregation tree.  All round logic
// (validate → clip → quorum → FedAvg → advance) lives in fl::Aggregator —
// see fl/aggregator.hpp; Server remains as the name the flat (one-level)
// topology and the drivers use for the root node.
#pragma once

#include "fl/aggregator.hpp"

namespace evfl::fl {

class Server : public Aggregator {
 public:
  // Explicit forwarding ctor (not `using Aggregator::Aggregator`) so
  // `Server({...})` keeps its historical overload resolution.
  explicit Server(std::vector<float> initial_weights, FedAvgConfig cfg = {},
                  ValidatorConfig validator_cfg = {}, CodecConfig codec = {})
      : Aggregator(std::move(initial_weights), cfg, validator_cfg, codec) {}
};

}  // namespace evfl::fl
