// Federated server: holds the global model and applies FedAvg to the
// updates collected each round.  Transport-agnostic — the drivers move the
// serialized bytes.
#pragma once

#include <vector>

#include "fl/fedavg.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {

class Server {
 public:
  Server(std::vector<float> initial_weights, FedAvgConfig cfg = {});

  std::uint32_t round() const { return round_; }
  const std::vector<float>& weights() const { return weights_; }

  /// The broadcast for the current round.
  GlobalModel broadcast() const;

  /// Aggregate one round's updates and advance the round counter.  Returns
  /// the L2 movement of the global weights (convergence diagnostic).  An
  /// empty update set (all clients dropped) leaves weights unchanged.
  double finish_round(const std::vector<WeightUpdate>& updates);

 private:
  std::vector<float> weights_;
  FedAvgConfig cfg_;
  std::uint32_t round_ = 0;
};

}  // namespace evfl::fl
