#include "fl/validator.hpp"

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace evfl::fl {

UpdateValidator::UpdateValidator(ValidatorConfig cfg) : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.max_update_norm >= 0.0,
               "max_update_norm must be non-negative");
  EVFL_REQUIRE(cfg_.min_updates >= 1, "quorum must be at least 1");
}

bool all_finite(const std::vector<float>& weights) {
  for (const float w : weights) {
    if (!std::isfinite(w)) return false;
  }
  return true;
}

std::vector<WeightUpdate> UpdateValidator::filter(
    std::vector<WeightUpdate> updates, std::uint32_t expected_round,
    const std::vector<float>& global_weights, RoundAudit& audit) const {
  audit = RoundAudit{};
  audit.received = updates.size();

  std::vector<WeightUpdate> accepted;
  accepted.reserve(updates.size());
  std::unordered_set<int> seen_clients;

  for (WeightUpdate& u : updates) {
    if (cfg_.reject_stale && u.round != expected_round) {
      ++audit.rejected_stale;
      continue;
    }
    if (cfg_.reject_duplicates && !seen_clients.insert(u.client_id).second) {
      ++audit.rejected_duplicate;
      continue;
    }
    // Wrong-dimension payloads are unconditionally unaggregatable — a
    // malformed update degrades the round, it never terminates the server.
    if (u.weights.size() != global_weights.size()) {
      ++audit.rejected_dimension;
      continue;
    }
    if (cfg_.reject_nonfinite && !all_finite(u.weights)) {
      ++audit.rejected_nonfinite;
      continue;
    }
    if (cfg_.max_update_norm > 0.0) {
      // Clip the *movement* ||u - global||, not the raw weight norm: a
      // legitimate large model is fine, a huge per-round jump is not.  A
      // delta-coded update (wire v2) already *is* the movement, so its norm
      // is taken directly and clipping rescales it in place.
      double sq = 0.0;
      for (std::size_t i = 0; i < u.weights.size(); ++i) {
        const double d =
            u.is_delta ? static_cast<double>(u.weights[i])
                       : static_cast<double>(u.weights[i]) -
                             static_cast<double>(global_weights[i]);
        sq += d * d;
      }
      const double norm = std::sqrt(sq);
      if (norm > cfg_.max_update_norm) {
        const double scale = cfg_.max_update_norm / norm;
        for (std::size_t i = 0; i < u.weights.size(); ++i) {
          if (u.is_delta) {
            u.weights[i] = static_cast<float>(
                static_cast<double>(u.weights[i]) * scale);
          } else {
            const double d = static_cast<double>(u.weights[i]) -
                             static_cast<double>(global_weights[i]);
            u.weights[i] =
                static_cast<float>(static_cast<double>(global_weights[i]) +
                                   d * scale);
          }
        }
        ++audit.clipped;
      }
    }
    accepted.push_back(std::move(u));
  }

  audit.accepted = accepted.size();
  audit.quorum_met = accepted.size() >= cfg_.min_updates;
  return accepted;
}

}  // namespace evfl::fl
