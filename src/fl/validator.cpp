#include "fl/validator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace evfl::fl {

UpdateValidator::UpdateValidator(ValidatorConfig cfg) : cfg_(cfg) {
  EVFL_REQUIRE(cfg_.max_update_norm >= 0.0,
               "max_update_norm must be non-negative");
  EVFL_REQUIRE(cfg_.min_updates >= 1, "quorum must be at least 1");
}

bool all_finite(const std::vector<float>& weights) {
  for (const float w : weights) {
    if (!std::isfinite(w)) return false;
  }
  return true;
}

RoundGate::RoundGate(const ValidatorConfig& cfg, std::uint32_t expected_round,
                     const std::vector<float>& global_weights)
    : cfg_(cfg),
      expected_round_(expected_round),
      global_weights_(global_weights) {}

bool RoundGate::admit(WeightUpdate& u) {
  ++audit_.received;
  if (cfg_.reject_stale && u.round != expected_round_) {
    ++audit_.rejected_stale;
    return false;
  }
  if (cfg_.reject_duplicates && !seen_clients_.insert(u.client_id).second) {
    ++audit_.rejected_duplicate;
    return false;
  }
  // Wrong-dimension payloads are unconditionally unaggregatable — a
  // malformed update degrades the round, it never terminates the server.
  if (u.weights.size() != global_weights_.size()) {
    ++audit_.rejected_dimension;
    return false;
  }
  if (cfg_.reject_nonfinite && !all_finite(u.weights)) {
    ++audit_.rejected_nonfinite;
    return false;
  }
  if (cfg_.max_update_norm > 0.0) {
    // Clip the *movement* ||u - global||, not the raw weight norm: a
    // legitimate large model is fine, a huge per-round jump is not.  A
    // delta-coded update (wire v2) already *is* the movement, so its norm
    // is taken directly and clipping rescales it in place.
    double sq = 0.0;
    for (std::size_t i = 0; i < u.weights.size(); ++i) {
      const double d = u.is_delta ? static_cast<double>(u.weights[i])
                                  : static_cast<double>(u.weights[i]) -
                                        static_cast<double>(global_weights_[i]);
      sq += d * d;
    }
    const double norm = std::sqrt(sq);
    if (norm > cfg_.max_update_norm) {
      const double scale = cfg_.max_update_norm / norm;
      for (std::size_t i = 0; i < u.weights.size(); ++i) {
        if (u.is_delta) {
          u.weights[i] =
              static_cast<float>(static_cast<double>(u.weights[i]) * scale);
        } else {
          const double d = static_cast<double>(u.weights[i]) -
                           static_cast<double>(global_weights_[i]);
          u.weights[i] =
              static_cast<float>(static_cast<double>(global_weights_[i]) +
                                 d * scale);
        }
      }
      // A clipped aggregate's exact sums no longer describe its (rescaled)
      // mean view; drop them so the parent averages the clipped floats.
      // Forfeiting a whole shard's exactness is audited, not silent.
      if (!u.agg_terms.empty() || u.agg_contributors > 0) {
        ++audit_.clipped_aggregates;
      }
      u.agg_terms.clear();
      ++audit_.clipped;
    }
  }
  ++accepted_;
  return true;
}

const RoundAudit& RoundGate::finish() {
  audit_.accepted = accepted_;
  audit_.quorum_met = accepted_ >= cfg_.min_updates;
  return audit_;
}

std::vector<WeightUpdate> UpdateValidator::filter(
    std::vector<WeightUpdate> updates, std::uint32_t expected_round,
    const std::vector<float>& global_weights, RoundAudit& audit) const {
  RoundGate gate(cfg_, expected_round, global_weights);
  std::vector<WeightUpdate> accepted;
  accepted.reserve(updates.size());
  for (WeightUpdate& u : updates) {
    if (gate.admit(u)) accepted.push_back(std::move(u));
  }
  audit = gate.finish();
  return accepted;
}

}  // namespace evfl::fl
