// In-memory simulated network connecting federated participants.
//
// Thread-safe mailbox semantics: send() enqueues a byte message for the
// destination node; receive() blocks (with timeout) until one arrives.
// Optional per-message simulated latency accumulates into a virtual clock,
// and optional loss probability drops messages — both used by the
// robustness tests and the communication-cost reporting.
//
// An optional FaultInjector adds scripted message-level faults: currently
// duplicate delivery of client updates (the Byzantine "send it twice"
// case), keyed off the (sender, round) visible in the wire header.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tensor/rng.hpp"

namespace evfl::faults {
class FaultInjector;
}  // namespace evfl::faults

namespace evfl::fl {

inline constexpr int kServerNode = -1;

struct Message {
  int from = 0;
  int to = 0;
  std::vector<std::uint8_t> bytes;
  /// Set instead of `bytes` for broadcast deliveries: every recipient of
  /// one broadcast() call shares this single refcounted buffer, so fanning
  /// a model out to 10k clients costs one payload, not 10k copies.
  std::shared_ptr<const std::vector<std::uint8_t>> shared = nullptr;

  /// The payload, wherever it lives.  Readers must use this instead of
  /// touching `bytes` directly.
  const std::vector<std::uint8_t>& payload() const {
    return shared ? *shared : bytes;
  }
};

struct NetworkConfig {
  double latency_ms_per_message = 0.0;
  double latency_ms_per_kib = 0.0;
  double drop_probability = 0.0;
  std::uint64_t drop_seed = 7;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;  // injected duplicate deliveries
  /// Wire bytes that crossed the network, duplicate deliveries included —
  /// a retransmitted update costs its payload again.
  std::uint64_t bytes_sent = 0;
  double virtual_latency_ms = 0.0;  // accumulated simulated transfer time
  /// Deepest any node's mailbox ever got (queued, not yet received) —
  /// backpressure gauge for the threaded schedule.
  std::uint64_t peak_mailbox_depth = 0;
};

class InMemoryNetwork {
 public:
  explicit InMemoryNetwork(NetworkConfig cfg = {});

  /// Attach (or detach, with nullptr) a fault injector consulted on every
  /// send.  Non-owning; the injector must outlive the network's use of it.
  void set_fault_injector(const faults::FaultInjector* injector);

  /// Enqueue a message for `msg.to`.  Returns false if the (simulated)
  /// network dropped it.
  bool send(Message msg);

  /// Enqueue one payload for many destinations, sharing a single buffer
  /// (see Message::shared).  Each delivery draws its own drop decision and
  /// is charged like an individual send in the traffic stats — the shared
  /// buffer is a simulator memory optimization, not a modeled multicast.
  /// Returns the number of deliveries that were not dropped.
  std::size_t broadcast(int from, const std::vector<int>& to,
                        std::vector<std::uint8_t> bytes);

  /// Enqueue a control-plane message: never dropped, never duplicated, not
  /// counted in the traffic stats.  For simulation control (e.g. the
  /// driver's shutdown broadcast), not for modeled protocol traffic.
  void send_control(Message msg);

  /// Blocking receive for a node; std::nullopt on timeout.  The timeout is
  /// an absolute monotonic deadline fixed on entry: spurious wakeups and
  /// notifications for other nodes never extend the wait.
  std::optional<Message> receive(int node, double timeout_ms = 30'000.0);

  /// Non-blocking receive.
  std::optional<Message> try_receive(int node);

  /// Number of queued messages for a node.
  std::size_t pending(int node) const;

  NetworkStats stats() const;
  void reset_stats();

 private:
  NetworkConfig cfg_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<int, std::deque<Message>> queues_;
  NetworkStats stats_;
  tensor::Rng drop_rng_;
  const faults::FaultInjector* injector_ = nullptr;
  /// Round of the most recent server broadcast — the wall-clock "current"
  /// round.  Duplicate injection only applies to updates carrying it, so a
  /// stale replay crossing the wire later cannot re-trigger a duplicate
  /// rule from the round it originally belonged to.
  std::uint32_t current_round_ = 0;
};

}  // namespace evfl::fl
