#include "fl/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "fl/serialize.hpp"
#include "fl/wire_detail.hpp"

namespace evfl::fl {

namespace {

using wire_detail::Writer;

/// Header through the CRC field; returns the byte position of the CRC so it
/// can be patched once the payload is assembled.  `agg_leaves` is the
/// saturated leaf count behind a forwarded aggregate mean (0 for leaf
/// updates and broadcasts) — see the agg_leaves field in serialize.hpp.
std::size_t write_v2_header(Writer& w, MessageKind kind, std::uint32_t round,
                            std::int32_t client, std::uint64_t samples,
                            float loss, CodecKind codec, int quant_bits,
                            std::uint64_t dim, std::uint64_t nnz,
                            std::uint16_t agg_leaves = 0) {
  w.put(kWireMagic);
  w.put(kWireVersion2);
  w.put(static_cast<std::uint16_t>(kind));
  w.put(round);
  w.put(client);
  w.put(samples);
  w.put(loss);
  w.put(static_cast<std::uint8_t>(codec));
  w.put(static_cast<std::uint8_t>(quant_bits));
  w.put(agg_leaves);
  w.put(dim);
  w.put(nnz);
  const std::size_t crc_pos = w.pos();
  w.put(std::uint32_t{0});  // CRC placeholder
  return crc_pos;
}

/// Saturate a contributor count into the u16 header field.  65535 already
/// far exceeds any single shard's fan-out; the exact count rides in the
/// kAggSum payload when exactness matters.
std::uint16_t saturate_leaves(std::uint64_t contributors) {
  return contributors > 0xFFFFu ? std::uint16_t{0xFFFFu}
                                : static_cast<std::uint16_t>(contributors);
}

// Block quantization itself (per-block scale + codes) is shared with the
// serving engine's weight freezing — nn::block_quantize / nn::dequantize in
// nn/quant.hpp.  Only the wire packing lives here.

/// Append scales + packed codes (two-per-byte, low nibble first, for 4-bit).
void write_quantized(Writer& w, const std::vector<float>& scales,
                     const std::vector<std::int8_t>& quants, int bits) {
  w.put_floats(scales.data(), scales.size());
  if (bits == 8) {
    w.put_bytes(reinterpret_cast<const std::uint8_t*>(quants.data()),
                quants.size());
    return;
  }
  for (std::size_t i = 0; i < quants.size(); i += 2) {
    const std::uint8_t lo = static_cast<std::uint8_t>(quants[i]) & 0xFu;
    const std::uint8_t hi =
        i + 1 < quants.size()
            ? static_cast<std::uint8_t>(static_cast<std::uint8_t>(quants[i + 1])
                                        << 4)
            : 0u;
    w.put(static_cast<std::uint8_t>(hi | lo));
  }
}

}  // namespace

std::string to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::kDense: return "dense";
    case CodecKind::kDelta: return "delta";
    case CodecKind::kTopK: return "topk";
    case CodecKind::kTopKQuant: return "topk_q";
    case CodecKind::kQuantDense: return "quant_dense";
    case CodecKind::kAggSum: return "agg_sum";
  }
  return "unknown";
}

CodecKind parse_codec_kind(const std::string& name) {
  if (name == "dense") return CodecKind::kDense;
  if (name == "delta") return CodecKind::kDelta;
  if (name == "topk") return CodecKind::kTopK;
  if (name == "topk_q") return CodecKind::kTopKQuant;
  throw Error("unknown codec '" + name +
              "' (expected dense|delta|topk|topk_q)");
}

bool broadcast_is_lossy(const CodecConfig& cfg) {
  return cfg.kind == CodecKind::kTopKQuant && cfg.quantize_broadcast;
}

UpdateEncoder::UpdateEncoder(CodecConfig cfg) : cfg_(cfg) {
  if (cfg_.kind == CodecKind::kQuantDense) {
    throw Error("kQuantDense is a broadcast-leg codec, not an update codec");
  }
  if (cfg_.quant_bits != 4 && cfg_.quant_bits != 8) {
    throw Error("quant_bits must be 4 or 8, got " +
                std::to_string(cfg_.quant_bits));
  }
  if (!(cfg_.topk_frac > 0.0) || cfg_.topk_frac > 1.0) {
    throw Error("topk_frac must be in (0, 1]");
  }
}

void UpdateEncoder::reset() { residual_.clear(); }

void UpdateEncoder::encode(const WeightUpdate& update,
                           const std::vector<float>& reference,
                           std::vector<std::uint8_t>& out) {
  if (cfg_.kind == CodecKind::kDense) {
    if (update.agg_contributors == 0) {
      serialize_into(update, out);
      return;
    }
    // A forwarded aggregate mean (a robust shard reduction has no exact
    // kAggSum to ship) needs the v2 agg_leaves field so the parent folds it
    // as an aggregate instead of re-buffering it as one leaf vote.
    const std::size_t dense_dim = update.weights.size();
    out.clear();
    Writer w(out);
    const std::size_t crc_pos = write_v2_header(
        w, MessageKind::kWeightUpdate, update.round, update.client_id,
        update.sample_count, update.train_loss, CodecKind::kDense,
        /*quant_bits=*/0, dense_dim, dense_dim,
        saturate_leaves(update.agg_contributors));
    const std::size_t payload_pos = w.pos();
    w.put_floats(update.weights.data(), dense_dim);
    w.patch_u32(crc_pos,
                crc32(out.data() + payload_pos, out.size() - payload_pos));
    return;
  }
  const std::size_t dim = update.weights.size();
  EVFL_ASSERT(reference.size() == dim,
              "encode: reference/update dimension mismatch");

  // Error-feedback delta: what we'd like the server to apply, including
  // everything past rounds failed to ship.
  delta_.resize(dim);
  const bool lossy =
      cfg_.kind == CodecKind::kTopK || cfg_.kind == CodecKind::kTopKQuant;
  if (lossy && residual_.size() != dim) {
    residual_.assign(dim, 0.0f);  // first round, or model was re-seeded
  }
  bool finite = true;
  for (std::size_t i = 0; i < dim; ++i) {
    float d = update.weights[i] - reference[i];
    if (lossy) d += residual_[i];
    delta_[i] = d;
    finite = finite && std::isfinite(d);
  }

  out.clear();
  Writer w(out);

  // A non-finite delta cannot be ranked by magnitude (NaN breaks the
  // selection ordering) and must reach the validator untouched, so it ships
  // dense regardless of the configured codec.  Residual is left as-is: the
  // update will be rejected server-side and this client's state should not
  // absorb its garbage.
  if (cfg_.kind == CodecKind::kDelta || !finite) {
    const std::size_t crc_pos = write_v2_header(
        w, MessageKind::kWeightUpdate, update.round, update.client_id,
        update.sample_count, update.train_loss, CodecKind::kDelta,
        /*quant_bits=*/0, dim, dim,
        saturate_leaves(update.agg_contributors));
    const std::size_t payload_pos = w.pos();
    w.put_floats(delta_.data(), dim);
    w.patch_u32(crc_pos,
                crc32(out.data() + payload_pos, out.size() - payload_pos));
    return;
  }

  // Top-k selection by |delta|, ties broken by index for determinism.
  const std::size_t k = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(cfg_.topk_frac * static_cast<double>(dim))),
      dim > 0 ? 1 : 0, dim);
  index_.resize(dim);
  std::iota(index_.begin(), index_.end(), 0u);
  if (k < dim) {
    std::nth_element(index_.begin(), index_.begin() + k, index_.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       const float fa = std::fabs(delta_[a]);
                       const float fb = std::fabs(delta_[b]);
                       return fa != fb ? fa > fb : a < b;
                     });
  }
  std::sort(index_.begin(), index_.begin() + k);  // wire order is ascending
  gathered_.resize(k);
  for (std::size_t j = 0; j < k; ++j) gathered_[j] = delta_[index_[j]];

  const bool quantized = cfg_.kind == CodecKind::kTopKQuant;
  const int bits = quantized ? cfg_.quant_bits : 0;
  const std::size_t crc_pos = write_v2_header(
      w, MessageKind::kWeightUpdate, update.round, update.client_id,
      update.sample_count, update.train_loss, cfg_.kind, bits, dim, k,
      saturate_leaves(update.agg_contributors));
  const std::size_t payload_pos = w.pos();
  w.put_bytes(reinterpret_cast<const std::uint8_t*>(index_.data()),
              k * sizeof(std::uint32_t));
  if (quantized) {
    nn::block_quantize(gathered_.data(), k, bits, scales_, quants_);
    write_quantized(w, scales_, quants_, bits);
  } else {
    w.put_floats(gathered_.data(), k);
  }
  w.patch_u32(crc_pos,
              crc32(out.data() + payload_pos, out.size() - payload_pos));

  // Residual: everything the wire did not carry.  Unselected coordinates
  // keep their full delta; selected ones keep only the quantization error
  // (zero for kTopK).
  std::swap(residual_, delta_);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = index_[j];
    residual_[i] =
        quantized
            ? gathered_[j] - nn::dequantize(quants_[j], scales_[j / kQuantBlock])
            : 0.0f;
  }
}

void encode_global(std::uint32_t round, const std::vector<float>& weights,
                   const CodecConfig& cfg, std::vector<std::uint8_t>& out) {
  if (!broadcast_is_lossy(cfg)) {
    serialize_into(GlobalModel{round, weights}, out);
    return;
  }
  // Broadcast quantization is stateless (no error feedback possible — each
  // client must decode from this message alone) and always 8-bit.
  constexpr int kBits = 8;
  const std::size_t dim = weights.size();
  out.clear();
  Writer w(out);
  const std::size_t crc_pos =
      write_v2_header(w, MessageKind::kGlobalModel, round, /*client=*/-1,
                      /*samples=*/0, /*loss=*/0.0f, CodecKind::kQuantDense,
                      kBits, dim, dim);
  const std::size_t payload_pos = w.pos();
  static thread_local std::vector<float> scales;
  static thread_local std::vector<std::int8_t> quants;
  nn::block_quantize(weights.data(), dim, kBits, scales, quants);
  write_quantized(w, scales, quants, kBits);
  w.patch_u32(crc_pos,
              crc32(out.data() + payload_pos, out.size() - payload_pos));
}

}  // namespace evfl::fl
