#include "fl/client.hpp"

#include "metrics/timer.hpp"

namespace evfl::fl {

Client::Client(int id, tensor::Tensor3 x_train, tensor::Tensor3 y_train,
               const ModelFactory& factory, ClientConfig cfg, tensor::Rng rng)
    : id_(id),
      cfg_(cfg),
      x_(std::move(x_train)),
      y_(std::move(y_train)),
      rng_(std::move(rng)),
      model_(factory(rng_)),
      optimizer_(cfg.learning_rate) {
  EVFL_REQUIRE(x_.batch() == y_.batch(), "client data x/y mismatch");
  EVFL_REQUIRE(x_.batch() > 0, "client has no training data");
  EVFL_REQUIRE(model_.weight_count() > 0,
               "model factory must build layers eagerly");
}

WeightUpdate Client::train_round(const GlobalModel& global) {
  const metrics::WallTimer timer;
  model_.set_weights(global.weights);

  nn::Trainer trainer(model_, loss_, optimizer_, rng_);
  nn::FitConfig fit;
  fit.epochs = cfg_.epochs_per_round;
  fit.batch_size = cfg_.batch_size;
  const nn::FitHistory hist = trainer.fit(x_, y_, fit);
  last_train_seconds_ = timer.seconds();

  WeightUpdate update;
  update.client_id = id_;
  update.round = global.round;
  update.sample_count = sample_count();
  update.weights = model_.get_weights();
  update.train_loss = hist.train_loss.empty() ? 0.0f : hist.train_loss.back();
  return update;
}

void Client::serve(InMemoryNetwork& net, std::size_t rounds,
                   double timeout_ms) {
  for (std::size_t r = 0; r < rounds; ++r) {
    std::optional<Message> msg = net.receive(id_, timeout_ms);
    if (!msg) return;  // server went away or broadcast was dropped
    const GlobalModel global = deserialize_global(msg->bytes);
    WeightUpdate update = train_round(global);
    net.send(Message{id_, kServerNode, serialize(update)});
  }
}

}  // namespace evfl::fl
