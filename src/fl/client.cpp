#include "fl/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "metrics/timer.hpp"

namespace evfl::fl {

namespace {

/// Budget-bounded retry-with-backoff receive: waits ramp geometrically to
/// the per-attempt ceiling and then keep retrying at that ceiling until the
/// full `opts.receive_timeout_ms` budget is spent.  The budget — not the
/// backoff ramp — decides when the client gives up, so a server that
/// legitimately holds a round open until its deadline is waited out rather
/// than abandoned.
std::optional<Message> receive_with_backoff(InMemoryNetwork& net, int node,
                                            const ServeOptions& opts) {
  double budget_ms = opts.receive_timeout_ms;
  for (std::size_t attempt = 0; budget_ms > 0.0; ++attempt) {
    const double wait =
        std::min(runtime::backoff_wait_ms(opts.backoff, attempt), budget_ms);
    if (wait <= 0.0) break;
    if (std::optional<Message> msg = net.receive(node, wait)) return msg;
    budget_ms -= wait;
  }
  return std::nullopt;
}

}  // namespace

Client::Client(int id, tensor::Tensor3 x_train, tensor::Tensor3 y_train,
               const ModelFactory& factory, ClientConfig cfg, tensor::Rng rng)
    : id_(id),
      cfg_(cfg),
      x_(std::move(x_train)),
      y_(std::move(y_train)),
      rng_(std::move(rng)),
      model_(factory(rng_)),
      optimizer_(cfg.learning_rate),
      encoder_(cfg.codec) {
  EVFL_REQUIRE(x_.batch() == y_.batch(), "client data x/y mismatch");
  EVFL_REQUIRE(x_.batch() > 0, "client has no training data");
  EVFL_REQUIRE(model_.weight_count() > 0,
               "model factory must build layers eagerly");
}

WeightUpdate Client::train_round(const GlobalModel& global) {
  const metrics::WallTimer timer;
  model_.set_weights(global.weights);

  nn::Trainer trainer(model_, loss_, optimizer_, rng_);
  nn::FitConfig fit;
  fit.epochs = cfg_.epochs_per_round;
  fit.batch_size = cfg_.batch_size;
  const nn::FitHistory hist = trainer.fit(x_, y_, fit);
  last_train_seconds_.store(timer.seconds(), std::memory_order_relaxed);

  WeightUpdate update;
  update.client_id = id_;
  update.round = global.round;
  update.sample_count = sample_count();
  update.weights = model_.get_weights();
  update.train_loss = hist.train_loss.empty() ? 0.0f : hist.train_loss.back();
  return update;
}

const std::vector<std::uint8_t>& Client::encode_update(
    const WeightUpdate& update, const std::vector<float>& reference) {
  encoder_.encode(update, reference, wire_buf_);
  return wire_buf_;
}

void Client::serve(InMemoryNetwork& net, std::size_t rounds,
                   ServeOptions opts) {
  // Keeping a serialized copy of every round's update costs a payload-sized
  // copy per round, so only do it when a stale-replay rule can actually ask
  // for it.
  const bool retain_previous =
      opts.injector != nullptr && opts.injector->may_replay_stale(id_);
  std::vector<std::uint8_t> previous_update_bytes;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::optional<Message> msg = receive_with_backoff(net, id_, opts);
    if (!msg) return;  // retry budget exhausted: server went away
    deserialize_global_into(msg->payload(), global_scratch_);
    const GlobalModel& global = global_scratch_;
    if (global.round == kShutdownRound) return;  // server finished its rounds

    // Crash-before-update: the client received the broadcast but dies
    // before contributing — the server must time it out, not hang.
    if (opts.injector != nullptr &&
        opts.injector->should_crash(id_, global.round)) {
      return;
    }

    obs::TraceSpan train_span(opts.trace, "fl.client_train", "fl");
    train_span.annotate("client", static_cast<std::uint64_t>(id_));
    train_span.annotate("round", static_cast<std::uint64_t>(global.round));
    WeightUpdate update = train_round(global);
    train_span.end();

    // An attacker client poisons its own update before anything else
    // touches it — upstream of scripted corruption and of encoding, exactly
    // where a compromised client controls the pipeline.
    if (opts.adversary != nullptr) {
      opts.adversary->poison_update(update, global.weights);
    }

    if (opts.injector != nullptr) {
      const double delay_ms =
          opts.injector->straggler_delay_ms(id_, global.round);
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            delay_ms));
      }
      opts.injector->corrupt_update(update);
      // Stale replay: re-send the previous round's bytes alongside the
      // fresh update — the server's validator must reject the old round.
      if (!previous_update_bytes.empty() &&
          opts.injector->should_replay_stale(id_, global.round)) {
        net.send(Message{id_, kServerNode, previous_update_bytes});
      }
    }

    // Encode against the broadcast as *this client decoded it* — under a
    // lossy downlink that is the server's delta reference too.
    std::vector<std::uint8_t> bytes = encode_update(update, global.weights);
    if (retain_previous) previous_update_bytes = bytes;
    net.send(Message{id_, kServerNode, std::move(bytes)});
  }
}

void Client::serve(InMemoryNetwork& net, std::size_t rounds,
                   double timeout_ms) {
  ServeOptions opts;
  opts.receive_timeout_ms = timeout_ms;
  serve(net, rounds, opts);
}

}  // namespace evfl::fl
