// FleetDriver — hierarchical federation at fleet scale.
//
// Topology: root Aggregator ← E EdgeAggregators ← L ClientSpec leaves
// (contiguous block shards).  Each round:
//
//   1. the root encodes one broadcast; every (non-crashed) edge adopts it,
//   2. each edge encodes one shard broadcast — a single buffer its whole
//      shard reads (the downlink costs O(E) memory, not O(L)),
//   3. the round's *sampled* leaves are materialized lazily — series,
//      scaler, windows, model, trainer all built from the ClientSpec,
//      trained, encoded, offered to their edge, and destroyed — so peak
//      memory follows the worker-pool width, never the fleet size,
//   4. each edge closes its shard round and forwards ONE update upstream
//      (exact fixed-point sums under kDense — bit-identical to flat
//      aggregation; codec-encoded mean otherwise), and the root closes.
//
// Fault semantics per tier: a crashed edge silently drops its whole shard
// for the round (partial aggregation at the root — never an abort); a
// crashed/straggling leaf times out against its edge exactly as in the flat
// drivers.  Quorum is evaluated per tier by each node's own validator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "datagen/fleet.hpp"
#include "faults/fault_injector.hpp"
#include "fl/aggregator.hpp"
#include "fl/client.hpp"
#include "fl/driver.hpp"
#include "obs/round_telemetry.hpp"
#include "runtime/run_context.hpp"

namespace evfl::fl {

struct FleetDriverConfig {
  /// Number of edge aggregators (>= 1).  Leaves are sharded into E
  /// contiguous blocks.
  std::size_t edges = 1;
  /// Which leaves participate each round (applied over the whole fleet,
  /// independent of sharding — the same cohort regardless of `edges`).
  SamplingPolicy sampling;
  /// Per-leaf training configuration; its codec is the leaf→edge wire.
  ClientConfig client;
  FedAvgConfig fedavg;
  /// Validator each edge runs over its shard (the root keeps its own).
  ValidatorConfig edge_validator;
  /// Forecast window: leaves train on sequences of this many hours.
  std::size_t lookback = 24;
  /// Simulated per-round deadline for leaves (straggler delays are virtual
  /// time, as in SyncDriver).
  double round_deadline_ms = 120'000.0;
  /// Optional adaptive adversary (non-owning).  Data-poisoning kinds
  /// relabel a leaf's freshly materialized training set; model-poisoning
  /// kinds rewrite its update before the leaf→edge wire.
  const AdversarySuite* adversary = nullptr;
};

class FleetDriver : public Driver {
 public:
  /// `root`'s weights define the model dimension; its codec is the
  /// edge→root wire (kDense ⇒ exact forwarding).  `ctx` supplies the worker
  /// pool that bounds how many leaves are materialized at once.
  FleetDriver(Aggregator& root, std::vector<datagen::ClientSpec> fleet,
              ModelFactory factory, FleetDriverConfig cfg = {},
              const runtime::RunContext* ctx = nullptr,
              const faults::FaultInjector* injector = nullptr,
              obs::RoundTelemetrySink* telemetry = nullptr);

  FederatedRunResult run(std::size_t rounds) override;

  /// Fault-plan node id of edge `e` (disjoint from leaf ids >= 0 and from
  /// kServerNode == -1), so crash rules can target an aggregator tier.
  static int edge_node_id(std::size_t e) { return -2 - static_cast<int>(e); }

  std::size_t population() const { return fleet_.size(); }

 private:
  Aggregator* root_;
  std::vector<datagen::ClientSpec> fleet_;
  ModelFactory factory_;
  FleetDriverConfig cfg_;
  const runtime::RunContext* ctx_;
  const faults::FaultInjector* injector_;
  obs::RoundTelemetrySink* telemetry_;
  std::vector<std::unique_ptr<EdgeAggregator>> edges_;
  std::vector<std::size_t> shard_of_;  // leaf slot -> edge index
  std::vector<int> ids_;               // leaf slot -> client id
};

}  // namespace evfl::fl
