#include "fl/network.hpp"

#include <chrono>

#include "faults/fault_injector.hpp"
#include "fl/serialize.hpp"

namespace evfl::fl {

InMemoryNetwork::InMemoryNetwork(NetworkConfig cfg)
    : cfg_(cfg), drop_rng_(cfg.drop_seed) {}

void InMemoryNetwork::set_fault_injector(
    const faults::FaultInjector* injector) {
  std::unique_lock<std::mutex> lock(mutex_);
  injector_ = injector;
}

bool InMemoryNetwork::send(Message msg) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.bytes.size();
  stats_.virtual_latency_ms +=
      cfg_.latency_ms_per_message +
      cfg_.latency_ms_per_kib * (static_cast<double>(msg.bytes.size()) / 1024.0);
  if (cfg_.drop_probability > 0.0 &&
      drop_rng_.bernoulli(cfg_.drop_probability)) {
    ++stats_.messages_dropped;
    return false;
  }
  // Scripted duplicate delivery: a faulty client (or a retransmitting
  // transport) hands the server the same update more than once.  Only
  // client->server WeightUpdates duplicate; broadcasts stay single.  An
  // update whose round differs from the latest broadcast is a stale replay
  // already in flight — it must not consult the duplicate rule a second
  // time, or the "one decision per (client, round)" stats contract breaks.
  int extra_copies = 0;
  if (injector_ != nullptr) {
    if (const std::optional<WirePeek> peek = peek_header(msg.bytes)) {
      if (peek->kind == MessageKind::kGlobalModel) {
        current_round_ = peek->round;
      } else if (msg.to == kServerNode &&
                 peek->kind == MessageKind::kWeightUpdate &&
                 peek->round == current_round_) {
        extra_copies = injector_->duplicate_copies(peek->client, peek->round);
      }
    }
  }
  auto& q = queues_[msg.to];
  for (int i = 0; i < extra_copies; ++i) {
    ++stats_.messages_duplicated;
    // A duplicate crosses the wire like any other copy: it costs its bytes
    // and the size-proportional transfer time again.  Per-message latency
    // is not re-charged — it models connection overhead the retransmitting
    // transport does not repeat.
    stats_.bytes_sent += msg.bytes.size();
    stats_.virtual_latency_ms +=
        cfg_.latency_ms_per_kib *
        (static_cast<double>(msg.bytes.size()) / 1024.0);
    q.push_back(Message{msg.from, msg.to, msg.bytes});
  }
  q.push_back(std::move(msg));
  if (q.size() > stats_.peak_mailbox_depth) {
    stats_.peak_mailbox_depth = q.size();
  }
  cv_.notify_all();
  return true;
}

std::size_t InMemoryNetwork::broadcast(int from, const std::vector<int>& to,
                                       std::vector<std::uint8_t> bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto shared =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  // Keep the duplicate-injection round gate in sync, same as send() would.
  if (injector_ != nullptr) {
    if (const std::optional<WirePeek> peek = peek_header(*shared)) {
      if (peek->kind == MessageKind::kGlobalModel) {
        current_round_ = peek->round;
      }
    }
  }
  const std::size_t size = shared->size();
  std::size_t delivered = 0;
  for (const int dest : to) {
    ++stats_.messages_sent;
    stats_.bytes_sent += size;
    stats_.virtual_latency_ms +=
        cfg_.latency_ms_per_message +
        cfg_.latency_ms_per_kib * (static_cast<double>(size) / 1024.0);
    if (cfg_.drop_probability > 0.0 &&
        drop_rng_.bernoulli(cfg_.drop_probability)) {
      ++stats_.messages_dropped;
      continue;
    }
    Message msg;
    msg.from = from;
    msg.to = dest;
    msg.shared = shared;
    auto& q = queues_[dest];
    q.push_back(std::move(msg));
    if (q.size() > stats_.peak_mailbox_depth) {
      stats_.peak_mailbox_depth = q.size();
    }
    ++delivered;
  }
  cv_.notify_all();
  return delivered;
}

void InMemoryNetwork::send_control(Message msg) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& q = queues_[msg.to];
  q.push_back(std::move(msg));
  if (q.size() > stats_.peak_mailbox_depth) {
    stats_.peak_mailbox_depth = q.size();
  }
  cv_.notify_all();
}

std::optional<Message> InMemoryNetwork::receive(int node, double timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& q = queues_[node];
  // Absolute monotonic deadline fixed before any wait: however many spurious
  // wakeups or foreign-node notifications land, the last wait still expires
  // at entry-time + timeout_ms.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(
                            static_cast<std::int64_t>(timeout_ms * 1000.0));
  if (!cv_.wait_until(lock, deadline, [&q] { return !q.empty(); })) {
    return std::nullopt;
  }
  Message msg = std::move(q.front());
  q.pop_front();
  return msg;
}

std::optional<Message> InMemoryNetwork::try_receive(int node) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& q = queues_[node];
  if (q.empty()) return std::nullopt;
  Message msg = std::move(q.front());
  q.pop_front();
  return msg;
}

std::size_t InMemoryNetwork::pending(int node) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = queues_.find(node);
  return it == queues_.end() ? 0 : it->second.size();
}

NetworkStats InMemoryNetwork::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void InMemoryNetwork::reset_stats() {
  std::unique_lock<std::mutex> lock(mutex_);
  stats_ = NetworkStats{};
}

}  // namespace evfl::fl
