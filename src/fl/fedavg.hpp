// Federated Averaging (McMahan et al.) — the paper's aggregation mechanism.
#pragma once

#include <vector>

#include "fl/weights.hpp"

namespace evfl::fl {

struct FedAvgConfig {
  /// Weight each update by its local sample count (true FedAvg).  The paper
  /// reports equal-sized clients, where this equals the unweighted mean;
  /// bench_ablation_fedavg explores the difference under imbalance.
  bool weighted_by_samples = true;
};

/// Aggregate client updates into the next global weight vector.
/// All updates must agree on weight dimensionality; throws otherwise.
std::vector<float> fed_avg(const std::vector<WeightUpdate>& updates,
                           const FedAvgConfig& cfg = {});

}  // namespace evfl::fl
