// Federated Averaging (McMahan et al.) — the paper's aggregation mechanism.
//
// Accumulation is exact: every weighted leaf term is truncated into signed
// 128-bit fixed point (scale 2^64) and summed with integer addition.  Integer
// addition is associative, so any grouping of leaves into partial sums — an
// edge aggregator forwarding its shard's sum upstream — produces bit-identical
// results to summing all leaves flat.  That grouping-invariance is the
// correctness claim behind hierarchical (tree) FedAvg in this repo.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/weights.hpp"

namespace evfl::fl {

struct FedAvgConfig {
  /// Weight each update by its local sample count (true FedAvg).  The paper
  /// reports equal-sized clients, where this equals the unweighted mean;
  /// bench_ablation_fedavg explores the difference under imbalance.
  bool weighted_by_samples = true;
};

/// Magnitude cap applied to each weighted term before fixed-point conversion.
/// 2^40 — far above any sane weight*samples product; keeps the per-term fixed
/// representation within 2^104 so sums over millions of leaves cannot
/// overflow __int128.
inline constexpr double kExactTermCap = 1099511627776.0;

/// Cap on terms decoded from the wire (a shard's partial sum, which may
/// legitimately exceed the per-leaf cap by the shard size).  ±2^114 leaves
/// headroom for up to 8192 forwarded aggregates below the __int128 limit.
ExactTerm clamp_wire_term(ExactTerm t);

/// Convert one weighted leaf term to Q?.64 fixed point.  Deterministic for
/// every input: NaN maps to 0, ±inf and out-of-range values saturate at
/// ±kExactTermCap, conversion truncates toward zero.  Per-term determinism +
/// integer associativity is all grouping-invariance needs.
ExactTerm to_fixed(double term);

/// Streaming exact FedAvg accumulator.  Feed leaf updates (or forwarded
/// shard sums) in any order/grouping; `mean()` is a pure function of the
/// multiset of leaves.
class FedAccumulator {
 public:
  /// Start a fresh accumulation over `dim`-element weight vectors.
  void reset(std::size_t dim);

  /// Fold one leaf update with FedAvg weight `w` (sample count, or 1).
  void add_update(const std::vector<float>& weights, std::uint64_t w);

  /// Fold a forwarded partial sum: `terms` are a downstream accumulator's
  /// raw fixed-point sums, `added_weight` its total weight, `contributors`
  /// the number of leaves it covers.  Terms are clamped to the wire cap.
  void add_terms(const std::vector<ExactTerm>& terms,
                 std::uint64_t added_weight, std::uint64_t contributors);

  /// Write the weighted mean into `out` (resized to dim).  Requires a
  /// nonzero total weight.
  void mean(std::vector<float>& out) const;

  std::size_t dim() const { return acc_.size(); }
  std::uint64_t total_weight() const { return total_weight_; }
  std::uint64_t contributors() const { return contributors_; }
  const std::vector<ExactTerm>& terms() const { return acc_; }

 private:
  std::vector<ExactTerm> acc_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t contributors_ = 0;
};

/// Aggregate client updates into the next global weight vector.
/// All updates must agree on weight dimensionality; throws otherwise.
/// Updates carrying `agg_terms` (forwarded partial aggregates) are folded
/// exactly; their FedAvg weight is the cumulative `sample_count` (weighted
/// mode) or `agg_contributors` (unweighted mode).
std::vector<float> fed_avg(const std::vector<WeightUpdate>& updates,
                           const FedAvgConfig& cfg = {});

}  // namespace evfl::fl
