// Federated Averaging (McMahan et al.) — the paper's aggregation mechanism.
//
// Accumulation is exact: every weighted leaf term is truncated into signed
// 128-bit fixed point (scale 2^64) and summed with integer addition.  Integer
// addition is associative, so any grouping of leaves into partial sums — an
// edge aggregator forwarding its shard's sum upstream — produces bit-identical
// results to summing all leaves flat.  That grouping-invariance is the
// correctness claim behind hierarchical (tree) FedAvg in this repo.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/weights.hpp"

namespace evfl::fl {

/// How a round's accepted updates become the next global model.
///
/// kMean is the paper's FedAvg and keeps the exact streaming int128
/// fixed-point path (grouping-invariant — the tree==flat guarantee).  The
/// robust rules defend the aggregate against *colluding, within-norm-bound*
/// model poisoning the validator cannot see: they buffer the round's
/// decoded dense updates (bounded, see FedAvgConfig::robust_buffer_cap) and
/// reduce them order-statistically at close.  Robustness is applied at the
/// tier closest to the leaves; forwarded shard aggregates are folded by
/// weighted mean upstream ("robust-per-shard, fold upstream").
enum class AggregationRule : std::uint8_t {
  kMean = 0,             // exact weighted FedAvg (streaming, O(dim) memory)
  kTrimmedMean = 1,      // per-coordinate: drop the k extremes on each side
  kCoordinateMedian = 2, // per-coordinate median
  kNormBoundedMean = 3,  // rescale each movement to a (median-adaptive) bound
  kMultiKrum = 4,        // keep the m most mutually-consistent updates
};

/// "mean" / "trimmed_mean" / "median" / "norm_bounded" / "multi_krum".
std::string to_string(AggregationRule rule);

/// Inverse of to_string for the --agg-rule CLI knob; throws evfl::Error on
/// an unknown name.
AggregationRule parse_aggregation_rule(const std::string& name);

struct FedAvgConfig {
  /// Weight each update by its local sample count (true FedAvg).  The paper
  /// reports equal-sized clients, where this equals the unweighted mean;
  /// bench_ablation_fedavg explores the difference under imbalance.
  bool weighted_by_samples = true;

  /// How accepted updates are reduced; kMean is the historical exact path.
  AggregationRule rule = AggregationRule::kMean;
  /// kTrimmedMean: fraction trimmed from *each* side per coordinate
  /// (floor(trim_fraction * n) updates; survives f < trim_fraction * n
  /// colluding attackers).  Clamped so at least one value survives.
  double trim_fraction = 0.2;
  /// kNormBoundedMean: cap on each update's movement norm before averaging;
  /// 0 adapts the bound to the round's *median* movement norm, which — unlike
  /// the validator's static clip — an attacker cannot sit just beneath.
  double norm_bound = 0.0;
  /// kMultiKrum: assumed Byzantine count f (score over n-f-2 neighbours,
  /// select n-f).  0 derives the maximum tolerable f = (n-3)/2.
  std::size_t krum_assumed_byzantine = 0;
  /// kMultiKrum: how many lowest-score updates to average; 0 = n - f.
  std::size_t krum_select = 0;
  /// Robust rules buffer at most this many updates per round (memory bound:
  /// cap * dim floats, storage reused across rounds).  Overflow beyond the
  /// cap is folded into the exact mean accumulator and combined at close —
  /// the round degrades toward kMean rather than growing without bound.
  std::size_t robust_buffer_cap = 1024;
};

/// Magnitude cap applied to each weighted term before fixed-point conversion.
/// 2^40 — far above any sane weight*samples product; keeps the per-term fixed
/// representation within 2^104 so sums over millions of leaves cannot
/// overflow __int128.
inline constexpr double kExactTermCap = 1099511627776.0;

/// Cap on terms decoded from the wire (a shard's partial sum, which may
/// legitimately exceed the per-leaf cap by the shard size).  ±2^114 leaves
/// headroom for up to 8192 forwarded aggregates below the __int128 limit.
ExactTerm clamp_wire_term(ExactTerm t);

/// Convert one weighted leaf term to Q?.64 fixed point.  Deterministic for
/// every input: NaN maps to 0, ±inf and out-of-range values saturate at
/// ±kExactTermCap, conversion truncates toward zero.  Per-term determinism +
/// integer associativity is all grouping-invariance needs.
ExactTerm to_fixed(double term);

/// Streaming exact FedAvg accumulator.  Feed leaf updates (or forwarded
/// shard sums) in any order/grouping; `mean()` is a pure function of the
/// multiset of leaves.
class FedAccumulator {
 public:
  /// Start a fresh accumulation over `dim`-element weight vectors.
  void reset(std::size_t dim);

  /// Fold one leaf update with FedAvg weight `w` (sample count, or 1).
  void add_update(const std::vector<float>& weights, std::uint64_t w);

  /// Fold a forwarded partial sum: `terms` are a downstream accumulator's
  /// raw fixed-point sums, `added_weight` its total weight, `contributors`
  /// the number of leaves it covers.  Terms are clamped to the wire cap.
  void add_terms(const std::vector<ExactTerm>& terms,
                 std::uint64_t added_weight, std::uint64_t contributors);

  /// Write the weighted mean into `out` (resized to dim).  Requires a
  /// nonzero total weight.
  void mean(std::vector<float>& out) const;

  std::size_t dim() const { return acc_.size(); }
  std::uint64_t total_weight() const { return total_weight_; }
  std::uint64_t contributors() const { return contributors_; }
  const std::vector<ExactTerm>& terms() const { return acc_; }

 private:
  std::vector<ExactTerm> acc_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t contributors_ = 0;
};

/// Bounded per-round buffer of dense updates for the robust aggregation
/// rules.  Storage (cap * dim floats plus per-rule scratch) is reused across
/// rounds, so a steady-state round performs no allocation.  Order-statistic
/// rules (trimmed mean, median) treat buffered updates as one-vote-each —
/// a sample-count-weighted order statistic would let a single attacker
/// inflate its rank mass by lying about samples, which is exactly the lever
/// robustness is meant to remove.  Sample weights still decide how the
/// robust result combines with any folded aggregates (see fed_avg below).
class RobustBuffer {
 public:
  /// Start a fresh round over `dim`-element vectors, buffering at most
  /// `cap` updates.
  void reset(std::size_t dim, std::size_t cap);

  bool full() const { return count_ >= cap_; }
  std::size_t count() const { return count_; }
  std::uint64_t total_weight() const { return total_weight_; }
  std::size_t dim() const { return dim_; }

  /// Buffer one dense update with FedAvg weight `w`.  Requires !full().
  void add(const std::vector<float>& weights, std::uint64_t w);

  /// Reduce the buffered updates under cfg.rule into `out` (resized to
  /// dim).  `reference` is the movement basis for kNormBoundedMean (the
  /// current global weights); nullptr means movements are taken against the
  /// zero vector.  Requires count() > 0.
  void aggregate(const FedAvgConfig& cfg, const std::vector<float>* reference,
                 std::vector<float>& out) const;

 private:
  void trimmed_mean(std::size_t trim_each_side, std::vector<float>& out) const;
  void norm_bounded_mean(const FedAvgConfig& cfg,
                         const std::vector<float>* reference,
                         std::vector<float>& out) const;
  void multi_krum(const FedAvgConfig& cfg, std::vector<float>& out) const;
  void weighted_mean_of(const std::vector<std::size_t>& rows,
                        std::vector<float>& out) const;

  std::size_t dim_ = 0;
  std::size_t cap_ = 0;
  std::size_t count_ = 0;
  std::uint64_t total_weight_ = 0;
  std::vector<float> rows_;             // count_ x dim_, row-major, reused
  std::vector<std::uint64_t> row_w_;
  // Rule scratch (mutable: aggregate() is logically const, reuses storage).
  mutable std::vector<float> col_;
  mutable std::vector<double> norms_;
  mutable std::vector<double> scores_;
  mutable std::vector<std::size_t> order_;
};

/// Aggregate client updates into the next global weight vector.
/// All updates must agree on weight dimensionality; throws otherwise.
/// Updates carrying `agg_terms` (forwarded partial aggregates) are folded
/// exactly; their FedAvg weight is the cumulative `sample_count` (weighted
/// mode) or `agg_contributors` (unweighted mode).
///
/// Under a robust rule, leaf updates are buffered and reduced
/// order-statistically while forwarded aggregates (already robust at their
/// own tier) are folded by exact mean; the two components combine by total
/// FedAvg weight ("robust-per-shard, fold upstream").  `reference` is the
/// movement basis for kNormBoundedMean — pass the current global weights.
std::vector<float> fed_avg(const std::vector<WeightUpdate>& updates,
                           const FedAvgConfig& cfg = {},
                           const std::vector<float>* reference = nullptr);

}  // namespace evfl::fl
