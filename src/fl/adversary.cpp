#include "fl/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace evfl::fl {

namespace {

// splitmix64 finalizer — the same stateless decision hash the fault layer
// uses (faults/fault_injector.cpp), so adversary choices share its
// schedule-independence guarantees.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t member_hash(std::uint64_t seed, int client) {
  std::uint64_t h = mix64(seed ^ 0xADEBAD0DEull);
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(client)));
  return h;
}

double to_unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Shared ALIE drift sign for one coordinate: +1/-1 from (seed, coord)
/// only.  No client or round term — every colluder pushes the same
/// persistent direction, so the per-round drifts compound instead of
/// averaging out, and no communication between attackers is needed.
double drift_sign(std::uint64_t seed, std::size_t coord) {
  return (mix64(seed ^ 0xD51F7ull ^ static_cast<std::uint64_t>(coord)) & 1u)
             ? 1.0
             : -1.0;
}

}  // namespace

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kSignFlip: return "sign_flip";
    case AttackKind::kAlie: return "alie";
    case AttackKind::kLabelFlip: return "label_flip";
    case AttackKind::kBackdoor: return "backdoor";
  }
  return "unknown";
}

AttackKind parse_attack_kind(const std::string& name) {
  if (name == "none") return AttackKind::kNone;
  if (name == "sign_flip") return AttackKind::kSignFlip;
  if (name == "alie") return AttackKind::kAlie;
  if (name == "label_flip") return AttackKind::kLabelFlip;
  if (name == "backdoor") return AttackKind::kBackdoor;
  throw Error("unknown attack kind: '" + name +
              "' (expected none|sign_flip|alie|label_flip|backdoor)");
}

AdversarySuite::AdversarySuite(AdversaryConfig cfg) : cfg_(std::move(cfg)) {
  EVFL_REQUIRE(cfg_.fraction >= 0.0 && cfg_.fraction <= 1.0,
               "adversary fraction must be in [0, 1]");
  EVFL_REQUIRE(cfg_.norm_budget > 0.0, "norm_budget must be positive");
  EVFL_REQUIRE(cfg_.sign_scale > 0.0, "sign_scale must be positive");
  EVFL_REQUIRE(cfg_.trigger_lo < cfg_.trigger_hi,
               "backdoor trigger zone must be non-empty");
  explicit_members_.insert(cfg_.attackers.begin(), cfg_.attackers.end());
}

bool AdversarySuite::is_attacker(int client_id) const {
  if (cfg_.kind == AttackKind::kNone) return false;
  if (!explicit_members_.empty()) {
    return explicit_members_.count(client_id) != 0;
  }
  if (cfg_.fraction <= 0.0) return false;
  return to_unit_interval(member_hash(cfg_.seed, client_id)) < cfg_.fraction;
}

bool AdversarySuite::active(int client_id, std::uint32_t round) const {
  return round >= cfg_.round_begin && round <= cfg_.round_end &&
         is_attacker(client_id);
}

bool AdversarySuite::poison_update(WeightUpdate& u,
                                   const std::vector<float>& reference) const {
  if (cfg_.kind != AttackKind::kSignFlip && cfg_.kind != AttackKind::kAlie) {
    return false;  // data-poisoning kinds corrupt training inputs instead
  }
  if (!active(u.client_id, u.round)) return false;
  EVFL_REQUIRE(u.weights.size() == reference.size(),
               "poison_update: reference dimension mismatch");
  const std::size_t dim = u.weights.size();
  if (dim == 0) return false;

  if (cfg_.kind == AttackKind::kSignFlip) {
    // Push the global model backwards, hard: ref - scale * movement.  The
    // movement norm is sign_scale times the honest one, which is exactly
    // what the validator's norm clip exists to bound.
    for (std::size_t i = 0; i < dim; ++i) {
      const double honest = static_cast<double>(u.weights[i]) -
                            static_cast<double>(reference[i]);
      u.weights[i] = static_cast<float>(static_cast<double>(reference[i]) -
                                        cfg_.sign_scale * honest);
    }
    return true;
  }

  // kAlie: discard the honest training result entirely and ship
  // broadcast + drift, with ‖drift‖₂ == norm_budget spread evenly across
  // coordinates.  Per-update this is a small, finite, fresh, in-norm
  // movement — nothing the validator can distinguish from honest noise —
  // but every colluder pushes the identical direction every round, so the
  // mean inherits the full drift scaled only by the attacker fraction.
  const double component =
      cfg_.norm_budget / std::sqrt(static_cast<double>(dim));
  for (std::size_t i = 0; i < dim; ++i) {
    u.weights[i] = static_cast<float>(
        static_cast<double>(reference[i]) +
        drift_sign(cfg_.seed, i) * component);
  }
  return true;
}

std::size_t AdversarySuite::poison_labels(int client_id, std::uint32_t round,
                                          const tensor::Tensor3& x,
                                          tensor::Tensor3& y) const {
  if (cfg_.kind != AttackKind::kLabelFlip &&
      cfg_.kind != AttackKind::kBackdoor) {
    return 0;
  }
  if (!active(client_id, round)) return 0;
  const std::size_t n = y.batch();
  if (n == 0) return 0;

  if (cfg_.kind == AttackKind::kLabelFlip) {
    // Reflect every label within this client's observed range: minima
    // become maxima and vice versa, so the poisoned gradient opposes the
    // honest one while the label distribution's support stays identical.
    float lo = y(0, 0, 0), hi = y(0, 0, 0);
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t t = 0; t < y.time(); ++t) {
        for (std::size_t f = 0; f < y.features(); ++f) {
          lo = std::min(lo, y(b, t, f));
          hi = std::max(hi, y(b, t, f));
        }
      }
    }
    const float pivot = lo + hi;
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t t = 0; t < y.time(); ++t) {
        for (std::size_t f = 0; f < y.features(); ++f) {
          y(b, t, f) = pivot - y(b, t, f);
        }
      }
    }
    return n;
  }

  // kBackdoor: relabel only the samples whose mean input sits inside the
  // trigger zone.  The poisoned model stays accurate off-trigger (global
  // R² barely moves) while forecasts inside the zone collapse toward
  // backdoor_value.
  EVFL_REQUIRE(x.batch() == n, "poison_labels: x/y batch mismatch");
  std::size_t poisoned = 0;
  const double denom =
      static_cast<double>(x.time()) * static_cast<double>(x.features());
  for (std::size_t b = 0; b < n; ++b) {
    double acc = 0.0;
    for (std::size_t t = 0; t < x.time(); ++t) {
      for (std::size_t f = 0; f < x.features(); ++f) {
        acc += static_cast<double>(x(b, t, f));
      }
    }
    const double mean = denom > 0.0 ? acc / denom : 0.0;
    if (mean < cfg_.trigger_lo || mean >= cfg_.trigger_hi) continue;
    for (std::size_t t = 0; t < y.time(); ++t) {
      for (std::size_t f = 0; f < y.features(); ++f) {
        y(b, t, f) = cfg_.backdoor_value;
      }
    }
    ++poisoned;
  }
  return poisoned;
}

std::vector<int> AdversarySuite::pick_attackers(double fraction,
                                                std::uint64_t seed,
                                                const std::vector<int>& ids) {
  EVFL_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
               "pick_attackers: fraction must be in [0, 1]");
  const std::size_t count = static_cast<std::size_t>(
      fraction * static_cast<double>(ids.size()));
  std::vector<int> picked = ids;
  // Rank by membership hash (ties by id): the same deterministic-cohort
  // idiom as kFixedSize client sampling.
  std::sort(picked.begin(), picked.end(), [seed](int a, int b) {
    const std::uint64_t ha = member_hash(seed, a);
    const std::uint64_t hb = member_hash(seed, b);
    return ha != hb ? ha < hb : a < b;
  });
  picked.resize(count);
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace evfl::fl
