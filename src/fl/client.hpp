// Federated client: owns a private local dataset and a local model replica.
// The only artefacts that ever leave it are serialized WeightUpdate
// messages; training data is deliberately inaccessible from outside.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "faults/fault_injector.hpp"
#include "fl/adversary.hpp"
#include "fl/codec.hpp"
#include "fl/network.hpp"
#include "fl/serialize.hpp"
#include "fl/weights.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "obs/trace.hpp"
#include "runtime/backoff.hpp"

namespace evfl::fl {

/// Builds an eagerly-initialized model (all layer shapes fixed) so weight
/// vectors are well-defined before the first forward pass.
using ModelFactory = std::function<nn::Sequential(tensor::Rng&)>;

struct ClientConfig {
  std::size_t epochs_per_round = 10;   // paper: EPOCHS_PER_ROUND = 10
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;
  /// Wire codec for this client's uploads (kDense = lossless v1 bytes).
  CodecConfig codec{};
};

/// Knobs for the threaded service loop.
struct ServeOptions {
  /// Total per-round wait budget for the broadcast.  The wait is split into
  /// retry attempts (see `backoff`) so a dropped broadcast costs a short
  /// retry, not one monolithic hang — but the attempts keep coming until
  /// this whole budget is spent.  Must cover the server's
  /// RoundPolicy::round_deadline_ms (120 s default): a round that closes at
  /// the deadline is normal operation, not a dead server.  ThreadedDriver
  /// raises it automatically when handed a larger deadline.
  double receive_timeout_ms = 150'000.0;
  runtime::BackoffPolicy backoff{};
  /// Optional scripted faults this client is subject to (crash, straggler
  /// delay, update corruption, stale replay).  Non-owning.
  const faults::FaultInjector* injector = nullptr;
  /// Optional trace sink: each local training pass is recorded as one
  /// "fl.client_train" span.  Non-owning; must outlive the serve loop.
  obs::TraceWriter* trace = nullptr;
  /// Optional adaptive adversary: attacker clients poison their update
  /// after local training, before encoding.  Non-owning.
  const AdversarySuite* adversary = nullptr;
};

class Client {
 public:
  Client(int id, tensor::Tensor3 x_train, tensor::Tensor3 y_train,
         const ModelFactory& factory, ClientConfig cfg, tensor::Rng rng);

  int id() const { return id_; }
  std::size_t sample_count() const { return x_.batch(); }

  /// Adopt the broadcast global weights, run local epochs, return the update.
  WeightUpdate train_round(const GlobalModel& global);

  /// Encode `update` for the wire under the configured codec, against the
  /// broadcast weights this client decoded (`reference`).  Returns an
  /// internal buffer reused across rounds — steady-state encoding does not
  /// allocate.  Carries the error-feedback residual for lossy codecs.
  const std::vector<std::uint8_t>& encode_update(
      const WeightUpdate& update, const std::vector<float>& reference);

  /// Error-feedback encoder state (diagnostics/tests).
  const UpdateEncoder& encoder() const { return encoder_; }

  /// Threaded-mode service loop: for each of `rounds`, wait for a
  /// GlobalModel broadcast on `net` (budget-bounded retry-with-backoff),
  /// train, and send the update back to the server node.  Exits when the
  /// retry budget is exhausted (server gone), a kShutdownRound broadcast
  /// arrives (server finished), or a scripted crash fault fires.
  void serve(InMemoryNetwork& net, std::size_t rounds, ServeOptions opts);

  /// Legacy convenience overload: one total receive budget, no faults.
  void serve(InMemoryNetwork& net, std::size_t rounds,
             double timeout_ms = 60'000.0);

  /// Local model access (evaluation after training).
  nn::Sequential& model() { return model_; }

  /// Initial local weights (used by the server to seed the global model).
  std::vector<float> initial_weights() { return model_.get_weights(); }

  /// Wall-clock seconds of the most recent train_round (what a genuinely
  /// distributed deployment would spend on this client in parallel).
  /// Atomic: the ThreadedDriver reads it while the client thread trains.
  double last_train_seconds() const {
    return last_train_seconds_.load(std::memory_order_relaxed);
  }

 private:
  int id_;
  ClientConfig cfg_;
  tensor::Tensor3 x_;
  tensor::Tensor3 y_;
  tensor::Rng rng_;
  nn::Sequential model_;
  nn::MseLoss loss_;
  nn::Adam optimizer_;
  UpdateEncoder encoder_;
  std::vector<std::uint8_t> wire_buf_;  // encode_update scratch
  GlobalModel global_scratch_;          // serve-loop broadcast decode buffer
  std::atomic<double> last_train_seconds_{0.0};
};

}  // namespace evfl::fl
