// Model-poisoning adversaries inside the FL protocol.
//
// Unlike faults::FaultInjector — which scripts *generic* failures (crash,
// NaN, norm inflation) that the validator was built to stop — this suite
// models an *adaptive* adversary who knows the defense parameters and
// crafts updates to slip past them:
//
//   kSignFlip   crude model poisoning: ship the broadcast minus a scaled
//               version of the honest movement.  Large scales trip the
//               validator's norm clip; the attack exists as the baseline
//               the clip *does* stop.
//   kAlie       colluding within-clip-norm drift (a-little-is-enough
//               style): every attacker ships broadcast + drift, where the
//               drift direction is one shared hash-derived sign vector and
//               its L2 norm is exactly `norm_budget` ≤ the validator's
//               max_update_norm.  Each update passes UpdateValidator
//               untouched; the collusion is invisible per-update and only
//               order-statistic aggregation rules (fl::AggregationRule)
//               defend the mean.
//   kLabelFlip  training-data poisoning: labels are reflected within the
//               client's observed label range before training, so the
//               poisoned update is produced by the *real* Client::train
//               path and is statistically unremarkable on the wire.
//   kBackdoor   targeted-zone data poisoning: only samples whose mean
//               input falls inside [trigger_lo, trigger_hi) are relabeled
//               to `backdoor_value` — degrading one zone's forecasts while
//               the global fit (and global R²) stays nearly intact.
//
// Every decision is a pure hash of (seed, client / coordinate) — the same
// splitmix64 idiom as faults::FaultPlan — so a grid re-run with the same
// seed reproduces the identical attack bit for bit, across thread
// schedules and driver choices.  The suite is immutable after construction
// and safe to share across threads.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "fl/weights.hpp"
#include "tensor/tensor3.hpp"

namespace evfl::fl {

enum class AttackKind : std::uint8_t {
  kNone = 0,
  kSignFlip = 1,   // scaled sign-flip of the honest movement
  kAlie = 2,       // colluding within-clip-norm drift
  kLabelFlip = 3,  // label reflection through the real training path
  kBackdoor = 4,   // targeted-zone relabeling
};

/// "none" / "sign_flip" / "alie" / "label_flip" / "backdoor".
std::string to_string(AttackKind kind);

/// Inverse of to_string for the --attack-kind CLI knob; throws evfl::Error
/// on an unknown name.
AttackKind parse_attack_kind(const std::string& name);

struct AdversaryConfig {
  AttackKind kind = AttackKind::kNone;
  /// Bernoulli membership probability per client (hash of (seed, id)), used
  /// when `attackers` is empty.  Benches wanting an exact count should use
  /// AdversarySuite::pick_attackers instead.
  double fraction = 0.0;
  /// Explicit attacker ids — authoritative when non-empty.
  std::vector<int> attackers;
  std::uint64_t seed = 1337;
  /// Inclusive round window in which the attack is live.  Model-poisoning
  /// attacks stop cleanly outside it; data poisoning only re-arms where the
  /// training data itself is rebuilt per round (the fleet path).
  std::uint32_t round_begin = 0;
  std::uint32_t round_end = 0xFFFFFFFFu;

  /// kSignFlip: the attacker ships reference - sign_scale * movement.
  double sign_scale = 10.0;
  /// kAlie: exact L2 norm of the shared drift.  Keep it at or under the
  /// validator's max_update_norm and every poisoned update passes the gate
  /// unclipped.
  double norm_budget = 1.0;

  /// kBackdoor trigger zone in (scaled) mean-input space, half-open.
  float trigger_lo = 0.75f;
  float trigger_hi = 2.0f;
  /// Label written for triggered samples (kBackdoor).
  float backdoor_value = 0.0f;
};

class AdversarySuite {
 public:
  explicit AdversarySuite(AdversaryConfig cfg);

  const AdversaryConfig& config() const { return cfg_; }
  AttackKind kind() const { return cfg_.kind; }

  /// Membership is a pure function of (seed, id): explicit list when given,
  /// else a Bernoulli hash threshold on `fraction`.
  bool is_attacker(int client_id) const;

  /// Membership AND the round window: whether this client attacks now.
  bool active(int client_id, std::uint32_t round) const;

  /// Model-poisoning hook — call after local training, before encoding.
  /// `reference` is the broadcast weights the client trained from (the
  /// movement basis).  Mutates `u.weights` in place for kSignFlip/kAlie
  /// when this client is active; returns true when the update was poisoned.
  bool poison_update(WeightUpdate& u, const std::vector<float>& reference) const;

  /// Data-poisoning hook — call before the update is trained (kLabelFlip /
  /// kBackdoor).  `x` supplies the backdoor trigger features; `y` is
  /// relabeled in place.  Returns the number of poisoned samples.
  std::size_t poison_labels(int client_id, std::uint32_t round,
                            const tensor::Tensor3& x,
                            tensor::Tensor3& y) const;

  /// Exact-count attacker selection for benches and tests: the
  /// floor(fraction * ids.size()) clients with the smallest membership
  /// hashes (ties by id).  Deterministic in (fraction, seed, ids).
  static std::vector<int> pick_attackers(double fraction, std::uint64_t seed,
                                         const std::vector<int>& ids);

 private:
  AdversaryConfig cfg_;
  std::unordered_set<int> explicit_members_;
};

}  // namespace evfl::fl
