#include "fl/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "fl/serialize.hpp"

namespace evfl::fl {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

RoundMetrics make_round_metrics(std::uint32_t round,
                                const std::vector<WeightUpdate>& updates,
                                double delta, double wall_seconds) {
  RoundMetrics m;
  m.round = round;
  m.updates_received = updates.size();
  m.weight_delta = delta;
  m.wall_seconds = wall_seconds;
  if (!updates.empty()) {
    double acc = 0.0;
    for (const WeightUpdate& u : updates) acc += u.train_loss;
    m.mean_train_loss = static_cast<float>(acc / updates.size());
  }
  return m;
}

}  // namespace

SyncDriver::SyncDriver(Server& server,
                       std::vector<std::unique_ptr<Client>>& clients,
                       InMemoryNetwork& net, const runtime::RunContext* ctx)
    : server_(&server), clients_(&clients), net_(&net), ctx_(ctx) {
  EVFL_REQUIRE(!clients.empty(), "SyncDriver needs clients");
}

FederatedRunResult SyncDriver::run(std::size_t rounds) {
  const auto t0 = Clock::now();
  FederatedRunResult result;
  const std::size_t n = clients_->size();

  // Client id -> slot, so updates drained from the shared server mailbox
  // re-order into deterministic client order whatever the arrival schedule.
  std::unordered_map<int, std::size_t> slot_of;
  for (std::size_t c = 0; c < n; ++c) slot_of[(*clients_)[c]->id()] = c;

  for (std::size_t r = 0; r < rounds; ++r) {
    const auto round_t0 = Clock::now();
    const GlobalModel global = server_->broadcast();

    std::atomic<std::size_t> dropped{0};
    std::vector<double> client_seconds(n, 0.0);
    auto run_client = [&](std::size_t c) {
      Client& client = *(*clients_)[c];
      // Broadcast leg: global weights cross the wire to this client.
      if (!net_->send(Message{kServerNode, client.id(), serialize(global)})) {
        ++dropped;  // simulated network dropped the broadcast
        return;
      }
      std::optional<Message> down = net_->try_receive(client.id());
      if (!down) {
        ++dropped;  // self-message lost: degrade the round, never abort
        return;
      }
      const GlobalModel received = deserialize_global(down->bytes);

      WeightUpdate update = client.train_round(received);
      client_seconds[c] = client.last_train_seconds();

      // Upload leg: the update crosses the wire back to the server.
      if (!net_->send(Message{client.id(), kServerNode, serialize(update)})) {
        ++dropped;  // simulated network dropped the upload
      }
    };

    if (ctx_ != nullptr && ctx_->parallel() && n > 1) {
      ctx_->count("fl.pool_backed_rounds");
      ctx_->parallel_for(n, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) run_client(c);
      });
    } else {
      for (std::size_t c = 0; c < n; ++c) run_client(c);
    }

    // Drain the server mailbox into per-client slots.
    std::vector<std::optional<WeightUpdate>> slots(n);
    while (std::optional<Message> up = net_->try_receive(kServerNode)) {
      WeightUpdate u = deserialize_update(up->bytes);
      const auto it = slot_of.find(u.client_id);
      if (it == slot_of.end()) {
        ++dropped;  // update from an unknown sender: skip it
        continue;
      }
      slots[it->second] = std::move(u);
    }

    std::vector<WeightUpdate> updates;
    updates.reserve(n);
    for (std::optional<WeightUpdate>& s : slots) {
      if (s) updates.push_back(std::move(*s));
    }

    const double delta = server_->finish_round(updates);
    RoundMetrics rm = make_round_metrics(global.round, updates, delta,
                                         seconds_since(round_t0));
    rm.max_client_seconds =
        *std::max_element(client_seconds.begin(), client_seconds.end());
    rm.dropped_messages = dropped.load();
    result.simulated_parallel_seconds += rm.max_client_seconds;
    result.rounds.push_back(rm);
  }

  result.final_weights = server_->weights();
  result.network = net_->stats();
  result.total_seconds = seconds_since(t0);
  return result;
}

ThreadedDriver::ThreadedDriver(Server& server,
                               std::vector<std::unique_ptr<Client>>& clients,
                               InMemoryNetwork& net)
    : server_(&server), clients_(&clients), net_(&net) {
  EVFL_REQUIRE(!clients.empty(), "ThreadedDriver needs clients");
}

FederatedRunResult ThreadedDriver::run(std::size_t rounds) {
  return run(rounds, 120'000.0);
}

FederatedRunResult ThreadedDriver::run(std::size_t rounds,
                                       double collect_timeout_ms) {
  const auto t0 = Clock::now();
  FederatedRunResult result;

  std::vector<std::thread> workers;
  workers.reserve(clients_->size());
  for (auto& client : *clients_) {
    workers.emplace_back(
        [&client, this, rounds] { client->serve(*net_, rounds); });
  }

  for (std::size_t r = 0; r < rounds; ++r) {
    const auto round_t0 = Clock::now();
    const GlobalModel global = server_->broadcast();
    std::size_t broadcasts_delivered = 0;
    std::size_t round_drops = 0;
    for (auto& client : *clients_) {
      if (net_->send(Message{kServerNode, client->id(), serialize(global)})) {
        ++broadcasts_delivered;
      } else {
        ++round_drops;
      }
    }

    std::vector<WeightUpdate> updates;
    // Collect at most one update per delivered broadcast, bounded by the
    // straggler deadline.
    while (updates.size() < broadcasts_delivered) {
      const double elapsed_ms = seconds_since(round_t0) * 1000.0;
      const double remaining = collect_timeout_ms - elapsed_ms;
      if (remaining <= 0.0) break;
      std::optional<Message> msg = net_->receive(kServerNode, remaining);
      if (!msg) break;
      updates.push_back(deserialize_update(msg->bytes));
    }

    const double delta = server_->finish_round(updates);
    RoundMetrics rm = make_round_metrics(global.round, updates, delta,
                                         seconds_since(round_t0));
    double max_client_seconds = 0.0;
    for (auto& client : *clients_) {
      max_client_seconds =
          std::max(max_client_seconds, client->last_train_seconds());
    }
    rm.max_client_seconds = max_client_seconds;
    rm.dropped_messages = round_drops;
    result.simulated_parallel_seconds += max_client_seconds;
    result.rounds.push_back(rm);
  }

  for (std::thread& w : workers) w.join();

  result.final_weights = server_->weights();
  result.network = net_->stats();
  result.total_seconds = seconds_since(t0);
  return result;
}

}  // namespace evfl::fl
